package numasim

import (
	"fmt"

	"repro/internal/topology"
)

// ApplyFaultEvents installs scheduled platform failures into the machine's
// pricing: a killed cluster node becomes unreachable (accesses touching it
// price to +Inf, see memCostCycles), a degraded fabric edge keeps its latency
// but loses bandwidth (the factor feeds the same per-edge contention model as
// SetEdgeStreams), and a severed edge makes every routed path through it
// unreachable.
//
// The fault fields are deliberately not behind the machine mutex: they may
// only be written while every Proc is quiesced — before the runtime starts,
// or inside an epoch hook, where the barrier orders the write before any
// task's subsequent charge. The adaptive engine's fault handling is the
// intended caller. Until the first call, pricing is bit-identical to a
// machine without the fault model.
func (m *Machine) ApplyFaultEvents(events []topology.FaultEvent) error {
	if len(events) == 0 {
		return nil
	}
	if m.fabricGraph == nil {
		return fmt.Errorf("numasim: fault events on a single-machine topology (no fabric)")
	}
	numC := len(m.topo.ClusterNodes())
	for _, ev := range events {
		switch ev.Kind {
		case topology.FaultKillNode:
			if ev.Node < 0 || ev.Node >= numC {
				return fmt.Errorf("numasim: fault %v: unknown cluster node (have %d)", ev, numC)
			}
			if m.deadCNode == nil {
				m.deadCNode = make([]bool, numC)
			}
			if m.deadCNode[ev.Node] {
				return fmt.Errorf("numasim: fault %v: node already dead", ev)
			}
			alive := 0
			for _, d := range m.deadCNode {
				if !d {
					alive++
				}
			}
			if alive <= 1 {
				return fmt.Errorf("numasim: fault %v: cannot kill the last surviving cluster node", ev)
			}
			m.deadCNode[ev.Node] = true
		case topology.FaultDegradeEdge:
			if err := m.checkFaultEdge(ev); err != nil {
				return err
			}
			if !(ev.Factor > 0 && ev.Factor < 1) {
				return fmt.Errorf("numasim: fault %v: degrade factor outside (0,1)", ev)
			}
			m.ensureEdgeFaultFactors()
			m.edgeFaultFactor[ev.Edge] *= ev.Factor
		case topology.FaultSeverEdge:
			if err := m.checkFaultEdge(ev); err != nil {
				return err
			}
			m.ensureEdgeFaultFactors()
			m.edgeFaultFactor[ev.Edge] = 0
			m.hasSevered = true
		default:
			return fmt.Errorf("numasim: fault %v: unknown kind", ev)
		}
	}
	return nil
}

func (m *Machine) checkFaultEdge(ev topology.FaultEvent) error {
	if ev.Edge < 0 || ev.Edge >= m.fabricGraph.NumEdges() {
		return fmt.Errorf("numasim: fault %v: unknown fabric edge (have %d)", ev, m.fabricGraph.NumEdges())
	}
	if m.edgeFaultFactor != nil && m.edgeFaultFactor[ev.Edge] == 0 {
		return fmt.Errorf("numasim: fault %v: edge already severed", ev)
	}
	return nil
}

func (m *Machine) ensureEdgeFaultFactors() {
	if m.edgeFaultFactor == nil {
		m.edgeFaultFactor = make([]float64, m.fabricGraph.NumEdges())
		for i := range m.edgeFaultFactor {
			m.edgeFaultFactor[i] = 1
		}
	}
}

// ClusterNodeDead reports whether a cluster node was killed by a fault
// event. Always false before the first ApplyFaultEvents.
func (m *Machine) ClusterNodeDead(c int) bool {
	return m.deadCNode != nil && c >= 0 && c < len(m.deadCNode) && m.deadCNode[c]
}

// AnyDeadClusterNode reports whether any kill event has been applied — the
// cheap gate the adaptive engine checks before scanning placements for
// evacuees.
func (m *Machine) AnyDeadClusterNode() bool {
	for _, d := range m.deadCNode {
		if d {
			return true
		}
	}
	return false
}

// EdgeFaultFactor returns the remaining bandwidth fraction of a fabric
// edge: 1 healthy or before any edge fault, (0,1) degraded, 0 severed.
func (m *Machine) EdgeFaultFactor(e int) float64 {
	if m.edgeFaultFactor == nil {
		return 1
	}
	return m.edgeFaultFactor[e]
}

// CheckpointNode returns the NUMA node that stands in for lost memory: the
// first NUMA node whose cluster node is still alive. Dead nodes' regions and
// working sets re-materialize from here (the model's stand-in for a
// checkpoint/replica store on surviving storage). Node 0 on a healthy
// machine — the same serial-init default the unbound-end pricing uses.
func (m *Machine) CheckpointNode() int {
	if m.deadCNode == nil {
		return 0
	}
	for node, c := range m.cnodeOfNUMA {
		if !m.deadCNode[c] {
			return node
		}
	}
	return 0
}

// severedPath reports whether the routed path between two live cluster nodes
// crosses a severed edge: every edge of the path must be up for the access to
// complete. Called from the pricing hot path only once a sever exists.
func (m *Machine) severedPath(fromC, toC int) bool {
	if fromC == toC {
		return false
	}
	for _, e := range m.RoutedPathEdges(fromC, toC) {
		if m.edgeFaultFactor[e] == 0 {
			return true
		}
	}
	return false
}
