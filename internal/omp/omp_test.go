package omp

import (
	"sync"
	"testing"

	"repro/internal/kernels"
	"repro/internal/numasim"
	"repro/internal/topology"
)

func testMachine(t *testing.T, spec string) *numasim.Machine {
	t.Helper()
	top, err := topology.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := numasim.New(top, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Errorf("schedule names wrong")
	}
	if Schedule(9).String() == "" {
		t.Errorf("unknown schedule empty")
	}
}

func TestNewTeamErrors(t *testing.T) {
	if _, err := NewTeam(nil, 0, 1); err == nil {
		t.Errorf("zero-size team accepted")
	}
	if _, err := NewBoundTeam(nil, []int{0}); err == nil {
		t.Errorf("bound team without machine accepted")
	}
	m := testMachine(t, "core:2")
	if _, err := NewBoundTeam(m, nil); err == nil {
		t.Errorf("bound team without PUs accepted")
	}
	if _, err := NewBoundTeam(m, []int{99}); err == nil {
		t.Errorf("bound team with bad PU accepted")
	}
}

func TestChunkList(t *testing.T) {
	// Static, no chunk: one range per thread, covering exactly.
	cs := chunkList(0, 10, 0, 3, Static)
	if len(cs) != 3 || cs[0] != [2]int{0, 3} || cs[2] != [2]int{6, 10} {
		t.Errorf("static chunks = %v", cs)
	}
	// Dynamic chunk 4 over [0,10): 3 chunks.
	cs = chunkList(0, 10, 4, 3, Dynamic)
	if len(cs) != 3 || cs[2] != [2]int{8, 10} {
		t.Errorf("dynamic chunks = %v", cs)
	}
	// Guided shrinks but never below chunk.
	cs = chunkList(0, 100, 2, 4, Guided)
	if len(cs) < 2 {
		t.Fatalf("guided chunks = %v", cs)
	}
	for i := 1; i < len(cs); i++ {
		if cs[i][0] != cs[i-1][1] {
			t.Errorf("guided chunks not contiguous: %v", cs)
		}
	}
	last := cs[len(cs)-1]
	if last[1] != 100 {
		t.Errorf("guided chunks do not cover: %v", cs)
	}
}

func TestRealParallelForCovers(t *testing.T) {
	team, err := NewTeam(nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		hit := make([]int, 100)
		var mu sync.Mutex
		team.ParallelFor(0, 100, 7, sched, func(lo, hi, tid int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				hit[i]++
			}
			mu.Unlock()
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("%v: index %d executed %d times", sched, i, h)
			}
		}
	}
	// Empty range is a no-op.
	team.ParallelFor(5, 5, 0, Static, func(lo, hi, tid int) { t.Errorf("body called on empty range") })
}

func TestVirtualParallelForDeterministic(t *testing.T) {
	run := func() float64 {
		m := testMachine(t, "pack:2 core:2 pu:1")
		team, err := NewTeam(m, 4, 9)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 5; r++ {
			team.ParallelFor(0, 64, 4, Dynamic, func(lo, hi, tid int) {
				team.Proc(tid).Compute(float64((hi - lo) * 1000))
			})
		}
		return team.MakespanCycles()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("virtual loop not deterministic: %v vs %v", a, b)
	}
}

func TestVirtualBarrierSynchronizes(t *testing.T) {
	m := testMachine(t, "core:4")
	team, err := NewBoundTeam(m, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// One thread gets a much bigger chunk (static by index ranges of equal
	// size, but the body cost varies by tid).
	team.ParallelFor(0, 4, 0, Static, func(lo, hi, tid int) {
		team.Proc(tid).ComputeCycles(float64(1000 * (tid + 1)))
	})
	// After the barrier every clock is the max plus the barrier cost.
	want := team.MakespanCycles()
	for tid := 0; tid < 4; tid++ {
		if c := team.Proc(tid).Clock(); c != want {
			t.Errorf("thread %d clock %v, want %v", tid, c, want)
		}
	}
	if want < 4000 {
		t.Errorf("makespan %v below the slowest thread's work", want)
	}
}

func TestEarliestClockDispatchBalances(t *testing.T) {
	m := testMachine(t, "core:4")
	team, err := NewBoundTeam(m, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// 16 equal chunks on 4 threads: every thread should get 4.
	counts := make([]int, 4)
	team.ParallelFor(0, 16, 1, Dynamic, func(lo, hi, tid int) {
		counts[tid]++
		team.Proc(tid).ComputeCycles(1000)
	})
	for tid, c := range counts {
		if c != 4 {
			t.Errorf("thread %d ran %d chunks, want 4 (dispatch unbalanced: %v)", tid, c, counts)
		}
	}
}

func TestJacobiMatchesSequential(t *testing.T) {
	g := kernels.NewGrid(12, 10, 3)
	want := kernels.RunJacobiLK23(g, 5)
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		// Real goroutine execution.
		team, err := NewTeam(nil, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := Jacobi(team, g, g.Cell, kernels.LK23Costs, 5, sched, 2, nil)
		if !got.Equal(want, 0) {
			t.Errorf("%v: parallel Jacobi differs from sequential (max %g)",
				sched, got.MaxAbsDiff(want))
		}
	}
	// Virtual-time execution must give the same numbers too.
	m := testMachine(t, "pack:2 core:2 pu:1")
	team, err := NewTeam(m, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	region := m.AllocFirstTouch("grid", int64(12*10*8*kernels.Streams))
	got := Jacobi(team, g, g.Cell, kernels.LK23Costs, 5, Static, 0, region)
	if !got.Equal(want, 0) {
		t.Errorf("virtual Jacobi differs from sequential (max %g)", got.MaxAbsDiff(want))
	}
	if team.MakespanSeconds() <= 0 {
		t.Errorf("no simulated time accumulated")
	}
}

func TestJacobiCostOnlyCharges(t *testing.T) {
	m := testMachine(t, "pack:2 core:4 pu:1")
	team, err := NewTeam(m, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	region, err := m.AllocOn("grid", 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	JacobiCostOnly(team, 1024, 1024, kernels.LK23Costs, 3, Static, 0, region)
	if team.MakespanSeconds() <= 0 {
		t.Errorf("cost-only run charged nothing")
	}
	// All traffic goes to node 0: remote threads must have paid more than
	// a purely local run would.
	mLocal := testMachine(t, "pack:1 core:8 pu:1")
	teamLocal, err := NewBoundTeam(mLocal, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	regionLocal, err := mLocal.AllocOn("grid", 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	JacobiCostOnly(teamLocal, 1024, 1024, kernels.LK23Costs, 3, Static, 0, regionLocal)
	if team.MakespanCycles() <= teamLocal.MakespanCycles() {
		t.Errorf("NUMA-remote unbound run (%v) not slower than all-local bound run (%v)",
			team.MakespanCycles(), teamLocal.MakespanCycles())
	}
}

func TestUnboundTeamMigrates(t *testing.T) {
	m := testMachine(t, "pack:4 core:4 pu:1")
	team, err := NewTeam(m, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 40; r++ {
		team.ParallelFor(0, 8, 0, Static, func(lo, hi, tid int) {
			team.Proc(tid).ComputeCycles(100)
		})
	}
	migrations := 0
	for tid := 0; tid < 8; tid++ {
		migrations += team.Proc(tid).Stats().Migrations
	}
	if migrations == 0 {
		t.Errorf("unbound team never migrated over 40 regions")
	}
}
