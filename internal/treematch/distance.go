package treematch

import (
	"fmt"
	"math"

	"repro/internal/comm"
)

// AssignByDistance maps each entity of the matrix onto a distinct leaf,
// minimizing the distance-weighted communication cost subject to an optional
// class constraint: entity g may only occupy leaves with leafClass[leaf] ==
// entityClass[g] (nil classes place no constraint). It is the generalization
// of the balanced-tree matching to an arbitrary distance model: dist[a][b]
// is any symmetric leaf-to-leaf distance — routed-path latencies of a torus
// or dragonfly fabric, per-leaf-depth distances of an uneven tree — where
// the tree matcher could only count hops in a balanced hierarchy.
//
// Each optional seed is a complete candidate assignment (entity → leaf) that
// enters the portfolio alongside the greedy solution; every candidate is
// improved by class-preserving pairwise-swap refinement and the cheapest
// wins (ties towards the earlier candidate, greedy first). When the
// constrained permutation space is small the exact branch-and-bound
// tightens the incumbent further, exactly as in AssignClassed.
func AssignByDistance(dist [][]float64, m *comm.Matrix, entityClass, leafClass []int, seeds ...[]int) ([]int, error) {
	p := m.Order()
	if len(dist) != p {
		return nil, fmt.Errorf("treematch: AssignByDistance maps %d entities over a %d-leaf distance matrix", p, len(dist))
	}
	for _, row := range dist {
		if len(row) != p {
			return nil, fmt.Errorf("treematch: AssignByDistance distance matrix is not square")
		}
	}
	if entityClass == nil {
		entityClass = make([]int, p)
	}
	if leafClass == nil {
		leafClass = make([]int, p)
	}
	if len(entityClass) != p || len(leafClass) != p {
		return nil, fmt.Errorf("treematch: AssignByDistance got %d entity classes and %d leaf classes for %d entities",
			len(entityClass), len(leafClass), p)
	}
	entityPerClass := map[int]int{}
	leavesPerClass := map[int]int{}
	for i := 0; i < p; i++ {
		entityPerClass[entityClass[i]]++
		leavesPerClass[leafClass[i]]++
	}
	for c, n := range entityPerClass {
		if leavesPerClass[c] != n {
			return nil, fmt.Errorf("treematch: AssignByDistance class %d has %d entities but %d leaves", c, n, leavesPerClass[c])
		}
	}
	if len(entityPerClass) != len(leavesPerClass) {
		return nil, fmt.Errorf("treematch: AssignByDistance classes mismatch: %d entity classes, %d leaf classes",
			len(entityPerClass), len(leavesPerClass))
	}

	aff, vol := pairAffinity(m)
	order := affinityOrder(aff, vol)

	// Greedy incumbent: place in affinity-attachment order on the cheapest
	// class-compatible free leaf (ties towards the lower leaf index).
	used := make([]bool, p)
	assignment := make([]int, p)
	increment := func(pos int, e, leaf int) float64 {
		s := 0.0
		for q := 0; q < pos; q++ {
			partner := order[q]
			if a := aff[e][partner]; a != 0 {
				s += a * dist[leaf][assignment[partner]]
			}
		}
		return s
	}
	for pos, e := range order {
		bestLeaf, bestInc := -1, math.Inf(1)
		for l := 0; l < p; l++ {
			if used[l] || leafClass[l] != entityClass[e] {
				continue
			}
			if inc := increment(pos, e, l); inc < bestInc {
				bestLeaf, bestInc = l, inc
			}
		}
		used[bestLeaf] = true
		assignment[e] = bestLeaf
	}
	refineDistanceSwaps(dist, aff, entityClass, assignment)
	best := append([]int(nil), assignment...)
	bestCost := DistanceCost(dist, m, best)

	// Seed candidates: refine each and keep the cheapest (strictly better
	// than the incumbent, so the greedy solution wins ties).
	for si, seed := range seeds {
		if len(seed) != p {
			return nil, fmt.Errorf("treematch: AssignByDistance seed %d has %d entries for %d entities", si, len(seed), p)
		}
		taken := make([]bool, p)
		for e, l := range seed {
			if l < 0 || l >= p || taken[l] {
				return nil, fmt.Errorf("treematch: AssignByDistance seed %d is not a permutation of the leaves", si)
			}
			taken[l] = true
			if leafClass[l] != entityClass[e] {
				return nil, fmt.Errorf("treematch: AssignByDistance seed %d places entity %d on a leaf of the wrong class", si, e)
			}
		}
		cand := append([]int(nil), seed...)
		refineDistanceSwaps(dist, aff, entityClass, cand)
		if c := DistanceCost(dist, m, cand); c < bestCost {
			best, bestCost = cand, c
		}
	}

	space := 1.0
	for _, n := range entityPerClass {
		for f := 2; f <= n; f++ {
			space *= float64(f)
		}
	}
	if space > classedSearchLimit {
		return best, nil
	}

	copy(assignment, best)
	for i := range used {
		used[i] = false
	}
	var rec func(pos int, cost float64)
	rec = func(pos int, cost float64) {
		if cost >= bestCost {
			return // the increment is nonnegative, so the partial cost bounds
		}
		if pos == p {
			bestCost = cost
			copy(best, assignment)
			return
		}
		e := order[pos]
		for l := 0; l < p; l++ {
			if used[l] || leafClass[l] != entityClass[e] {
				continue
			}
			used[l] = true
			assignment[e] = l
			rec(pos+1, cost+increment(pos, e, l))
			used[l] = false
		}
	}
	rec(0, 0)
	return best, nil
}

// pairAffinity symmetrizes the matrix into pairwise affinities and per-entity
// total volumes.
func pairAffinity(m *comm.Matrix) (aff [][]float64, vol []float64) {
	p := m.Order()
	aff = make([][]float64, p)
	for i := range aff {
		aff[i] = make([]float64, p)
		for j := range aff[i] {
			if i != j {
				aff[i][j] = m.At(i, j) + m.At(j, i)
			}
		}
	}
	vol = make([]float64, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			vol[i] += aff[i][j]
		}
	}
	return aff, vol
}

// affinityOrder is the affinity-attachment placement order: start from the
// heaviest entity and always continue with the unplaced entity most strongly
// tied to the placed set (ties towards total volume, then the lower index).
func affinityOrder(aff [][]float64, vol []float64) []int {
	p := len(aff)
	order := make([]int, 0, p)
	placed := make([]bool, p)
	score := make([]float64, p)
	for len(order) < p {
		pick := -1
		for i := 0; i < p; i++ {
			if placed[i] {
				continue
			}
			if pick < 0 || score[i] > score[pick] ||
				(score[i] == score[pick] && vol[i] > vol[pick]) {
				pick = i
			}
		}
		placed[pick] = true
		order = append(order, pick)
		for j := 0; j < p; j++ {
			if !placed[j] {
				score[j] += aff[pick][j]
			}
		}
	}
	return order
}

// refineDistanceSwaps improves an assignment with pairwise swaps between
// same-class entities, the distance-model analogue of refineClassedSwaps:
// swap the leaves of e1 and e2 whenever that strictly lowers the
// distance-weighted cost. The distance between e1 and e2 themselves is
// swap-invariant under a symmetric model, so only their edges to third
// parties enter the delta.
func refineDistanceSwaps(dist [][]float64, aff [][]float64, entityClass, assignment []int) {
	p := len(assignment)
	for pass := 0; pass < classedRefinePasses; pass++ {
		improved := false
		for e1 := 0; e1 < p; e1++ {
			for e2 := e1 + 1; e2 < p; e2++ {
				if entityClass[e1] != entityClass[e2] {
					continue
				}
				l1, l2 := assignment[e1], assignment[e2]
				delta := 0.0
				for j := 0; j < p; j++ {
					if j == e1 || j == e2 {
						continue
					}
					lj := assignment[j]
					if a := aff[e1][j]; a != 0 {
						delta += a * (dist[l2][lj] - dist[l1][lj])
					}
					if a := aff[e2][j]; a != 0 {
						delta += a * (dist[l1][lj] - dist[l2][lj])
					}
				}
				if delta < -1e-12 {
					assignment[e1], assignment[e2] = l2, l1
					improved = true
				}
			}
		}
		if !improved {
			return
		}
	}
}

// DistanceCost returns the distance-weighted communication cost of an
// assignment under an arbitrary leaf distance model: the sum over all entity
// pairs of their communication volume multiplied by the distance between
// their leaves. The distance-model analogue of Cost.
func DistanceCost(dist [][]float64, m *comm.Matrix, assignment []int) float64 {
	var s float64
	for i := 0; i < m.Order(); i++ {
		m.ForEachNeighbor(i, func(j int, v float64) {
			if j != i {
				s += v * dist[assignment[i]][assignment[j]]
			}
		})
	}
	return s
}
