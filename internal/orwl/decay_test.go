package orwl

import (
	"math"
	"strings"
	"testing"
)

// TestConfigureEpochsDecayValidation: decay outside [0,1) used to be
// silently coerced to 0 by comm.Window.Roll, turning "never forget" (1.0)
// into "forget everything"; ConfigureEpochs now rejects it up front.
func TestConfigureEpochsDecayValidation(t *testing.T) {
	for _, bad := range []float64{1, 2, -0.5, math.NaN()} {
		rt := NewRuntime(Options{})
		err := rt.ConfigureEpochs(1, bad, nil)
		if err == nil || !strings.Contains(err.Error(), "decay") {
			t.Errorf("decay %v: error = %v, want decay validation", bad, err)
		}
	}
	for _, ok := range []float64{0, 0.25, 0.999} {
		rt := NewRuntime(Options{})
		if err := rt.ConfigureEpochs(1, ok, nil); err != nil {
			t.Errorf("decay %v rejected: %v", ok, err)
		}
	}
}
