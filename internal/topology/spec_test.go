package topology

import (
	"strings"
	"testing"
)

func TestFromSpecAttrsCustom(t *testing.T) {
	def := DefaultAttrs()
	def.ClockHz = 3e9
	def.L3Size = 8 << 20
	def.MemBandwidth = 20e9
	top, err := FromSpecAttrs("pack:2 l3:1 core:4 pu:1", def)
	if err != nil {
		t.Fatal(err)
	}
	if got := top.Root().Attr.ClockHz; got != 3e9 {
		t.Errorf("clock = %v", got)
	}
	l3 := top.PU(0).Ancestor(L3)
	if l3 == nil || l3.Attr.CacheSize != 8<<20 {
		t.Errorf("L3 size = %+v", l3)
	}
	node := top.NUMANodeOf(top.PU(0))
	if node.Attr.BandwidthBytesPerSec != 20e9 {
		t.Errorf("node bandwidth = %v", node.Attr.BandwidthBytesPerSec)
	}
}

func TestGroupLevelAttrs(t *testing.T) {
	top, err := FromSpec("group:2 pack:2 core:2 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	groups := top.Level(top.DepthOf(Group))
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Attr.BandwidthBytesPerSec != DefaultAttrs().LinkBandwidth {
		t.Errorf("group link bandwidth = %v", groups[0].Attr.BandwidthBytesPerSec)
	}
	// Machine spanning groups: remote access crosses more hops than within
	// a group.
	pus := top.PUs()
	intra := top.HopDistance(pus[0], pus[3]) // same group, other pack
	inter := top.HopDistance(pus[0], pus[4]) // other group
	if inter <= intra {
		t.Errorf("inter-group hops %d not above intra %d", inter, intra)
	}
}

func TestRenderDeepTopology(t *testing.T) {
	top, err := FromSpec("group:2 pack:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2")
	if err != nil {
		t.Fatal(err)
	}
	r := top.Render()
	for _, want := range []string{"Group#0", "NUMANode#0", "L2#0", "KiB", "x2 identical"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	if err := top.CheckUltrametric(); err != nil {
		t.Errorf("deep topology: %v", err)
	}
}

func TestFormatSize(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{32 << 10, "32KiB"},
		{24 << 20, "24MiB"},
		{2 << 30, "2GiB"},
	}
	for _, tc := range cases {
		if got := formatSize(tc.n); got != tc.want {
			t.Errorf("formatSize(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestObjectString(t *testing.T) {
	top := PaperMachine()
	if got := top.PU(5).String(); got != "PU#5" {
		t.Errorf("PU String = %q", got)
	}
	if got := top.Root().String(); got != "Machine#0" {
		t.Errorf("root String = %q", got)
	}
}

func TestLevelQueriesOutOfRange(t *testing.T) {
	top := PaperMachine()
	if top.Level(-1) != nil || top.Level(99) != nil {
		t.Errorf("out-of-range Level not nil")
	}
	if top.Arity(-1) != 0 || top.Arity(99) != 0 {
		t.Errorf("out-of-range Arity not 0")
	}
}

func TestLatencyCyclesNoCacheTopology(t *testing.T) {
	// A topology without any declared cache levels falls back to unit
	// same-PU latency and memory latency otherwise.
	top, err := FromSpec("pack:2 core:2 pu:2")
	if err != nil {
		t.Fatal(err)
	}
	pus := top.PUs()
	if got := top.LatencyCycles(pus[0], pus[0]); got != 1 {
		t.Errorf("same-PU latency without caches = %v, want 1", got)
	}
	if got := top.LatencyCycles(pus[0], pus[2]); got != DefaultAttrs().MemLatencyCycles {
		t.Errorf("same-node latency = %v, want memory latency", got)
	}
}

func TestValidateRejectsMissingNUMA(t *testing.T) {
	// Hand-build a tree with no NUMA level: Validate must reject it.
	root := &Object{Kind: Machine}
	pu := &Object{Kind: PU}
	core := &Object{Kind: Core, Children: []*Object{pu}}
	root.Children = []*Object{core}
	top := build(root, "hand")
	if err := top.Validate(); err == nil {
		t.Errorf("topology without NUMA level accepted")
	}
}

func TestSpecWhitespaceTolerant(t *testing.T) {
	top, err := FromSpec("  pack:2    core:3\tpu:1  ")
	if err != nil {
		t.Fatal(err)
	}
	if top.NumCores() != 6 {
		t.Errorf("cores = %d", top.NumCores())
	}
	// Case-insensitive kind names.
	top, err = FromSpec("PACK:2 Core:3 PU:1")
	if err != nil {
		t.Fatal(err)
	}
	if top.NumPUs() != 6 {
		t.Errorf("PUs = %d", top.NumPUs())
	}
}
