package omp

import (
	"repro/internal/kernels"
	"repro/internal/numasim"
)

// Jacobi runs the two-buffer stencil with a parallel-for over the interior
// rows, the "OpenMP implementation of equivalent abstraction" from the
// paper's evaluation. The numeric result is identical to
// kernels.RunJacobi; tests assert it bit for bit.
//
// Cost model (when the team has a machine): the solution and coefficient
// arrays live in a single region placed by the init policy; each row sweep
// charges the kernel's per-cell flops and streams the row's working set
// from the region's home.
func Jacobi(t *Team, g *kernels.Grid, cell kernels.CellFunc, costs kernels.Costs, iters int, sched Schedule, chunk int, region *numasim.Region) *kernels.Grid {
	cur := g.Clone()
	next := g.Clone()
	cols := g.Cols
	for it := 0; it < iters; it++ {
		// Boundary rows are fixed; copy once per iteration like the
		// sequential reference.
		copy(next.ZA[:cols], cur.ZA[:cols])
		copy(next.ZA[(g.Rows-1)*cols:], cur.ZA[(g.Rows-1)*cols:])
		t.ParallelFor(1, g.Rows-1, chunk, sched, func(lo, hi, tid int) {
			for k := lo; k < hi; k++ {
				row := k * cols
				next.ZA[row] = cur.ZA[row]
				next.ZA[row+cols-1] = cur.ZA[row+cols-1]
				for j := 1; j < cols-1; j++ {
					i := row + j
					next.ZA[i] = cell(cur.ZA[i], cur.ZA[i-cols], cur.ZA[i+cols],
						cur.ZA[i+1], cur.ZA[i-1], k, j)
				}
			}
			chargeRows(t, tid, lo, hi, cols, costs, region)
		})
		cur, next = next, cur
	}
	return cur
}

// JacobiCostOnly charges the costs of Jacobi without touching any data:
// the paper-scale 16384×16384 runs. rows and cols describe the full grid.
func JacobiCostOnly(t *Team, rows, cols int, costs kernels.Costs, iters int, sched Schedule, chunk int, region *numasim.Region) {
	for it := 0; it < iters; it++ {
		t.ParallelFor(1, rows-1, chunk, sched, func(lo, hi, tid int) {
			chargeRows(t, tid, lo, hi, cols, costs, region)
		})
	}
}

// chargeRows prices the sweep of rows [lo,hi) on thread tid.
func chargeRows(t *Team, tid, lo, hi, cols int, costs kernels.Costs, region *numasim.Region) {
	p := t.Proc(tid)
	if p == nil || region == nil {
		return
	}
	cells := float64((hi - lo) * cols)
	p.Compute(costs.FlopsPerCell * cells)
	// Row sweeps never fit a reusable working set across iterations at the
	// sizes we study (each thread's row span changes as threads migrate and
	// chunks move), so the traffic is charged in full.
	p.MemRead(region, costs.BytesPerCell*cells)
}
