package comm

import (
	"fmt"
	"math/rand"
)

// Stencil2D builds the block-level affinity matrix of a bx×by block grid
// with 8-neighbour (Moore) connectivity: edge-adjacent blocks exchange
// edgeVol bytes per iteration, diagonally adjacent blocks exchange cornerVol
// bytes. Entity index of block (x,y) is y*bx+x; labels are "b(x,y)". The
// grid does not wrap (the paper's LK23 matrix has open boundaries).
func Stencil2D(bx, by int, edgeVol, cornerVol float64) *Matrix {
	return fillStencil2D(New(bx*by), bx, by, edgeVol, cornerVol)
}

// Stencil2DSparse is Stencil2D in sparse storage: identical entries and
// labels, O(bx·by) memory instead of O((bx·by)²). This is the generator the
// scale benchmark tier uses — a 100k-task stencil is ~800k nonzeros versus
// an 80 GB dense matrix.
func Stencil2DSparse(bx, by int, edgeVol, cornerVol float64) *Matrix {
	return fillStencil2D(NewSparse(bx*by), bx, by, edgeVol, cornerVol)
}

func fillStencil2D(m *Matrix, bx, by int, edgeVol, cornerVol float64) *Matrix {
	id := func(x, y int) int { return y*bx + x }
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			m.SetLabel(id(x, y), fmt.Sprintf("b(%d,%d)", x, y))
		}
	}
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			// Only look east/south/south-east/south-west so each pair is
			// recorded once; AddSym mirrors it.
			if x+1 < bx {
				m.AddSym(id(x, y), id(x+1, y), edgeVol)
			}
			if y+1 < by {
				m.AddSym(id(x, y), id(x, y+1), edgeVol)
				if x+1 < bx {
					m.AddSym(id(x, y), id(x+1, y+1), cornerVol)
				}
				if x-1 >= 0 {
					m.AddSym(id(x, y), id(x-1, y+1), cornerVol)
				}
			}
		}
	}
	return m
}

// Frontier identifies one of the eight frontier operations of an LK23 block
// (paper §III: each block has a main operation plus eight sub-operations
// exporting its edges and corners).
type Frontier int

// The eight frontier directions, plus OpMain for the main operation.
const (
	OpMain Frontier = iota
	OpN
	OpS
	OpE
	OpW
	OpNE
	OpNW
	OpSE
	OpSW
	opsPerBlock
)

var frontierNames = [opsPerBlock]string{"main", "N", "S", "E", "W", "NE", "NW", "SE", "SW"}

// String returns "main", "N", ..., "SW".
func (f Frontier) String() string {
	if f < 0 || f >= opsPerBlock {
		return fmt.Sprintf("Frontier(%d)", int(f))
	}
	return frontierNames[f]
}

// OpsPerBlock is the number of operations (threads) per LK23 block: one main
// operation and eight frontier operations.
const OpsPerBlock = int(opsPerBlock)

// LK23OpIndex returns the entity index of operation f of block (x,y) in the
// matrix built by LK23OpLevel for a bx-wide block grid.
func LK23OpIndex(bx, x, y int, f Frontier) int {
	return (y*bx+x)*OpsPerBlock + int(f)
}

// LK23OpLevel builds the operation-level affinity matrix of the paper's LK23
// decomposition: every block of a bx×by grid is handled by 9 threads (main +
// 8 frontiers). Volumes per iteration, for blocks of blockW×blockH elements
// of elemBytes each:
//
//   - main ↔ own frontier op: the frontier strip is written by main and
//     handed to the frontier thread (edge strips are blockW or blockH
//     elements, corner strips 1 element);
//   - frontier op ↔ neighbouring block's main: the same strip is read by the
//     neighbour that needs it for its halo.
//
// Frontier ops whose direction falls outside the grid communicate only with
// their own main (volume still flows locally, as in the reference ORWL
// implementation where boundary locations hold fixed boundary conditions).
func LK23OpLevel(bx, by, blockW, blockH, elemBytes int) *Matrix {
	m := New(bx * by * OpsPerBlock)
	eb := float64(elemBytes)
	edgeH := float64(blockW) * eb // horizontal strip (N or S edge)
	edgeV := float64(blockH) * eb // vertical strip (E or W edge)
	corner := eb
	type dir struct {
		f      Frontier
		dx, dy int
		vol    float64
	}
	dirs := []dir{
		{OpN, 0, -1, edgeH}, {OpS, 0, 1, edgeH},
		{OpE, 1, 0, edgeV}, {OpW, -1, 0, edgeV},
		{OpNE, 1, -1, corner}, {OpNW, -1, -1, corner},
		{OpSE, 1, 1, corner}, {OpSW, -1, 1, corner},
	}
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			for f := Frontier(0); f < opsPerBlock; f++ {
				m.SetLabel(LK23OpIndex(bx, x, y, f), fmt.Sprintf("b(%d,%d).%v", x, y, f))
			}
			main := LK23OpIndex(bx, x, y, OpMain)
			for _, d := range dirs {
				op := LK23OpIndex(bx, x, y, d.f)
				// Main writes the strip that the frontier op exports.
				m.AddSym(main, op, d.vol)
				nx, ny := x+d.dx, y+d.dy
				if nx >= 0 && nx < bx && ny >= 0 && ny < by {
					// The neighbour's main reads the exported strip.
					nmain := LK23OpIndex(bx, nx, ny, OpMain)
					m.AddSym(op, nmain, d.vol)
				}
			}
		}
	}
	return m
}

// Ring builds an n-entity ring: entity i exchanges vol bytes with (i+1) mod
// n. For n == 2 the single pair carries 2·vol (both directions coincide).
func Ring(n int, vol float64) *Matrix {
	m := New(n)
	if n < 2 {
		return m
	}
	for i := 0; i < n; i++ {
		m.AddSym(i, (i+1)%n, vol)
	}
	return m
}

// AllToAll builds a complete affinity graph where every pair exchanges vol.
func AllToAll(n int, vol float64) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.AddSym(i, j, vol)
		}
	}
	return m
}

// Random builds a random symmetric matrix: each pair communicates with
// probability density, with a volume uniform in [0, maxVol). The generator
// is deterministic for a given seed.
func Random(n int, density, maxVol float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				m.AddSym(i, j, rng.Float64()*maxVol)
			}
		}
	}
	return m
}

// RandomSparse builds a random symmetric bounded-degree matrix in sparse
// storage: every entity draws `degree` partners uniformly at random (self
// pairs and duplicate draws accumulate onto the same pair; self loops are
// skipped), each exchange uniform in [0, maxVol). Unlike Random, generation
// is O(n·degree) — per-pair coin flips would need O(n²) draws — so it scales
// to the 100k-task inputs of the scale benchmark tier. Deterministic for a
// given seed.
func RandomSparse(n, degree int, maxVol float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewSparse(n)
	for i := 0; i < n; i++ {
		for d := 0; d < degree; d++ {
			j := rng.Intn(n)
			vol := rng.Float64() * maxVol
			if j == i {
				continue
			}
			m.AddSym(i, j, vol)
		}
	}
	return m
}
