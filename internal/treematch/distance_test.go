package treematch

import (
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/topology"
)

// treeDistanceMatrix lowers a balanced tree's hop distances into the
// distance-model form.
func treeDistanceMatrix(tree *Tree) [][]float64 {
	n := tree.Leaves()
	dist := make([][]float64, n)
	for a := 0; a < n; a++ {
		dist[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			dist[a][b] = float64(tree.LeafDistance(a, b))
		}
	}
	return dist
}

// ringMatrix is a ring of heavy neighbour traffic plus a light long pair.
func ringMatrix(t *testing.T, n int) *comm.Matrix {
	t.Helper()
	m := comm.New(n)
	for i := 0; i < n; i++ {
		m.Add(i, (i+1)%n, 100)
	}
	m.Add(0, n/2, 1)
	return m
}

// TestAssignByDistanceMatchesClassedOnTrees pins the bit-stability
// guarantee: under a tree-derived distance model, the distance matcher and
// the classed tree matcher produce identical assignments on balanced
// fabrics, classes present or not.
func TestAssignByDistanceMatchesClassedOnTrees(t *testing.T) {
	for _, spec := range []string{
		"cluster:4 pack:1 core:2",
		"rack:2 node:4 pack:1 core:2",
		"pod:2 rack:2 node:2 pack:1 core:2",
	} {
		topo, err := topology.FromSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		tree, err := FabricTree(topo)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		n := tree.Leaves()
		m := ringMatrix(t, n)
		classes := make([]int, n)
		for i := range classes {
			classes[i] = i % 2
		}
		for _, cl := range [][]int{nil, classes} {
			zero := cl
			if zero == nil {
				zero = make([]int, n)
			}
			fromTree, err := AssignClassed(tree, m, zero, zero)
			if err != nil {
				t.Fatalf("%s: AssignClassed: %v", spec, err)
			}
			fromDist, err := AssignByDistance(treeDistanceMatrix(tree), m, cl, cl)
			if err != nil {
				t.Fatalf("%s: AssignByDistance: %v", spec, err)
			}
			if !reflect.DeepEqual(fromTree, fromDist) {
				t.Errorf("%s (classes=%v): tree %v != distance %v", spec, cl != nil, fromTree, fromDist)
			}
		}
	}
}

// TestAssignByDistanceOnTorus checks that the distance matcher beats round
// robin under a routed torus distance model with ring traffic.
func TestAssignByDistanceOnTorus(t *testing.T) {
	topo, err := topology.FromSpec("torus:4x4 pack:1 core:1")
	if err != nil {
		t.Fatal(err)
	}
	dist := topo.FabricGraph().LatencyMatrix()
	n := len(dist)
	m := ringMatrix(t, n)
	seed, err := SFCSeed([]int{4, 4}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AssignByDistance(dist, m, nil, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if c, rr := DistanceCost(dist, m, got), DistanceCost(dist, m, identity); c > rr {
		t.Errorf("matched cost %v worse than identity %v", c, rr)
	}
	seen := make([]bool, n)
	for _, l := range got {
		if l < 0 || l >= n || seen[l] {
			t.Fatalf("assignment %v is not a permutation", got)
		}
		seen[l] = true
	}
}

func TestAssignByDistanceUneven(t *testing.T) {
	// rack:2 node:2,3 — the uneven shape FabricTree refuses (ErrUneven);
	// the distance model handles it through the routed tree graph. The
	// heavy pair must land inside one rack, not across the uplink.
	topo, err := topology.FromSpec("rack:2 node:2,3 pack:1 core:2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FabricTree(topo); err == nil {
		t.Fatal("FabricTree accepted an uneven fabric; the distance path is untested")
	}
	g := topo.FabricGraph()
	dist := g.LatencyMatrix()
	m := comm.New(5)
	m.Add(0, 1, 1000) // heavy pair
	m.Add(2, 3, 1)
	got, err := AssignByDistance(dist, m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist[got[0]][got[1]] != dist[0][1] {
		t.Errorf("heavy pair placed at distance %v, want intra-rack %v (assignment %v)",
			dist[got[0]][got[1]], dist[0][1], got)
	}
}

func TestAssignByDistanceSeedValidation(t *testing.T) {
	dist := [][]float64{{0, 1}, {1, 0}}
	m := comm.New(2)
	m.Add(0, 1, 5)
	if _, err := AssignByDistance(dist, m, nil, nil, []int{0}); err == nil {
		t.Error("short seed accepted")
	}
	if _, err := AssignByDistance(dist, m, nil, nil, []int{0, 0}); err == nil {
		t.Error("non-permutation seed accepted")
	}
	if _, err := AssignByDistance(dist, m, []int{0, 1}, []int{0, 1}, []int{1, 0}); err == nil {
		t.Error("class-violating seed accepted")
	}
}
