package orwl

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/topology"
)

// epochRing builds n tasks where task i writes its own location and reads
// its left neighbour's, iters times — an iterative cycle that exercises the
// epoch barrier with real lock traffic. Every task calls EndIteration after
// its final release of the iteration, as epoch-enabled programs must.
func epochRing(t *testing.T, rt *Runtime, n, iters int, volume float64) {
	t.Helper()
	locs := make([]*Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation("ring", int64(volume))
	}
	for i := 0; i < n; i++ {
		task := rt.AddTask("t", nil)
		left := locs[(i+n-1)%n]
		r := task.NewHandleVol(left, Read, volume, 0)
		w := task.NewHandleVol(locs[i], Write, volume, 1)
		task.SetFunc(func(tk *Task) error {
			for it := 0; it < iters; it++ {
				last := it == iters-1
				for _, h := range []*Handle{r, w} {
					if err := h.Acquire(); err != nil {
						return err
					}
					var err error
					if last {
						err = h.Release()
					} else {
						err = h.ReleaseAndRequest()
					}
					if err != nil {
						return err
					}
				}
				tk.EndIteration()
			}
			return nil
		})
	}
}

func epochMachine(t *testing.T) *numasim.Machine {
	t.Helper()
	topo, err := topology.FromSpec("pack:2 l3:1 core:4 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := numasim.New(topo, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEpochHookFiresAtBoundaries(t *testing.T) {
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 4, 12, 1024)
	var indices []int
	if err := rt.ConfigureEpochs(3, 0, func(e *Epoch) {
		indices = append(indices, e.Index())
		if got := len(e.Tasks()); got != 4 {
			t.Errorf("epoch %d: %d tasks at the barrier, want 4", e.Index(), got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range rt.Tasks() {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// 12 iterations / interval 3 = 4 epochs, the last at program end.
	if len(indices) != 4 {
		t.Fatalf("hook fired %d times, want 4 (%v)", len(indices), indices)
	}
	for i, idx := range indices {
		if idx != i+1 {
			t.Errorf("epoch indices %v, want 1..4", indices)
			break
		}
	}
	if rt.Epochs() != 4 {
		t.Errorf("Epochs() = %d, want 4", rt.Epochs())
	}
}

func TestEpochWindowResetsBetweenEpochs(t *testing.T) {
	const vol = 2048
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 3, 8, vol)
	var windows []float64
	if err := rt.ConfigureEpochs(4, 0, func(e *Epoch) {
		windows = append(windows, e.Window().TotalVolume())
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range rt.Tasks() {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(windows))
	}
	// Each epoch must see only its own 4 iterations' traffic: the window
	// resets between epochs instead of accumulating run-to-date volume.
	if windows[0] <= 0 {
		t.Fatalf("first epoch window empty")
	}
	if windows[1] > windows[0]*1.5 {
		t.Errorf("second epoch window %v not reset (first %v)", windows[1], windows[0])
	}
	// The run-to-date measured matrix keeps growing regardless.
	total := rt.MeasuredCommMatrix().TotalVolume()
	if total < windows[0]+windows[1] {
		t.Errorf("measured total %v smaller than the epoch windows %v", total, windows)
	}
	// After the final epoch boundary (iteration 8 = last), the window holds
	// nothing new.
	if got := rt.MeasuredWindow().TotalVolume(); got != 0 {
		t.Errorf("window holds %v after the final boundary, want 0", got)
	}
}

func TestEpochRebindMovesTaskAndData(t *testing.T) {
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 2, 6, 4096)
	tasks := rt.Tasks()
	rebound := false
	if err := rt.ConfigureEpochs(2, 0, func(e *Epoch) {
		if rebound {
			return
		}
		rebound = true
		if err := e.Rebind(tasks[0], 7); err != nil { // other socket
			t.Errorf("Rebind: %v", err)
		}
		if err := e.RebindControl(tasks[0], 6); err != nil {
			t.Errorf("RebindControl: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tasks[0].Proc().PU(); got != 7 {
		t.Errorf("task 0 on PU %d after rebind, want 7", got)
	}
	if got := tasks[0].PU(); got != 7 {
		t.Errorf("Task.PU() = %d after rebind, want 7", got)
	}
	if got := tasks[0].ControlPU(); got != 6 {
		t.Errorf("control PU %d after rebind, want 6", got)
	}
	if got := tasks[0].Proc().Stats().Migrations; got != 1 {
		t.Errorf("migrations = %d, want 1 (the charged rebind)", got)
	}
	// The task's written location followed it to the new socket.
	var wLoc *Location
	for _, h := range tasks[0].Handles() {
		if h.Mode() == Write {
			wLoc = h.Location()
		}
	}
	if home := wLoc.Region().Home(); home != mach.NodeOfPU(7) {
		t.Errorf("written region homed on node %d, want %d", home, mach.NodeOfPU(7))
	}
}

func TestEpochRebindChargedVsFree(t *testing.T) {
	run := func(free bool) float64 {
		mach := epochMachine(t)
		rt := NewRuntime(Options{Machine: mach})
		epochRing(t, rt, 2, 8, 1<<16)
		tasks := rt.Tasks()
		moved := false
		if err := rt.ConfigureEpochs(2, 0, func(e *Epoch) {
			if moved {
				return
			}
			moved = true
			var err error
			if free {
				err = e.RebindFree(tasks[0], 7)
			} else {
				err = e.Rebind(tasks[0], 7)
			}
			if err != nil {
				t.Errorf("rebind: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		for i, task := range tasks {
			if err := rt.Bind(task, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	charged, free := run(false), run(true)
	if charged <= free {
		t.Errorf("charged rebind makespan %v not above the free-migration bound %v", charged, free)
	}
}

func TestEpochDeterminism(t *testing.T) {
	run := func() float64 {
		mach := epochMachine(t)
		rt := NewRuntime(Options{Machine: mach, Seed: 11})
		epochRing(t, rt, 6, 12, 8192)
		if err := rt.ConfigureEpochs(3, 0.5, func(e *Epoch) {
			// Rotate every task one core to the right each epoch: constant
			// churn, still deterministic.
			for i, task := range e.Tasks() {
				if err := e.Rebind(task, (task.Proc().PU()+1)%8); err != nil {
					t.Errorf("rebind %d: %v", i, err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		for i, task := range rt.Tasks() {
			if err := rt.Bind(task, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("epoch-enabled run not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("makespan %v not positive", a)
	}
}

// TestEpochsCallableFromHook guards against a self-deadlock: the hook runs
// with the barrier mutex held, and Runtime.Epochs must stay safe to call
// there.
func TestEpochsCallableFromHook(t *testing.T) {
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 2, 4, 512)
	var seen []int
	if err := rt.ConfigureEpochs(2, 0, func(e *Epoch) {
		seen = append(seen, e.Runtime().Epochs())
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range rt.Tasks() {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("Epochs() from inside the hook saw %v, want [1 2]", seen)
	}
}

func TestConfigureEpochsValidation(t *testing.T) {
	rt := NewRuntime(Options{})
	if err := rt.ConfigureEpochs(0, 0, nil); err == nil {
		t.Errorf("interval 0 accepted")
	}
	rt1 := NewRuntime(Options{})
	if err := rt1.ConfigureEpochs(2, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt1.ConfigureEpochs(3, 0, nil); err == nil {
		t.Errorf("second ConfigureEpochs silently replaced the first")
	}
	rt2 := NewRuntime(Options{})
	rt2.AddTask("t", func(*Task) error { return nil })
	if err := rt2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rt2.ConfigureEpochs(1, 0, nil); err == nil {
		t.Errorf("ConfigureEpochs after Run accepted")
	}
}

// TestEpochWindowSurvivesCrossNodeRebind pins the feedback loop at cluster
// scale: rebinding a task across a cluster-node boundary mid-run (the
// fabric-priced inter-node migration of adaptive placement) must neither
// stall the quiesced runtime nor break the windowed measured matrix — the
// window keeps accumulating the migrated task's traffic under its stable
// task ID, and the task's written region is re-homed onto the new node.
func TestEpochWindowSurvivesCrossNodeRebind(t *testing.T) {
	topo, err := topology.FromSpec("rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	mach, err := numasim.New(topo, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(Options{Machine: mach})
	const n, iters, volume = 4, 12, 1 << 16
	epochRing(t, rt, n, iters, volume)
	tasks := rt.Tasks()
	for i, task := range tasks {
		// One task per cluster node: PUs 0,2,4,6 on the 2-rack fabric.
		if err := rt.Bind(task, 2*i); err != nil {
			t.Fatal(err)
		}
	}
	// Rebind task 0 across the rack boundary at the first epoch (PU 0,
	// node 0, rack 0 → PU 6, node 3, rack 1), and capture the window a
	// later epoch's hook observes — the matrix an adaptive engine would
	// decide from after the move.
	moved := false
	var postMove *comm.Matrix
	err = rt.ConfigureEpochs(4, 0, func(ep *Epoch) {
		switch ep.Index() {
		case 1:
			for _, task := range ep.Tasks() {
				if task.ID() == 0 {
					if err := ep.Rebind(task, 6); err != nil {
						t.Errorf("cross-node rebind: %v", err)
					}
					moved = true
				}
			}
		case 2:
			postMove = ep.Window()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("the epoch hook never saw task 0")
	}
	if got := tasks[0].Proc().PU(); got != 6 {
		t.Errorf("task 0 on PU %d after the run, want 6", got)
	}
	// The written region followed the task across the fabric.
	if home := rt.Locations()[0].Region().Home(); home != mach.NodeOfPU(6) {
		t.Errorf("task 0's region homed on node %d, want node %d", home, mach.NodeOfPU(6))
	}
	// The second epoch's window covers post-rebind iterations only (the
	// roll at epoch 1 cleared everything earlier): it must still record the
	// migrated task's exchanges under its stable ID 0.
	if postMove == nil {
		t.Fatal("the second epoch never fired")
	}
	if postMove.Order() != n {
		t.Fatalf("window order %d, want %d", postMove.Order(), n)
	}
	if vol := postMove.At(0, 1) + postMove.At(1, 0) + postMove.At(0, n-1) + postMove.At(n-1, 0); vol <= 0 {
		t.Errorf("no post-rebind traffic recorded for the migrated task (window row0 %v)", vol)
	}
	// The unbounded measured matrix agrees: task 0's total recorded volume
	// spans the whole run, before and after the move.
	m := rt.MeasuredCommMatrix()
	if vol := m.At(0, 1) + m.At(0, n-1); vol < float64(volume)*float64(iters-1) {
		t.Errorf("measured matrix lost the migrated task's traffic: %v", vol)
	}
}
