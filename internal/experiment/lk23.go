// Package experiment reproduces the paper's evaluation: the Livermore
// Kernel 23 benchmark (Figure 1) comparing ORWL with topology-aware binding
// against ORWL without binding and against an OpenMP-style baseline, plus
// ablation studies for each design choice (placement policy, control-thread
// strategy, oversubscription, block granularity, topology shape).
//
// Processing times are simulated seconds from the numasim virtual-time
// engine (see DESIGN.md §2 for the substitution rationale): deterministic,
// independent of the real Go scheduler, with constants calibrated to a
// 2016-era 24-socket SMP.
package experiment

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/numasim"
	"repro/internal/omp"
	"repro/internal/orwl"
	"repro/internal/placement"
	"repro/internal/topology"
)

// Impl names one of the three implementations of the paper's Figure 1.
type Impl string

// The three implementations compared in Figure 1.
const (
	// ORWLBind is ORWL with the paper's topology-aware placement module.
	ORWLBind Impl = "orwl-bind"
	// ORWLNoBind is ORWL with all threads left to the OS scheduler.
	ORWLNoBind Impl = "orwl-nobind"
	// OpenMP is the affinity-blind fork-join baseline.
	OpenMP Impl = "openmp"
)

// Config parameterizes one LK23 run. The zero value is filled with the
// paper's setup: a 16384×16384 matrix of doubles, 100 iterations, sockets
// of 8 cores.
type Config struct {
	// Rows, Cols is the matrix shape (paper: 16384×16384).
	Rows, Cols int
	// Iters is the number of iterations (paper: 100).
	Iters int
	// Cores is the number of cores used; the simulated machine has
	// Cores/CoresPerSocket sockets. 192 is the paper's full machine.
	Cores int
	// CoresPerSocket shapes the sub-machine (paper: 8).
	CoresPerSocket int
	// SMT adds a second hardware thread per core (off in the paper's
	// machine description; used by the control-thread ablation).
	SMT bool
	// Seed drives the simulated OS scheduler for unbound threads.
	Seed int64
	// OMPSerialFraction is the fraction of the OpenMP working set whose
	// pages end up on node 0 (the master's node: serially-touched head of
	// the allocation). The remainder is spread by the parallel first
	// touches. Default 0.12 (calibrated in EXPERIMENTS.md).
	OMPSerialFraction float64
	// BlocksOverride forces the ORWL block count (default: Cores, one
	// block per core, the paper's configuration at 192).
	BlocksOverride int
	// Policy overrides the placement policy for ORWLBind runs (default
	// placement.TreeMatch{}).
	Policy placement.Policy
}

func (c Config) withDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 16384
	}
	if c.Cols == 0 {
		c.Cols = 16384
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.Cores == 0 {
		c.Cores = 192
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 8
	}
	if c.OMPSerialFraction == 0 {
		c.OMPSerialFraction = 0.12
	}
	return c
}

// Validate rejects configurations the pipeline cannot run: non-positive
// core, socket or iteration counts, and grids without an interior. Zero
// values are legal (they select the paper defaults); explicit negative or
// too-small values are not. Commands call this at the flag boundary so a
// bad invocation dies with one clean line instead of a panic.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch {
	case d.Rows < 3 || d.Cols < 3:
		return fmt.Errorf("experiment: grid %dx%d too small (needs an interior of at least 3x3)", d.Rows, d.Cols)
	case d.Iters < 1:
		return fmt.Errorf("experiment: iteration count %d must be positive", d.Iters)
	case d.Cores < 1:
		return fmt.Errorf("experiment: core count %d must be positive", d.Cores)
	case d.CoresPerSocket < 1:
		return fmt.Errorf("experiment: cores per socket %d must be positive", d.CoresPerSocket)
	case d.BlocksOverride < 0:
		return fmt.Errorf("experiment: block count %d must not be negative", d.BlocksOverride)
	case d.OMPSerialFraction < 0 || d.OMPSerialFraction > 1:
		return fmt.Errorf("experiment: OMP serial fraction %v outside [0,1]", d.OMPSerialFraction)
	}
	return nil
}

// Result reports one LK23 run.
type Result struct {
	Impl    Impl
	Cores   int
	Blocks  int
	Tasks   int
	Seconds float64
	// Policy and Strategy describe the placement (ORWL runs).
	Policy   string
	Strategy string
	// Migrations counts simulated OS migrations across all threads.
	Migrations int
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-12s cores=%-3d blocks=%-3d time=%8.2fs policy=%s",
		r.Impl, r.Cores, r.Blocks, r.Seconds, r.Policy)
}

// Machine builds the simulated sub-machine for a configuration: one socket
// per CoresPerSocket cores, each socket with a shared L3 and its own NUMA
// node, matching the paper's SMP.
func Machine(cfg Config) (*numasim.Machine, error) {
	cfg = cfg.withDefaults()
	sockets := cfg.Cores / cfg.CoresPerSocket
	perSocket := cfg.CoresPerSocket
	if sockets == 0 {
		sockets = 1
		perSocket = cfg.Cores
	} else if sockets*cfg.CoresPerSocket != cfg.Cores {
		return nil, fmt.Errorf("experiment: %d cores not divisible into sockets of %d",
			cfg.Cores, cfg.CoresPerSocket)
	}
	pus := 1
	if cfg.SMT {
		pus = 2
	}
	spec := fmt.Sprintf("pack:%d l3:1 core:%d pu:%d", sockets, perSocket, pus)
	return machineFromSpec(spec)
}

// machineFromSpec builds a simulated machine from a topology spec string.
func machineFromSpec(spec string) (*numasim.Machine, error) {
	topo, err := topology.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	return numasim.New(topo, numasim.Config{})
}

// BlockGrid returns the most square bx×by factorization of n (bx >= by),
// e.g. 192 → 16×12, the paper's block grid at full scale.
func BlockGrid(n int) (bx, by int) {
	for d := int(math.Sqrt(float64(n))); d >= 1; d-- {
		if n%d == 0 {
			return n / d, d
		}
	}
	return n, 1
}

// buildLK23 constructs the cost-only LK23 block program on the runtime.
func buildLK23(rt *orwl.Runtime, cfg Config, blocks int) (*kernels.Program, error) {
	bx, by := BlockGrid(blocks)
	return kernels.Build(rt, cfg.Rows, cfg.Cols, kernels.BuildOptions{
		BX: bx, BY: by, Iters: cfg.Iters, Costs: kernels.LK23Costs,
	})
}

// Run executes one LK23 configuration with the given implementation and
// returns its simulated processing time.
func Run(impl Impl, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	switch impl {
	case ORWLBind, ORWLNoBind:
		return runORWL(impl, cfg)
	case OpenMP:
		return runOMP(cfg)
	default:
		return Result{}, fmt.Errorf("experiment: unknown implementation %q", impl)
	}
}

// runORWL executes the cost-only ORWL program (paper §III decomposition)
// under the configured placement.
func runORWL(impl Impl, cfg Config) (Result, error) {
	res, _, err := runORWLWithAssignment(impl, cfg)
	return res, err
}

// runORWLWithAssignment is runORWL, additionally returning the computed
// placement for structural inspection by the ablations.
func runORWLWithAssignment(impl Impl, cfg Config) (Result, *placement.Assignment, error) {
	mach, err := Machine(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	blocks := cfg.BlocksOverride
	if blocks == 0 {
		blocks = cfg.Cores
	}
	prog, err := buildLK23(rt, cfg, blocks)
	if err != nil {
		return Result{}, nil, err
	}
	var pol placement.Policy
	if impl == ORWLBind {
		pol = cfg.Policy
		if pol == nil {
			pol = placement.TreeMatch{}
		}
	} else {
		pol = placement.NoBind{}
	}
	a, err := placement.Place(rt, pol)
	if err != nil {
		return Result{}, nil, err
	}
	// The heavy memory streams are the main operations: one per block,
	// sweeping the block's working set each iteration. Frontier operations
	// only move strips.
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	placement.SetContention(mach, a, heavy)
	if err := rt.Run(); err != nil {
		return Result{}, nil, err
	}
	res := Result{
		Impl:     impl,
		Cores:    cfg.Cores,
		Blocks:   blocks,
		Tasks:    len(prog.Tasks),
		Seconds:  rt.MakespanSeconds(),
		Policy:   a.Policy,
		Strategy: a.Strategy.String(),
	}
	for _, t := range prog.Tasks {
		res.Migrations += t.Proc().Stats().Migrations
	}
	return res, a, nil
}

// runOMP executes the cost-only OpenMP baseline: Cores unbound threads
// sweeping the matrix row-wise with an implicit barrier per iteration.
// Memory placement models a realistic affinity-blind allocation: a
// serially-touched head of the arrays on node 0 plus a body spread across
// the nodes by the parallel first touches.
func runOMP(cfg Config) (Result, error) {
	return runOMPSchedule(cfg, omp.Static)
}

// runOMPSchedule is runOMP under an explicit loop schedule (static is the
// figure's baseline; the A7 ablation sweeps the others).
func runOMPSchedule(cfg Config, sched omp.Schedule) (Result, error) {
	mach, err := Machine(cfg)
	if err != nil {
		return Result{}, err
	}
	team, err := omp.NewTeam(mach, cfg.Cores, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	nodes := mach.Topology().NumNUMANodes()
	totalBytes := float64(cfg.Rows) * float64(cfg.Cols) * kernels.LK23Costs.BytesPerCell
	f := cfg.OMPSerialFraction
	head, err := mach.AllocOn("lk23-head", int64(totalBytes*f), 0)
	if err != nil {
		return Result{}, err
	}
	body := mach.AllocInterleaved("lk23-body", int64(totalBytes*(1-f)))

	// Static contention: every thread streams the head region on node 0;
	// the interleaved body spreads the remaining streams evenly; threads
	// roam, so most body accesses cross the fabric.
	mach.SetAccessors(0, cfg.Cores)
	for n := 1; n < nodes; n++ {
		mach.SetAccessors(n, (cfg.Cores+nodes-1)/nodes)
	}
	if nodes > 1 {
		mach.SetRemoteStreams(cfg.Cores * (nodes - 1) / nodes)
	}

	costs := kernels.LK23Costs
	chunk := 0
	if sched != omp.Static {
		// A dynamic chunk of ~1/8 of a thread's static share keeps the
		// dispatch overhead negligible while allowing rebalancing.
		chunk = (cfg.Rows - 2) / (8 * cfg.Cores)
		if chunk < 1 {
			chunk = 1
		}
	}
	for it := 0; it < cfg.Iters; it++ {
		team.ParallelFor(1, cfg.Rows-1, chunk, sched, func(lo, hi, tid int) {
			p := team.Proc(tid)
			cells := float64((hi - lo) * cfg.Cols)
			p.Compute(costs.FlopsPerCell * cells)
			p.MemRead(head, f*costs.BytesPerCell*cells)
			p.MemRead(body, (1-f)*costs.BytesPerCell*cells)
		})
	}
	res := Result{
		Impl:    OpenMP,
		Cores:   cfg.Cores,
		Blocks:  0,
		Tasks:   cfg.Cores,
		Seconds: team.MakespanSeconds(),
		Policy:  "none",
	}
	for tid := 0; tid < team.Size(); tid++ {
		res.Migrations += team.Proc(tid).Stats().Migrations
	}
	return res, nil
}
