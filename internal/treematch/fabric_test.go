package treematch

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/topology"
)

func TestFabricTree(t *testing.T) {
	top, err := topology.FromSpec("rack:2 node:3 pack:1 core:2")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := FabricTree(top)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Leaves(); got != 6 {
		t.Fatalf("fabric tree leaves = %d, want 6 cluster nodes", got)
	}
	if got := tree.Arities(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("fabric tree arities = %v, want [2 3]", got)
	}
	// Same-rack nodes are closer than rack-crossing pairs.
	if intra, inter := tree.LeafDistance(0, 1), tree.LeafDistance(0, 3); intra >= inter {
		t.Errorf("intra-rack distance %d not below cross-rack %d", intra, inter)
	}
}

func TestFabricTreeFlatFabric(t *testing.T) {
	top, err := topology.FromSpec("node:4 pack:1 core:2")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := FabricTree(top)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 4 || tree.Depth() != 2 {
		t.Fatalf("flat fabric tree = %v, want a single 4-ary level", tree)
	}
	// On a flat fabric every leaf pair is equidistant: permuting groups
	// cannot change the modeled cost, which is why Hierarchical skips the
	// matching there.
	d := tree.LeafDistance(0, 1)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if tree.LeafDistance(a, b) != d {
				t.Fatalf("leaf distance (%d,%d) = %d, want uniform %d", a, b, tree.LeafDistance(a, b), d)
			}
		}
	}
}

func TestFabricTreeNoCluster(t *testing.T) {
	if _, err := FabricTree(topology.PaperMachine()); err == nil || !strings.Contains(err.Error(), "no cluster level") {
		t.Fatalf("single machine accepted: %v", err)
	}
}

// TestPartitionAcrossMatrix: the emitted aggregated matrix is the quotient
// of the affinity matrix over the returned groups.
func TestPartitionAcrossMatrix(t *testing.T) {
	m := comm.New(6)
	m.AddSym(0, 1, 10)
	m.AddSym(2, 3, 10)
	m.AddSym(4, 5, 10)
	m.AddSym(1, 2, 1)
	groups, agg, err := PartitionAcrossMatrix(m, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Order() != 3 {
		t.Fatalf("aggregated order = %d, want 3", agg.Order())
	}
	want, err := m.Aggregate(groups)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Equal(want, 0) {
		t.Error("aggregated matrix does not match m.Aggregate(groups)")
	}
	// The heavy pairs stay together, so every diagonal entry carries them.
	for g := 0; g < 3; g++ {
		if agg.At(g, g) != 20 {
			t.Errorf("group %d intra volume = %.0f, want 20", g, agg.At(g, g))
		}
	}
}

// TestPartitionAcrossBalancedStreams: among equal-cut partitions the
// portfolio prefers the one whose most exposed group sends fewer streams
// across the boundary — the property per-link fabric contention rewards.
func TestPartitionAcrossBalancedStreams(t *testing.T) {
	// 8×4 halo grid, 4 groups of 8: vertical slices and 4×2 blocks tie on
	// cut volume, but slices expose 8 crossing entities on the middle groups
	// while blocks expose at most 6.
	bx, by := 8, 4
	m := comm.New(bx * by)
	id := func(x, y int) int { return y*bx + x }
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			if x+1 < bx {
				m.AddSym(id(x, y), id(x+1, y), 1)
			}
			if y+1 < by {
				m.AddSym(id(x, y), id(x, y+1), 1)
			}
		}
	}
	groups, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, peak := crossingStats(m, groups)
	if peak > 6 {
		t.Errorf("most exposed group sends %d streams, want a balanced partition (<= 6)", peak)
	}
}
