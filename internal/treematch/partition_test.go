package treematch

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/topology"
)

func TestNodeSubtree(t *testing.T) {
	topo, err := topology.FromSpec("node:4 pack:2 core:8")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NodeSubtree(topo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Leaves(); got != 16 {
		t.Fatalf("per-node subtree has %d leaves, want 16", got)
	}
	// The subtree must not contain the cluster arity.
	full, err := FromTopology(topo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if full.Leaves() != 64 {
		t.Fatalf("full tree has %d leaves, want 64", full.Leaves())
	}
}

func TestNodeSubtreeSingleMachine(t *testing.T) {
	topo, err := topology.FromSpec("pack:2 core:4")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NodeSubtree(topo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Leaves(); got != 8 {
		t.Fatalf("single-machine subtree has %d leaves, want 8", got)
	}
}

func TestNodeSubtreeUnevenRejected(t *testing.T) {
	topo, err := topology.FromSpec("node:2 pack:2 core:4,4,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NodeSubtree(topo, topology.Core); err == nil {
		t.Fatal("uneven cluster accepted")
	}
}

func TestPartitionAcrossLattice(t *testing.T) {
	// An 8x4 lattice with uniform edges: the optimal 4-way partition cuts
	// 12 edges (4 vertical 2x4 stripes). The portfolio partitioner must
	// find a 12-edge cut.
	m := comm.Stencil2D(8, 4, 1000, 0)
	groups, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := m.TotalVolume()
	intra := intraVolume(m, groups)
	cutEdges := (total - intra) / 2000 // each cut edge carries 1000 both ways
	if cutEdges > 12 {
		t.Errorf("4-way partition of the 8x4 lattice cuts %.0f edges, want <= 12", cutEdges)
	}
	for gi, g := range groups {
		if len(g) != 8 {
			t.Errorf("group %d has %d members, want 8", gi, len(g))
		}
	}
}

func TestPartitionAcrossUnevenOrder(t *testing.T) {
	// 10 entities across 4 groups: capacity ceil(10/4)=3, padding stripped.
	m := comm.Ring(10, 100)
	groups, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("%d groups, want 4", len(groups))
	}
	seen := make([]bool, 10)
	for _, g := range groups {
		if len(g) > 3 {
			t.Errorf("group of %d exceeds capacity 3", len(g))
		}
		for _, e := range g {
			if seen[e] {
				t.Fatalf("entity %d in two groups", e)
			}
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			t.Errorf("entity %d not assigned", e)
		}
	}
}

func TestPartitionAcrossDegenerate(t *testing.T) {
	if _, err := PartitionAcross(comm.New(4), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	groups, err := PartitionAcross(comm.New(0), 3, Options{})
	if err != nil || len(groups) != 3 {
		t.Errorf("empty matrix: groups=%v err=%v", groups, err)
	}
	// k=1: everything in one group.
	groups, err = PartitionAcross(comm.Ring(5, 10), 1, Options{})
	if err != nil || len(groups) != 1 || len(groups[0]) != 5 {
		t.Errorf("k=1: groups=%v err=%v", groups, err)
	}
}
