// Benchmarks regenerating the paper's evaluation (Figure 1 is its only
// figure; it has no tables) plus the ablation studies of DESIGN.md §4 and
// micro-benchmarks of the core components.
//
// The benchmark wall-clock time measures the reproduction machinery; the
// scientific output is the simulated processing time, reported as the
// custom metric "sim-sec" (simulated seconds of the 16384×16384, 100-
// iteration Livermore Kernel 23 run on the 2016-era 24×8 SMP model).
//
//	go test -bench BenchmarkFigure1 -benchmem
package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/experiment"
	"repro/internal/kernels"
	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/topology"
	"repro/internal/treematch"
)

// benchCfg is the paper's full-scale configuration.
func benchCfg() experiment.Config {
	return experiment.Config{Seed: 42} // defaults: 16384², 100 iters, 24×8
}

// BenchmarkFigure1 regenerates Figure 1: every implementation at every core
// count of the sweep. The sim-sec metric is the value the paper plots.
func BenchmarkFigure1(b *testing.B) {
	for _, cores := range experiment.DefaultFigure1Points() {
		for _, impl := range []experiment.Impl{
			experiment.ORWLBind, experiment.ORWLNoBind, experiment.OpenMP,
		} {
			b.Run(fmt.Sprintf("%s/cores=%d", impl, cores), func(b *testing.B) {
				cfg := benchCfg()
				cfg.Cores = cores
				var sim float64
				for i := 0; i < b.N; i++ {
					res, err := experiment.Run(impl, cfg)
					if err != nil {
						b.Fatal(err)
					}
					sim = res.Seconds
				}
				b.ReportMetric(sim, "sim-sec")
			})
		}
	}
}

// BenchmarkAblationPolicies is ablation A1: placement policies at full
// scale.
func BenchmarkAblationPolicies(b *testing.B) {
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationPolicies(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds, metricUnit(r.Name))
	}
}

// BenchmarkAblationControlThreads is ablation A2: the control-thread
// strategies of Algorithm 1.
func BenchmarkAblationControlThreads(b *testing.B) {
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationControlThreads(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds, metricUnit(r.Name))
	}
}

// BenchmarkAblationOversubscription is ablation A3.
func BenchmarkAblationOversubscription(b *testing.B) {
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationOversubscription(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds, metricUnit(r.Name))
	}
}

// BenchmarkAblationGranularity is ablation A4: block-granularity sweep.
func BenchmarkAblationGranularity(b *testing.B) {
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationGranularity(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds, metricUnit(r.Name))
	}
}

// BenchmarkAblationTopology is ablation A5: 192 cores arranged flat vs
// deep.
func BenchmarkAblationTopology(b *testing.B) {
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationTopology(benchCfg(), experiment.DefaultTopologyCases())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds, metricUnit(r.Name))
	}
}

// BenchmarkAblationDistribution is ablation A6: the NUMA-distribution step.
func BenchmarkAblationDistribution(b *testing.B) {
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationDistribution(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds, metricUnit(r.Name))
	}
}

// BenchmarkAblationAdaptive is ablation A8: one-shot static placement
// against the epoch-based adaptive engine (and its free-migration oracle)
// on the phase-shifting and stationary workloads. Reduced scale: the full
// stationary configuration is already covered by Figure 1, and the
// phase-shift scenario is scale-independent in what it demonstrates.
func BenchmarkAblationAdaptive(b *testing.B) {
	cfg := experiment.Config{Rows: 4096, Cols: 4096, Iters: 10, Cores: 48, Seed: 42}
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationAdaptive(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAndAssert(b, rows, "adaptive")
}

// BenchmarkAblationCluster is ablation A9: the multi-node stencil under
// hierarchical two-level placement, flat TreeMatch on the cluster tree,
// round-robin across nodes, and a fabric-free single machine of the same
// core count.
func BenchmarkAblationCluster(b *testing.B) {
	cfg := experiment.ClusterConfig{Seed: 42} // defaults: 4 nodes x 12 cores
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The A9 acceptance property, enforced at bench time too: hierarchical
	// placement must beat round-robin and never lose to flat treematch (the
	// two can tie exactly when both find the same optimal partition; see
	// TestAblationCluster).
	reportAndAssert(b, rows, "cluster")
}

// BenchmarkAblationRack is ablation A10: the rack-skewed stencil on a
// multi-switch fabric under fabric-aware three-level placement, the
// fabric-blind hierarchical variant, and flat TreeMatch.
func BenchmarkAblationRack(b *testing.B) {
	cfg := experiment.RackConfig{Seed: 42} // defaults: 2 racks x 2 nodes x 8 cores
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationRack(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The A10 acceptance property, enforced at bench time too: fabric-aware
	// three-level placement strictly beats the fabric-blind variant, which
	// strictly beats flat treematch.
	reportAndAssert(b, rows, "rack")
}

// BenchmarkAblationHetero is ablation A11: the pod-skewed stencil on a
// heterogeneous three-switch-level platform under capacity- and depth-aware
// placement, the capacity-blind variant, and the depth-blind variant.
func BenchmarkAblationHetero(b *testing.B) {
	cfg := experiment.HeteroConfig{Seed: 42} // defaults: 2 pods x 2 racks x (8+4) cores
	var rows []experiment.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.AblationHetero(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The A11 acceptance property, enforced at bench time too: capacity-
	// aware depth-aware placement strictly beats the capacity-blind
	// variant, which strictly beats the depth-blind one.
	reportAndAssert(b, rows, "hetero")
}

// BenchmarkAblationShift is ablation A12: the rack-crossing phase shift
// under one-shot hierarchical placement, the adaptive engine with flat and
// with fabric-aware candidates, and the free-migration oracle — on the
// default shape and on 4 racks, mirroring the two-shape acceptance property
// of the test suite.
func BenchmarkAblationShift(b *testing.B) {
	for name, cfg := range map[string]experiment.ShiftConfig{
		"2x2x8": {Seed: 42},
		"4x2x8": {Racks: 4, Seed: 42},
	} {
		b.Run(name, func(b *testing.B) {
			var rows []experiment.AblationRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = experiment.AblationShift(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			// The A12 acceptance property, enforced at bench time too:
			// fabric-aware adaptive candidates strictly beat flat ones,
			// which strictly beat never adapting, with the oracle as the
			// lower bound.
			reportAndAssert(b, rows, "shift")
		})
	}
}

// BenchmarkAblationTorus is ablation A13: the scrambled halo exchange on a
// routed torus fabric under SFC-seeded distance matching, the balanced-tree-
// restricted matcher (which cannot see the shape), and round-robin — on two
// torus shapes and two scheduler seeds, mirroring the acceptance property of
// the test suite.
func BenchmarkAblationTorus(b *testing.B) {
	for _, dims := range [][]int{{4, 4}, {2, 2, 4}} {
		for _, seed := range []int64{7, 42} {
			b.Run(fmt.Sprintf("%dd/seed=%d", len(dims), seed), func(b *testing.B) {
				cfg := experiment.TorusConfig{Dims: dims, Seed: seed}
				var rows []experiment.AblationRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = experiment.AblationTorus(cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				// The A13 acceptance property, enforced at bench time too:
				// sfc strictly beats tree-matched, which strictly beats rr.
				reportAndAssert(b, rows, "torus")
			})
		}
	}
}

// BenchmarkAblationFault is ablation A14: the rack-skewed stencil with a
// mid-run correlated node kill + uplink degrade, under the four fault-
// handling arms — on two platform shapes and two scheduler seeds, mirroring
// the acceptance property of the test suite.
func BenchmarkAblationFault(b *testing.B) {
	for _, shape := range []struct {
		name string
		cfg  experiment.FaultConfig
	}{
		{"2x4x8", experiment.FaultConfig{}},
		{"2x6x8", experiment.FaultConfig{NodesPerRack: 6}},
	} {
		for _, seed := range []int64{7, 42} {
			b.Run(fmt.Sprintf("%s/seed=%d", shape.name, seed), func(b *testing.B) {
				cfg := shape.cfg
				cfg.Seed = seed
				var rows []experiment.AblationRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = experiment.AblationFault(cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				// The A14 acceptance property, enforced at bench time too:
				// fault-aware strictly beats fault-blind, which strictly beats
				// static-with-respawn, and the spread-hardened initial
				// placement also strictly beats static-with-respawn.
				reportAndAssert(b, rows, "fault")
			})
		}
	}
}

// BenchmarkAblationSched is ablation A15: the online multi-tenant scheduler
// replaying the seeded job stream under the three policy arms — each grid
// cell (platform shape × stream seed) benchmarked and asserted separately,
// mirroring the acceptance property of the test suite.
func BenchmarkAblationSched(b *testing.B) {
	base := experiment.SchedConfig{}
	for _, shape := range []struct {
		name, spec string
	}{
		{"2rack", "rack:2 node:4 pack:2 core:4 pu:1"},
		{"2pod", "pod:2 rack:2 node:2 pack:2 core:4 pu:1"},
	} {
		for _, seed := range []int64{7, 42} {
			b.Run(fmt.Sprintf("%s/seed=%d", shape.name, seed), func(b *testing.B) {
				cfg := base
				cfg.Shapes = []string{shape.spec}
				cfg.Seeds = []int64{seed}
				var rows []experiment.AblationRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = experiment.AblationSched(cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				// The A15 acceptance property, enforced at bench time too:
				// topo-aware strictly beats topo-blind on aggregate job cycle
				// time, and topo-blind strictly beats first-fit.
				reportAndAssert(b, rows, "sched")
			})
		}
	}
}

// BenchmarkAblationSched2 is ablation A16: the phase-2 scheduler policies
// (conservative backfill, priority preemption, hysteresis-gated
// defragmentation) layered on the topology-aware scheduler — each grid cell
// (platform shape × stream seed) benchmarked and asserted separately,
// mirroring the acceptance property of the test suite.
func BenchmarkAblationSched2(b *testing.B) {
	base := experiment.Sched2Config{}
	for _, shape := range []struct {
		name, spec string
	}{
		{"2rack", "rack:2 node:4 pack:2 core:4 pu:1"},
		{"2pod", "pod:2 rack:2 node:2 pack:2 core:4 pu:1"},
	} {
		for _, seed := range []int64{8, 37} {
			b.Run(fmt.Sprintf("%s/seed=%d", shape.name, seed), func(b *testing.B) {
				cfg := base
				cfg.Shapes = []string{shape.spec}
				cfg.Seeds = []int64{seed}
				var rows []experiment.AblationRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = experiment.AblationSched2(cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				// The A16 acceptance property, enforced at bench time too:
				// the full policy stack strictly beats backfill-only on
				// aggregate job cycle time, and backfill-only strictly beats
				// plain FIFO.
				reportAndAssert(b, rows, "sched2")
			})
		}
	}
}

// reportAndAssert emits every row's simulated seconds as a custom metric and
// fails the benchmark when an asserted ordering of the ablation is violated
// — the exact same relations the test suite and cmd/ablate -json check
// (experiment.AblationOrderings).
func reportAndAssert(b *testing.B, rows []experiment.AblationRow, exp string) {
	b.Helper()
	for _, r := range rows {
		b.ReportMetric(r.Seconds, metricUnit(r.Name))
	}
	if err := experiment.CheckOrderings(rows, experiment.AblationOrderings(exp)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTreeMatchFullScale measures the mapping algorithm itself on the
// paper's full problem: the 1728-operation LK23 affinity matrix onto the
// 24×8 machine (runs at program launch in the real system, so its cost
// matters).
func BenchmarkTreeMatchFullScale(b *testing.B) {
	topo := topology.PaperMachine()
	tree, err := treematch.FromTopology(topo, topology.Core)
	if err != nil {
		b.Fatal(err)
	}
	m := comm.LK23OpLevel(16, 12, 1024, 1366, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treematch.Map(treematch.Target{Tree: tree, SMTWays: 1}, m, treematch.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLockHandoff measures one ORWL acquire/release round trip between
// two tasks (real concurrency, no simulation).
func BenchmarkLockHandoff(b *testing.B) {
	rt := orwl.NewRuntime(orwl.Options{})
	loc := rt.NewLocation("x", 8)
	iters := b.N
	for i := 0; i < 2; i++ {
		task := rt.AddTask("t", func(task *orwl.Task) error {
			h := task.Handle(0)
			for it := 0; it < iters; it++ {
				if err := h.Acquire(); err != nil {
					return err
				}
				var err error
				if it == iters-1 {
					err = h.Release()
				} else {
					err = h.ReleaseAndRequest()
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		task.NewHandle(loc, orwl.Write)
	}
	b.ResetTimer()
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimMemAccess measures one priced memory access of the machine
// simulator.
func BenchmarkSimMemAccess(b *testing.B) {
	mach, err := numasim.New(topology.PaperMachine(), numasim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := mach.NewProc("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	r, err := mach.AllocOn("data", 1<<30, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MemRead(r, 4096)
	}
}

// BenchmarkLK23SequentialSweep measures the real arithmetic of one Jacobi
// sweep over a 512×512 grid (the validation path).
func BenchmarkLK23SequentialSweep(b *testing.B) {
	g := kernels.NewGrid(512, 512, 1)
	dst := g.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.StepJacobi(dst, g, g.Cell)
	}
	b.SetBytes(int64(512 * 512 * kernels.Streams * 8))
}

// BenchmarkORWLRealLK23 measures the full runtime overhead of a real-
// arithmetic ORWL LK23 run (128×128, 2×2 blocks, 10 iterations) including
// canonical init, lock traffic and halo copies.
func BenchmarkORWLRealLK23(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt := orwl.NewRuntime(orwl.Options{})
		g := kernels.NewGrid(128, 128, 7)
		_, err := kernels.Build(rt, 128, 128, kernels.BuildOptions{
			BX: 2, BY: 2, Iters: 10, Costs: kernels.LK23Costs, Grid: g, Cell: g.Cell,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// metricUnit builds a whitespace-free custom-metric unit from an ablation
// row name (testing.B.ReportMetric rejects units containing spaces).
func metricUnit(name string) string {
	return "sim-sec-" + strings.ReplaceAll(name, " ", "_")
}
