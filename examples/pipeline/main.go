// Pipeline: a producer → filter → consumer chain built from ORWL locations,
// demonstrating the model beyond iterative stencils. Each stage reads its
// input location and writes its output location; the FIFO ordering of the
// locks is the only synchronization — no channels, no barriers — and the
// canonical initialization makes the pipeline start up without deadlock.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro"
)

const items = 16

func main() {
	sys, err := repro.NewSystem(repro.SystemOptions{
		TopologySpec: "pack:2 l3:1 core:4 pu:1", Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt := sys.Runtime()

	// Stage boundaries: producer→filter and filter→consumer.
	ab := rt.NewLocation("a->b", 8)
	ab.SetData([]float64{0})
	bc := rt.NewLocation("b->c", 8)
	bc.SetData([]float64{0})

	var received []float64

	// Producer: writes 1, 2, 3, ... into ab.
	prod := rt.AddTask("producer", func(t *repro.Task) error {
		out := t.Handle(0)
		for i := 1; i <= items; i++ {
			if err := out.Acquire(); err != nil {
				return err
			}
			buf, err := out.Float64s()
			if err != nil {
				return err
			}
			buf[0] = float64(i)
			t.Proc().ComputeCycles(500)
			if err := next(out, i == items); err != nil {
				return err
			}
		}
		return nil
	})
	// The producer's write must reach the head of ab's FIFO first: rank 0.
	prod.NewHandleVol(ab, repro.Write, 8, 0)

	// Filter: squares each value from ab into bc.
	filt := rt.AddTask("filter", func(t *repro.Task) error {
		in, out := t.Handle(0), t.Handle(1)
		for i := 1; i <= items; i++ {
			if err := in.Acquire(); err != nil {
				return err
			}
			buf, err := in.Float64s()
			if err != nil {
				return err
			}
			v := buf[0]
			if err := next(in, i == items); err != nil {
				return err
			}
			if err := out.Acquire(); err != nil {
				return err
			}
			obuf, err := out.Float64s()
			if err != nil {
				return err
			}
			obuf[0] = v * v
			t.Proc().ComputeCycles(800)
			if err := next(out, i == items); err != nil {
				return err
			}
		}
		return nil
	})
	filt.NewHandleVol(ab, repro.Read, 8, 1)  // behind the producer's write
	filt.NewHandleVol(bc, repro.Write, 8, 0) // ahead of the consumer's read

	// Consumer: collects the squared values.
	cons := rt.AddTask("consumer", func(t *repro.Task) error {
		in := t.Handle(0)
		for i := 1; i <= items; i++ {
			if err := in.Acquire(); err != nil {
				return err
			}
			buf, err := in.Float64s()
			if err != nil {
				return err
			}
			received = append(received, buf[0])
			t.Proc().ComputeCycles(300)
			if err := next(in, i == items); err != nil {
				return err
			}
		}
		return nil
	})
	cons.NewHandleVol(bc, repro.Read, 8, 1)

	if err := sys.Run(nil); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())
	fmt.Printf("received %d items: %v...\n", len(received), received[:4])
	for i, v := range received {
		want := float64((i + 1) * (i + 1))
		if v != want {
			log.Fatalf("item %d = %v, want %v", i, v, want)
		}
	}
	fmt.Println("pipeline order verified: every item arrived exactly once, in order")
}

// next is the iterative release: re-queue while the stream continues.
func next(h *repro.Handle, last bool) error {
	if last {
		return h.Release()
	}
	return h.ReleaseAndRequest()
}
