package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/orwl"
)

// TestScatterUnevenTopology is the regression test for the Scatter aliasing
// bug: on a machine whose sockets do not evenly divide the cores, the old
// `(k/sockets) % (cores/sockets)` arithmetic doubled up some cores while
// leaving others idle. Scatter must assign the first NumCores tasks to
// NumCores distinct cores, interleaved across the sockets.
func TestScatterUnevenTopology(t *testing.T) {
	mach := machine(t, "pack:3 core:2,1,1 pu:1") // 4 cores over 3 sockets
	m := comm.Ring(4, 1)
	a, err := Scatter{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i, pu := range a.TaskPU {
		if pu < 0 || pu >= mach.Topology().NumPUs() {
			t.Fatalf("task %d on PU %d, out of range", i, pu)
		}
		if seen[pu] {
			t.Errorf("task %d aliases an already-used PU %d", i, pu)
		}
		seen[pu] = true
	}
	if len(seen) != 4 {
		t.Errorf("scatter used %d distinct cores, want 4", len(seen))
	}
	// Consecutive tasks land on different sockets while sockets remain.
	n0 := mach.NodeOfPU(a.TaskPU[0])
	n1 := mach.NodeOfPU(a.TaskPU[1])
	if n0 == n1 {
		t.Errorf("tasks 0 and 1 share socket/node %d; want interleaved", n0)
	}
}

func TestScatterEvenTopologyUnchanged(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:2 pu:1")
	m := comm.Ring(4, 1)
	a, err := Scatter{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	// Socket-interleaved order on 2 sockets × 2 cores: c0, c2, c1, c3.
	want := []int{0, 2, 1, 3}
	for i, pu := range a.TaskPU {
		if pu != want[i] {
			t.Errorf("TaskPU = %v, want %v", a.TaskPU, want)
			break
		}
	}
}

// adaptiveRing builds the same iterative ring as the orwl epoch tests:
// task i writes its own location, reads its left neighbour's, and calls
// EndIteration after the iteration's final release.
func adaptiveRing(rt *orwl.Runtime, n, iters int, volume float64) {
	locs := make([]*orwl.Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation("ring", int64(volume))
	}
	for i := 0; i < n; i++ {
		task := rt.AddTask("t", nil)
		r := task.NewHandleVol(locs[(i+n-1)%n], orwl.Read, volume, 0)
		w := task.NewHandleVol(locs[i], orwl.Write, volume, 1)
		task.SetFunc(func(tk *orwl.Task) error {
			for it := 0; it < iters; it++ {
				last := it == iters-1
				for _, h := range []*orwl.Handle{r, w} {
					if err := h.Acquire(); err != nil {
						return err
					}
					var err error
					if last {
						err = h.Release()
					} else {
						err = h.ReleaseAndRequest()
					}
					if err != nil {
						return err
					}
				}
				tk.EndIteration()
			}
			return nil
		})
	}
}

func TestAdaptiveStationaryHoldsStill(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:4 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	adaptiveRing(rt, 8, 12, 1<<20)
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{EpochIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Epochs != 4 {
		t.Errorf("epochs = %d, want 4", st.Epochs)
	}
	// A stationary pattern matches the static prediction: hysteresis must
	// keep the engine from churning tasks for permutation-equivalent
	// candidates.
	if st.Rebinds != 0 {
		t.Errorf("stationary workload caused %d rebinds, want 0 (applied=%d skipped=%d)",
			st.Rebinds, st.Applied, st.Skipped)
	}
}

func TestPlaceAdaptiveValidation(t *testing.T) {
	rt := orwl.NewRuntime(orwl.Options{})
	if _, err := PlaceAdaptive(rt, AdaptiveOptions{EpochIters: 1}); err == nil {
		t.Errorf("adaptive placement accepted a machine-less runtime")
	}
	mach := machine(t, "pack:2 l3:1 core:2 pu:1")
	rt2 := orwl.NewRuntime(orwl.Options{Machine: mach})
	adaptiveRing(rt2, 2, 2, 64)
	if _, err := PlaceAdaptive(rt2, AdaptiveOptions{}); err == nil {
		t.Errorf("adaptive placement accepted EpochIters 0")
	}
}

func TestMappingCostPrefersLocality(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:2 pu:1")
	m := comm.New(2)
	m.AddSym(0, 1, 1<<20)
	local := MappingCost(mach, m, []int{0, 1})  // same socket
	remote := MappingCost(mach, m, []int{0, 2}) // across sockets
	if local >= remote {
		t.Errorf("local mapping cost %v not below remote %v", local, remote)
	}
}
