package treematch

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/topology"
)

func mustTree(t *testing.T, arities ...int) *Tree {
	t.Helper()
	tr, err := NewTree(arities)
	if err != nil {
		t.Fatalf("NewTree(%v): %v", arities, err)
	}
	return tr
}

func TestNewTree(t *testing.T) {
	tr := mustTree(t, 24, 8)
	if tr.Leaves() != 192 {
		t.Errorf("Leaves = %d, want 192", tr.Leaves())
	}
	if tr.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", tr.Depth())
	}
	if tr.Arity(0) != 24 || tr.Arity(1) != 8 {
		t.Errorf("Arities = %v", tr.Arities())
	}
	if tr.String() != "tree[24 8]" {
		t.Errorf("String = %q", tr.String())
	}
	empty := mustTree(t)
	if empty.Leaves() != 1 || empty.Depth() != 1 {
		t.Errorf("empty tree: %d leaves depth %d", empty.Leaves(), empty.Depth())
	}
	if _, err := NewTree([]int{4, 0}); err == nil {
		t.Errorf("zero arity accepted")
	}
	if _, err := NewTree([]int{-1}); err == nil {
		t.Errorf("negative arity accepted")
	}
	if _, err := NewTree([]int{1 << 14, 1 << 14}); err == nil {
		t.Errorf("oversized tree accepted")
	}
}

func TestFromTopology(t *testing.T) {
	top, err := topology.FromSpec("pack:4 l3:1 core:2 pu:2")
	if err != nil {
		t.Fatal(err)
	}
	// Core leaves: arity-1 levels (numa, l3) collapse; arities [4,2].
	tr, err := FromTopology(top, topology.Core)
	if err != nil {
		t.Fatalf("FromTopology: %v", err)
	}
	if got := tr.Arities(); len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Errorf("core-leaf arities = %v, want [4 2]", got)
	}
	// PU leaves: arities [4,2,2].
	trPU, err := FromTopology(top, topology.PU)
	if err != nil {
		t.Fatalf("FromTopology(PU): %v", err)
	}
	if trPU.Leaves() != 16 {
		t.Errorf("PU leaves = %d, want 16", trPU.Leaves())
	}
	if _, err := FromTopology(top, topology.Group); err == nil {
		t.Errorf("missing level accepted")
	}
}

func TestExtend(t *testing.T) {
	tr := mustTree(t, 2, 3)
	ext, err := tr.Extend(4)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if ext.Leaves() != 24 || ext.Depth() != 4 {
		t.Errorf("extended: %d leaves depth %d", ext.Leaves(), ext.Depth())
	}
	if tr.Leaves() != 6 {
		t.Errorf("Extend mutated the original tree")
	}
	if _, err := tr.Extend(0); err == nil {
		t.Errorf("Extend(0) accepted")
	}
}

func TestAncestorAndDistance(t *testing.T) {
	tr := mustTree(t, 2, 3) // 6 leaves: two subtrees of 3
	if got := tr.AncestorIndex(4, 1); got != 1 {
		t.Errorf("AncestorIndex(4,1) = %d, want 1", got)
	}
	if got := tr.AncestorIndex(2, 1); got != 0 {
		t.Errorf("AncestorIndex(2,1) = %d, want 0", got)
	}
	if got := tr.AncestorIndex(5, 0); got != 0 {
		t.Errorf("AncestorIndex(5,0) = %d, want 0", got)
	}
	tests := []struct{ a, b, lca, dist int }{
		{0, 0, 2, 0},
		{0, 1, 1, 2}, // same subtree
		{0, 3, 0, 4}, // different subtrees
		{3, 5, 1, 2},
	}
	for _, tc := range tests {
		if got := tr.LCADepth(tc.a, tc.b); got != tc.lca {
			t.Errorf("LCADepth(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.lca)
		}
		if got := tr.LeafDistance(tc.a, tc.b); got != tc.dist {
			t.Errorf("LeafDistance(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.dist)
		}
	}
}

func TestRestrict(t *testing.T) {
	tr := mustTree(t, 24, 8) // 192 leaves
	r, err := tr.Restrict(72)
	if err != nil {
		t.Fatal(err)
	}
	// 24 sockets of 3 cores: deepest level shrinks first.
	if got := r.Arities(); got[0] != 24 || got[1] != 3 {
		t.Errorf("restricted arities = %v, want [24 3]", got)
	}
	if r.Leaves() < 72 {
		t.Errorf("restricted leaves = %d < 72", r.Leaves())
	}
	// Asking for >= leaves returns the same tree.
	same, err := tr.Restrict(192)
	if err != nil || same != tr {
		t.Errorf("Restrict(192) = %v, %v", same, err)
	}
	same, err = tr.Restrict(500)
	if err != nil || same != tr {
		t.Errorf("Restrict(500) = %v, %v", same, err)
	}
	if _, err := tr.Restrict(0); err == nil {
		t.Errorf("Restrict(0) accepted")
	}
	// Restriction can climb into upper levels when needed.
	r2, err := tr.Restrict(12)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Leaves() < 12 || r2.Leaves() > 14 {
		t.Errorf("Restrict(12) leaves = %d", r2.Leaves())
	}
}

func TestEmbedLeaf(t *testing.T) {
	orig := mustTree(t, 4, 8) // 32 leaves
	r, err := orig.Restrict(8)
	if err != nil {
		t.Fatal(err)
	}
	// Expect [4 2]: 4 sockets of 2 cores.
	if got := r.Arities(); got[0] != 4 || got[1] != 2 {
		t.Fatalf("restricted arities = %v", got)
	}
	// Restricted leaf 3 = socket 1, slot 1 -> original core 1*8+1 = 9.
	if got, err := EmbedLeaf(orig, r, 3); err != nil || got != 9 {
		t.Errorf("EmbedLeaf(3) = %d, %v, want 9", got, err)
	}
	if got, err := EmbedLeaf(orig, r, 0); err != nil || got != 0 {
		t.Errorf("EmbedLeaf(0) = %d, %v, want 0", got, err)
	}
	// Every embedded leaf is distinct and in range.
	seen := map[int]bool{}
	for leaf := 0; leaf < r.Leaves(); leaf++ {
		e, err := EmbedLeaf(orig, r, leaf)
		if err != nil || e < 0 || e >= orig.Leaves() || seen[e] {
			t.Fatalf("EmbedLeaf(%d) = %d, %v", leaf, e, err)
		}
		seen[e] = true
	}
	if _, err := EmbedLeaf(orig, r, 99); err == nil {
		t.Errorf("out-of-range leaf accepted")
	}
	other := mustTree(t, 4)
	if _, err := EmbedLeaf(other, r, 0); err == nil {
		t.Errorf("depth mismatch accepted")
	}
}

func TestMapWithDistributeSpreads(t *testing.T) {
	// 6 mutually-communicating tasks on a 4x4 tree: without distribution
	// they pile onto as few subtrees as possible; with it they must spread
	// over at least 3 sockets (restricted arity 4x2 gives ceil(6/2)=3).
	tree := mustTree(t, 4, 4)
	m := comm.AllToAll(6, 10)
	sockets := func(opt Options) int {
		res, err := Map(Target{Tree: tree, SMTWays: 1}, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		used := map[int]bool{}
		for _, leaf := range res.Assignment {
			used[leaf/4] = true
		}
		return len(used)
	}
	packed := sockets(Options{})
	spread := sockets(Options{Distribute: true})
	if spread <= packed {
		t.Errorf("distribution did not spread: %d sockets vs %d packed", spread, packed)
	}
}

func TestLeafDistanceMatchesTopologyHops(t *testing.T) {
	// The abstract tree distance must order pairs the same way as the
	// concrete topology hop distance (both are ultrametrics from the same
	// tree shape, modulo collapsed arity-1 levels).
	top, err := topology.FromSpec("pack:3 core:4 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FromTopology(top, topology.PU)
	if err != nil {
		t.Fatal(err)
	}
	pus := top.PUs()
	n := len(pus)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				ta, tb := tr.LeafDistance(i, j), tr.LeafDistance(i, k)
				ha, hb := top.HopDistance(pus[i], pus[j]), top.HopDistance(pus[i], pus[k])
				if (ta < tb) != (ha < hb) && (ta == tb) != (ha == hb) {
					t.Fatalf("distance order disagrees at (%d,%d,%d): tree %d,%d topo %d,%d",
						i, j, k, ta, tb, ha, hb)
				}
			}
		}
	}
}

func TestFromTopologyRejectsUneven(t *testing.T) {
	top, err := topology.FromSpec("pack:3 core:2,1,1 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTopology(top, topology.Core); err == nil {
		t.Errorf("FromTopology accepted an uneven topology; the balanced-tree distance model would be wrong")
	}
}
