// Command lk23 reproduces the paper's evaluation: the Livermore Kernel 23
// benchmark on a simulated NUMA machine, comparing ORWL with topology-aware
// binding, ORWL without binding, and an OpenMP-style baseline.
//
// Reproduce Figure 1 (the whole sweep):
//
//	lk23 -figure1
//
// Run a single configuration:
//
//	lk23 -impl orwl-bind -cores 192
//	lk23 -impl openmp -cores 48 -rows 8192 -cols 8192 -iters 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
)

func main() {
	var (
		figure1 = flag.Bool("figure1", false, "run the full Figure 1 sweep (all implementations × core counts)")
		impl    = flag.String("impl", "orwl-bind", "implementation: orwl-bind, orwl-nobind, openmp")
		cores   = flag.Int("cores", 192, "number of cores (sockets of -cores-per-socket)")
		points  = flag.String("points", "", "comma-separated core counts for -figure1 (default 8,16,32,48,96,144,192)")
		rows    = flag.Int("rows", 16384, "matrix rows")
		cols    = flag.Int("cols", 16384, "matrix columns")
		iters   = flag.Int("iters", 100, "iterations")
		perSock = flag.Int("cores-per-socket", 8, "cores per socket")
		seed    = flag.Int64("seed", 42, "seed for the simulated OS scheduler")
		blocks  = flag.Int("blocks", 0, "ORWL block count (default: one per core)")
	)
	flag.Parse()

	cfg, err := buildConfig(*rows, *cols, *iters, *cores, *perSock, *blocks, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	if *figure1 {
		pts := experiment.DefaultFigure1Points()
		if *points != "" {
			pts = nil
			for _, f := range strings.Split(*points, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					fatalf("bad -points entry %q: %v", f, err)
				}
				pts = append(pts, n)
			}
		}
		fmt.Printf("Livermore Kernel 23, %dx%d doubles, %d iterations (simulated seconds)\n",
			*rows, *cols, *iters)
		rowsOut, err := experiment.Figure1(pts, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiment.FormatFigure1(rowsOut))
		return
	}

	res, err := experiment.Run(experiment.Impl(*impl), cfg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(res)
	fmt.Printf("  tasks=%d strategy=%s migrations=%d\n", res.Tasks, res.Strategy, res.Migrations)
}

// buildConfig assembles and validates the experiment configuration from the
// flag values, so a bad invocation fails with one clean line instead of a
// panic deep in the pipeline.
func buildConfig(rows, cols, iters, cores, perSock, blocks int, seed int64) (experiment.Config, error) {
	cfg := experiment.Config{
		Rows: rows, Cols: cols, Iters: iters,
		Cores: cores, CoresPerSocket: perSock, Seed: seed,
		BlocksOverride: blocks,
	}
	if err := cfg.Validate(); err != nil {
		return experiment.Config{}, err
	}
	return cfg, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lk23: "+format+"\n", args...)
	os.Exit(1)
}
