package comm

import "sort"

// Sparse storage mode. A Matrix is either dense (row-major []float64, the
// historical representation) or sparse (per-row sorted adjacency, a CSR-style
// layout split per row so single-entry updates stay cheap). Both modes expose
// the same method set and — crucially for the partitioners, which must stay
// bit-reproducible — the same iteration order: ForEachNeighbor visits entries
// in ascending column order and skips zero values in both modes, so every
// float accumulation driven by it sees the same operands in the same order
// regardless of representation.
//
// Stencil-class workloads have O(1) nonzeros per row, so the sparse mode
// turns the O(n²) memory wall of dense matrices (8 TB at 1M tasks) into O(n).

// sparseRow is one matrix row in ascending column order. Explicit zeros may
// be stored (Set(i,j,0) on an existing entry); iteration skips them, so they
// are semantically invisible.
type sparseRow struct {
	cols []int32
	vals []float64
}

// find returns the position of column j and whether it is present; when
// absent, the position is the insertion point that keeps cols sorted.
func (r *sparseRow) find(j int) (int, bool) {
	c := int32(j)
	lo, hi := 0, len(r.cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.cols[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(r.cols) && r.cols[lo] == c
}

func (r *sparseRow) at(j int) float64 {
	if p, ok := r.find(j); ok {
		return r.vals[p]
	}
	return 0
}

func (r *sparseRow) set(j int, v float64) {
	p, ok := r.find(j)
	if ok {
		r.vals[p] = v
		return
	}
	if v == 0 {
		return // don't materialize zeros
	}
	r.cols = append(r.cols, 0)
	r.vals = append(r.vals, 0)
	copy(r.cols[p+1:], r.cols[p:])
	copy(r.vals[p+1:], r.vals[p:])
	r.cols[p] = int32(j)
	r.vals[p] = v
}

func (r *sparseRow) add(j int, v float64) {
	p, ok := r.find(j)
	if ok {
		r.vals[p] += v
		return
	}
	if v == 0 {
		return
	}
	r.cols = append(r.cols, 0)
	r.vals = append(r.vals, 0)
	copy(r.cols[p+1:], r.cols[p:])
	copy(r.vals[p+1:], r.vals[p:])
	r.cols[p] = int32(j)
	r.vals[p] = v
}

func (r *sparseRow) clone() sparseRow {
	return sparseRow{
		cols: append([]int32(nil), r.cols...),
		vals: append([]float64(nil), r.vals...),
	}
}

// NewSparse returns an order-n zero matrix in sparse mode. Memory grows with
// the number of nonzero entries instead of n².
func NewSparse(n int) *Matrix {
	if n < 0 {
		panic("comm: negative matrix order")
	}
	return &Matrix{n: n, rows: make([]sparseRow, n)}
}

// IsSparse reports whether the matrix uses the sparse representation.
func (m *Matrix) IsSparse() bool { return m.rows != nil }

// NNZ returns the number of nonzero entries (explicit zeros in sparse
// storage are not counted; for a dense matrix the full storage is scanned).
func (m *Matrix) NNZ() int {
	nnz := 0
	if m.rows != nil {
		for i := range m.rows {
			for _, v := range m.rows[i].vals {
				if v != 0 {
					nnz++
				}
			}
		}
		return nnz
	}
	for _, v := range m.v {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// RowNNZ returns the number of nonzero entries of row i — exactly the number
// of calls ForEachNeighbor(i, ·) makes.
func (m *Matrix) RowNNZ(i int) int {
	nnz := 0
	if m.rows != nil {
		for _, v := range m.rows[i].vals {
			if v != 0 {
				nnz++
			}
		}
		return nnz
	}
	for _, v := range m.v[i*m.n : (i+1)*m.n] {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// ForEachNeighbor calls fn for every nonzero entry (i,j) of row i, in
// ascending column order. The diagonal entry is included when nonzero
// (aggregated matrices carry intra-group volume there). Both storage modes
// yield the identical (j, v) sequence, which is what keeps sparse-path float
// accumulations bit-identical to the dense path. fn must not mutate the
// matrix.
func (m *Matrix) ForEachNeighbor(i int, fn func(j int, v float64)) {
	if m.rows != nil {
		r := &m.rows[i]
		for p, c := range r.cols {
			if v := r.vals[p]; v != 0 {
				fn(int(c), v)
			}
		}
		return
	}
	row := m.v[i*m.n : (i+1)*m.n]
	for j, v := range row {
		if v != 0 {
			fn(j, v)
		}
	}
}

// ToDense returns a dense-mode copy of the matrix (a plain Clone when the
// matrix is already dense).
func (m *Matrix) ToDense() *Matrix {
	if m.rows == nil {
		return m.Clone()
	}
	d := New(m.n)
	for i := range m.rows {
		r := &m.rows[i]
		for p, c := range r.cols {
			d.v[i*m.n+int(c)] = r.vals[p]
		}
	}
	if m.labels != nil {
		d.labels = append([]string(nil), m.labels...)
	}
	return d
}

// ToSparse returns a sparse-mode copy of the matrix (a plain Clone when the
// matrix is already sparse).
func (m *Matrix) ToSparse() *Matrix {
	if m.rows != nil {
		return m.Clone()
	}
	s := NewSparse(m.n)
	for i := 0; i < m.n; i++ {
		row := m.v[i*m.n : (i+1)*m.n]
		nnz := 0
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
		if nnz == 0 {
			continue
		}
		r := &s.rows[i]
		r.cols = make([]int32, 0, nnz)
		r.vals = make([]float64, 0, nnz)
		for j, v := range row {
			if v != 0 {
				r.cols = append(r.cols, int32(j))
				r.vals = append(r.vals, v)
			}
		}
	}
	if m.labels != nil {
		s.labels = append([]string(nil), m.labels...)
	}
	return s
}

// colValSorter sorts a (cols, vals) pair slice by column. Used by Submatrix,
// where the entity permutation scrambles the stored column order.
type colValSorter struct {
	cols []int32
	vals []float64
}

func (s *colValSorter) Len() int           { return len(s.cols) }
func (s *colValSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *colValSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// rowSorted reports whether ids is strictly ascending.
func rowSorted(ids []int) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

// aggregateSparse is the sparse fast path of Aggregate, valid when every
// group is in ascending entity order (all in-repo callers sort their groups).
// Scanning rows in ascending entity order then visits each group's members in
// that group's order, and ForEachNeighbor yields ascending columns, so every
// output cell accumulates its contributions in exactly the order the dense
// nested loop would — adding zero being exact, the results are bit-identical.
func (m *Matrix) aggregateSparse(groups [][]int) *Matrix {
	grp := make([]int32, m.n)
	for a, ga := range groups {
		for _, e := range ga {
			grp[e] = int32(a)
		}
	}
	acc := make([]map[int32]float64, len(groups))
	for i := 0; i < m.n; i++ {
		a := grp[i]
		if acc[a] == nil {
			acc[a] = make(map[int32]float64)
		}
		cell := acc[a]
		m.ForEachNeighbor(i, func(j int, v float64) {
			cell[grp[j]] += v
		})
	}
	agg := NewSparse(len(groups))
	for a, cell := range acc {
		if len(cell) == 0 {
			continue
		}
		r := &agg.rows[a]
		r.cols = make([]int32, 0, len(cell))
		for b := range cell {
			r.cols = append(r.cols, b)
		}
		sort.Slice(r.cols, func(x, y int) bool { return r.cols[x] < r.cols[y] })
		r.vals = make([]float64, len(r.cols))
		for p, b := range r.cols {
			r.vals[p] = cell[b]
		}
	}
	return agg
}
