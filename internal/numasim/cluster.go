package numasim

import (
	"fmt"

	"repro/internal/topology"
)

// Platform is a simulated multi-machine cluster built from a single topology
// spec: a set of (possibly heterogeneous) member Machines joined by an
// interconnect fabric of any depth — flat single-switch, racked (ToR +
// spine), or pod-tiered (ToR + pod switch + core switch) — priced with
// per-level link latency and bandwidth. The platform is simulated through a
// single fused Machine whose topology carries the fabric tiers above the
// per-node trees, so that lock handoffs and region pulls crossing a node
// boundary charge network cycles instead of cache or memory cycles (see
// Machine.TransferCost). The member Machines expose each node's
// shared-memory view for per-node placement (hierarchical TreeMatch runs
// Algorithm 1 on one member's topology).
type Platform struct {
	fused   *Machine
	members []*Machine
	fabric  Fabric
	levels  []FabricLevel
}

// Cluster is the former name of Platform.
//
// Deprecated: use Platform (and NewPlatform instead of NewCluster).
type Cluster = Platform

// FabricLevel describes the links of one fabric tier, innermost first:
// level 0 the per-node NIC links, level 1 the rack uplinks, level 2 the pod
// uplinks.
type FabricLevel struct {
	// LatencyCycles is the per-link latency of one link at this level in CPU
	// cycles; a message traverses both endpoint links of every level below
	// (and including) the first tier the endpoints share.
	LatencyCycles float64
	// BandwidthBytesPerSec is the per-link bandwidth at this level, shared by
	// every stream declared to cross the link.
	BandwidthBytesPerSec float64
}

// Fabric describes a flat or racked cluster interconnect, the legacy
// parameter block of NewCluster. Zero fields take the defaults of
// topology.DefaultAttrs (a 2016-era 10-Gigabit-Ethernet class network with
// 2×10GbE-class rack uplinks).
//
// Deprecated: express the fabric in the platform spec and override link
// attributes via NewPlatformAttrs; this struct cannot describe a pod tier.
type Fabric struct {
	// LinkLatencyCycles is the latency of one fabric (NIC) link in CPU
	// cycles; a message between two nodes of the same switch traverses two
	// such links.
	LinkLatencyCycles float64
	// LinkBandwidthBytesPerSec is the bandwidth of one fabric (NIC) link.
	LinkBandwidthBytesPerSec float64
	// Racks splits the cluster nodes across that many top-of-rack switches
	// (each rack gets an equal share of the nodes; the node count must be
	// divisible). 0 or 1 keeps the flat single-switch fabric. A message
	// between nodes in different racks traverses two NIC links plus two rack
	// uplinks.
	Racks int
	// UplinkLatencyCycles is the latency of one rack uplink (top-of-rack
	// switch to spine) in CPU cycles.
	UplinkLatencyCycles float64
	// UplinkBandwidthBytesPerSec is the bandwidth of one rack uplink, shared
	// by every stream leaving the rack.
	UplinkBandwidthBytesPerSec float64
}

// Defaults merges the fabric's non-zero fields onto topology.DefaultAttrs,
// the bridge from the legacy parameter block to the spec-driven platform
// path.
func (f Fabric) Defaults() topology.Defaults {
	def := topology.DefaultAttrs()
	if f.LinkLatencyCycles > 0 {
		def.NetLatencyCycles = f.LinkLatencyCycles
	}
	if f.LinkBandwidthBytesPerSec > 0 {
		def.NetBandwidth = f.LinkBandwidthBytesPerSec
	}
	if f.UplinkLatencyCycles > 0 {
		def.UplinkLatencyCycles = f.UplinkLatencyCycles
	}
	if f.UplinkBandwidthBytesPerSec > 0 {
		def.UplinkBandwidth = f.UplinkBandwidthBytesPerSec
	}
	return def
}

// NewPlatform builds a platform from a full topology spec with default link
// attributes. The spec names the fabric tiers from the outside in and the
// member machines, which may differ per node:
//
//	cluster:4 pack:2 core:8                          four identical nodes
//	rack:2 node:2,3 pack:2 core:8                    uneven racks
//	rack:2 node:{pack:2 core:8 | pack:1 core:4}      heterogeneous members
//	pod:2 rack:2 node:2{pack:2 core:4 | pack:1 core:4}   three switch tiers
//
// See topology.ParsePlatform for the grammar. A spec without fabric tiers
// yields a single-node platform.
func NewPlatform(spec string, cfg Config) (*Platform, error) {
	return NewPlatformAttrs(spec, topology.DefaultAttrs(), cfg)
}

// NewPlatformAttrs is NewPlatform with explicit physical attributes (link
// latencies and bandwidths per fabric tier, cache and memory constants for
// the members).
func NewPlatformAttrs(spec string, def topology.Defaults, cfg Config) (*Platform, error) {
	ps, err := topology.ParsePlatform(spec)
	if err != nil {
		return nil, fmt.Errorf("numasim: platform spec: %w", err)
	}
	fusedSpec, err := ps.FusedSpec()
	if err != nil {
		return nil, fmt.Errorf("numasim: platform spec: %w", err)
	}
	fusedTopo, err := topology.FromSpecAttrs(fusedSpec, def)
	if err != nil {
		return nil, fmt.Errorf("numasim: fused platform spec: %w", err)
	}
	fused, err := New(fusedTopo, cfg)
	if err != nil {
		return nil, err
	}
	p := &Platform{fused: fused}
	for _, lv := range fusedTopo.FabricLevels() {
		p.levels = append(p.levels, FabricLevel{
			LatencyCycles:        lv[0].Attr.LatencyCycles,
			BandwidthBytesPerSec: lv[0].Attr.BandwidthBytesPerSec,
		})
	}
	for i, member := range ps.Members {
		// Each member gets its own topology instance so per-node state
		// (accessors, bound Procs) stays independent.
		mt, err := topology.FromSpecAttrs(member, def)
		if err != nil {
			return nil, fmt.Errorf("numasim: platform member %d: %w", i, err)
		}
		mm, err := New(mt, cfg)
		if err != nil {
			return nil, err
		}
		p.members = append(p.members, mm)
	}
	racks := fusedTopo.NumRacks()
	if racks == 0 {
		racks = 1
	}
	p.fabric = Fabric{
		LinkLatencyCycles:          def.NetLatencyCycles,
		LinkBandwidthBytesPerSec:   def.NetBandwidth,
		Racks:                      racks,
		UplinkLatencyCycles:        def.UplinkLatencyCycles,
		UplinkBandwidthBytesPerSec: def.UplinkBandwidth,
	}
	return p, nil
}

// NewCluster builds a cluster of n identical machines, each described by
// nodeSpec (a single-machine topology spec; it must not itself contain a
// fabric tier).
//
// Deprecated: use NewPlatform with the fabric tiers in the spec
// ("cluster:n nodeSpec", or "rack:r cluster:n/r nodeSpec"), and
// NewPlatformAttrs for link-attribute overrides.
func NewCluster(n int, nodeSpec string, fabric Fabric, cfg Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("numasim: cluster needs at least 1 node, got %d", n)
	}
	racks := fabric.Racks
	if racks < 1 {
		racks = 1
	}
	if n%racks != 0 {
		return nil, fmt.Errorf("numasim: %d cluster nodes not divisible across %d racks", n, racks)
	}
	member, err := topology.FromSpec(nodeSpec)
	if err != nil {
		return nil, fmt.Errorf("numasim: cluster node spec: %w", err)
	}
	if len(member.ClusterNodes()) > 0 || member.NumRacks() > 0 || member.NumPods() > 0 {
		return nil, fmt.Errorf("numasim: node spec %q already contains a cluster level, rack level or pod level", nodeSpec)
	}
	spec := fmt.Sprintf("cluster:%d %s", n, member.Spec())
	if racks > 1 {
		spec = fmt.Sprintf("rack:%d cluster:%d %s", racks, n/racks, member.Spec())
	}
	return NewPlatformAttrs(spec, fabric.Defaults(), cfg)
}

// ClusterFromSpec builds a cluster from a full cluster topology spec such as
// "node:4 pack:2 core:8", "cluster:2 core:16" or — with a rack tier —
// "rack:2 node:4 pack:2 core:8". A spec without a cluster level yields a
// single-node cluster; a rack tier in the spec overrides fabric.Racks, and
// fabric.Racks > 1 splits a flat spec's nodes across that many racks.
//
// Deprecated: use NewPlatform/NewPlatformAttrs, which additionally accept
// uneven fabric tiers, per-member machine specs and a pod tier.
func ClusterFromSpec(spec string, fabric Fabric, cfg Config) (*Cluster, error) {
	ps, err := topology.ParsePlatform(spec)
	if err != nil {
		return nil, err
	}
	if ps.Racks() == 0 && fabric.Racks > 1 {
		// The legacy path let the Fabric block impose a rack tier on a flat
		// spec; reconstruct the platform spec with the tier made explicit.
		// Only for identical members — rebuilding from Members[0] would
		// silently homogenize a heterogeneous platform.
		if !ps.Homogeneous() {
			return nil, fmt.Errorf("numasim: Fabric.Racks cannot impose a rack tier on heterogeneous members; put the rack tier in the spec")
		}
		n := ps.Nodes()
		if n%fabric.Racks != 0 {
			return nil, fmt.Errorf("numasim: %d cluster nodes not divisible across %d racks", n, fabric.Racks)
		}
		spec = fmt.Sprintf("rack:%d cluster:%d %s", fabric.Racks, n/fabric.Racks, ps.Members[0])
	}
	return NewPlatformAttrs(spec, fabric.Defaults(), cfg)
}

// Machine returns the fused platform-wide simulation machine the runtime
// executes on: PUs, cores and NUMA nodes of all members in left-to-right
// order, with fabric-priced cross-node costs.
func (c *Platform) Machine() *Machine { return c.fused }

// Nodes returns the number of cluster nodes.
func (c *Platform) Nodes() int { return len(c.members) }

// Node returns the i-th member machine: the shared-memory view of one
// cluster node, used for per-node placement.
func (c *Platform) Node(i int) *Machine { return c.members[i] }

// NodeCores returns the number of physical cores of the i-th member, the
// capacity weight of capacity-aware partitioning.
func (c *Platform) NodeCores(i int) int { return c.members[i].Topology().NumCores() }

// Heterogeneous reports whether the members differ in core count.
func (c *Platform) Heterogeneous() bool {
	for i := 1; i < len(c.members); i++ {
		if c.NodeCores(i) != c.NodeCores(0) {
			return true
		}
	}
	return false
}

// FabricLevels returns the per-level link attributes of the fabric,
// innermost first (NICs, then rack uplinks, then pod uplinks). Empty on a
// single-node platform.
func (c *Platform) FabricLevels() []FabricLevel {
	return append([]FabricLevel(nil), c.levels...)
}

// Fabric returns the effective interconnect parameters of the NIC and
// rack-uplink tiers.
//
// Deprecated: use FabricLevels, which also reports a pod tier.
func (c *Platform) Fabric() Fabric { return c.fabric }

// Racks returns the number of top-of-rack switches (1 on a flat fabric).
func (c *Platform) Racks() int {
	if r := c.fused.Topology().NumRacks(); r > 0 {
		return r
	}
	return 1
}

// Pods returns the number of pod switches (0 without a pod tier).
func (c *Platform) Pods() int { return c.fused.Topology().NumPods() }

// RackOfNode returns the rack index of a cluster node (0 on a flat fabric).
func (c *Platform) RackOfNode(i int) int { return c.fused.RackOfClusterNode(i) }

// NodeOfPU returns the cluster-node index owning a fused-machine PU.
func (c *Platform) NodeOfPU(pu int) int { return c.fused.ClusterNodeOfPU(pu) }
