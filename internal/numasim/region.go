package numasim

import (
	"fmt"
	"sync"
)

// Placement selects the memory-placement policy of a Region.
type Placement int

const (
	// FirstTouch places the region on the NUMA node of the first Proc that
	// accesses (touches) it — the default policy of Linux and the one both
	// the OpenMP baseline and ORWL's NoBind mode experience.
	FirstTouch Placement = iota
	// Explicit places the region on a node chosen at allocation time, the
	// behaviour of ORWL locations allocated next to their bound task.
	Explicit
	// Interleaved spreads pages round-robin across all nodes.
	Interleaved
)

// String names the placement policy.
func (p Placement) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case Explicit:
		return "explicit"
	case Interleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Region is a simulated memory allocation with a home NUMA node. Regions
// are created through the Machine allocators and are safe for concurrent
// use: the home node is resolved at most once (first touch).
type Region struct {
	m      *Machine
	name   string
	bytes  int64
	policy Placement

	mu   sync.Mutex
	home int // node index; -1 until first touch for FirstTouch regions
}

// AllocOn allocates a region with an explicit home node.
func (m *Machine) AllocOn(name string, bytes int64, node int) (*Region, error) {
	if node < 0 || node >= m.topo.NumNUMANodes() {
		return nil, fmt.Errorf("numasim: node %d out of range [0,%d)", node, m.topo.NumNUMANodes())
	}
	if bytes < 0 {
		return nil, fmt.Errorf("numasim: negative region size")
	}
	return &Region{m: m, name: name, bytes: bytes, policy: Explicit, home: node}, nil
}

// AllocFirstTouch allocates a region whose home is decided by the first
// Proc that accesses it.
func (m *Machine) AllocFirstTouch(name string, bytes int64) *Region {
	return &Region{m: m, name: name, bytes: bytes, policy: FirstTouch, home: -1}
}

// AllocInterleaved allocates a region whose pages are spread across all
// NUMA nodes.
func (m *Machine) AllocInterleaved(name string, bytes int64) *Region {
	return &Region{m: m, name: name, bytes: bytes, policy: Interleaved, home: -1}
}

// Name returns the region's diagnostic name.
func (r *Region) Name() string { return r.name }

// Bytes returns the allocation size used for footprint accounting.
func (r *Region) Bytes() int64 { return r.bytes }

// Policy returns the placement policy of the region.
func (r *Region) Policy() Placement { return r.policy }

// Home returns the region's NUMA node, or -1 when an untouched first-touch
// region has no home yet. Interleaved regions report -1 (no single home).
func (r *Region) Home() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.home
}

// touch resolves the home node on first access by the given PU's node and
// returns the effective node for cost purposes (-1 for interleaved).
func (r *Region) touch(pu int) int {
	if r.policy == Interleaved {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.home < 0 && pu >= 0 {
		r.home = r.m.nodeOf[pu]
	}
	if r.home < 0 {
		// Untouched region read by an unbound Proc: the OS will have
		// placed it on node 0 (the classic serial-init pathology).
		r.home = 0
	}
	return r.home
}

// MoveTo rehomes the region to an explicit node (simulating migrate_pages /
// an explicit re-allocation). The data movement cost is charged to the
// calling Proc, not here.
func (r *Region) MoveTo(node int) error {
	if node < 0 || node >= r.m.topo.NumNUMANodes() {
		return fmt.Errorf("numasim: node %d out of range", node)
	}
	r.mu.Lock()
	r.home = node
	r.policy = Explicit
	r.mu.Unlock()
	return nil
}
