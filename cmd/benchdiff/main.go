// Command benchdiff gates wall-clock regressions between two bench
// documents produced by cmd/ablate -json:
//
//	benchdiff -base BENCH_6.json -cur BENCH_new.json
//	benchdiff -base BENCH_6.json -cur BENCH_new.json -factor 3
//	benchdiff -manifest bench/manifest.json
//
// Only rows carrying wall_seconds are compared (the benchmark tiers; the
// simulated rows are deterministic and asserted by the orderings instead).
// Every wall row of the baseline must still exist in the current document —
// silently dropping a grid point is itself a failure — and must not exceed
// factor × its baseline wall time (default 2, absorbing runner-to-runner
// machine variance while still catching an optimization being backed out).
// The comparison table is printed either way; the exit status is non-zero on
// any regression or missing row. New rows in the current document pass
// freely: they have no baseline yet.
//
// -manifest checks the bench-gate manifest instead of diffing: every tier
// must be well-formed (artifact named, non-negative factor, and — for
// factor > 0 — a committed baseline next to the manifest that carries wall
// rows), and every committed BENCH_*.json beside the manifest must be
// referenced by some tier, so a baseline cannot silently stop being gated.
// The CI bench-smoke job loops over the same manifest to regenerate and
// gate each tier.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

func main() {
	var (
		base     = flag.String("base", "", "baseline bench JSON (required without -manifest)")
		cur      = flag.String("cur", "", "current bench JSON (required without -manifest)")
		factor   = flag.Float64("factor", 2, "allowed wall-time growth factor over the baseline")
		manifest = flag.String("manifest", "", "bench-gate manifest to check for completeness instead of diffing")
	)
	flag.Parse()
	if *manifest != "" {
		if *base != "" || *cur != "" {
			fmt.Fprintln(os.Stderr, "benchdiff: -manifest excludes -base/-cur")
			os.Exit(2)
		}
		if err := checkManifest(os.Stdout, *manifest); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *base == "" || *cur == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -cur are both required")
		os.Exit(2)
	}
	if err := diff(os.Stdout, *base, *cur, *factor); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

// benchManifest mirrors the bench/manifest.json schema the CI bench-smoke
// loop consumes.
type benchManifest struct {
	Schema string `json:"schema"`
	Tiers  []struct {
		Exp      string   `json:"exp"`
		Artifact string   `json:"artifact"`
		Flags    []string `json:"flags"`
		Factor   float64  `json:"factor"`
	} `json:"tiers"`
}

const manifestSchema = "repro-bench-manifest/1"

// checkManifest validates the bench-gate manifest: well-formed tiers,
// wall-carrying baselines for every gated tier, and no committed baseline
// left unreferenced.
func checkManifest(w io.Writer, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m benchManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if m.Schema != manifestSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, m.Schema, manifestSchema)
	}
	if len(m.Tiers) == 0 {
		return fmt.Errorf("%s: no tiers", path)
	}
	dir := filepath.Dir(path)
	referenced := map[string]bool{}
	var bad []string
	for i, tier := range m.Tiers {
		if tier.Exp == "" || tier.Artifact == "" {
			bad = append(bad, fmt.Sprintf("tier %d: exp and artifact are both required", i))
			continue
		}
		if tier.Factor < 0 {
			bad = append(bad, fmt.Sprintf("tier %d (%s): negative factor %v", i, tier.Exp, tier.Factor))
		}
		if referenced[tier.Artifact] {
			bad = append(bad, fmt.Sprintf("tier %d (%s): artifact %s already claimed by an earlier tier", i, tier.Exp, tier.Artifact))
		}
		referenced[tier.Artifact] = true
		verdict := "ordering-gated"
		if tier.Factor > 0 {
			verdict = fmt.Sprintf("wall-gated x%g", tier.Factor)
			baseline := filepath.Join(dir, tier.Artifact)
			walls, err := load(baseline)
			switch {
			case err != nil:
				bad = append(bad, fmt.Sprintf("tier %d (%s): baseline %s: %v", i, tier.Exp, baseline, err))
			case len(walls) == 0:
				bad = append(bad, fmt.Sprintf("tier %d (%s): baseline %s carries no wall_seconds rows to gate on", i, tier.Exp, baseline))
			}
		}
		fmt.Fprintf(w, "  %-40s -> %-14s %s\n", tier.Exp, tier.Artifact, verdict)
	}
	committed, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	for _, f := range committed {
		if !referenced[filepath.Base(f)] {
			bad = append(bad, fmt.Sprintf("committed baseline %s is not referenced by any manifest tier", f))
		}
	}
	if len(bad) > 0 {
		msg := bad[0]
		for _, m := range bad[1:] {
			msg += "; " + m
		}
		return fmt.Errorf("%d manifest check(s) failed: %s", len(bad), msg)
	}
	return nil
}

// benchReport mirrors the subset of the cmd/ablate -json schema benchdiff
// consumes (see benchSchema there).
type benchReport struct {
	Schema    string `json:"schema"`
	Ablations []struct {
		Exp  string `json:"exp"`
		Rows []struct {
			Name        string  `json:"name"`
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"rows"`
	} `json:"ablations"`
}

const benchSchema = "repro-bench/1"

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, benchSchema)
	}
	walls := map[string]float64{}
	for _, a := range rep.Ablations {
		for _, r := range a.Rows {
			if r.WallSeconds > 0 {
				walls[a.Exp+"/"+r.Name] = r.WallSeconds
			}
		}
	}
	return walls, nil
}

// diff compares the wall rows of the two documents, printing the table to w
// and returning an error describing every regression and missing row.
func diff(w io.Writer, basePath, curPath string, factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("factor %v must be positive", factor)
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("%s carries no wall_seconds rows to gate on", basePath)
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var bad []string
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			fmt.Fprintf(w, "  %-52s %9.3fs  MISSING\n", k, b)
			bad = append(bad, fmt.Sprintf("%s: present in baseline, missing from current", k))
			continue
		}
		verdict := "ok"
		if c > b*factor {
			verdict = fmt.Sprintf("REGRESSED (> x%g)", factor)
			bad = append(bad, fmt.Sprintf("%s: %.3fs vs baseline %.3fs (x%.2f > x%g)", k, c, b, c/b, factor))
		}
		fmt.Fprintf(w, "  %-52s %9.3fs -> %9.3fs  x%-5.2f %s\n", k, b, c, c/b, verdict)
	}
	if len(bad) > 0 {
		msg := bad[0]
		for _, m := range bad[1:] {
			msg += "; " + m
		}
		return fmt.Errorf("%d wall-time check(s) failed: %s", len(bad), msg)
	}
	return nil
}
