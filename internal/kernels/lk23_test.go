package kernels

import (
	"math"
	"testing"
)

func TestNewGridDeterministic(t *testing.T) {
	a := NewGrid(8, 8, 42)
	b := NewGrid(8, 8, 42)
	if !a.Equal(b, 0) {
		t.Errorf("same seed produced different grids")
	}
	c := NewGrid(8, 8, 43)
	if a.Equal(c, 0) {
		t.Errorf("different seeds produced equal grids")
	}
}

func TestGridTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for 2x2 grid")
		}
	}()
	NewGrid(2, 2, 1)
}

func TestCloneSharesCoefficients(t *testing.T) {
	g := NewGrid(6, 6, 1)
	c := g.Clone()
	c.ZA[7] = 99
	if g.ZA[7] == 99 {
		t.Errorf("Clone shares ZA")
	}
	if &g.ZR[0] != &c.ZR[0] {
		t.Errorf("Clone copied coefficient arrays")
	}
}

func TestStepGSConvergesAndKeepsBoundary(t *testing.T) {
	g := NewGrid(16, 16, 7)
	boundary := make([]float64, 16)
	copy(boundary, g.ZA[:16])
	prevDelta := math.Inf(1)
	prev := g.Clone()
	for it := 0; it < 5; it++ {
		StepGS(g)
		delta := g.MaxAbsDiff(prev)
		if it > 0 && delta > prevDelta*1.5 {
			t.Fatalf("iteration %d diverging: delta %v after %v", it, delta, prevDelta)
		}
		prevDelta = delta
		prev = g.Clone()
	}
	for j, want := range boundary {
		if g.ZA[j] != want {
			t.Errorf("boundary cell %d changed: %v -> %v", j, want, g.ZA[j])
		}
	}
}

func TestRunGSChecksumRegression(t *testing.T) {
	// Deterministic regression pin: the classic in-place kernel on the
	// seed-1 16x16 grid. If this changes, the kernel arithmetic changed.
	g := NewGrid(16, 16, 1)
	RunGS(g, 10)
	sum := g.Checksum()
	ref := NewGrid(16, 16, 1)
	RunGS(ref, 10)
	if sum != ref.Checksum() {
		t.Errorf("RunGS not deterministic: %v vs %v", sum, ref.Checksum())
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		t.Errorf("checksum degenerate: %v", sum)
	}
}

func TestJacobiMatchesManualCell(t *testing.T) {
	g := NewGrid(5, 5, 3)
	next := RunJacobiLK23(g, 1)
	// Manually recompute cell (2,2).
	i := g.Idx(2, 2)
	qa := g.At(3, 2)*g.ZR[i] + g.At(1, 2)*g.ZB[i] + g.At(2, 3)*g.ZU[i] + g.At(2, 1)*g.ZV[i] + g.ZZ[i]
	want := g.At(2, 2) + Relax*(qa-g.At(2, 2))
	if got := next.At(2, 2); got != want {
		t.Errorf("cell (2,2) = %v, want %v", got, want)
	}
	// Boundaries unchanged.
	if next.At(0, 3) != g.At(0, 3) || next.At(4, 4) != g.At(4, 4) {
		t.Errorf("Jacobi modified boundary")
	}
	// Input untouched.
	g2 := NewGrid(5, 5, 3)
	if !g.Equal(g2, 0) {
		t.Errorf("RunJacobi modified its input")
	}
}

func TestJacobiDiffersFromGS(t *testing.T) {
	// Sanity: the two sweep disciplines are genuinely different schemes.
	g := NewGrid(8, 8, 9)
	j := RunJacobiLK23(g, 3)
	gs := g.Clone()
	RunGS(gs, 3)
	if j.Equal(gs, 0) {
		t.Errorf("Jacobi and Gauss-Seidel coincide; sweep discipline lost")
	}
}

func TestHeatCellStable(t *testing.T) {
	cell := HeatCell(0.25)
	// Uniform field is a fixed point.
	if got := cell(3, 3, 3, 3, 3, 1, 1); got != 3 {
		t.Errorf("uniform heat = %v, want 3", got)
	}
	// Averaging: centre 0 surrounded by 4 -> alpha*16.
	if got := cell(0, 4, 4, 4, 4, 1, 1); got != 4 {
		t.Errorf("heat step = %v, want 4", got)
	}
	g := NewGrid(12, 12, 5)
	res := RunJacobi(g, HeatCell(0.2), 50)
	// Diffusion contracts towards the boundary-constrained harmonic
	// profile; values must stay within the initial bounds.
	for i, v := range res.ZA {
		if v < -0.001 || v > 1.001 {
			t.Errorf("heat cell %d escaped [0,1]: %v", i, v)
			break
		}
	}
}

func TestMaxAbsDiffAndChecksum(t *testing.T) {
	a := NewGrid(4, 4, 1)
	b := a.Clone()
	if a.MaxAbsDiff(b) != 0 {
		t.Errorf("identical grids differ")
	}
	b.ZA[5] += 0.5
	if d := a.MaxAbsDiff(b); math.Abs(d-0.5) > 1e-15 {
		t.Errorf("MaxAbsDiff = %v, want 0.5", d)
	}
	if a.Equal(b, 0.4) {
		t.Errorf("Equal ignored 0.5 difference at tol 0.4")
	}
	if !a.Equal(b, 0.6) {
		t.Errorf("Equal rejected 0.5 difference at tol 0.6")
	}
}
