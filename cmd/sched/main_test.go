package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestBuildOptionsValidation(t *testing.T) {
	cases := []struct {
		name               string
		policy, fit, queue string
		want               sched.Options
		wantErr            string
	}{
		{"defaults", "topo-aware", "best", "wait",
			sched.Options{Policy: sched.TopoAware, Fit: sched.BestFit, Queue: sched.QueueWait}, ""},
		{"blind worst reject", "topo-blind", "worst", "reject",
			sched.Options{Policy: sched.TopoBlind, Fit: sched.WorstFit, Queue: sched.QueueReject}, ""},
		{"first fit", "first-fit", "best", "wait",
			sched.Options{Policy: sched.FirstFit, Fit: sched.BestFit, Queue: sched.QueueWait}, ""},
		{"unknown policy", "round-robin", "best", "wait", sched.Options{}, "-policy"},
		{"unknown fit", "topo-aware", "snuggest", "wait", sched.Options{}, "-fit"},
		{"unknown queue", "topo-aware", "best", "drop", sched.Options{}, "-queue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := buildOptions(tc.policy, tc.fit, tc.queue)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got.Policy != tc.want.Policy || got.Fit != tc.want.Fit || got.Queue != tc.want.Queue {
				t.Errorf("options %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestBuildStreamValidation(t *testing.T) {
	cases := []struct {
		name                string
		jobs                int
		seed                int64
		churn, constraints  float64
		preferred, required string
		wantErr             string
	}{
		{"defaults", 40, 7, 4, 0.3, "node", "rack", ""},
		{"unconstrained", 10, 1, 2, 0, "", "", ""},
		{"negative churn", 40, 7, -1, 0.3, "node", "rack", "churn"},
		{"too many jobs", 1 << 21, 7, 4, 0.3, "node", "rack", "jobs"},
		{"fraction above one", 40, 7, 4, 1.5, "node", "rack", "fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildStream(tc.jobs, tc.seed, tc.churn, tc.constraints, tc.preferred, tc.required)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunGeneratedStream pins the end-to-end generated path: the report must
// carry the policy banner, one line per admitted job and the aggregate
// metrics.
func TestRunGeneratedStream(t *testing.T) {
	stream := sched.StreamConfig{Jobs: 6, Seed: 7, Churn: 4,
		ConstraintFraction: 0.3, PreferredTier: "node", RequiredTier: "rack"}
	var buf bytes.Buffer
	err := run(&buf, "rack:2 node:2 pack:1 core:4 pu:1", "", stream,
		sched.Options{Policy: sched.TopoAware})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy topo-aware", "j005", "aggregate job time", "fragmentation"} {
		if !strings.Contains(out, want) {
			t.Errorf("report misses %q:\n%s", want, out)
		}
	}
}

// TestRunWorkloadFile replays a file through -workload, including a
// required-tier constraint and a comment line.
func TestRunWorkloadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.txt")
	content := "# two jobs\n" +
		"job etl arrive=0 work=1e6 tasks=4 pattern=stencil:2x2 vol=4096 required=rack preferred=node\n" +
		"job web arrive=100 work=2e6 tasks=2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run(&buf, "rack:2 node:2 pack:1 core:4 pu:1", path, sched.StreamConfig{},
		sched.Options{Policy: sched.TopoAware})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "etl") || !strings.Contains(out, "web") {
		t.Errorf("report misses the replayed jobs:\n%s", out)
	}
	if !strings.Contains(out, "2 admitted") {
		t.Errorf("report misses the admission count:\n%s", out)
	}
}

// TestRunErrors: each layer's failure surfaces as a clean error.
func TestRunErrors(t *testing.T) {
	stream := sched.StreamConfig{Jobs: 2}
	badFile := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(badFile, []byte("job x arrive=0 work=1 tasks=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, platform, workload, wantErr string
	}{
		{"bad platform", "nonsense", "", "spec"},
		{"missing workload", "rack:2 node:2 pack:1 core:4 pu:1", filepath.Join(t.TempDir(), "nope.txt"), "no such file"},
		{"bad workload line", "rack:2 node:2 pack:1 core:4 pu:1", badFile, "tasks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, tc.platform, tc.workload, stream, sched.Options{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
