package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
)

// These tests pin the routed-distance matching path of Hierarchical: uneven
// trees (where the balanced FabricTree model refuses to build) and shaped
// fabrics (torus) route group→node matching through the per-edge distance
// model, while balanced trees keep the old matcher bit for bit.

// fabricCost prices an assignment's inter-node traffic over the routed
// fabric graph: volume × path latency for every cross-node pair.
func fabricCost(mach *numasim.Machine, a *Assignment, m *comm.Matrix) float64 {
	g := mach.Topology().FabricGraph()
	total := 0.0
	n := m.Order()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vol := m.At(i, j)
			if vol == 0 || a.TaskPU[i] < 0 || a.TaskPU[j] < 0 {
				continue
			}
			ni, nj := mach.ClusterNodeOfPU(a.TaskPU[i]), mach.ClusterNodeOfPU(a.TaskPU[j])
			if ni != nj {
				total += vol * g.PathLatency(ni, nj)
			}
		}
	}
	return total
}

// TestHierarchicalUnevenDepthAware: on the rack:2 node:2,3 platform the
// balanced-tree matcher cannot build (uneven arity), but the distance model
// still sees the rack boundary: partner blocks land in the same rack. The
// TreeFabric variant — restricted to the balanced model — falls back to the
// identity mapping and splits both pairs across the racks.
func TestHierarchicalUnevenDepthAware(t *testing.T) {
	p, err := numasim.NewPlatform("rack:2 node:2,3 pack:1 core:4", numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mach := p.Machine()
	// 5 blocks of 4 tasks, one block per node; blocks (0,2) and (1,3) exchange
	// a medium slot-to-slot volume, block 4 is standalone.
	c := 4
	m := comm.New(5 * c)
	for b := 0; b < 5; b++ {
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				m.AddSym(b*c+i, b*c+j, 100)
			}
		}
	}
	for b := 0; b < 2; b++ {
		for i := 0; i < c; i++ {
			m.AddSym(b*c+i, (b+2)*c+i, 10)
		}
	}

	rackOfBlock := func(a *Assignment, b int) map[int]bool {
		racks := map[int]bool{}
		for i := 0; i < c; i++ {
			node := mach.ClusterNodeOfPU(a.TaskPU[b*c+i])
			racks[mach.RackOfClusterNode(node)] = true
		}
		return racks
	}
	sameRack := func(a *Assignment, x, y int) bool {
		ra, rb := rackOfBlock(a, x), rackOfBlock(a, y)
		if len(ra) != 1 || len(rb) != 1 {
			t.Fatalf("block %d or %d split across racks: %v %v", x, y, ra, rb)
		}
		for r := range ra {
			return rb[r]
		}
		return false
	}

	aware, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		if !sameRack(aware, pair[0], pair[1]) {
			t.Errorf("distance matching split partner blocks %v across the racks", pair)
		}
	}

	tree, err := Hierarchical{TreeFabric: true}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	together := 0
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		if sameRack(tree, pair[0], pair[1]) {
			together++
		}
	}
	if together == 2 {
		t.Error("TreeFabric on an uneven fabric kept both partner pairs together; the identity fallback should not see the rack boundary")
	}
	if ac, tc := fabricCost(mach, aware, m), fabricCost(mach, tree, m); !(ac < tc) {
		t.Errorf("distance matching cost %.0f not below the identity fallback's %.0f", ac, tc)
	}
}

// TestHierarchicalBalancedTreeBitStable: on balanced fabrics the TreeFabric
// restriction changes nothing — both variants run the original balanced-tree
// matcher, so A9–A12 results cannot move.
func TestHierarchicalBalancedTreeBitStable(t *testing.T) {
	for _, spec := range []string{
		"rack:2 node:2 pack:1 core:4",
		"pod:2 rack:2 node:2 pack:1 core:2",
	} {
		p, err := numasim.NewPlatform(spec, numasim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		mach := p.Machine()
		m := pairBlockMatrix(len(mach.Topology().PUs()) / 4)
		a, err := Hierarchical{}.Assign(mach, m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Hierarchical{TreeFabric: true}.Assign(mach, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.TaskPU {
			if a.TaskPU[i] != b.TaskPU[i] || a.ControlPU[i] != b.ControlPU[i] {
				t.Fatalf("%s task %d: %d/%d vs %d/%d — balanced fabrics must keep the old matcher bit for bit",
					spec, i, a.TaskPU[i], a.ControlPU[i], b.TaskPU[i], b.ControlPU[i])
			}
		}
	}
}

// TestHierarchicalTorusDistanceMatch: on a torus the distance matcher must
// recover adjacency the identity layout lacks. Blocks (0,3) and (1,2) couple
// heavily; on the 2x2 torus cells 0 and 3 are diagonal (2 hops), so the
// identity mapping of the TreeFabric arm pays double the routed latency of
// an adjacency-respecting relabeling.
func TestHierarchicalTorusDistanceMatch(t *testing.T) {
	p, err := numasim.NewPlatform("torus:2x2 pack:1 core:4", numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mach := p.Machine()
	c := 4
	m := comm.New(4 * c)
	for b := 0; b < 4; b++ {
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				m.AddSym(b*c+i, b*c+j, 100)
			}
		}
	}
	for _, pair := range [][2]int{{0, 3}, {1, 2}} {
		for i := 0; i < c; i++ {
			m.AddSym(pair[0]*c+i, pair[1]*c+i, 10)
		}
	}

	aware, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Hierarchical{TreeFabric: true}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	ac, tc := fabricCost(mach, aware, m), fabricCost(mach, tree, m)
	if !(ac < tc) {
		t.Errorf("torus distance matching cost %.0f not below the tree-restricted arm's %.0f", ac, tc)
	}
	g := mach.Topology().FabricGraph()
	for _, pair := range [][2]int{{0, 3}, {1, 2}} {
		ni := mach.ClusterNodeOfPU(aware.TaskPU[pair[0]*c])
		nj := mach.ClusterNodeOfPU(aware.TaskPU[pair[1]*c])
		if len(g.PathEdges(ni, nj)) != 1 {
			t.Errorf("partner blocks %v placed %d hops apart, want adjacent", pair, len(g.PathEdges(ni, nj)))
		}
	}
}
