package experiment

import (
	"testing"
)

// TestAblationTorus asserts the A13 ordering — routed distance matching
// with the space-filling-curve seed beats the balanced-tree-only matcher
// (which skips shaped fabrics and inherits the scramble), which beats
// round-robin — on two torus shapes and two scheduler seeds, both
// relations strict.
func TestAblationTorus(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {2, 2, 4}} {
		for _, seed := range []int64{7, 42} {
			cfg := TorusConfig{Dims: dims, Seed: seed}
			rows, err := AblationTorus(cfg)
			if err != nil {
				t.Fatalf("dims=%v seed=%d: %v", dims, seed, err)
			}
			if len(rows) != len(TorusModes()) {
				t.Fatalf("dims=%v: %d rows, want %d", dims, len(rows), len(TorusModes()))
			}
			for _, r := range rows {
				if r.Seconds <= 0 {
					t.Errorf("dims=%v seed=%d: %s simulated %vs", dims, seed, r.Name, r.Seconds)
				}
				if r.WallSeconds <= 0 {
					t.Errorf("dims=%v seed=%d: %s has no wall time; the bench tier cannot gate it", dims, seed, r.Name)
				}
			}
			if err := CheckOrderings(rows, AblationOrderings("torus")); err != nil {
				t.Errorf("dims=%v seed=%d: %v", dims, seed, err)
			}
		}
	}
}

// TestRunTorusDeterministic pins bit-reproducibility of every arm.
func TestRunTorusDeterministic(t *testing.T) {
	cfg := TorusConfig{Seed: 42}
	for _, mode := range TorusModes() {
		a, err := RunTorus(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunTorus(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Seconds != b.Seconds {
			t.Errorf("%s not deterministic: %v vs %v", mode, a.Seconds, b.Seconds)
		}
	}
}

// TestTorusScrambleMatters pins the scenario's premise: with the scramble
// disabled (identity layout) the positional order is already
// adjacency-optimal and the tree-matched arm runs faster than its own
// scrambled configuration — the gap the distance matcher recovers.
func TestTorusScrambleMatters(t *testing.T) {
	scrambled, err := RunTorus("tree-matched", TorusConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	identity, err := RunTorus("tree-matched", TorusConfig{Seed: 7, Scramble: -1})
	if err != nil {
		t.Fatal(err)
	}
	if identity.Seconds >= scrambled.Seconds {
		t.Errorf("identity layout %vs not below scrambled %vs; the scramble is not doing its job",
			identity.Seconds, scrambled.Seconds)
	}
}

// TestTorusValidation exercises the config error paths.
func TestTorusValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  TorusConfig
		ok   bool
	}{
		{"defaults", TorusConfig{}, true},
		{"3-D", TorusConfig{Dims: []int{2, 2, 4}}, true},
		{"degenerate dim", TorusConfig{Dims: []int{1, 4}}, false},
		{"too small", TorusConfig{Dims: []int{2}}, false},
		{"one-core nodes", TorusConfig{CoresPerNode: 1, CoresPerSocket: 1}, false},
		{"indivisible sockets", TorusConfig{CoresPerNode: 6, CoresPerSocket: 4}, false},
		{"negative volume", TorusConfig{WireBytes: -1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	if _, err := RunTorus("bogus", TorusConfig{}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestTorusConfigFrom pins the shape derivation from the common ablation
// Config.
func TestTorusConfigFrom(t *testing.T) {
	cfg := TorusConfigFrom(Config{Cores: 192})
	if got := cfg.cells() * cfg.CoresPerNode; got != 192 {
		t.Errorf("192-core request produced %d cores", got)
	}
	small := TorusConfigFrom(Config{Cores: 8})
	if small.CoresPerNode < 2 {
		t.Errorf("small request produced %d cores per node, need >= 2 for the stencil", small.CoresPerNode)
	}
	if err := small.Validate(); err != nil {
		t.Errorf("derived config invalid: %v", err)
	}
}
