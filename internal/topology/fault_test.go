package topology

import (
	"strings"
	"testing"
)

func faultTestTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := FromSpec("rack:2 node:2 core:2")
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	return topo
}

func TestFaultScheduleValidate(t *testing.T) {
	topo := faultTestTopo(t)
	g := topo.FabricGraph()
	if g == nil {
		t.Fatal("test topology has no fabric graph")
	}
	cases := []struct {
		name    string
		events  []FaultEvent
		wantErr string
	}{
		{"nil events", nil, ""},
		{"kill one node", []FaultEvent{{Epoch: 2, Kind: FaultKillNode, Node: 1}}, ""},
		{"degrade then sever later", []FaultEvent{
			{Epoch: 1, Kind: FaultDegradeEdge, Edge: 0, Factor: 0.5},
			{Epoch: 3, Kind: FaultSeverEdge, Edge: 0},
		}, ""},
		{"epoch zero", []FaultEvent{{Epoch: 0, Kind: FaultKillNode, Node: 0}}, "1-based"},
		{"unknown node", []FaultEvent{{Epoch: 1, Kind: FaultKillNode, Node: 99}}, "unknown cluster node"},
		{"negative node", []FaultEvent{{Epoch: 1, Kind: FaultKillNode, Node: -1}}, "unknown cluster node"},
		{"double kill", []FaultEvent{
			{Epoch: 1, Kind: FaultKillNode, Node: 2},
			{Epoch: 2, Kind: FaultKillNode, Node: 2},
		}, "already dead"},
		{"kill everything", []FaultEvent{
			{Epoch: 1, Kind: FaultKillNode, Node: 0},
			{Epoch: 1, Kind: FaultKillNode, Node: 1},
			{Epoch: 2, Kind: FaultKillNode, Node: 2},
			{Epoch: 2, Kind: FaultKillNode, Node: 3},
		}, "kills every cluster node"},
		{"unknown edge", []FaultEvent{{Epoch: 1, Kind: FaultSeverEdge, Edge: 99}}, "unknown fabric edge"},
		{"factor too big", []FaultEvent{{Epoch: 1, Kind: FaultDegradeEdge, Edge: 0, Factor: 1}}, "outside (0,1)"},
		{"factor zero", []FaultEvent{{Epoch: 1, Kind: FaultDegradeEdge, Edge: 0}}, "outside (0,1)"},
		{"two events one edge one epoch", []FaultEvent{
			{Epoch: 2, Kind: FaultDegradeEdge, Edge: 1, Factor: 0.5},
			{Epoch: 2, Kind: FaultSeverEdge, Edge: 1},
		}, "conflicting events"},
		{"event after sever", []FaultEvent{
			{Epoch: 1, Kind: FaultSeverEdge, Edge: 1},
			{Epoch: 3, Kind: FaultDegradeEdge, Edge: 1, Factor: 0.5},
		}, "already severed"},
		{"out-of-order listing replays chronologically", []FaultEvent{
			{Epoch: 3, Kind: FaultDegradeEdge, Edge: 1, Factor: 0.5},
			{Epoch: 1, Kind: FaultSeverEdge, Edge: 1},
		}, "already severed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &FaultSchedule{Events: tc.events}
			err := s.Validate(topo)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate: got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestFaultScheduleValidateNeedsFabric(t *testing.T) {
	topo, err := FromSpec("pack:2 core:4")
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	s := &FaultSchedule{Events: []FaultEvent{{Epoch: 1, Kind: FaultKillNode}}}
	if err := s.Validate(topo); err == nil || !strings.Contains(err.Error(), "multi-node platform") {
		t.Fatalf("Validate on a single machine: got %v, want multi-node platform error", err)
	}
}

func TestFaultScheduleStateAt(t *testing.T) {
	topo := faultTestTopo(t)
	s := &FaultSchedule{Events: []FaultEvent{
		{Epoch: 2, Kind: FaultKillNode, Node: 1},
		{Epoch: 2, Kind: FaultDegradeEdge, Edge: 0, Factor: 0.5},
		{Epoch: 4, Kind: FaultDegradeEdge, Edge: 0, Factor: 0.5},
		{Epoch: 5, Kind: FaultSeverEdge, Edge: 2},
	}}
	if err := s.Validate(topo); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	st := s.StateAt(topo, 1)
	if st.DeadNodes[1] || st.EdgeFactor[0] != 1 {
		t.Fatalf("epoch 1 state should be healthy, got %+v", st)
	}
	st = s.StateAt(topo, 2)
	if !st.DeadNodes[1] {
		t.Fatal("node 1 should be dead at epoch 2")
	}
	if st.EdgeFactor[0] != 0.5 {
		t.Fatalf("edge 0 factor at epoch 2 = %v, want 0.5", st.EdgeFactor[0])
	}
	st = s.StateAt(topo, 4)
	if st.EdgeFactor[0] != 0.25 {
		t.Fatalf("successive degrades must compound: factor = %v, want 0.25", st.EdgeFactor[0])
	}
	st = s.StateAt(topo, 10)
	if st.EdgeFactor[2] != 0 {
		t.Fatalf("edge 2 should be severed, factor = %v", st.EdgeFactor[2])
	}

	if got := s.MaxEpoch(); got != 5 {
		t.Fatalf("MaxEpoch = %d, want 5", got)
	}
	if evs := s.EventsAt(2); len(evs) != 2 {
		t.Fatalf("EventsAt(2) = %d events, want 2", len(evs))
	}
	if evs := s.EventsAt(3); len(evs) != 0 {
		t.Fatalf("EventsAt(3) = %d events, want 0", len(evs))
	}
}

func TestFaultScheduleNilIsNoop(t *testing.T) {
	var s *FaultSchedule
	topo := faultTestTopo(t)
	if err := s.Validate(topo); err != nil {
		t.Fatalf("nil schedule must validate: %v", err)
	}
	if evs := s.EventsAt(1); evs != nil {
		t.Fatalf("nil schedule EventsAt = %v, want nil", evs)
	}
	if s.MaxEpoch() != 0 {
		t.Fatal("nil schedule MaxEpoch != 0")
	}
}
