package orwl

import (
	"testing"

	"repro/internal/numasim"
	"repro/internal/topology"
)

// epochRing builds n tasks where task i writes its own location and reads
// its left neighbour's, iters times — an iterative cycle that exercises the
// epoch barrier with real lock traffic. Every task calls EndIteration after
// its final release of the iteration, as epoch-enabled programs must.
func epochRing(t *testing.T, rt *Runtime, n, iters int, volume float64) {
	t.Helper()
	locs := make([]*Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation("ring", int64(volume))
	}
	for i := 0; i < n; i++ {
		task := rt.AddTask("t", nil)
		left := locs[(i+n-1)%n]
		r := task.NewHandleVol(left, Read, volume, 0)
		w := task.NewHandleVol(locs[i], Write, volume, 1)
		task.SetFunc(func(tk *Task) error {
			for it := 0; it < iters; it++ {
				last := it == iters-1
				for _, h := range []*Handle{r, w} {
					if err := h.Acquire(); err != nil {
						return err
					}
					var err error
					if last {
						err = h.Release()
					} else {
						err = h.ReleaseAndRequest()
					}
					if err != nil {
						return err
					}
				}
				tk.EndIteration()
			}
			return nil
		})
	}
}

func epochMachine(t *testing.T) *numasim.Machine {
	t.Helper()
	topo, err := topology.FromSpec("pack:2 l3:1 core:4 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := numasim.New(topo, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEpochHookFiresAtBoundaries(t *testing.T) {
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 4, 12, 1024)
	var indices []int
	if err := rt.ConfigureEpochs(3, 0, func(e *Epoch) {
		indices = append(indices, e.Index())
		if got := len(e.Tasks()); got != 4 {
			t.Errorf("epoch %d: %d tasks at the barrier, want 4", e.Index(), got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range rt.Tasks() {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// 12 iterations / interval 3 = 4 epochs, the last at program end.
	if len(indices) != 4 {
		t.Fatalf("hook fired %d times, want 4 (%v)", len(indices), indices)
	}
	for i, idx := range indices {
		if idx != i+1 {
			t.Errorf("epoch indices %v, want 1..4", indices)
			break
		}
	}
	if rt.Epochs() != 4 {
		t.Errorf("Epochs() = %d, want 4", rt.Epochs())
	}
}

func TestEpochWindowResetsBetweenEpochs(t *testing.T) {
	const vol = 2048
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 3, 8, vol)
	var windows []float64
	if err := rt.ConfigureEpochs(4, 0, func(e *Epoch) {
		windows = append(windows, e.Window().TotalVolume())
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range rt.Tasks() {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(windows))
	}
	// Each epoch must see only its own 4 iterations' traffic: the window
	// resets between epochs instead of accumulating run-to-date volume.
	if windows[0] <= 0 {
		t.Fatalf("first epoch window empty")
	}
	if windows[1] > windows[0]*1.5 {
		t.Errorf("second epoch window %v not reset (first %v)", windows[1], windows[0])
	}
	// The run-to-date measured matrix keeps growing regardless.
	total := rt.MeasuredCommMatrix().TotalVolume()
	if total < windows[0]+windows[1] {
		t.Errorf("measured total %v smaller than the epoch windows %v", total, windows)
	}
	// After the final epoch boundary (iteration 8 = last), the window holds
	// nothing new.
	if got := rt.MeasuredWindow().TotalVolume(); got != 0 {
		t.Errorf("window holds %v after the final boundary, want 0", got)
	}
}

func TestEpochRebindMovesTaskAndData(t *testing.T) {
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 2, 6, 4096)
	tasks := rt.Tasks()
	rebound := false
	if err := rt.ConfigureEpochs(2, 0, func(e *Epoch) {
		if rebound {
			return
		}
		rebound = true
		if err := e.Rebind(tasks[0], 7); err != nil { // other socket
			t.Errorf("Rebind: %v", err)
		}
		if err := e.RebindControl(tasks[0], 6); err != nil {
			t.Errorf("RebindControl: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tasks[0].Proc().PU(); got != 7 {
		t.Errorf("task 0 on PU %d after rebind, want 7", got)
	}
	if got := tasks[0].PU(); got != 7 {
		t.Errorf("Task.PU() = %d after rebind, want 7", got)
	}
	if got := tasks[0].ControlPU(); got != 6 {
		t.Errorf("control PU %d after rebind, want 6", got)
	}
	if got := tasks[0].Proc().Stats().Migrations; got != 1 {
		t.Errorf("migrations = %d, want 1 (the charged rebind)", got)
	}
	// The task's written location followed it to the new socket.
	var wLoc *Location
	for _, h := range tasks[0].Handles() {
		if h.Mode() == Write {
			wLoc = h.Location()
		}
	}
	if home := wLoc.Region().Home(); home != mach.NodeOfPU(7) {
		t.Errorf("written region homed on node %d, want %d", home, mach.NodeOfPU(7))
	}
}

func TestEpochRebindChargedVsFree(t *testing.T) {
	run := func(free bool) float64 {
		mach := epochMachine(t)
		rt := NewRuntime(Options{Machine: mach})
		epochRing(t, rt, 2, 8, 1<<16)
		tasks := rt.Tasks()
		moved := false
		if err := rt.ConfigureEpochs(2, 0, func(e *Epoch) {
			if moved {
				return
			}
			moved = true
			var err error
			if free {
				err = e.RebindFree(tasks[0], 7)
			} else {
				err = e.Rebind(tasks[0], 7)
			}
			if err != nil {
				t.Errorf("rebind: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		for i, task := range tasks {
			if err := rt.Bind(task, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	charged, free := run(false), run(true)
	if charged <= free {
		t.Errorf("charged rebind makespan %v not above the free-migration bound %v", charged, free)
	}
}

func TestEpochDeterminism(t *testing.T) {
	run := func() float64 {
		mach := epochMachine(t)
		rt := NewRuntime(Options{Machine: mach, Seed: 11})
		epochRing(t, rt, 6, 12, 8192)
		if err := rt.ConfigureEpochs(3, 0.5, func(e *Epoch) {
			// Rotate every task one core to the right each epoch: constant
			// churn, still deterministic.
			for i, task := range e.Tasks() {
				if err := e.Rebind(task, (task.Proc().PU()+1)%8); err != nil {
					t.Errorf("rebind %d: %v", i, err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		for i, task := range rt.Tasks() {
			if err := rt.Bind(task, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("epoch-enabled run not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("makespan %v not positive", a)
	}
}

// TestEpochsCallableFromHook guards against a self-deadlock: the hook runs
// with the barrier mutex held, and Runtime.Epochs must stay safe to call
// there.
func TestEpochsCallableFromHook(t *testing.T) {
	mach := epochMachine(t)
	rt := NewRuntime(Options{Machine: mach})
	epochRing(t, rt, 2, 4, 512)
	var seen []int
	if err := rt.ConfigureEpochs(2, 0, func(e *Epoch) {
		seen = append(seen, e.Runtime().Epochs())
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range rt.Tasks() {
		if err := rt.Bind(task, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("Epochs() from inside the hook saw %v, want [1 2]", seen)
	}
}

func TestConfigureEpochsValidation(t *testing.T) {
	rt := NewRuntime(Options{})
	if err := rt.ConfigureEpochs(0, 0, nil); err == nil {
		t.Errorf("interval 0 accepted")
	}
	rt1 := NewRuntime(Options{})
	if err := rt1.ConfigureEpochs(2, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt1.ConfigureEpochs(3, 0, nil); err == nil {
		t.Errorf("second ConfigureEpochs silently replaced the first")
	}
	rt2 := NewRuntime(Options{})
	rt2.AddTask("t", func(*Task) error { return nil })
	if err := rt2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rt2.ConfigureEpochs(1, 0, nil); err == nil {
		t.Errorf("ConfigureEpochs after Run accepted")
	}
}
