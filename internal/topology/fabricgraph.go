package topology

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// The routed fabric model generalizes the balanced tree of fabric levels
// (NIC links, rack uplinks, pod uplinks) into an explicit graph: vertices
// are cluster nodes plus internal switches, edges carry their own latency
// and bandwidth, and a deterministic routing function turns any node pair
// into an ordered edge path. Tree fabrics compile into the same
// representation (each link object becomes one edge, the path is the
// up-down walk through the lowest common ancestor), so a single
// distance/bottleneck model prices flat, racked, pod-depth, uneven-tree,
// torus and dragonfly fabrics alike.

// FabricShape describes a non-tree fabric tier: a k-ary torus or a
// dragonfly. The zero value is not meaningful; shapes come from the spec
// grammar ("torus:4x4x2", "dragonfly:2,4,2").
type FabricShape struct {
	// Kind is "torus" or "dragonfly".
	Kind string
	// Dims holds the torus dimensions (each >= 2); nil for a dragonfly.
	Dims []int
	// Groups, Routers and NodesPer describe a dragonfly: Groups groups of
	// Routers routers with NodesPer nodes each, routers all-to-all inside a
	// group and one global link per group pair.
	Groups, Routers, NodesPer int
}

// Nodes returns the number of cluster nodes the shape describes.
func (s *FabricShape) Nodes() int {
	if s.Kind == "torus" {
		n := 1
		for _, d := range s.Dims {
			n *= d
		}
		return n
	}
	return s.Groups * s.Routers * s.NodesPer
}

// Token renders the shape back into its spec token ("torus:4x4",
// "dragonfly:2,4,2").
func (s *FabricShape) Token() string {
	if s.Kind == "torus" {
		ds := make([]string, len(s.Dims))
		for i, d := range s.Dims {
			ds[i] = strconv.Itoa(d)
		}
		return "torus:" + strings.Join(ds, "x")
	}
	return fmt.Sprintf("dragonfly:%d,%d,%d", s.Groups, s.Routers, s.NodesPer)
}

// String describes the shape for rendering ("torus 4x4", "dragonfly
// groups=2 routers=4 nodes=2").
func (s *FabricShape) String() string {
	if s.Kind == "torus" {
		ds := make([]string, len(s.Dims))
		for i, d := range s.Dims {
			ds[i] = strconv.Itoa(d)
		}
		return "torus " + strings.Join(ds, "x")
	}
	return fmt.Sprintf("dragonfly groups=%d routers=%d nodes=%d", s.Groups, s.Routers, s.NodesPer)
}

// maxFabricNodes bounds the node count of a graph-shaped fabric: routing is
// computed per pair, so runaway products are rejected at parse time.
const maxFabricNodes = 1 << 16

// pathCacheLimit bounds the node count up to which a FabricGraph memoizes
// all-pairs routes; larger graphs route on the fly (O(path) per query, no
// quadratic storage).
const pathCacheLimit = 1024

// parseFabricShape parses the value of a "torus:" or "dragonfly:" token.
func parseFabricShape(name, val string) (*FabricShape, error) {
	switch name {
	case "torus":
		var dims []int
		for _, ds := range strings.Split(val, "x") {
			d, err := strconv.Atoi(ds)
			if err != nil || d < 2 {
				return nil, fmt.Errorf("topology: invalid torus dimension %q in %q (each dimension must be an integer >= 2)", ds, name+":"+val)
			}
			dims = append(dims, d)
		}
		s := &FabricShape{Kind: "torus", Dims: dims}
		if s.Nodes() > maxFabricNodes {
			return nil, fmt.Errorf("topology: torus %q exceeds %d nodes", val, maxFabricNodes)
		}
		return s, nil
	case "dragonfly":
		parts := strings.Split(val, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topology: dragonfly wants %q, got %q", "dragonfly:groups,routers,nodes", name+":"+val)
		}
		var v [3]int
		for i, ps := range parts {
			n, err := strconv.Atoi(ps)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("topology: invalid dragonfly count %q in %q", ps, name+":"+val)
			}
			v[i] = n
		}
		if v[0] < 2 {
			return nil, fmt.Errorf("topology: a dragonfly needs at least 2 groups, got %d", v[0])
		}
		s := &FabricShape{Kind: "dragonfly", Groups: v[0], Routers: v[1], NodesPer: v[2]}
		if s.Nodes() > maxFabricNodes {
			return nil, fmt.Errorf("topology: dragonfly %q exceeds %d nodes", val, maxFabricNodes)
		}
		return s, nil
	}
	return nil, fmt.Errorf("topology: unknown fabric shape %q", name)
}

// FabricEdge is one link of the routed fabric graph. A and B are vertex ids
// (cluster nodes first, internal switch vertices after).
type FabricEdge struct {
	A, B                 int
	LatencyCycles        float64
	BandwidthBytesPerSec float64
}

// FabricGraph is the routed fabric model: cluster-node vertices 0..n-1,
// optional internal switch vertices above, per-edge attributes, and a
// deterministic routing function. Immutable once built; all query methods
// are safe for concurrent use.
type FabricGraph struct {
	shape    *FabricShape // nil when compiled from a tree fabric
	nodes    int          // cluster-node vertices
	vertices int
	edges    []FabricEdge
	edgeOf   map[[2]int]int // normalized (min,max) vertex pair -> edge id

	// Tree compilation: per-vertex up edge/parent towards the root switch
	// (nil for torus/dragonfly shapes, which route analytically).
	treeUp     []int
	treeParent []int
	treeDepth  []int

	// levelEdge maps the tree fabric's (level, group) link addressing onto
	// edge ids, innermost level first — the bridge that keeps the per-level
	// SetLinkStreams form working over per-edge storage.
	levelEdge [][]int

	pathOnce sync.Once
	paths    [][][]int32 // all-pairs edge paths, nil above pathCacheLimit
	latOnce  sync.Once
	lat      [][]float64 // all-pairs path latency, nil above pathCacheLimit
}

// Shape returns the non-tree shape the graph was built from, or nil for a
// compiled tree fabric.
func (g *FabricGraph) Shape() *FabricShape { return g.shape }

// NumNodes returns the number of cluster-node vertices.
func (g *FabricGraph) NumNodes() int { return g.nodes }

// NumVertices returns the total vertex count (nodes plus switches).
func (g *FabricGraph) NumVertices() int { return g.vertices }

// Edges returns the edge list. The slice must not be modified.
func (g *FabricGraph) Edges() []FabricEdge { return g.edges }

// NumEdges returns the number of edges.
func (g *FabricGraph) NumEdges() int { return len(g.edges) }

// LevelEdges returns the edge ids of one tree-fabric level (innermost
// first, matching Topology.FabricLevels), or nil on a non-tree shape.
func (g *FabricGraph) LevelEdges(level int) []int {
	if level < 0 || level >= len(g.levelEdge) {
		return nil
	}
	return g.levelEdge[level]
}

// NumLevels returns the number of tree-fabric levels (0 on a non-tree
// shape).
func (g *FabricGraph) NumLevels() int { return len(g.levelEdge) }

func (g *FabricGraph) addEdge(a, b int, lat, bw float64) {
	if a > b {
		a, b = b, a
	}
	if _, ok := g.edgeOf[[2]int{a, b}]; ok {
		return
	}
	g.edgeOf[[2]int{a, b}] = len(g.edges)
	g.edges = append(g.edges, FabricEdge{A: a, B: b, LatencyCycles: lat, BandwidthBytesPerSec: bw})
}

func (g *FabricGraph) edgeBetween(a, b int) int {
	if a > b {
		a, b = b, a
	}
	e, ok := g.edgeOf[[2]int{a, b}]
	if !ok {
		panic(fmt.Sprintf("topology: no fabric edge between vertices %d and %d", a, b))
	}
	return e
}

// Route computes the deterministic edge path between two cluster nodes,
// uncached: dimension-order routing (shorter wrap direction, ties positive)
// on a torus, minimal routing on a dragonfly, the up-down walk through the
// lowest common ancestor on a compiled tree. The path for from == to is
// empty. Route is the reference the cached PathEdges is pinned against.
func (g *FabricGraph) Route(from, to int) []int {
	if from == to {
		return nil
	}
	if g.shape != nil {
		switch g.shape.Kind {
		case "torus":
			return g.torusRoute(from, to)
		case "dragonfly":
			return g.dragonflyRoute(from, to)
		}
	}
	return g.treeRoute(from, to)
}

// torusRoute walks the dimensions in order, each along the shorter wrap
// direction (positive on a tie).
func (g *FabricGraph) torusRoute(from, to int) []int {
	dims := g.shape.Dims
	cf, ct := torusCoords(from, dims), torusCoords(to, dims)
	var path []int
	cur := from
	for k := range dims {
		d := dims[k]
		fwd := ((ct[k]-cf[k])%d + d) % d
		step := 1
		steps := fwd
		if fwd > d-fwd {
			step = d - 1 // -1 mod d
			steps = d - fwd
		}
		for s := 0; s < steps; s++ {
			cf[k] = (cf[k] + step) % d
			next := torusIndex(cf, dims)
			path = append(path, g.edgeBetween(cur, next))
			cur = next
		}
	}
	return path
}

// torusCoords converts a row-major node index into per-dimension
// coordinates (last dimension fastest).
func torusCoords(id int, dims []int) []int {
	c := make([]int, len(dims))
	for k := len(dims) - 1; k >= 0; k-- {
		c[k] = id % dims[k]
		id /= dims[k]
	}
	return c
}

// torusIndex is the inverse of torusCoords.
func torusIndex(c, dims []int) int {
	id := 0
	for k := range dims {
		id = id*dims[k] + c[k]
	}
	return id
}

// dragonflyRouter returns the router vertex id owning a node.
func (g *FabricGraph) dragonflyRouter(node int) int {
	return g.nodes + node/g.shape.NodesPer
}

// dragonflyGateway returns the router vertex of group a that owns the
// global link towards group b (consecutive allocation: the G-1 peer groups
// are dealt round-robin over the group's routers).
func (g *FabricGraph) dragonflyGateway(a, b int) int {
	rank := b
	if b > a {
		rank = b - 1
	}
	return g.nodes + a*g.shape.Routers + rank%g.shape.Routers
}

// dragonflyRoute is the minimal route: node, its router, at most one local
// hop to the gateway, the global link, at most one local hop to the target
// router, the target node.
func (g *FabricGraph) dragonflyRoute(from, to int) []int {
	s := g.shape
	rf, rt := g.dragonflyRouter(from), g.dragonflyRouter(to)
	gf, gt := from/(s.Routers*s.NodesPer), to/(s.Routers*s.NodesPer)
	path := []int{g.edgeBetween(from, rf)}
	cur := rf
	if gf != gt {
		gw1, gw2 := g.dragonflyGateway(gf, gt), g.dragonflyGateway(gt, gf)
		if cur != gw1 {
			path = append(path, g.edgeBetween(cur, gw1))
			cur = gw1
		}
		path = append(path, g.edgeBetween(cur, gw2))
		cur = gw2
	}
	if cur != rt {
		path = append(path, g.edgeBetween(cur, rt))
		cur = rt
	}
	return append(path, g.edgeBetween(cur, to))
}

// ValiantRoute is the contention-spreading alternative for dragonflies: a
// minimal route to an intermediate node, then a minimal route to the
// destination. It is provided for routing experiments; transfer pricing
// uses the minimal Route.
func (g *FabricGraph) ValiantRoute(from, to, via int) []int {
	if via == from || via == to {
		return g.Route(from, to)
	}
	return append(g.Route(from, via), g.Route(via, to)...)
}

// treeRoute climbs both endpoints to their lowest common ancestor,
// emitting the from-side up edges innermost-first, then the to-side edges
// in descending order.
func (g *FabricGraph) treeRoute(from, to int) []int {
	var up, down []int
	a, b := from, to
	for g.treeDepth[a] > g.treeDepth[b] {
		up = append(up, g.treeUp[a])
		a = g.treeParent[a]
	}
	for g.treeDepth[b] > g.treeDepth[a] {
		down = append(down, g.treeUp[b])
		b = g.treeParent[b]
	}
	for a != b {
		up = append(up, g.treeUp[a])
		down = append(down, g.treeUp[b])
		a, b = g.treeParent[a], g.treeParent[b]
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// PathEdges returns the routed edge path between two cluster nodes. Paths
// are memoized all-pairs up to pathCacheLimit nodes; larger graphs compute
// each query with Route. The returned slice must not be modified.
func (g *FabricGraph) PathEdges(from, to int) []int {
	if g.nodes > pathCacheLimit {
		return g.Route(from, to)
	}
	g.pathOnce.Do(func() {
		g.paths = make([][][]int32, g.nodes)
		for f := 0; f < g.nodes; f++ {
			g.paths[f] = make([][]int32, g.nodes)
			for t := 0; t < g.nodes; t++ {
				r := g.Route(f, t)
				p := make([]int32, len(r))
				for i, e := range r {
					p[i] = int32(e)
				}
				g.paths[f][t] = p
			}
		}
	})
	p := g.paths[from][to]
	if len(p) == 0 {
		return nil
	}
	out := make([]int, len(p))
	for i, e := range p {
		out[i] = int(e)
	}
	return out
}

// PathLatency returns the summed latency, in cycles, of the routed path
// between two cluster nodes. Memoized all-pairs up to pathCacheLimit nodes
// and always equal to walking Route and summing edge latencies in path
// order.
func (g *FabricGraph) PathLatency(from, to int) float64 {
	if g.nodes > pathCacheLimit {
		return g.pathLatencyWalk(from, to)
	}
	g.latOnce.Do(func() {
		g.lat = make([][]float64, g.nodes)
		for f := 0; f < g.nodes; f++ {
			g.lat[f] = make([]float64, g.nodes)
			for t := 0; t < g.nodes; t++ {
				g.lat[f][t] = g.pathLatencyWalk(f, t)
			}
		}
	})
	return g.lat[from][to]
}

func (g *FabricGraph) pathLatencyWalk(from, to int) float64 {
	sum := 0.0
	for _, e := range g.Route(from, to) {
		sum += g.edges[e].LatencyCycles
	}
	return sum
}

// LatencyMatrix returns the full node-to-node routed latency matrix. The
// result must be treated as read-only below pathCacheLimit nodes (it shares
// the memoized backing array).
func (g *FabricGraph) LatencyMatrix() [][]float64 {
	if g.nodes <= pathCacheLimit {
		g.PathLatency(0, 0) // force the memo
		return g.lat
	}
	m := make([][]float64, g.nodes)
	for f := range m {
		m[f] = make([]float64, g.nodes)
		for t := range m[f] {
			m[f][t] = g.pathLatencyWalk(f, t)
		}
	}
	return m
}

// FabricShape returns the non-tree fabric shape of the topology, or nil on
// single machines and tree fabrics.
func (t *Topology) FabricShape() *FabricShape { return t.fabric }

// FabricGraph returns the routed fabric graph: the torus/dragonfly graph
// when the topology has a non-tree shape, the compiled tree fabric (one
// edge per NIC link, rack uplink and pod uplink) otherwise. Nil on a
// single-machine topology. The graph is built lazily once and shared.
func (t *Topology) FabricGraph() *FabricGraph {
	if len(t.clusters) == 0 {
		return nil
	}
	t.fabricOnce.Do(func() {
		if t.fabric != nil {
			t.fabricGraph = buildShapeGraph(t.fabric, t.fabricDef)
		} else {
			t.fabricGraph = buildTreeGraph(t)
		}
	})
	return t.fabricGraph
}

// buildShapeGraph constructs the torus or dragonfly graph. Torus links
// carry the NIC (Net) attributes — every hop is one node-to-node link.
// Dragonfly node-to-router links carry the Net attributes, intra-group
// router links the rack-uplink attributes, and the per-group-pair global
// links the pod-uplink attributes.
func buildShapeGraph(s *FabricShape, def Defaults) *FabricGraph {
	n := s.Nodes()
	g := &FabricGraph{shape: s, nodes: n, vertices: n, edgeOf: map[[2]int]int{}}
	switch s.Kind {
	case "torus":
		for id := 0; id < n; id++ {
			c := torusCoords(id, s.Dims)
			for k, d := range s.Dims {
				nc := append([]int(nil), c...)
				nc[k] = (c[k] + 1) % d
				g.addEdge(id, torusIndex(nc, s.Dims), def.NetLatencyCycles, def.NetBandwidth)
			}
		}
	case "dragonfly":
		g.vertices = n + s.Groups*s.Routers
		for id := 0; id < n; id++ {
			g.addEdge(id, g.dragonflyRouter(id), def.NetLatencyCycles, def.NetBandwidth)
		}
		for grp := 0; grp < s.Groups; grp++ {
			base := n + grp*s.Routers
			for a := 0; a < s.Routers; a++ {
				for b := a + 1; b < s.Routers; b++ {
					g.addEdge(base+a, base+b, def.UplinkLatencyCycles, def.UplinkBandwidth)
				}
			}
		}
		for a := 0; a < s.Groups; a++ {
			for b := a + 1; b < s.Groups; b++ {
				g.addEdge(g.dragonflyGateway(a, b), g.dragonflyGateway(b, a),
					def.PodUplinkLatencyCycles, def.PodUplinkBandwidth)
			}
		}
	}
	return g
}

// buildTreeGraph compiles a tree fabric into the graph representation: one
// vertex per cluster node and per switch object (rack, pod), plus the root
// switch; one edge per link object, carrying that object's attributes. The
// (level, group) link addressing of the per-level model maps onto edge ids
// via levelEdge.
func buildTreeGraph(t *Topology) *FabricGraph {
	levels := t.FabricLevels()
	n := len(t.clusters)
	g := &FabricGraph{nodes: n, edgeOf: map[[2]int]int{}}
	// Vertex numbering: cluster nodes 0..n-1, then each upper fabric level
	// in FabricLevels order, then the root switch last.
	vertexOf := map[*Object]int{}
	for i, c := range t.clusters {
		vertexOf[c] = i
	}
	next := n
	for _, lv := range levels[1:] {
		for _, o := range lv {
			vertexOf[o] = next
			next++
		}
	}
	root := next
	next++
	g.vertices = next
	g.treeUp = make([]int, g.vertices)
	g.treeParent = make([]int, g.vertices)
	g.treeDepth = make([]int, g.vertices)
	g.treeUp[root] = -1
	g.treeParent[root] = -1
	for li, lv := range levels {
		g.levelEdge = append(g.levelEdge, make([]int, len(lv)))
		for gi, o := range lv {
			v := vertexOf[o]
			parent := root
			if li+1 < len(levels) {
				parent = vertexOf[o.Parent]
			}
			g.treeParent[v] = parent
			g.treeDepth[v] = len(levels) - li
			g.levelEdge[li][gi] = len(g.edges)
			g.treeUp[v] = len(g.edges)
			g.addEdge(v, parent, o.Attr.LatencyCycles, o.Attr.BandwidthBytesPerSec)
		}
	}
	return g
}
