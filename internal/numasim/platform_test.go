package numasim

import (
	"testing"

	"repro/internal/topology"
)

// TestPlatformUnevenRacks is the regression test for the uneven-fabric
// rejection: ClusterFromSpec used to parse "rack:2 node:2,3 ..." and then
// refuse it with "uneven fabric level not supported"; the platform path
// must build a working simulation machine from it.
func TestPlatformUnevenRacks(t *testing.T) {
	for _, build := range []struct {
		name string
		make func() (*Platform, error)
	}{
		{"NewPlatform", func() (*Platform, error) {
			return NewPlatform("rack:2 node:2,3 pack:1 core:4", Config{})
		}},
		{"ClusterFromSpec", func() (*Platform, error) {
			return ClusterFromSpec("rack:2 node:2,3 pack:1 core:4", Fabric{}, Config{})
		}},
	} {
		p, err := build.make()
		if err != nil {
			t.Fatalf("%s: uneven racks rejected: %v", build.name, err)
		}
		if p.Nodes() != 5 {
			t.Fatalf("%s: %d nodes, want 5", build.name, p.Nodes())
		}
		mach := p.Machine()
		if got := mach.Topology().NumRacks(); got != 2 {
			t.Fatalf("%s: %d racks, want 2", build.name, got)
		}
		// Rack 0 holds nodes 0-1, rack 1 holds nodes 2-4.
		wantRack := []int{0, 0, 1, 1, 1}
		for c, want := range wantRack {
			if got := mach.RackOfClusterNode(c); got != want {
				t.Errorf("%s: node %d in rack %d, want %d", build.name, c, got, want)
			}
		}
		// The fabric prices: same-rack transfers cost two NIC links, cross-
		// rack transfers add the uplinks.
		sameRack := mach.TransferCost(0, 4, 1024)   // node 0 -> node 1
		crossRack := mach.TransferCost(0, 12, 1024) // node 0 -> node 3
		if !(sameRack > 0 && crossRack > sameRack) {
			t.Errorf("%s: fabric pricing: same-rack %.0f, cross-rack %.0f", build.name, sameRack, crossRack)
		}
	}
}

func TestPlatformHeterogeneousMembers(t *testing.T) {
	p, err := NewPlatform("rack:2 node:{pack:2 core:8 | pack:1 core:4}", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 2 || !p.Heterogeneous() {
		t.Fatalf("nodes=%d heterogeneous=%v", p.Nodes(), p.Heterogeneous())
	}
	if p.NodeCores(0) != 16 || p.NodeCores(1) != 4 {
		t.Errorf("node cores %d/%d, want 16/4", p.NodeCores(0), p.NodeCores(1))
	}
	if got := p.Machine().Topology().NumCores(); got != 20 {
		t.Errorf("fused machine has %d cores, want 20", got)
	}
	// Member machines expose their own shared-memory views.
	if got := p.Node(1).Topology().NumCores(); got != 4 {
		t.Errorf("member 1 view has %d cores, want 4", got)
	}
}

func TestNewClusterWrapperMatchesPlatform(t *testing.T) {
	viaWrapper, err := NewCluster(4, "pack:1 core:4", Fabric{Racks: 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := NewPlatform("rack:2 node:2 pack:1 core:4", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if viaWrapper.Machine().Topology().Spec() != viaSpec.Machine().Topology().Spec() {
		t.Errorf("wrapper spec %q != platform spec %q",
			viaWrapper.Machine().Topology().Spec(), viaSpec.Machine().Topology().Spec())
	}
	// Identical pricing on an identical sample path.
	for _, pu := range []int{4, 8, 12} {
		w := viaWrapper.Machine().TransferCost(0, pu, 4096)
		s := viaSpec.Machine().TransferCost(0, pu, 4096)
		if w != s {
			t.Errorf("TransferCost(0,%d) wrapper %.2f != platform %.2f", pu, w, s)
		}
	}
}

// equivalencePlatforms builds the three fabric depths the stream-count
// equivalence tests sweep: flat (NICs only), racked (+ ToR uplinks), and
// pod-tiered (+ pod uplinks).
func equivalencePlatforms(t *testing.T) map[string]*Platform {
	t.Helper()
	out := map[string]*Platform{}
	for name, spec := range map[string]string{
		"flat":   "cluster:4 pack:1 core:4",
		"racked": "rack:2 node:2 pack:1 core:4",
		"pod":    "pod:2 rack:2 node:2 pack:1 core:4",
	} {
		p, err := NewPlatform(spec, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = p
	}
	return out
}

// samplePaths lists PU pairs covering every hop-path shape of a platform:
// same node, same rack, same pod, and the full fabric climb.
func samplePaths(m *Machine) [][2]int {
	pus := m.Topology().NumPUs()
	paths := [][2]int{{0, 1}}
	for _, to := range []int{pus / 4, pus / 2, pus - 1} {
		paths = append(paths, [2]int{0, to}, [2]int{to, 0})
	}
	return paths
}

// TestSetFabricStreamsEquivalence pins that the deprecated machine-wide
// SetFabricStreams(n) prices every transfer identically to SetLinkStreams
// with uniform per-level count vectors of n, on flat, racked and pod
// fabrics.
func TestSetFabricStreamsEquivalence(t *testing.T) {
	for name, p := range equivalencePlatforms(t) {
		mach := p.Machine()
		for _, n := range []int{0, 1, 3, 7} {
			mach.ResetAccessors()
			mach.SetFabricStreams(n)
			var want []float64
			for _, pr := range samplePaths(mach) {
				want = append(want, mach.TransferCost(pr[0], pr[1], 1<<20))
			}
			mach.ResetAccessors()
			for l := 0; l < mach.NumFabricLevels(); l++ {
				counts := make([]int, mach.FabricLevelSize(l))
				for i := range counts {
					counts[i] = n
				}
				mach.SetLinkStreams(l, counts)
			}
			for i, pr := range samplePaths(mach) {
				if got := mach.TransferCost(pr[0], pr[1], 1<<20); got != want[i] {
					t.Errorf("%s n=%d path %v: per-level %.2f != global %.2f", name, n, pr, got, want[i])
				}
			}
		}
	}
}

// TestSetFabricLinkStreamsEquivalence pins that the deprecated two-level
// SetFabricLinkStreams(nic, uplink) wrapper prices every transfer
// identically to the per-level SetLinkStreams vectors it stands for, on
// flat, racked and pod fabrics.
func TestSetFabricLinkStreamsEquivalence(t *testing.T) {
	for name, p := range equivalencePlatforms(t) {
		mach := p.Machine()
		nodes := len(mach.Topology().ClusterNodes())
		racks := len(mach.Topology().Racks())
		nic := make([]int, nodes)
		for i := range nic {
			nic[i] = 2 + i%3
		}
		var uplink []int
		if racks > 0 {
			uplink = make([]int, racks)
			for i := range uplink {
				uplink[i] = 4 + i
			}
		}
		mach.ResetAccessors()
		mach.SetFabricLinkStreams(nic, uplink)
		var want []float64
		for _, pr := range samplePaths(mach) {
			want = append(want, mach.TransferCost(pr[0], pr[1], 1<<20))
		}
		mach.ResetAccessors()
		mach.SetLinkStreams(0, nic)
		if racks > 0 {
			mach.SetLinkStreams(1, uplink)
		}
		for i, pr := range samplePaths(mach) {
			if got := mach.TransferCost(pr[0], pr[1], 1<<20); got != want[i] {
				t.Errorf("%s path %v: per-level %.2f != wrapper %.2f", name, pr, got, want[i])
			}
		}
		// The accessors agree too.
		for c := 0; c < nodes; c++ {
			if got := mach.NICStreams(c); got != nic[c] {
				t.Errorf("%s: NICStreams(%d) = %d, want %d", name, c, got, nic[c])
			}
		}
		for r := 0; r < racks; r++ {
			if got := mach.UplinkStreams(r); got != uplink[r] {
				t.Errorf("%s: UplinkStreams(%d) = %d, want %d", name, r, got, uplink[r])
			}
		}
		// Clearing through the wrapper reverts to the global model.
		mach.SetFabricLinkStreams(nil, nil)
		if got := mach.FabricStreams(); got != 0 {
			t.Errorf("%s: FabricStreams after clear = %d", name, got)
		}
	}
}

// TestPodFabricPricing pins the three latency regimes of a pod fabric: the
// hop path accumulates NIC links inside a rack, adds rack uplinks across
// racks, and pod uplinks across pods.
func TestPodFabricPricing(t *testing.T) {
	p, err := NewPlatform("pod:2 rack:2 node:2 pack:1 core:2", Config{})
	if err != nil {
		t.Fatal(err)
	}
	mach := p.Machine()
	def := topology.DefaultAttrs()
	// PUs per node: 2. Node 0 PUs 0-1; node 1 PUs 2-3 (same rack); node 2
	// PUs 4-5 (same pod, other rack); node 4 PUs 8-9 (other pod). One byte
	// per probe: the NIC is the bandwidth bottleneck of every path (the
	// uplinks are wider by default), so cost differences are pure per-link
	// latency.
	bytes := 1.0
	sameRack := mach.TransferCost(0, 2, bytes)
	crossRack := mach.TransferCost(0, 4, bytes)
	crossPod := mach.TransferCost(0, 8, bytes)
	wantSame := 2 * def.NetLatencyCycles
	wantRack := wantSame + 2*def.UplinkLatencyCycles
	wantPod := wantRack + 2*def.PodUplinkLatencyCycles
	if diff := sameRack - crossRack; diff >= 0 {
		t.Errorf("same-rack %.0f not cheaper than cross-rack %.0f", sameRack, crossRack)
	}
	if diff := crossRack - crossPod; diff >= 0 {
		t.Errorf("cross-rack %.0f not cheaper than cross-pod %.0f", crossRack, crossPod)
	}
	near := func(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }
	if got := crossRack - sameRack; !near(got, wantRack-wantSame) {
		t.Errorf("rack uplink surcharge %.0f cycles, want %.0f", got, wantRack-wantSame)
	}
	if got := crossPod - crossRack; !near(got, wantPod-wantRack) {
		t.Errorf("pod uplink surcharge %.0f cycles, want %.0f", got, wantPod-wantRack)
	}
}

func TestSetLinkStreamsValidation(t *testing.T) {
	p, err := NewPlatform("rack:2 node:2 pack:1 core:2", Config{})
	if err != nil {
		t.Fatal(err)
	}
	mach := p.Machine()
	for _, bad := range []func(){
		func() { mach.SetLinkStreams(0, []int{1}) },       // 4 nodes
		func() { mach.SetLinkStreams(1, []int{1, 2, 3}) }, // 2 racks
		func() { mach.SetLinkStreams(2, []int{1}) },       // no pod level
		func() { mach.SetLinkStreams(-1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mis-sized SetLinkStreams did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestPlatformFusedSpecRoundTrips pins that a platform's own fused spec —
// the normalized form it logs and Topology.Spec() reports — feeds back
// into NewPlatform and rebuilds the same heterogeneous shape.
func TestPlatformFusedSpecRoundTrips(t *testing.T) {
	orig, err := NewPlatform("rack:2 node:{pack:2 core:8 | pack:1 core:4}", Config{})
	if err != nil {
		t.Fatal(err)
	}
	fused := orig.Machine().Topology().Spec()
	again, err := NewPlatform(fused, Config{})
	if err != nil {
		t.Fatalf("fused spec %q does not round-trip: %v", fused, err)
	}
	if again.Nodes() != orig.Nodes() || !again.Heterogeneous() {
		t.Fatalf("round trip of %q: %d nodes hetero=%v, want %d/true",
			fused, again.Nodes(), again.Heterogeneous(), orig.Nodes())
	}
	for i := 0; i < orig.Nodes(); i++ {
		if again.NodeCores(i) != orig.NodeCores(i) {
			t.Errorf("round trip node %d has %d cores, want %d", i, again.NodeCores(i), orig.NodeCores(i))
		}
	}
}

// TestClusterFromSpecRejectsImposedRacksOnHetero pins the legacy-path
// guard: Fabric.Racks cannot restructure a heterogeneous member list
// (rebuilding from member 0 would silently homogenize the platform).
func TestClusterFromSpecRejectsImposedRacksOnHetero(t *testing.T) {
	_, err := ClusterFromSpec("node:{pack:2 core:8 | pack:1 core:4}", Fabric{Racks: 2}, Config{})
	if err == nil {
		t.Fatal("imposed rack tier on heterogeneous members accepted")
	}
	// With the rack tier in the spec itself, heterogeneous members build.
	if _, err := ClusterFromSpec("rack:2 node:{pack:2 core:8 | pack:1 core:4}", Fabric{}, Config{}); err != nil {
		t.Fatalf("rack tier in spec rejected: %v", err)
	}
}

// TestFabricStreamsPartialLevels pins that the global fallback count stays
// visible while any fabric level still prices against it.
func TestFabricStreamsPartialLevels(t *testing.T) {
	p, err := NewPlatform("pod:2 rack:2 node:2 pack:1 core:2", Config{})
	if err != nil {
		t.Fatal(err)
	}
	mach := p.Machine()
	mach.SetFabricStreams(8)
	uplink := make([]int, mach.FabricLevelSize(1))
	mach.SetLinkStreams(1, uplink)
	if got := mach.FabricStreams(); got != 8 {
		t.Errorf("FabricStreams with levels 0 and 2 unset = %d, want 8 (still in force)", got)
	}
	for l := 0; l < mach.NumFabricLevels(); l++ {
		mach.SetLinkStreams(l, make([]int, mach.FabricLevelSize(l)))
	}
	if got := mach.FabricStreams(); got != 0 {
		t.Errorf("FabricStreams with every level set = %d, want 0", got)
	}
}
