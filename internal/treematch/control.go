package treematch

import (
	"fmt"
	"sort"

	"repro/internal/comm"
)

// ControlStrategy records how the control threads of the ORWL runtime were
// handled by the mapping, mirroring the three cases of the paper's
// Algorithm 1 (line 1 and the surrounding discussion).
type ControlStrategy int

const (
	// ControlHyperthread: the machine has SMT, so on every physical core one
	// hyperthread is reserved for the computation thread and the other for
	// its control thread.
	ControlHyperthread ControlStrategy = iota
	// ControlSpareCores: no SMT but more cores than tasks; the matrix was
	// extended with control-thread entities so they land on spare cores
	// close to their computation thread.
	ControlSpareCores
	// ControlUnmapped: neither hyperthreads nor spare cores are available;
	// control threads are left to the operating system scheduler.
	ControlUnmapped
)

// String names the strategy.
func (c ControlStrategy) String() string {
	switch c {
	case ControlHyperthread:
		return "hyperthread"
	case ControlSpareCores:
		return "spare-cores"
	case ControlUnmapped:
		return "unmapped"
	default:
		return fmt.Sprintf("ControlStrategy(%d)", int(c))
	}
}

// Target describes the computing resources the mapping aims at: the abstract
// tree whose leaves are physical cores, and the number of hardware threads
// per core (1 when the machine has no SMT).
type Target struct {
	Tree    *Tree
	SMTWays int
}

// Result is the complete output of Algorithm 1 for an ORWL application with
// one control thread per computation task.
type Result struct {
	// Mapping of the computation tasks to cores (leaves of Target.Tree).
	*Mapping
	// Control maps each task to the core where its control thread is bound,
	// or -1 when the control thread is left to the OS. With the
	// ControlHyperthread strategy Control[i] == Assignment[i]: the control
	// thread runs on the same core, second hyperthread.
	Control []int
	// Strategy is the control-thread case that applied.
	Strategy ControlStrategy
}

// Map runs the full Algorithm 1 for an ORWL application: it extends the
// communication matrix to account for one control thread per task when the
// resources allow it, manages oversubscription, groups processes by affinity
// level by level, and matches the group hierarchy onto the tree.
//
// m is the task-to-task communication matrix (order = number of computation
// tasks). The returned Result maps both the tasks and their control threads.
//
// The control-thread affinity is modelled as each task's total communication
// volume: the control thread moves exactly the data its task exchanges, so
// binding it close to the task is worth that much volume. This reproduces
// the paper's intent ("control and communication threads of ORWL [are taken]
// into account") without requiring runtime-specific constants.
func Map(target Target, m *comm.Matrix, opt Options) (*Result, error) {
	if target.Tree == nil {
		return nil, fmt.Errorf("treematch: nil target tree")
	}
	if target.SMTWays < 1 {
		return nil, fmt.Errorf("treematch: SMTWays must be >= 1, got %d", target.SMTWays)
	}
	tasks := m.Order()

	// Distribution (paper §II: "cluster threads that share data, and at the
	// same time, distribute threads over NUMA nodes"): with spare capacity,
	// restrict the tree so the mapping spreads groups over the upper
	// levels. Leave room for the control threads when they will be mapped
	// onto spare cores (case 2 below).
	work := target.Tree
	if opt.Distribute && tasks > 0 && tasks < work.Leaves() {
		want := tasks
		if target.SMTWays < 2 && work.Leaves() > tasks {
			nCtl := work.Leaves() - tasks
			if nCtl > tasks {
				nCtl = tasks
			}
			want = tasks + nCtl
		}
		var err error
		work, err = work.Restrict(want)
		if err != nil {
			return nil, err
		}
	}
	cores := work.Leaves()

	// Case 1: hyperthreading. Map only the computation tasks onto cores;
	// every control thread rides the co-hyperthread of its task's core.
	if target.SMTWays >= 2 {
		mp, err := MapMatrix(work, m, opt)
		if err != nil {
			return nil, err
		}
		embedMapping(target.Tree, work, mp)
		ctl := make([]int, tasks)
		copy(ctl, mp.Assignment)
		return &Result{Mapping: mp, Control: ctl, Strategy: ControlHyperthread}, nil
	}

	// Case 2: spare cores. Extend the matrix with control entities so they
	// are mapped onto the spare cores near their tasks.
	if cores > tasks {
		spare := cores - tasks
		nCtl := spare
		if nCtl > tasks {
			nCtl = tasks
		}
		// Give the spare slots to the tasks that communicate the most:
		// their control threads move the most data.
		byVolume := make([]int, tasks)
		for i := range byVolume {
			byVolume[i] = i
		}
		sort.SliceStable(byVolume, func(a, b int) bool {
			return m.RowVolume(byVolume[a]) > m.RowVolume(byVolume[b])
		})
		ext, err := m.ExtendZero(tasks + nCtl)
		if err != nil {
			return nil, err
		}
		ctlEntity := make(map[int]int, nCtl) // task -> control entity index
		for k := 0; k < nCtl; k++ {
			task := byVolume[k]
			e := tasks + k
			ctlEntity[task] = e
			ext.SetLabel(e, m.Label(task)+".ctl")
			ext.AddSym(task, e, m.RowVolume(task))
		}
		mp, err := MapMatrix(work, ext, opt)
		if err != nil {
			return nil, err
		}
		embedMapping(target.Tree, work, mp)
		res := &Result{
			Mapping: &Mapping{
				Assignment:   mp.Assignment[:tasks],
				Slot:         mp.Slot[:tasks],
				VirtualArity: mp.VirtualArity,
				Levels:       mp.Levels,
			},
			Control:  make([]int, tasks),
			Strategy: ControlSpareCores,
		}
		for i := range res.Control {
			res.Control[i] = -1
		}
		for task, e := range ctlEntity {
			res.Control[task] = mp.Assignment[e]
		}
		return res, nil
	}

	// Case 3: nothing left for the control threads; the OS schedules them.
	mp, err := MapMatrix(work, m, opt)
	if err != nil {
		return nil, err
	}
	embedMapping(target.Tree, work, mp)
	ctl := make([]int, tasks)
	for i := range ctl {
		ctl[i] = -1
	}
	return &Result{Mapping: mp, Control: ctl, Strategy: ControlUnmapped}, nil
}
