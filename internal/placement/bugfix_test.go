package placement

import (
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/treematch"
)

// TestTreeMatchUnevenSMT is the regression test for the smtWays derivation:
// on an uneven-SMT topology (core 0 has two hyperthreads, core 1 has one)
// the old code read the hyperthread count off the first core only, chose the
// hyperthread pairing strategy, and then asked for second hyperthreads that
// do not exist — reporting ControlHyperthread while silently leaving some
// control threads unmapped. With the per-core minimum the hyperthread
// strategy is only chosen when every core really has a second thread.
func TestTreeMatchUnevenSMT(t *testing.T) {
	mach := machine(t, "pack:1 core:2 pu:2,1")
	m := comm.Ring(2, 100)
	a, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy == treematch.ControlHyperthread {
		t.Fatalf("hyperthread strategy chosen on a machine where core 1 has no second hyperthread")
	}
	// Strategy and per-task control placement must agree: no task may
	// report a mapped strategy and carry an unmapped control thread.
	for i, ctl := range a.ControlPU {
		switch a.Strategy {
		case treematch.ControlUnmapped:
			if ctl != -1 {
				t.Errorf("task %d: control on PU %d under the unmapped strategy", i, ctl)
			}
		default:
			if ctl < 0 {
				t.Errorf("task %d: unmapped control thread under strategy %v", i, a.Strategy)
			}
		}
	}
}

// TestTreeMatchUnevenSMTMoreCores covers the spare-cores path on an uneven
// machine: four cores of which one lacks the second hyperthread, two tasks.
// The minimum says "no SMT", so the spare cores take the control threads —
// on PUs that exist.
func TestTreeMatchUnevenSMTMoreCores(t *testing.T) {
	mach := machine(t, "pack:1 core:4 pu:2,2,2,1")
	m := comm.Ring(2, 100)
	a, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != treematch.ControlSpareCores {
		t.Fatalf("strategy = %v, want spare-cores", a.Strategy)
	}
	topo := mach.Topology()
	for i, ctl := range a.ControlPU {
		if ctl < 0 || ctl >= topo.NumPUs() {
			t.Errorf("task %d: control PU %d out of range", i, ctl)
		}
	}
}

// controlShuffler is a stub policy for the control-rebind pricing test: the
// first Assign returns the baseline; later Assigns move one computation
// thread for a real but small gain and shuffle every control thread.
type controlShuffler struct {
	calls *int
}

func (controlShuffler) Name() string { return "control-shuffler" }

func (p controlShuffler) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	*p.calls++
	n := m.Order()
	a := &Assignment{
		Policy:    "control-shuffler",
		TaskPU:    make([]int, n),
		ControlPU: make([]int, n),
	}
	pus := mach.Topology().NumPUs()
	for i := 0; i < n; i++ {
		a.TaskPU[i] = i % pus
		a.ControlPU[i] = -1
	}
	if *p.calls > 1 {
		// Tiny computation gain: move the last task next to its partner...
		a.TaskPU[n-1] = (n - 2) % pus
		// ...and shuffle every control thread, which is where the real
		// migration bill of this candidate lies.
		for i := 0; i < n; i++ {
			a.ControlPU[i] = (i + 1) % pus
		}
	}
	return a, nil
}

// TestAdaptiveControlRebindsPriced is the regression test for the
// hysteresis underpricing: the engine applied control-thread rebinds but
// summed only computation-thread moves into the migration cost, so a
// candidate that shuffles many control threads for a marginal gain slipped
// under the threshold. Priced correctly, the control-heavy candidate must
// now be skipped.
func TestAdaptiveControlRebindsPriced(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:4 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: 7})
	n := 8
	// Tiny locations keep the computation move itself cheap (~1 migration
	// penalty); large declared volumes make the candidate's predicted gain
	// land between "one move" and "one move plus eight control rebinds", so
	// the decision flips on whether control rebinds are priced.
	locs := make([]*orwl.Location, n)
	for i := range locs {
		locs[i] = rt.NewLocation("l", 1<<10)
	}
	iters := 6
	for i := 0; i < n; i++ {
		i := i
		task := rt.AddTask("t", nil)
		r := task.NewHandleVol(locs[(i+1)%n], orwl.Read, 512<<10, 0)
		w := task.NewHandleVol(locs[i], orwl.Write, 512<<10, 1)
		task.SetFunc(func(tk *orwl.Task) error {
			for it := 0; it < iters; it++ {
				last := it == iters-1
				for _, h := range []*orwl.Handle{r, w} {
					if err := h.Acquire(); err != nil {
						return err
					}
					var err error
					if last {
						err = h.Release()
					} else {
						err = h.ReleaseAndRequest()
					}
					if err != nil {
						return err
					}
				}
				tk.EndIteration()
			}
			return nil
		})
	}
	calls := 0
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{
		Base:       controlShuffler{calls: &calls},
		EpochIters: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
	// The candidate's one-task gain cannot recoup the migration penalty of
	// eight control rebinds plus one computation move: every epoch must be
	// skipped. (Pre-fix, the unpriced control moves made the candidate look
	// cheap enough to apply.)
	if st.Applied != 0 {
		t.Errorf("control-heavy candidate applied %d times, want 0 (stats %+v)", st.Applied, st)
	}
}

// TestPlaceAdaptiveRejectsBadDecay covers the WindowDecay boundaries: 1.0
// ("never forget") used to be silently coerced to 0 (forget everything) deep
// inside comm.Window.Roll; now both PlaceAdaptive and ConfigureEpochs reject
// anything outside [0,1).
func TestPlaceAdaptiveRejectsBadDecay(t *testing.T) {
	build := func() *orwl.Runtime {
		return orwl.NewRuntime(orwl.Options{Machine: machine(t, "pack:1 core:4 pu:1")})
	}
	for _, bad := range []float64{1, 1.5, -0.1, math.NaN()} {
		_, err := PlaceAdaptive(build(), AdaptiveOptions{EpochIters: 1, WindowDecay: bad})
		if err == nil || !strings.Contains(err.Error(), "WindowDecay") {
			t.Errorf("decay %v: error = %v, want WindowDecay validation", bad, err)
		}
	}
	for _, ok := range []float64{0, 0.5, 0.999} {
		rt := build()
		rt.AddTask("t", nil)
		if _, err := PlaceAdaptive(rt, AdaptiveOptions{EpochIters: 1, WindowDecay: ok}); err != nil {
			t.Errorf("decay %v rejected: %v", ok, err)
		}
	}
}
