package orwl

import (
	"testing"

	"repro/internal/numasim"
	"repro/internal/topology"
)

// The analytical-twin test: a producer/consumer halo exchange small enough
// to price by hand, run against the full runtime + simulator stack, with
// EXACT integer equality required between the closed form and
// Runtime.MakespanCycles. Any drift in the pricing model — an extra control
// event, a latency applied twice, a bandwidth shared with a phantom stream —
// breaks the equality rather than shifting a float by an unnoticed epsilon.
//
// The program: one location L of V bytes; task A writes it (rank 1), task B
// reads it (rank 0), K iterations of Acquire → Compute → ReleaseAndRequest
// (plain Release on the last). B's initial request is inserted first, so the
// steady state is the strict alternation B₁ A₁ B₂ A₂ … B_K A_K — a serial
// dependence chain whose makespan is the sum of its per-step charges:
//
//	B₁:  m₀ + c + G        first grant streams L from memory (home = A's
//	                       node, the first writer), plus one control event
//	                       and B's compute
//	Aₖ:  T + c + F         handoff B→A: one cross-placement transfer of V
//	Bₖ:  T + c + G (k ≥ 2)  handoff A→B, same price by symmetry
//
// so with both tasks placed across the boundary (m₀ = T):
//
//	makespan = 2K·T + 2K·c + K·(F + G)
//
// The physical constants below are chosen integer-friendly (1 GHz clock,
// bandwidths that divide V exactly), so every term is an exact integer and
// float64 accumulates it exactly.
func twinAttrs() topology.Defaults {
	return topology.Defaults{
		ClockHz:   1e9,
		L1Size:    32 << 10,
		L2Size:    256 << 10,
		L1Latency: 4,
		L2Latency: 12,
		// 100-cycle local memory latency, 1 B/cycle node bandwidth.
		MemLatencyCycles: 100,
		MemBandwidth:     1e9,
		// Inter-socket links at node bandwidth; the hop-distance scaling
		// (÷4 at the 4-hop cross-socket distance) makes the effective
		// cross-socket stream 0.25 B/cycle.
		LinkBandwidth: 1e9,
		// Cluster NICs: 1000 cycles per link, 0.25 B/cycle.
		NetLatencyCycles: 1000,
		NetBandwidth:     2.5e8,
	}
}

const (
	twinV     = 1 << 20  // location size = handle volume, bytes
	twinK     = 3        // iterations per task
	twinF     = 250_000  // A's per-iteration flops (1 flop/cycle)
	twinG     = 125_000  // B's per-iteration flops
	twinCtl   = 1000     // Options.ControlEventCycles
	twinCtlMu = 6 * 1000 // one control event: 6× (control threads unmapped)
)

// twinMakespan runs the ping-pong on the given platform with A and B bound
// to the given PUs and returns the simulated makespan in cycles.
func twinMakespan(t *testing.T, spec string, puA, puB int) float64 {
	t.Helper()
	p, err := numasim.NewPlatformAttrs(spec, twinAttrs(), numasim.Config{FlopsPerCycle: 1})
	if err != nil {
		t.Fatalf("NewPlatformAttrs(%q): %v", spec, err)
	}
	rt := NewRuntime(Options{Machine: p.Machine(), ControlEventCycles: twinCtl})
	loc := rt.NewLocation("halo", twinV)

	body := func(flops float64) func(*Task) error {
		return func(tk *Task) error {
			h := tk.Handle(0)
			for k := 0; k < twinK; k++ {
				if err := h.Acquire(); err != nil {
					return err
				}
				tk.Proc().Compute(flops)
				if k < twinK-1 {
					if err := h.ReleaseAndRequest(); err != nil {
						return err
					}
				} else if err := h.Release(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	a := rt.AddTask("A", body(twinF))
	b := rt.AddTask("B", body(twinG))
	a.NewHandleVol(loc, Write, twinV, 1)
	b.NewHandleVol(loc, Read, twinV, 0)
	if err := rt.Bind(a, puA); err != nil {
		t.Fatal(err)
	}
	if err := rt.Bind(b, puB); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rt.MakespanCycles()
}

// twinExpect is the closed form: 2K transfers at cost per-transfer cycles,
// 2K control events, K compute rounds of each task.
func twinExpect(transfer float64) float64 {
	return 2*twinK*transfer + 2*twinK*twinCtlMu + twinK*(twinF+twinG)
}

func TestAnalyticalTwinFlatMachine(t *testing.T) {
	// Two single-core sockets, each its own NUMA node. The cross-socket
	// access: hop distance 4 (socket→machine→socket through the NUMA level),
	// so latency 100·(1+4/2) = 300 cycles and link bandwidth scaled ÷4 to
	// 0.25 B/cycle → a V-byte stream costs 300 + 4V cycles.
	got := twinMakespan(t, "pack:2 core:1 pu:1", 0, 1)
	want := twinExpect(300 + 4*twinV)
	if got != want {
		t.Fatalf("flat-machine makespan = %v cycles, closed form says %v (Δ %v)", got, want, got-want)
	}
}

func TestAnalyticalTwinTwoNodeFabric(t *testing.T) {
	// Two single-socket cluster nodes behind one switch. The cross-node
	// access: local memory latency plus both NIC links (100 + 2·1000) and
	// the NIC-bottlenecked stream at 0.25 B/cycle → 2100 + 4V cycles.
	got := twinMakespan(t, "cluster:2 pack:1 core:1 pu:1", 0, 1)
	want := twinExpect(2100 + 4*twinV)
	if got != want {
		t.Fatalf("two-node-fabric makespan = %v cycles, closed form says %v (Δ %v)", got, want, got-want)
	}
	// The fabric run exceeds the flat run by exactly the latency difference
	// on the 2K serial transfers: the bandwidth terms cancel by construction.
	flat := twinMakespan(t, "pack:2 core:1 pu:1", 0, 1)
	if diff := got - flat; diff != 2*twinK*(2100-300) {
		t.Fatalf("fabric−flat = %v cycles, want exactly 2K·Δlatency = %v", diff, 2*twinK*(2100-300))
	}
}
