// Docs-freshness guard: command-line flags and the documentation pages must
// not drift apart silently. The test parses every cmd/* main.go for flag
// declarations and asserts the README mentions each flag; it also pins the
// existence of the architecture and topology-spec docs and their links from
// the README.
package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// flagDeclRe matches the name argument of flag.String(...), flag.BoolVar-style
// declarations included.
var flagDeclRe = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Float64|Duration)(?:Var)?\(\s*(?:&[\w.]+,\s*)?"([^"]+)"`)

func TestREADMEDocumentsCommandFlags(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)

	mains, err := filepath.Glob(filepath.Join("cmd", "*", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no cmd/*/main.go found; the guard is looking in the wrong place")
	}
	for _, main := range mains {
		src, err := os.ReadFile(main)
		if err != nil {
			t.Fatal(err)
		}
		decls := flagDeclRe.FindAllStringSubmatch(string(src), -1)
		if len(decls) == 0 {
			continue
		}
		cmd := filepath.Base(filepath.Dir(main))
		if !strings.Contains(doc, "cmd/"+cmd) {
			t.Errorf("README does not mention cmd/%s, which declares flags", cmd)
			continue
		}
		for _, d := range decls {
			if !strings.Contains(doc, "-"+d[1]) {
				t.Errorf("README does not document flag -%s of cmd/%s", d[1], cmd)
			}
		}
	}
}

func TestREADMELinksDocs(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"docs/ARCHITECTURE.md", "docs/TOPOLOGY_SPECS.md", "docs/SCHEDULER.md"} {
		if _, err := os.Stat(doc); err != nil {
			t.Errorf("%s missing: %v", doc, err)
		}
		if !strings.Contains(string(readme), doc) {
			t.Errorf("README does not link %s", doc)
		}
	}
}

// TestAblateFlagHelpMatchesREADME drives the -exp flag's usage string the
// same way `ablate -h` renders it: every experiment name offered by the
// binary must appear in the README's flag table, so a new ablation cannot
// ship undocumented.
func TestAblateFlagHelpMatchesREADME(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("cmd", "ablate", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`"exp", "all", "ablation: ([^"]+)"`).FindStringSubmatch(string(src))
	if m == nil {
		t.Fatal("could not find the -exp usage string in cmd/ablate/main.go")
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range strings.Split(m[1], ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !strings.Contains(string(readme), name) {
			t.Errorf("README does not mention ablation %q offered by ablate -exp", name)
		}
	}
}
