// Package repro is a Go reproduction of "Optimizing Locality by
// Topology-aware Placement for a Task Based Programming Model" (Gustedt,
// Jeannot, Mansouri; IEEE CLUSTER 2016): the ORWL task-based programming
// model enriched with a TreeMatch-based, topology-aware thread-placement
// module, evaluated with the Livermore Kernel 23 benchmark.
//
// This package is the public facade; the implementation lives in the
// internal packages:
//
//	internal/topology   hardware topology model (the HWLOC role)
//	internal/numasim    deterministic virtual-time NUMA machine simulator
//	internal/comm       communication/affinity matrices
//	internal/treematch  Algorithm 1 (TreeMatch + oversubscription +
//	                    control threads + NUMA distribution)
//	internal/orwl       the ORWL runtime (locations, handles, tasks)
//	internal/placement  the placement module and baseline policies
//	internal/kernels    Livermore Kernel 23 and the block decomposition
//	internal/omp        the OpenMP-style baseline runtime
//	internal/experiment Figure 1 and the ablation studies
//	internal/core       orchestration (machine + program + placement)
//	internal/trace      lock-transition tracing
//
// The quickest entry points are below; see README.md for the architecture
// and EXPERIMENTS.md for the paper-versus-measured record.
package repro

import (
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/orwl"
	"repro/internal/placement"
)

// System is an assembled simulated machine with an ORWL program under
// construction; see internal/core.
type System = core.System

// SystemOptions configures NewSystem.
type SystemOptions = core.Options

// NewSystem builds a simulated NUMA machine (default: the paper's 24×8
// SMP) with an empty ORWL runtime and the topology-aware placement policy.
func NewSystem(opts SystemOptions) (*System, error) {
	return core.NewSystem(opts)
}

// Runtime, Task, Handle and Location are the ORWL programming-model types.
type (
	Runtime  = orwl.Runtime
	Task     = orwl.Task
	Handle   = orwl.Handle
	Location = orwl.Location
)

// Read and Write are the handle access modes.
const (
	Read  = orwl.Read
	Write = orwl.Write
)

// TreeMatchPolicy is the paper's placement policy; NoBindPolicy leaves all
// threads to the OS scheduler (the paper's NoBind baseline).
type (
	TreeMatchPolicy = placement.TreeMatch
	NoBindPolicy    = placement.NoBind
)

// AdaptiveOptions, AdaptiveEngine and AdaptiveStats expose the epoch-based
// adaptive re-placement engine: the one-shot pipeline of the paper turned
// into a feedback loop that re-decides the placement from the measured
// communication window at every epoch boundary.
type (
	AdaptiveOptions = placement.AdaptiveOptions
	AdaptiveEngine  = placement.AdaptiveEngine
	AdaptiveStats   = placement.AdaptiveStats
)

// PlaceAdaptive places rt's tasks with the base policy and installs the
// epoch feedback loop; see placement.PlaceAdaptive.
func PlaceAdaptive(rt *Runtime, opts AdaptiveOptions) (*AdaptiveEngine, error) {
	return placement.PlaceAdaptive(rt, opts)
}

// Epoch is the quiesced runtime view handed to epoch hooks; see
// orwl.Runtime.ConfigureEpochs.
type Epoch = orwl.Epoch

// PhaseShiftConfig and PhaseShiftResult parameterize the phase-shifting
// evaluation scenario of the adaptive engine (experiment A8).
type (
	PhaseShiftConfig = experiment.PhaseShiftConfig
	PhaseShiftResult = experiment.PhaseShiftResult
)

// RunPhaseShift runs the phase-shifting workload under "static", "adaptive"
// or "oracle" placement; see experiment.RunPhaseShift.
func RunPhaseShift(mode string, cfg PhaseShiftConfig) (PhaseShiftResult, error) {
	return experiment.RunPhaseShift(mode, cfg)
}

// ExperimentConfig parameterizes the Livermore Kernel 23 experiment.
type ExperimentConfig = experiment.Config

// Figure1Row is one core-count point of the paper's Figure 1.
type Figure1Row = experiment.Figure1Row

// Figure1 regenerates the paper's Figure 1: LK23 processing time for
// ORWL Bind, ORWL NoBind and OpenMP at each core count.
func Figure1(points []int, cfg ExperimentConfig) ([]Figure1Row, error) {
	return experiment.Figure1(points, cfg)
}

// DefaultFigure1Points returns the swept core counts (8..192).
func DefaultFigure1Points() []int { return experiment.DefaultFigure1Points() }

// FormatFigure1 renders Figure 1 rows as a table with the paper's speedup
// columns.
func FormatFigure1(rows []Figure1Row) string { return experiment.FormatFigure1(rows) }
