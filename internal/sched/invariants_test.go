package sched

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/numasim"
	"repro/internal/topology"
)

// Property-based scheduler invariants over seeded random streams, the
// online-scheduling extension of the placement property suite: admitted jobs
// stay inside their required domain, no core slot is double-booked across
// concurrently resident jobs, a departure returns the free-capacity index
// exactly to its prior state, and identical seeds give bit-identical
// schedules.

// invariantCases spans the policies and both fit rules over two fabric
// shapes and several stream seeds.
func invariantCases() []struct {
	name string
	spec string
	opts Options
	seed int64
} {
	var out []struct {
		name string
		spec string
		opts Options
		seed int64
	}
	shapes := []struct{ name, spec string }{
		{"rack2x4", "rack:2 node:4 pack:2 core:4 pu:1"},
		{"pod2", "pod:2 rack:2 node:2 pack:2 core:4 pu:1"},
	}
	opts := []struct {
		name string
		o    Options
	}{
		{"aware-best", Options{Policy: TopoAware, Fit: BestFit}},
		{"aware-worst", Options{Policy: TopoAware, Fit: WorstFit}},
		{"aware-reject", Options{Policy: TopoAware, Queue: QueueReject}},
		{"blind", Options{Policy: TopoBlind}},
		{"first-fit", Options{Policy: FirstFit}},
		{"backfill", Options{Policy: TopoAware, Backfill: true}},
		{"preempt", Options{Policy: TopoAware, Preempt: true}},
		{"defrag", Options{Policy: TopoAware, Defrag: true}},
		{"defrag-gated", Options{Policy: TopoAware, Defrag: true, DefragThreshold: 0.3}},
		{"full-stack", Options{Policy: TopoAware, Backfill: true, Preempt: true, Defrag: true}},
		{"full-stack-reject", Options{Policy: TopoAware, Backfill: true, Preempt: true, Defrag: true, Queue: QueueReject}},
	}
	for _, sh := range shapes {
		for _, op := range opts {
			for _, seed := range []int64{1, 7, 42} {
				out = append(out, struct {
					name string
					spec string
					opts Options
					seed int64
				}{sh.name + "/" + op.name, sh.spec, op.o, seed})
			}
		}
	}
	return out
}

func invariantStream(t *testing.T, seed int64) []JobSpec {
	t.Helper()
	// The priority classes and the heavy work tail give the phase-2 cases
	// lawful preemption victims and real backfill windows to act on.
	jobs, err := GenerateStream(StreamConfig{Jobs: 30, Seed: seed, Churn: 5,
		ConstraintFraction: 0.4, PreferredTier: "node", RequiredTier: "rack",
		PriorityClasses: 3, LongFraction: 0.2})
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	return jobs
}

// TestSchedulerInvariants replays every case and checks containment,
// exclusivity and end-state restoration on the same run.
func TestSchedulerInvariants(t *testing.T) {
	for _, tc := range invariantCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mach := schedMachine(t, tc.spec)
			topo := mach.Topology()
			s, err := New(mach, tc.opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			before := s.Capacity().Fingerprint()
			rep, err := s.Run(invariantStream(t, tc.seed))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}

			// Departures restored the index exactly: after the full run every
			// job has released its slots, and the incremental aggregates agree
			// with a from-scratch recount.
			if after := s.Capacity().Fingerprint(); after != before {
				t.Fatalf("capacity index not restored:\n before %s\n after  %s", before, after)
			}
			if err := s.Capacity().Validate(); err != nil {
				t.Fatalf("capacity index inconsistent: %v", err)
			}

			rackOfNode := nodeTierIndex(topo, topology.Rack)
			type interval struct {
				start, finish float64
				cores         []int
			}
			var placed []interval
			for _, j := range rep.Jobs {
				if j.Rejected {
					continue
				}
				if len(j.Cores) != j.Tasks {
					t.Fatalf("job %s: %d cores for %d tasks", j.Name, len(j.Cores), j.Tasks)
				}
				// Containment: every core inside the job's reported domain;
				// for required-constrained jobs under the constraint-honoring
				// policies that domain is itself inside the required tier.
				if tc.opts.Policy != FirstFit {
					checkContainment(t, s, topo, rackOfNode, j)
				}
				// Exclusivity is a per-residency property: a preempted or
				// migrated job occupies different cores over disjoint
				// segments, so each segment is its own interval.
				if len(j.Segments) == 0 {
					t.Fatalf("job %s: admitted but has no residency segments", j.Name)
				}
				for _, seg := range j.Segments {
					placed = append(placed, interval{seg.StartCycles, seg.FinishCycles, seg.Cores})
				}
			}

			// Exclusivity: no core serves two jobs whose residency overlaps.
			for i := 0; i < len(placed); i++ {
				for k := i + 1; k < len(placed); k++ {
					a, b := placed[i], placed[k]
					if a.start >= b.finish || b.start >= a.finish {
						continue
					}
					if c := sharedCore(a.cores, b.cores); c >= 0 {
						t.Fatalf("core %d double-booked by overlapping jobs [%v,%v) and [%v,%v)",
							c, a.start, a.finish, b.start, b.finish)
					}
				}
			}
		})
	}
}

// nodeTierIndex maps every cluster node to its domain index at the tier (-1
// without that tier).
func nodeTierIndex(topo *topology.Topology, tier topology.Kind) []int {
	out := make([]int, topo.NumClusterNodes())
	for i := range out {
		out[i] = -1
	}
	for d, dom := range topo.FabricDomains(tier) {
		for _, n := range dom.Nodes {
			out[n] = d
		}
	}
	return out
}

// checkContainment verifies the job's cores all sit inside the domain it
// reports, and that a required=rack job never leaves one rack.
func checkContainment(t *testing.T, s *Scheduler, topo *topology.Topology, rackOfNode []int, j JobStat) {
	t.Helper()
	racks := map[int]bool{}
	for _, core := range j.Cores {
		racks[rackOfNode[s.cap.nodeOf[core]]] = true
	}
	switch j.Tier {
	case "node":
		if j.NodesSpanned != 1 {
			t.Fatalf("job %s: tier node but spans %d nodes", j.Name, j.NodesSpanned)
		}
	case "rack":
		if len(racks) != 1 {
			t.Fatalf("job %s: tier rack but touches racks %v", j.Name, racks)
		}
		if !racks[j.Domain] {
			t.Fatalf("job %s: reported rack %d but sits in %v", j.Name, j.Domain, racks)
		}
	}
}

func sharedCore(a, b []int) int {
	set := map[int]bool{}
	for _, c := range a {
		set[c] = true
	}
	for _, c := range b {
		if set[c] {
			return c
		}
	}
	return -1
}

// TestSchedulerDeterminism: identical seeds give bit-identical schedules,
// including all float aggregates.
func TestSchedulerDeterminism(t *testing.T) {
	for _, tc := range invariantCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			jobs := invariantStream(t, tc.seed)
			run := func() *Report {
				rep := mustRun(t, schedMachine(t, tc.spec), tc.opts, jobs)
				return rep
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestCapacityBindReleaseRestores drives the index directly with random
// bind/release pairs: each release returns the fingerprint to the exact
// pre-bind state, and the incremental aggregates never drift from a full
// recount.
func TestCapacityBindReleaseRestores(t *testing.T) {
	topo, err := topology.FromSpec("pod:2 rack:2 node:2 pack:2 core:4 pu:1")
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	c, err := NewCapacity(topo)
	if err != nil {
		t.Fatalf("NewCapacity: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	type bound struct {
		cores []int
		prior string
	}
	var resident []bound
	for step := 0; step < 400; step++ {
		if rng.Intn(2) == 0 && c.FreeTotal() > 0 {
			// Bind a random subset of the free slots.
			var free []int
			for n := range c.free {
				free = append(free, c.free[n]...)
			}
			sort.Ints(free)
			rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
			k := 1 + rng.Intn(len(free))
			cores := append([]int(nil), free[:k]...)
			prior := c.Fingerprint()
			if err := c.Bind(cores); err != nil {
				t.Fatalf("step %d: bind %v: %v", step, cores, err)
			}
			resident = append(resident, bound{cores, prior})
		} else if len(resident) > 0 {
			// Release the most recent binding: state must return exactly.
			last := resident[len(resident)-1]
			resident = resident[:len(resident)-1]
			if err := c.Release(last.cores); err != nil {
				t.Fatalf("step %d: release %v: %v", step, last.cores, err)
			}
			if got := c.Fingerprint(); got != last.prior {
				t.Fatalf("step %d: release did not restore state:\n want %s\n got  %s", step, last.prior, got)
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// schedMachineCfg builds a machine with an explicit simulation config, for
// the edge cases that need a non-default migration penalty.
func schedMachineCfg(t *testing.T, spec string, cfg numasim.Config) *numasim.Machine {
	t.Helper()
	plat, err := numasim.NewPlatform(spec, cfg)
	if err != nil {
		t.Fatalf("platform %q: %v", spec, err)
	}
	return plat.Machine()
}

// TestBackfillConservativeWindow pins the conservative-backfill contract on
// a hand-built stream: a candidate whose modeled service exceeds the blocked
// head's earliest-start window must NOT jump the queue (the window is never
// zero while the head is blocked — the next departure is strictly ahead —
// so too-small is the boundary case), while a short candidate backfills and
// the head's start time is bit-identical either way (the head is never
// delayed).
func TestBackfillConservativeWindow(t *testing.T) {
	const spec = "rack:1 node:1 pack:1 core:4 pu:1"
	long := JobSpec{Name: "long", ArriveCycles: 0, WorkCycles: 2e6, Tasks: 3, VolumeBytes: 64}
	head := JobSpec{Name: "head", ArriveCycles: 100, WorkCycles: 1e6, Tasks: 4, VolumeBytes: 64}
	big := JobSpec{Name: "big", ArriveCycles: 200, WorkCycles: 5e6, Tasks: 1, VolumeBytes: 64}
	tiny := JobSpec{Name: "tiny", ArriveCycles: 200, WorkCycles: 1e5, Tasks: 1, VolumeBytes: 64}
	opts := Options{Policy: TopoAware, Backfill: true}

	byName := func(rep *Report, name string) JobStat {
		t.Helper()
		for _, j := range rep.Jobs {
			if j.Name == name {
				return j
			}
		}
		t.Fatalf("job %s missing from report", name)
		return JobStat{}
	}

	// A 5e6-cycle candidate does not fit the ~2e6-cycle window: no backfill,
	// strict FIFO order preserved.
	noop := mustRun(t, schedMachine(t, spec), opts, []JobSpec{long, head, big})
	if noop.Backfills != 0 {
		t.Fatalf("oversized candidate backfilled %d times, want 0", noop.Backfills)
	}
	if hs, bs := byName(noop, "head"), byName(noop, "big"); bs.StartCycles < hs.FinishCycles {
		t.Fatalf("big started at %v before the head finished at %v", bs.StartCycles, hs.FinishCycles)
	}

	// A 1e5-cycle candidate fits: it backfills onto the idle core and the
	// head starts exactly when it would have without backfill.
	baseline := mustRun(t, schedMachine(t, spec), Options{Policy: TopoAware}, []JobSpec{long, head, tiny})
	filled := mustRun(t, schedMachine(t, spec), opts, []JobSpec{long, head, tiny})
	if filled.Backfills != 1 || !byName(filled, "tiny").Backfilled {
		t.Fatalf("short candidate not backfilled (backfills=%d)", filled.Backfills)
	}
	ts := byName(filled, "tiny")
	if ts.StartCycles != tiny.ArriveCycles {
		t.Errorf("backfilled job started at %v, want its arrival %v", ts.StartCycles, tiny.ArriveCycles)
	}
	if got, want := byName(filled, "head").StartCycles, byName(baseline, "head").StartCycles; got != want {
		t.Errorf("backfill delayed the head: start %v, want %v", got, want)
	}
	if byName(filled, "head").StartCycles < byName(filled, "long").FinishCycles {
		t.Errorf("head started before the long job released the machine")
	}
}

// phase2Stream is the shared hand-built eviction scenario: two background
// jobs split across the racks (bgB pinned by its rack constraint under
// worst-fit), leaving two free slots per rack, then a four-task
// rack-required head that no single rack can serve without intervention.
func phase2Stream(headPriority int) []JobSpec {
	return []JobSpec{
		{Name: "bgA", ArriveCycles: 0, WorkCycles: 9e6, Tasks: 2, VolumeBytes: 1024},
		{Name: "bgB", ArriveCycles: 1, WorkCycles: 9e6, Tasks: 2, VolumeBytes: 1024, Required: "rack"},
		{Name: "head", ArriveCycles: 2, WorkCycles: 1e6, Tasks: 4, VolumeBytes: 1024,
			Priority: headPriority, Required: "rack"},
	}
}

// TestPreemptionRestoresCapacity: the high-priority head evicts the
// unconstrained background job mid-service, the victim's accounting stays
// exact across its two residency segments, and the capacity index ends the
// run bit-identical to its pre-run fingerprint.
func TestPreemptionRestoresCapacity(t *testing.T) {
	const spec = "rack:2 node:1 pack:1 core:4 pu:1"
	opts := Options{Policy: TopoAware, Fit: WorstFit, Preempt: true}
	mach := schedMachine(t, spec)
	s, err := New(mach, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before := s.Capacity().Fingerprint()
	rep, err := s.Run(phase2Stream(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after := s.Capacity().Fingerprint(); after != before {
		t.Fatalf("capacity index not restored after preemption:\n before %s\n after  %s", before, after)
	}
	if err := s.Capacity().Validate(); err != nil {
		t.Fatalf("capacity index inconsistent: %v", err)
	}
	if rep.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want exactly 1\n%+v", rep.Preemptions, rep.Jobs)
	}
	if rep.RespawnCycles <= 0 {
		t.Errorf("respawn cycles %v, want > 0 (the eviction is charged)", rep.RespawnCycles)
	}
	var victim, head JobStat
	for _, j := range rep.Jobs {
		switch j.Name {
		case "bgA":
			victim = j
		case "head":
			head = j
		}
	}
	if victim.Preemptions != 1 || len(victim.Segments) != 2 {
		t.Fatalf("victim preemptions=%d segments=%d, want 1 and 2", victim.Preemptions, len(victim.Segments))
	}
	if victim.Segments[0].FinishCycles != head.StartCycles {
		t.Errorf("victim's first segment ends at %v, want the head's start %v",
			victim.Segments[0].FinishCycles, head.StartCycles)
	}
	if got := victim.ArriveCycles + victim.WaitCycles + victim.ServiceCycles; !within(got, victim.FinishCycles, 1e-6) {
		t.Errorf("victim accounting broken: arrive+wait+service = %v, finish = %v", got, victim.FinishCycles)
	}
	if head.StartCycles != 2 {
		t.Errorf("head start %v, want 2 (immediately via preemption)", head.StartCycles)
	}
	// Without preemption the head must sit out the background service.
	fifo := mustRun(t, schedMachine(t, spec), Options{Policy: TopoAware, Fit: WorstFit}, phase2Stream(2))
	for _, j := range fifo.Jobs {
		if j.Name == "head" && j.StartCycles <= head.StartCycles {
			t.Errorf("preemption did not help: head start %v with, %v without", head.StartCycles, j.StartCycles)
		}
	}
}

// TestDefragCostGate: on the same split-rack scenario, defragmentation
// migrates the background job when the bill is small, and is a priced no-op
// when the migration penalty dwarfs the head's wait saving — the decision
// must follow the machine model, not the fragmentation state.
func TestDefragCostGate(t *testing.T) {
	const spec = "rack:2 node:1 pack:1 core:4 pu:1"
	opts := Options{Policy: TopoAware, Fit: WorstFit, Defrag: true}
	jobs := phase2Stream(0) // defragmentation needs no priority classes

	cheap := mustRun(t, schedMachine(t, spec), opts, jobs)
	if cheap.DefragMigrations != 1 {
		t.Fatalf("defrag migrations = %d, want exactly 1\n%+v", cheap.DefragMigrations, cheap.Jobs)
	}
	if cheap.DefragCostCycles <= 0 {
		t.Errorf("defrag cost %v, want > 0 (the move is charged)", cheap.DefragCostCycles)
	}
	for _, j := range cheap.Jobs {
		switch j.Name {
		case "bgA":
			if j.DefragMigrations != 1 || len(j.Segments) != 2 {
				t.Errorf("migrated job defrags=%d segments=%d, want 1 and 2", j.DefragMigrations, len(j.Segments))
			}
		case "head":
			if j.StartCycles != 2 {
				t.Errorf("head start %v, want 2 (immediately via defrag)", j.StartCycles)
			}
		}
	}

	// A 1e12-cycle migration penalty makes every candidate move cost more
	// than the ~9e6-cycle wait it would save: the engine must decline.
	dear := mustRun(t, schedMachineCfg(t, spec, numasim.Config{MigrationPenaltyCycles: 1e12}), opts, jobs)
	if dear.DefragMigrations != 0 {
		t.Fatalf("defrag fired %d times despite a prohibitive bill", dear.DefragMigrations)
	}
	for _, j := range dear.Jobs {
		if j.Name == "head" && j.StartCycles <= 2 {
			t.Errorf("head start %v under prohibitive defrag cost, want the full queue wait", j.StartCycles)
		}
	}
}

// within reports |a-b| <= tol*max(|a|,|b|) — float accounting tolerance.
func within(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestCapacityRejectsBadSlots: double bind, foreign release, out-of-range.
func TestCapacityRejectsBadSlots(t *testing.T) {
	topo, err := topology.FromSpec("cluster:2 pack:1 core:4 pu:1")
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	c, err := NewCapacity(topo)
	if err != nil {
		t.Fatalf("NewCapacity: %v", err)
	}
	if err := c.Bind([]int{0, 1}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := c.Bind([]int{1}); err == nil {
		t.Fatal("double bind accepted")
	}
	if err := c.Release([]int{2}); err == nil {
		t.Fatal("release of free slot accepted")
	}
	if err := c.Bind([]int{99}); err == nil {
		t.Fatal("out-of-range bind accepted")
	}
	if err := c.Bind([]int{2, 2}); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("index left inconsistent: %v", err)
	}
}
