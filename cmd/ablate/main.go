// Command ablate runs the ablation studies of the reproduction: the design
// choices of the paper's placement module isolated one at a time (see
// DESIGN.md §4 for the index).
//
//	ablate                  # run every ablation at a reduced scale
//	ablate -exp policies    # placement policies (A1)
//	ablate -exp control     # control-thread strategies (A2)
//	ablate -exp oversub     # oversubscription (A3)
//	ablate -exp granularity # block granularity (A4)
//	ablate -exp topology    # machine shapes (A5)
//	ablate -exp distribute  # NUMA distribution (A6)
//	ablate -exp ompsched    # OpenMP loop schedules (A7)
//	ablate -exp adaptive    # epoch-based adaptive re-placement (A8)
//	ablate -exp cluster     # multi-node hierarchical placement (A9)
//	ablate -exp rack        # rack-tier fabric, three-level placement (A10)
//	ablate -exp hetero      # heterogeneous pod-tier platform (A11)
//	ablate -full            # paper-scale matrix and iterations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "ablation: policies, control, oversub, granularity, topology, distribute, ompsched, adaptive, cluster, rack, hetero, all")
		full  = flag.Bool("full", false, "paper-scale configuration (16384^2, 100 iterations, 192 cores; overrides -rows/-cols/-iters/-cores)")
		seed  = flag.Int64("seed", 7, "simulated OS scheduler seed")
		rows  = flag.Int("rows", 4096, "matrix rows (reduced scale)")
		cols  = flag.Int("cols", 4096, "matrix columns (reduced scale)")
		iters = flag.Int("iters", 10, "iterations (reduced scale)")
		cores = flag.Int("cores", 48, "number of cores (reduced scale)")
	)
	flag.Parse()

	cfg, err := buildConfig(*rows, *cols, *iters, *cores, *seed, *full)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}

	type ablation struct {
		name  string
		title string
		run   func(experiment.Config) ([]experiment.AblationRow, error)
	}
	all := []ablation{
		{"policies", "A1: placement policies (LK23, blocks = cores)", experiment.AblationPolicies},
		{"control", "A2: control-thread strategies", experiment.AblationControlThreads},
		{"oversub", "A3: oversubscription (blocks vs cores)", experiment.AblationOversubscription},
		{"granularity", "A4: block granularity", experiment.AblationGranularity},
		{"topology", "A5: topology shapes (192 cores each)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationTopology(c, experiment.DefaultTopologyCases())
		}},
		{"distribute", "A6: NUMA distribution (cluster + distribute vs cluster only)", experiment.AblationDistribution},
		{"ompsched", "A7: OpenMP loop schedules vs bound ORWL", experiment.AblationOMPSchedule},
		{"adaptive", "A8: adaptive re-placement (static vs epoch feedback vs oracle)", experiment.AblationAdaptive},
		{"cluster", "A9: multi-node placement (hierarchical vs flat vs rr-nodes vs one big node)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationCluster(experiment.ClusterConfigFrom(c))
		}},
		{"rack", "A10: rack-tier fabric (fabric-aware vs fabric-blind vs flat treematch)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationRack(experiment.RackConfigFrom(c))
		}},
		{"hetero", "A11: heterogeneous pod-tier platform (aware vs capacity-blind vs depth-blind)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationHetero(experiment.HeteroConfigFrom(c))
		}},
	}

	ran := false
	for _, a := range all {
		if *exp != "all" && *exp != a.name {
			continue
		}
		ran = true
		rows, err := a.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablate: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Print(experiment.FormatAblation(a.title, rows))
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ablate: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

// buildConfig assembles and validates the ablation configuration from the
// flag values; -full overrides the scale flags with the paper's setup.
func buildConfig(rows, cols, iters, cores int, seed int64, full bool) (experiment.Config, error) {
	cfg := experiment.Config{Rows: rows, Cols: cols, Iters: iters, Cores: cores, Seed: seed}
	if full {
		cfg = experiment.Config{Seed: seed}
	}
	if err := cfg.Validate(); err != nil {
		return experiment.Config{}, err
	}
	return cfg, nil
}
