package experiment

import (
	"strings"
	"testing"
)

func ablCfg() Config {
	return Config{Rows: 4096, Cols: 4096, Iters: 5, Cores: 32, Seed: 7}
}

func TestAblationPolicies(t *testing.T) {
	rows, err := AblationPolicies(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s: no time", r.Name)
		}
		byName[r.Name] = r.Seconds
	}
	// TreeMatch must be at least as good as every alternative (tolerance
	// for ties with other bound policies at this scale).
	tm := byName["treematch"]
	for name, s := range byName {
		if s < tm*0.98 {
			t.Errorf("policy %s (%v) beats treematch (%v)", name, s, tm)
		}
	}
	// The unbound baseline must be measurably worse than every bound one
	// at 4 sockets... at this small scale nobind may tie; it must at least
	// not win.
	if byName["nobind"] < tm*0.98 {
		t.Errorf("nobind (%v) beats treematch (%v)", byName["nobind"], tm)
	}
	out := FormatAblation("A1", rows)
	if !strings.Contains(out, "treematch") || !strings.Contains(out, "A1") {
		t.Errorf("FormatAblation output: %s", out)
	}
}

func TestAblationControlThreads(t *testing.T) {
	rows, err := AblationControlThreads(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Hyperthread pairing must beat unmapped controls on the SMT machine.
	if h, u := byName["smt/hyperthread"], byName["smt/unmapped"]; h.Seconds >= u.Seconds {
		t.Errorf("hyperthread controls %v not faster than unmapped %v", h.Seconds, u.Seconds)
	}
	if byName["smt/hyperthread"].Detail != "hyperthread" {
		t.Errorf("smt strategy = %q", byName["smt/hyperthread"].Detail)
	}
	// Spare-core mapping must beat unmapped controls.
	if m, u := byName["spare/mapped"], byName["spare/unmapped"]; m.Seconds >= u.Seconds {
		t.Errorf("spare-core controls %v not faster than unmapped %v", m.Seconds, u.Seconds)
	}
	if byName["spare/mapped"].Detail != "spare-cores" {
		t.Errorf("spare strategy = %q", byName["spare/mapped"].Detail)
	}
}

func TestAblationOversubscription(t *testing.T) {
	rows, err := AblationOversubscription(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More blocks on the same cores must not speed the run up, and the
	// protocol overhead of 4x oversubscription should stay bounded (< 2x).
	if rows[1].Seconds < rows[0].Seconds*0.98 {
		t.Errorf("2x oversubscription faster than 1x: %v vs %v", rows[1].Seconds, rows[0].Seconds)
	}
	if rows[2].Seconds > rows[0].Seconds*2 {
		t.Errorf("4x oversubscription overhead too high: %v vs %v", rows[2].Seconds, rows[0].Seconds)
	}
}

func TestAblationGranularity(t *testing.T) {
	rows, err := AblationGranularity(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// One block per core must beat the quarter-machine configuration
	// (cores idle otherwise).
	var quarter, full float64
	for _, r := range rows {
		switch r.Name {
		case "8 blocks":
			quarter = r.Seconds
		case "32 blocks":
			full = r.Seconds
		}
	}
	if full >= quarter {
		t.Errorf("full occupancy %v not faster than quarter %v", full, quarter)
	}
}

func TestAblationTopology(t *testing.T) {
	rows, err := AblationTopology(ablCfg(), DefaultTopologyCases())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// On every topology the bound run beats (or ties) the unbound one.
	for i := 0; i < len(rows); i += 2 {
		bind, nobind := rows[i], rows[i+1]
		if bind.Seconds > nobind.Seconds*1.02 {
			t.Errorf("%s: bind %v slower than nobind %v", bind.Name, bind.Seconds, nobind.Seconds)
		}
	}
}

func TestAblationOMPSchedule(t *testing.T) {
	rows, err := AblationOMPSchedule(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s: no time", r.Name)
		}
		byName[r.Name] = r.Seconds
	}
	// The point of A7: no OpenMP schedule rescues the baseline — every
	// schedule stays well above the bound ORWL reference (>= 1.3x here,
	// ~5x at full machine scale).
	bind := byName["orwl-bind"]
	for _, sched := range []string{"omp/static", "omp/dynamic", "omp/guided"} {
		if byName[sched] < bind*1.3 {
			t.Errorf("%s (%v) too close to orwl-bind (%v); scheduling should not fix affinity",
				sched, byName[sched], bind)
		}
	}
	// Schedules stay within 25% of each other: the bottleneck is memory
	// placement, not load balance.
	if byName["omp/dynamic"] > byName["omp/static"]*1.25 ||
		byName["omp/static"] > byName["omp/dynamic"]*1.25 {
		t.Errorf("schedules diverge: static %v dynamic %v",
			byName["omp/static"], byName["omp/dynamic"])
	}
}

func TestAblationDistribution(t *testing.T) {
	rows, err := AblationDistribution(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	dist, packed := rows[0], rows[1]
	// The structural effect of the paper's distribution requirement: the
	// restricted tree forces the tasks across more NUMA nodes than pure
	// affinity clustering uses.
	if NodesUsed(dist) <= NodesUsed(packed) {
		t.Errorf("distribution uses %d nodes, cluster-only %d; no spread",
			NodesUsed(dist), NodesUsed(packed))
	}
	if dist.Seconds <= 0 || packed.Seconds <= 0 {
		t.Errorf("missing times: %+v", rows)
	}
}
