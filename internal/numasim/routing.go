package numasim

import "fmt"

// RoutingPolicy selects how transfers are routed over a shaped fabric
// (torus/dragonfly) when pricing latency and bandwidth.
type RoutingPolicy int

const (
	// RouteMinimal prices every transfer along the fabric's minimal route
	// (the default; identical to all earlier revisions).
	RouteMinimal RoutingPolicy = iota
	// RouteValiant prices transfers along a Valiant route: minimal to a
	// deterministic per-pair intermediate node, then minimal to the
	// destination. On a dragonfly this spreads adversarial traffic — many
	// streams between one group pair — across the global links instead of
	// funnelling them all through the single minimal gateway, trading
	// doubled path latency for a contention-free share of bandwidth.
	RouteValiant
)

// ParseRoutingPolicy maps a CLI name to a RoutingPolicy.
func ParseRoutingPolicy(name string) (RoutingPolicy, error) {
	switch name {
	case "minimal":
		return RouteMinimal, nil
	case "valiant":
		return RouteValiant, nil
	}
	return 0, fmt.Errorf("numasim: unknown routing policy %q (want minimal or valiant)", name)
}

func (p RoutingPolicy) String() string {
	if p == RouteValiant {
		return "valiant"
	}
	return "minimal"
}

// SetRoutingPolicy selects the fabric routing policy used by the pricing
// paths. Valiant routing needs a routed fabric graph (any shaped fabric or
// compiled tree has one; a single-machine topology does not). Like the fault
// state, the policy must only change while the machine is quiesced — before
// Run or inside an epoch hook — because the pricing hot paths read it
// without taking the lock.
func (m *Machine) SetRoutingPolicy(p RoutingPolicy) error {
	if p == RouteValiant && m.fabricGraph == nil {
		return fmt.Errorf("numasim: valiant routing needs a fabric graph (single-machine topology)")
	}
	m.routingPolicy = p
	return nil
}

// RoutingPolicy returns the active fabric routing policy.
func (m *Machine) RoutingPolicy() RoutingPolicy { return m.routingPolicy }

// valiantVia picks the deterministic intermediate node of a pair: a
// splitmix-style hash of the endpoints spread over all cluster nodes, so a
// bundle of same-group streams fans out across intermediate groups while
// identical runs price identically. ValiantRoute degrades to the minimal
// route when the hash lands on an endpoint.
func (m *Machine) valiantVia(fromC, toC int) int {
	h := uint64(fromC+1)*0x9E3779B97F4A7C15 ^ uint64(toC+1)*0xBF58476D1CE4E5B9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(m.fabricGraph.NumNodes()))
}

// routeWalk is the uncached counterpart of RoutedPathEdges, used by the
// reference (walk) pricing implementations so the cache-equality tests
// compare like against like under either policy.
func (m *Machine) routeWalk(fromC, toC int) []int {
	if m.routingPolicy == RouteValiant {
		return m.fabricGraph.ValiantRoute(fromC, toC, m.valiantVia(fromC, toC))
	}
	return m.fabricGraph.Route(fromC, toC)
}

// RoutedPathEdges returns the edge path a transfer between two cluster nodes
// is priced along under the active routing policy: the memoized minimal path
// by default, the Valiant detour under RouteValiant. Nil without a fabric
// graph. Contention derivations (placement.SetFabricContention) use this so
// declared per-edge streams always match the paths pricing walks.
func (m *Machine) RoutedPathEdges(fromC, toC int) []int {
	if m.fabricGraph == nil {
		return nil
	}
	if m.routingPolicy == RouteValiant {
		return m.fabricGraph.ValiantRoute(fromC, toC, m.valiantVia(fromC, toC))
	}
	return m.fabricGraph.PathEdges(fromC, toC)
}
