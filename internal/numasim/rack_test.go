package numasim

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// rackCluster builds 2 racks × 2 nodes of 4 cores for the fabric tests.
func rackCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(4, "pack:1 core:4 pu:1", Fabric{Racks: 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterRacks(t *testing.T) {
	c := rackCluster(t)
	if got := c.Racks(); got != 2 {
		t.Fatalf("Racks = %d, want 2", got)
	}
	topo := c.Machine().Topology()
	if topo.NumRacks() != 2 || topo.NumClusterNodes() != 4 {
		t.Fatalf("fused shape: %d racks, %d nodes", topo.NumRacks(), topo.NumClusterNodes())
	}
	for node, wantRack := range []int{0, 0, 1, 1} {
		if got := c.RackOfNode(node); got != wantRack {
			t.Errorf("RackOfNode(%d) = %d, want %d", node, got, wantRack)
		}
	}
	if c.Machine().SameRack(0, 2) {
		t.Error("nodes 0 and 2 must be in different racks")
	}
	if !c.Machine().SameRack(2, 3) {
		t.Error("nodes 2 and 3 must share rack 1")
	}
}

func TestNewClusterRacksIndivisible(t *testing.T) {
	_, err := NewCluster(3, "core:4", Fabric{Racks: 2}, Config{})
	if err == nil || !strings.Contains(err.Error(), "not divisible across") {
		t.Fatalf("indivisible rack split accepted: %v", err)
	}
}

func TestClusterFromSpecRackTier(t *testing.T) {
	c, err := ClusterFromSpec("rack:2 node:2 pack:1 core:4", Fabric{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Racks() != 2 || c.Nodes() != 4 {
		t.Fatalf("shape: %d racks, %d nodes", c.Racks(), c.Nodes())
	}
	if got := c.Fabric().Racks; got != 2 {
		t.Errorf("Fabric().Racks = %d, want 2", got)
	}
}

// TestFabricHopPathPricing: a lock handoff between racks pays both NIC links
// and both uplinks, one within a rack only the NIC links — so the cross-rack
// transfer is strictly more expensive, and the flat-fabric price is
// unchanged from a rackless cluster of the same nodes.
func TestFabricHopPathPricing(t *testing.T) {
	c := rackCluster(t)
	m := c.Machine()
	perNode := m.Topology().NumPUs() / 4
	const bytes = 1 << 20
	intraNode := m.TransferCost(0, 1, bytes)         // same machine
	intraRack := m.TransferCost(0, perNode, bytes)   // node 0 → node 1
	crossRack := m.TransferCost(0, 2*perNode, bytes) // node 0 → node 2
	if !(intraNode < intraRack && intraRack < crossRack) {
		t.Fatalf("want intra-node %.0f < intra-rack %.0f < cross-rack %.0f cycles",
			intraNode, intraRack, crossRack)
	}
	// The latency difference is exactly the two uplink traversals (bandwidth
	// terms match while the uplink is not the bottleneck).
	def := topology.DefaultAttrs()
	wantDelta := 2 * def.UplinkLatencyCycles
	if got := crossRack - intraRack; got != wantDelta {
		t.Errorf("cross-rack surcharge = %.0f cycles, want %.0f (two uplinks)", got, wantDelta)
	}

	// A flat 4-node cluster prices the same node pair like the intra-rack
	// path: racks only add cost where a rack boundary is crossed.
	flat, err := NewCluster(4, "pack:1 core:4 pu:1", Fabric{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := flat.Machine().TransferCost(0, 2*perNode, bytes); got != intraRack {
		t.Errorf("flat-fabric transfer = %.0f cycles, want %.0f (two NIC links)", got, intraRack)
	}
}

// TestPerLinkFabricContention: with per-link stream counts, a transfer is
// capped by the most contended link on its path. Funneling all streams
// through one node's NIC throttles transfers to that node but leaves other
// paths at full speed — the property that rewards balanced partitions.
func TestPerLinkFabricContention(t *testing.T) {
	c := rackCluster(t)
	m := c.Machine()
	perNode := m.Topology().NumPUs() / 4
	const bytes = 8 << 20

	free := m.TransferCost(0, perNode, bytes)

	// 8 streams all hitting node 1's NIC; nodes 0/2/3 uncontended.
	m.SetFabricLinkStreams([]int{1, 8, 1, 1}, []int{1, 1})
	hot := m.TransferCost(0, perNode, bytes)            // into the hot NIC
	cold := m.TransferCost(2*perNode, 3*perNode, bytes) // rack 1, both NICs cold
	if hot <= free {
		t.Errorf("transfer into contended NIC (%.0f) not above uncontended (%.0f)", hot, free)
	}
	if cold != free {
		t.Errorf("transfer on uncontended path = %.0f, want %.0f (per-link isolation)", cold, free)
	}

	// Uplink contention throttles only rack-crossing transfers.
	m.SetFabricLinkStreams([]int{1, 1, 1, 1}, []int{8, 8})
	intra := m.TransferCost(0, perNode, bytes)
	cross := m.TransferCost(0, 2*perNode, bytes)
	if intra != free {
		t.Errorf("intra-rack transfer pays uplink contention: %.0f vs %.0f", intra, free)
	}
	crossFree := free + 2*topology.DefaultAttrs().UplinkLatencyCycles
	if cross <= crossFree {
		t.Errorf("cross-rack transfer under uplink contention = %.0f, want above %.0f", cross, crossFree)
	}

	// Reverting to the global model restores uniform sharing.
	m.SetFabricLinkStreams(nil, nil)
	if got := m.TransferCost(0, perNode, bytes); got != free {
		t.Errorf("after reset transfer = %.0f, want %.0f", got, free)
	}
}

// TestGlobalFabricStreamsEquivalence: on any fabric, the legacy global model
// must equal uniform per-link counts — SetFabricStreams(n) and
// SetFabricLinkStreams([n,n,...], [n,n,...]) price every transfer alike.
func TestGlobalFabricStreamsEquivalence(t *testing.T) {
	c := rackCluster(t)
	m := c.Machine()
	perNode := m.Topology().NumPUs() / 4
	const bytes = 4 << 20
	pairs := [][2]int{{0, perNode}, {0, 2 * perNode}, {perNode, 3 * perNode}}

	m.SetFabricStreams(6)
	global := make([]float64, len(pairs))
	for i, p := range pairs {
		global[i] = m.TransferCost(p[0], p[1], bytes)
	}
	m.SetFabricLinkStreams([]int{6, 6, 6, 6}, []int{6, 6})
	for i, p := range pairs {
		if got := m.TransferCost(p[0], p[1], bytes); got != global[i] {
			t.Errorf("pair %v: per-link uniform %.0f != global %.0f", p, got, global[i])
		}
	}
	// Getters report the in-force model.
	if m.FabricStreams() != 0 {
		t.Errorf("FabricStreams = %d after per-link declaration, want 0", m.FabricStreams())
	}
	if m.NICStreams(2) != 6 || m.UplinkStreams(1) != 6 {
		t.Errorf("per-link getters: nic=%d uplink=%d, want 6/6", m.NICStreams(2), m.UplinkStreams(1))
	}
	m.ResetAccessors()
	if m.NICStreams(0) != 0 || m.UplinkStreams(0) != 0 {
		t.Error("ResetAccessors must clear per-link stream counts")
	}
}

// TestFabricLinkStreamsRevert: clearing the per-link counts restores the
// global model that was last declared — not an uncapped fabric.
func TestFabricLinkStreamsRevert(t *testing.T) {
	c := rackCluster(t)
	m := c.Machine()
	perNode := m.Topology().NumPUs() / 4
	const bytes = 4 << 20

	m.SetFabricStreams(6)
	global := m.TransferCost(0, perNode, bytes)
	m.SetFabricLinkStreams([]int{1, 1, 1, 1}, []int{1, 1})
	if got := m.TransferCost(0, perNode, bytes); got >= global {
		t.Fatalf("uncontended per-link transfer %.0f not below global-6 %.0f", got, global)
	}
	m.SetFabricLinkStreams(nil, nil)
	if got := m.FabricStreams(); got != 6 {
		t.Errorf("FabricStreams after revert = %d, want the declared 6", got)
	}
	if got := m.TransferCost(0, perNode, bytes); got != global {
		t.Errorf("transfer after revert = %.0f, want the global-model price %.0f", got, global)
	}
}
