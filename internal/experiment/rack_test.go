package experiment

import (
	"testing"
)

// testRackCfg is the reduced scale of the rack tests: 2 racks × 2 nodes of 8
// cores keep runtimes in milliseconds.
func testRackCfg() RackConfig {
	return RackConfig{Iters: 10, Seed: 42}
}

func TestRackConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     RackConfig
		wantErr bool
	}{
		{"defaults", RackConfig{}, false},
		{"reduced", testRackCfg(), false},
		{"one rack", RackConfig{Racks: 1}, true},
		{"odd blocks", RackConfig{Racks: 3, NodesPerRack: 1}, true},
		{"negative iters", RackConfig{Iters: -1}, true},
		{"indivisible sockets", RackConfig{CoresPerNode: 10, CoresPerSocket: 4}, true},
		{"negative pair volume", RackConfig{PairBytes: -1}, true},
	}
	for _, tc := range tests {
		if err := tc.cfg.Validate(); (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestRunRackUnknownMode(t *testing.T) {
	if _, err := RunRack("nope", testRackCfg()); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestAblationRack is the A10 acceptance property: on the rack-skewed
// stencil, fabric-aware three-level placement strictly beats the
// fabric-blind hierarchical variant, which strictly beats flat TreeMatch on
// the whole cluster tree. Asserted on the default 2×2 shape, on 4 racks of
// 2 nodes, and on the 2×3 shape cmd/ablate derives from its 48-core
// default.
func TestAblationRack(t *testing.T) {
	shapes := map[string]RackConfig{
		"2x2x8": testRackCfg(),
		"4x2x8": {Racks: 4, NodesPerRack: 2, Iters: 10, Seed: 42},
		"2x3x8": {Racks: 2, NodesPerRack: 3, Iters: 10, Seed: 42},
	}
	for name, cfg := range shapes {
		rows, err := AblationRack(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != len(RackModes()) {
			t.Fatalf("%s: %d rows, want %d", name, len(rows), len(RackModes()))
		}
		byName := map[string]float64{}
		for _, r := range rows {
			byName[r.Name] = r.Seconds
		}
		aware := byName["rack/rack-aware"]
		blind := byName["rack/rack-blind"]
		flat := byName["rack/flat"]
		if aware <= 0 || blind <= 0 || flat <= 0 {
			t.Fatalf("%s: missing rows: %+v", name, rows)
		}
		if !(aware < blind) {
			t.Errorf("%s: fabric-aware %.6fs not strictly below fabric-blind %.6fs", name, aware, blind)
		}
		if !(blind < flat) {
			t.Errorf("%s: fabric-blind %.6fs not strictly below flat treematch %.6fs", name, blind, flat)
		}
	}
}

// TestRunRackDeterministic pins bit-reproducibility of every arm.
func TestRunRackDeterministic(t *testing.T) {
	cfg := testRackCfg()
	for _, mode := range RackModes() {
		a, err := RunRack(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunRack(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Seconds != b.Seconds {
			t.Errorf("%s not deterministic: %.9f vs %.9f", mode, a.Seconds, b.Seconds)
		}
	}
}

// TestRackClusterShape checks the simulated fabric the scenario builds: the
// rack tier exists and the uplink defaults to an oversubscribed NIC-class
// trunk.
func TestRackClusterShape(t *testing.T) {
	c, err := RackCluster(testRackCfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.Racks() != 2 || c.Nodes() != 4 {
		t.Fatalf("shape: %d racks, %d nodes", c.Racks(), c.Nodes())
	}
	f := c.Fabric()
	if f.UplinkBandwidthBytesPerSec != f.LinkBandwidthBytesPerSec {
		t.Errorf("uplink bandwidth %.3g, want the oversubscribed NIC-class default %.3g",
			f.UplinkBandwidthBytesPerSec, f.LinkBandwidthBytesPerSec)
	}
}

// TestRackConfigFrom pins the shape derivation used by cmd/ablate.
func TestRackConfigFrom(t *testing.T) {
	cfg := RackConfigFrom(Config{Rows: 4096, Cols: 4096, Iters: 10, Cores: 48, Seed: 7})
	if cfg.Racks != 2 || cfg.NodesPerRack != 3 || cfg.CoresPerNode != 8 {
		t.Errorf("48 cores → %dx%dx%d, want 2x3x8", cfg.Racks, cfg.NodesPerRack, cfg.CoresPerNode)
	}
	small := RackConfigFrom(Config{Rows: 1024, Cols: 1024, Iters: 1, Cores: 8, Seed: 7})
	if small.NodesPerRack != 1 {
		t.Errorf("8 cores → %d nodes per rack, want the 1-node floor", small.NodesPerRack)
	}
}
