package topology

import (
	"strings"
	"testing"
)

// FuzzParsePlatform checks that no platform spec panics the parser and that
// every accepted spec round-trips stably: parse -> FusedSpec -> parse gives
// the same fused spec and member list again (a fixed point after one
// normalization step).
func FuzzParsePlatform(f *testing.F) {
	for _, seed := range []string{
		"pack:2 core:8",
		"cluster:4 pack:2 core:8",
		"rack:2 node:2,3 pack:2 core:8",
		"pod:2 rack:2 node:2 pack:2 core:8",
		"rack:2 node:{pack:2 core:8 | pack:1 core:4}",
		"rack:2 node:2{pack:2 core:8 | pack:1 core:4}",
		"rack:2 cluster:1 pack:2,1 numa:1 core:8,8,4 pu:1",
		"torus:4x4 pack:1 core:4",
		"torus:2x2x4 pack:1 core:4",
		"dragonfly:2,4,2 pack:1 core:4",
		"dragonfly:2,2,1{pack:1 core:4 | pack:1 core:2}",
		"torus:2x2{pack:1 core:4 | pack:1 core:2}",
		"torus:1x1 core:4",
		"dragonfly:0,0,0 core:4",
		"torus:9999999x9999999 core:4",
		"node:{} rack:",
		"{{{}}}",
		"torus:",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 256 {
			return // bound the work per input, not a grammar property
		}
		p, err := ParsePlatform(spec)
		if err != nil {
			return
		}
		fused, err := p.FusedSpec()
		if err != nil {
			t.Fatalf("accepted spec %q but FusedSpec failed: %v", spec, err)
		}
		p2, err := ParsePlatform(fused)
		if err != nil {
			t.Fatalf("FusedSpec %q of %q does not re-parse: %v", fused, spec, err)
		}
		fused2, err := p2.FusedSpec()
		if err != nil {
			t.Fatalf("re-parsed %q but FusedSpec failed: %v", fused, err)
		}
		if fused2 != fused {
			t.Fatalf("FusedSpec not a fixed point: %q -> %q -> %q", spec, fused, fused2)
		}
		if p2.Nodes() != p.Nodes() {
			t.Fatalf("node count changed over round-trip of %q: %d -> %d", spec, p.Nodes(), p2.Nodes())
		}
	})
}

// FuzzFromSpec checks that the single-machine/fused spec parser never
// panics and that accepted topologies re-parse from their canonical Spec().
func FuzzFromSpec(f *testing.F) {
	for _, seed := range []string{
		"pack:2 numa:1 l3:1 core:4 pu:2",
		"cluster:4 pack:2 core:8",
		"rack:2 cluster:2,3 pack:1 core:4",
		"torus:4x4 pack:1 core:4",
		"torus:2x3 pack:1 l3:1 core:2 pu:1",
		"dragonfly:2,4,2 pack:1 core:4",
		"torus:2x2 rack:2 core:4",
		"core:0",
		"torus:axb core:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 256 {
			return
		}
		to, err := FromSpec(spec)
		if err != nil {
			return
		}
		canon := to.Spec()
		to2, err := FromSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q of %q does not re-parse: %v", canon, spec, err)
		}
		if to2.Spec() != canon {
			t.Fatalf("canonical spec not a fixed point: %q -> %q -> %q", spec, canon, to2.Spec())
		}
		if strings.Contains(canon, "torus") || strings.Contains(canon, "dragonfly") {
			if to.FabricShape() == nil {
				t.Fatalf("canonical spec %q names a shape but FabricShape() is nil", canon)
			}
		}
	})
}
