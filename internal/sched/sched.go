package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/placement"
	"repro/internal/topology"
	"repro/internal/treematch"
)

// Policy selects the placement strategy of the scheduler.
type Policy int

const (
	// TopoAware is the full system: preferred-tier fallback, fit-scored
	// domain choice, affinity-aware intra-domain layout via the placement
	// engine restricted to the domain's free slots.
	TopoAware Policy = iota
	// TopoBlind honors required constraints but ignores preferred tiers
	// and domain scoring: the first (lowest-index) domain that fits wins
	// and tasks fill its free slots in plain core order.
	TopoBlind
	// FirstFit is the topology-oblivious baseline: constraints are not
	// understood at all, and tasks scatter round-robin across the nodes'
	// free slots.
	FirstFit
)

var policyNames = map[Policy]string{TopoAware: "topo-aware", TopoBlind: "topo-blind", FirstFit: "first-fit"}

func (p Policy) String() string { return policyNames[p] }

// ParsePolicy maps a CLI name to a Policy.
func ParsePolicy(name string) (Policy, error) {
	for p, n := range policyNames {
		if n == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q (want topo-aware, topo-blind or first-fit)", name)
}

// Fit selects how the topology-aware policy scores candidate domains.
type Fit int

const (
	// BestFit packs: among fitting domains the one with the least free
	// capacity wins, keeping large domains whole for large jobs.
	BestFit Fit = iota
	// WorstFit spreads: the domain with the most free capacity wins.
	WorstFit
)

// ParseFit maps a CLI name to a Fit rule.
func ParseFit(name string) (Fit, error) {
	switch name {
	case "best":
		return BestFit, nil
	case "worst":
		return WorstFit, nil
	}
	return 0, fmt.Errorf("sched: unknown fit rule %q (want best or worst)", name)
}

func (f Fit) String() string {
	if f == WorstFit {
		return "worst"
	}
	return "best"
}

// QueuePolicy decides what happens to a job whose required tier is full at
// placement time.
type QueuePolicy int

const (
	// QueueWait keeps the job at the head of the FIFO queue until
	// capacity frees up.
	QueueWait QueuePolicy = iota
	// QueueReject drops a required-constrained job immediately when no
	// domain of its allowed tiers currently fits it; unconstrained jobs
	// always wait.
	QueueReject
)

// ParseQueuePolicy maps a CLI name to a QueuePolicy.
func ParseQueuePolicy(name string) (QueuePolicy, error) {
	switch name {
	case "wait":
		return QueueWait, nil
	case "reject":
		return QueueReject, nil
	}
	return 0, fmt.Errorf("sched: unknown queue policy %q (want wait or reject)", name)
}

func (q QueuePolicy) String() string {
	if q == QueueReject {
		return "reject"
	}
	return "wait"
}

// Options configures a Scheduler.
type Options struct {
	Policy Policy
	Fit    Fit
	Queue  QueuePolicy
	// Match tunes the underlying placement heuristics (zero value is the
	// engine's default portfolio).
	Match treematch.Options
}

// Scheduler is the online multi-tenant scheduler: one instance owns the
// platform's free-capacity index and replays a workload stream through its
// event loop. A Scheduler is single-goroutine; Run is not reentrant.
type Scheduler struct {
	mach *numasim.Machine
	topo *topology.Topology
	cap  *Capacity
	opts Options
	// coreOfPU maps a PU OS index back to its core level index.
	coreOfPU map[int]int
	// nodeCores counts the total core slots of every cluster node.
	nodeCores []int
}

// New builds a scheduler for the machine.
func New(mach *numasim.Machine, opts Options) (*Scheduler, error) {
	if mach == nil {
		return nil, fmt.Errorf("sched: scheduler requires a machine")
	}
	topo := mach.Topology()
	cap, err := NewCapacity(topo)
	if err != nil {
		return nil, err
	}
	coreOfPU := map[int]int{}
	nodeCores := make([]int, topo.NumClusterNodes())
	for ci, core := range topo.Cores() {
		for _, pu := range core.Children {
			coreOfPU[pu.OSIndex] = ci
		}
		nodeCores[cap.nodeOf[ci]]++
	}
	return &Scheduler{mach: mach, topo: topo, cap: cap, opts: opts, coreOfPU: coreOfPU, nodeCores: nodeCores}, nil
}

// Capacity exposes the live free-capacity index (read-only use).
func (s *Scheduler) Capacity() *Capacity { return s.cap }

// JobStat reports one job's fate.
type JobStat struct {
	Name  string
	Tasks int
	// Cycle timeline: Wait = Start − Arrive, Finish = Start + Service.
	ArriveCycles, StartCycles, FinishCycles float64
	WaitCycles, ServiceCycles, CommCycles   float64
	// Tier and Domain identify the fabric domain the job was placed into.
	Tier   string
	Domain int
	// Cores lists the bound core level indices, ascending.
	Cores []int
	// NodesSpanned counts distinct cluster nodes of the placement.
	NodesSpanned int
	Rejected     bool
	RejectReason string
}

// Report aggregates one scheduler run.
type Report struct {
	Policy string
	Jobs   []JobStat
	// Admitted/Rejected partition the stream.
	Admitted, Rejected int
	// AggregateCycles sums finish − arrival over admitted jobs — the A15
	// ordering metric (placement quality shortens service, packing
	// shortens waits).
	AggregateCycles float64
	// MakespanCycles is the departure time of the last job.
	MakespanCycles float64
	// WaitCycles sums queueing delay over admitted jobs.
	WaitCycles float64
	// BusyUtilization is Σ tasks·service / (cores · makespan): the slot
	// occupancy achieved over the run.
	BusyUtilization float64
	// FragmentationAvg is the time-weighted mean of 1 − maxNodeFree/totalFree:
	// 0 when the free capacity sits in whole nodes (packed), approaching 1
	// when it is shredded into slivers across many nodes (fragmented).
	FragmentationAvg float64
	// AvgSpread is the mean node count spanned by admitted jobs.
	AvgSpread float64
}

// jobState tracks one in-flight job through the event loop.
type jobState struct {
	spec JobSpec
	seq  int
	stat *JobStat
}

// departure orders the running set by (finish, seq).
type departure struct {
	finish float64
	seq    int
	cores  []int
	stat   *JobStat
}

type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h departureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// Run replays the workload stream through the event loop and returns the
// report. Jobs are admitted FIFO in arrival order (ties broken by input
// order); the virtual clock advances from arrival to departure events and
// the free-capacity index binds and releases slots as jobs start and finish.
func (s *Scheduler) Run(jobs []JobSpec) (*Report, error) {
	rep := &Report{Policy: s.opts.Policy.String(), Jobs: make([]JobStat, len(jobs))}
	states := make([]*jobState, len(jobs))
	for i, spec := range jobs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		rep.Jobs[i] = JobStat{Name: spec.Name, Tasks: spec.Tasks, ArriveCycles: spec.ArriveCycles}
		states[i] = &jobState{spec: spec, seq: i, stat: &rep.Jobs[i]}
	}
	order := make([]*jobState, len(states))
	copy(order, states)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].spec.ArriveCycles < order[j].spec.ArriveCycles
	})

	var (
		queue   []*jobState
		running departureHeap
		clock   float64
		fragInt float64
		busy    float64
		next    int
	)
	weight := func() float64 {
		total := s.cap.FreeTotal()
		if total == 0 {
			return 0
		}
		return 1 - float64(s.cap.MaxNodeFree())/float64(total)
	}
	advance := func(t float64) {
		if t > clock {
			fragInt += weight() * (t - clock)
			clock = t
		}
	}

	drain := func() error {
		for len(queue) > 0 {
			j := queue[0]
			placed, full, err := s.tryPlace(j)
			if err != nil {
				return err
			}
			if placed == nil {
				if full && j.spec.Required != "" && s.opts.Queue == QueueReject {
					j.stat.Rejected = true
					j.stat.RejectReason = "required tier full"
					rep.Rejected++
					queue = queue[1:]
					continue
				}
				return nil // FIFO head waits; everything behind it waits too
			}
			if err := s.cap.Bind(placed.cores); err != nil {
				return fmt.Errorf("sched: bind %s: %w", j.spec.Name, err)
			}
			st := j.stat
			st.StartCycles = clock
			st.WaitCycles = clock - st.ArriveCycles
			st.CommCycles = placed.comm
			st.ServiceCycles = j.spec.WorkCycles + placed.comm
			st.FinishCycles = clock + st.ServiceCycles
			st.Tier = placed.tier
			st.Domain = placed.domain
			st.Cores = placed.cores
			st.NodesSpanned = placed.nodes
			busy += float64(j.spec.Tasks) * st.ServiceCycles
			heap.Push(&running, departure{finish: st.FinishCycles, seq: j.seq, cores: placed.cores, stat: st})
			queue = queue[1:]
		}
		return nil
	}

	for next < len(order) || running.Len() > 0 {
		tArr, tDep := math.Inf(1), math.Inf(1)
		if next < len(order) {
			tArr = order[next].spec.ArriveCycles
		}
		if running.Len() > 0 {
			tDep = running[0].finish
		}
		t := tArr
		if tDep < t {
			t = tDep
		}
		advance(t)
		for running.Len() > 0 && running[0].finish == clock {
			d := heap.Pop(&running).(departure)
			if err := s.cap.Release(d.cores); err != nil {
				return nil, fmt.Errorf("sched: release %s: %w", d.stat.Name, err)
			}
		}
		for next < len(order) && order[next].spec.ArriveCycles == clock {
			j := order[next]
			next++
			if reason := s.infeasible(j.spec); reason != "" {
				j.stat.Rejected = true
				j.stat.RejectReason = reason
				rep.Rejected++
				continue
			}
			queue = append(queue, j)
		}
		if err := drain(); err != nil {
			return nil, err
		}
	}

	for i := range rep.Jobs {
		st := &rep.Jobs[i]
		if st.Rejected {
			continue
		}
		rep.Admitted++
		rep.AggregateCycles += st.FinishCycles - st.ArriveCycles
		rep.WaitCycles += st.WaitCycles
		rep.AvgSpread += float64(st.NodesSpanned)
		if st.FinishCycles > rep.MakespanCycles {
			rep.MakespanCycles = st.FinishCycles
		}
	}
	if rep.Admitted > 0 {
		rep.AvgSpread /= float64(rep.Admitted)
	}
	if rep.MakespanCycles > 0 {
		rep.BusyUtilization = busy / (float64(s.topo.NumCores()) * rep.MakespanCycles)
		rep.FragmentationAvg = fragInt / rep.MakespanCycles
	}
	return rep, nil
}

// infeasible reports why a job can never run on this platform, or "" when it
// can. FirstFit ignores constraints, so only raw capacity counts there.
func (s *Scheduler) infeasible(spec JobSpec) string {
	if spec.Tasks > s.topo.NumCores() {
		return fmt.Sprintf("%d tasks exceed %d cores", spec.Tasks, s.topo.NumCores())
	}
	if s.opts.Policy == FirstFit {
		return ""
	}
	tiers, err := s.tierLadder(spec)
	if err != nil {
		return err.Error()
	}
	widest := tiers[len(tiers)-1]
	max := 0
	for d := range s.cap.Domains(widest) {
		if c := s.domainCapacity(widest, d); c > max {
			max = c
		}
	}
	if spec.Tasks > max {
		return fmt.Sprintf("%d tasks exceed the %d-core capacity of every %s domain", spec.Tasks, max, tierName(widest))
	}
	return ""
}

// domainCapacity is the total (free or bound) slot count of a domain.
func (s *Scheduler) domainCapacity(tier topology.Kind, d int) int {
	total := 0
	for _, n := range s.cap.Domains(tier)[d].Nodes {
		total += s.nodeCores[n]
	}
	return total
}

// tierName maps a topology kind back to the constraint grammar's name.
func tierName(k topology.Kind) string {
	switch k {
	case topology.Cluster:
		return "node"
	case topology.Rack:
		return "rack"
	case topology.Pod:
		return "pod"
	}
	return "machine"
}

// tierKind resolves a constraint tier name against the platform, erroring on
// tiers the platform does not have.
func (s *Scheduler) tierKind(name string) (topology.Kind, error) {
	var k topology.Kind
	switch name {
	case "node":
		k = topology.Cluster
	case "rack":
		k = topology.Rack
	case "pod":
		k = topology.Pod
	case "machine", "":
		return topology.Machine, nil
	default:
		return 0, fmt.Errorf("unknown tier %q", name)
	}
	for _, have := range s.topo.DomainTiers() {
		if have == k {
			return k, nil
		}
	}
	return 0, fmt.Errorf("platform has no %s tier", name)
}

// tierLadder lists the tiers a job may be placed at, narrowest first:
// from its preferred tier (default: narrowest) widening up to its required
// tier (default: the whole machine).
func (s *Scheduler) tierLadder(spec JobSpec) ([]topology.Kind, error) {
	all := s.topo.DomainTiers()
	lo, hi := 0, len(all)-1
	if spec.Preferred != "" {
		k, err := s.tierKind(spec.Preferred)
		if err != nil {
			return nil, err
		}
		lo = tierIndex(all, k)
	}
	if spec.Required != "" {
		k, err := s.tierKind(spec.Required)
		if err != nil {
			return nil, err
		}
		hi = tierIndex(all, k)
	}
	if lo > hi {
		lo = hi
	}
	return all[lo : hi+1], nil
}

func tierIndex(tiers []topology.Kind, k topology.Kind) int {
	for i, t := range tiers {
		if t == k {
			return i
		}
	}
	return len(tiers) - 1
}

// placementResult carries one successful placement attempt.
type placementResult struct {
	cores  []int
	comm   float64
	tier   string
	domain int
	nodes  int
}

// tryPlace attempts to place the job now. Returns (nil, full, nil) when no
// allowed domain currently fits: full distinguishes "no capacity in the
// allowed tiers" for the queue policy.
func (s *Scheduler) tryPlace(j *jobState) (*placementResult, bool, error) {
	spec := j.spec
	switch s.opts.Policy {
	case FirstFit:
		if s.cap.FreeTotal() < spec.Tasks {
			return nil, true, nil
		}
		return s.placeScatter(spec)
	case TopoBlind:
		tiers, err := s.tierLadder(spec)
		if err != nil {
			return nil, false, err
		}
		tier := tiers[len(tiers)-1] // required tier (or machine): preferred ignored
		for d := range s.cap.Domains(tier) {
			if s.cap.DomainFree(tier, d) >= spec.Tasks {
				return s.placeSlotOrder(spec, tier, d)
			}
		}
		return nil, true, nil
	default: // TopoAware
		tiers, err := s.tierLadder(spec)
		if err != nil {
			return nil, false, err
		}
		for _, tier := range tiers {
			best := -1
			for d := range s.cap.Domains(tier) {
				free := s.cap.DomainFree(tier, d)
				if free < spec.Tasks {
					continue
				}
				if best < 0 {
					best = d
					continue
				}
				bf := s.cap.DomainFree(tier, best)
				if (s.opts.Fit == BestFit && free < bf) || (s.opts.Fit == WorstFit && free > bf) {
					best = d
				}
			}
			if best >= 0 {
				return s.placeAware(spec, tier, best)
			}
		}
		return nil, true, nil
	}
}

// placeAware runs the affinity-aware intra-domain layout: choose the fewest
// nodes (largest free counts first) that hold the job, then delegate to the
// placement engine restricted to those free slots.
func (s *Scheduler) placeAware(spec JobSpec, tier topology.Kind, d int) (*placementResult, bool, error) {
	dom := s.cap.Domains(tier)[d]
	nodes := append([]int(nil), dom.Nodes...)
	sort.SliceStable(nodes, func(i, j int) bool {
		fi, fj := s.cap.NodeFree(nodes[i]), s.cap.NodeFree(nodes[j])
		if fi != fj {
			return fi > fj
		}
		return nodes[i] < nodes[j]
	})
	var chosen []int
	got := 0
	for _, n := range nodes {
		if got >= spec.Tasks {
			break
		}
		if s.cap.NodeFree(n) == 0 {
			continue
		}
		chosen = append(chosen, n)
		got += s.cap.NodeFree(n)
	}
	sort.Ints(chosen)
	m, err := spec.Matrix()
	if err != nil {
		return nil, false, err
	}
	a, err := placement.AssignFreeSlots(s.mach, m, s.cap.FreeSlots(chosen), s.opts.Match)
	if err != nil {
		return nil, false, err
	}
	return s.finishPlacement(spec, m, a.TaskPU, tier, d)
}

// placeSlotOrder fills the domain's free slots in plain core order — the
// topology-blind arm's layout.
func (s *Scheduler) placeSlotOrder(spec JobSpec, tier topology.Kind, d int) (*placementResult, bool, error) {
	dom := s.cap.Domains(tier)[d]
	var slots []int
	for _, n := range dom.Nodes {
		slots = append(slots, s.cap.free[n]...)
	}
	sort.Ints(slots)
	return s.placeOnSlots(spec, slots[:spec.Tasks], tier, d)
}

// placeScatter deals the free slots round-robin across cluster nodes — the
// classic load-balancing baseline that ignores topology entirely.
func (s *Scheduler) placeScatter(spec JobSpec) (*placementResult, bool, error) {
	var slots []int
	for depth := 0; len(slots) < spec.Tasks; depth++ {
		advanced := false
		for n := range s.cap.free {
			if depth < len(s.cap.free[n]) {
				slots = append(slots, s.cap.free[n][depth])
				advanced = true
				if len(slots) == spec.Tasks {
					break
				}
			}
		}
		if !advanced {
			return nil, true, nil
		}
	}
	tier := topology.Machine
	return s.placeOnSlots(spec, slots, tier, 0)
}

// placeOnSlots binds task i to slot i (identity layout).
func (s *Scheduler) placeOnSlots(spec JobSpec, slots []int, tier topology.Kind, d int) (*placementResult, bool, error) {
	m, err := spec.Matrix()
	if err != nil {
		return nil, false, err
	}
	taskPU := make([]int, spec.Tasks)
	for t, core := range slots {
		taskPU[t] = s.topo.Cores()[core].Children[0].OSIndex
	}
	return s.finishPlacement(spec, m, taskPU, tier, d)
}

// finishPlacement prices the communication of a placement and packages the
// result.
func (s *Scheduler) finishPlacement(spec JobSpec, m *comm.Matrix, taskPU []int, tier topology.Kind, d int) (*placementResult, bool, error) {
	cores := make([]int, len(taskPU))
	nodes := map[int]bool{}
	for t, pu := range taskPU {
		core, ok := s.coreOfPU[pu]
		if !ok {
			return nil, false, fmt.Errorf("sched: task %d bound to unknown PU %d", t, pu)
		}
		cores[t] = core
		nodes[s.cap.nodeOf[core]] = true
	}
	sorted := append([]int(nil), cores...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, false, fmt.Errorf("sched: core %d assigned twice", sorted[i])
		}
	}
	commCycles := 0.0
	for i := 0; i < m.Order(); i++ {
		m.ForEachNeighbor(i, func(jdx int, vol float64) {
			if jdx != i {
				commCycles += s.mach.TransferCost(taskPU[i], taskPU[jdx], vol)
			}
		})
	}
	return &placementResult{
		cores:  sorted,
		comm:   commCycles,
		tier:   tierName(tier),
		domain: d,
		nodes:  len(nodes),
	}, false, nil
}

// FormatReport renders the per-job table and the aggregate block the
// cmd/sched CLI prints.
func FormatReport(rep *Report, mach *numasim.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s: %d admitted, %d rejected\n", rep.Policy, rep.Admitted, rep.Rejected)
	fmt.Fprintf(&b, "%-10s %6s %10s %10s %10s  %s\n", "job", "tasks", "wait(s)", "service(s)", "cycle(s)", "placement")
	for _, j := range rep.Jobs {
		if j.Rejected {
			fmt.Fprintf(&b, "%-10s %6d %10s %10s %10s  rejected: %s\n", j.Name, j.Tasks, "-", "-", "-", j.RejectReason)
			continue
		}
		fmt.Fprintf(&b, "%-10s %6d %10.6f %10.6f %10.6f  %s[%d] over %d node(s)\n",
			j.Name, j.Tasks,
			mach.CyclesToSeconds(j.WaitCycles),
			mach.CyclesToSeconds(j.ServiceCycles),
			mach.CyclesToSeconds(j.FinishCycles-j.ArriveCycles),
			j.Tier, j.Domain, j.NodesSpanned)
	}
	fmt.Fprintf(&b, "aggregate job time %.6fs  makespan %.6fs  wait %.6fs\n",
		mach.CyclesToSeconds(rep.AggregateCycles), mach.CyclesToSeconds(rep.MakespanCycles), mach.CyclesToSeconds(rep.WaitCycles))
	fmt.Fprintf(&b, "utilization %.3f  fragmentation %.3f  avg spread %.2f nodes\n",
		rep.BusyUtilization, rep.FragmentationAvg, rep.AvgSpread)
	return b.String()
}
