package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionExact(t *testing.T) {
	p, err := NewPartition(16, 12, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Blocks() != 12 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
	// 16 rows / 4 = 4 each; 12 cols / 3 = 4 each.
	b := p.Block(1, 2)
	if b.R0 != 8 || b.C0 != 4 || b.H != 4 || b.W != 4 {
		t.Errorf("Block(1,2) = %+v", b)
	}
}

func TestPartitionRemainder(t *testing.T) {
	p, err := NewPartition(10, 7, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 4,3,3. Cols: 3,2,2.
	wantH := []int{4, 3, 3}
	wantW := []int{3, 2, 2}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			b := p.Block(x, y)
			if b.H != wantH[y] || b.W != wantW[x] {
				t.Errorf("Block(%d,%d) = %+v, want H=%d W=%d", x, y, b, wantH[y], wantW[x])
			}
		}
	}
}

// TestPartitionCoversExactly is the partition property: blocks tile the
// grid without gaps or overlaps.
func TestPartitionCoversExactly(t *testing.T) {
	f := func(rSel, cSel, bxSel, bySel uint8) bool {
		rows := int(rSel%20) + 3
		cols := int(cSel%20) + 3
		bx := int(bxSel)%cols%6 + 1
		by := int(bySel)%rows%6 + 1
		p, err := NewPartition(rows, cols, bx, by)
		if err != nil {
			return false
		}
		covered := make([]int, rows*cols)
		for y := 0; y < by; y++ {
			for x := 0; x < bx; x++ {
				b := p.Block(x, y)
				if b.H <= 0 || b.W <= 0 {
					return false
				}
				for r := b.R0; r < b.R0+b.H; r++ {
					for c := b.C0; c < b.C0+b.W; c++ {
						covered[r*cols+c]++
					}
				}
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestPartitionErrors(t *testing.T) {
	cases := []struct{ r, c, bx, by int }{
		{0, 5, 1, 1},
		{5, 0, 1, 1},
		{5, 5, 0, 1},
		{5, 5, 1, -1},
		{5, 5, 6, 1}, // more block columns than cells
		{5, 5, 1, 6},
	}
	for _, tc := range cases {
		if _, err := NewPartition(tc.r, tc.c, tc.bx, tc.by); err == nil {
			t.Errorf("NewPartition(%v) succeeded", tc)
		}
	}
}
