// Package orwl implements the Ordered Read-Write Lock programming model of
// Clauss & Gustedt (JPDC 2010), the task-based runtime that the paper
// extends with topology-aware placement.
//
// The model has three core concepts:
//
//   - Location: a shared resource protected by a FIFO of lock requests.
//     A write request is granted exclusively; consecutive read requests at
//     the head of the FIFO are granted together (read-sharing group).
//   - Handle: binds one task to one location in read or write mode, with
//     the lifecycle Request (enqueue) → Acquire (block until granted) →
//     Release (dequeue and grant successors). The iterative primitive
//     ReleaseAndRequest atomically enqueues a fresh request before releasing
//     the held one, so a task keeps its relative position in the cyclic
//     schedule across iterations — ORWL's liveness guarantee relies on it.
//   - Task: a unit of execution owning a set of handles; the runtime inserts
//     all initial requests in a canonical deterministic order before any
//     task starts (two-phase initialization), which makes the whole
//     iterative system deadlock-free.
//
// When a Runtime is attached to a numasim.Machine, every lock handoff and
// data access also advances deterministic virtual clocks, so the same
// program yields the simulated execution time of a chosen placement on a
// chosen machine; see DESIGN.md §5.2.
package orwl

import (
	"fmt"
	"sync"

	"repro/internal/numasim"
)

// Mode is the access mode of a handle: Read requests can share the lock,
// Write requests are exclusive.
type Mode int

const (
	// Read grants may be shared among adjacent readers in the FIFO.
	Read Mode = iota
	// Write grants are exclusive.
	Write
)

// String returns "read" or "write".
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// request is one entry of a location's FIFO.
type request struct {
	h       *Handle
	mode    Mode
	granted bool
	ready   chan struct{} // closed when granted
	// Virtual-time information captured at grant time.
	grantClock float64
	grantPU    int
	grantTask  int  // ID of the last releasing task, -1 if none
	fromMemory bool // first grant: data comes from the region, not a holder
}

// Location is an ORWL shared resource: a data buffer guarded by a FIFO of
// lock requests. Create locations through Runtime.NewLocation so that they
// participate in placement and in virtual-time accounting.
type Location struct {
	rt   *Runtime
	id   int
	name string
	size int64

	mu    sync.Mutex
	queue []*request
	data  interface{} // the protected payload, owned by the current holder(s)

	// Virtual-time frontier: the simulated time at which the resource was
	// last released, and by which PU. -1 means "still in memory" (no holder
	// yet): the first holder streams it from the region instead.
	frontier   float64
	frontierPU int
	// frontierTask is the ID of the task that last released the location,
	// or -1; it attributes measured communication volumes to task pairs.
	frontierTask int

	region *numasim.Region // nil when the runtime has no machine attached

	// grants counts lock grants, for statistics and tests.
	grants int64
}

// Name returns the location's diagnostic name.
func (l *Location) Name() string { return l.name }

// Size returns the payload size in bytes used for cost accounting.
func (l *Location) Size() int64 { return l.size }

// ID returns the location's index within its runtime.
func (l *Location) ID() int { return l.id }

// Region returns the simulated memory region backing the location, or nil
// when the runtime runs without a machine.
func (l *Location) Region() *numasim.Region { return l.region }

// SetData installs the payload protected by the location. It is meant to be
// called during program construction (before Run) or by the task currently
// holding a write grant.
func (l *Location) SetData(v interface{}) {
	l.mu.Lock()
	l.data = v
	l.mu.Unlock()
}

// PeekData returns the payload without holding a lock grant. It is meant
// for reading results after Runtime.Run has returned (when no task holds
// any location); during a run, use Handle.Data from within a critical
// section instead.
func (l *Location) PeekData() interface{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.data
}

// Grants returns the number of lock grants performed so far.
func (l *Location) Grants() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.grants
}

// QueueLen returns the current number of queued (granted or waiting)
// requests, for tests and diagnostics.
func (l *Location) QueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// enqueue appends a request to the FIFO and grants the head group if
// possible. Called with l.mu NOT held.
func (l *Location) enqueue(r *request) {
	l.mu.Lock()
	l.queue = append(l.queue, r)
	l.grantLocked()
	l.mu.Unlock()
}

// remove deletes a granted request from the FIFO and grants successors.
// reinsert, when non-nil, is appended atomically before the removal — the
// ReleaseAndRequest primitive. Called with l.mu NOT held.
//
// releaseClock/releasePU update the virtual-time frontier; pass releasePU =
// -2 to skip virtual-time accounting (no machine attached). releaseTask
// attributes subsequent grants to the releasing task for the measured
// communication matrix.
func (l *Location) remove(r *request, reinsert *request, releaseClock float64, releasePU, releaseTask int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := -1
	for i, q := range l.queue {
		if q == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("orwl: release of a request not in the queue of %q", l.name)
	}
	if !r.granted {
		return fmt.Errorf("orwl: release of a non-granted request on %q", l.name)
	}
	if reinsert != nil {
		l.queue = append(l.queue, reinsert)
	}
	l.queue = append(l.queue[:idx], l.queue[idx+1:]...)
	if releasePU != -2 {
		if releaseClock > l.frontier || l.frontierPU == -1 {
			l.frontier = releaseClock
			l.frontierPU = releasePU
		} else if releaseClock == l.frontier && releasePU < l.frontierPU {
			// Concurrent releases can carry the exact same virtual clock —
			// routine once an epoch barrier has advanced every task to the
			// same time — and real-time arrival order between them is
			// scheduler noise. Break the tie deterministically (lowest PU
			// wins) so the frontier, and with it the grant-time transfer
			// pricing, never depends on goroutine interleaving.
			l.frontierPU = releasePU
		}
	}
	// Only a write release changes who produced the location's data; the
	// measured communication matrix attributes grants to that producer.
	if r.mode == Write {
		l.frontierTask = releaseTask
	}
	l.grantLocked()
	return nil
}

// grantLocked grants the head of the FIFO: a write request alone, or the
// maximal group of consecutive read requests at the head. Requests learn
// the virtual-time frontier captured at their grant. Called with l.mu held.
func (l *Location) grantLocked() {
	if len(l.queue) == 0 {
		return
	}
	grant := func(r *request) {
		if r.granted {
			return
		}
		r.granted = true
		r.grantClock = l.frontier
		r.grantPU = l.frontierPU
		r.grantTask = l.frontierTask
		r.fromMemory = l.frontierPU == -1
		l.grants++
		close(r.ready)
	}
	head := l.queue[0]
	if head.mode == Write {
		// Exclusive: granted only when it is alone at the head.
		grant(head)
		return
	}
	for _, r := range l.queue {
		if r.mode != Read {
			break
		}
		grant(r)
	}
}

// newRequest builds a fresh, unqueued request for a handle.
func newRequest(h *Handle) *request {
	return &request{h: h, mode: h.mode, ready: make(chan struct{}), grantPU: -1, grantTask: -1}
}
