package experiment

import (
	"fmt"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
	"repro/internal/topology"
)

// topologyNICBandwidth returns the default per-NIC fabric bandwidth, the
// baseline for the oversubscribed-uplink default of RackCluster.
func topologyNICBandwidth() float64 { return topology.DefaultAttrs().NetBandwidth }

// The rack experiment (A10) exercises the multi-switch fabric: the same
// hierarchical placement pipeline on a cluster whose nodes are split across
// top-of-rack switches, with rack uplinks priced above NIC links. The
// workload is a rack-skewed stencil — heavy traffic inside node-sized blocks
// plus a medium pair exchange between specific blocks — so where each
// partition group lands relative to the rack boundaries decides how much
// volume crosses the uplinks. Fabric-aware three-level placement (racks →
// nodes → cores) keeps the paired groups under one switch; the fabric-blind
// variant pins group g to node g and splits every pair across racks; flat
// TreeMatch on the whole cluster tree optimizes no cut explicitly.

// RackConfig parameterizes one rack-skewed stencil run.
type RackConfig struct {
	// Racks is the number of top-of-rack switches (default 2, minimum 2 so
	// the uplinks exist).
	Racks int
	// NodesPerRack is the number of cluster nodes under each switch
	// (default 2).
	NodesPerRack int
	// CoresPerNode and CoresPerSocket shape each machine (defaults 8 and 4).
	CoresPerNode, CoresPerSocket int
	// Iters is the number of stencil iterations (default 20).
	Iters int
	// BlockBytes is each task's working set (default 2 MiB).
	BlockBytes int64
	// HaloBytes is the per-iteration volume exchanged between grid
	// neighbours inside a node-sized block (default 256 KiB): each block is
	// a small 2-row stencil grid, so splitting it cuts several heavy edges.
	HaloBytes float64
	// PairBytes is the per-iteration volume between slot-aligned tasks of
	// partnered blocks (default 320 KiB): the traffic whose rack placement
	// the ablation isolates. Slightly heavier than one halo edge — a single
	// hot link is exactly what greedy bottom-up grouping chases across block
	// boundaries — but far below a block's aggregate coupling, so the
	// min-cut partition keeps blocks intact.
	PairBytes float64
	// LinkBytes is the light connectivity volume between consecutive blocks
	// (default 32 KiB).
	LinkBytes float64
	// Fabric overrides the interconnect parameters; zero fields keep the
	// defaults (10GbE-class NICs, 2x10GbE-class uplinks). Racks is forced to
	// the Racks field above.
	Fabric numasim.Fabric
	// Seed drives the simulated OS scheduler.
	Seed int64
}

func (c RackConfig) withDefaults() RackConfig {
	if c.Racks == 0 {
		c.Racks = 2
	}
	if c.NodesPerRack == 0 {
		c.NodesPerRack = 2
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 8
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 4
	}
	if c.Iters == 0 {
		c.Iters = 20
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 2 << 20
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 256 << 10
	}
	if c.PairBytes == 0 {
		c.PairBytes = 320 << 10
	}
	if c.LinkBytes == 0 {
		c.LinkBytes = 32 << 10
	}
	return c
}

// Validate rejects configurations the rack pipeline cannot run.
func (c RackConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case d.Racks < 2:
		return fmt.Errorf("experiment: rack scenario needs at least 2 racks, got %d", d.Racks)
	case d.NodesPerRack < 1:
		return fmt.Errorf("experiment: invalid nodes per rack %d", d.NodesPerRack)
	case d.Racks*d.NodesPerRack%2 != 0:
		return fmt.Errorf("experiment: %d blocks cannot be paired (need an even node count)", d.Racks*d.NodesPerRack)
	case d.CoresPerNode < 1 || d.CoresPerSocket < 1:
		return fmt.Errorf("experiment: invalid node shape %d cores / %d per socket", d.CoresPerNode, d.CoresPerSocket)
	case d.CoresPerNode%d.CoresPerSocket != 0:
		return fmt.Errorf("experiment: %d cores per node not divisible into sockets of %d", d.CoresPerNode, d.CoresPerSocket)
	case d.Iters < 1:
		return fmt.Errorf("experiment: iteration count %d must be positive", d.Iters)
	case d.BlockBytes < 0 || d.HaloBytes < 0 || d.PairBytes < 0 || d.LinkBytes < 0:
		return fmt.Errorf("experiment: negative volume in rack config")
	}
	return nil
}

// RackCluster builds the simulated multi-switch cluster for a configuration
// via the spec-driven platform path. Unless overridden, the rack uplink is
// an oversubscribed single trunk of NIC-class bandwidth — the classic 2016
// rack, where every stream leaving the rack funnels through one 10GbE-class
// uplink — so rack-crossing traffic pays for itself in bandwidth as well as
// latency.
func RackCluster(cfg RackConfig) (*numasim.Platform, error) {
	cfg = cfg.withDefaults()
	fabric := cfg.Fabric
	if fabric.UplinkBandwidthBytesPerSec == 0 {
		bw := fabric.LinkBandwidthBytesPerSec
		if bw == 0 {
			bw = topologyNICBandwidth()
		}
		fabric.UplinkBandwidthBytesPerSec = bw
	}
	spec := fmt.Sprintf("rack:%d node:%d pack:%d l3:1 core:%d pu:1",
		cfg.Racks, cfg.NodesPerRack, cfg.CoresPerNode/cfg.CoresPerSocket, cfg.CoresPerSocket)
	return numasim.NewPlatformAttrs(spec, fabric.Defaults(), numasim.Config{})
}

// RackModes lists the placement arms of the rack ablation in report order:
// fabric-aware three-level placement first (the speedup base), then the
// fabric-blind hierarchical variant and flat TreeMatch.
func RackModes() []string {
	return []string{"rack-aware", "rack-blind", "flat"}
}

// buildRackStencil constructs the rack-skewed stencil: one task per core,
// grouped into node-sized blocks. Task i of block b
//
//   - reads HaloBytes from every other task of its block (the heavy
//     all-to-all coupling that makes the blocks the min-cut partition
//     groups: splitting a block anywhere cuts quadratically many heavy
//     edges),
//   - exchanges PairBytes with task i of the partner block b ± B/2 (the
//     rack-decisive medium traffic: with B blocks numbered in partition
//     order, pairs (b, b+B/2) always straddle the identity group→node
//     assignment's rack split),
//   - and, for task 0 only, exchanges LinkBytes with the next block (light
//     connectivity so the affinity graph is one component).
//
// All volumes are whole bytes; the run is bit-deterministic.
func buildRackStencil(rt *orwl.Runtime, cfg RackConfig) error {
	cfg = cfg.withDefaults()
	blocks := cfg.Racks * cfg.NodesPerRack
	c := cfg.CoresPerNode
	n := blocks * c
	locs := make([]*orwl.Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation(fmt.Sprintf("blk%d.%d", i/c, i%c), cfg.BlockBytes)
	}
	cells := float64(cfg.BlockBytes / 8)
	for i := 0; i < n; i++ {
		b, slot := i/c, i%c
		task := rt.AddTask(fmt.Sprintf("t%d.%d", b, slot), nil)
		var reads []*orwl.Handle
		addRead := func(peer int, vol float64) {
			reads = append(reads, task.NewHandleVol(locs[peer], orwl.Read, vol, 0))
		}
		// Heavy stencil grid inside the node block: 2 rows of c/2 columns
		// (one row when the block is too narrow).
		gw := c / 2
		if gw < 1 {
			gw = 1
		}
		sx, sy := slot%gw, slot/gw
		for _, d := range [][2]int{{0, -1}, {0, 1}, {1, 0}, {-1, 0}} {
			nx, ny := sx+d[0], sy+d[1]
			if nx < 0 || nx >= gw || ny < 0 || ny*gw+nx >= c {
				continue
			}
			addRead(b*c+ny*gw+nx, cfg.HaloBytes)
		}
		// Medium pair exchange with the partner block.
		addRead(((b+blocks/2)%blocks)*c+slot, cfg.PairBytes)
		// Light connectivity ring over the blocks.
		if slot == 0 && blocks > 2 {
			addRead(((b+1)%blocks)*c, cfg.LinkBytes)
			addRead(((b+blocks-1)%blocks)*c, cfg.LinkBytes)
		}
		w := task.NewHandleVol(locs[i], orwl.Write, cfg.HaloBytes, 1)
		region := locs[i].Region()
		block := cfg.BlockBytes
		task.SetFunc(func(t *orwl.Task) error {
			for it := 0; it < cfg.Iters; it++ {
				last := it == cfg.Iters-1
				for _, h := range reads {
					if err := h.Acquire(); err != nil {
						return err
					}
					if err := releaseOrNext(h, last); err != nil {
						return err
					}
				}
				if err := w.Acquire(); err != nil {
					return err
				}
				if p := t.Proc(); p != nil {
					p.Compute(11 * cells)
					p.SweepWorkingSet(region, block)
				}
				if err := releaseOrNext(w, last); err != nil {
					return err
				}
				t.EndIteration()
			}
			return nil
		})
	}
	return nil
}

// rackPolicy returns the placement policy of one ablation arm.
func rackPolicy(mode string) (placement.Policy, error) {
	switch mode {
	case "rack-aware":
		return placement.Hierarchical{}, nil
	case "rack-blind":
		return placement.Hierarchical{NoFabricMatch: true}, nil
	case "flat":
		return placement.TreeMatch{}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown rack mode %q", mode)
	}
}

// RunRack executes the rack-skewed stencil under one placement mode and
// returns its simulated processing time.
func RunRack(mode string, cfg RackConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	pol, err := rackPolicy(mode)
	if err != nil {
		return Result{}, err
	}
	cluster, err := RackCluster(cfg)
	if err != nil {
		return Result{}, err
	}
	mach := cluster.Machine()
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildRackStencil(rt, cfg); err != nil {
		return Result{}, err
	}
	a, err := placement.Place(rt, pol)
	if err != nil {
		return Result{}, err
	}
	placement.SetContention(mach, a, nil)
	placement.SetFabricContention(mach, a, rt.CommMatrix())
	if err := rt.Run(); err != nil {
		return Result{}, err
	}
	tasks := cfg.Racks * cfg.NodesPerRack * cfg.CoresPerNode
	return Result{
		Impl:     ORWLBind,
		Cores:    tasks,
		Blocks:   tasks,
		Tasks:    tasks,
		Seconds:  rt.MakespanSeconds(),
		Policy:   a.Policy,
		Strategy: a.Strategy.String(),
	}, nil
}

// AblationRack (A10) compares the placement arms on the rack-skewed stencil.
func AblationRack(cfg RackConfig) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, mode := range RackModes() {
		res, err := RunRack(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation rack, %s: %w", mode, err)
		}
		rows = append(rows, AblationRow{
			Name:    "rack/" + mode,
			Seconds: res.Seconds,
			Detail: fmt.Sprintf("%d racks x %d nodes x %d cores",
				cfg.Racks, cfg.NodesPerRack, cfg.CoresPerNode),
		})
	}
	return rows, nil
}

// RackConfigFrom derives the rack configuration from the common ablation
// Config: 2 racks of fixed 8-core nodes, the node count scaled so the total
// core count comes close to cfg.Cores (the Detail column of every A10 row
// prints the effective shape). The node shape stays fixed because the
// scenario's volume ratios are calibrated per node; scale comes from more
// nodes per rack, which is also how real racks grow.
func RackConfigFrom(cfg Config) RackConfig {
	cfg = cfg.withDefaults()
	perRack := cfg.Cores / 16
	if perRack < 1 {
		perRack = 1
	}
	return RackConfig{
		Racks:          2,
		NodesPerRack:   perRack,
		CoresPerNode:   8,
		CoresPerSocket: 4,
		Seed:           cfg.Seed,
	}
}
