package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
)

// rackMachine builds the fused machine of a 2-rack × 2-node cluster with 4
// cores per node.
func rackMachine(t *testing.T) *numasim.Machine {
	t.Helper()
	c, err := numasim.NewCluster(4, "pack:1 core:4 pu:1", numasim.Fabric{Racks: 2}, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c.Machine()
}

// pairBlockMatrix builds 4 blocks of `c` tasks with heavy intra-block
// coupling and a medium slot-to-slot exchange between blocks (0,2) and
// (1,3): the partner blocks must share a rack under fabric-aware placement.
func pairBlockMatrix(c int) *comm.Matrix {
	m := comm.New(4 * c)
	for b := 0; b < 4; b++ {
		for i := 0; i < c; i++ {
			for j := i + 1; j < c; j++ {
				m.AddSym(b*c+i, b*c+j, 100)
			}
		}
	}
	for b := 0; b < 2; b++ {
		for i := 0; i < c; i++ {
			m.AddSym(b*c+i, (b+2)*c+i, 10)
		}
	}
	return m
}

// TestHierarchicalFabricMatch: on a multi-switch fabric the aggregated group
// matrix is treematch-mapped onto the fabric tree, so partner blocks land in
// the same rack; with NoFabricMatch group g stays pinned to node g and the
// partners straddle the rack split.
func TestHierarchicalFabricMatch(t *testing.T) {
	mach := rackMachine(t)
	m := pairBlockMatrix(4)

	rackOfBlock := func(a *Assignment, b int) map[int]bool {
		racks := map[int]bool{}
		for i := 0; i < 4; i++ {
			node := mach.ClusterNodeOfPU(a.TaskPU[b*4+i])
			racks[mach.RackOfClusterNode(node)] = true
		}
		return racks
	}

	aware, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		ra, rb := rackOfBlock(aware, pair[0]), rackOfBlock(aware, pair[1])
		if len(ra) != 1 || len(rb) != 1 {
			t.Fatalf("block split across racks: %v %v", ra, rb)
		}
		for r := range ra {
			if !rb[r] {
				t.Errorf("fabric-aware placement split partner blocks %v across racks %v vs %v", pair, ra, rb)
			}
		}
	}

	blind, err := Hierarchical{NoFabricMatch: true}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	split := 0
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		ra, rb := rackOfBlock(blind, pair[0]), rackOfBlock(blind, pair[1])
		for r := range ra {
			if !rb[r] {
				split++
			}
		}
	}
	if split == 0 {
		t.Error("NoFabricMatch kept partner blocks together; the blind arm should pin group g to node g")
	}
}

// TestHierarchicalFlatFabricIdentity: on a single-switch fabric every
// group→node assignment prices identically, so the identity is kept and the
// assignment matches the NoFabricMatch variant exactly (A9 results stay
// bit-stable).
func TestHierarchicalFlatFabricIdentity(t *testing.T) {
	c, err := numasim.NewCluster(4, "pack:1 core:4 pu:1", numasim.Fabric{}, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mach := c.Machine()
	m := pairBlockMatrix(4)
	a, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hierarchical{NoFabricMatch: true}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TaskPU {
		if a.TaskPU[i] != b.TaskPU[i] {
			t.Fatalf("task %d: %d vs %d — flat fabric must keep the identity mapping", i, a.TaskPU[i], b.TaskPU[i])
		}
	}
}

// TestSetFabricContentionPerLink checks the per-link stream derivation: NIC
// counts reflect each node's crossing tasks and uplink counts only the
// rack-crossing ones.
func TestSetFabricContentionPerLink(t *testing.T) {
	mach := rackMachine(t)
	// 8 tasks, one per core pair: tasks 0..3 on node 0's cores, tasks 4..7 on
	// node 2's cores (other rack). Volumes: 0↔4 and 1↔5 cross the racks;
	// 2↔3 stays on node 0.
	m := comm.New(8)
	m.AddSym(0, 4, 5)
	m.AddSym(1, 5, 5)
	m.AddSym(2, 3, 5)
	a := &Assignment{TaskPU: make([]int, 8), ControlPU: make([]int, 8)}
	topo := mach.Topology()
	for i := 0; i < 4; i++ {
		a.TaskPU[i] = topo.Cores()[i].Children[0].OSIndex     // node 0
		a.TaskPU[4+i] = topo.Cores()[8+i].Children[0].OSIndex // node 2
		a.ControlPU[i], a.ControlPU[4+i] = -1, -1
	}
	SetFabricContention(mach, a, m)
	if got := mach.NICStreams(0); got != 2 {
		t.Errorf("NIC streams node 0 = %d, want 2 (tasks 0 and 1 cross)", got)
	}
	if got := mach.NICStreams(2); got != 2 {
		t.Errorf("NIC streams node 2 = %d, want 2 (tasks 4 and 5 cross)", got)
	}
	if got := mach.NICStreams(1) + mach.NICStreams(3); got != 0 {
		t.Errorf("idle nodes carry %d NIC streams, want 0", got)
	}
	if got, want := mach.UplinkStreams(0), 2; got != want {
		t.Errorf("uplink streams rack 0 = %d, want %d", got, want)
	}
	if got, want := mach.UplinkStreams(1), 2; got != want {
		t.Errorf("uplink streams rack 1 = %d, want %d", got, want)
	}
}

// TestSetFabricContentionZeroVolumeTask: a task that exchanges no volume
// contributes no stream, bound or unbound — the old global model's guard,
// which the per-link derivation must preserve.
func TestSetFabricContentionZeroVolumeTask(t *testing.T) {
	mach := rackMachine(t)
	m := comm.New(3)
	m.AddSym(0, 1, 5) // task 2 has no traffic at all
	topo := mach.Topology()
	a := &Assignment{
		TaskPU:    []int{topo.Cores()[0].Children[0].OSIndex, topo.Cores()[8].Children[0].OSIndex, -1},
		ControlPU: []int{-1, -1, -1},
	}
	SetFabricContention(mach, a, m)
	// Tasks 0 and 1 cross the racks (nodes 0 and 2); the silent unbound
	// task 2 must not inflate any link.
	if got := mach.NICStreams(0); got != 1 {
		t.Errorf("NIC streams node 0 = %d, want 1 (only task 0)", got)
	}
	if got := mach.NICStreams(1); got != 0 {
		t.Errorf("NIC streams idle node 1 = %d, want 0 — the zero-volume unbound task must not count", got)
	}
	if got := mach.UplinkStreams(0); got != 1 {
		t.Errorf("uplink streams rack 0 = %d, want 1", got)
	}
}

// TestSetFabricContentionUnboundRoams: an unbound task with traffic counts
// on every link, the conservative reading of the old global model.
func TestSetFabricContentionUnboundRoams(t *testing.T) {
	mach := rackMachine(t)
	m := comm.New(2)
	m.AddSym(0, 1, 5)
	a := &Assignment{TaskPU: []int{-1, mach.Topology().Cores()[0].Children[0].OSIndex}, ControlPU: []int{-1, -1}}
	SetFabricContention(mach, a, m)
	for n := 0; n < 4; n++ {
		if mach.NICStreams(n) < 1 {
			t.Errorf("node %d NIC saw no stream from the roaming task", n)
		}
	}
	for r := 0; r < 2; r++ {
		if mach.UplinkStreams(r) < 1 {
			t.Errorf("rack %d uplink saw no stream from the roaming task", r)
		}
	}
}
