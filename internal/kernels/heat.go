package kernels

// HeatCell returns the CellFunc of an explicit 5-point heat-diffusion
// stencil with diffusion coefficient alpha (stable for alpha ≤ 0.25):
//
//	u' = u + α·(n + s + e + w − 4u)
//
// It is used by the examples and ablations as a second workload with a
// different compute/traffic ratio than Kernel 23.
func HeatCell(alpha float64) CellFunc {
	return func(c, n, s, e, w float64, _, _ int) float64 {
		return c + alpha*(n+s+e+w-4*c)
	}
}

// HeatCosts are the sweep costs of the heat stencil: 7 flops per cell and
// two 8-byte streams (read and write of the solution array).
var HeatCosts = Costs{FlopsPerCell: 7, BytesPerCell: 16}
