package placement

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/treematch"
)

// AssignFreeSlots is the place-into-subset entry point the online scheduler
// (internal/sched) builds on: it runs the Hierarchical flow restricted to an
// arbitrary set of free core slots instead of the whole (empty) machine.
// free[n] lists the free core level-indices (global, ascending) of cluster
// node n; nodes outside the scheduler's chosen domain pass empty lists. The
// same three levels apply — partition the task graph across the nodes that
// hold free slots (group g sized for node g's free capacity), match groups to
// nodes through the fabric's routed latency model, then map each group onto
// its node's free cores by structural hop distance — so a job admitted into a
// fragmented machine still lands with fabric- and cache-aware locality.
func AssignFreeSlots(mach *numasim.Machine, m *comm.Matrix, free [][]int, opts treematch.Options) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: subset assignment requires a machine")
	}
	topo := mach.Topology()
	nodes := topo.NumClusterNodes()
	if len(free) != nodes {
		return nil, fmt.Errorf("placement: free-slot view covers %d nodes, machine has %d", len(free), nodes)
	}
	numCores := topo.NumCores()
	seen := make(map[int]bool)
	var active []int // cluster nodes holding free slots, ascending
	total := 0
	for n, slots := range free {
		if len(slots) == 0 {
			continue
		}
		if !sort.IntsAreSorted(slots) {
			return nil, fmt.Errorf("placement: free slots of node %d not ascending", n)
		}
		for _, c := range slots {
			if c < 0 || c >= numCores {
				return nil, fmt.Errorf("placement: free slot core %d out of range [0,%d)", c, numCores)
			}
			if seen[c] {
				return nil, fmt.Errorf("placement: free slot core %d listed twice", c)
			}
			if cn := topo.ClusterNodeOf(topo.Cores()[c]); cn != nil && cn != topo.ClusterNodes()[n] {
				return nil, fmt.Errorf("placement: core %d is not on cluster node %d", c, n)
			}
			seen[c] = true
		}
		active = append(active, n)
		total += len(slots)
	}
	p := m.Order()
	if p == 0 {
		return &Assignment{Policy: "subset", TaskPU: []int{}, ControlPU: []int{}}, nil
	}
	if p > total {
		return nil, fmt.Errorf("placement: %d tasks exceed %d free slots", p, total)
	}

	a := &Assignment{
		Policy:    "subset",
		TaskPU:    make([]int, p),
		ControlPU: make([]int, p),
	}
	for t := range a.ControlPU {
		a.ControlPU[t] = -1
	}

	if len(active) == 1 {
		local, err := mapOntoFreeCores(mach, m, free[active[0]])
		if err != nil {
			return nil, err
		}
		for t, c := range local {
			a.TaskPU[t] = firstPU(topo, c)
		}
		return a, nil
	}

	// Level 1: split the task graph across the nodes with free slots, group
	// g sized for active node g's free capacity.
	caps := make([]int, len(active))
	for i, n := range active {
		caps[i] = len(free[n])
	}
	groups, groupMatrix, err := treematch.PartitionAcrossWeightedMatrix(m, caps, opts)
	if err != nil {
		return nil, err
	}

	// Level 2: match groups to the active nodes through the routed latency
	// model, restricted to the active submatrix. Uneven free capacities are
	// the common case under churn, so the matching is capacity-classed
	// exactly as Hierarchical's: group g may land only on a node with the
	// same free capacity it was sized for.
	nodeOf := make([]int, len(groups)) // group -> index into active
	for g := range nodeOf {
		nodeOf[g] = g
	}
	if fg := topo.FabricGraph(); fg != nil && len(active) > 1 {
		full := fg.LatencyMatrix()
		dist := make([][]float64, len(active))
		for i, ni := range active {
			dist[i] = make([]float64, len(active))
			for j, nj := range active {
				dist[i][j] = full[ni][nj]
			}
		}
		classed := false
		for _, c := range caps {
			if c != caps[0] {
				classed = true
				break
			}
		}
		var entityClass, leafClass []int
		if classed {
			classOf := map[int]int{}
			class := func(capacity int) int {
				c, ok := classOf[capacity]
				if !ok {
					c = len(classOf)
					classOf[capacity] = c
				}
				return c
			}
			entityClass = make([]int, len(caps))
			leafClass = make([]int, len(caps))
			for g, c := range caps {
				entityClass[g] = class(c)
				leafClass[g] = class(c)
			}
		}
		assignment, err := treematch.AssignByDistance(dist, groupMatrix, entityClass, leafClass)
		if err != nil {
			return nil, fmt.Errorf("placement: subset fabric matching: %w", err)
		}
		copy(nodeOf, assignment)
	}

	// Level 3: map each group onto its node's free cores.
	for g, tasks := range groups {
		if len(tasks) == 0 {
			continue
		}
		node := active[nodeOf[g]]
		sub, err := m.Submatrix(tasks)
		if err != nil {
			return nil, err
		}
		local, err := mapOntoFreeCores(mach, sub, free[node])
		if err != nil {
			return nil, err
		}
		for i, task := range tasks {
			a.TaskPU[task] = firstPU(topo, local[i])
		}
	}
	return a, nil
}

// mapOntoFreeCores maps m's tasks onto a subset of the given free cores of a
// single cluster node, minimizing bytes x structural hop distance. The task
// matrix is zero-extended to the slot count so the matcher chooses which free
// cores to occupy — dummy tasks absorb the leftover slots — and the returned
// slice gives each real task's core level index.
func mapOntoFreeCores(mach *numasim.Machine, m *comm.Matrix, slots []int) ([]int, error) {
	p := m.Order()
	if p > len(slots) {
		return nil, fmt.Errorf("placement: %d tasks exceed %d free cores on node", p, len(slots))
	}
	topo := mach.Topology()
	ext := m
	if p < len(slots) {
		var err error
		ext, err = m.ExtendZero(len(slots))
		if err != nil {
			return nil, err
		}
	}
	dist := make([][]float64, len(slots))
	for i, ci := range slots {
		dist[i] = make([]float64, len(slots))
		for j, cj := range slots {
			if i == j {
				continue
			}
			dist[i][j] = float64(topo.HopDistance(topo.Cores()[ci], topo.Cores()[cj]))
		}
	}
	assignment, err := treematch.AssignByDistance(dist, ext, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("placement: subset intra-node matching: %w", err)
	}
	out := make([]int, p)
	for t := 0; t < p; t++ {
		out[t] = slots[assignment[t]]
	}
	return out, nil
}
