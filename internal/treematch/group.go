package treematch

import (
	"sort"

	"repro/internal/comm"
)

// GroupProcesses partitions the p entities of the matrix into p/a groups of
// exactly a entities each, trying to maximize the communication volume kept
// inside groups (equivalently, to minimize the volume cut between groups).
// This is the GroupProcesses step of Algorithm 1: the groups formed at one
// level become the entities of the level above.
//
// p must be divisible by a (Map guarantees this by padding the matrix with
// zero-volume virtual entities). The heuristic is the one used by fast
// TreeMatch variants: greedy affinity-ordered seeding followed by bounded
// pairwise-swap refinement. It is deterministic: ties are broken towards the
// lowest entity index.
func GroupProcesses(m *comm.Matrix, a int, refinePasses int) [][]int {
	p := m.Order()
	if a <= 0 || p%a != 0 {
		panic("treematch: GroupProcesses requires a > 0 dividing the matrix order")
	}
	k := p / a
	groups := greedyGroups(m, a, k)
	if refinePasses > 0 && k > 1 && a > 1 {
		refineGroups(m, groups, refinePasses)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

// greedyGroups seeds each group with the heaviest-communicating ungrouped
// entity and fills it with the ungrouped entities that have the strongest
// affinity to the group so far.
func greedyGroups(m *comm.Matrix, a, k int) [][]int {
	p := m.Order()
	grouped := make([]bool, p)
	// Seed order: total communication volume, heaviest first. Entities with
	// heavy rows constrain the solution most, so they pick their partners
	// first (the classic TreeMatch ordering).
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	vol := make([]float64, p)
	for i := 0; i < p; i++ {
		vol[i] = m.RowVolume(i)
	}
	sort.SliceStable(order, func(x, y int) bool { return vol[order[x]] > vol[order[y]] })

	groups := make([][]int, 0, k)
	affinity := make([]float64, p) // affinity of each entity to the group being built
	for _, seed := range order {
		if grouped[seed] {
			continue
		}
		g := make([]int, 0, a)
		g = append(g, seed)
		grouped[seed] = true
		for i := 0; i < p; i++ {
			affinity[i] = 0
		}
		for len(g) < a {
			last := g[len(g)-1]
			best, bestAff := -1, -1.0
			for i := 0; i < p; i++ {
				if grouped[i] {
					continue
				}
				affinity[i] += m.At(last, i) + m.At(i, last)
				if affinity[i] > bestAff {
					best, bestAff = i, affinity[i]
				}
			}
			g = append(g, best)
			grouped[best] = true
		}
		groups = append(groups, g)
		if len(groups) == k {
			break
		}
	}
	return groups
}

// refineGroups improves the partition with pairwise swaps between groups
// (a bounded Kernighan–Lin pass): swap x∈g1 with y∈g2 whenever that strictly
// increases the intra-group volume. Each pass scans all group pairs once.
func refineGroups(m *comm.Matrix, groups [][]int, passes int) {
	k := len(groups)
	intra := func(e int, g []int, excl int) float64 {
		var s float64
		for _, u := range g {
			if u != e && u != excl {
				s += m.At(e, u) + m.At(u, e)
			}
		}
		return s
	}
	for pass := 0; pass < passes; pass++ {
		improved := false
		for g1 := 0; g1 < k; g1++ {
			for g2 := g1 + 1; g2 < k; g2++ {
				for xi := range groups[g1] {
					for yi := range groups[g2] {
						x, y := groups[g1][xi], groups[g2][yi]
						gain := intra(x, groups[g2], y) + intra(y, groups[g1], x) -
							intra(x, groups[g1], -1) - intra(y, groups[g2], -1)
						if gain > 1e-12 {
							groups[g1][xi], groups[g2][yi] = y, x
							improved = true
						}
					}
				}
			}
		}
		if !improved {
			return
		}
	}
}

// intraVolume returns the total communication volume kept inside the groups
// (both directions). Useful as a quality metric for tests and ablations.
func intraVolume(m *comm.Matrix, groups [][]int) float64 {
	var s float64
	for _, g := range groups {
		for _, i := range g {
			for _, j := range g {
				if i != j {
					s += m.At(i, j)
				}
			}
		}
	}
	return s
}
