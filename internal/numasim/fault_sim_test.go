package numasim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/topology"
)

func faultPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform("rack:2 node:2 pack:1 l3:1 core:2 pu:1", Config{})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func TestApplyFaultEventsValidation(t *testing.T) {
	cases := []struct {
		name    string
		events  []topology.FaultEvent
		wantErr string
	}{
		{"unknown node", []topology.FaultEvent{{Kind: topology.FaultKillNode, Node: 9}}, "unknown cluster node"},
		{"double kill", []topology.FaultEvent{
			{Kind: topology.FaultKillNode, Node: 1},
			{Kind: topology.FaultKillNode, Node: 1},
		}, "already dead"},
		{"kill everything", []topology.FaultEvent{
			{Kind: topology.FaultKillNode, Node: 0},
			{Kind: topology.FaultKillNode, Node: 1},
			{Kind: topology.FaultKillNode, Node: 2},
			{Kind: topology.FaultKillNode, Node: 3},
		}, "last surviving"},
		{"unknown edge", []topology.FaultEvent{{Kind: topology.FaultSeverEdge, Edge: 99}}, "unknown fabric edge"},
		{"bad factor", []topology.FaultEvent{{Kind: topology.FaultDegradeEdge, Edge: 0, Factor: 2}}, "outside (0,1)"},
		{"degrade severed edge", []topology.FaultEvent{
			{Kind: topology.FaultSeverEdge, Edge: 0},
			{Kind: topology.FaultDegradeEdge, Edge: 0, Factor: 0.5},
		}, "already severed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := faultPlatform(t).Machine()
			err := m.ApplyFaultEvents(tc.events)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ApplyFaultEvents: got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}

	m, err := New(mustTopo(t, "pack:2 core:4"), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.ApplyFaultEvents([]topology.FaultEvent{{Kind: topology.FaultKillNode}}); err == nil {
		t.Fatal("fault events on a single machine must fail")
	}
}

func mustTopo(t *testing.T, spec string) *topology.Topology {
	t.Helper()
	topo, err := topology.FromSpec(spec)
	if err != nil {
		t.Fatalf("FromSpec(%q): %v", spec, err)
	}
	return topo
}

func TestDeadNodeUnreachable(t *testing.T) {
	m := faultPlatform(t).Machine()
	puOn := func(c int) int {
		for pu := 0; pu < m.Topology().NumPUs(); pu++ {
			if m.ClusterNodeOfPU(pu) == c {
				return pu
			}
		}
		t.Fatalf("no PU on cluster node %d", c)
		return -1
	}
	healthy := m.TransferCost(puOn(0), puOn(1), 1<<20)
	if math.IsInf(healthy, 1) || healthy <= 0 {
		t.Fatalf("healthy cross-node transfer = %v", healthy)
	}

	if err := m.ApplyFaultEvents([]topology.FaultEvent{{Kind: topology.FaultKillNode, Node: 1}}); err != nil {
		t.Fatalf("ApplyFaultEvents: %v", err)
	}
	if !m.ClusterNodeDead(1) || m.ClusterNodeDead(0) {
		t.Fatal("ClusterNodeDead wrong after kill")
	}
	if !m.AnyDeadClusterNode() {
		t.Fatal("AnyDeadClusterNode false after kill")
	}
	if c := m.TransferCost(puOn(0), puOn(1), 1<<20); !math.IsInf(c, 1) {
		t.Fatalf("transfer into a dead node = %v, want +Inf", c)
	}
	// A pull FROM the dead node stays finite: the dead memory's contents
	// re-materialize from the checkpoint node (a survivor can still read a
	// dead partner's last release), priced like any surviving-source pull.
	if c := m.TransferCost(puOn(1), puOn(0), 1<<20); math.IsInf(c, 1) || c <= 0 {
		t.Fatalf("checkpoint-redirected pull from a dead node = %v, want finite positive", c)
	}
	// Unaffected pairs keep their healthy price.
	if c := m.TransferCost(puOn(0), puOn(2), 1<<20); math.IsInf(c, 1) || c <= 0 {
		t.Fatalf("transfer between survivors = %v", c)
	}
	// Checkpoint node: first NUMA node on a surviving cluster node.
	if cp := m.CheckpointNode(); m.ClusterNodeDead(m.ClusterNodeOfNode(cp)) {
		t.Fatalf("CheckpointNode %d is on a dead cluster node", cp)
	}
	// Migration out of the dead node prices the pull from the checkpoint,
	// not an impossible (infinite) pull from the dead memory.
	if c := m.MigrationCostCycles(puOn(1), puOn(0), 1<<20); math.IsInf(c, 1) || c <= 0 {
		t.Fatalf("evacuation migration cost = %v, want finite positive", c)
	}
	// Migrating INTO the dead node stays impossible.
	if c := m.MigrationCostCycles(puOn(0), puOn(1), 1<<20); !math.IsInf(c, 1) {
		t.Fatalf("migration into a dead node = %v, want +Inf", c)
	}
}

func TestDegradedEdgeReducesBandwidth(t *testing.T) {
	m := faultPlatform(t).Machine()
	puOn := func(c int) int {
		for pu := 0; pu < m.Topology().NumPUs(); pu++ {
			if m.ClusterNodeOfPU(pu) == c {
				return pu
			}
		}
		return -1
	}
	vol := float64(64 << 20)
	healthy := m.TransferCost(puOn(0), puOn(1), vol)

	// Degrade node 0's NIC link (tree level 0, link 0) to half bandwidth.
	g := m.FabricGraph()
	nic0 := g.LevelEdges(0)[0]
	if err := m.ApplyFaultEvents([]topology.FaultEvent{{Kind: topology.FaultDegradeEdge, Edge: nic0, Factor: 0.5}}); err != nil {
		t.Fatalf("ApplyFaultEvents: %v", err)
	}
	if f := m.EdgeFaultFactor(nic0); f != 0.5 {
		t.Fatalf("EdgeFaultFactor = %v, want 0.5", f)
	}
	degraded := m.TransferCost(puOn(0), puOn(1), vol)
	if degraded <= healthy {
		t.Fatalf("degraded transfer %v not slower than healthy %v", degraded, healthy)
	}
	// The cached and reference bandwidth paths must agree under the fault.
	if a, b := m.fabricBandwidth(0, 1, nil, 0), m.fabricBandwidthWalk(0, 1, nil, 0); a != b {
		t.Fatalf("fabricBandwidth %v != fabricBandwidthWalk %v under degrade", a, b)
	}
	// A second degrade compounds.
	if err := m.ApplyFaultEvents([]topology.FaultEvent{{Kind: topology.FaultDegradeEdge, Edge: nic0, Factor: 0.5}}); err != nil {
		t.Fatalf("ApplyFaultEvents: %v", err)
	}
	if f := m.EdgeFaultFactor(nic0); f != 0.25 {
		t.Fatalf("compounded factor = %v, want 0.25", f)
	}
	// A pair not routed through the faulted NIC is untouched.
	if c := m.TransferCost(puOn(2), puOn(3), vol); c != m.TransferCost(puOn(2), puOn(3), vol) || math.IsInf(c, 1) {
		t.Fatalf("unrelated pair priced %v", c)
	}
}

func TestSeveredEdgeUnreachable(t *testing.T) {
	m := faultPlatform(t).Machine()
	puOn := func(c int) int {
		for pu := 0; pu < m.Topology().NumPUs(); pu++ {
			if m.ClusterNodeOfPU(pu) == c {
				return pu
			}
		}
		return -1
	}
	g := m.FabricGraph()
	nic0 := g.LevelEdges(0)[0]
	if err := m.ApplyFaultEvents([]topology.FaultEvent{{Kind: topology.FaultSeverEdge, Edge: nic0}}); err != nil {
		t.Fatalf("ApplyFaultEvents: %v", err)
	}
	if c := m.TransferCost(puOn(0), puOn(1), 1<<20); !math.IsInf(c, 1) {
		t.Fatalf("transfer over a severed NIC = %v, want +Inf", c)
	}
	// Intra-node stays fine; pairs avoiding the severed edge stay fine.
	if c := m.TransferCost(puOn(1), puOn(2), 1<<20); math.IsInf(c, 1) {
		t.Fatal("pair avoiding the severed edge became unreachable")
	}
}

// TestNoFaultPricingBitStable pins the acceptance criterion that a machine
// that never saw a fault event prices exactly as before the fault model
// existed: the fault branches are all behind nil checks.
func TestNoFaultPricingBitStable(t *testing.T) {
	a := faultPlatform(t).Machine()
	b := faultPlatform(t).Machine()
	// Apply and conceptually "revert nothing" on b — b simply never sees
	// faults; a gets a degrade on an edge no tested pair crosses... instead,
	// compare two untouched machines across every PU pair to catch any
	// unconditional arithmetic sneaking into the hot path.
	for from := 0; from < a.Topology().NumPUs(); from++ {
		for to := 0; to < a.Topology().NumPUs(); to++ {
			ca, cb := a.TransferCost(from, to, 123456), b.TransferCost(from, to, 123456)
			if ca != cb {
				t.Fatalf("TransferCost(%d,%d) %v != %v", from, to, ca, cb)
			}
			ma, mb := a.MigrationCostCycles(from, to, 1<<20), b.MigrationCostCycles(from, to, 1<<20)
			if ma != mb {
				t.Fatalf("MigrationCostCycles(%d,%d) %v != %v", from, to, ma, mb)
			}
		}
	}
	if a.CheckpointNode() != 0 {
		t.Fatal("healthy CheckpointNode != 0")
	}
	if a.AnyDeadClusterNode() {
		t.Fatal("healthy machine reports dead nodes")
	}
	if a.EdgeFaultFactor(0) != 1 {
		t.Fatal("healthy edge factor != 1")
	}
}
