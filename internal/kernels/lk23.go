package kernels

// The Livermore Kernel 23 ("2-D implicit hydrodynamics fragment", LinPack /
// Livermore Fortran Kernels) updates the interior of ZA with a 5-point
// implicit relaxation:
//
//	qa        = za[k+1][j]·zr + za[k-1][j]·zb + za[k][j+1]·zu + za[k][j-1]·zv + zz
//	za[k][j] += 0.175·(qa − za[k][j])
//
// The classic kernel sweeps in place (Gauss–Seidel style: updated rows feed
// later rows within the same sweep). The ORWL block decomposition of the
// paper exchanges halos once per iteration, which parallelizes the
// two-buffer Jacobi variant; both are implemented here, and the parallel
// implementations are validated element-wise against RunJacobi.

// Relax is the relaxation factor of Kernel 23.
const Relax = 0.175

// Cell computes one Kernel 23 update from the centre value c and its four
// old neighbours (n = row above, s = row below, e = column right, w =
// column left), using the coefficient arrays of g at global row gk, column
// gj. It is the CellFunc of the LK23 stencil.
func (g *Grid) Cell(c, n, s, e, w float64, gk, gj int) float64 {
	i := g.Idx(gk, gj)
	qa := s*g.ZR[i] + n*g.ZB[i] + e*g.ZU[i] + w*g.ZV[i] + g.ZZ[i]
	return c + Relax*(qa-c)
}

// CellFunc is a 5-point stencil update: new centre value from the old
// centre and neighbour values at global coordinates (gk, gj).
type CellFunc func(c, n, s, e, w float64, gk, gj int) float64

// Costs describes the per-cell cost of one stencil sweep for the machine
// simulator: arithmetic operations and the bytes of memory traffic behind
// each updated cell (streaming reads and the write-back).
type Costs struct {
	FlopsPerCell float64
	BytesPerCell float64
}

// LK23Costs are the sweep costs of Kernel 23: 4 multiplies and 4 adds for
// qa, plus subtract/multiply/add for the relaxation = 11 flops; 7 streams
// (ZA read+write and 5 coefficient arrays) of 8 bytes each.
var LK23Costs = Costs{FlopsPerCell: 11, BytesPerCell: 8 * Streams}

// StepGS performs one classic in-place (Gauss–Seidel) Kernel 23 sweep.
func StepGS(g *Grid) {
	za, c := g.ZA, g.Cols
	for k := 1; k < g.Rows-1; k++ {
		for j := 1; j < c-1; j++ {
			i := k*c + j
			qa := za[i+c]*g.ZR[i] + za[i-c]*g.ZB[i] + za[i+1]*g.ZU[i] + za[i-1]*g.ZV[i] + g.ZZ[i]
			za[i] += Relax * (qa - za[i])
		}
	}
}

// RunGS runs iters in-place sweeps and returns g (modified in place).
func RunGS(g *Grid, iters int) *Grid {
	for it := 0; it < iters; it++ {
		StepGS(g)
	}
	return g
}

// StepJacobi writes one two-buffer sweep of the given stencil into dst.ZA
// from src.ZA. Boundary cells are copied unchanged. dst and src must have
// the same shape and may not alias.
func StepJacobi(dst, src *Grid, cell CellFunc) {
	c := src.Cols
	copy(dst.ZA[:c], src.ZA[:c])                           // first row
	copy(dst.ZA[(src.Rows-1)*c:], src.ZA[(src.Rows-1)*c:]) // last row
	for k := 1; k < src.Rows-1; k++ {
		row := k * c
		dst.ZA[row] = src.ZA[row]         // first column
		dst.ZA[row+c-1] = src.ZA[row+c-1] // last column
		for j := 1; j < c-1; j++ {
			i := row + j
			dst.ZA[i] = cell(src.ZA[i], src.ZA[i-c], src.ZA[i+c], src.ZA[i+1], src.ZA[i-1], k, j)
		}
	}
}

// RunJacobi runs iters two-buffer sweeps of the stencil starting from g and
// returns the resulting grid; g itself is not modified. This is the
// sequential reference the ORWL and OpenMP implementations must match
// element-for-element.
func RunJacobi(g *Grid, cell CellFunc, iters int) *Grid {
	cur := g.Clone()
	next := g.Clone()
	for it := 0; it < iters; it++ {
		StepJacobi(next, cur, cell)
		cur, next = next, cur
	}
	return cur
}

// RunJacobiLK23 is RunJacobi specialized to the grid's own Kernel 23
// coefficients.
func RunJacobiLK23(g *Grid, iters int) *Grid {
	return RunJacobi(g, g.Cell, iters)
}
