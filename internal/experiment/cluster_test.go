package experiment

import (
	"testing"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
)

// testClusterCfg is the reduced scale used by the cluster tests: 2 nodes of
// 8 cores keep runtimes in milliseconds.
func testClusterCfg(nodes int) ClusterConfig {
	return ClusterConfig{
		Nodes:          nodes,
		CoresPerNode:   8,
		CoresPerSocket: 4,
		Iters:          10,
		Seed:           42,
	}
}

func TestClusterConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     ClusterConfig
		wantErr bool
	}{
		{"defaults", ClusterConfig{}, false},
		{"two nodes", testClusterCfg(2), false},
		{"one node", ClusterConfig{Nodes: 1}, true},
		{"negative iters", ClusterConfig{Iters: -1}, true},
		{"indivisible sockets", ClusterConfig{CoresPerNode: 10, CoresPerSocket: 4}, true},
		{"negative halo", ClusterConfig{HaloBytes: -1}, true},
	}
	for _, tc := range tests {
		if err := tc.cfg.Validate(); (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestRunClusterUnknownMode(t *testing.T) {
	if _, err := RunCluster("nope", testClusterCfg(2)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestAblationCluster is the A9 acceptance property: hierarchical placement
// beats round-robin across nodes on makespan and is never worse than flat
// TreeMatch on the cluster tree, with a strict win over flat on the 2-node
// shape. On the 4-node reduced shape both policies find the same provably
// blocky optimum (the partition portfolio's balance-aware selection and
// flat's bottom-up grouping converge to identical placements), so under the
// per-link fabric contention model — which no longer throttles every
// crossing stream by the machine-wide total — the arms tie exactly there;
// equality of identical placements is the expected outcome, not a
// regression.
func TestAblationCluster(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		rows, err := AblationCluster(testClusterCfg(nodes))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(ClusterModes()) {
			t.Fatalf("%d rows, want %d", len(rows), len(ClusterModes()))
		}
		byName := map[string]float64{}
		for _, r := range rows {
			byName[r.Name] = r.Seconds
		}
		hier := byName["cluster/hierarchical"]
		if hier <= 0 {
			t.Fatalf("nodes=%d: missing hierarchical row: %+v", nodes, rows)
		}
		if flat := byName["cluster/flat"]; hier > flat {
			t.Errorf("nodes=%d: hierarchical %.6fs worse than flat treematch %.6fs", nodes, hier, flat)
		} else if nodes == 2 && hier >= flat {
			t.Errorf("nodes=2: hierarchical %.6fs not strictly below flat treematch %.6fs", hier, flat)
		}
		if rr := byName["cluster/rr-nodes"]; hier >= rr {
			t.Errorf("nodes=%d: hierarchical %.6fs not below rr-nodes %.6fs", nodes, hier, rr)
		}
		// The fabric-free single machine bounds every clustered arm from
		// below: distribution is never free.
		if big := byName["cluster/bignode"]; big >= hier {
			t.Errorf("nodes=%d: bignode %.6fs not below hierarchical %.6fs", nodes, big, hier)
		}
	}
}

func TestRunClusterDeterministic(t *testing.T) {
	cfg := testClusterCfg(2)
	for _, mode := range ClusterModes() {
		a, err := RunCluster(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunCluster(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Seconds != b.Seconds {
			t.Errorf("%s not deterministic: %.9f vs %.9f", mode, a.Seconds, b.Seconds)
		}
	}
}

// TestClusterAdaptive runs the epoch-based adaptive engine with the
// hierarchical base policy on the multi-node stencil: the engine must work
// end to end on a clustered machine, and — because the initial hierarchical
// placement is already matched to the stationary pattern and inter-node
// migrations are priced over the fabric — hysteresis must keep it from
// thrashing.
func TestClusterAdaptive(t *testing.T) {
	cfg := testClusterCfg(2)
	c, err := Cluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mach := c.Machine()
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildClusterStencil(rt, cfg); err != nil {
		t.Fatal(err)
	}
	eng, err := placement.PlaceAdaptive(rt, placement.AdaptiveOptions{
		Base:       placement.Hierarchical{},
		EpochIters: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := eng.Assignment()
	placement.SetContention(mach, a, nil)
	placement.SetFabricContention(mach, a, rt.CommMatrix())
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Epochs == 0 {
		t.Fatal("adaptive engine saw no epochs")
	}
	if st.Rebinds != 0 {
		t.Errorf("stationary cluster stencil triggered %d rebinds; hysteresis should hold the hierarchical placement", st.Rebinds)
	}
}

// TestClusterHonorsFabricRacks pins that the platform-path builder still
// honors the legacy Fabric.Racks override (the old NewCluster path split
// the nodes across top-of-rack switches; the spec-driven path must too).
func TestClusterHonorsFabricRacks(t *testing.T) {
	c, err := Cluster(ClusterConfig{Nodes: 4, Fabric: numasim.Fabric{Racks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Racks(); got != 2 {
		t.Fatalf("Fabric.Racks=2 built %d racks", got)
	}
	if _, err := Cluster(ClusterConfig{Nodes: 4, CoresPerNode: 12, CoresPerSocket: 6, Fabric: numasim.Fabric{Racks: 3}}); err == nil {
		t.Error("4 nodes across 3 racks accepted")
	}
}
