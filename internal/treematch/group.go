package treematch

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"repro/internal/comm"
)

// partitionCandidate is one deterministic grouping heuristic of the
// portfolio, KL refinement included: it builds its groups from scratch on
// every call and touches the shared matrix read-only, so candidates can be
// evaluated concurrently.
type partitionCandidate func() ([][]int, error)

// scoredPartition is one evaluated candidate: its groups plus the exact
// quality metrics the best-pick compares (intra-group volume, crossing
// streams in total and for the most exposed group).
type scoredPartition struct {
	groups        [][]int
	intra         float64
	streams, peak int
	err           error
}

// scorePartition runs one candidate and measures it.
func scorePartition(m *comm.Matrix, c partitionCandidate) scoredPartition {
	groups, err := c()
	if err != nil {
		return scoredPartition{err: err}
	}
	s, peak := crossingStats(m, groups)
	return scoredPartition{groups: groups, intra: intraVolume(m, groups), streams: s, peak: peak}
}

// evalPartitionCandidates evaluates the portfolio — one goroutine per
// candidate when concurrent — and returns the per-candidate scores in the
// portfolio's fixed order. Every candidate builds and refines its own
// groups and reads the shared matrix only, so the concurrent evaluation is
// race-free and candidate order carries all the determinism.
func evalPartitionCandidates(m *comm.Matrix, cands []partitionCandidate, concurrent bool) []scoredPartition {
	scored := make([]scoredPartition, len(cands))
	if !concurrent {
		for i, c := range cands {
			scored[i] = scorePartition(m, c)
		}
		return scored
	}
	var wg sync.WaitGroup
	for i, c := range cands {
		wg.Add(1)
		go func(i int, c partitionCandidate) {
			defer wg.Done()
			scored[i] = scorePartition(m, c)
		}(i, c)
	}
	wg.Wait()
	return scored
}

// pickPartition selects the winning candidate by the exact measured cut:
// maximum intra-group volume first (the total is fixed, so that is the
// minimum cut); among equal cuts the partition whose most exposed group
// sends the fewest streams across the boundary, then the fewest crossing
// entities overall — per-link fabric contention is set by the most
// contended NIC, so balancing the crossing streams matters even at equal
// cut volume. Candidates are compared in portfolio order, so the result is
// bit-identical whether the portfolio was evaluated sequentially or
// concurrently.
func pickPartition(scored []scoredPartition) ([][]int, error) {
	var best [][]int
	bestIntra := -1.0
	bestStreams, bestPeak := 0, 0
	for _, sc := range scored {
		if sc.err != nil {
			return nil, sc.err
		}
		if sc.intra > bestIntra ||
			(sc.intra == bestIntra && (sc.peak < bestPeak || (sc.peak == bestPeak && sc.streams < bestStreams))) {
			bestIntra, bestStreams, bestPeak = sc.intra, sc.streams, sc.peak
			best = sc.groups
		}
	}
	return best, nil
}

// PartitionAcross partitions the entities of the matrix into k groups of
// equal capacity ceil(p/k), minimizing the communication volume cut between
// groups. This is the top stage of hierarchical two-level placement: the
// groups become the per-cluster-node task sets, so the cut is exactly the
// traffic that must cross the interconnect fabric. The matrix is padded with
// zero-volume virtual entities up to k·ceil(p/k) internally; padding is
// stripped from the result, so the last groups may come back smaller. Group
// order is deterministic.
//
// No single grouping heuristic wins on every task graph: greedy k-way
// seeding snakes through lattices, recursive bisection commits to a split
// axis it cannot revisit, and pairwise-swap refinement only polishes local
// optima. The partitioner therefore computes a portfolio of deterministic
// candidates — direct k-way grouping, recursive bisection, multilevel
// coarsening (pair, aggregate, partition the coarse graph, expand),
// split-finer-then-merge, and spectral bisection on the Fiedler vector (the
// geometry-free candidate that finds the quadrant partitions of square
// lattices, where the others stop at slab or center-block local optima) —
// KL-refines each at the fine level, and keeps the one with the smallest
// cut, measured exactly. The candidates are evaluated concurrently (one
// goroutine per candidate; each builds and refines its own groups against
// the read-only matrix) and the winner is picked in fixed portfolio order,
// so the result is bit-identical to a sequential evaluation.
func PartitionAcross(m *comm.Matrix, k int, opt Options) ([][]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("treematch: PartitionAcross needs at least 1 group, got %d", k)
	}
	p := m.Order()
	if p == 0 {
		return make([][]int, k), nil
	}
	per := (p + k - 1) / k
	work := m
	if per*k > p {
		var err error
		work, err = m.ExtendZero(per * k)
		if err != nil {
			return nil, err
		}
	}
	var best [][]int
	var err error
	if work.Order() > multilevelMinOrder {
		// The portfolio (greedy fill, full KL, spectral iteration) is
		// superlinear in the order; above the threshold the multilevel
		// coarsening driver takes over. Below it nothing changes, keeping
		// every pre-existing shape bit-identical.
		best, err = multilevelPartition(work, k, per, opt)
	} else {
		best, err = pickPartition(evalPartitionCandidates(work, equalPartitionCandidates(work, p, k, per, opt), true))
	}
	if err != nil {
		return nil, err
	}
	out := make([][]int, k)
	for gi, g := range best {
		for _, e := range g {
			if e < p {
				out[gi] = append(out[gi], e)
			}
		}
	}
	return out, nil
}

// equalPartitionCandidates assembles the equal-capacity portfolio in its
// fixed order (the order pickPartition breaks ties in). orig is the
// unpadded entity count — work may carry zero-volume padding up to
// k·ceil(orig/k), and the spectral candidate must know the difference.
// Each candidate runs its own KL refinement, so the portfolio can be
// evaluated concurrently — at 10k+ tasks the refinement passes dominate
// PartitionAcross, and the candidates are independent by construction.
func equalPartitionCandidates(work *comm.Matrix, orig, k, per int, opt Options) []partitionCandidate {
	// The node-level cut is the expensive one (every cut byte crosses the
	// network), so refinement always runs here even when per-core grouping
	// of a matrix this size would skip it.
	passes := opt.refinePasses(0)
	refine := func(groups [][]int) [][]int {
		if passes > 0 && k > 1 && per > 1 {
			refineGroups(work, groups, passes)
		}
		return groups
	}
	p := work.Order()
	// The direct candidate is built unrefined (refine runs the KL passes
	// once, afterwards; GroupProcesses would otherwise run them twice).
	cands := []partitionCandidate{
		func() ([][]int, error) { return refine(GroupProcesses(work, per, 0)), nil },
	}
	// For odd k the bisection degenerates to the direct k-way grouping at
	// its top level, so the candidate would be a duplicate.
	if k%2 == 0 {
		cands = append(cands, func() ([][]int, error) {
			groups, err := bisectPartition(work, identityIDs(p), k, passes)
			if err != nil {
				return nil, err
			}
			return refine(groups), nil
		})
	}
	cands = append(cands, func() ([][]int, error) {
		groups, err := coarsenPartition(work, k, passes)
		if err != nil {
			return nil, err
		}
		return refine(groups), nil
	})
	// Split-finer-then-merge: partition into 2k half-size groups first, then
	// pair-merge them by aggregated affinity. The fine groups come out
	// compact, so the merged partition tends towards blocky shapes whose
	// crossing streams are balanced across the groups — the layouts direct
	// k-way grouping and recursive bisection miss when an equal-cut slice
	// partition exists.
	if k > 1 && per%2 == 0 && per > 1 {
		cands = append(cands, func() ([][]int, error) {
			groups, err := mergeFinePartition(work, k, passes)
			if err != nil {
				return nil, err
			}
			return refine(groups), nil
		})
	}
	// Spectral bisection, considered last so that ties keep the portfolio's
	// established winners. Only without padding (per·k equals the unpadded
	// order): zero-volume padding entities are isolated vertices whose
	// Laplacian component dominates the power iteration and drowns the
	// Fiedler direction.
	if k%2 == 0 && per*k == orig && per > 1 {
		cands = append(cands, func() ([][]int, error) {
			groups, err := spectralPartition(work, identityIDs(p), k, passes)
			if err != nil {
				return nil, err
			}
			return refine(groups), nil
		})
	}
	// The chain candidate for grid (torus) fabrics: consecutive runs of the
	// affinity chain, the shape a space-filling-curve embedding wants.
	// Appended after the established candidates so ties keep their winners;
	// gated on SFCDims so every non-grid portfolio stays unchanged.
	if k > 1 && per > 1 && sfcCellCount(opt.SFCDims) == k {
		cands = append(cands, func() ([][]int, error) {
			return refine(chainPartition(work, k, per)), nil
		})
	}
	return cands
}

// identityIDs returns the identity entity list 0..n-1.
func identityIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// PartitionAcrossWeighted partitions the entities of the matrix into
// len(caps) groups whose sizes are proportional to the given capacities
// (group g targets p·caps[g]/Σcaps entities, remainders distributed by
// largest fractional part), minimizing the communication volume cut between
// groups. This is the capacity-aware top stage of hierarchical placement on
// heterogeneous platforms: caps[g] is the core count of the cluster node
// group g is destined for, so an 8-core node receives twice the tasks of a
// 4-core node instead of the equal share that would oversubscribe the small
// node. With equal capacities it is exactly PartitionAcross, candidate
// portfolio included. Group order is deterministic and positional: group g
// always carries the size derived from caps[g].
func PartitionAcrossWeighted(m *comm.Matrix, caps []int, opt Options) ([][]int, error) {
	k := len(caps)
	if k < 1 {
		return nil, fmt.Errorf("treematch: PartitionAcrossWeighted needs at least 1 capacity, got %d", k)
	}
	equal := true
	for _, c := range caps {
		if c < 1 {
			return nil, fmt.Errorf("treematch: capacity %d must be positive", c)
		}
		if c != caps[0] {
			equal = false
		}
	}
	if equal {
		return PartitionAcross(m, k, opt)
	}
	p := m.Order()
	if p == 0 {
		return make([][]int, k), nil
	}
	sizes := weightedSizes(p, caps)
	passes := opt.refinePasses(0)
	if p > multilevelMinOrder {
		// Large instance: greedy seeding (heap-driven on sparse matrices)
		// plus boundary-only refinement; the full-KL portfolio below is
		// unaffordable at this order.
		groups := greedySizedGroups(m, sizes)
		if passes > 0 && k > 1 {
			refineGroupsBoundary(m, groups, passes)
		}
		for _, g := range groups {
			sort.Ints(g)
		}
		return groups, nil
	}
	refine := func(groups [][]int) [][]int {
		if passes > 0 && k > 1 {
			refineGroups(m, groups, passes)
		}
		return groups
	}
	cands := []partitionCandidate{
		func() ([][]int, error) { return refine(greedySizedGroups(m, sizes)), nil },
		func() ([][]int, error) {
			groups, err := spectralPartitionSized(m, identityIDs(p), sizes)
			if err != nil {
				return nil, err
			}
			return refine(groups), nil
		},
	}
	best, err := pickPartition(evalPartitionCandidates(m, cands, true))
	if err != nil {
		return nil, err
	}
	for _, g := range best {
		sort.Ints(g)
	}
	return best, nil
}

// PartitionAcrossWeightedMatrix runs PartitionAcrossWeighted and
// additionally emits the aggregated group-to-group matrix, the input of the
// capacity-constrained group→node matching (AssignClassed) on multi-switch
// fabrics.
func PartitionAcrossWeightedMatrix(m *comm.Matrix, caps []int, opt Options) ([][]int, *comm.Matrix, error) {
	groups, err := PartitionAcrossWeighted(m, caps, opt)
	if err != nil {
		return nil, nil, err
	}
	agg, err := m.Aggregate(groups)
	if err != nil {
		return nil, nil, err
	}
	return groups, agg, nil
}

// weightedSizes apportions p entities over the capacities by the largest-
// remainder method: group g gets ⌊p·caps[g]/Σcaps⌋ plus at most one of the
// leftover units, awarded by descending fractional part (ties towards the
// lower index). The sizes sum to exactly p.
func weightedSizes(p int, caps []int) []int {
	total := 0
	for _, c := range caps {
		total += c
	}
	sizes := make([]int, len(caps))
	rem := make([]int, len(caps)) // fractional parts, scaled by total
	assigned := 0
	for g, c := range caps {
		sizes[g] = p * c / total
		rem[g] = p * c % total
		assigned += sizes[g]
	}
	order := make([]int, len(caps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for i := 0; i < p-assigned; i++ {
		sizes[order[i]]++
	}
	return sizes
}

// greedySizedGroups is greedyGroups generalized to per-group target sizes:
// groups are built largest-first (big groups constrain the solution most,
// so they pick coherent chunks before the leftovers fragment), each seeded
// with the heaviest-communicating ungrouped entity and filled by strongest
// affinity to the group so far. The returned slice is positional: result[g]
// has exactly sizes[g] members.
//
// Two implementations produce bit-identical groups: a heap-driven one that
// only touches the neighbors of added members (O(nnz·log n), the one sparse
// matrices need — the historical full-scan fill is O(p²) per group and
// unusable at 100k tasks), and the full-scan one, kept for matrices the heap
// argument does not cover (asymmetric or negative affinity).
func greedySizedGroups(m *comm.Matrix, sizes []int) [][]int {
	if m.IsSparse() && symmetricNonNegative(m) {
		return greedySizedGroupsHeap(m, sizes)
	}
	return greedySizedGroupsScan(m, sizes)
}

// symmetricNonNegative reports whether the matrix is exactly symmetric with
// no negative entries — the precondition under which the heap-based greedy
// fill provably matches the full-scan fill bit for bit.
func symmetricNonNegative(m *comm.Matrix) bool {
	neg := false
	for i := 0; i < m.Order() && !neg; i++ {
		m.ForEachNeighbor(i, func(_ int, v float64) {
			if v < 0 {
				neg = true
			}
		})
	}
	return !neg && m.IsSymmetric()
}

// greedySizedGroupsScan is the reference full-scan implementation: the
// affinity of every ungrouped entity is updated and scanned per added
// member, ties broken towards the lowest entity index.
func greedySizedGroupsScan(m *comm.Matrix, sizes []int) [][]int {
	p := m.Order()
	seedOrder, buildOrder := greedyOrders(m, sizes)

	grouped := make([]bool, p)
	affinity := make([]float64, p)
	out := make([][]int, len(sizes))
	next := 0
	for _, gi := range buildOrder {
		a := sizes[gi]
		if a == 0 {
			continue
		}
		for next < p && grouped[seedOrder[next]] {
			next++
		}
		seed := seedOrder[next]
		g := make([]int, 0, a)
		g = append(g, seed)
		grouped[seed] = true
		for i := range affinity {
			affinity[i] = 0
		}
		for len(g) < a {
			last := g[len(g)-1]
			bestE, bestAff := -1, -1.0
			for i := 0; i < p; i++ {
				if grouped[i] {
					continue
				}
				affinity[i] += m.At(last, i) + m.At(i, last)
				if affinity[i] > bestAff {
					bestE, bestAff = i, affinity[i]
				}
			}
			g = append(g, bestE)
			grouped[bestE] = true
		}
		out[gi] = g
	}
	return out
}

// greedyOrders computes the seed order (entities by descending row volume,
// stable, so ties stay in index order) and the build order (groups by
// descending target size) shared by both greedy implementations.
func greedyOrders(m *comm.Matrix, sizes []int) (seedOrder, buildOrder []int) {
	p := m.Order()
	vol := make([]float64, p)
	seedOrder = make([]int, p)
	for i := range seedOrder {
		seedOrder[i] = i
		vol[i] = m.RowVolume(i)
	}
	sort.SliceStable(seedOrder, func(x, y int) bool { return vol[seedOrder[x]] > vol[seedOrder[y]] })

	buildOrder = make([]int, len(sizes))
	for i := range buildOrder {
		buildOrder[i] = i
	}
	sort.SliceStable(buildOrder, func(a, b int) bool { return sizes[buildOrder[a]] > sizes[buildOrder[b]] })
	return seedOrder, buildOrder
}

// affEntry is one lazy heap entry of greedySizedGroupsHeap: the affinity an
// entity had when pushed. Entries go stale when the affinity grows or the
// entity is grouped; stale entries are discarded on pop.
type affEntry struct {
	aff float64
	e   int
}

// affHeap is a max-heap by (affinity desc, entity index asc) — exactly the
// tie-break of the full affinity scan, which takes the first strict maximum
// scanning indices upward.
type affHeap []affEntry

func (h affHeap) Len() int { return len(h) }
func (h affHeap) Less(i, j int) bool {
	return h[i].aff > h[j].aff || (h[i].aff == h[j].aff && h[i].e < h[j].e)
}
func (h affHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *affHeap) Push(x interface{}) { *h = append(*h, x.(affEntry)) }
func (h *affHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// greedySizedGroupsHeap fills groups touching only the neighbors of each
// added member. For a symmetric non-negative matrix it is bit-identical to
// the full scan: affinities accumulate the same terms in the same member
// order (v + v here equals At(last,i) + At(i,last) there); entities never
// touched keep affinity exactly 0, and since touched affinities are strictly
// positive, the scan's all-zero tie — the lowest ungrouped index — is
// reproduced by a monotone fallback cursor.
func greedySizedGroupsHeap(m *comm.Matrix, sizes []int) [][]int {
	p := m.Order()
	seedOrder, buildOrder := greedyOrders(m, sizes)

	grouped := make([]bool, p)
	affinity := make([]float64, p)
	stamp := make([]int, p) // epoch an affinity value belongs to; 0 = never
	h := make(affHeap, 0, 64)
	out := make([][]int, len(sizes))
	next := 0 // cursor into seedOrder
	low := 0  // globally lowest ungrouped entity (grouped is monotone)
	epoch := 0
	for _, gi := range buildOrder {
		a := sizes[gi]
		if a == 0 {
			continue
		}
		for next < p && grouped[seedOrder[next]] {
			next++
		}
		seed := seedOrder[next]
		epoch++
		h = h[:0]
		g := make([]int, 0, a)
		g = append(g, seed)
		grouped[seed] = true
		for len(g) < a {
			last := g[len(g)-1]
			m.ForEachNeighbor(last, func(j int, v float64) {
				if j == last || grouped[j] {
					return
				}
				if stamp[j] != epoch {
					stamp[j] = epoch
					affinity[j] = 0
				}
				affinity[j] += v + v // symmetric: At(last,j) + At(j,last)
				heap.Push(&h, affEntry{affinity[j], j})
			})
			bestE := -1
			for h.Len() > 0 {
				top := h[0]
				heap.Pop(&h)
				if grouped[top.e] || stamp[top.e] != epoch || affinity[top.e] != top.aff {
					continue // stale entry
				}
				bestE = top.e
				break
			}
			if bestE == -1 {
				// Nothing with positive affinity left: the scan would pick
				// the lowest ungrouped index (affinity 0 beats its initial
				// -1 threshold at the first ungrouped entity).
				for low < p && grouped[low] {
					low++
				}
				bestE = low
			}
			g = append(g, bestE)
			grouped[bestE] = true
		}
		out[gi] = g
	}
	return out
}

// PartitionAcrossMatrix runs PartitionAcross and additionally emits the
// aggregated group-to-group matrix: entry (a,b) is the volume the tasks of
// group a exchange with those of group b (the diagonal holds intra-group
// volume). This matrix is what three-level placement treematch-maps onto the
// fabric tree (FabricTree) to decide which cluster node — and hence which
// rack — each group lands on.
func PartitionAcrossMatrix(m *comm.Matrix, k int, opt Options) ([][]int, *comm.Matrix, error) {
	groups, err := PartitionAcross(m, k, opt)
	if err != nil {
		return nil, nil, err
	}
	agg, err := m.Aggregate(groups)
	if err != nil {
		return nil, nil, err
	}
	return groups, agg, nil
}

// bisectPartition splits the given entities (len(ids) divisible by k) into k
// equal groups by recursive bisection on the sub-matrix they induce. Odd
// factors fall back to direct grouping at that level.
func bisectPartition(m *comm.Matrix, ids []int, k, passes int) ([][]int, error) {
	if k == 1 {
		return [][]int{ids}, nil
	}
	sub := m
	if !isIdentity(ids, m.Order()) {
		var err error
		sub, err = m.Submatrix(ids)
		if err != nil {
			return nil, err
		}
	}
	split := k
	if k%2 == 0 {
		split = 2
	}
	local := GroupProcesses(sub, len(ids)/split, passes)
	if split == k {
		out := make([][]int, k)
		for gi, g := range local {
			for _, e := range g {
				out[gi] = append(out[gi], ids[e])
			}
		}
		return out, nil
	}
	var out [][]int
	for _, g := range local {
		half := make([]int, len(g))
		for i, e := range g {
			half[i] = ids[e]
		}
		deeper, err := bisectPartition(m, half, k/2, passes)
		if err != nil {
			return nil, err
		}
		out = append(out, deeper...)
	}
	return out, nil
}

// mergeFinePartition is the split-finer-then-merge candidate: 2k fine groups
// of half the capacity, aggregated into a 2k-order matrix, then paired into
// the final k groups by affinity.
func mergeFinePartition(m *comm.Matrix, k, passes int) ([][]int, error) {
	fine := GroupProcesses(m, m.Order()/(2*k), passes)
	agg, err := m.Aggregate(fine)
	if err != nil {
		return nil, err
	}
	pairs := GroupProcesses(agg, 2, passes)
	out := make([][]int, k)
	for gi, pr := range pairs {
		for _, f := range pr {
			out[gi] = append(out[gi], fine[f]...)
		}
	}
	return out, nil
}

// isIdentity reports whether ids is exactly 0..n-1, in which case a
// Submatrix copy would be the matrix itself.
func isIdentity(ids []int, n int) bool {
	if len(ids) != n {
		return false
	}
	for i, e := range ids {
		if e != i {
			return false
		}
	}
	return true
}

// coarsenPartition is the multilevel candidate: repeatedly pair the
// strongest-affine entities and aggregate, until the coarse order is within
// a small multiple of k, then partition the coarse graph and expand. The
// coarse entities carry the accumulated affinity structure, so the final
// grouping sees block-level weights instead of uniform lattice edges.
func coarsenPartition(m *comm.Matrix, k, passes int) ([][]int, error) {
	cover := make([][]int, m.Order())
	for i := range cover {
		cover[i] = []int{i}
	}
	mat := m
	for mat.Order() > 4*k && mat.Order()%2 == 0 && (mat.Order()/2)%k == 0 {
		pairs := GroupProcesses(mat, 2, passes)
		next := make([][]int, len(pairs))
		for gi, g := range pairs {
			for _, e := range g {
				next[gi] = append(next[gi], cover[e]...)
			}
		}
		var err error
		mat, err = mat.Aggregate(pairs)
		if err != nil {
			return nil, err
		}
		cover = next
	}
	coarse := GroupProcesses(mat, mat.Order()/k, passes)
	out := make([][]int, k)
	for gi, g := range coarse {
		for _, e := range g {
			out[gi] = append(out[gi], cover[e]...)
		}
	}
	return out, nil
}

// GroupProcesses partitions the p entities of the matrix into p/a groups of
// exactly a entities each, trying to maximize the communication volume kept
// inside groups (equivalently, to minimize the volume cut between groups).
// This is the GroupProcesses step of Algorithm 1: the groups formed at one
// level become the entities of the level above.
//
// p must be divisible by a (Map guarantees this by padding the matrix with
// zero-volume virtual entities). The heuristic is the one used by fast
// TreeMatch variants: greedy affinity-ordered seeding followed by bounded
// pairwise-swap refinement. It is deterministic: ties are broken towards the
// lowest entity index.
func GroupProcesses(m *comm.Matrix, a int, refinePasses int) [][]int {
	p := m.Order()
	if a <= 0 || p%a != 0 {
		panic("treematch: GroupProcesses requires a > 0 dividing the matrix order")
	}
	k := p / a
	groups := greedyGroups(m, a, k)
	if refinePasses > 0 && k > 1 && a > 1 {
		refineGroups(m, groups, refinePasses)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

// greedyGroups seeds each group with the heaviest-communicating ungrouped
// entity and fills it with the ungrouped entities that have the strongest
// affinity to the group so far. It is the uniform-size special case of
// greedySizedGroups (the classic TreeMatch ordering).
func greedyGroups(m *comm.Matrix, a, k int) [][]int {
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = a
	}
	return greedySizedGroups(m, sizes)
}

// refineGroups improves the partition with pairwise swaps between groups
// (a bounded Kernighan–Lin pass): swap x∈g1 with y∈g2 whenever that strictly
// increases the intra-group volume. Each pass scans all group pairs once.
func refineGroups(m *comm.Matrix, groups [][]int, passes int) {
	k := len(groups)
	intra := func(e int, g []int, excl int) float64 {
		var s float64
		for _, u := range g {
			if u != e && u != excl {
				s += m.At(e, u) + m.At(u, e)
			}
		}
		return s
	}
	for pass := 0; pass < passes; pass++ {
		improved := false
		for g1 := 0; g1 < k; g1++ {
			for g2 := g1 + 1; g2 < k; g2++ {
				for xi := range groups[g1] {
					for yi := range groups[g2] {
						x, y := groups[g1][xi], groups[g2][yi]
						gain := intra(x, groups[g2], y) + intra(y, groups[g1], x) -
							intra(x, groups[g1], -1) - intra(y, groups[g2], -1)
						if gain > 1e-12 {
							groups[g1][xi], groups[g2][yi] = y, x
							improved = true
						}
					}
				}
			}
		}
		if !improved {
			return
		}
	}
}

// crossingStats counts the entities with at least one positive-volume edge
// leaving their group — the streams a partition sends across the fabric —
// in total and for the most exposed single group (the bottleneck NIC under
// per-link contention). A single sweep over the nonzero entries marks both
// endpoints of every positive cross-group pair; the counts are integers, so
// the result is exactly the one the historical O(n²) scan produced.
func crossingStats(m *comm.Matrix, groups [][]int) (total, peak int) {
	n := m.Order()
	group := make([]int, n)
	for gi, g := range groups {
		for _, e := range g {
			group[e] = gi
		}
	}
	crossing := make([]bool, n)
	for i := 0; i < n; i++ {
		m.ForEachNeighbor(i, func(j int, v float64) {
			if j == i || group[i] == group[j] || (crossing[i] && crossing[j]) {
				return
			}
			// Pairs with either direction stored are the only ones whose
			// volume sum can be positive.
			if v+m.At(j, i) > 0 {
				crossing[i] = true
				crossing[j] = true
			}
		})
	}
	perGroup := make([]int, len(groups))
	for i, c := range crossing {
		if c {
			total++
			perGroup[group[i]]++
		}
	}
	for _, c := range perGroup {
		if c > peak {
			peak = c
		}
	}
	return total, peak
}

// intraVolume returns the total communication volume kept inside the groups
// (both directions). Useful as a quality metric for tests and ablations.
func intraVolume(m *comm.Matrix, groups [][]int) float64 {
	var s float64
	for _, g := range groups {
		for _, i := range g {
			for _, j := range g {
				if i != j {
					s += m.At(i, j)
				}
			}
		}
	}
	return s
}
