package kernels

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/topology"
)

// runORWL builds and runs a real-mode LK23 program and returns the result.
func runORWL(t *testing.T, g *Grid, bx, by, iters int, rt *orwl.Runtime) *Grid {
	t.Helper()
	if rt == nil {
		rt = orwl.NewRuntime(orwl.Options{})
	}
	prog, err := Build(rt, g.Rows, g.Cols, BuildOptions{
		BX: bx, BY: by, Iters: iters, Costs: LK23Costs, Grid: g, Cell: g.Cell,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	res, err := prog.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return res
}

// TestORWLMatchesSequential is the central validation of the paper's §III
// decomposition: the block-parallel ORWL implementation must reproduce the
// sequential Jacobi reference bit for bit, for several block grids
// including uneven splits and single-row/column blocks.
func TestORWLMatchesSequential(t *testing.T) {
	cases := []struct {
		rows, cols, bx, by, iters int
	}{
		{12, 12, 1, 1, 3},
		{12, 12, 2, 2, 5},
		{12, 12, 3, 2, 5},
		{13, 11, 3, 3, 4}, // uneven splits
		{16, 8, 4, 1, 6},  // single block row
		{8, 16, 1, 4, 6},  // single block column
		{9, 9, 3, 3, 1},   // single iteration
	}
	for _, tc := range cases {
		g := NewGrid(tc.rows, tc.cols, 11)
		want := RunJacobiLK23(g, tc.iters)
		got := runORWL(t, g, tc.bx, tc.by, tc.iters, nil)
		if !got.Equal(want, 0) {
			t.Errorf("%dx%d blocks %dx%d iters %d: ORWL differs from sequential (max diff %g)",
				tc.rows, tc.cols, tc.bx, tc.by, tc.iters, got.MaxAbsDiff(want))
		}
	}
}

func TestORWLMatchesSequentialHeat(t *testing.T) {
	g := NewGrid(14, 10, 21)
	cell := HeatCell(0.2)
	want := RunJacobi(g, cell, 7)
	rt := orwl.NewRuntime(orwl.Options{})
	prog, err := Build(rt, g.Rows, g.Cols, BuildOptions{
		BX: 2, BY: 3, Iters: 7, Costs: HeatCosts, Grid: g, Cell: cell,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := prog.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Errorf("heat ORWL differs from sequential (max diff %g)", got.MaxAbsDiff(want))
	}
}

func TestORWLMatchesSequentialOnSimMachine(t *testing.T) {
	// The virtual-time machinery must not perturb the numerics, bound or
	// unbound.
	top, err := topology.FromSpec("pack:2 l3:1 core:4 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	for _, bind := range []bool{true, false} {
		mach, err := numasim.New(top, numasim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: 9})
		g := NewGrid(12, 12, 13)
		want := RunJacobiLK23(g, 4)
		prog, err := Build(rt, 12, 12, BuildOptions{
			BX: 2, BY: 2, Iters: 4, Costs: LK23Costs, Grid: g, Cell: g.Cell,
		})
		if err != nil {
			t.Fatal(err)
		}
		if bind {
			for i, task := range prog.Tasks {
				if err := rt.Bind(task, (i/9)*2); err != nil { // 9 ops per block share a core
					t.Fatal(err)
				}
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		got, err := prog.Result()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 0) {
			t.Errorf("bind=%v: simulated run changed the numerics (max diff %g)",
				bind, got.MaxAbsDiff(want))
		}
		if rt.MakespanSeconds() <= 0 {
			t.Errorf("bind=%v: no simulated time accumulated", bind)
		}
	}
}

func TestCostOnlyProgram(t *testing.T) {
	top, err := topology.FromSpec("pack:2 core:4 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	mach, err := numasim.New(top, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: 1})
	prog, err := Build(rt, 1024, 1024, BuildOptions{
		BX: 4, BY: 2, Iters: 3, Costs: LK23Costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range prog.Tasks {
		if err := rt.Bind(task, i/9); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.MakespanSeconds() <= 0 {
		t.Errorf("cost-only makespan = %v", rt.MakespanSeconds())
	}
	if _, err := prog.Result(); err == nil {
		t.Errorf("Result on cost-only program succeeded")
	}
}

func TestBuildErrors(t *testing.T) {
	rt := orwl.NewRuntime(orwl.Options{})
	g := NewGrid(8, 8, 1)
	if _, err := Build(rt, 8, 8, BuildOptions{BX: 2, BY: 2, Iters: 0}); err == nil {
		t.Errorf("zero iters accepted")
	}
	if _, err := Build(rt, 9, 9, BuildOptions{BX: 2, BY: 2, Iters: 1, Grid: g}); err == nil {
		t.Errorf("mismatched grid accepted")
	}
	if _, err := Build(rt, 8, 8, BuildOptions{BX: 2, BY: 2, Iters: 1, Grid: g}); err == nil {
		t.Errorf("real mode without Cell accepted")
	}
	if _, err := Build(rt, 8, 8, BuildOptions{BX: 99, BY: 2, Iters: 1}); err == nil {
		t.Errorf("oversized block grid accepted")
	}
}

// TestCommMatrixMatchesSynthetic cross-validates the two independent
// derivations of the affinity matrix: the one the ORWL runtime extracts
// from the real program and the synthetic generator used in unit tests.
func TestCommMatrixMatchesSynthetic(t *testing.T) {
	rt := orwl.NewRuntime(orwl.Options{})
	// 12x12 grid in 3x2 blocks: every block is 4 rows x 6... rows/by=6,
	// cols/bx=4: blocks are 6x4 (H=6, W=4), uniform, so the synthetic
	// generator's uniform volumes apply exactly.
	prog, err := Build(rt, 12, 12, BuildOptions{BX: 3, BY: 2, Iters: 1, Costs: LK23Costs})
	if err != nil {
		t.Fatal(err)
	}
	got := prog.CommMatrix()
	b := prog.Part.Block(0, 0)
	want := comm.LK23OpLevel(3, 2, b.W, b.H, 8)
	if got.Order() != want.Order() {
		t.Fatalf("order %d vs %d", got.Order(), want.Order())
	}
	if !got.Equal(want, 1e-9) {
		// Locate the first mismatch for the report.
		for i := 0; i < got.Order(); i++ {
			for j := 0; j < got.Order(); j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("affinity(%s,%s) = %v, synthetic %v",
						got.Label(i), got.Label(j), got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestMainTaskLookup(t *testing.T) {
	rt := orwl.NewRuntime(orwl.Options{})
	prog, err := Build(rt, 8, 8, BuildOptions{BX: 2, BY: 2, Iters: 1, Costs: LK23Costs})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.MainTask(1, 1).Name(); got != "b(1,1).main" {
		t.Errorf("MainTask(1,1) = %q", got)
	}
	if len(prog.Tasks) != 2*2*comm.OpsPerBlock {
		t.Errorf("task count = %d", len(prog.Tasks))
	}
}
