package comm

import "sync"

// Window accumulates communication volumes over a bounded horizon: the
// runtime feeds it every observed handoff, and at each epoch boundary the
// placement engine takes a snapshot and rolls the window forward. Rolling
// either clears the accumulation (decay 0, a hard per-epoch window) or
// scales it by a decay factor in (0,1), an exponentially weighted moving
// sum that favours recent traffic without forgetting the past outright.
//
// Where Runtime.MeasuredCommMatrix grows without bound over a run — and
// therefore converges to the time-averaged pattern, hiding phase changes —
// a Window sees mostly the traffic since the previous epoch, which is what
// an adaptive re-placement decision must react to.
//
// A Window is safe for concurrent use.
type Window struct {
	mu    sync.Mutex
	cur   *Matrix
	spare *Matrix // recycled snapshot storage, see Recycle
}

// NewWindow returns an empty window over n entities.
func NewWindow(n int) *Window {
	return &Window{cur: New(n)}
}

// Order returns the number of entities the window tracks.
func (w *Window) Order() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur.Order()
}

// AddSym accumulates one observed exchange of vol bytes between entities i
// and j onto both (i,j) and (j,i).
func (w *Window) AddSym(i, j int, vol float64) {
	w.mu.Lock()
	w.cur.AddSym(i, j, vol)
	w.mu.Unlock()
}

// Snapshot returns a copy of the current accumulation without rolling the
// window.
func (w *Window) Snapshot() *Matrix {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur.Clone()
}

// Roll returns a snapshot of the accumulation and rolls the window forward:
// every entry is scaled by decay, so 0 resets the window entirely and a
// factor in (0,1) keeps a decayed memory of earlier epochs. Decay values
// outside [0,1) are treated as 0.
//
// The accumulation decays in place — the backing storage of the window is
// allocated once and reused across every epoch, instead of the
// allocate-and-copy-O(n²) per epoch the window used to cost. The snapshot
// reuses storage handed back via Recycle when available.
func (w *Window) Roll(decay float64) *Matrix {
	if !(decay >= 0 && decay < 1) { // coerces NaN too, not only out-of-range
		decay = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var snap *Matrix
	if s := w.spare; s != nil && s.n == w.cur.n && s.IsSparse() == w.cur.IsSparse() {
		w.spare = nil
		s.copyFrom(w.cur)
		snap = s
	} else {
		snap = w.cur.Clone()
	}
	if decay == 0 {
		w.cur.zero()
	} else {
		w.cur.Scale(decay)
	}
	return snap
}

// Recycle hands a snapshot previously returned by Roll or Snapshot back to
// the window, letting the next Roll reuse its storage instead of allocating.
// The caller must no longer use the matrix afterwards. Recycling is strictly
// optional: callers that retain their snapshots simply never recycle them.
func (w *Window) Recycle(m *Matrix) {
	if m == nil {
		return
	}
	w.mu.Lock()
	if w.spare == nil && m != w.cur {
		w.spare = m
	}
	w.mu.Unlock()
}

// zero clears every entry in place, keeping the allocated storage.
func (m *Matrix) zero() {
	if m.rows != nil {
		for i := range m.rows {
			m.rows[i].cols = m.rows[i].cols[:0]
			m.rows[i].vals = m.rows[i].vals[:0]
		}
		return
	}
	for i := range m.v {
		m.v[i] = 0
	}
}

// copyFrom overwrites m with the contents of src (same order and storage
// mode), reusing m's storage where capacity allows.
func (m *Matrix) copyFrom(src *Matrix) {
	if src.rows != nil {
		for i := range src.rows {
			m.rows[i].cols = append(m.rows[i].cols[:0], src.rows[i].cols...)
			m.rows[i].vals = append(m.rows[i].vals[:0], src.rows[i].vals...)
		}
	} else {
		copy(m.v, src.v)
	}
	if src.labels != nil {
		m.labels = append(m.labels[:0], src.labels...)
	} else {
		m.labels = nil
	}
}
