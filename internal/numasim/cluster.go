package numasim

import (
	"fmt"
	"strings"

	"repro/internal/topology"
)

// Cluster is a simulated multi-machine cluster: a set of identical member
// Machines joined by an interconnect fabric priced with per-link latency and
// bandwidth. The cluster is simulated through a single fused Machine whose
// topology carries a cluster level above the per-node trees, so that lock
// handoffs and region pulls crossing a node boundary charge network cycles
// instead of cache or memory cycles (see Machine.TransferCost). The member
// Machines expose each node's shared-memory view for per-node placement
// (hierarchical TreeMatch runs Algorithm 1 on one member's topology).
type Cluster struct {
	fused   *Machine
	members []*Machine
	fabric  Fabric
}

// Fabric describes the cluster interconnect. Zero fields take the defaults
// of topology.DefaultAttrs (a 2016-era 10-Gigabit-Ethernet class network
// with 2×10GbE-class rack uplinks).
type Fabric struct {
	// LinkLatencyCycles is the latency of one fabric (NIC) link in CPU
	// cycles; a message between two nodes of the same switch traverses two
	// such links.
	LinkLatencyCycles float64
	// LinkBandwidthBytesPerSec is the bandwidth of one fabric (NIC) link.
	LinkBandwidthBytesPerSec float64
	// Racks splits the cluster nodes across that many top-of-rack switches
	// (each rack gets an equal share of the nodes; the node count must be
	// divisible). 0 or 1 keeps the flat single-switch fabric. A message
	// between nodes in different racks traverses two NIC links plus two rack
	// uplinks.
	Racks int
	// UplinkLatencyCycles is the latency of one rack uplink (top-of-rack
	// switch to spine) in CPU cycles.
	UplinkLatencyCycles float64
	// UplinkBandwidthBytesPerSec is the bandwidth of one rack uplink, shared
	// by every stream leaving the rack.
	UplinkBandwidthBytesPerSec float64
}

// NewCluster builds a cluster of n identical machines, each described by
// nodeSpec (a single-machine topology spec; it must not itself contain a
// cluster or rack level). The fused simulation machine is built over the
// spec "cluster:n nodeSpec" with the fabric's link attributes on the cluster
// level — or, when fabric.Racks > 1, over "rack:r cluster:n/r nodeSpec"
// with the uplink attributes on the rack level.
func NewCluster(n int, nodeSpec string, fabric Fabric, cfg Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("numasim: cluster needs at least 1 node, got %d", n)
	}
	racks := fabric.Racks
	if racks < 1 {
		racks = 1
	}
	if n%racks != 0 {
		return nil, fmt.Errorf("numasim: %d cluster nodes not divisible across %d racks", n, racks)
	}
	def := topology.DefaultAttrs()
	if fabric.LinkLatencyCycles > 0 {
		def.NetLatencyCycles = fabric.LinkLatencyCycles
	}
	if fabric.LinkBandwidthBytesPerSec > 0 {
		def.NetBandwidth = fabric.LinkBandwidthBytesPerSec
	}
	if fabric.UplinkLatencyCycles > 0 {
		def.UplinkLatencyCycles = fabric.UplinkLatencyCycles
	}
	if fabric.UplinkBandwidthBytesPerSec > 0 {
		def.UplinkBandwidth = fabric.UplinkBandwidthBytesPerSec
	}
	fabric = Fabric{
		LinkLatencyCycles:          def.NetLatencyCycles,
		LinkBandwidthBytesPerSec:   def.NetBandwidth,
		Racks:                      racks,
		UplinkLatencyCycles:        def.UplinkLatencyCycles,
		UplinkBandwidthBytesPerSec: def.UplinkBandwidth,
	}

	member, err := topology.FromSpecAttrs(nodeSpec, def)
	if err != nil {
		return nil, fmt.Errorf("numasim: cluster node spec: %w", err)
	}
	if len(member.ClusterNodes()) > 0 || len(member.Racks()) > 0 {
		return nil, fmt.Errorf("numasim: node spec %q already contains a cluster level or rack level", nodeSpec)
	}
	fusedSpec := fmt.Sprintf("cluster:%d %s", n, member.Spec())
	if racks > 1 {
		fusedSpec = fmt.Sprintf("rack:%d cluster:%d %s", racks, n/racks, member.Spec())
	}
	fusedTopo, err := topology.FromSpecAttrs(fusedSpec, def)
	if err != nil {
		return nil, fmt.Errorf("numasim: fused cluster spec: %w", err)
	}
	fused, err := New(fusedTopo, cfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{fused: fused, fabric: fabric}
	for i := 0; i < n; i++ {
		mm, err := New(member, cfg)
		if err != nil {
			return nil, err
		}
		c.members = append(c.members, mm)
		if i+1 < n {
			// Each member gets its own topology instance so per-node state
			// (accessors, bound Procs) stays independent.
			member, err = topology.FromSpecAttrs(member.Spec(), def)
			if err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// ClusterFromSpec builds a cluster from a full cluster topology spec such as
// "node:4 pack:2 core:8", "cluster:2 core:16" or — with a rack tier —
// "rack:2 node:4 pack:2 core:8". A spec without a cluster level yields a
// single-node cluster; a rack tier in the spec overrides fabric.Racks.
func ClusterFromSpec(spec string, fabric Fabric, cfg Config) (*Cluster, error) {
	t, err := topology.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	n := t.NumClusterNodes()
	nodeSpec := t.Spec()
	if t.NumRacks() > 0 {
		fabric.Racks = t.NumRacks()
	}
	if len(t.ClusterNodes()) > 0 {
		// Strip the leading "rack:R" and "cluster:N" tokens of the normalized
		// spec to recover the per-node machine spec.
		fields := strings.Fields(nodeSpec)
		drop := 1
		if t.NumRacks() > 0 {
			drop = 2
		}
		for _, f := range fields[:drop] {
			if strings.Contains(f, ",") {
				return nil, fmt.Errorf("numasim: uneven fabric level %q is not supported", f)
			}
		}
		nodeSpec = strings.Join(fields[drop:], " ")
	}
	return NewCluster(n, nodeSpec, fabric, cfg)
}

// Machine returns the fused cluster-wide simulation machine the runtime
// executes on: PUs, cores and NUMA nodes of all members in left-to-right
// order, with fabric-priced cross-node costs.
func (c *Cluster) Machine() *Machine { return c.fused }

// Nodes returns the number of cluster nodes.
func (c *Cluster) Nodes() int { return len(c.members) }

// Node returns the i-th member machine: the shared-memory view of one
// cluster node, used for per-node placement.
func (c *Cluster) Node(i int) *Machine { return c.members[i] }

// Fabric returns the effective interconnect parameters.
func (c *Cluster) Fabric() Fabric { return c.fabric }

// Racks returns the number of top-of-rack switches (1 on a flat fabric).
func (c *Cluster) Racks() int {
	if r := c.fused.Topology().NumRacks(); r > 0 {
		return r
	}
	return 1
}

// RackOfNode returns the rack index of a cluster node (0 on a flat fabric).
func (c *Cluster) RackOfNode(i int) int { return c.fused.RackOfClusterNode(i) }

// NodeOfPU returns the cluster-node index owning a fused-machine PU.
func (c *Cluster) NodeOfPU(pu int) int { return c.fused.ClusterNodeOfPU(pu) }
