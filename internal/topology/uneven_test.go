package topology

import (
	"strings"
	"testing"
)

func TestUnevenSpec(t *testing.T) {
	top, err := FromSpec("pack:3 core:2,1,1 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	if got := top.NumCores(); got != 4 {
		t.Errorf("NumCores = %d, want 4", got)
	}
	if got := top.NumPUs(); got != 4 {
		t.Errorf("NumPUs = %d, want 4", got)
	}
	packs := top.Level(top.DepthOf(Package))
	if len(packs) != 3 {
		t.Fatalf("%d packages, want 3", len(packs))
	}
	wantCores := []int{2, 1, 1}
	for i, p := range packs {
		n := 0
		for _, c := range top.Cores() {
			if c.Ancestor(Package) == p {
				n++
			}
		}
		if n != wantCores[i] {
			t.Errorf("package %d carries %d cores, want %d", i, n, wantCores[i])
		}
	}
	if err := top.Validate(); err != nil {
		t.Errorf("uneven topology failed validation: %v", err)
	}
	if got := top.Spec(); !strings.Contains(got, "core:2,1,1") {
		t.Errorf("canonical spec %q lost the uneven counts", got)
	}
}

func TestUnevenSpecCountMismatch(t *testing.T) {
	if _, err := FromSpec("pack:3 core:2,1 pu:1"); err == nil {
		t.Errorf("2 counts for 3 packages accepted")
	}
	if _, err := FromSpec("pack:2 core:1,0 pu:1"); err == nil {
		t.Errorf("zero count accepted")
	}
}
