package topology

import "fmt"

// FaultKind classifies one scheduled platform failure.
type FaultKind int

const (
	// FaultKillNode removes a cluster node: its PUs and memory become
	// unreachable and every task placed there must be evacuated.
	FaultKillNode FaultKind = iota
	// FaultDegradeEdge multiplies one fabric edge's bandwidth by a factor in
	// (0,1) — a flapping link, a failed lane of a trunked uplink. Latency is
	// untouched: the wire is as long as before, it just carries less.
	FaultDegradeEdge
	// FaultSeverEdge cuts one fabric edge entirely: every routed path through
	// it becomes unusable.
	FaultSeverEdge
)

// String names the kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultKillNode:
		return "kill-node"
	case FaultDegradeEdge:
		return "degrade-edge"
	case FaultSeverEdge:
		return "sever-edge"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scheduled failure: at the start of epoch Epoch (1-based,
// matching orwl.Epoch.Index) the named cluster node dies, or the named
// fabric-graph edge (an index into FabricGraph().Edges()) is degraded by
// Factor or severed.
type FaultEvent struct {
	Epoch int
	Kind  FaultKind
	// Node is the cluster-node index for FaultKillNode.
	Node int
	// Edge is the fabric-graph edge id for FaultDegradeEdge/FaultSeverEdge.
	Edge int
	// Factor is the bandwidth multiplier of FaultDegradeEdge, in (0,1)
	// exclusive; successive degrades of one edge compound multiplicatively.
	Factor float64
}

// String renders the event for diagnostics and error messages.
func (e FaultEvent) String() string {
	switch e.Kind {
	case FaultKillNode:
		return fmt.Sprintf("epoch %d: kill node %d", e.Epoch, e.Node)
	case FaultDegradeEdge:
		return fmt.Sprintf("epoch %d: degrade edge %d by %g", e.Epoch, e.Edge, e.Factor)
	case FaultSeverEdge:
		return fmt.Sprintf("epoch %d: sever edge %d", e.Epoch, e.Edge)
	default:
		return fmt.Sprintf("epoch %d: %v", e.Epoch, e.Kind)
	}
}

// FaultSchedule is an ordered set of failures injected into a run. The
// adaptive engine queries it at every epoch boundary and installs the
// matching events into the machine's pricing; a nil or empty schedule is a
// no-op on every path.
type FaultSchedule struct {
	Events []FaultEvent
}

// FaultState is the cumulative platform damage after some epoch: which
// cluster nodes are dead and each fabric edge's remaining bandwidth fraction
// (1 = healthy, 0 = severed).
type FaultState struct {
	DeadNodes  []bool
	EdgeFactor []float64
}

// Validate checks the schedule against a platform topology: every event must
// address an existing cluster node or fabric edge at an epoch >= 1, degrade
// factors must lie in (0,1), no node may die twice, no edge may take two
// events at one epoch or any event after being severed, and at least one
// cluster node must survive. Events may be listed in any order; validation
// replays them sorted by epoch (ties in listed order).
func (s *FaultSchedule) Validate(t *Topology) error {
	if s == nil || len(s.Events) == 0 {
		return nil
	}
	numC := t.NumClusterNodes()
	g := t.FabricGraph()
	if numC < 2 || g == nil {
		return fmt.Errorf("topology: fault schedule needs a multi-node platform with a fabric (have %d cluster nodes)", numC)
	}
	dead := make([]bool, numC)
	severed := make([]bool, g.NumEdges())
	touched := make(map[[2]int]bool) // (edge, epoch) pairs already faulted
	deaths := 0
	for _, ev := range s.chronological() {
		if ev.Epoch < 1 {
			return fmt.Errorf("topology: fault %v: epochs are 1-based", ev)
		}
		switch ev.Kind {
		case FaultKillNode:
			if ev.Node < 0 || ev.Node >= numC {
				return fmt.Errorf("topology: fault %v: unknown cluster node (have %d)", ev, numC)
			}
			if dead[ev.Node] {
				return fmt.Errorf("topology: fault %v: node already dead", ev)
			}
			dead[ev.Node] = true
			if deaths++; deaths == numC {
				return fmt.Errorf("topology: fault schedule kills every cluster node")
			}
		case FaultDegradeEdge, FaultSeverEdge:
			if ev.Edge < 0 || ev.Edge >= g.NumEdges() {
				return fmt.Errorf("topology: fault %v: unknown fabric edge (have %d)", ev, g.NumEdges())
			}
			if severed[ev.Edge] {
				return fmt.Errorf("topology: fault %v: edge already severed", ev)
			}
			if key := [2]int{ev.Edge, ev.Epoch}; touched[key] {
				return fmt.Errorf("topology: fault %v: conflicting events on one edge at one epoch", ev)
			} else {
				touched[key] = true
			}
			if ev.Kind == FaultDegradeEdge {
				if !(ev.Factor > 0 && ev.Factor < 1) {
					return fmt.Errorf("topology: fault %v: degrade factor outside (0,1)", ev)
				}
			} else {
				severed[ev.Edge] = true
			}
		default:
			return fmt.Errorf("topology: fault %v: unknown kind", ev)
		}
	}
	return nil
}

// EventsAt returns the events scheduled for one epoch, in listed order.
func (s *FaultSchedule) EventsAt(epoch int) []FaultEvent {
	if s == nil {
		return nil
	}
	var out []FaultEvent
	for _, ev := range s.Events {
		if ev.Epoch == epoch {
			out = append(out, ev)
		}
	}
	return out
}

// MaxEpoch returns the latest epoch any event is scheduled for (0 when the
// schedule is empty).
func (s *FaultSchedule) MaxEpoch() int {
	if s == nil {
		return 0
	}
	mx := 0
	for _, ev := range s.Events {
		if ev.Epoch > mx {
			mx = ev.Epoch
		}
	}
	return mx
}

// StateAt replays the schedule up to and including the given epoch and
// returns the cumulative damage. The schedule must have passed Validate.
func (s *FaultSchedule) StateAt(t *Topology, epoch int) FaultState {
	st := FaultState{DeadNodes: make([]bool, t.NumClusterNodes())}
	if g := t.FabricGraph(); g != nil {
		st.EdgeFactor = make([]float64, g.NumEdges())
		for i := range st.EdgeFactor {
			st.EdgeFactor[i] = 1
		}
	}
	if s == nil {
		return st
	}
	for _, ev := range s.chronological() {
		if ev.Epoch > epoch {
			break
		}
		switch ev.Kind {
		case FaultKillNode:
			if ev.Node >= 0 && ev.Node < len(st.DeadNodes) {
				st.DeadNodes[ev.Node] = true
			}
		case FaultDegradeEdge:
			if ev.Edge >= 0 && ev.Edge < len(st.EdgeFactor) {
				st.EdgeFactor[ev.Edge] *= ev.Factor
			}
		case FaultSeverEdge:
			if ev.Edge >= 0 && ev.Edge < len(st.EdgeFactor) {
				st.EdgeFactor[ev.Edge] = 0
			}
		}
	}
	return st
}

// chronological returns the events sorted by epoch, stable in listed order —
// an insertion sort, since schedules hold a handful of events.
func (s *FaultSchedule) chronological() []FaultEvent {
	out := append([]FaultEvent(nil), s.Events...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Epoch < out[j-1].Epoch; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
