// Heat diffusion on the ORWL model: the same block decomposition as the
// Livermore kernel drives an explicit 5-point heat stencil — showing that
// the decomposition, the runtime and the placement module are generic over
// the cell update. A hot square in the centre of the plate diffuses
// outwards; the example prints a coarse thermal rendering before and after.
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/kernels"
)

const (
	n     = 96
	iters = 150
	alpha = 0.2
)

func main() {
	sys, err := repro.NewSystem(repro.SystemOptions{
		TopologySpec: "pack:2 l3:1 core:4 pu:2", Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A cold plate with a hot square in the middle.
	g := kernels.NewGrid(n, n, 1)
	for i := range g.ZA {
		g.ZA[i] = 0
	}
	for k := n / 3; k < 2*n/3; k++ {
		for j := n / 3; j < 2*n/3; j++ {
			g.ZA[g.Idx(k, j)] = 1
		}
	}
	fmt.Println("before:")
	render(g)

	cell := kernels.HeatCell(alpha)
	prog, err := kernels.Build(sys.Runtime(), n, n, kernels.BuildOptions{
		BX: 2, BY: 4, Iters: iters,
		Costs: kernels.HeatCosts, Grid: g, Cell: cell,
	})
	if err != nil {
		log.Fatal(err)
	}
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	if err := sys.Run(heavy); err != nil {
		log.Fatal(err)
	}
	got, err := prog.Result()
	if err != nil {
		log.Fatal(err)
	}
	if want := kernels.RunJacobi(g, cell, iters); !got.Equal(want, 0) {
		log.Fatalf("parallel heat differs from the reference (max %g)", got.MaxAbsDiff(want))
	}

	fmt.Println("after", iters, "iterations (validated against the sequential reference):")
	render(got)
	fmt.Print(sys.Report())
}

// render prints the grid as a coarse ASCII heatmap.
func render(g *kernels.Grid) {
	const cells = 24
	shades := []byte(" .:-=+*#%@")
	step := g.Rows / cells
	for k := 0; k < cells; k++ {
		for j := 0; j < cells; j++ {
			// Average the patch.
			var s float64
			for a := 0; a < step; a++ {
				for b := 0; b < step; b++ {
					s += g.At(k*step+a, j*step+b)
				}
			}
			s /= float64(step * step)
			idx := int(s * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Printf("%c", shades[idx])
		}
		fmt.Println()
	}
}
