package numasim

import (
	"testing"

	"repro/internal/topology"
)

func migrateMachine(t *testing.T) *Machine {
	t.Helper()
	topo, err := topology.FromSpec("pack:2 l3:1 core:2 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMigrateToChargesPenaltyAndGoesCold(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocOn("data", 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.SweepWorkingSet(r, 1<<10) // warm the caches
	before := p.Clock()

	if err := p.MigrateTo(2); err != nil { // core on the other socket
		t.Fatal(err)
	}
	if got := p.Clock() - before; got != m.Config().MigrationPenaltyCycles {
		t.Errorf("migration charged %v cycles, want the penalty %v", got, m.Config().MigrationPenaltyCycles)
	}
	if p.PU() != 2 {
		t.Errorf("Proc on PU %d after MigrateTo(2)", p.PU())
	}
	if p.Stats().Migrations != 1 {
		t.Errorf("migrations = %d, want 1", p.Stats().Migrations)
	}

	// Cold caches: the next sweep of a cache-resident set pays full traffic.
	warmStart := p.Clock()
	p.SweepWorkingSet(r, 1<<10)
	coldCost := p.Clock() - warmStart
	warmStart = p.Clock()
	p.SweepWorkingSet(r, 1<<10)
	warmCost := p.Clock() - warmStart
	if coldCost <= warmCost {
		t.Errorf("post-migration sweep %v not costlier than warm sweep %v", coldCost, warmCost)
	}
}

func TestMigrateToSamePUFree(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MigrateTo(1); err != nil {
		t.Fatal(err)
	}
	if p.Clock() != 0 || p.Stats().Migrations != 0 {
		t.Errorf("no-op migration charged clock=%v migrations=%d", p.Clock(), p.Stats().Migrations)
	}
}

func TestMigrateToPinsUnboundProc(t *testing.T) {
	m := migrateMachine(t)
	p := m.NewUnboundProc("roamer", 1)
	if err := p.MigrateTo(3); err != nil {
		t.Fatal(err)
	}
	if !p.Bound() || p.PU() != 3 {
		t.Errorf("after MigrateTo: bound=%v pu=%d, want pinned to 3", p.Bound(), p.PU())
	}
	// A pinned Proc no longer follows the simulated OS scheduler.
	for i := 0; i < 10; i++ {
		p.Reschedule(1.0)
	}
	if p.PU() != 3 {
		t.Errorf("pinned Proc migrated by Reschedule to PU %d", p.PU())
	}
}

func TestPlaceAtIsFree(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PlaceAt(2); err != nil {
		t.Fatal(err)
	}
	if p.Clock() != 0 {
		t.Errorf("PlaceAt charged %v cycles, want 0", p.Clock())
	}
	if p.PU() != 2 || p.Stats().Migrations != 1 {
		t.Errorf("PlaceAt: pu=%d migrations=%d", p.PU(), p.Stats().Migrations)
	}
}

func TestMigrateRegionRehomesAndCharges(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 2) // socket 1
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocOn("block", 1<<20, 0) // socket 0's node
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MigrateRegion(r); err != nil {
		t.Fatal(err)
	}
	if r.Home() != m.NodeOfPU(2) {
		t.Errorf("region home %d after MigrateRegion, want %d", r.Home(), m.NodeOfPU(2))
	}
	if p.Stats().MemoryCycles <= 0 {
		t.Errorf("region pull charged no memory cycles")
	}
	// Re-homing a local region is free.
	before := p.Clock()
	if err := p.MigrateRegion(r); err != nil {
		t.Fatal(err)
	}
	if p.Clock() != before {
		t.Errorf("local re-home charged %v cycles", p.Clock()-before)
	}
}

func TestMigrateRegionUntouchedFirstTouchFree(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	r := m.AllocFirstTouch("lazy", 1<<20)
	if err := p.MigrateRegion(r); err != nil {
		t.Fatal(err)
	}
	if r.Home() != m.NodeOfPU(2) {
		t.Errorf("untouched region home %d, want %d", r.Home(), m.NodeOfPU(2))
	}
	if p.Clock() != 0 {
		t.Errorf("re-homing an untouched region charged %v cycles", p.Clock())
	}
}

func TestMigrationCostCyclesPredicts(t *testing.T) {
	m := migrateMachine(t)
	if got := m.MigrationCostCycles(0, 0, 1<<20); got != 0 {
		t.Errorf("same-PU migration cost %v, want 0", got)
	}
	near := m.MigrationCostCycles(0, 1, 1<<20) // same socket
	far := m.MigrationCostCycles(0, 2, 1<<20)  // cross socket
	if near <= m.Config().MigrationPenaltyCycles {
		t.Errorf("near migration cost %v does not include the pull", near)
	}
	if far <= near {
		t.Errorf("cross-socket migration %v not costlier than same-socket %v", far, near)
	}
}
