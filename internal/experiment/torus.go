package experiment

import (
	"fmt"
	"time"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
)

// A13: torus halo exchange. A routed torus prices communication by hop
// distance along dimension-order routes, so where each application block
// lands on the grid matters: a layout that keeps logically adjacent blocks
// on physically adjacent nodes pays one hop per halo, a scrambled layout
// pays the torus diameter. The scenario scrambles the blocks' logical grid
// cells with a coprime stride, so the positional group→node order (the
// balanced-tree model's only option on a shaped fabric) inherits the
// scramble, and compares three arms: the routed distance matcher with its
// space-filling-curve seed, the tree-only matcher (which skips shaped
// fabrics), and the affinity-blind round-robin dealer.

// TorusConfig parameterizes one torus halo-exchange run.
type TorusConfig struct {
	// Dims is the torus shape, every dimension at least 2 (default 4x4).
	// The platform has one cluster node per cell.
	Dims []int
	// CoresPerNode and CoresPerSocket shape each member machine (defaults
	// 4 and 4: single-socket nodes).
	CoresPerNode, CoresPerSocket int
	// Iters is the iteration count (default 8).
	Iters int
	// Scramble seeds the deterministic shuffle that assigns block b its
	// logical grid cell. A shuffle (rather than a coprime stride) is
	// required: any affine permutation of a torus keeps much of its
	// adjacency — on a 4x4 grid, stride 5 maps every neighbour pair to
	// another neighbour pair — and the positional group→node order would
	// accidentally stay near-optimal. 0 picks 1; negative disables the
	// scramble (identity layout — diagnostics only, every arm then starts
	// adjacency-optimal).
	Scramble int64
	// BlockBytes is each task's working set (default 1 MiB).
	BlockBytes int64
	// HaloBytes is the per-iteration volume exchanged between grid
	// neighbours inside a node-sized block (default 1 MiB): the heavy
	// coupling that makes the blocks the min-cut partition groups, and the
	// traffic an affinity-blind dealer pays over the fabric when it splits
	// a block across nodes.
	HaloBytes float64
	// WireBytes is the per-iteration volume between slot-aligned tasks of
	// logically adjacent blocks (default 96 KiB): the traffic whose hop
	// count the block layout decides.
	WireBytes float64
	// Fabric overrides the interconnect parameters; zero fields keep the
	// defaults (10GbE-class links on every torus edge).
	Fabric numasim.Fabric
	// Seed drives the simulated OS scheduler.
	Seed int64
}

func (c TorusConfig) withDefaults() TorusConfig {
	if len(c.Dims) == 0 {
		c.Dims = []int{4, 4}
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 4
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 4
	}
	if c.Iters == 0 {
		c.Iters = 8
	}
	if c.Scramble == 0 {
		c.Scramble = 1
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 1 << 20
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 1 << 20
	}
	if c.WireBytes == 0 {
		c.WireBytes = 96 << 10
	}
	return c
}

func (c TorusConfig) cells() int {
	n := 1
	for _, d := range c.Dims {
		n *= d
	}
	return n
}

// torusPerm is the deterministic block→cell shuffle (Fisher–Yates over a
// self-contained xorshift generator, so the layout is bit-stable across
// runs and toolchains). Negative seeds return the identity.
func torusPerm(cells int, seed int64) []int {
	perm := make([]int, cells)
	for i := range perm {
		perm[i] = i
	}
	if seed < 0 {
		return perm
	}
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := cells - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Validate rejects configurations the torus pipeline cannot run.
func (c TorusConfig) Validate() error {
	d := c.withDefaults()
	cells := d.cells()
	switch {
	case len(d.Dims) == 0:
		return fmt.Errorf("experiment: torus scenario needs at least one dimension")
	case cells < 4:
		return fmt.Errorf("experiment: torus scenario needs at least 4 cells, got %d", cells)
	case d.CoresPerNode < 2 || d.CoresPerSocket < 1:
		return fmt.Errorf("experiment: invalid node shape %d cores / %d per socket", d.CoresPerNode, d.CoresPerSocket)
	case d.CoresPerNode%d.CoresPerSocket != 0:
		return fmt.Errorf("experiment: %d cores per node not divisible into sockets of %d", d.CoresPerNode, d.CoresPerSocket)
	case d.Iters < 1:
		return fmt.Errorf("experiment: iteration count %d must be positive", d.Iters)
	case d.BlockBytes < 0 || d.HaloBytes < 0 || d.WireBytes < 0:
		return fmt.Errorf("experiment: negative volume in torus config")
	}
	for _, dim := range d.Dims {
		if dim < 2 {
			return fmt.Errorf("experiment: torus dimension %d below 2 (dims %v)", dim, d.Dims)
		}
	}
	return nil
}

// TorusCluster builds the simulated torus platform for a configuration via
// the spec-driven platform path: one single-switch member machine per torus
// cell, NIC-class links on every torus edge.
func TorusCluster(cfg TorusConfig) (*numasim.Platform, error) {
	cfg = cfg.withDefaults()
	dims := ""
	for i, d := range cfg.Dims {
		if i > 0 {
			dims += "x"
		}
		dims += fmt.Sprint(d)
	}
	spec := fmt.Sprintf("torus:%s pack:%d l3:1 core:%d pu:1",
		dims, cfg.CoresPerNode/cfg.CoresPerSocket, cfg.CoresPerSocket)
	return numasim.NewPlatformAttrs(spec, cfg.Fabric.Defaults(), numasim.Config{})
}

// TorusModes lists the placement arms of the torus ablation in report
// order: the routed distance matcher with its space-filling-curve seed
// first (the speedup base), then the balanced-tree-only matcher (which
// skips shaped fabrics and keeps the scrambled positional order), then the
// affinity-blind round-robin dealer.
func TorusModes() []string {
	return []string{"sfc", "tree-matched", "rr"}
}

// TorusResult reports one torus halo-exchange run.
type TorusResult struct {
	Mode    string
	Seconds float64
	// WallSeconds is the real time the placement pipeline took, the
	// figure the bench tier gates.
	WallSeconds float64
}

// String renders a one-line summary.
func (r TorusResult) String() string {
	return fmt.Sprintf("%-13s time=%8.3fs place=%6.4fs wall", r.Mode, r.Seconds, r.WallSeconds)
}

// torusNeighbors returns the row-major cell ids adjacent to cell on the
// grid (±1 per dimension, wrapping). A dimension of length 2 has a single
// neighbor in that direction (the wrap coincides), deduplicated here.
func torusNeighbors(dims []int, cell int) []int {
	coords := make([]int, len(dims))
	c := cell
	for k := len(dims) - 1; k >= 0; k-- {
		coords[k] = c % dims[k]
		c /= dims[k]
	}
	var out []int
	seen := map[int]bool{cell: true}
	for k := range dims {
		for _, d := range []int{1, dims[k] - 1} {
			n := 0
			for j := range dims {
				x := coords[j]
				if j == k {
					x = (x + d) % dims[j]
				}
				n = n*dims[j] + x
			}
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// buildTorus constructs the torus halo-exchange workload: one task per
// core, grouped into node-sized blocks; block b sits on the logical grid
// cell the Scramble shuffle deals it. Task i of block b
//
//   - reads HaloBytes from its grid neighbours inside the block (a 2-row
//     stencil grid, the heavy stationary coupling that keeps the blocks the
//     min-cut partition groups),
//   - exchanges WireBytes with task i of every logically adjacent block
//     (±1 per torus dimension of the blocks' scrambled cells, wrapping),
//   - and writes its own block location.
//
// All volumes are whole bytes, so the run is bit-deterministic regardless
// of goroutine interleaving.
func buildTorus(rt *orwl.Runtime, cfg TorusConfig) error {
	cfg = cfg.withDefaults()
	blocks := cfg.cells()
	c := cfg.CoresPerNode
	n := blocks * c
	locs := make([]*orwl.Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation(fmt.Sprintf("blk%d.%d", i/c, i%c), cfg.BlockBytes)
	}
	// cellOf scrambles block → logical cell; blockAt inverts it.
	cellOf := torusPerm(blocks, cfg.Scramble)
	blockAt := make([]int, blocks)
	for b, cell := range cellOf {
		blockAt[cell] = b
	}
	cells := float64(cfg.BlockBytes / 8)
	for i := 0; i < n; i++ {
		b, slot := i/c, i%c
		task := rt.AddTask(fmt.Sprintf("t%d.%d", b, slot), nil)
		var handles []*orwl.Handle
		// Heavy stencil grid inside the node block: 2 rows of c/2 columns
		// (one row when the block is too narrow).
		gw := c / 2
		if gw < 1 {
			gw = 1
		}
		sx, sy := slot%gw, slot/gw
		for _, d := range [][2]int{{0, -1}, {0, 1}, {1, 0}, {-1, 0}} {
			nx, ny := sx+d[0], sy+d[1]
			if nx < 0 || nx >= gw || ny < 0 || ny*gw+nx >= c {
				continue
			}
			handles = append(handles, task.NewHandleVol(locs[b*c+ny*gw+nx], orwl.Read, cfg.HaloBytes, 0))
		}
		// Slot-aligned wire exchange with every logically adjacent block.
		for _, cell := range torusNeighbors(cfg.Dims, cellOf[b]) {
			handles = append(handles, task.NewHandleVol(locs[blockAt[cell]*c+slot], orwl.Read, cfg.WireBytes, 0))
		}
		w := task.NewHandleVol(locs[i], orwl.Write, cfg.HaloBytes, 1)
		region := locs[i].Region()
		block := cfg.BlockBytes
		task.SetFunc(func(t *orwl.Task) error {
			for it := 0; it < cfg.Iters; it++ {
				last := it == cfg.Iters-1
				for _, h := range handles {
					if err := h.Acquire(); err != nil {
						return err
					}
					if err := releaseOrNext(h, last); err != nil {
						return err
					}
				}
				if err := w.Acquire(); err != nil {
					return err
				}
				if p := t.Proc(); p != nil {
					p.Compute(11 * cells) // LK23's flops per cell
					p.SweepWorkingSet(region, block)
				}
				if err := releaseOrNext(w, last); err != nil {
					return err
				}
				t.EndIteration()
			}
			return nil
		})
	}
	return nil
}

// torusPolicy returns the placement policy of one torus arm.
func torusPolicy(mode string) (placement.Policy, error) {
	switch mode {
	case "sfc":
		// The default hierarchical pipeline: on a shaped fabric the
		// group→node matching runs through the routed distance model with
		// the space-filling-curve seed (and the partitioner's portfolio
		// gains the curve-chain candidate).
		return placement.Hierarchical{}, nil
	case "tree-matched":
		// The balanced-tree model of earlier revisions: a shaped fabric
		// admits no balanced abstract tree, so the matching is skipped and
		// the partition keeps the positional group→node order — which
		// inherits the scramble.
		return placement.Hierarchical{TreeFabric: true}, nil
	case "rr":
		return placement.RoundRobinNodes{}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown torus mode %q", mode)
	}
}

// RunTorus executes the torus halo-exchange workload under one placement
// mode ("sfc", "tree-matched" or "rr"; see TorusModes).
func RunTorus(mode string, cfg TorusConfig) (TorusResult, error) {
	if err := cfg.Validate(); err != nil {
		return TorusResult{}, err
	}
	cfg = cfg.withDefaults()
	pol, err := torusPolicy(mode)
	if err != nil {
		return TorusResult{}, err
	}
	cluster, err := TorusCluster(cfg)
	if err != nil {
		return TorusResult{}, err
	}
	mach := cluster.Machine()
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildTorus(rt, cfg); err != nil {
		return TorusResult{}, err
	}
	start := time.Now()
	a, err := placement.Place(rt, pol)
	if err != nil {
		return TorusResult{}, err
	}
	wall := time.Since(start).Seconds()
	placement.SetContention(mach, a, nil)
	placement.SetFabricContention(mach, a, rt.CommMatrix())
	if err := rt.Run(); err != nil {
		return TorusResult{}, err
	}
	return TorusResult{Mode: mode, Seconds: rt.MakespanSeconds(), WallSeconds: wall}, nil
}

// AblationTorus (A13) compares the placement arms on the torus halo
// exchange: routed distance matching with the space-filling-curve seed,
// the balanced-tree-only matcher, and round-robin.
func AblationTorus(cfg TorusConfig) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, mode := range TorusModes() {
		res, err := RunTorus(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation torus, %s: %w", mode, err)
		}
		rows = append(rows, AblationRow{
			Name:        "torus/" + mode,
			Seconds:     res.Seconds,
			WallSeconds: res.WallSeconds,
			Detail: fmt.Sprintf("torus %v x %d cores, scramble %d",
				cfg.Dims, cfg.CoresPerNode, cfg.Scramble),
		})
	}
	return rows, nil
}

// TorusConfigFrom derives the torus configuration from the common ablation
// Config: a 4x4 torus with single-socket nodes scaled so the total core
// count comes close to cfg.Cores (minimum 2 cores per node so the
// intra-block stencil exists).
func TorusConfigFrom(cfg Config) TorusConfig {
	cfg = cfg.withDefaults()
	per := cfg.Cores / 16
	if per < 2 {
		per = 2
	}
	return TorusConfig{
		Dims:           []int{4, 4},
		CoresPerNode:   per,
		CoresPerSocket: per,
		Seed:           cfg.Seed,
	}
}
