package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiment"
)

func TestBuildConfigValidation(t *testing.T) {
	tests := []struct {
		name                     string
		rows, cols, iters, cores int
		full                     bool
		wantErr                  string
	}{
		{"reduced scale", 4096, 4096, 10, 48, false, ""},
		{"full overrides bad scale flags", -1, -1, -1, -1, true, ""},
		{"negative cores", 4096, 4096, 10, -48, false, "core count"},
		{"tiny grid", 2, 4096, 10, 48, false, "too small"},
		{"negative iters", 4096, 4096, -10, 48, false, "iteration count"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildConfig(tc.rows, tc.cols, tc.iters, tc.cores, 7, tc.full)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid config, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSelectAblations(t *testing.T) {
	all, err := selectAblations("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 13 || all[0].id != "A1" || all[12].id != "A13" {
		t.Fatalf("all selects %d ablations (%+v), want A1..A13", len(all), all)
	}
	list, err := selectAblations("shift,adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].name != "adaptive" || list[1].name != "shift" {
		t.Fatalf("list selection %+v, want adaptive then shift in report order", list)
	}
	for _, bad := range []string{"nonsense", "shift,nonsense", ",", ""} {
		if _, err := selectAblations(bad); err == nil {
			t.Errorf("selector %q accepted", bad)
		}
	}
}

// TestRunJSONReport drives the machine-readable mode end to end on the A12
// ablation: the report must carry the schema marker, per-row seconds and
// cycle counts (consistent with each other), and the asserted orderings
// with passing verdicts.
func TestRunJSONReport(t *testing.T) {
	cfg := experiment.Config{Rows: 1024, Cols: 1024, Iters: 4, Cores: 16, Seed: 42}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, cfg, "shift", true); err != nil {
		t.Fatalf("run -json: %v\n%s", err, buf.String())
	}
	var report benchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Schema != benchSchema {
		t.Errorf("schema %q, want %q", report.Schema, benchSchema)
	}
	if report.Seed != 42 {
		t.Errorf("seed %d, want 42", report.Seed)
	}
	if len(report.Ablations) != 1 {
		t.Fatalf("%d ablations, want 1: %+v", len(report.Ablations), report)
	}
	a := report.Ablations[0]
	if a.ID != "A12" || a.Exp != "shift" {
		t.Errorf("ablation identity %s/%s, want A12/shift", a.ID, a.Exp)
	}
	if len(a.Rows) != len(experiment.ShiftModes()) {
		t.Errorf("%d rows, want %d", len(a.Rows), len(experiment.ShiftModes()))
	}
	for _, r := range a.Rows {
		if r.Seconds <= 0 || r.Cycles <= 0 {
			t.Errorf("row %s has non-positive cost: %+v", r.Name, r)
		}
		if want := experiment.SimCycles(r.Seconds); r.Cycles != want {
			t.Errorf("row %s cycles %v inconsistent with seconds (want %v)", r.Name, r.Cycles, want)
		}
	}
	if len(a.Orderings) != len(experiment.AblationOrderings("shift")) {
		t.Fatalf("%d ordering verdicts, want %d", len(a.Orderings), len(experiment.AblationOrderings("shift")))
	}
	for _, o := range a.Orderings {
		if !o.OK {
			t.Errorf("asserted ordering %q violated in the reduced-shape run", o.Relation)
		}
	}
}

// TestRunHumanReport pins the default rendering path.
func TestRunHumanReport(t *testing.T) {
	cfg := experiment.Config{Rows: 1024, Cols: 1024, Iters: 4, Cores: 16, Seed: 42}
	var buf bytes.Buffer
	if err := run(&buf, cfg, "shift", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "A12") || !strings.Contains(out, "shift/adaptive-fabric") {
		t.Errorf("human report misses the A12 rows:\n%s", out)
	}
}
