package experiment

import (
	"fmt"
	"time"

	"repro/internal/numasim"
	"repro/internal/sched"
	"repro/internal/topology"
)

// The scheduler ablation (A15) leaves the single-program world of A1–A14:
// instead of placing one task graph and pricing one run, it replays a seeded
// multi-tenant job stream through the online scheduler and compares how the
// placement engine's topology awareness compounds over arrivals, departures
// and re-use of freed capacity. The arms differ only in the scheduler policy:
// topo-aware walks the preferred→required tier ladder with fit scoring and
// affinity layout, topo-blind honors the hard required boundary but packs
// slot-order into the first fitting domain, and first-fit ignores the
// constraints entirely and scatters round-robin. The metric is the aggregate
// of job cycle times (finish − arrival summed over admitted jobs), so both
// service quality (placement) and queueing (packing) count.

// SchedModes lists the arms of the scheduler ablation in report order.
func SchedModes() []string {
	return []string{"topo-aware", "topo-blind", "first-fit"}
}

// SchedConfig parameterizes the A15 scheduler ablation: a grid of platform
// shapes × stream seeds, every cell replaying the same seeded workload under
// each policy arm.
type SchedConfig struct {
	// Shapes are the platform specs of the grid (default: a two-rack and a
	// two-pod machine, so the ordering is asserted on both a 2-tier and a
	// 3-tier domain ladder).
	Shapes []string
	// Seeds are the stream seeds of the grid (default 7 and 42).
	Seeds []int64
	// Jobs, Churn, ConstraintFraction, PreferredTier, RequiredTier,
	// WorkCycles, VolumeBytes feed the stream generator (see
	// sched.StreamConfig; zero values pick that package's defaults, except
	// the constraint knobs which default here to 0.3 of jobs preferring a
	// node and requiring a rack).
	Jobs               int
	Churn              float64
	ConstraintFraction float64
	PreferredTier      string
	RequiredTier       string
	WorkCycles         float64
	VolumeBytes        float64
	// Fit and Queue select the domain scoring rule and the full-required
	// policy of every arm (defaults: best-fit, wait).
	Fit   sched.Fit
	Queue sched.QueuePolicy
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.Shapes == nil {
		c.Shapes = []string{
			"rack:2 node:4 pack:2 core:4 pu:1",
			"pod:2 rack:2 node:2 pack:2 core:4 pu:1",
		}
	}
	if c.Seeds == nil {
		c.Seeds = []int64{7, 42}
	}
	if c.Jobs == 0 {
		c.Jobs = 40
	}
	if c.Churn == 0 {
		c.Churn = 4
	}
	if c.ConstraintFraction == 0 {
		c.ConstraintFraction = 0.3
	}
	if c.PreferredTier == "" {
		c.PreferredTier = "node"
	}
	if c.RequiredTier == "" {
		c.RequiredTier = "rack"
	}
	return c
}

// streamConfig builds the generator configuration of one grid cell.
func (c SchedConfig) streamConfig(seed int64) sched.StreamConfig {
	return sched.StreamConfig{
		Jobs:               c.Jobs,
		Seed:               seed,
		WorkCycles:         c.WorkCycles,
		VolumeBytes:        c.VolumeBytes,
		Churn:              c.Churn,
		ConstraintFraction: c.ConstraintFraction,
		PreferredTier:      c.PreferredTier,
		RequiredTier:       c.RequiredTier,
	}
}

// Validate rejects configurations the scheduler pipeline cannot run.
func (c SchedConfig) Validate() error {
	d := c.withDefaults()
	if len(d.Shapes) == 0 {
		return fmt.Errorf("experiment: sched needs at least one platform shape")
	}
	for _, spec := range d.Shapes {
		if _, err := topology.FromSpec(spec); err != nil {
			return fmt.Errorf("experiment: sched shape %q: %w", spec, err)
		}
	}
	if len(d.Seeds) == 0 {
		return fmt.Errorf("experiment: sched needs at least one stream seed")
	}
	for _, seed := range d.Seeds {
		if err := d.streamConfig(seed).Validate(); err != nil {
			return err
		}
	}
	if d.ConstraintFraction > 0 {
		// The generator's constraint tiers are validated per job; probe them
		// here so a misspelled tier fails before any cell runs.
		probe := sched.JobSpec{
			Name: "probe", Tasks: 1,
			Preferred: d.PreferredTier, Required: d.RequiredTier,
		}
		if err := probe.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// schedArm maps an A15 mode name to the scheduler policy.
func schedArm(mode string) (sched.Policy, error) {
	switch mode {
	case "topo-aware":
		return sched.TopoAware, nil
	case "topo-blind":
		return sched.TopoBlind, nil
	case "first-fit":
		return sched.FirstFit, nil
	default:
		return 0, fmt.Errorf("experiment: unknown sched mode %q", mode)
	}
}

// SchedCell is one (shape, seed) grid cell's scheduler report.
type SchedCell struct {
	Shape  string
	Seed   int64
	Report *sched.Report
}

// SchedResult reports one policy arm across the whole grid.
type SchedResult struct {
	Mode string
	// Seconds is the grid total of aggregate job cycle time (finish −
	// arrival summed over admitted jobs, converted at the default clock) —
	// the A15 ordering metric.
	Seconds float64
	// WallSeconds is the real time the arm took, for the bench gate.
	WallSeconds float64
	// Admitted and Rejected total the grid's stream partition.
	Admitted, Rejected int
	// FragmentationAvg and BusyUtilization are grid means of the per-run
	// packed-vs-fragmented metrics (see sched.Report).
	FragmentationAvg, BusyUtilization float64
	// Cells holds the per-cell reports, shape-major in grid order.
	Cells []SchedCell
}

// String renders a one-line summary.
func (r SchedResult) String() string {
	return fmt.Sprintf("%-11s agg=%9.3fs admitted=%d rejected=%d frag=%.3f util=%.3f",
		r.Mode, r.Seconds, r.Admitted, r.Rejected, r.FragmentationAvg, r.BusyUtilization)
}

// RunSchedCell replays one seeded stream on one platform shape under one
// policy arm and returns the scheduler's report.
func RunSchedCell(mode, shape string, seed int64, cfg SchedConfig) (*sched.Report, error) {
	policy, err := schedArm(mode)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	jobs, err := sched.GenerateStream(cfg.streamConfig(seed))
	if err != nil {
		return nil, err
	}
	plat, err := numasim.NewPlatform(shape, numasim.Config{})
	if err != nil {
		return nil, err
	}
	s, err := sched.New(plat.Machine(), sched.Options{
		Policy: policy, Fit: cfg.Fit, Queue: cfg.Queue,
	})
	if err != nil {
		return nil, err
	}
	return s.Run(jobs)
}

// RunSched executes one policy arm over the full shape × seed grid.
func RunSched(mode string, cfg SchedConfig) (SchedResult, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return SchedResult{}, err
	}
	cfg = cfg.withDefaults()
	res := SchedResult{Mode: mode}
	var aggCycles, fragSum, utilSum float64
	for _, shape := range cfg.Shapes {
		for _, seed := range cfg.Seeds {
			rep, err := RunSchedCell(mode, shape, seed, cfg)
			if err != nil {
				return SchedResult{}, fmt.Errorf("sched %s, shape %q seed %d: %w", mode, shape, seed, err)
			}
			aggCycles += rep.AggregateCycles
			fragSum += rep.FragmentationAvg
			utilSum += rep.BusyUtilization
			res.Admitted += rep.Admitted
			res.Rejected += rep.Rejected
			res.Cells = append(res.Cells, SchedCell{Shape: shape, Seed: seed, Report: rep})
		}
	}
	cells := float64(len(res.Cells))
	res.Seconds = aggCycles / topology.DefaultAttrs().ClockHz
	res.FragmentationAvg = fragSum / cells
	res.BusyUtilization = utilSum / cells
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// AblationSched (A15) compares the scheduler policy arms on the seeded
// multi-tenant job stream, summed over the shape × seed grid. The per-cell
// ordering (each shape and seed separately) is asserted by the experiment
// tests; the summed rows carry the same assertion into the bench pipeline.
func AblationSched(cfg SchedConfig) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, mode := range SchedModes() {
		res, err := RunSched(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation sched, %s: %w", mode, err)
		}
		rows = append(rows, AblationRow{
			Name:    "sched/" + mode,
			Seconds: res.Seconds,
			Detail: fmt.Sprintf("admitted=%d rejected=%d frag=%.3f util=%.3f cells=%d",
				res.Admitted, res.Rejected, res.FragmentationAvg, res.BusyUtilization, len(res.Cells)),
			WallSeconds: res.WallSeconds,
		})
	}
	return rows, nil
}

// SchedConfigFrom derives the scheduler-ablation configuration from the
// common ablation Config: the grid shapes are fixed (the arms must separate
// on known domain ladders, not track the A1 core count), and the stream
// seeds derive from cfg.Seed so -seed still varies the workload.
func SchedConfigFrom(cfg Config) SchedConfig {
	cfg = cfg.withDefaults()
	return SchedConfig{Seeds: []int64{cfg.Seed, cfg.Seed + 35}}
}
