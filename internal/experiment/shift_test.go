package experiment

import (
	"strings"
	"testing"
)

func testShiftCfg() ShiftConfig {
	return ShiftConfig{Seed: 42}
}

// TestAblationShift is the A12 acceptance property: on the rack-crossing
// phase shift, the adaptive engine with fabric-aware (hierarchical)
// candidates strictly beats the fully flat adaptive pipeline, which strictly
// beats the one-shot hierarchical placement, with the free-migration oracle
// bounding everything from below. Asserted on the default 2×2×8 shape, on
// 4 racks of 2 nodes, on 2 racks of 3 nodes, and on 12-core nodes, each
// under two scheduler seeds (every task is bound, so the seconds must not
// depend on the seed at all).
func TestAblationShift(t *testing.T) {
	shapes := map[string]ShiftConfig{
		"2x2x8":  testShiftCfg(),
		"4x2x8":  {Racks: 4, Seed: 42},
		"2x3x8":  {NodesPerRack: 3, Seed: 42},
		"2x2x12": {CoresPerNode: 12, CoresPerSocket: 6, Seed: 42},
	}
	for name, cfg := range shapes {
		var prev map[string]float64
		for _, seed := range []int64{42, 7} {
			cfg.Seed = seed
			rows, err := AblationShift(cfg)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if len(rows) != len(ShiftModes()) {
				t.Fatalf("%s seed=%d: %d rows, want %d", name, seed, len(rows), len(ShiftModes()))
			}
			byName := map[string]float64{}
			for _, r := range rows {
				if r.Seconds <= 0 {
					t.Fatalf("%s seed=%d: %s has non-positive time %v", name, seed, r.Name, r.Seconds)
				}
				byName[r.Name] = r.Seconds
			}
			static := byName["shift/static"]
			flat := byName["shift/adaptive-flat"]
			fabric := byName["shift/adaptive-fabric"]
			oracle := byName["shift/oracle"]
			if !(fabric < flat) {
				t.Errorf("%s seed=%d: adaptive-fabric %.6fs not strictly below adaptive-flat %.6fs", name, seed, fabric, flat)
			}
			if !(flat < static) {
				t.Errorf("%s seed=%d: adaptive-flat %.6fs not strictly below static %.6fs", name, seed, flat, static)
			}
			if oracle > fabric {
				t.Errorf("%s seed=%d: oracle %.6fs above adaptive-fabric %.6fs; free migration must bound it", name, seed, oracle, fabric)
			}
			if err := CheckOrderings(rows, AblationOrderings("shift")); err != nil {
				t.Errorf("%s seed=%d: CheckOrderings disagrees with the inline assertions: %v", name, seed, err)
			}
			if prev != nil {
				for arm, sec := range byName {
					if prev[arm] != sec {
						t.Errorf("%s: %s depends on the seed (%v vs %v) although every task is bound", name, arm, prev[arm], sec)
					}
				}
			}
			prev = byName
		}
	}
}

// TestShiftFabricMovesCrossTheFabric pins that the fabric-aware arm's
// recovery really is inter-node migration: the engine commits cross-node
// moves, a subset of them cross-rack, and the modeled migration bill of
// those moves is priced (non-zero) — dead code at cluster scale no more.
func TestShiftFabricMovesCrossTheFabric(t *testing.T) {
	res, err := RunShift("adaptive-fabric", testShiftCfg())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Applied < 1 {
		t.Fatalf("no epoch applied a re-placement (stats %+v)", st)
	}
	if st.CrossNodeRebinds == 0 {
		t.Errorf("no cross-node moves; the shift scenario is not exercising the fabric (stats %+v)", st)
	}
	if st.CrossRackRebinds == 0 {
		t.Errorf("no cross-rack moves; the rack-crossing recovery did not happen (stats %+v)", st)
	}
	if st.CrossRackRebinds > st.CrossNodeRebinds {
		t.Errorf("cross-rack moves %d exceed cross-node moves %d; the classification is inconsistent",
			st.CrossRackRebinds, st.CrossNodeRebinds)
	}
	if got := st.IntraNodeRebinds + st.CrossNodeRebinds; got != st.Rebinds {
		t.Errorf("intra-node %d + cross-node %d != total rebinds %d",
			st.IntraNodeRebinds, st.CrossNodeRebinds, st.Rebinds)
	}
	if st.MigrationCostCycles <= 0 {
		t.Errorf("cross-fabric moves committed with a zero modeled migration bill (stats %+v)", st)
	}
}

// TestShiftNoIntraNodeChurn is the candidate-anchoring regression: on a
// symmetric 2×2×12 platform whose nodes are single-socket — every core of a
// node prices identically against every other, so no intra-node move can buy
// anything — the per-epoch hierarchical candidate used to relabel
// cost-symmetric slots inside a node (swapping two tasks on sibling cores,
// or parking one on an equivalent core), and every such relabeling was
// committed as a real migration. With the candidate anchored against the
// mapping in force, the fabric-aware arm's committed moves are exclusively
// the cross-node recoveries the scenario is about.
func TestShiftNoIntraNodeChurn(t *testing.T) {
	cfg := testShiftCfg()
	cfg.Racks, cfg.NodesPerRack = 2, 2
	cfg.CoresPerNode, cfg.CoresPerSocket = 12, 12
	res, err := RunShift("adaptive-fabric", cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Rebinds == 0 {
		t.Fatalf("no moves committed; the witness is not exercising the engine (stats %+v)", st)
	}
	if st.IntraNodeRebinds != 0 {
		t.Errorf("%d intra-node rebinds committed on a cost-symmetric platform, want 0 (stats %+v)",
			st.IntraNodeRebinds, st)
	}
}

// TestRunShiftDeterministic pins bit-reproducibility of every arm.
func TestRunShiftDeterministic(t *testing.T) {
	for _, mode := range ShiftModes() {
		a, err := RunShift(mode, testShiftCfg())
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunShift(mode, testShiftCfg())
		if err != nil {
			t.Fatal(err)
		}
		if a.Seconds != b.Seconds || a.Stats != b.Stats {
			t.Errorf("%s not deterministic: %v/%+v vs %v/%+v", mode, a.Seconds, a.Stats, b.Seconds, b.Stats)
		}
	}
}

// TestShiftValidation exercises the config error paths.
func TestShiftValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  ShiftConfig
		ok   bool
	}{
		{"defaults", ShiftConfig{}, true},
		{"one rack", ShiftConfig{Racks: 1}, false},
		{"odd blocks", ShiftConfig{Racks: 3, NodesPerRack: 1}, false},
		{"two blocks", ShiftConfig{Racks: 2, NodesPerRack: 1}, false},
		{"indivisible sockets", ShiftConfig{CoresPerNode: 10, CoresPerSocket: 4}, false},
		{"one-core nodes", ShiftConfig{CoresPerNode: 1, CoresPerSocket: 1}, false},
		{"shift after end", ShiftConfig{Iters: 10, ShiftAt: 10}, false},
		{"negative pair volume", ShiftConfig{PairBytes: -1}, false},
		{"negative link volume", ShiftConfig{LinkBytes: -1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := RunShift("nonsense", testShiftCfg()); err == nil ||
		!strings.Contains(err.Error(), "unknown shift mode") {
		t.Errorf("unknown mode accepted (err %v)", err)
	}
}

// TestShiftConfigFrom pins the shape derivation from the common ablation
// config: 2 racks of 8-core nodes, scaled by the core budget, never below
// the 4-block minimum both pairings need.
func TestShiftConfigFrom(t *testing.T) {
	cfg := ShiftConfigFrom(Config{Cores: 48})
	if cfg.Racks != 2 || cfg.NodesPerRack != 3 || cfg.CoresPerNode != 8 {
		t.Errorf("48 cores derived %+v, want 2 racks x 3 nodes x 8 cores", cfg)
	}
	small := ShiftConfigFrom(Config{Cores: 8})
	if small.NodesPerRack != 2 {
		t.Errorf("8 cores derived %+v, want the 2-node floor per rack", small)
	}
	if err := small.Validate(); err != nil {
		t.Errorf("derived config invalid: %v", err)
	}
}
