package experiment

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/placement"
)

// The scale study (S1) is a benchmark tier, not an ablation: instead of
// simulated program time it measures the wall-clock latency of the placement
// pipeline itself — sparse matrix generation excluded, everything from the
// node-level partition to the per-node Algorithm 1 included — on
// datacenter-scale inputs. It exists to keep the optimizations honest: the
// sparse representation, the multilevel coarsening driver, the cached fabric
// tables and the sharded per-node stage all claim to make 10⁵ tasks on 10³+
// nodes tractable, and this grid is where that claim is priced.

// ScaleConfig parameterizes the placement-latency grid.
type ScaleConfig struct {
	// Tasks lists the task counts of the grid (default 10_000 and 100_000).
	Tasks []int
	// Nodes lists the cluster-node counts (default 100, 1_000 and 10_000).
	// Grid points with fewer tasks than nodes are skipped.
	Nodes []int
	// CoresPerNode shapes each (homogeneous, single-socket) node; default 8.
	CoresPerNode int
	// Seed drives the random-sparse pattern.
	Seed int64
	// Workers bounds the per-node mapping pool (0 means GOMAXPROCS).
	Workers int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Tasks) == 0 {
		c.Tasks = []int{10_000, 100_000}
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{100, 1_000, 10_000}
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 8
	}
	return c
}

// ScaleConfigFrom derives the benchmark grid from the shared ablation
// configuration. Only the seed carries over: the grid's whole point is its
// own task and node scales.
func ScaleConfigFrom(cfg Config) ScaleConfig {
	return ScaleConfig{Seed: cfg.withDefaults().Seed}
}

// scalePatterns are the two communication shapes of the grid: the
// best-case-sparse 9-point stencil (bounded degree, strong locality) and a
// degree-8 random graph (no locality to exploit, the partitioner's
// worst case at equal sparsity).
var scalePatterns = []struct {
	name string
	gen  func(tasks int, seed int64) *comm.Matrix
}{
	{"stencil", func(tasks int, _ int64) *comm.Matrix {
		bx, by := stencilDims(tasks)
		return comm.Stencil2DSparse(bx, by, 64, 8)
	}},
	{"random", func(tasks int, seed int64) *comm.Matrix {
		return comm.RandomSparse(tasks, 8, 100, seed)
	}},
}

// stencilDims factors a task count into the most square bx×by grid with
// bx·by == tasks exactly (bx the largest divisor not above √tasks).
func stencilDims(tasks int) (bx, by int) {
	bx = 1
	for d := 2; d*d <= tasks; d++ {
		if tasks%d == 0 {
			bx = d
		}
	}
	return bx, tasks / bx
}

// scaleName renders one grid point, e.g. "scale/stencil/100k-tasks/1000-nodes".
func scaleName(pattern string, tasks, nodes int) string {
	t := fmt.Sprintf("%d", tasks)
	if tasks%1000 == 0 {
		t = fmt.Sprintf("%dk", tasks/1000)
	}
	return fmt.Sprintf("scale/%s/%s-tasks/%d-nodes", pattern, t, nodes)
}

// AblationScale (S1) runs the placement-latency grid: for every node count a
// flat homogeneous platform is built once, then every (pattern, task count)
// pair is placed end to end with the hierarchical policy and the wall time
// recorded in WallSeconds (Seconds stays zero — nothing is simulated).
func AblationScale(cfg ScaleConfig) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, nodes := range cfg.Nodes {
		spec := fmt.Sprintf("cluster:%d pack:1 core:%d", nodes, cfg.CoresPerNode)
		plat, err := numasim.NewPlatform(spec, numasim.Config{})
		if err != nil {
			return nil, fmt.Errorf("scale: %d nodes: %w", nodes, err)
		}
		for _, tasks := range cfg.Tasks {
			if tasks < nodes {
				continue
			}
			for _, pat := range scalePatterns {
				m := pat.gen(tasks, cfg.Seed)
				pol := placement.Hierarchical{Workers: cfg.Workers}
				start := time.Now()
				a, err := pol.Assign(plat.Machine(), m)
				wall := time.Since(start).Seconds()
				if err != nil {
					return nil, fmt.Errorf("scale: %s: %w", scaleName(pat.name, tasks, nodes), err)
				}
				if len(a.TaskPU) != m.Order() {
					return nil, fmt.Errorf("scale: %s: placed %d of %d tasks",
						scaleName(pat.name, tasks, nodes), len(a.TaskPU), m.Order())
				}
				rows = append(rows, AblationRow{
					Name:        scaleName(pat.name, tasks, nodes),
					WallSeconds: wall,
					Detail:      fmt.Sprintf("%d nnz", m.NNZ()),
				})
			}
		}
	}
	return rows, nil
}
