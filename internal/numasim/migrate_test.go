package numasim

import (
	"testing"

	"repro/internal/topology"
)

func migrateMachine(t *testing.T) *Machine {
	t.Helper()
	topo, err := topology.FromSpec("pack:2 l3:1 core:2 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMigrateToChargesPenaltyAndGoesCold(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocOn("data", 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.SweepWorkingSet(r, 1<<10) // warm the caches
	before := p.Clock()

	if err := p.MigrateTo(2); err != nil { // core on the other socket
		t.Fatal(err)
	}
	if got := p.Clock() - before; got != m.Config().MigrationPenaltyCycles {
		t.Errorf("migration charged %v cycles, want the penalty %v", got, m.Config().MigrationPenaltyCycles)
	}
	if p.PU() != 2 {
		t.Errorf("Proc on PU %d after MigrateTo(2)", p.PU())
	}
	if p.Stats().Migrations != 1 {
		t.Errorf("migrations = %d, want 1", p.Stats().Migrations)
	}

	// Cold caches: the next sweep of a cache-resident set pays full traffic.
	warmStart := p.Clock()
	p.SweepWorkingSet(r, 1<<10)
	coldCost := p.Clock() - warmStart
	warmStart = p.Clock()
	p.SweepWorkingSet(r, 1<<10)
	warmCost := p.Clock() - warmStart
	if coldCost <= warmCost {
		t.Errorf("post-migration sweep %v not costlier than warm sweep %v", coldCost, warmCost)
	}
}

func TestMigrateToSamePUFree(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MigrateTo(1); err != nil {
		t.Fatal(err)
	}
	if p.Clock() != 0 || p.Stats().Migrations != 0 {
		t.Errorf("no-op migration charged clock=%v migrations=%d", p.Clock(), p.Stats().Migrations)
	}
}

func TestMigrateToPinsUnboundProc(t *testing.T) {
	m := migrateMachine(t)
	p := m.NewUnboundProc("roamer", 1)
	if err := p.MigrateTo(3); err != nil {
		t.Fatal(err)
	}
	if !p.Bound() || p.PU() != 3 {
		t.Errorf("after MigrateTo: bound=%v pu=%d, want pinned to 3", p.Bound(), p.PU())
	}
	// A pinned Proc no longer follows the simulated OS scheduler.
	for i := 0; i < 10; i++ {
		p.Reschedule(1.0)
	}
	if p.PU() != 3 {
		t.Errorf("pinned Proc migrated by Reschedule to PU %d", p.PU())
	}
}

func TestPlaceAtIsFree(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PlaceAt(2); err != nil {
		t.Fatal(err)
	}
	if p.Clock() != 0 {
		t.Errorf("PlaceAt charged %v cycles, want 0", p.Clock())
	}
	if p.PU() != 2 || p.Stats().Migrations != 1 {
		t.Errorf("PlaceAt: pu=%d migrations=%d", p.PU(), p.Stats().Migrations)
	}
}

func TestMigrateRegionRehomesAndCharges(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 2) // socket 1
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocOn("block", 1<<20, 0) // socket 0's node
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MigrateRegion(r); err != nil {
		t.Fatal(err)
	}
	if r.Home() != m.NodeOfPU(2) {
		t.Errorf("region home %d after MigrateRegion, want %d", r.Home(), m.NodeOfPU(2))
	}
	if p.Stats().MemoryCycles <= 0 {
		t.Errorf("region pull charged no memory cycles")
	}
	// Re-homing a local region is free.
	before := p.Clock()
	if err := p.MigrateRegion(r); err != nil {
		t.Fatal(err)
	}
	if p.Clock() != before {
		t.Errorf("local re-home charged %v cycles", p.Clock()-before)
	}
}

func TestMigrateRegionUntouchedFirstTouchFree(t *testing.T) {
	m := migrateMachine(t)
	p, err := m.NewProc("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	r := m.AllocFirstTouch("lazy", 1<<20)
	if err := p.MigrateRegion(r); err != nil {
		t.Fatal(err)
	}
	if r.Home() != m.NodeOfPU(2) {
		t.Errorf("untouched region home %d, want %d", r.Home(), m.NodeOfPU(2))
	}
	if p.Clock() != 0 {
		t.Errorf("re-homing an untouched region charged %v cycles", p.Clock())
	}
}

func TestMigrationCostCyclesPredicts(t *testing.T) {
	m := migrateMachine(t)
	if got := m.MigrationCostCycles(0, 0, 1<<20); got != 0 {
		t.Errorf("same-PU migration cost %v, want 0", got)
	}
	near := m.MigrationCostCycles(0, 1, 1<<20) // same socket
	far := m.MigrationCostCycles(0, 2, 1<<20)  // cross socket
	if near <= m.Config().MigrationPenaltyCycles {
		t.Errorf("near migration cost %v does not include the pull", near)
	}
	if far <= near {
		t.Errorf("cross-socket migration %v not costlier than same-socket %v", far, near)
	}
}

// TestMigrationCostNetworkPriced pins that the migration prediction an
// adaptive engine weighs is priced in network cycles once the move crosses
// the fabric: dragging the same working set costs strictly more across a
// node boundary than inside a node (the pull streams over two NIC links
// instead of shared memory), strictly more again across a rack boundary
// (the uplink hops join the path), and more still when the uplinks are
// declared contended (per-link streams share the uplink bandwidth).
func TestMigrationCostNetworkPriced(t *testing.T) {
	topo, err := topology.FromSpec("rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const ws = 4 << 20
	// PUs: 2 per node, 2 nodes per rack: PU 0 (node 0, rack 0), PU 1 same
	// node, PU 2 (node 1, rack 0), PU 4 (node 2, rack 1).
	intra := m.MigrationCostCycles(0, 1, ws)
	crossNode := m.MigrationCostCycles(0, 2, ws)
	crossRack := m.MigrationCostCycles(0, 4, ws)
	if !(intra < crossNode) {
		t.Errorf("intra-node migration %.0f not below cross-node %.0f; the NIC path went unpriced", intra, crossNode)
	}
	if !(crossNode < crossRack) {
		t.Errorf("cross-node migration %.0f not below cross-rack %.0f; the uplink hops went unpriced", crossNode, crossRack)
	}
	penalty := m.Config().MigrationPenaltyCycles
	if crossRack <= penalty {
		t.Errorf("cross-rack migration %.0f not above the bare penalty %.0f", crossRack, penalty)
	}
	// Declared uplink contention must raise the cross-rack bill: the pull
	// streams at the bottleneck link's shared bandwidth.
	m.SetLinkStreams(0, []int{1, 1, 1, 1})
	m.SetLinkStreams(1, []int{8, 8})
	contended := m.MigrationCostCycles(0, 4, ws)
	if !(crossRack < contended) {
		t.Errorf("uplink contention did not raise the cross-rack migration bill: %.0f vs %.0f", crossRack, contended)
	}
}
