package treematch

import (
	"math"
	"sort"

	"repro/internal/comm"
)

// Spectral bisection: split the entities by the sign structure of the
// Fiedler vector (the eigenvector of the second-smallest eigenvalue of the
// graph Laplacian of the symmetrized affinity matrix). On lattice-like
// affinity graphs the Fiedler vector varies smoothly along the longest
// geometric axis, so the median split recovers the geometric halves that
// greedy seeding (which snakes into slabs) and Kernighan–Lin refinement
// (which cannot cross the energy barrier between a slab and a block layout)
// both miss — recursing yields the quadrant partitions of square stencils.

// fiedlerIters bounds the shifted power iteration. The dominant surviving
// eigen-gap of lattice Laplacians is a few percent of the shift, so a few
// hundred iterations separate the Fiedler component from the rest to well
// below the sort's tie threshold.
const fiedlerIters = 400

// fiedlerVector approximates the Fiedler vector of the matrix's symmetrized
// affinity graph with a deterministic shifted power iteration: iterate
// x ← (cI − L)x with c above the spectral radius of the Laplacian L,
// projecting out the all-ones kernel each step. The starting vector is the
// centered index ramp, so the result — including its orientation and the
// mix it converges to inside a degenerate eigenspace — is reproducible from
// the matrix alone. Returns nil for matrices too small to split.
func fiedlerVector(m *comm.Matrix) []float64 {
	n := m.Order()
	if n < 2 {
		return nil
	}
	// Symmetrized weights and degrees, as per-row adjacency in ascending
	// column order — the dense matvec already skipped zero weights, so the
	// sparse adjacency walks the identical nonzero sequence and the
	// iteration stays bit-reproducible across storage modes. Memory is
	// O(nnz) instead of the dense n² weight array.
	adjCol, adjW, deg := symmetrizedAdjacency(m)
	maxDeg := 0.0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg == 0 {
		return nil // no edges: every split is equal, keep index order
	}
	// Normalize the shift so the iteration is scale-invariant in the volumes.
	c := 2*maxDeg + 1
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) - float64(n-1)/2
	}
	y := make([]float64, n)
	for it := 0; it < fiedlerIters; it++ {
		// y = (cI - L) x = c·x - deg·x + W·x
		for i := 0; i < n; i++ {
			s := (c - deg[i]) * x[i]
			cols := adjCol[i]
			ws := adjW[i]
			for p, j := range cols {
				s += ws[p] * x[j]
			}
			y[i] = s
		}
		// Project out the all-ones kernel and renormalize.
		mean := 0.0
		for _, v := range y {
			mean += v
		}
		mean /= float64(n)
		norm := 0.0
		for i := range y {
			y[i] -= mean
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			return nil // start vector was (numerically) in the kernel
		}
		for i := range y {
			y[i] /= norm
		}
		x, y = y, x
	}
	return x
}

// symmetrizedAdjacency builds the per-row adjacency of the symmetrized
// affinity graph: for each i, the columns j (ascending, j ≠ i) where
// w(i,j) = At(i,j)+At(j,i) is nonzero, with the weights, plus the weighted
// degree. Degrees accumulate in ascending-column order exactly as the dense
// full-row loop did (absent columns contribute an exact +0 there).
func symmetrizedAdjacency(m *comm.Matrix) (adjCol [][]int32, adjW [][]float64, deg []float64) {
	n := m.Order()
	cols := make([][]int32, n)
	for i := 0; i < n; i++ {
		m.ForEachNeighbor(i, func(j int, v float64) {
			if j == i {
				return
			}
			cols[i] = append(cols[i], int32(j))
			cols[j] = append(cols[j], int32(i))
		})
	}
	adjCol = make([][]int32, n)
	adjW = make([][]float64, n)
	deg = make([]float64, n)
	for i := 0; i < n; i++ {
		cs := cols[i]
		sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
		var d float64
		for p, c := range cs {
			if p > 0 && c == cs[p-1] {
				continue // both directions stored: already handled
			}
			j := int(c)
			w := m.At(i, j) + m.At(j, i)
			d += w
			if w != 0 {
				adjCol[i] = append(adjCol[i], c)
				adjW[i] = append(adjW[i], w)
			}
		}
		deg[i] = d
	}
	return adjCol, adjW, deg
}

// spectralOrder returns the entity indices of the matrix sorted by Fiedler
// value (ties towards the lower index), or the identity order when the
// graph admits no useful Fiedler vector.
func spectralOrder(m *comm.Matrix) []int {
	order := make([]int, m.Order())
	for i := range order {
		order[i] = i
	}
	f := fiedlerVector(m)
	if f == nil {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool { return f[order[a]] < f[order[b]] })
	return order
}

// spectralPartition is the spectral-bisection candidate of the equal-
// capacity portfolio: recursively halve the entities at the Fiedler
// median, falling back to direct grouping when a level's factor is odd.
// len(ids) must be divisible by k.
func spectralPartition(m *comm.Matrix, ids []int, k, passes int) ([][]int, error) {
	if k == 1 {
		return [][]int{append([]int(nil), ids...)}, nil
	}
	sub := m
	if !isIdentity(ids, m.Order()) {
		var err error
		sub, err = m.Submatrix(ids)
		if err != nil {
			return nil, err
		}
	}
	if k%2 != 0 {
		// No even split available: group the remaining entities directly.
		local := GroupProcesses(sub, len(ids)/k, passes)
		out := make([][]int, k)
		for gi, g := range local {
			for _, e := range g {
				out[gi] = append(out[gi], ids[e])
			}
		}
		return out, nil
	}
	order := spectralOrder(sub)
	half := len(ids) / 2
	lo := make([]int, half)
	hi := make([]int, len(ids)-half)
	for i, e := range order {
		if i < half {
			lo[i] = ids[e]
		} else {
			hi[i-half] = ids[e]
		}
	}
	left, err := spectralPartition(m, lo, k/2, passes)
	if err != nil {
		return nil, err
	}
	right, err := spectralPartition(m, hi, k/2, passes)
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}

// spectralPartitionSized is the spectral candidate of the capacity-weighted
// partitioner: recursively split the target-size list into two contiguous
// runs of nearly equal total, and the entities at the matching Fiedler
// rank. sizes[g] is the exact size group g must come out with; the group
// order of the result matches the order of sizes.
func spectralPartitionSized(m *comm.Matrix, ids []int, sizes []int) ([][]int, error) {
	if len(sizes) == 1 {
		return [][]int{append([]int(nil), ids...)}, nil
	}
	sub := m
	if !isIdentity(ids, m.Order()) {
		var err error
		sub, err = m.Submatrix(ids)
		if err != nil {
			return nil, err
		}
	}
	// Split the group list at the prefix whose size total is closest to
	// half; both sides keep at least one group.
	total := 0
	for _, s := range sizes {
		total += s
	}
	split, prefix, bestGap := 1, sizes[0], math.Inf(1)
	run := 0
	for g := 0; g < len(sizes)-1; g++ {
		run += sizes[g]
		if gap := math.Abs(float64(2*run - total)); gap < bestGap {
			bestGap, split, prefix = gap, g+1, run
		}
	}
	order := spectralOrder(sub)
	lo := make([]int, prefix)
	hi := make([]int, len(ids)-prefix)
	for i, e := range order {
		if i < prefix {
			lo[i] = ids[e]
		} else {
			hi[i-prefix] = ids[e]
		}
	}
	left, err := spectralPartitionSized(m, lo, sizes[:split])
	if err != nil {
		return nil, err
	}
	right, err := spectralPartitionSized(m, hi, sizes[split:])
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}
