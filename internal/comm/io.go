package comm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serializes the matrix in a simple text format compatible with the
// inputs TreeMatch-style tools consume: a first line with the order n,
// followed by n lines of n space-separated volumes. Labels are emitted as
// trailing "# name" comments, one per row, when set. It returns the number
// of bytes written.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "%d\n", m.n)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			sep := " "
			if j == 0 {
				sep = ""
			}
			n, err = fmt.Fprintf(bw, "%s%g", sep, m.At(i, j))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		if m.labels != nil {
			n, err = fmt.Fprintf(bw, "  # %s", m.labels[i])
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		n, err = fmt.Fprintln(bw)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses a matrix in the format produced by WriteTo. Blank lines and
// lines starting with '#' are ignored; a trailing "# label" on a row sets
// the row's entity label.
func Read(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var m *Matrix
	row := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var label string
		if idx := strings.Index(line, "#"); idx >= 0 {
			label = strings.TrimSpace(line[idx+1:])
			line = strings.TrimSpace(line[:idx])
		}
		if m == nil {
			n, err := strconv.Atoi(line)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("comm: bad order line %q", line)
			}
			m = New(n)
			continue
		}
		if row >= m.n {
			return nil, fmt.Errorf("comm: more than %d rows", m.n)
		}
		fields := strings.Fields(line)
		if len(fields) != m.n {
			return nil, fmt.Errorf("comm: row %d has %d entries, want %d", row, len(fields), m.n)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("comm: row %d entry %d: %v", row, j, err)
			}
			m.Set(row, j, v)
		}
		if label != "" {
			m.SetLabel(row, label)
		}
		row++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("comm: empty input")
	}
	if row != m.n {
		return nil, fmt.Errorf("comm: got %d rows, want %d", row, m.n)
	}
	return m, nil
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.n > 16 {
		return fmt.Sprintf("comm.Matrix(order=%d, total=%g)", m.n, m.TotalVolume())
	}
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
