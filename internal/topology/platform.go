package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// A platform spec describes a whole (possibly heterogeneous) cluster in one
// string: the fabric tiers from the outside in — an optional pod tier, an
// optional rack tier, and the node (cluster) tier — followed by the member
// machines. Two member forms exist:
//
//	pod:2 rack:2 node:2 pack:2 core:8        every node identical
//	rack:2 node:2,3 pack:2 core:8            uneven racks, identical nodes
//	rack:2 node:{pack:2 core:8 | pack:1 core:4}   one machine spec per node
//	rack:2 node:2{pack:2 core:8 | pack:1 core:4}  counts + cycling members
//
// In the brace form the member machine specs are listed left to right, "|"
// separated; without explicit counts the node count is the number of members
// listed (distributed evenly across the racks), and with counts the member
// list cycles over the nodes in left-to-right order. All members must share
// the same level-kind sequence after normalization (they may differ freely
// in arity — an 8-core and a 4-core node mix, a node with an l3 level and
// one without does not), because the fused simulation topology keeps levels
// kind-homogeneous. A spec without a node tier describes a single-node
// platform.
//
// PlatformSpec is the parsed form; FusedSpec renders the whole platform back
// into one (uneven) FromSpec string for the fused simulation machine, and
// Members holds the per-node machine specs for the per-node shared-memory
// views.
type PlatformSpec struct {
	// Fabric is the non-tree fabric shape when the platform leads with a
	// torus or dragonfly tier ("torus:4x4 pack:1 core:4",
	// "dragonfly:2,4,2{big | small}"); nil on tree fabrics. A shaped
	// platform has no pod or rack tier — the shape is the whole fabric —
	// and its node count is the shape's.
	Fabric *FabricShape
	// PodCounts lists the pods (one count; the pod tier hangs off the root).
	// Empty when the fabric has no pod tier.
	PodCounts []int
	// RackCounts lists the racks per pod (or per machine root), one entry per
	// pod when uneven. Empty when the fabric has no rack tier.
	RackCounts []int
	// NodeCounts lists the cluster nodes per rack (or per machine root), one
	// entry per rack when uneven. Empty on a single-machine platform.
	NodeCounts []int
	// Members holds one normalized machine spec per cluster node, in
	// left-to-right order.
	Members []string
}

// Nodes returns the total number of cluster nodes of the platform.
func (p *PlatformSpec) Nodes() int { return len(p.Members) }

// Pods returns the total number of pods (0 without a pod tier).
func (p *PlatformSpec) Pods() int {
	n := 0
	for _, c := range p.PodCounts {
		n += c
	}
	return n
}

// Racks returns the total number of racks (0 without a rack tier). A single
// rack count replicates per pod.
func (p *PlatformSpec) Racks() int {
	if len(p.RackCounts) == 0 {
		return 0
	}
	if len(p.RackCounts) == 1 {
		if pods := p.Pods(); pods > 0 {
			return pods * p.RackCounts[0]
		}
		return p.RackCounts[0]
	}
	n := 0
	for _, c := range p.RackCounts {
		n += c
	}
	return n
}

// Homogeneous reports whether every member machine is identical.
func (p *PlatformSpec) Homogeneous() bool {
	for _, m := range p.Members[1:] {
		if m != p.Members[0] {
			return false
		}
	}
	return true
}

// ParsePlatform parses a platform specification string. See PlatformSpec for
// the grammar. Plain single-machine specs parse as single-node platforms,
// and plain cluster specs ("cluster:4 pack:2 core:8", "rack:2 node:4
// core:16") parse with identical members. The member tail is read as one
// shared per-node machine spec first; when its uneven counts do not fit a
// single machine, it is re-read as a fused spec whose comma lists are
// per-parent across the whole platform — so FusedSpec output (e.g.
// "rack:2 cluster:1 pack:2,1 numa:1 core:8,8,4 pu:1") round-trips back
// into its heterogeneous members.
func ParsePlatform(spec string) (*PlatformSpec, error) {
	tokens, err := tokenizePlatform(spec)
	if err != nil {
		return nil, err
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("topology: empty platform spec")
	}
	p := &PlatformSpec{}
	i := 0
	// A leading torus/dragonfly token replaces the tree tiers wholesale: the
	// shape fixes the node count, and the rest of the spec (or a brace block)
	// is the member machine spec.
	if shape, braced, serr := fabricShapeToken(tokens[0]); serr != nil {
		return nil, serr
	} else if shape != nil {
		p.Fabric = shape
		p.NodeCounts = []int{shape.Nodes()}
		rest := strings.Join(tokens[1:], " ")
		var members []string
		switch {
		case len(braced) > 0 && rest != "":
			return nil, fmt.Errorf("topology: tokens %q after a braced %s tier (the member specs are the braces' content)", rest, shape.Kind)
		case len(braced) > 0:
			members = braced
		case rest == "":
			return nil, fmt.Errorf("topology: %s tier without a member machine spec", shape.Kind)
		default:
			members = []string{rest}
		}
		if err := p.resolveCounts(members, true); err != nil {
			return nil, err
		}
		if err := p.normalizeMembers(); err != nil {
			if len(members) == 1 && strings.Contains(members[0], ",") && p.Nodes() > 1 {
				if split, serr := splitFusedTail(p.Nodes(), members[0]); serr == nil {
					p.Members = split
					return p, p.normalizeMembers()
				}
			}
			return nil, err
		}
		return p, nil
	}
	// Fabric tiers, outside in: pod, rack, then the node (cluster) token.
	fabricCounts := func(tok string) ([]int, error) {
		counts, members, err := tokenCounts(tok)
		if err != nil {
			return nil, err
		}
		if len(members) > 0 {
			// Silently dropping a braced list here would discard the user's
			// member specs; only the node tier carries members.
			return nil, fmt.Errorf("topology: member braces belong on the node tier, not on %q", tok)
		}
		return counts, nil
	}
	if kindOfToken(tokens[i]) == Pod {
		if p.PodCounts, err = fabricCounts(tokens[i]); err != nil {
			return nil, err
		}
		i++
		if i == len(tokens) || kindOfToken(tokens[i]) != Rack {
			return nil, fmt.Errorf("topology: a pod tier requires a rack tier below it, as in %q", "pod:2 rack:2 node:2 pack:2 core:8")
		}
	}
	if i < len(tokens) && kindOfToken(tokens[i]) == Rack {
		if p.RackCounts, err = fabricCounts(tokens[i]); err != nil {
			return nil, err
		}
		i++
		if i == len(tokens) || !isNodeToken(tokens, i) {
			return nil, fmt.Errorf("topology: a rack tier requires a node (cluster) tier below it, as in %q", "rack:2 node:4 pack:2 core:8")
		}
	}
	var members []string
	nodeTier := false
	if i < len(tokens) && isNodeToken(tokens, i) {
		nodeTier = true
		counts, braced, err := tokenCounts(tokens[i])
		if err != nil {
			return nil, err
		}
		i++
		rest := strings.Join(tokens[i:], " ")
		switch {
		case len(braced) > 0 && rest != "":
			return nil, fmt.Errorf("topology: tokens %q after a braced node tier (the member specs are the braces' content)", rest)
		case len(braced) > 0:
			p.NodeCounts = counts
			members = braced
		case rest == "":
			return nil, fmt.Errorf("topology: node tier without a member machine spec")
		default:
			p.NodeCounts = counts
			members = []string{rest}
		}
	} else {
		// No fabric tiers at all: the whole spec is one member machine.
		members = []string{strings.Join(tokens[i:], " ")}
	}

	if len(p.RackCounts) > 1 && len(p.RackCounts) != p.Pods() {
		return nil, fmt.Errorf("topology: rack tier lists %d counts for %d pods", len(p.RackCounts), p.Pods())
	}
	if err := p.resolveCounts(members, nodeTier); err != nil {
		return nil, err
	}
	if err := p.normalizeMembers(); err != nil {
		// A single shared member whose uneven counts do not fit one machine
		// may be a *fused* spec (FusedSpec output, or FromSpec's global
		// reading), whose comma lists are per-parent across the whole
		// platform: split them back into per-node members so fused specs
		// round-trip. The shared-member reading stays primary.
		if len(members) == 1 && strings.Contains(members[0], ",") && p.Nodes() > 1 {
			if split, serr := splitFusedTail(p.Nodes(), members[0]); serr == nil {
				p.Members = split
				return p, p.normalizeMembers()
			}
		}
		return nil, err
	}
	return p, nil
}

// resolveCounts reconciles the node-tier counts with the member list and
// expands Members to one spec per node (cycling a braced list over explicit
// counts). nodeTier reports whether the spec had an explicit node token —
// a spec without one is a plain machine with no cluster tier, while
// "node:{...}" with a single member is a 1-node cluster.
func (p *PlatformSpec) resolveCounts(members []string, nodeTier bool) error {
	racks := p.Racks()
	if !nodeTier && len(p.RackCounts)+len(p.PodCounts) == 0 {
		// Single machine, no fabric: one node, no cluster tier.
		p.Members = members
		return nil
	}
	total := 0
	for _, c := range p.NodeCounts {
		total += c
	}
	if len(p.NodeCounts) == 0 {
		// Braced list without counts: the member count is the node count,
		// distributed evenly across the racks when a rack tier exists.
		total = len(members)
		if racks > 0 {
			if total%racks != 0 {
				return fmt.Errorf("topology: %d node members do not distribute across %d racks; give explicit counts as in %q",
					total, racks, "node:1,2{...}")
			}
			p.NodeCounts = []int{total / racks}
		} else {
			p.NodeCounts = []int{total}
		}
	}
	if len(p.RackCounts) > 0 {
		if len(p.NodeCounts) != 1 && len(p.NodeCounts) != racks {
			return fmt.Errorf("topology: node tier lists %d counts for %d racks", len(p.NodeCounts), racks)
		}
	} else if len(p.NodeCounts) != 1 {
		return fmt.Errorf("topology: node tier lists %d counts without a rack tier above", len(p.NodeCounts))
	}
	if len(p.NodeCounts) == 1 && racks > 0 {
		total = p.NodeCounts[0] * racks
	}
	// A braced list shorter than the node count cycles; longer is an error
	// (members would be silently dropped).
	if len(members) > total {
		return fmt.Errorf("topology: %d node members for %d nodes", len(members), total)
	}
	p.Members = make([]string, total)
	for i := range p.Members {
		p.Members[i] = members[i%len(members)]
	}
	return nil
}

// normalizeMembers runs every member spec through the ordinary parser,
// stores the normalized form, rejects members that themselves contain fabric
// tiers, and checks that all members share one level-kind sequence.
func (p *PlatformSpec) normalizeMembers() error {
	var kinds0 []Kind
	for i, m := range p.Members {
		t, err := FromSpec(m)
		if err != nil {
			return fmt.Errorf("topology: platform member %d: %w", i, err)
		}
		if len(t.ClusterNodes()) > 0 || t.NumRacks() > 0 || t.NumPods() > 0 {
			return fmt.Errorf("topology: platform member %d %q contains a fabric tier of its own", i, m)
		}
		p.Members[i] = t.Spec()
		kinds := memberKinds(t)
		if i == 0 {
			kinds0 = kinds
		} else if !kindsEqual(kinds, kinds0) {
			return fmt.Errorf("topology: platform members must share one level-kind sequence: member %d has %v, member 0 has %v",
				i, kinds, kinds0)
		}
	}
	return nil
}

// memberKinds lists a member topology's level kinds below the machine root.
func memberKinds(t *Topology) []Kind {
	kinds := make([]Kind, 0, t.Depth()-1)
	for d := 1; d < t.Depth(); d++ {
		kinds = append(kinds, t.LevelKind(d))
	}
	return kinds
}

func kindsEqual(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FusedSpec renders the platform as a single (possibly uneven) FromSpec
// string for the fused simulation topology: the fabric tiers, then — level
// by level — the per-parent counts of every member machine concatenated in
// left-to-right order. Homogeneous levels collapse back to a single count,
// so a homogeneous platform round-trips to the familiar
// "cluster:N pack:P ..." form.
func (p *PlatformSpec) FusedSpec() (string, error) {
	var parts []string
	emit := func(kind string, counts []int) {
		uniform := true
		for _, c := range counts[1:] {
			if c != counts[0] {
				uniform = false
				break
			}
		}
		if uniform {
			parts = append(parts, fmt.Sprintf("%s:%d", kind, counts[0]))
			return
		}
		cs := make([]string, len(counts))
		for i, c := range counts {
			cs[i] = strconv.Itoa(c)
		}
		parts = append(parts, kind+":"+strings.Join(cs, ","))
	}
	if len(p.PodCounts) > 0 {
		emit("pod", p.PodCounts)
	}
	if len(p.RackCounts) > 0 {
		emit("rack", p.RackCounts)
	}
	if p.Fabric != nil {
		parts = append(parts, p.Fabric.Token())
	} else if len(p.NodeCounts) > 0 || len(p.Members) > 1 || p.Racks() > 0 {
		emit("cluster", p.NodeCounts)
	} else {
		// Single machine: the member spec is the whole topology.
		return p.Members[0], nil
	}

	// Expand every member into explicit per-parent count lists, level by
	// level, and concatenate them across members (the global parent order at
	// each level is member 0's parents, then member 1's, and so on).
	type level struct {
		name   string
		counts []int
	}
	var levels []level
	for mi, m := range p.Members {
		fields := strings.Fields(m)
		parents := 1
		for li, f := range fields {
			name, counts, err := splitToken(f)
			if err != nil {
				return "", err
			}
			expanded := counts
			if len(counts) == 1 && parents > 1 {
				expanded = make([]int, parents)
				for i := range expanded {
					expanded[i] = counts[0]
				}
			} else if len(counts) != parents && len(counts) != 1 {
				return "", fmt.Errorf("topology: member %d level %q lists %d counts for %d parents", mi, f, len(counts), parents)
			}
			if mi == 0 {
				levels = append(levels, level{name: name})
			} else if li >= len(levels) || levels[li].name != name {
				return "", fmt.Errorf("topology: member %d level %q does not align with member 0", mi, f)
			}
			levels[li].counts = append(levels[li].counts, expanded...)
			next := 0
			for _, c := range expanded {
				next += c
			}
			parents = next
		}
	}
	for _, lv := range levels {
		emit(lv.name, lv.counts)
	}
	return strings.Join(parts, " "), nil
}

// splitFusedTail interprets the member tail of a fused spec: every comma
// list holds one count per parent object across the *whole* platform, in
// left-to-right node order (the inverse of FusedSpec's expansion). It
// slices each level's counts back into per-node member specs, collapsing
// uniform runs.
func splitFusedTail(nodes int, tail string) ([]string, error) {
	parents := make([]int, nodes)
	tokens := make([][]string, nodes)
	for i := range parents {
		parents[i] = 1
	}
	for _, f := range strings.Fields(tail) {
		name, counts, err := splitToken(f)
		if err != nil {
			return nil, err
		}
		if len(counts) > 1 {
			total := 0
			for _, pn := range parents {
				total += pn
			}
			if len(counts) != total {
				return nil, fmt.Errorf("topology: fused level %q lists %d counts for %d parents", f, len(counts), total)
			}
		}
		pos := 0
		for i := range parents {
			mine := counts
			if len(counts) > 1 {
				mine = counts[pos : pos+parents[i]]
				pos += parents[i]
			}
			uniform := true
			next := 0
			for _, c := range mine {
				next += c
				if c != mine[0] {
					uniform = false
				}
			}
			if len(mine) == 1 {
				next = mine[0] * parents[i]
			}
			tok := name + ":"
			if uniform {
				tok += strconv.Itoa(mine[0])
			} else {
				cs := make([]string, len(mine))
				for j, c := range mine {
					cs[j] = strconv.Itoa(c)
				}
				tok += strings.Join(cs, ",")
			}
			tokens[i] = append(tokens[i], tok)
			parents[i] = next
		}
	}
	members := make([]string, nodes)
	for i, ts := range tokens {
		members[i] = strings.Join(ts, " ")
	}
	return members, nil
}

// tokenizePlatform splits a platform spec on whitespace, keeping brace
// blocks (which may contain spaces) attached to their token.
func tokenizePlatform(spec string) ([]string, error) {
	var tokens []string
	var cur strings.Builder
	depth := 0
	for _, r := range spec {
		switch {
		case r == '{':
			depth++
			cur.WriteRune(r)
		case r == '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("topology: unbalanced %q in platform spec", "}")
			}
			cur.WriteRune(r)
		case depth == 0 && (r == ' ' || r == '\t' || r == '\n'):
			if cur.Len() > 0 {
				tokens = append(tokens, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("topology: unbalanced %q in platform spec", "{")
	}
	if cur.Len() > 0 {
		tokens = append(tokens, cur.String())
	}
	return tokens, nil
}

// fabricShapeToken parses a leading torus/dragonfly token, returning the
// shape and any braced member list. A nil shape (with nil error) means the
// token is not a shape tier at all.
func fabricShapeToken(tok string) (*FabricShape, []string, error) {
	name, val, ok := strings.Cut(tok, ":")
	if !ok {
		return nil, nil, nil
	}
	name = strings.ToLower(name)
	if name != "torus" && name != "dragonfly" {
		return nil, nil, nil
	}
	var members []string
	if open := strings.IndexByte(val, '{'); open >= 0 {
		if !strings.HasSuffix(val, "}") {
			return nil, nil, fmt.Errorf("topology: malformed brace block in token %q", tok)
		}
		for _, m := range strings.Split(val[open+1:len(val)-1], "|") {
			m = strings.TrimSpace(m)
			if m == "" {
				return nil, nil, fmt.Errorf("topology: empty member spec in token %q", tok)
			}
			members = append(members, m)
		}
		val = val[:open]
	}
	s, err := parseFabricShape(name, val)
	if err != nil {
		return nil, nil, err
	}
	return s, members, nil
}

// kindOfToken returns the kind a token names, or -1 when it is not a plain
// kind:count token.
func kindOfToken(tok string) Kind {
	name, _, ok := strings.Cut(tok, ":")
	if !ok {
		return -1
	}
	k, ok := kindTokens[strings.ToLower(name)]
	if !ok {
		return -1
	}
	return k
}

// isNodeToken reports whether tokens[i] opens the cluster-node tier:
// "cluster:..." always; "node:..." when it carries a brace block, follows a
// rack tier (i > 0), or is followed by a machine level above the NUMA tier
// (the same promotion FromSpec applies).
func isNodeToken(tokens []string, i int) bool {
	name, val, ok := strings.Cut(tokens[i], ":")
	if !ok {
		return false
	}
	switch strings.ToLower(name) {
	case "cluster":
		return true
	case "node":
		if strings.Contains(val, "{") || i > 0 {
			return true
		}
		return i+1 < len(tokens) && LeadingNodeIsCluster(kindOfToken(tokens[i+1]))
	}
	return false
}

// tokenCounts parses one fabric-tier token into its count list and, for the
// node tier, the braced member list.
func tokenCounts(tok string) (counts []int, members []string, err error) {
	_, val, _ := strings.Cut(tok, ":")
	if open := strings.IndexByte(val, '{'); open >= 0 {
		if !strings.HasSuffix(val, "}") {
			return nil, nil, fmt.Errorf("topology: malformed brace block in token %q", tok)
		}
		for _, m := range strings.Split(val[open+1:len(val)-1], "|") {
			m = strings.TrimSpace(m)
			if m == "" {
				return nil, nil, fmt.Errorf("topology: empty member spec in token %q", tok)
			}
			members = append(members, m)
		}
		val = val[:open]
		if val == "" {
			return nil, members, nil
		}
	}
	for _, cs := range strings.Split(val, ",") {
		n, err := strconv.Atoi(cs)
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("topology: invalid count in token %q", tok)
		}
		counts = append(counts, n)
	}
	return counts, members, nil
}

// splitToken parses a "kind:counts" token of a normalized member spec.
func splitToken(tok string) (name string, counts []int, err error) {
	name, val, ok := strings.Cut(tok, ":")
	if !ok {
		return "", nil, fmt.Errorf("topology: token %q is not of the form kind:count", tok)
	}
	for _, cs := range strings.Split(val, ",") {
		n, err := strconv.Atoi(cs)
		if err != nil || n <= 0 {
			return "", nil, fmt.Errorf("topology: invalid count in token %q", tok)
		}
		counts = append(counts, n)
	}
	return name, counts, nil
}
