// Package placement is the paper's primary contribution: the topology-aware
// placement module of the ORWL runtime. It extracts the application's
// affinity matrix from the runtime, obtains the machine topology (the HWLOC
// role), computes a thread→core binding with the TreeMatch-based
// Algorithm 1 — including the oversubscription and control-thread
// adaptations — and applies the binding to the runtime.
//
// Baseline policies (compact, scatter, round-robin, random, no-bind) are
// provided for the comparisons and ablations in the evaluation.
//
// # Objective function and units
//
// Policies minimize treematch's structural objective — bytes × tree hops
// over the declared affinity matrix; on clusters, Hierarchical first
// minimizes the fabric cut in bytes and, on multi-switch fabrics, the
// rack-crossing residual (see treematch.PartitionAcross and
// treematch.FabricTree). The policies themselves never handle cycles. The
// bridge to priced time is the contention derivation applied after a
// placement is chosen: SetContention declares per-NUMA-node accessor
// counts, and SetFabricContention the per-link crossing stream counts at
// every fabric level (NICs, rack uplinks, pod uplinks); the simulator
// (internal/numasim) then charges CPU cycles —
// network cycles for fabric paths — against those declarations. Whether the
// structural optimum coincides with the priced optimum is not guaranteed;
// internal/comm's package documentation spells out where the two diverge.
package placement

import (
	"fmt"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/topology"
	"repro/internal/treematch"
)

// Assignment is a computed placement for the tasks of a program.
type Assignment struct {
	// Policy is the name of the policy that produced the assignment.
	Policy string
	// TaskPU maps each task to the PU its computation thread is bound to;
	// -1 leaves the task to the OS scheduler.
	TaskPU []int
	// ControlPU maps each task to the PU of its control thread; -1 leaves
	// it unmapped.
	ControlPU []int
	// Strategy records how control threads were handled (TreeMatch only;
	// baselines always report ControlUnmapped).
	Strategy treematch.ControlStrategy
	// VirtualArity is >1 when the tasks oversubscribe the cores.
	VirtualArity int
}

// Policy computes an assignment of program tasks to the machine, given the
// program's affinity matrix.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Assign computes the placement of m.Order() tasks on the machine.
	Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error)
}

// firstPU returns the OS index of the first PU of the core with the given
// level index.
func firstPU(topo *topology.Topology, core int) int {
	return topo.Cores()[core].Children[0].OSIndex
}

// secondPU returns the second hyperthread of a core, or -1 without SMT.
func secondPU(topo *topology.Topology, core int) int {
	c := topo.Cores()[core]
	if len(c.Children) < 2 {
		return -1
	}
	return c.Children[1].OSIndex
}

// TreeMatch is the paper's policy: Algorithm 1 on the core-level topology
// tree, with the distribution requirement ("distribute threads over NUMA
// nodes") enabled by default.
type TreeMatch struct {
	// Options tunes the underlying grouping heuristic.
	Options treematch.Options
	// NoDistribute disables the tree-restriction distribution step, for
	// the ablation that isolates its contribution.
	NoDistribute bool
}

// Name implements Policy.
func (TreeMatch) Name() string { return "treematch" }

// Assign implements Policy: it builds the abstract tree whose leaves are
// the physical cores, runs Algorithm 1 (with the control-thread and
// oversubscription adaptations), and translates core slots to PUs:
// computation threads go to each core's first hyperthread, and control
// threads to the second one when the strategy is hyperthread pairing.
func (p TreeMatch) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: treematch requires a machine")
	}
	topo := mach.Topology()
	tree, err := treematch.FromTopology(topo, topology.Core)
	if err != nil {
		return nil, err
	}
	opts := p.Options
	opts.Distribute = !p.NoDistribute
	// The per-core minimum (not the first core's fan-out) decides whether
	// hyperthread pairing is available: see topology.SMTWays.
	res, err := treematch.Map(treematch.Target{Tree: tree, SMTWays: topo.SMTWays()}, m, opts)
	if err != nil {
		return nil, err
	}
	a := &Assignment{
		Policy:       p.Name(),
		TaskPU:       make([]int, m.Order()),
		ControlPU:    make([]int, m.Order()),
		Strategy:     res.Strategy,
		VirtualArity: res.VirtualArity,
	}
	for i := 0; i < m.Order(); i++ {
		a.TaskPU[i] = firstPU(topo, res.Assignment[i])
		switch {
		case res.Control[i] < 0:
			a.ControlPU[i] = -1
		case res.Strategy == treematch.ControlHyperthread:
			a.ControlPU[i] = secondPU(topo, res.Control[i])
		default:
			a.ControlPU[i] = firstPU(topo, res.Control[i])
		}
	}
	return a, nil
}

// Compact packs task i onto core i modulo the core count, filling sockets
// in order. Control threads are left to the OS.
type Compact struct{}

// Name implements Policy.
func (Compact) Name() string { return "compact" }

// Assign implements Policy.
func (Compact) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: compact requires a machine")
	}
	topo := mach.Topology()
	a := unboundControls(m.Order(), "compact")
	for i := range a.TaskPU {
		a.TaskPU[i] = firstPU(topo, i%topo.NumCores())
	}
	a.VirtualArity = (m.Order() + topo.NumCores() - 1) / topo.NumCores()
	return a, nil
}

// Scatter strides tasks across the sockets round-robin: consecutive tasks
// land on different sockets — the worst reasonable layout for a stencil.
type Scatter struct{}

// Name implements Policy.
func (Scatter) Name() string { return "scatter" }

// Assign implements Policy. Cores are dealt out socket by socket in
// round-robin order — consecutive tasks land on different sockets for as
// long as more than one socket still has free cores — which stays correct
// on uneven machines where the sockets do not evenly divide the cores (the
// old arithmetic `(k/sockets) % (cores/sockets)` aliased cores there, and
// divided by zero with more sockets than cores).
func (Scatter) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: scatter requires a machine")
	}
	topo := mach.Topology()
	order := scatterOrder(topo)
	a := unboundControls(m.Order(), "scatter")
	for i := range a.TaskPU {
		a.TaskPU[i] = firstPU(topo, order[i%len(order)])
	}
	a.VirtualArity = (m.Order() + len(order) - 1) / len(order)
	return a, nil
}

// scatterOrder lists the core level-indices in socket-interleaved order:
// every socket's first core, then every socket's second core, and so on,
// skipping sockets that have run out of cores.
func scatterOrder(topo *topology.Topology) []int {
	cores := topo.Cores()
	packs := topo.Level(topo.DepthOf(topology.Package))
	var queues [][]int
	if len(packs) > 0 {
		index := make(map[*topology.Object]int, len(packs))
		for i, p := range packs {
			index[p] = i
		}
		queues = make([][]int, len(packs))
		for c, core := range cores {
			i := index[core.Ancestor(topology.Package)]
			queues[i] = append(queues[i], c)
		}
	} else {
		all := make([]int, len(cores))
		for c := range all {
			all[c] = c
		}
		queues = [][]int{all}
	}
	order := make([]int, 0, len(cores))
	for pos := 0; len(order) < len(cores); pos++ {
		for _, q := range queues {
			if pos < len(q) {
				order = append(order, q[pos])
			}
		}
	}
	return order
}

// Random binds tasks to a seed-determined random permutation of the cores.
type Random struct {
	Seed int64
}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Assign implements Policy.
func (p Random) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: random requires a machine")
	}
	topo := mach.Topology()
	rng := rand.New(rand.NewSource(p.Seed))
	perm := rng.Perm(topo.NumCores())
	a := unboundControls(m.Order(), "random")
	for i := range a.TaskPU {
		a.TaskPU[i] = firstPU(topo, perm[i%len(perm)])
	}
	a.VirtualArity = (m.Order() + len(perm) - 1) / len(perm)
	return a, nil
}

// NoBind leaves every thread to the OS scheduler: the paper's "ORWL
// NoBind" configuration.
type NoBind struct{}

// Name implements Policy.
func (NoBind) Name() string { return "nobind" }

// Assign implements Policy.
func (NoBind) Assign(_ *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	a := unboundControls(m.Order(), "nobind")
	for i := range a.TaskPU {
		a.TaskPU[i] = -1
	}
	a.VirtualArity = 1
	return a, nil
}

// unboundControls builds an assignment skeleton with every control thread
// unmapped.
func unboundControls(order int, policy string) *Assignment {
	a := &Assignment{
		Policy:       policy,
		TaskPU:       make([]int, order),
		ControlPU:    make([]int, order),
		Strategy:     treematch.ControlUnmapped,
		VirtualArity: 1,
	}
	for i := range a.ControlPU {
		a.ControlPU[i] = -1
	}
	return a
}

// Apply binds the runtime's tasks (and control threads) according to the
// assignment. The assignment order must match the runtime's task order —
// which it does when the matrix came from rt.CommMatrix().
func Apply(rt *orwl.Runtime, a *Assignment) error {
	tasks := rt.Tasks()
	if len(tasks) != len(a.TaskPU) {
		return fmt.Errorf("placement: assignment order %d, runtime has %d tasks", len(a.TaskPU), len(tasks))
	}
	for i, t := range tasks {
		if err := rt.Bind(t, a.TaskPU[i]); err != nil {
			return err
		}
		if err := rt.BindControl(t, a.ControlPU[i]); err != nil {
			return err
		}
	}
	return nil
}

// Place runs the paper's full pipeline on an ORWL program: extract the
// affinity matrix from the runtime, compute the placement with the policy,
// and apply it. It returns the assignment for inspection.
func Place(rt *orwl.Runtime, pol Policy) (*Assignment, error) {
	a, err := pol.Assign(rt.Machine(), rt.CommMatrix())
	if err != nil {
		return nil, err
	}
	if err := Apply(rt, a); err != nil {
		return nil, err
	}
	return a, nil
}

// SetContention derives the static contention model of the machine from an
// assignment. heavy[i] marks the tasks with a significant per-iteration
// working set (for LK23, the main operations; frontier ops move only
// strips); nil means all tasks are heavy.
//
// Every memory node is charged the machine-wide average pressure — total
// heavy streams divided by the node count — because the data of an
// iterative block workload is spread across the nodes by construction
// (bound: one block home per task's node; unbound: uniform roaming first
// touch). Unbound heavy tasks additionally cross the inter-socket fabric
// with probability (nodes-1)/nodes, which sets the remote-stream count;
// bound tasks stream locally and add none.
func SetContention(mach *numasim.Machine, a *Assignment, heavy []bool) {
	nodes := mach.Topology().NumNUMANodes()
	total, unbound := 0, 0
	for i, pu := range a.TaskPU {
		if heavy != nil && i < len(heavy) && !heavy[i] {
			continue
		}
		total++
		if pu < 0 {
			unbound++
		}
	}
	perNode := (total + nodes - 1) / nodes
	for n := 0; n < nodes; n++ {
		mach.SetAccessors(n, perNode)
	}
	remote := 0
	if nodes > 1 {
		remote = unbound * (nodes - 1) / nodes
	}
	mach.SetRemoteStreams(remote)
}

// SetFabricContention derives the cluster-fabric contention from an
// assignment and the program's affinity matrix, per link and per fabric
// level: every task that exchanges volume with a task placed on another
// cluster node contributes one stream on its node's NIC link, and — at
// every outer fabric level (rack uplinks, pod uplinks) where some partner
// sits in a different group — one stream on its own group's uplink at that
// level. The counts are declared with numasim.Machine.SetLinkStreams, so a
// transfer is capped by the most contended link on its path: partitions
// that balance the crossing streams across NICs, racks and pods sustain
// more bandwidth than ones that funnel them, even at equal total cut. An
// unbound task on a multi-node machine roams and is counted on every link
// of every level. A no-op on single-machine topologies.
func SetFabricContention(mach *numasim.Machine, a *Assignment, m *comm.Matrix) {
	nodes := mach.Topology().NumClusterNodes()
	levels := mach.NumFabricLevels()
	if nodes <= 1 {
		return
	}
	if levels == 0 {
		setRoutedFabricContention(mach, a, m)
		return
	}
	counts := make([][]int, levels)
	for l := range counts {
		counts[l] = make([]int, mach.FabricLevelSize(l))
	}
	crossesAt := make([]bool, levels)
	for i := 0; i < m.Order() && i < len(a.TaskPU); i++ {
		partnerUnbound, hasTraffic := false, false
		for l := range crossesAt {
			crossesAt[l] = false
		}
		for j := 0; j < m.Order() && j < len(a.TaskPU); j++ {
			if i == j || m.At(i, j)+m.At(j, i) == 0 {
				continue
			}
			hasTraffic = true
			pj := a.TaskPU[j]
			if a.TaskPU[i] < 0 || pj < 0 {
				partnerUnbound = true
				continue
			}
			ci, cj := mach.ClusterNodeOfPU(a.TaskPU[i]), mach.ClusterNodeOfPU(pj)
			for l := 0; l < levels && mach.FabricGroupOf(l, ci) != mach.FabricGroupOf(l, cj); l++ {
				crossesAt[l] = true
			}
		}
		switch {
		case !hasTraffic:
			// A task that exchanges no volume contributes no stream, bound
			// or not (the old global model's guard, preserved).
		case a.TaskPU[i] < 0:
			// An unbound endpoint can stream over any link; count it on all
			// of them, the conservative reading of the old global model.
			for l := range counts {
				for g := range counts[l] {
					counts[l][g]++
				}
			}
		case crossesAt[0] || partnerUnbound:
			// A bound task whose partner is unbound may end up streaming
			// anywhere, so its own links at every level carry the stream.
			ci := mach.ClusterNodeOfPU(a.TaskPU[i])
			for l := range counts {
				if crossesAt[l] || partnerUnbound {
					counts[l][mach.FabricGroupOf(l, ci)]++
				}
			}
		}
	}
	for l, c := range counts {
		mach.SetLinkStreams(l, c)
	}
}

// setRoutedFabricContention is the shaped-fabric (torus/dragonfly) arm of
// SetFabricContention: with no level structure to address links by, streams
// are counted per routed edge. Every task with cross-node traffic contributes
// one stream to each edge on the routed path to any of its partners' nodes;
// a task with an unbound endpoint (its own, or a partner's) may stream over
// any link and is counted on every edge, the conservative reading of the
// tree model's roaming rule. A no-op on fabrics without a routed graph.
func setRoutedFabricContention(mach *numasim.Machine, a *Assignment, m *comm.Matrix) {
	g := mach.FabricGraph()
	if g == nil {
		return
	}
	counts := make([]int, g.NumEdges())
	used := make([]bool, g.NumEdges())
	for i := 0; i < m.Order() && i < len(a.TaskPU); i++ {
		partnerUnbound, hasTraffic := false, false
		for e := range used {
			used[e] = false
		}
		for j := 0; j < m.Order() && j < len(a.TaskPU); j++ {
			if i == j || m.At(i, j)+m.At(j, i) == 0 {
				continue
			}
			hasTraffic = true
			pj := a.TaskPU[j]
			if a.TaskPU[i] < 0 || pj < 0 {
				partnerUnbound = true
				continue
			}
			ci, cj := mach.ClusterNodeOfPU(a.TaskPU[i]), mach.ClusterNodeOfPU(pj)
			if ci == cj {
				continue
			}
			for _, e := range mach.RoutedPathEdges(ci, cj) {
				used[e] = true
			}
		}
		switch {
		case !hasTraffic:
		case a.TaskPU[i] < 0 || partnerUnbound:
			for e := range counts {
				counts[e]++
			}
		default:
			for e, u := range used {
				if u {
					counts[e]++
				}
			}
		}
	}
	mach.SetEdgeStreams(counts)
}
