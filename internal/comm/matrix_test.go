package comm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	m := New(3)
	if m.Order() != 3 {
		t.Fatalf("Order = %d", m.Order())
	}
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Errorf("At(0,1) = %v, want 7", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %v, want 0 before AddSym", got)
	}
	m.AddSym(1, 2, 3)
	if m.At(1, 2) != 3 || m.At(2, 1) != 3 {
		t.Errorf("AddSym failed: %v %v", m.At(1, 2), m.At(2, 1))
	}
	m.AddSym(2, 2, 4)
	if m.At(2, 2) != 4 {
		t.Errorf("AddSym on diagonal doubled: %v", m.At(2, 2))
	}
	if m.IsSymmetric() {
		t.Errorf("matrix with (0,1)=7,(1,0)=0 reported symmetric")
	}
	m.Symmetrize()
	if !m.IsSymmetric() {
		t.Errorf("Symmetrize did not symmetrize")
	}
	if got := m.At(0, 1); got != 3.5 {
		t.Errorf("Symmetrize(0,1) = %v, want 3.5", got)
	}
}

func TestLabels(t *testing.T) {
	m := New(2)
	if m.Label(1) != "t1" {
		t.Errorf("default label = %q", m.Label(1))
	}
	m.SetLabel(1, "worker")
	if m.Label(1) != "worker" || m.Label(0) != "t0" {
		t.Errorf("labels = %q, %q", m.Label(0), m.Label(1))
	}
	c := m.Clone()
	c.SetLabel(0, "x")
	if m.Label(0) != "t0" {
		t.Errorf("Clone shares label storage")
	}
}

func TestTotalAndRowVolume(t *testing.T) {
	m := Ring(4, 10)
	// 4 edges × 10 × 2 directions.
	if got := m.TotalVolume(); got != 80 {
		t.Errorf("TotalVolume = %v, want 80", got)
	}
	if got := m.RowVolume(0); got != 20 {
		t.Errorf("RowVolume(0) = %v, want 20", got)
	}
	m.Set(0, 0, 99) // diagonal must not count
	if got := m.TotalVolume(); got != 80 {
		t.Errorf("TotalVolume with diagonal = %v, want 80", got)
	}
}

func TestAggregate(t *testing.T) {
	m := Ring(4, 1) // 0-1-2-3-0
	agg, err := m.Aggregate([][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if agg.Order() != 2 {
		t.Fatalf("order = %d", agg.Order())
	}
	// Internal volume of {0,1}: edge 0-1 counted in both directions = 2.
	if got := agg.At(0, 0); got != 2 {
		t.Errorf("internal volume = %v, want 2", got)
	}
	// Cross volume: edges 1-2 and 3-0, both directions = 2 per direction sum.
	if got := agg.At(0, 1); got != 2 {
		t.Errorf("cross volume = %v, want 2", got)
	}
	if !agg.IsSymmetric() {
		t.Errorf("aggregate of symmetric matrix not symmetric")
	}
}

func TestAggregateErrors(t *testing.T) {
	m := New(3)
	cases := [][][]int{
		{{0, 1}},         // missing entity 2
		{{0, 1}, {1, 2}}, // duplicate 1
		{{0, 1}, {2, 3}}, // out of range
		{{0}, {1}, {-1}}, // negative
	}
	for _, groups := range cases {
		if _, err := m.Aggregate(groups); err == nil {
			t.Errorf("Aggregate(%v) succeeded, want error", groups)
		}
	}
}

// TestAggregatePreservesVolume is the core conservation property of the
// paper's AggregateComMatrix step: grouping must neither create nor destroy
// communication volume (internal volume moves to the diagonal).
func TestAggregatePreservesVolume(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		n := 8
		m := Random(n, 0.6, 100, seed)
		k := int(split%3) + 2 // 2..4 groups
		groups := make([][]int, k)
		for i := 0; i < n; i++ {
			groups[i%k] = append(groups[i%k], i)
		}
		agg, err := m.Aggregate(groups)
		if err != nil {
			return false
		}
		// Total including diagonal must be conserved.
		var before, after float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				before += m.At(i, j)
			}
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				after += agg.At(i, j)
			}
		}
		return almostEqual(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+absf(a)+absf(b))
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestExtendZero(t *testing.T) {
	m := Ring(3, 5)
	m.SetLabel(0, "a")
	e, err := m.ExtendZero(5)
	if err != nil {
		t.Fatalf("ExtendZero: %v", err)
	}
	if e.Order() != 5 {
		t.Fatalf("order = %d", e.Order())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if e.At(i, j) != m.At(i, j) {
				t.Errorf("entry (%d,%d) changed: %v vs %v", i, j, e.At(i, j), m.At(i, j))
			}
		}
	}
	for i := 0; i < 5; i++ {
		if e.At(i, 4) != 0 || e.At(4, i) != 0 {
			t.Errorf("extended entries not zero at %d", i)
		}
	}
	if e.Label(0) != "a" || e.Label(4) != "v4" {
		t.Errorf("labels = %q, %q", e.Label(0), e.Label(4))
	}
	if _, err := m.ExtendZero(2); err == nil {
		t.Errorf("shrinking ExtendZero succeeded")
	}
}

func TestScaleMaxEqual(t *testing.T) {
	m := Ring(3, 5)
	if m.MaxEntry() != 5 {
		t.Errorf("MaxEntry = %v", m.MaxEntry())
	}
	c := m.Clone()
	c.Scale(2)
	if c.MaxEntry() != 10 {
		t.Errorf("scaled MaxEntry = %v", c.MaxEntry())
	}
	if c.Equal(m, 0.001) {
		t.Errorf("scaled matrix equal to original")
	}
	if !c.Equal(m.Clone().Scale(2), 1e-12) {
		t.Errorf("identical matrices not equal")
	}
	if m.Equal(New(2), 1) {
		t.Errorf("different orders reported equal")
	}
}

func TestRoundTripIO(t *testing.T) {
	m := Random(6, 0.5, 1e6, 42)
	m.SetLabel(2, "two")
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Equal(m, 1e-9) {
		t.Errorf("round trip changed entries")
	}
	if got.Label(2) != "two" {
		t.Errorf("round trip lost label: %q", got.Label(2))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"x\n",
		"2\n1 2\n",          // missing row
		"2\n1 2 3\n4 5 6\n", // wrong width
		"2\n1 a\n3 4\n",     // bad number
		"1\n0\n0\n",         // extra row
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestStringForms(t *testing.T) {
	small := Ring(3, 1)
	if !strings.Contains(small.String(), "\n") {
		t.Errorf("small String not rendered as grid: %q", small.String())
	}
	big := New(64)
	if !strings.Contains(big.String(), "order=64") {
		t.Errorf("large String = %q", big.String())
	}
}
