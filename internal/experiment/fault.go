package experiment

import (
	"fmt"
	"time"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
	"repro/internal/topology"
)

// The fault experiment (A14) is the resilience sibling of the phase-shift
// scenario (A12): the same rack-skewed stencil as A10, but what changes
// mid-run is the platform, not the pattern. At 2/5 of the run one node of
// rack 1 dies and its rack uplink degrades (the correlated half-failure of a
// real incident), so the runtime must evacuate the dead node's tasks into
// surviving capacity and keep going on a degraded fabric. The arms differ in
// how they pick the refuge and whether they keep adapting: static-with-
// respawn deals the orphans round-robin and never revisits anything,
// fault-blind evacuates first-fit and keeps the candidate loop alive, and
// fault-aware steers the orphaned block next to its heaviest surviving
// partners under the degraded prices. The spread arm additionally hardens
// the *initial* placement: Hierarchical.SpreadDomains forces the heaviest-
// coupled block pair onto different racks up front, trading a little
// locality for blast-radius isolation.

// FaultEventSpec is one scheduled platform failure in experiment
// coordinates: a kill names a cluster node, an edge fault names a fabric
// tree level and link index (resolved to a fabric-graph edge id by
// BuildFaultSchedule, so configurations stay readable across platform
// shapes).
type FaultEventSpec struct {
	// Epoch is the 1-based adaptive epoch at which the failure strikes.
	Epoch int
	// Kind is the failure type (kill node, degrade edge, sever edge).
	Kind topology.FaultKind
	// Node is the cluster node to kill (FaultKillNode only).
	Node int
	// Level and Link name the fabric edge for edge faults: level 0 holds the
	// per-node NIC links, level 1 the per-rack uplinks.
	Level, Link int
	// Factor is the remaining bandwidth fraction of a degrade, in (0,1).
	Factor float64
}

// FaultConfig parameterizes one fault-injection run.
type FaultConfig struct {
	// Racks, NodesPerRack, CoresPerNode, CoresPerSocket shape the platform
	// exactly as in the A10 rack scenario (defaults 2, 4, 8, 4). The default
	// rack is wider than A10's because a 2-node rack is degenerate for fault
	// handling: with only 3 survivors every refuge choice doubles up the same
	// way, and the arms cannot separate.
	Racks, NodesPerRack, CoresPerNode, CoresPerSocket int
	// Iters is the stencil iteration count (default 30) and EpochIters the
	// re-placement interval (default 3).
	Iters, EpochIters int
	// BlockBytes, HaloBytes, PairBytes, LinkBytes are the A10 stencil
	// volumes (defaults 1 MiB, 256 KiB, 320 KiB, 32 KiB).
	BlockBytes                      int64
	HaloBytes, PairBytes, LinkBytes float64
	// KillNode is the cluster node that dies (default: node NodesPerRack,
	// the first node of rack 1; -1 disables the default failure so only
	// Events apply). KillEpoch is the 1-based epoch it dies at (default:
	// the epoch closest to 2/5 of the run, matching A12's shift point).
	KillNode, KillEpoch int
	// DegradeFactor is the remaining bandwidth of the killed node's rack
	// uplink after the correlated degrade (default 0.5; negative disables
	// the degrade half of the default failure).
	DegradeFactor float64
	// Events overrides the default kill+degrade schedule entirely when
	// non-nil (experiment coordinates; see FaultEventSpec).
	Events []FaultEventSpec
	// Hysteresis and WindowDecay tune the adaptive engine.
	Hysteresis, WindowDecay float64
	// Fabric overrides the interconnect parameters, as in RackConfig.
	Fabric numasim.Fabric
	// Seed drives the simulated OS scheduler.
	Seed int64
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.Racks == 0 {
		c.Racks = 2
	}
	if c.NodesPerRack == 0 {
		c.NodesPerRack = 4
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 8
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 4
	}
	if c.Iters == 0 {
		c.Iters = 30
	}
	if c.EpochIters == 0 {
		c.EpochIters = 3
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 1 << 20
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 256 << 10
	}
	if c.PairBytes == 0 {
		c.PairBytes = 320 << 10
	}
	if c.LinkBytes == 0 {
		c.LinkBytes = 32 << 10
	}
	if c.KillNode == 0 {
		// The first node of rack 1: the kill orphans a whole block and the
		// correlated uplink degrade punishes evacuating it across racks.
		c.KillNode = c.NodesPerRack
	}
	if c.KillEpoch == 0 {
		// The failure lands at 2/5 of the run — the A12 shift point — so the
		// degraded phase dominates and recovery quality decides the ranking.
		c.KillEpoch = c.Iters / c.EpochIters * 2 / 5
		if c.KillEpoch < 1 {
			c.KillEpoch = 1
		}
	}
	if c.DegradeFactor == 0 {
		c.DegradeFactor = 0.5
	}
	return c
}

// rackConfig converts to the A10 configuration that builds the platform and
// the stencil: A14 reuses both, only the fault schedule is new.
func (c FaultConfig) rackConfig() RackConfig {
	return RackConfig{
		Racks:          c.Racks,
		NodesPerRack:   c.NodesPerRack,
		CoresPerNode:   c.CoresPerNode,
		CoresPerSocket: c.CoresPerSocket,
		Iters:          c.Iters,
		BlockBytes:     c.BlockBytes,
		HaloBytes:      c.HaloBytes,
		PairBytes:      c.PairBytes,
		LinkBytes:      c.LinkBytes,
		Fabric:         c.Fabric,
		Seed:           c.Seed,
	}
}

// effectiveEvents returns the fault schedule in experiment coordinates: the
// explicit Events override when set, else the default correlated failure —
// KillNode dies at KillEpoch and its rack's uplink drops to DegradeFactor.
func (c FaultConfig) effectiveEvents() []FaultEventSpec {
	if c.Events != nil {
		return c.Events
	}
	if c.KillNode < 0 {
		return nil
	}
	events := []FaultEventSpec{
		{Epoch: c.KillEpoch, Kind: topology.FaultKillNode, Node: c.KillNode},
	}
	if c.DegradeFactor > 0 {
		events = append(events, FaultEventSpec{
			Epoch: c.KillEpoch, Kind: topology.FaultDegradeEdge,
			Level: 1, Link: c.KillNode / c.NodesPerRack, Factor: c.DegradeFactor,
		})
	}
	return events
}

// Validate rejects configurations the fault pipeline cannot run.
func (c FaultConfig) Validate() error {
	d := c.withDefaults()
	if err := d.rackConfig().Validate(); err != nil {
		return err
	}
	if d.EpochIters < 1 {
		return fmt.Errorf("experiment: epoch interval %d must be positive", d.EpochIters)
	}
	nodes := d.Racks * d.NodesPerRack
	epochs := d.Iters / d.EpochIters
	for _, ev := range d.effectiveEvents() {
		if ev.Epoch < 1 {
			return fmt.Errorf("experiment: fault epoch %d is not 1-based", ev.Epoch)
		}
		if ev.Epoch > epochs {
			return fmt.Errorf("experiment: fault epoch %d beyond the run (%d iterations / %d per epoch = %d epochs)",
				ev.Epoch, d.Iters, d.EpochIters, epochs)
		}
		switch ev.Kind {
		case topology.FaultKillNode:
			if ev.Node < 0 || ev.Node >= nodes {
				return fmt.Errorf("experiment: fault kills unknown cluster node %d (have %d)", ev.Node, nodes)
			}
		case topology.FaultDegradeEdge:
			if !(ev.Factor > 0 && ev.Factor < 1) {
				return fmt.Errorf("experiment: degrade factor %v outside (0,1)", ev.Factor)
			}
		case topology.FaultSeverEdge:
			// Edge coordinates are resolved (and range-checked) against the
			// built platform by BuildFaultSchedule.
		default:
			return fmt.Errorf("experiment: unknown fault kind %d", ev.Kind)
		}
	}
	return nil
}

// BuildFaultSchedule resolves experiment-coordinate fault specs against a
// built platform topology: edge faults name a fabric tree (level, link) pair
// and resolve to the graph's edge id. The resulting schedule is validated
// against the topology, so conflicting or impossible events fail here, not
// mid-run.
func BuildFaultSchedule(topo *topology.Topology, specs []FaultEventSpec) (*topology.FaultSchedule, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	g := topo.FabricGraph()
	if g == nil {
		return nil, fmt.Errorf("experiment: fault schedule needs a multi-node fabric")
	}
	s := &topology.FaultSchedule{}
	for _, spec := range specs {
		ev := topology.FaultEvent{Epoch: spec.Epoch, Kind: spec.Kind, Node: spec.Node, Factor: spec.Factor}
		if spec.Kind == topology.FaultDegradeEdge || spec.Kind == topology.FaultSeverEdge {
			if spec.Level < 0 || spec.Level >= g.NumLevels() {
				return nil, fmt.Errorf("experiment: fault names fabric level %d (have %d)", spec.Level, g.NumLevels())
			}
			links := g.LevelEdges(spec.Level)
			if spec.Link < 0 || spec.Link >= len(links) {
				return nil, fmt.Errorf("experiment: fault names link %d of fabric level %d (have %d)",
					spec.Link, spec.Level, len(links))
			}
			ev.Edge = links[spec.Link]
		}
		s.Events = append(s.Events, ev)
	}
	if err := s.Validate(topo); err != nil {
		return nil, err
	}
	return s, nil
}

// FaultModes lists the arms of the fault ablation in report order: the
// fault-aware adaptive engine first (the speedup base), then the spread-
// hardened initial placement, the fault-blind engine, and the static-with-
// respawn baseline.
func FaultModes() []string {
	return []string{"fault-aware", "spread", "fault-blind", "static-respawn"}
}

// FaultResult reports one fault-injection run.
type FaultResult struct {
	Mode    string
	Seconds float64
	// WallSeconds is the real time the whole arm took (platform build,
	// placement, simulated run including the mid-run evacuation): the
	// bench-pipeline gate against a complexity blowup in the fault path.
	WallSeconds float64
	// Stats is the adaptive engine's decision record, including the fault
	// epoch count, the forced evacuations and their modeled bill.
	Stats placement.AdaptiveStats
}

// String renders a one-line summary.
func (r FaultResult) String() string {
	return fmt.Sprintf("%-15s time=%8.3fs faults=%d evac=%d rebinds=%d cross-rack=%d",
		r.Mode, r.Seconds, r.Stats.FaultEpochs, r.Stats.Evacuations,
		r.Stats.Rebinds, r.Stats.CrossRackRebinds)
}

// faultArm returns the initial placement policy and FaultMode of one arm.
func faultArm(mode string) (base placement.Policy, fm placement.FaultMode, err error) {
	switch mode {
	case "fault-aware":
		return placement.Hierarchical{}, placement.FaultAware, nil
	case "spread":
		return placement.Hierarchical{SpreadDomains: true}, placement.FaultAware, nil
	case "fault-blind":
		return placement.Hierarchical{}, placement.FaultBlind, nil
	case "static-respawn":
		return placement.Hierarchical{}, placement.FaultRespawn, nil
	default:
		return nil, 0, fmt.Errorf("experiment: unknown fault mode %q", mode)
	}
}

// RunFault executes the rack-skewed stencil under one fault-handling mode:
//
//   - "fault-aware": the adaptive engine evacuates the dead node's tasks
//     next to their heaviest surviving partners under the degraded fabric
//     prices, and keeps adapting afterwards;
//   - "spread": fault-aware on top of a SpreadDomains initial placement
//     (the critical block pair starts rack-separated);
//   - "fault-blind": the engine evacuates first-fit in node order, then
//     keeps adapting;
//   - "static-respawn": the one-shot placement with forced round-robin
//     respawn of the orphans — no adaptation at all.
func RunFault(mode string, cfg FaultConfig) (FaultResult, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return FaultResult{}, err
	}
	cfg = cfg.withDefaults()
	base, fm, err := faultArm(mode)
	if err != nil {
		return FaultResult{}, err
	}
	cluster, err := RackCluster(cfg.rackConfig())
	if err != nil {
		return FaultResult{}, err
	}
	mach := cluster.Machine()
	schedule, err := BuildFaultSchedule(mach.Topology(), cfg.effectiveEvents())
	if err != nil {
		return FaultResult{}, err
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildRackStencil(rt, cfg.rackConfig()); err != nil {
		return FaultResult{}, err
	}
	eng, err := placement.PlaceAdaptive(rt, placement.AdaptiveOptions{
		Base:        base,
		Candidate:   placement.Hierarchical{},
		EpochIters:  cfg.EpochIters,
		Hysteresis:  cfg.Hysteresis,
		WindowDecay: cfg.WindowDecay,
		Faults:      schedule,
		FaultMode:   fm,
	})
	if err != nil {
		return FaultResult{}, err
	}
	a := eng.Assignment()
	placement.SetContention(mach, a, nil)
	placement.SetFabricContention(mach, a, rt.CommMatrix())
	if err := rt.Run(); err != nil {
		return FaultResult{}, err
	}
	if err := eng.Err(); err != nil {
		return FaultResult{}, err
	}
	return FaultResult{
		Mode:        mode,
		Seconds:     rt.MakespanSeconds(),
		WallSeconds: time.Since(start).Seconds(),
		Stats:       eng.Stats(),
	}, nil
}

// AblationFault (A14) compares the fault-handling arms on the rack-skewed
// stencil with a mid-run correlated failure.
func AblationFault(cfg FaultConfig) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, mode := range FaultModes() {
		res, err := RunFault(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation fault, %s: %w", mode, err)
		}
		rows = append(rows, AblationRow{
			Name:    "fault/" + mode,
			Seconds: res.Seconds,
			Detail: fmt.Sprintf("faults=%d evac=%d rebinds=%d cross-rack=%d",
				res.Stats.FaultEpochs, res.Stats.Evacuations,
				res.Stats.Rebinds, res.Stats.CrossRackRebinds),
			WallSeconds: res.WallSeconds,
		})
	}
	return rows, nil
}

// FaultConfigFrom derives the fault configuration from the common ablation
// Config, with the same shape rule as A10/A12: 2 racks of fixed 8-core
// nodes, the node count scaled so the total core count comes close to
// cfg.Cores (minimum 4 nodes per rack — below that the kill leaves too few
// survivors for the refuge choice to matter, see FaultConfig).
func FaultConfigFrom(cfg Config) FaultConfig {
	cfg = cfg.withDefaults()
	perRack := cfg.Cores / 16
	if perRack < 4 {
		perRack = 4
	}
	return FaultConfig{
		Racks:          2,
		NodesPerRack:   perRack,
		CoresPerNode:   8,
		CoresPerSocket: 4,
		Seed:           cfg.Seed,
	}
}
