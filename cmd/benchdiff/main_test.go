package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseDoc = `{
  "schema": "repro-bench/1",
  "seed": 7,
  "ablations": [
    {"exp": "scale", "id": "S1", "title": "S1", "rows": [
      {"name": "scale/stencil/10k-tasks/100-nodes", "seconds": 0, "cycles": 0, "wall_seconds": 1.0},
      {"name": "scale/random/10k-tasks/100-nodes", "seconds": 0, "cycles": 0, "wall_seconds": 2.0}
    ]},
    {"exp": "shift", "id": "A12", "title": "A12", "rows": [
      {"name": "phase/static", "seconds": 3.5, "cycles": 1e9}
    ]}
  ]
}`

func TestDiffPassesWithinFactor(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	cur := writeReport(t, dir, "cur.json", strings.NewReplacer(
		`"wall_seconds": 1.0`, `"wall_seconds": 1.9`,
		`"wall_seconds": 2.0`, `"wall_seconds": 0.5`,
	).Replace(baseDoc))
	var buf bytes.Buffer
	if err := diff(&buf, base, cur, 2); err != nil {
		t.Fatalf("within-factor run failed: %v\n%s", err, buf.String())
	}
	// Simulated rows (no wall_seconds) are not part of the gate.
	if strings.Contains(buf.String(), "phase/static") {
		t.Errorf("simulated row leaked into the wall-time table:\n%s", buf.String())
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	cur := writeReport(t, dir, "cur.json",
		strings.Replace(baseDoc, `"wall_seconds": 1.0`, `"wall_seconds": 2.5`, 1))
	var buf bytes.Buffer
	err := diff(&buf, base, cur, 2)
	if err == nil {
		t.Fatalf("2.5x regression passed a 2x gate:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "scale/scale/stencil/10k-tasks/100-nodes") {
		t.Errorf("error does not name the regressed row: %v", err)
	}
}

func TestDiffFailsOnMissingRow(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	cur := writeReport(t, dir, "cur.json",
		strings.Replace(baseDoc, `"wall_seconds": 2.0`, `"wall_seconds": 0`, 1))
	var buf bytes.Buffer
	err := diff(&buf, base, cur, 2)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("dropped row not reported: %v\n%s", err, buf.String())
	}
}

const manifestDoc = `{
  "schema": "repro-bench-manifest/1",
  "tiers": [
    {"exp": "scale", "artifact": "BENCH_A.json", "flags": ["-scale-tasks", "10000"], "factor": 2},
    {"exp": "adaptive,shift", "artifact": "BENCH_B.json", "flags": [], "factor": 0}
  ]
}`

const simOnlyDoc = `{
  "schema": "repro-bench/1",
  "ablations": [{"exp": "shift", "rows": [{"name": "phase/static", "seconds": 3.5}]}]
}`

// TestManifestPasses: a complete manifest — every gated tier has a
// wall-carrying baseline, every committed BENCH file is referenced.
func TestManifestPasses(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "BENCH_A.json", baseDoc)
	writeReport(t, dir, "BENCH_B.json", simOnlyDoc)
	manifest := writeReport(t, dir, "manifest.json", manifestDoc)
	var buf bytes.Buffer
	if err := checkManifest(&buf, manifest); err != nil {
		t.Fatalf("complete manifest failed: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"wall-gated x2", "ordering-gated"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("manifest table misses %q:\n%s", want, buf.String())
		}
	}
}

// TestManifestFailsOnUnreferencedBaseline: a committed BENCH file no tier
// claims means a baseline silently stopped being gated.
func TestManifestFailsOnUnreferencedBaseline(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "BENCH_A.json", baseDoc)
	writeReport(t, dir, "BENCH_B.json", simOnlyDoc)
	writeReport(t, dir, "BENCH_ORPHAN.json", baseDoc)
	manifest := writeReport(t, dir, "manifest.json", manifestDoc)
	err := checkManifest(io.Discard, manifest)
	if err == nil || !strings.Contains(err.Error(), "BENCH_ORPHAN.json") {
		t.Fatalf("orphan baseline not reported: %v", err)
	}
}

// TestManifestFailsOnBadTiers: a gated tier without a usable baseline, a
// wall-less baseline, duplicate artifacts and schema drift all fail.
func TestManifestFailsOnBadTiers(t *testing.T) {
	cases := []struct {
		name     string
		manifest string
		files    map[string]string
		wantErr  string
	}{
		{"missing baseline", manifestDoc, map[string]string{"BENCH_B.json": simOnlyDoc}, "BENCH_A.json"},
		{"baseline without walls", manifestDoc,
			map[string]string{"BENCH_A.json": simOnlyDoc, "BENCH_B.json": simOnlyDoc}, "no wall_seconds"},
		{"wrong schema", strings.Replace(manifestDoc, "repro-bench-manifest/1", "repro-bench-manifest/999", 1),
			nil, "schema"},
		{"no tiers", `{"schema": "repro-bench-manifest/1", "tiers": []}`, nil, "no tiers"},
		{"unnamed artifact", `{"schema": "repro-bench-manifest/1", "tiers": [{"exp": "scale", "factor": 0}]}`,
			nil, "required"},
		{"negative factor", `{"schema": "repro-bench-manifest/1", "tiers": [{"exp": "a", "artifact": "x.json", "factor": -1}]}`,
			nil, "negative factor"},
		{"duplicate artifact", `{"schema": "repro-bench-manifest/1", "tiers": [
			{"exp": "a", "artifact": "x.json", "factor": 0},
			{"exp": "b", "artifact": "x.json", "factor": 0}]}`, nil, "already claimed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for name, body := range tc.files {
				writeReport(t, dir, name, body)
			}
			manifest := writeReport(t, dir, "manifest.json", tc.manifest)
			err := checkManifest(io.Discard, manifest)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRepoManifestComplete pins the committed manifest itself: it must pass
// the completeness check against the committed bench/ baselines, so adding
// a BENCH file without wiring it into the CI loop fails here first.
func TestRepoManifestComplete(t *testing.T) {
	if err := checkManifest(io.Discard, filepath.Join("..", "..", "bench", "manifest.json")); err != nil {
		t.Fatalf("committed bench/manifest.json incomplete: %v", err)
	}
}

func TestDiffRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	wrongSchema := writeReport(t, dir, "schema.json",
		strings.Replace(baseDoc, "repro-bench/1", "repro-bench/999", 1))
	noWalls := writeReport(t, dir, "nowalls.json", `{
  "schema": "repro-bench/1",
  "ablations": [{"exp": "shift", "rows": [{"name": "phase/static", "seconds": 3.5}]}]
}`)
	var buf bytes.Buffer
	if err := diff(&buf, base, wrongSchema, 2); err == nil {
		t.Error("mismatched schema accepted")
	}
	if err := diff(&buf, noWalls, base, 2); err == nil {
		t.Error("baseline without wall rows accepted")
	}
	if err := diff(&buf, base, base, 0); err == nil {
		t.Error("non-positive factor accepted")
	}
	if err := diff(&buf, filepath.Join(dir, "absent.json"), base, 2); err == nil {
		t.Error("missing baseline file accepted")
	}
}
