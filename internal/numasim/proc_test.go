package numasim

import (
	"testing"
)

func TestBoundProcBasics(t *testing.T) {
	m := paperMachine(t)
	p, err := m.NewProc("t0", 5)
	if err != nil {
		t.Fatalf("NewProc: %v", err)
	}
	if !p.Bound() || p.PU() != 5 || p.Name() != "t0" {
		t.Errorf("proc state wrong: %v %d %q", p.Bound(), p.PU(), p.Name())
	}
	if p.Clock() != 0 {
		t.Errorf("fresh clock = %v", p.Clock())
	}
	p.Compute(1000)
	// 1000 flops at 2 flops/cycle = 500 cycles.
	if got := p.Clock(); got != 500 {
		t.Errorf("clock after compute = %v, want 500", got)
	}
	p.ComputeCycles(100)
	if got := p.Clock(); got != 600 {
		t.Errorf("clock = %v, want 600", got)
	}
	if _, err := m.NewProc("bad", 999); err == nil {
		t.Errorf("out-of-range PU accepted")
	}
	if p.Seconds() <= 0 {
		t.Errorf("Seconds = %v", p.Seconds())
	}
}

func TestMemAccessCharges(t *testing.T) {
	m := paperMachine(t)
	p, _ := m.NewProc("t0", 0)
	local, _ := m.AllocOn("local", 1<<20, 0)
	remote, _ := m.AllocOn("remote", 1<<20, 20)
	p.MemRead(local, 1<<20)
	localCost := p.Clock()
	p2, _ := m.NewProc("t1", 1)
	p2.MemRead(remote, 1<<20)
	remoteCost := p2.Clock()
	if !(localCost > 0 && remoteCost > localCost) {
		t.Errorf("costs: local %v remote %v", localCost, remoteCost)
	}
	st := p.Stats()
	if st.MemoryCycles != localCost || st.BytesMoved != 1<<20 {
		t.Errorf("stats = %+v", st)
	}
	// Zero-byte access is free.
	before := p.Clock()
	p.MemWrite(local, 0)
	if p.Clock() != before {
		t.Errorf("zero-byte write charged")
	}
}

func TestFirstTouchSetsHome(t *testing.T) {
	m := paperMachine(t)
	p, _ := m.NewProc("t0", 100) // PU 100 lives on node 12
	r := m.AllocFirstTouch("data", 1<<20)
	p.Touch(r)
	if got := r.Home(); got != m.NodeOfPU(100) {
		t.Errorf("home = %d, want %d", got, m.NodeOfPU(100))
	}
	// Subsequent access from elsewhere does not re-home.
	p2, _ := m.NewProc("t1", 0)
	p2.MemRead(r, 100)
	if got := r.Home(); got != m.NodeOfPU(100) {
		t.Errorf("home moved to %d", got)
	}
}

func TestInterleavedCostBetweenLocalAndRemote(t *testing.T) {
	m := paperMachine(t)
	pl, _ := m.NewProc("l", 0)
	pr, _ := m.NewProc("r", 1)
	pi, _ := m.NewProc("i", 2)
	local, _ := m.AllocOn("L", 1<<22, 0)
	remote, _ := m.AllocOn("R", 1<<22, 23)
	inter := m.AllocInterleaved("I", 1<<22)
	pl.MemRead(local, 1<<22)
	pr.MemRead(remote, 1<<22)
	pi.MemRead(inter, 1<<22)
	if !(pl.Clock() < pi.Clock() && pi.Clock() < pr.Clock()) {
		t.Errorf("interleaved cost %v not between local %v and remote %v",
			pi.Clock(), pl.Clock(), pr.Clock())
	}
}

func TestSweepWorkingSetCacheEffect(t *testing.T) {
	m := paperMachine(t)
	p, _ := m.NewProc("t0", 0)
	r, _ := m.AllocOn("d", 1<<26, 0)
	small := int64(1 << 16) // fits in the L3 share
	big := int64(1 << 26)   // far larger than the L3

	p.SweepWorkingSet(r, small)
	smallCost := p.Clock()
	p2, _ := m.NewProc("t1", 1)
	p2.SweepWorkingSet(r, big)
	bigCost := p2.Clock()
	// Per byte, the cached sweep must be much cheaper.
	perSmall := smallCost / float64(small)
	perBig := bigCost / float64(big)
	if perSmall >= perBig {
		t.Errorf("cache effect missing: %v/byte (small) vs %v/byte (big)", perSmall, perBig)
	}
}

func TestAdvanceToRecordsWait(t *testing.T) {
	m := paperMachine(t)
	p, _ := m.NewProc("t0", 0)
	p.ComputeCycles(100)
	p.AdvanceTo(50) // in the past: no-op
	if p.Clock() != 100 {
		t.Errorf("AdvanceTo moved clock backwards: %v", p.Clock())
	}
	p.AdvanceTo(400)
	if p.Clock() != 400 {
		t.Errorf("AdvanceTo = %v, want 400", p.Clock())
	}
	if got := p.Stats().WaitCycles; got != 300 {
		t.Errorf("WaitCycles = %v, want 300", got)
	}
}

func TestUnboundRescheduleDeterministic(t *testing.T) {
	m := paperMachine(t)
	run := func(seed int64) (int, float64) {
		p := m.NewUnboundProc("u", seed)
		for i := 0; i < 50; i++ {
			p.Reschedule(1.0)
			p.ComputeCycles(10)
		}
		return p.Stats().Migrations, p.Clock()
	}
	m1, c1 := run(42)
	m2, c2 := run(42)
	if m1 != m2 || c1 != c2 {
		t.Errorf("unbound runs with same seed differ: (%d,%v) vs (%d,%v)", m1, c1, m2, c2)
	}
	if m1 == 0 {
		t.Errorf("no migrations with probability 1")
	}
	m3, _ := run(43)
	_ = m3 // different seed may legitimately coincide; only determinism is asserted
}

func TestBoundProcNeverMigrates(t *testing.T) {
	m := paperMachine(t)
	p, _ := m.NewProc("b", 7)
	for i := 0; i < 20; i++ {
		p.Reschedule(1.0)
	}
	if p.PU() != 7 || p.Stats().Migrations != 0 {
		t.Errorf("bound proc migrated: pu=%d migrations=%d", p.PU(), p.Stats().Migrations)
	}
}

func TestMigrationMakesProcCold(t *testing.T) {
	m := paperMachine(t)
	r, _ := m.AllocOn("d", 1<<26, 0)
	small := int64(1 << 16)

	warm := m.NewUnboundProc("w", 1)
	warm.SweepWorkingSet(r, small) // first sweep warms nothing here, but sets baseline
	base := warm.Clock()
	warm.SweepWorkingSet(r, small)
	warmCost := warm.Clock() - base

	cold := m.NewUnboundProc("c", 1)
	cold.SweepWorkingSet(r, small)
	mid := cold.Clock()
	// Force a migration, then sweep again: must pay full traffic + penalty.
	for i := 0; cold.Stats().Migrations == 0 && i < 100; i++ {
		cold.Reschedule(1.0)
	}
	if cold.Stats().Migrations == 0 {
		t.Fatalf("could not trigger migration")
	}
	afterMig := cold.Clock()
	cold.SweepWorkingSet(r, small)
	coldCost := cold.Clock() - afterMig
	if coldCost <= warmCost {
		t.Errorf("cold sweep %v not above warm sweep %v", coldCost, warmCost)
	}
	if afterMig-mid < m.Config().MigrationPenaltyCycles {
		t.Errorf("migration penalty not charged")
	}
}

func TestSMTInflation(t *testing.T) {
	m := smallMachine(t, "pack:1 core:2 pu:2")
	solo, _ := m.NewProc("solo", 2) // core 1, alone
	solo.Compute(1000)
	soloCost := solo.Clock()

	a, _ := m.NewProc("a", 0) // core 0, PU 0
	b, _ := m.NewProc("b", 1) // core 0, PU 1: core now shared
	a.Compute(1000)
	if a.Clock() <= soloCost {
		t.Errorf("SMT-shared compute %v not above solo %v", a.Clock(), soloCost)
	}
	// Releasing both occupants removes the inflation for new work.
	a.Release()
	b.Release()
	a2, _ := m.NewProc("a2", 0)
	a2.Compute(1000)
	if a2.Clock() > soloCost*1.01 {
		t.Errorf("inflation persists after release: %v vs %v", a2.Clock(), soloCost)
	}
	// Double release is a no-op.
	a.Release()
}

func TestMakespan(t *testing.T) {
	m := paperMachine(t)
	var procs []*Proc
	for i := 0; i < 4; i++ {
		p, _ := m.NewProc("p", i)
		p.ComputeCycles(float64(100 * (i + 1)))
		procs = append(procs, p)
	}
	if got := Makespan(procs); got != 400 {
		t.Errorf("Makespan = %v, want 400", got)
	}
	if Makespan(nil) != 0 {
		t.Errorf("empty makespan != 0")
	}
}

func TestChargeTransfer(t *testing.T) {
	m := paperMachine(t)
	p, _ := m.NewProc("t", 0)
	p.ChargeTransfer(250)
	p.ChargeTransfer(-5) // ignored
	if p.Clock() != 250 || p.Stats().TransferCycles != 250 {
		t.Errorf("transfer accounting: clock=%v stats=%+v", p.Clock(), p.Stats())
	}
}
