package treematch

import (
	"testing"

	"repro/internal/comm"
)

// TestSFCOrderCoversAdjacent checks the two space-filling-curve properties
// every shape must satisfy: the order is a permutation of the cells, and
// consecutive cells are grid-adjacent (unit step in one coordinate).
func TestSFCOrderCoversAdjacent(t *testing.T) {
	for _, dims := range [][]int{
		{4, 4},    // Hilbert
		{8, 8},    // Hilbert
		{2, 3},    // snake
		{4, 6},    // snake (non-square)
		{3, 3},    // snake (square, not power of two)
		{2, 2, 4}, // snake, 3-D
		{5},       // 1-D
	} {
		total := 1
		for _, d := range dims {
			total *= d
		}
		order := SFCOrder(dims)
		if len(order) != total {
			t.Fatalf("%v: SFCOrder has %d cells, want %d", dims, len(order), total)
		}
		seen := make([]bool, total)
		for _, id := range order {
			if id < 0 || id >= total || seen[id] {
				t.Fatalf("%v: order %v is not a permutation", dims, order)
			}
			seen[id] = true
		}
		coords := func(id int) []int {
			c := make([]int, len(dims))
			for k := len(dims) - 1; k >= 0; k-- {
				c[k] = id % dims[k]
				id /= dims[k]
			}
			return c
		}
		for i := 1; i < total; i++ {
			a, b := coords(order[i-1]), coords(order[i])
			diff := 0
			for k := range dims {
				d := a[k] - b[k]
				if d < 0 {
					d = -d
				}
				diff += d
			}
			if diff != 1 {
				t.Fatalf("%v: cells %v and %v at curve positions %d,%d are not adjacent",
					dims, a, b, i-1, i)
			}
		}
	}
}

func TestSFCSeedChainsNeighbours(t *testing.T) {
	// A ring matrix laid out along the curve keeps every heavy pair on
	// adjacent cells except the wrap edge.
	dims := []int{4, 4}
	m := comm.New(16)
	for i := 0; i < 16; i++ {
		m.Add(i, (i+1)%16, 100)
	}
	seed, err := SFCSeed(dims, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SFCSeed(dims, comm.New(7)); err == nil {
		t.Error("mis-sized matrix accepted")
	}
	seen := make([]bool, 16)
	for _, c := range seed {
		if seen[c] {
			t.Fatalf("seed %v is not a permutation", seed)
		}
		seen[c] = true
	}
}

func TestChainPartitionRuns(t *testing.T) {
	m := comm.New(8)
	for i := 0; i < 8; i++ {
		m.Add(i, (i+1)%8, 10)
	}
	groups := chainPartition(m, 4, 2)
	if len(groups) != 4 {
		t.Fatalf("chainPartition made %d groups, want 4", len(groups))
	}
	total := 0
	for _, g := range groups {
		if len(g) != 2 {
			t.Fatalf("group sizes %v, want 2 each", groups)
		}
		total += len(g)
	}
	if total != 8 {
		t.Fatalf("groups cover %d entities, want 8", total)
	}
}

// TestSFCDimsGateKeepsPortfolio pins that a nil SFCDims leaves the
// PartitionAcross winner unchanged, and a matching SFCDims still returns a
// valid equal partition.
func TestSFCDimsGateKeepsPortfolio(t *testing.T) {
	m := comm.New(16)
	for i := 0; i < 16; i++ {
		m.Add(i, (i+1)%16, 10)
		m.Add(i, (i+5)%16, 3)
	}
	base, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for gi := range base {
		for ei := range base[gi] {
			if base[gi][ei] != again[gi][ei] {
				t.Fatalf("PartitionAcross not deterministic: %v vs %v", base, again)
			}
		}
	}
	gated, err := PartitionAcross(m, 4, Options{SFCDims: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, g := range gated {
		count += len(g)
	}
	if count != 16 {
		t.Fatalf("gated partition covers %d entities, want 16", count)
	}
}
