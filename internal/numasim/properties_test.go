package numasim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// TestMemCostMonotoneInBytes: moving more bytes never costs less.
func TestMemCostMonotoneInBytes(t *testing.T) {
	m := paperMachine(t)
	f := func(puSel, nodeSel uint8, b1, b2 uint16) bool {
		pu := int(puSel) % m.Topology().NumPUs()
		node := int(nodeSel) % m.Topology().NumNUMANodes()
		lo, hi := float64(b1), float64(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.memCostCycles(pu, node, lo) <= m.memCostCycles(pu, node, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// TestMemCostMonotoneInContention: more accessors never make access faster.
func TestMemCostMonotoneInContention(t *testing.T) {
	m := paperMachine(t)
	prev := 0.0
	for acc := 1; acc <= 32; acc *= 2 {
		m.SetAccessors(5, acc)
		c := m.memCostCycles(0, 5, 1<<20)
		if c < prev {
			t.Errorf("cost decreased with contention at %d accessors: %v < %v", acc, c, prev)
		}
		prev = c
	}
	m.ResetAccessors()
}

// TestRemoteStreamsCapBandwidth: declaring fabric contention slows remote
// accesses but never local ones.
func TestRemoteStreamsCapBandwidth(t *testing.T) {
	m := paperMachine(t)
	localBefore := m.memCostCycles(0, 0, 1<<22)
	remoteBefore := m.memCostCycles(0, 12, 1<<22)
	m.SetRemoteStreams(200)
	localAfter := m.memCostCycles(0, 0, 1<<22)
	remoteAfter := m.memCostCycles(0, 12, 1<<22)
	if localAfter != localBefore {
		t.Errorf("local cost changed with remote streams: %v vs %v", localAfter, localBefore)
	}
	if remoteAfter <= remoteBefore {
		t.Errorf("remote cost did not grow under fabric contention: %v vs %v", remoteAfter, remoteBefore)
	}
	m.SetRemoteStreams(-1) // clamps to 0
	if m.RemoteStreams() != 0 {
		t.Errorf("negative remote streams = %d", m.RemoteStreams())
	}
}

// TestTransferCostMonotoneInDistance: same PU <= shared cache <= same node
// <= remote, for a fixed payload.
func TestTransferCostMonotoneInDistance(t *testing.T) {
	top, err := topology.FromSpec("pack:2 numa:2 l3:1 core:2 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(top, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// PUs: 0,1 share an L3 (node 0); 2,3 on node 1 same package; 4.. other
	// package.
	const bytes = 1 << 16
	same := m.TransferCost(0, 0, bytes)
	cache := m.TransferCost(0, 1, bytes)
	intraPack := m.TransferCost(0, 2, bytes)
	cross := m.TransferCost(0, 4, bytes)
	if !(same <= cache && cache <= intraPack && intraPack <= cross) {
		t.Errorf("transfer not monotone: same=%v cache=%v intra=%v cross=%v",
			same, cache, intraPack, cross)
	}
}

// TestDeterministicAcrossMachines: two identically-built machines price
// identical workloads identically.
func TestDeterministicAcrossMachines(t *testing.T) {
	run := func() float64 {
		m := paperMachine(t)
		m.SetAccessors(0, 4)
		m.SetRemoteStreams(10)
		p, err := m.NewProc("t", 3)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.AllocOn("d", 1<<24, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			p.Compute(1e6)
			p.MemRead(r, 1<<16)
			p.SweepWorkingSet(r, 1<<20)
		}
		return p.Clock()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical machines priced differently: %v vs %v", a, b)
	}
}

// TestCustomAttrsPropagate: custom topology attributes flow into the cost
// model.
func TestCustomAttrsPropagate(t *testing.T) {
	slow := topology.DefaultAttrs()
	slow.MemBandwidth = slow.MemBandwidth / 4
	topoSlow, err := topology.FromSpecAttrs("pack:2 core:4 pu:1", slow)
	if err != nil {
		t.Fatal(err)
	}
	mSlow, err := New(topoSlow, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mFast := smallMachine(t, "pack:2 core:4 pu:1")
	costSlow := mSlow.memCostCycles(0, 0, 1<<24)
	costFast := mFast.memCostCycles(0, 0, 1<<24)
	if costSlow <= costFast*2 {
		t.Errorf("quarter bandwidth not reflected: slow %v vs fast %v", costSlow, costFast)
	}
}

// TestConfigOverrides: explicit Config fields survive the defaulting.
func TestConfigOverrides(t *testing.T) {
	m, err := New(topology.PaperMachine(), Config{
		FlopsPerCycle:         8,
		InterconnectBandwidth: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.FlopsPerCycle != 8 || cfg.InterconnectBandwidth != 1e9 {
		t.Errorf("overrides lost: %+v", cfg)
	}
	if cfg.SMTComputeInflation != DefaultConfig().SMTComputeInflation {
		t.Errorf("unset field not defaulted: %+v", cfg)
	}
	p, err := m.NewProc("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Compute(800)
	if p.Clock() != 100 {
		t.Errorf("8 flops/cycle: clock = %v, want 100", p.Clock())
	}
}
