package placement

import (
	"reflect"
	"testing"

	"repro/internal/comm"
)

// criticalPairMatrix builds 4 blocks of 2 tasks: heavy intra-block halos keep
// each block a partition group, blocks 0 and 1 exchange by far the heaviest
// inter-group volume (the critical pair the fabric matching wants to co-rack),
// and blocks 2 and 3 exchange a lighter stream.
func criticalPairMatrix() *comm.Matrix {
	m := comm.New(8)
	for b := 0; b < 4; b++ {
		m.AddSym(b*2, b*2+1, 1000)
	}
	m.AddSym(0, 2, 200) // blocks 0↔1: the critical pair
	m.AddSym(4, 6, 50)  // blocks 2↔3: lighter coupling
	return m
}

// TestSpreadDomainsSeparatesCriticalPair pins the fault-aware initial
// placement arm: the default matching co-racks the heaviest-coupled group
// pair (that is its objective), and SpreadDomains forces exactly that pair
// onto different racks, while keeping every placement invariant intact.
func TestSpreadDomainsSeparatesCriticalPair(t *testing.T) {
	m := criticalPairMatrix()
	rackOfTask := func(a *Assignment, task int) int {
		mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
		return mach.RackOfClusterNode(mach.ClusterNodeOfPU(a.TaskPU[task]))
	}

	mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	def, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if rackOfTask(def, 0) != rackOfTask(def, 2) {
		t.Fatalf("default matching rack-separated the critical pair; the spread pass has nothing to prove")
	}

	spread, err := Hierarchical{SpreadDomains: true}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if rackOfTask(spread, 0) == rackOfTask(spread, 2) {
		t.Errorf("SpreadDomains left the critical pair (blocks 0 and 1) in one rack")
	}
	// The spread is a swap: the invariants of the matched placement survive.
	topo := mach.Topology()
	perNode := map[int]int{}
	for task, pu := range spread.TaskPU {
		if pu < 0 || pu >= topo.NumPUs() {
			t.Fatalf("task %d on PU %d, out of range", task, pu)
		}
		perNode[mach.ClusterNodeOfPU(pu)]++
	}
	for node, got := range perNode {
		if got > 2 {
			t.Errorf("node %d holds %d tasks, capacity is 2", node, got)
		}
	}
	// Blocks stay whole: spreading moves groups, it never splits them.
	for b := 0; b < 4; b++ {
		if mach.ClusterNodeOfPU(spread.TaskPU[b*2]) != mach.ClusterNodeOfPU(spread.TaskPU[b*2+1]) {
			t.Errorf("block %d split across cluster nodes by the spread pass", b)
		}
	}
	// Deterministic: the identical input yields the identical assignment.
	again, err := Hierarchical{SpreadDomains: true}.Assign(machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1"), m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spread, again) {
		t.Error("SpreadDomains assignment differs between identical runs")
	}
}

// TestSpreadDomainsNoopCases pins where the spread pass must change nothing:
// on a single-switch fabric there is no rack to spread across, and with zero
// traffic there is no critical pair to protect.
func TestSpreadDomainsNoopCases(t *testing.T) {
	m := criticalPairMatrix()
	flat := machine(t, "cluster:4 pack:1 l3:1 core:2 pu:1")
	a, err := Hierarchical{}.Assign(flat, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hierarchical{SpreadDomains: true}.Assign(flat, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("SpreadDomains changed the assignment on a single-switch fabric")
	}

	racked := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	quiet := comm.New(8)
	qa, err := Hierarchical{}.Assign(racked, quiet)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := Hierarchical{SpreadDomains: true}.Assign(racked, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qa, qb) {
		t.Error("SpreadDomains changed the assignment of a traffic-free program")
	}
}
