package topology

import (
	"strings"
	"testing"
)

func TestParsePlatformHomogeneous(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		nodes int
		fused string // substring the fused spec must contain
	}{
		{"pack:2 core:8", 1, "pack:2"},
		{"cluster:4 pack:2 core:8", 4, "cluster:4 pack:2"},
		{"node:4 pack:2 core:8", 4, "cluster:4 pack:2"},
		{"rack:2 node:2 pack:1 core:4", 4, "rack:2 cluster:2"},
		{"pod:2 rack:2 node:2 pack:1 core:4", 8, "pod:2 rack:2 cluster:2"},
	} {
		p, err := ParsePlatform(tc.spec)
		if err != nil {
			t.Errorf("ParsePlatform(%q): %v", tc.spec, err)
			continue
		}
		if p.Nodes() != tc.nodes {
			t.Errorf("%q: %d nodes, want %d", tc.spec, p.Nodes(), tc.nodes)
		}
		if !p.Homogeneous() {
			t.Errorf("%q: not homogeneous", tc.spec)
		}
		fused, err := p.FusedSpec()
		if err != nil {
			t.Errorf("%q: FusedSpec: %v", tc.spec, err)
			continue
		}
		if !strings.Contains(fused, tc.fused) {
			t.Errorf("%q: fused spec %q does not contain %q", tc.spec, fused, tc.fused)
		}
		if _, err := FromSpec(fused); err != nil {
			t.Errorf("%q: fused spec %q does not build: %v", tc.spec, fused, err)
		}
	}
}

func TestParsePlatformHeterogeneous(t *testing.T) {
	p, err := ParsePlatform("rack:2 node:{pack:2 core:8 | pack:1 core:4}")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 2 || p.Homogeneous() {
		t.Fatalf("nodes=%d homogeneous=%v, want 2 heterogeneous members", p.Nodes(), p.Homogeneous())
	}
	fused, err := p.FusedSpec()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := FromSpec(fused)
	if err != nil {
		t.Fatalf("fused spec %q: %v", fused, err)
	}
	if topo.NumCores() != 20 {
		t.Errorf("fused topology has %d cores, want 20 (2x8 + 1x4): spec %q", topo.NumCores(), fused)
	}
	if topo.NumRacks() != 2 || len(topo.ClusterNodes()) != 2 {
		t.Errorf("fused topology has %d racks / %d nodes, want 2 / 2", topo.NumRacks(), len(topo.ClusterNodes()))
	}
}

func TestParsePlatformCyclingMembers(t *testing.T) {
	p, err := ParsePlatform("pod:2 rack:2 node:2{pack:2 core:4 | pack:1 core:4}")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 8 {
		t.Fatalf("%d nodes, want 8", p.Nodes())
	}
	big, small := 0, 0
	for _, m := range p.Members {
		if strings.Contains(m, "pack:2") {
			big++
		} else {
			small++
		}
	}
	if big != 4 || small != 4 {
		t.Errorf("member cycle gave %d big / %d small, want 4 / 4", big, small)
	}
	fused, err := p.FusedSpec()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := FromSpec(fused)
	if err != nil {
		t.Fatalf("fused spec %q: %v", fused, err)
	}
	if topo.NumPods() != 2 || topo.NumRacks() != 4 || topo.NumCores() != 48 {
		t.Errorf("pods=%d racks=%d cores=%d, want 2/4/48 (spec %q)",
			topo.NumPods(), topo.NumRacks(), topo.NumCores(), fused)
	}
}

func TestParsePlatformUnevenRacks(t *testing.T) {
	p, err := ParsePlatform("rack:2 node:2,3 pack:1 core:4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 5 {
		t.Fatalf("%d nodes, want 5", p.Nodes())
	}
	fused, err := p.FusedSpec()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := FromSpec(fused)
	if err != nil {
		t.Fatalf("fused spec %q: %v", fused, err)
	}
	if got := len(topo.ClusterNodes()); got != 5 {
		t.Errorf("fused topology has %d cluster nodes, want 5", got)
	}
	racks := topo.Racks()
	if len(racks) != 2 || len(racks[0].Children) != 2 || len(racks[1].Children) != 3 {
		t.Errorf("uneven racks not preserved: %v", topo.Spec())
	}
}

func TestParsePlatformErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"pod:2 node:4 core:8", // pod without rack tier
		"rack:2 core:8",       // rack without node tier
		"cluster:4",           // node tier without member spec
		"rack:2 node:{pack:1 core:2} pack:1 core:2",                    // tokens after braces
		"rack:2 node:{pack:1 core:2 | }",                               // empty member
		"rack:2 node:{pack:1 core:2 | pack:1",                          // unbalanced brace
		"rack:2 node:{a:1 | b:2 | c:3}",                                // bogus members
		"rack:3 node:{pack:1 core:2 | pack:1 core:4}",                  // 2 members on 3 racks
		"rack:2 node:1{pack:1 core:2 | pack:1 core:4 | pack:1 core:8}", // 3 members, 2 nodes
		"node:{cluster:2 core:4}",                                      // member with its own fabric tier
		"rack:2{pack:1 core:2 | pack:1 core:4} node:2 pack:1 core:2",   // braces on the rack tier
		"pod:2{pack:1 core:2} rack:2 node:2 pack:1 core:2",             // braces on the pod tier
	} {
		if _, err := ParsePlatform(spec); err == nil {
			t.Errorf("ParsePlatform(%q) accepted", spec)
		}
	}
}

func TestParsePlatformMixedKindSequenceRejected(t *testing.T) {
	// One member has an L3 level, the other does not: the fused topology
	// could not keep levels kind-homogeneous.
	if _, err := ParsePlatform("node:{pack:1 l3:1 core:4 | pack:1 core:4}"); err == nil {
		t.Error("members with different level-kind sequences accepted")
	}
}

func TestPodSpec(t *testing.T) {
	topo, err := FromSpec("pod:2 rack:2 node:2 pack:1 core:2")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumPods() != 2 || topo.NumRacks() != 4 || len(topo.ClusterNodes()) != 8 {
		t.Fatalf("pods=%d racks=%d nodes=%d, want 2/4/8", topo.NumPods(), topo.NumRacks(), len(topo.ClusterNodes()))
	}
	levels := topo.FabricLevels()
	if len(levels) != 3 {
		t.Fatalf("%d fabric levels, want 3 (NIC, rack uplink, pod uplink)", len(levels))
	}
	if levels[0][0].Kind != Cluster || levels[1][0].Kind != Rack || levels[2][0].Kind != Pod {
		t.Errorf("fabric level kinds %v/%v/%v, want Cluster/Rack/Pod",
			levels[0][0].Kind, levels[1][0].Kind, levels[2][0].Kind)
	}
	// A pod tier requires a rack tier.
	if _, err := FromSpec("pod:2 node:2 pack:1 core:2"); err == nil {
		t.Error("pod tier without rack tier accepted")
	}
	// SamePod / PodOf agree with the tree.
	n0, n7 := topo.ClusterNodes()[0], topo.ClusterNodes()[7]
	if topo.SamePod(n0, n7) {
		t.Error("nodes 0 and 7 report the same pod on a 2-pod fabric")
	}
	if topo.PodOf(n0) == nil || topo.PodOf(n0).LevelIndex != 0 {
		t.Error("PodOf(node 0) is not Pod#0")
	}
}
