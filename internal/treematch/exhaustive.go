package treematch

import (
	"math"

	"repro/internal/comm"
)

// The TreeMatch family of algorithms (Jeannot, Mercier & Tessier, TPDS
// 2014) includes an exhaustive grouping for small instances: when the
// number of ways to partition p entities into groups of size a is small,
// the optimal partition can be found by branch-and-bound instead of the
// greedy heuristic. This file implements that variant; GroupProcesses
// switches to it automatically below ExhaustiveLimit entities, and tests
// use it as the gold standard the heuristic is measured against.

// ExhaustiveLimit is the largest matrix order for which GroupProcessesOpt
// considers exhaustive search affordable: the search walks the canonical
// partition tree (first unassigned entity anchors each new group), which
// for p = 12, a = 4 is 5775·280·1 ≈ 1.6M leaves — milliseconds.
const ExhaustiveLimit = 12

// GroupProcessesOpt returns a partition of the p entities of m into p/a
// groups of size a that maximizes the intra-group communication volume
// exactly, via branch-and-bound over canonical partitions. It panics under
// the same conditions as GroupProcesses. Exponential in p: callers must
// keep p at or below ExhaustiveLimit (tests enforce the constant).
func GroupProcessesOpt(m *comm.Matrix, a int) [][]int {
	p := m.Order()
	if a <= 0 || p%a != 0 {
		panic("treematch: GroupProcessesOpt requires a > 0 dividing the matrix order")
	}
	if a == 1 || a == p {
		return GroupProcesses(m, a, 0) // single valid shape
	}
	// Pair affinity (both directions), precomputed.
	aff := make([][]float64, p)
	for i := range aff {
		aff[i] = make([]float64, p)
		for j := range aff[i] {
			aff[i][j] = m.At(i, j) + m.At(j, i)
		}
	}
	// Start from the greedy solution as the incumbent bound.
	best := GroupProcesses(m, a, 2)
	bestScore := intraVolume(m, best)

	used := make([]bool, p)
	var groups [][]int
	var cur []int
	var curScore float64

	// maxPair is the largest pair affinity, used for an optimistic bound:
	// each not-yet-grouped entity can contribute at most (a-1) maxPair.
	var maxPair float64
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if aff[i][j] > maxPair {
				maxPair = aff[i][j]
			}
		}
	}

	var rec func(remaining int)
	rec = func(remaining int) {
		// Close a completed group before anything else, so the final group
		// is recorded when the last entity has just been placed.
		if len(cur) == a {
			groups = append(groups, append([]int(nil), cur...))
			save := cur
			cur = nil
			rec(remaining)
			cur = save
			groups = groups[:len(groups)-1]
			return
		}
		if remaining == 0 {
			if curScore > bestScore {
				bestScore = curScore
				best = make([][]int, len(groups))
				for i, g := range groups {
					best[i] = append([]int(nil), g...)
				}
			}
			return
		}
		// Optimistic bound: each remaining entity can close at most (a-1)
		// pairs of the maximum affinity (pairs between two remaining
		// entities are counted twice, which keeps it an upper bound).
		if curScore+float64(remaining)*float64(a-1)*maxPair <= bestScore {
			return
		}
		if len(cur) == 0 {
			// Canonical form: each new group is anchored by the smallest
			// unused entity, which kills permutation symmetry.
			anchor := -1
			for i := 0; i < p; i++ {
				if !used[i] {
					anchor = i
					break
				}
			}
			used[anchor] = true
			cur = append(cur, anchor)
			rec(remaining - 1)
			cur = cur[:0]
			used[anchor] = false
			return
		}
		// Extend the open group with any unused entity larger than the
		// last member (members ascend: kills intra-group permutations).
		last := cur[len(cur)-1]
		for i := last + 1; i < p; i++ {
			if used[i] {
				continue
			}
			gain := 0.0
			for _, u := range cur {
				gain += aff[u][i]
			}
			used[i] = true
			cur = append(cur, i)
			curScore += gain
			rec(remaining - 1)
			curScore -= gain
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec(p)
	return best
}

// GroupQuality returns the intra-group volume of a partition divided by
// the total (off-diagonal) volume: 1 means every byte stays inside a
// group. Used to compare heuristic and optimal partitions.
func GroupQuality(m *comm.Matrix, groups [][]int) float64 {
	total := m.TotalVolume()
	if total == 0 {
		return 1
	}
	q := intraVolume(m, groups) / total
	return math.Min(q, 1)
}
