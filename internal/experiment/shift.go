package experiment

import (
	"fmt"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
)

// The shift experiment (A12) is where the adaptive engine (A8) meets the
// multi-switch fabric (A10): a multi-node, multi-rack workload whose
// communication pattern rotates across the node and rack boundaries mid-run.
// The initial hierarchical placement is optimal for phase one — every heavy
// pair of node-sized blocks shares a rack — but after the shift the heavy
// pairs connect blocks that the phase-one layout parked in different racks,
// so every pair exchange funnels through the oversubscribed rack uplinks.
// One-shot placement cannot recover; an adaptive engine can, and how much it
// recovers depends on its candidate path: flat TreeMatch candidates re-group
// bottom-up and only stumble onto a decent layout, while hierarchical
// candidates re-run the full fabric pipeline (node partition + fabric-tree
// matching) on the observed window and swap whole blocks across racks —
// paying the uplink-priced migration bill the fabric-aware hysteresis
// weighed.

// ShiftConfig parameterizes one rack-crossing phase-shift run.
type ShiftConfig struct {
	// Racks is the number of top-of-rack switches (default 2, minimum 2 so
	// the uplinks exist).
	Racks int
	// NodesPerRack is the number of cluster nodes under each switch
	// (default 2). Racks*NodesPerRack must be even and at least 4, so both
	// phases' block pairings are well defined.
	NodesPerRack int
	// CoresPerNode and CoresPerSocket shape each machine (defaults 8 and 4).
	CoresPerNode, CoresPerSocket int
	// Iters is the total iteration count (default 30); the pattern shifts
	// after ShiftAt iterations (default 2*Iters/5, so the post-shift phase
	// dominates the run).
	Iters, ShiftAt int
	// BlockBytes is each task's working set (default 1 MiB): the data it
	// sweeps per iteration and drags over the fabric when migrated.
	BlockBytes int64
	// HaloBytes is the per-iteration volume exchanged between grid
	// neighbours inside a node-sized block (default 256 KiB): the heavy
	// stationary coupling that makes the blocks the min-cut partition
	// groups in both phases.
	HaloBytes float64
	// PairBytes is the per-iteration volume between slot-aligned tasks of
	// partnered blocks (default 320 KiB): the traffic whose rack placement
	// the phases rotate. Phase one pairs diametric blocks (b, b+B/2) — the
	// A10 structure, which the fabric matching co-racks; phase two pairs
	// adjacent blocks (b, b^1), which straddle the phase-one rack split.
	PairBytes float64
	// LinkBytes is the light connectivity volume between consecutive blocks
	// (default 32 KiB), active through both phases.
	LinkBytes float64
	// EpochIters is the re-placement interval (default 3).
	EpochIters int
	// Hysteresis and WindowDecay tune the adaptive engine (see
	// placement.AdaptiveOptions).
	Hysteresis, WindowDecay float64
	// Fabric overrides the interconnect parameters; zero fields keep the
	// defaults (10GbE-class NICs and, as in the A10 scenario, a single
	// oversubscribed NIC-class uplink per rack).
	Fabric numasim.Fabric
	// Seed drives the simulated OS scheduler.
	Seed int64
}

func (c ShiftConfig) withDefaults() ShiftConfig {
	if c.Racks == 0 {
		c.Racks = 2
	}
	if c.NodesPerRack == 0 {
		c.NodesPerRack = 2
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 8
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 4
	}
	if c.Iters == 0 {
		c.Iters = 30
	}
	if c.ShiftAt == 0 {
		// The shift lands early (at 2/5 of the run) so the post-shift phase
		// dominates: one-shot placement spends most of the run wrong, and an
		// engine that migrates has time to amortize the bill.
		c.ShiftAt = c.Iters * 2 / 5
		if c.ShiftAt < 1 {
			c.ShiftAt = 1
		}
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 1 << 20
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 256 << 10
	}
	if c.PairBytes == 0 {
		c.PairBytes = 320 << 10
	}
	if c.LinkBytes == 0 {
		c.LinkBytes = 32 << 10
	}
	if c.EpochIters == 0 {
		c.EpochIters = 3
	}
	return c
}

// Validate rejects configurations the shift pipeline cannot run.
func (c ShiftConfig) Validate() error {
	d := c.withDefaults()
	blocks := d.Racks * d.NodesPerRack
	switch {
	case d.Racks < 2:
		return fmt.Errorf("experiment: shift scenario needs at least 2 racks, got %d", d.Racks)
	case d.NodesPerRack < 1:
		return fmt.Errorf("experiment: invalid nodes per rack %d", d.NodesPerRack)
	case blocks < 4 || blocks%2 != 0:
		return fmt.Errorf("experiment: shift scenario needs an even block count >= 4, got %d", blocks)
	case d.CoresPerNode < 2 || d.CoresPerSocket < 1:
		return fmt.Errorf("experiment: invalid node shape %d cores / %d per socket", d.CoresPerNode, d.CoresPerSocket)
	case d.CoresPerNode%d.CoresPerSocket != 0:
		return fmt.Errorf("experiment: %d cores per node not divisible into sockets of %d", d.CoresPerNode, d.CoresPerSocket)
	case d.Iters < 2 || d.ShiftAt < 1 || d.ShiftAt >= d.Iters:
		return fmt.Errorf("experiment: shift at iteration %d outside the %d-iteration run", d.ShiftAt, d.Iters)
	case d.EpochIters < 1:
		return fmt.Errorf("experiment: epoch interval %d must be positive", d.EpochIters)
	case d.BlockBytes < 0 || d.HaloBytes < 0 || d.PairBytes < 0 || d.LinkBytes < 0:
		return fmt.Errorf("experiment: negative volume in shift config")
	}
	return nil
}

// ShiftCluster builds the simulated multi-switch cluster for a
// configuration: the same platform shape and oversubscribed-uplink default
// as the A10 rack scenario (RackCluster) — a single NIC-class trunk per
// rack, so rack-crossing traffic pays for itself in bandwidth as well as
// latency.
func ShiftCluster(cfg ShiftConfig) (*numasim.Platform, error) {
	cfg = cfg.withDefaults()
	return RackCluster(RackConfig{
		Racks:          cfg.Racks,
		NodesPerRack:   cfg.NodesPerRack,
		CoresPerNode:   cfg.CoresPerNode,
		CoresPerSocket: cfg.CoresPerSocket,
		Fabric:         cfg.Fabric,
	})
}

// ShiftModes lists the placement arms of the shift ablation in report
// order: the one-shot hierarchical pipeline first (the speedup base), then
// the adaptive engine with flat TreeMatch candidates, the adaptive engine
// with hierarchical (fabric-aware) candidates, and the free-migration
// oracle bound.
func ShiftModes() []string {
	return []string{"static", "adaptive-flat", "adaptive-fabric", "oracle"}
}

// ShiftResult reports one rack-crossing phase-shift run.
type ShiftResult struct {
	Mode    string
	Seconds float64
	// Stats is the adaptive engine's decision record (zero for static),
	// including the intra-node / cross-node / cross-rack move split.
	Stats placement.AdaptiveStats
}

// String renders a one-line summary.
func (r ShiftResult) String() string {
	return fmt.Sprintf("%-15s time=%8.3fs epochs=%d applied=%d rebinds=%d cross-node=%d cross-rack=%d",
		r.Mode, r.Seconds, r.Stats.Epochs, r.Stats.Applied, r.Stats.Rebinds,
		r.Stats.CrossNodeRebinds, r.Stats.CrossRackRebinds)
}

// buildShift constructs the rack-crossing phase-shift workload: one task per
// core, grouped into node-sized blocks. Task i of block b
//
//   - reads HaloBytes from its grid neighbours inside the block (a 2-row
//     stencil grid, the heavy stationary coupling that keeps the blocks the
//     min-cut partition groups in both phases),
//   - exchanges PairBytes with task i of the diametric partner block
//     (b+B/2)%B during phase one, and with task i of the adjacent block
//     b^1 during phase two (the inactive partner carries 8 bytes; the
//     volumes swap at ShiftAt via Handle.SetVolume),
//   - and writes its own block location.
//
// With blocks numbered 0..B-1 and the fabric matching co-racking the
// phase-one diametric pairs {b, b+B/2}, the phase-two pairing (b, b^1)
// straddles the racks (each rack holds whole phase-one pairs, never both
// members of an adjacent pair), so a placement frozen at phase one funnels
// all pair traffic over the uplinks. All volumes are whole bytes, so the
// run is bit-deterministic regardless of goroutine interleaving.
func buildShift(rt *orwl.Runtime, cfg ShiftConfig) error {
	cfg = cfg.withDefaults()
	blocks := cfg.Racks * cfg.NodesPerRack
	c := cfg.CoresPerNode
	n := blocks * c
	locs := make([]*orwl.Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation(fmt.Sprintf("blk%d.%d", i/c, i%c), cfg.BlockBytes)
	}
	cells := float64(cfg.BlockBytes / 8)
	for i := 0; i < n; i++ {
		b, slot := i/c, i%c
		task := rt.AddTask(fmt.Sprintf("t%d.%d", b, slot), nil)
		var halos []*orwl.Handle
		// Heavy stencil grid inside the node block: 2 rows of c/2 columns
		// (one row when the block is too narrow).
		gw := c / 2
		if gw < 1 {
			gw = 1
		}
		sx, sy := slot%gw, slot/gw
		for _, d := range [][2]int{{0, -1}, {0, 1}, {1, 0}, {-1, 0}} {
			nx, ny := sx+d[0], sy+d[1]
			if nx < 0 || nx >= gw || ny < 0 || ny*gw+nx >= c {
				continue
			}
			halos = append(halos, task.NewHandleVol(locs[b*c+ny*gw+nx], orwl.Read, cfg.HaloBytes, 0))
		}
		// The two pair partners: diametric block in phase one (the A10
		// structure), adjacent block in phase two. Both handles exist for
		// the whole run (the handle set is fixed at build time); the
		// volumes swap at the shift.
		p1 := task.NewHandleVol(locs[((b+blocks/2)%blocks)*c+slot], orwl.Read, cfg.PairBytes, 0)
		p2 := task.NewHandleVol(locs[(b^1)*c+slot], orwl.Read, phaseShiftEps, 0)
		// Light connectivity ring over the blocks, active through both
		// phases, so the affinity graph stays one component.
		if slot == 0 && blocks > 2 {
			for _, peer := range []int{(b + 1) % blocks, (b + blocks - 1) % blocks} {
				halos = append(halos, task.NewHandleVol(locs[peer*c], orwl.Read, cfg.LinkBytes, 0))
			}
		}
		w := task.NewHandleVol(locs[i], orwl.Write, cfg.HaloBytes, 1)
		region := locs[i].Region()
		block := cfg.BlockBytes
		task.SetFunc(func(t *orwl.Task) error {
			for it := 0; it < cfg.Iters; it++ {
				if it == cfg.ShiftAt {
					// The pattern rotates across the rack boundaries: the
					// diametric partner goes quiet, the adjacent one wakes.
					p1.SetVolume(phaseShiftEps)
					p2.SetVolume(cfg.PairBytes)
				}
				last := it == cfg.Iters-1
				for _, h := range halos {
					if err := h.Acquire(); err != nil {
						return err
					}
					if err := releaseOrNext(h, last); err != nil {
						return err
					}
				}
				for _, h := range []*orwl.Handle{p1, p2} {
					if err := h.Acquire(); err != nil {
						return err
					}
					if err := releaseOrNext(h, last); err != nil {
						return err
					}
				}
				if err := w.Acquire(); err != nil {
					return err
				}
				if p := t.Proc(); p != nil {
					p.Compute(11 * cells) // LK23's flops per cell
					p.SweepWorkingSet(region, block)
				}
				if err := releaseOrNext(w, last); err != nil {
					return err
				}
				t.EndIteration()
			}
			return nil
		})
	}
	return nil
}

// shiftPolicies returns the initial (base) and per-epoch candidate policies
// of one shift arm (nil policies for the engine-less static mode).
func shiftPolicies(mode string) (base, cand placement.Policy, err error) {
	switch mode {
	case "static":
		return nil, nil, nil
	case "adaptive-flat":
		// The paper's flat pipeline made adaptive: TreeMatch on the whole
		// fused cluster tree both for the initial placement and for every
		// epoch's candidate — it reacts to the shift, but neither stage
		// optimizes the fabric cut explicitly.
		return placement.TreeMatch{}, placement.TreeMatch{}, nil
	case "adaptive-fabric", "oracle":
		return placement.Hierarchical{}, placement.Hierarchical{}, nil
	default:
		return nil, nil, fmt.Errorf("experiment: unknown shift mode %q", mode)
	}
}

// RunShift executes the rack-crossing phase-shift workload under one
// placement mode:
//
//   - "static": the one-shot hierarchical pipeline — node partition plus
//     fabric matching from the static affinity matrix, never revisited;
//   - "adaptive-flat": the epoch-based engine with flat TreeMatch
//     candidates — it reacts to the shift, but re-groups bottom-up over the
//     whole fused cluster tree instead of optimizing the fabric cut;
//   - "adaptive-fabric": the engine with hierarchical candidates — every
//     epoch re-runs the node partition and fabric-tree matching on the
//     measured window, prices the inter-node moves through the fabric hop
//     walk, and refreshes the per-link contention after committing;
//   - "oracle": adaptive-fabric with free migration and no hysteresis, the
//     upper bound on what re-placement could gain.
func RunShift(mode string, cfg ShiftConfig) (ShiftResult, error) {
	if err := cfg.Validate(); err != nil {
		return ShiftResult{}, err
	}
	cfg = cfg.withDefaults()
	base, cand, err := shiftPolicies(mode)
	if err != nil {
		return ShiftResult{}, err
	}
	cluster, err := ShiftCluster(cfg)
	if err != nil {
		return ShiftResult{}, err
	}
	mach := cluster.Machine()
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildShift(rt, cfg); err != nil {
		return ShiftResult{}, err
	}
	var eng *placement.AdaptiveEngine
	var a *placement.Assignment
	if cand == nil {
		a, err = placement.Place(rt, placement.Hierarchical{})
		if err != nil {
			return ShiftResult{}, err
		}
	} else {
		eng, err = placement.PlaceAdaptive(rt, placement.AdaptiveOptions{
			Base:          base,
			Candidate:     cand,
			EpochIters:    cfg.EpochIters,
			Hysteresis:    cfg.Hysteresis,
			WindowDecay:   cfg.WindowDecay,
			FreeMigration: mode == "oracle",
		})
		if err != nil {
			return ShiftResult{}, err
		}
		a = eng.Assignment()
	}
	placement.SetContention(mach, a, nil)
	placement.SetFabricContention(mach, a, rt.CommMatrix())
	if err := rt.Run(); err != nil {
		return ShiftResult{}, err
	}
	res := ShiftResult{Mode: mode, Seconds: rt.MakespanSeconds()}
	if eng != nil {
		if err := eng.Err(); err != nil {
			return ShiftResult{}, err
		}
		res.Stats = eng.Stats()
	}
	return res, nil
}

// AblationShift (A12) compares the placement arms on the rack-crossing
// phase shift: static hierarchical, the adaptive engine with flat and with
// fabric-aware candidates, and the free-migration oracle.
func AblationShift(cfg ShiftConfig) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, mode := range ShiftModes() {
		res, err := RunShift(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation shift, %s: %w", mode, err)
		}
		detail := fmt.Sprintf("%d racks x %d nodes x %d cores",
			cfg.Racks, cfg.NodesPerRack, cfg.CoresPerNode)
		if mode != "static" {
			detail = fmt.Sprintf("epochs=%d applied=%d rebinds=%d cross-node=%d cross-rack=%d",
				res.Stats.Epochs, res.Stats.Applied, res.Stats.Rebinds,
				res.Stats.CrossNodeRebinds, res.Stats.CrossRackRebinds)
		}
		rows = append(rows, AblationRow{Name: "shift/" + mode, Seconds: res.Seconds, Detail: detail})
	}
	return rows, nil
}

// ShiftConfigFrom derives the shift configuration from the common ablation
// Config: 2 racks of fixed 8-core nodes, the node count scaled so the total
// core count comes close to cfg.Cores (minimum 2 nodes per rack so both
// phases' pairings exist). As in A10, the node shape stays fixed because
// the scenario's volume ratios are calibrated per node; scale comes from
// more nodes per rack.
func ShiftConfigFrom(cfg Config) ShiftConfig {
	cfg = cfg.withDefaults()
	perRack := cfg.Cores / 16
	if perRack < 2 {
		perRack = 2
	}
	return ShiftConfig{
		Racks:          2,
		NodesPerRack:   perRack,
		CoresPerNode:   8,
		CoresPerSocket: 4,
		Seed:           cfg.Seed,
	}
}
