package numasim

import (
	"testing"

	"repro/internal/topology"
)

func dragonflyMachine(t *testing.T) *Machine {
	t.Helper()
	plat, err := NewPlatform("dragonfly:4,2,2 pack:1 core:2", Config{})
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	return plat.Machine()
}

// firstPUOfNode returns the OS index of the first PU on cluster node n.
func firstPUOfNode(m *Machine, n int) int {
	for _, pu := range m.Topology().PUs() {
		if m.ClusterNodeOfPU(pu.OSIndex) == n {
			return pu.OSIndex
		}
	}
	return -1
}

// adversarialCost prices the dragonfly's worst case under one routing
// policy: every node of group 0 streams to its counterpart in group 1, with
// the per-edge contention declared from the same routes pricing walks.
func adversarialCost(t *testing.T, policy RoutingPolicy) (total float64, maxStreams int) {
	t.Helper()
	m := dragonflyMachine(t)
	if err := m.SetRoutingPolicy(policy); err != nil {
		t.Fatalf("SetRoutingPolicy(%v): %v", policy, err)
	}
	// dragonfly:4,2,2 -> 4 nodes per group; group 0 = nodes 0..3,
	// group 1 = nodes 4..7.
	pairs := [][2]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	// One stream per pair; an edge the path crosses twice (a Valiant detour
	// descends to the via node and climbs back out) still carries one
	// stream — the same set semantics placement.SetFabricContention uses.
	counts := make([]int, m.FabricGraph().NumEdges())
	for _, p := range pairs {
		used := map[int]bool{}
		for _, e := range m.RoutedPathEdges(p[0], p[1]) {
			used[e] = true
		}
		for e := range used {
			counts[e]++
		}
	}
	for _, c := range counts {
		if c > maxStreams {
			maxStreams = c
		}
	}
	m.SetEdgeStreams(counts)
	const bytes = 1 << 28
	for _, p := range pairs {
		total += m.TransferCost(firstPUOfNode(m, p[0]), firstPUOfNode(m, p[1]), bytes)
	}
	return total, maxStreams
}

// TestValiantBeatsMinimalUnderAdversarialTraffic: minimal routing funnels
// all four group-0→group-1 streams through the single minimal gateway's
// global link (4-way sharing); Valiant detours spread them across the other
// groups' global links, and the contention relief outweighs the doubled
// path latency on bandwidth-bound transfers.
func TestValiantBeatsMinimalUnderAdversarialTraffic(t *testing.T) {
	minimal, minMax := adversarialCost(t, RouteMinimal)
	valiant, valMax := adversarialCost(t, RouteValiant)
	if minMax != 4 {
		t.Fatalf("minimal routing should funnel all 4 streams over one edge, max streams = %d", minMax)
	}
	if valMax >= minMax {
		t.Fatalf("valiant routing did not spread the streams: max %d vs minimal %d", valMax, minMax)
	}
	if valiant >= minimal {
		t.Fatalf("valiant cost %.0f not below minimal %.0f under adversarial traffic", valiant, minimal)
	}
}

// TestMinimalPolicyIsDefaultAndBitStable: the zero-value policy prices
// exactly like the graph's memoized minimal paths.
func TestMinimalPolicyIsDefaultAndBitStable(t *testing.T) {
	m := dragonflyMachine(t)
	if m.RoutingPolicy() != RouteMinimal {
		t.Fatalf("default policy = %v", m.RoutingPolicy())
	}
	g := m.FabricGraph()
	for from := 0; from < g.NumNodes(); from++ {
		for to := 0; to < g.NumNodes(); to++ {
			if from == to {
				continue
			}
			if got, want := m.fabricLatencyCycles(from, to), g.PathLatency(from, to); got != want {
				t.Fatalf("minimal latency (%d,%d) = %v, want cached %v", from, to, got, want)
			}
		}
	}
}

// TestValiantLatencyMatchesWalk: the cached-vs-walk equality the fabric
// cache test pins for minimal routing also holds under valiant.
func TestValiantLatencyMatchesWalk(t *testing.T) {
	m := dragonflyMachine(t)
	if err := m.SetRoutingPolicy(RouteValiant); err != nil {
		t.Fatalf("SetRoutingPolicy: %v", err)
	}
	for from := 0; from < 8; from++ {
		for to := 8; to < 16; to++ {
			if got, want := m.fabricLatencyCycles(from, to), m.fabricLatencyCyclesWalk(from, to); got != want {
				t.Fatalf("valiant latency (%d,%d) = %v, walk %v", from, to, got, want)
			}
		}
	}
}

// TestValiantRequiresFabric: a single-machine topology has no routed graph.
func TestValiantRequiresFabric(t *testing.T) {
	m, err := New(topology.PaperMachine(), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.SetRoutingPolicy(RouteValiant); err == nil {
		t.Fatal("valiant accepted without a fabric graph")
	}
	if err := m.SetRoutingPolicy(RouteMinimal); err != nil {
		t.Fatalf("minimal refused: %v", err)
	}
}

func TestParseRoutingPolicy(t *testing.T) {
	if p, err := ParseRoutingPolicy("valiant"); err != nil || p != RouteValiant {
		t.Fatalf("valiant: %v %v", p, err)
	}
	if p, err := ParseRoutingPolicy("minimal"); err != nil || p != RouteMinimal {
		t.Fatalf("minimal: %v %v", p, err)
	}
	if _, err := ParseRoutingPolicy("adaptive"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
