package orwl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/comm"
)

// Epoch machinery: the feedback half of adaptive placement.
//
// The paper's placement pipeline runs once, before execution, from the
// statically predicted affinity matrix. Epochs turn that one-shot decision
// into a loop: every interval iterations the runtime quiesces at a barrier
// spanning all running tasks, hands a snapshot of the *observed*
// communication window to a hook, and lets the hook atomically rebind tasks
// (and re-home their data) before the next epoch starts. Because every task
// is parked at the barrier while the hook runs, re-placement needs no
// locking against the workload — the runtime is momentarily sequential.
//
// Correct quiescing requires that tasks hold no lock grants when they call
// EndIteration: a task parked at the barrier while holding a location would
// starve a task that needs that location to reach its own boundary. The
// kernels in this repository therefore call EndIteration after the final
// release of each iteration, and every task of an epoch-enabled program
// must call EndIteration once per iteration.

// epochState is the barrier and bookkeeping shared by all tasks of an
// epoch-enabled runtime.
type epochState struct {
	interval int
	decay    float64
	hook     func(*Epoch)

	mu      sync.Mutex
	cond    *sync.Cond
	active  int     // tasks started and not yet returned
	arrived []*Task // tasks parked at the barrier
	gen     int64   // incremented when a barrier opens
	// index counts completed epochs. Atomic rather than es.mu-guarded so
	// that Runtime.Epochs stays callable from inside an epoch hook, which
	// runs with es.mu held.
	index atomic.Int64
}

// ConfigureEpochs enables epoch boundaries: every interval iterations all
// running tasks quiesce at a barrier, the runtime snapshots (and rolls) the
// windowed measured communication matrix, and hook — when non-nil — may
// inspect the window and rebind tasks through the Epoch it receives. The
// window rolls with the given decay factor (0 = hard reset per epoch; see
// comm.Window). Must be called before Run.
//
// The decay must lie in [0,1): comm.Window.Roll coerces anything else to 0,
// so a caller passing 1.0 ("never forget") would silently get a full reset
// — the opposite semantics. That foot-gun is rejected here instead.
//
// Epoch-enabled programs must be uniform: every task calls EndIteration
// once per iteration, holding no lock grants at that point.
func (rt *Runtime) ConfigureEpochs(interval int, decay float64, hook func(*Epoch)) error {
	if interval < 1 {
		return fmt.Errorf("orwl: epoch interval %d must be at least 1", interval)
	}
	if !(decay >= 0 && decay < 1) { // rejects NaN too
		return fmt.Errorf("orwl: window decay %v outside [0,1): 0 resets the window per epoch, a factor below 1 keeps a decayed memory; 1 (never forget) is the unbounded MeasuredCommMatrix, not a window", decay)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.state != stateBuilding {
		return fmt.Errorf("orwl: ConfigureEpochs after the runtime started")
	}
	if rt.epochs != nil {
		// Silently replacing an installed configuration would disconnect
		// whoever installed it (e.g. an adaptive placement engine) without
		// any signal.
		return fmt.Errorf("orwl: epochs already configured")
	}
	es := &epochState{interval: interval, decay: decay, hook: hook}
	es.cond = sync.NewCond(&es.mu)
	rt.epochs = es
	return nil
}

// Epochs returns the number of completed epochs. Safe to call from inside
// an epoch hook (it counts the running epoch as completed).
func (rt *Runtime) Epochs() int {
	es := rt.epochs
	if es == nil {
		return 0
	}
	return int(es.index.Load())
}

// epochArrive parks the task at the epoch barrier; the last arriving task
// completes the epoch (runs the hook) and releases everyone.
func (rt *Runtime) epochArrive(t *Task) {
	es := rt.epochs
	es.mu.Lock()
	gen := es.gen
	es.arrived = append(es.arrived, t)
	if len(es.arrived) == es.active {
		rt.completeEpochLocked()
	} else {
		for es.gen == gen {
			es.cond.Wait()
		}
	}
	es.mu.Unlock()
}

// epochTaskDone retires a finished task from the barrier; if everyone else
// is already parked, the epoch completes without it.
func (rt *Runtime) epochTaskDone() {
	es := rt.epochs
	if es == nil {
		return
	}
	es.mu.Lock()
	es.active--
	if es.active > 0 && len(es.arrived) == es.active {
		rt.completeEpochLocked()
	}
	es.mu.Unlock()
}

// completeEpochLocked runs one epoch: synchronize the participants' virtual
// clocks (a barrier is not free — nobody leaves before the slowest task
// arrives), roll the communication window, run the hook, open the barrier.
// Called with es.mu held.
func (rt *Runtime) completeEpochLocked() {
	es := rt.epochs
	index := int(es.index.Add(1))
	tasks := append([]*Task(nil), es.arrived...)
	// es.arrived holds the tasks in real-time barrier-arrival order —
	// scheduler noise. The hook's view must be canonical: any hook that
	// iterates the tasks making cumulative decisions (an evacuation filling
	// survivor slots first-fit, a float-summed score) would otherwise leak
	// goroutine interleaving into placement and pricing.
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].id < tasks[j].id })
	var max float64
	for _, t := range tasks {
		if t.proc != nil && t.proc.Clock() > max {
			max = t.proc.Clock()
		}
	}
	for _, t := range tasks {
		if t.proc != nil {
			t.proc.AdvanceTo(max)
		}
	}
	var window *comm.Matrix
	if rt.window != nil {
		window = rt.window.Roll(es.decay)
	}
	if es.hook != nil {
		ep := &Epoch{rt: rt, index: index, tasks: tasks, window: window}
		es.hook(ep)
		ep.closed = true
	}
	es.arrived = es.arrived[:0]
	es.gen++
	es.cond.Broadcast()
}

// Epoch is the quiesced view of the runtime handed to the epoch hook. All
// tasks are parked at the barrier for as long as the hook runs, so the
// rebinding methods need no further synchronization; the Epoch must not be
// retained after the hook returns.
type Epoch struct {
	rt     *Runtime
	index  int
	tasks  []*Task
	window *comm.Matrix
	closed bool
}

// Index returns the 1-based number of this epoch.
func (e *Epoch) Index() int { return e.index }

// Runtime returns the quiesced runtime.
func (e *Epoch) Runtime() *Runtime { return e.rt }

// Tasks returns the tasks parked at this epoch's barrier (tasks that
// already returned are absent).
func (e *Epoch) Tasks() []*Task { return append([]*Task(nil), e.tasks...) }

// Window returns the windowed measured communication matrix accumulated
// since the previous epoch (decayed per the ConfigureEpochs factor), or nil
// when the runtime has no machine attached.
func (e *Epoch) Window() *comm.Matrix { return e.window }

// check validates that the epoch is still open and the PU in range.
func (e *Epoch) check(t *Task, pu int, allowUnbound bool) error {
	if e.closed {
		return fmt.Errorf("orwl: Epoch used after its hook returned")
	}
	if t.rt != e.rt {
		return fmt.Errorf("orwl: %s belongs to a different runtime", t)
	}
	if pu < 0 && !allowUnbound {
		return fmt.Errorf("orwl: rebinding %s to the OS scheduler is not supported; re-placement pins", t)
	}
	if e.rt.mach != nil && pu >= e.rt.mach.Topology().NumPUs() {
		return fmt.Errorf("orwl: PU %d out of range", pu)
	}
	return nil
}

// Rebind moves the task's computation thread to the given PU mid-run,
// paying the full price of adaptivity: the migration penalty, cold caches,
// and one re-homing pull for every region the task writes (its data follows
// it, as the initial placement homed it next to the task). This is the
// mid-run counterpart of Runtime.Bind, available only while the runtime is
// quiesced at an epoch boundary.
func (e *Epoch) Rebind(t *Task, pu int) error {
	return e.rebind(t, pu, true)
}

// RebindFree is Rebind without any cost: the oracle variant, used to bound
// what an adaptive engine could gain if migration were free.
func (e *Epoch) RebindFree(t *Task, pu int) error {
	return e.rebind(t, pu, false)
}

func (e *Epoch) rebind(t *Task, pu int, charged bool) error {
	if err := e.check(t, pu, false); err != nil {
		return err
	}
	if t.proc == nil {
		t.pu = pu
		return nil
	}
	if charged {
		if err := t.proc.MigrateTo(pu); err != nil {
			return err
		}
	} else if err := t.proc.PlaceAt(pu); err != nil {
		return err
	}
	t.pu = pu
	for _, h := range t.handles {
		if h.mode != Write || h.loc.region == nil {
			continue
		}
		if charged {
			if err := t.proc.MigrateRegion(h.loc.region); err != nil {
				return err
			}
		} else if err := h.loc.region.MoveTo(e.rt.mach.NodeOfPU(pu)); err != nil {
			return err
		}
	}
	return nil
}

// RebindControl moves the task's control thread to the given PU (-1 releases
// it to the OS). Control threads carry no working set, so the move itself is
// free; its effect is the changed per-transition cost (see
// Task.chargeControlEvent).
func (e *Epoch) RebindControl(t *Task, pu int) error {
	if err := e.check(t, pu, true); err != nil {
		return err
	}
	t.ctlPU = pu
	return nil
}
