package sched

import (
	"strings"
	"testing"
)

// FuzzParseJobSpec drives the job-spec grammar with arbitrary input,
// following the ParsePlatform fuzzer's contract: the parser never panics,
// and any accepted spec renders canonically — Render∘Parse is a fixed point,
// so the canonical form re-parses to the identical spec.
func FuzzParseJobSpec(f *testing.F) {
	seeds := []string{
		"job a arrive=0 work=0 tasks=1",
		"job j03 arrive=1.5e6 work=2e6 tasks=12 pattern=stencil:4x3@7 vol=65536 required=rack preferred=node",
		"job p arrive=0 work=1e6 tasks=2 prio=3 required=rack",
		"job p0 arrive=0 work=1 tasks=1 prio=0",
		"job bad-prio arrive=0 work=1 tasks=1 prio=101",
		"job neg-prio arrive=0 work=1 tasks=1 prio=-1",
		"job x arrive=10 work=100 tasks=8 pattern=ring vol=64",
		"job y arrive=0 work=1 tasks=6 pattern=stencil:3x2 vol=1 required=machine",
		"job z arrive=0 work=1 tasks=9 pattern=random:3@5 vol=2 preferred=pod required=pod",
		"job dup arrive=1 arrive=2 tasks=1",
		"job bad tasks=0",
		"job bad tasks=-3 arrive=nan",
		"job hole pattern=stencil:2x2 tasks=5",
		"not a job line",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if len(line) > 512 {
			return
		}
		s, err := ParseJobSpec(line)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v\n line: %q", err, line)
		}
		canon := s.Render()
		s2, err := ParseJobSpec(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n line:  %q\n canon: %q", err, line, canon)
		}
		if s2 != s {
			t.Fatalf("round trip changed the spec:\n  %+v\n  %+v", s, s2)
		}
		if again := s2.Render(); again != canon {
			t.Fatalf("render not a fixed point:\n  %q\n  %q", canon, again)
		}
		// The matrix generator must accept anything validation accepted
		// (bounded: the fuzzer caps tasks via Validate's range check, and
		// large task counts stay cheap in sparse storage).
		if s.Tasks <= 1<<12 {
			if _, err := s.Matrix(); err != nil {
				t.Fatalf("matrix generation failed for valid spec %q: %v", canon, err)
			}
		}
	})
}

// FuzzParseWorkload feeds whole files: no panics, and an accepted workload
// renders back to an equivalent workload.
func FuzzParseWorkload(f *testing.F) {
	f.Add("# comment\n\njob a arrive=0 work=1 tasks=2\njob b arrive=5 work=1 tasks=4 pattern=stencil:2x2\n")
	f.Add("job a arrive=0 work=1 tasks=2\njob a arrive=1 work=1 tasks=2\n")
	f.Add("job hi arrive=0 work=1 tasks=2 prio=9 required=rack\njob lo arrive=1 work=1 tasks=2\n")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 4096 {
			return
		}
		jobs, err := ParseWorkload(strings.NewReader(text))
		if err != nil {
			return
		}
		var lines []string
		for _, j := range jobs {
			lines = append(lines, j.Render())
		}
		again, err := ParseWorkload(strings.NewReader(strings.Join(lines, "\n")))
		if err != nil {
			t.Fatalf("canonical workload rejected: %v", err)
		}
		if len(again) != len(jobs) {
			t.Fatalf("round trip changed job count: %d vs %d", len(jobs), len(again))
		}
		for i := range jobs {
			if jobs[i] != again[i] {
				t.Fatalf("job %d changed:\n  %+v\n  %+v", i, jobs[i], again[i])
			}
		}
	})
}
