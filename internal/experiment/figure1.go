package experiment

import (
	"fmt"
	"strings"
)

// Figure1Row is one x-axis point of the paper's Figure 1: the processing
// time of the three implementations at a given core count.
type Figure1Row struct {
	Cores  int
	Bind   float64 // ORWL with topology-aware binding, seconds
	NoBind float64 // ORWL unbound, seconds
	OMP    float64 // OpenMP baseline, seconds
}

// DefaultFigure1Points returns the core counts swept for Figure 1: one
// socket up to the full 24-socket, 192-core machine.
func DefaultFigure1Points() []int {
	return []int{8, 16, 32, 48, 96, 144, 192}
}

// Figure1 regenerates the paper's Figure 1: LK23 processing time for
// ORWL Bind, ORWL NoBind and OpenMP at each core count. cfg.Cores is
// overridden by each point.
func Figure1(points []int, cfg Config) ([]Figure1Row, error) {
	var rows []Figure1Row
	for _, cores := range points {
		c := cfg
		c.Cores = cores
		row := Figure1Row{Cores: cores}
		for _, impl := range []Impl{ORWLBind, ORWLNoBind, OpenMP} {
			res, err := Run(impl, c)
			if err != nil {
				return nil, fmt.Errorf("figure1 at %d cores, %s: %w", cores, impl, err)
			}
			switch impl {
			case ORWLBind:
				row.Bind = res.Seconds
			case ORWLNoBind:
				row.NoBind = res.Seconds
			case OpenMP:
				row.OMP = res.Seconds
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure1 renders the rows as the table the paper's figure plots,
// with the two speedup columns the paper quotes (Bind vs NoBind and Bind
// vs OpenMP).
func FormatFigure1(rows []Figure1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %10s %10s\n",
		"cores", "orwl-bind", "orwl-nobind", "openmp", "nobind/bind", "omp/bind")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %11.2fs %11.2fs %11.2fs %10.2f %10.2f\n",
			r.Cores, r.Bind, r.NoBind, r.OMP, safeRatio(r.NoBind, r.Bind), safeRatio(r.OMP, r.Bind))
	}
	return b.String()
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
