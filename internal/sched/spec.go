// Package sched is the online multi-tenant scheduler service: a long-running
// deterministic state machine that admits a stream of jobs onto the shared
// platform, tracks the free capacity of every fabric domain as jobs bind and
// release core slots, honors required/preferred topology constraints with
// graceful fallback to a wider domain (the KAI-scheduler constraint model),
// and delegates intra-domain layout to the paper's placement engine
// restricted to the domain's free slots (placement.AssignFreeSlots).
//
// Everything below the CLI is deterministic: streams are seeded, event ties
// break on job sequence numbers, and all state iterates in sorted order, so
// identical inputs give bit-identical schedules.
package sched

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/comm"
)

// Tier names a fabric-domain granularity in job constraints, narrowest
// first: "node" (one cluster node), "rack", "pod", "machine" (the whole
// platform). The empty tier means unconstrained.
var tierWidth = map[string]int{"node": 0, "rack": 1, "pod": 2, "machine": 3}

// JobSpec describes one job of a workload: its task graph (a communication
// pattern over Tasks tasks), its compute demand, its arrival time, and its
// optional topology constraints.
type JobSpec struct {
	// Name identifies the job in reports; no whitespace.
	Name string
	// ArriveCycles is the arrival time on the simulated clock.
	ArriveCycles float64
	// WorkCycles is the pure compute demand; communication cost is added
	// on top from the priced task graph.
	WorkCycles float64
	// Tasks is the number of tasks; each occupies one core slot.
	Tasks int
	// Pattern names the task graph: "ring", "stencil:WxH" (optionally
	// "stencil:WxH@SEED" with seed-scrambled task numbering), or
	// "random:DEG@SEED". Empty means "ring".
	Pattern string
	// VolumeBytes is the data volume per task-graph edge.
	VolumeBytes float64
	// Priority is the job's preemption class (0 = lowest, the default).
	// Under the preemption policy a required-constrained arrival may
	// checkpoint-and-requeue running jobs of strictly lower priority when
	// that is the only way to open its domain.
	Priority int
	// Required is the hard placement boundary: the job must fit entirely
	// inside one domain of this tier or it cannot run. Empty = whole
	// machine.
	Required string
	// Preferred is the desired granularity: placement starts at this tier
	// and falls back to wider tiers (up to Required) when it is full.
	// Empty = narrowest tier.
	Preferred string
}

// Validate checks the spec independent of any platform.
func (s JobSpec) Validate() error {
	if s.Name == "" || strings.ContainsAny(s.Name, " \t\n\r") {
		return fmt.Errorf("sched: job name %q empty or contains whitespace", s.Name)
	}
	if math.IsNaN(s.ArriveCycles) || math.IsInf(s.ArriveCycles, 0) || s.ArriveCycles < 0 {
		return fmt.Errorf("sched: job %s: arrive %v out of range", s.Name, s.ArriveCycles)
	}
	if math.IsNaN(s.WorkCycles) || math.IsInf(s.WorkCycles, 0) || s.WorkCycles < 0 {
		return fmt.Errorf("sched: job %s: work %v out of range", s.Name, s.WorkCycles)
	}
	if s.Tasks < 1 || s.Tasks > 1<<20 {
		return fmt.Errorf("sched: job %s: tasks %d out of range [1,%d]", s.Name, s.Tasks, 1<<20)
	}
	if math.IsNaN(s.VolumeBytes) || math.IsInf(s.VolumeBytes, 0) || s.VolumeBytes < 0 {
		return fmt.Errorf("sched: job %s: vol %v out of range", s.Name, s.VolumeBytes)
	}
	if s.Priority < 0 || s.Priority > 100 {
		return fmt.Errorf("sched: job %s: prio %d out of range [0,100]", s.Name, s.Priority)
	}
	if _, _, _, err := parsePattern(s.Pattern, s.Tasks); err != nil {
		return fmt.Errorf("sched: job %s: %w", s.Name, err)
	}
	for _, tier := range []string{s.Required, s.Preferred} {
		if tier == "" {
			continue
		}
		if _, ok := tierWidth[tier]; !ok {
			return fmt.Errorf("sched: job %s: unknown tier %q", s.Name, tier)
		}
	}
	if s.Required != "" && s.Preferred != "" && tierWidth[s.Preferred] > tierWidth[s.Required] {
		return fmt.Errorf("sched: job %s: preferred tier %q wider than required %q", s.Name, s.Preferred, s.Required)
	}
	return nil
}

// parsePattern splits a pattern string into its kind and parameters,
// validating against the task count. Returns (kind, a, b): stencil returns
// its grid dims, random its degree and seed.
func parsePattern(pattern string, tasks int) (kind string, a, b int64, err error) {
	if pattern == "" || pattern == "ring" {
		return "ring", 0, 0, nil
	}
	switch {
	case strings.HasPrefix(pattern, "stencil:"):
		spec := strings.TrimPrefix(pattern, "stencil:")
		scrambled := false
		if at := strings.IndexByte(spec, '@'); at >= 0 {
			seed, err := strconv.ParseInt(spec[at+1:], 10, 64)
			if err != nil || seed < 0 {
				return "", 0, 0, fmt.Errorf("bad stencil seed in %q", pattern)
			}
			spec, scrambled = spec[:at], true
		}
		x := strings.IndexByte(spec, 'x')
		if x < 0 {
			return "", 0, 0, fmt.Errorf("stencil pattern %q wants WxH", pattern)
		}
		w, errW := strconv.ParseInt(spec[:x], 10, 32)
		h, errH := strconv.ParseInt(spec[x+1:], 10, 32)
		if errW != nil || errH != nil || w < 1 || h < 1 {
			return "", 0, 0, fmt.Errorf("bad stencil dims in %q", pattern)
		}
		if int(w*h) != tasks {
			return "", 0, 0, fmt.Errorf("stencil %dx%d has %d blocks, job has %d tasks", w, h, w*h, tasks)
		}
		if scrambled {
			return "stencil@", w, h, nil
		}
		return "stencil", w, h, nil
	case strings.HasPrefix(pattern, "random:"):
		spec := strings.TrimPrefix(pattern, "random:")
		at := strings.IndexByte(spec, '@')
		if at < 0 {
			return "", 0, 0, fmt.Errorf("random pattern %q wants DEG@SEED", pattern)
		}
		deg, errD := strconv.ParseInt(spec[:at], 10, 32)
		seed, errS := strconv.ParseInt(spec[at+1:], 10, 64)
		if errD != nil || errS != nil || deg < 1 || deg > int64(tasks) || seed < 0 {
			return "", 0, 0, fmt.Errorf("bad random pattern %q", pattern)
		}
		return "random", deg, seed, nil
	}
	return "", 0, 0, fmt.Errorf("unknown pattern %q", pattern)
}

// stencilSeed extracts the scramble seed of a "stencil:WxH@SEED" pattern.
func stencilSeed(pattern string) int64 {
	at := strings.IndexByte(pattern, '@')
	if at < 0 {
		return 0
	}
	seed, _ := strconv.ParseInt(pattern[at+1:], 10, 64)
	return seed
}

// Matrix builds the job's sparse communication matrix from its pattern.
func (s JobSpec) Matrix() (*comm.Matrix, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	kind, a, b, err := parsePattern(s.Pattern, s.Tasks)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "ring":
		return comm.Ring(s.Tasks, s.VolumeBytes).ToSparse(), nil
	case "stencil":
		return comm.Stencil2DSparse(int(a), int(b), s.VolumeBytes, s.VolumeBytes/8), nil
	case "stencil@":
		return scrambledStencil(int(a), int(b), s.VolumeBytes, stencilSeed(s.Pattern)), nil
	case "random":
		return comm.RandomSparse(s.Tasks, int(a), s.VolumeBytes, b), nil
	}
	return nil, fmt.Errorf("sched: unknown pattern kind %q", kind)
}

// scrambledStencil is a 2D stencil whose task numbering is a seeded random
// permutation of the grid: neighbors in the grid are far apart in index, so
// slot-order placement scatters the heavy edges while affinity-aware
// placement recovers the grid. This is the workload that separates the
// topology-aware scheduler arm from the slot-order arms.
func scrambledStencil(w, h int, vol float64, seed int64) *comm.Matrix {
	perm := rand.New(rand.NewSource(seed)).Perm(w * h)
	m := comm.NewSparse(w * h)
	id := func(x, y int) int { return perm[y*w+x] }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				m.AddSym(id(x, y), id(x+1, y), vol)
			}
			if y+1 < h {
				m.AddSym(id(x, y), id(x, y+1), vol)
			}
		}
	}
	return m
}

// Render emits the canonical one-line form of the spec. Optional fields at
// their zero value are omitted; ParseJobSpec(Render(s)) reproduces the
// normalized spec, and Render∘Parse is a fixed point (the fuzzer's
// round-trip property).
func (s JobSpec) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s arrive=%g work=%g tasks=%d", s.Name, s.ArriveCycles, s.WorkCycles, s.Tasks)
	if s.Pattern != "" && s.Pattern != "ring" {
		fmt.Fprintf(&b, " pattern=%s", s.Pattern)
	}
	if s.VolumeBytes != 0 {
		fmt.Fprintf(&b, " vol=%g", s.VolumeBytes)
	}
	if s.Priority != 0 {
		fmt.Fprintf(&b, " prio=%d", s.Priority)
	}
	if s.Required != "" {
		fmt.Fprintf(&b, " required=%s", s.Required)
	}
	if s.Preferred != "" {
		fmt.Fprintf(&b, " preferred=%s", s.Preferred)
	}
	return b.String()
}

// ParseJobSpec parses one canonical job line, e.g.
//
//	job j03 arrive=1.5e6 work=2e6 tasks=12 pattern=stencil:4x3@7 vol=65536 required=rack preferred=node
func ParseJobSpec(line string) (JobSpec, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "job" {
		return JobSpec{}, fmt.Errorf("sched: job line must start with \"job <name>\": %q", line)
	}
	s := JobSpec{Name: fields[1]}
	seen := map[string]bool{}
	for _, f := range fields[2:] {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return JobSpec{}, fmt.Errorf("sched: bad field %q (want key=value)", f)
		}
		key, val := f[:eq], f[eq+1:]
		if seen[key] {
			return JobSpec{}, fmt.Errorf("sched: duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "arrive":
			s.ArriveCycles, err = parseFinite(val)
		case "work":
			s.WorkCycles, err = parseFinite(val)
		case "tasks":
			s.Tasks, err = strconv.Atoi(val)
		case "vol":
			s.VolumeBytes, err = parseFinite(val)
		case "prio":
			s.Priority, err = strconv.Atoi(val)
		case "pattern":
			s.Pattern = val
			if s.Pattern == "ring" {
				s.Pattern = "" // canonical zero value
			}
		case "required":
			s.Required = val
		case "preferred":
			s.Preferred = val
		default:
			return JobSpec{}, fmt.Errorf("sched: unknown field %q", key)
		}
		if err != nil {
			return JobSpec{}, fmt.Errorf("sched: bad %s value %q: %v", key, val, err)
		}
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

func parseFinite(val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("not finite")
	}
	return v, nil
}

// ParseWorkload reads a workload file: one job line each, blank lines and
// '#' comments skipped.
func ParseWorkload(r io.Reader) ([]JobSpec, error) {
	var jobs []JobSpec
	names := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := ParseJobSpec(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if names[s.Name] {
			return nil, fmt.Errorf("line %d: duplicate job name %q", lineNo, s.Name)
		}
		names[s.Name] = true
		jobs = append(jobs, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}
