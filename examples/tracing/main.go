// Tracing: record every lock transition of a small LK23 run and export a
// Chrome trace (load trace.json at chrome://tracing or ui.perfetto.dev) —
// each task is a row, each critical section a slice, timestamps from the
// simulated clock. Also prints the per-task acquire/release summary.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/kernels"
	"repro/internal/trace"
)

func main() {
	rec := trace.NewRecorder()
	sys, err := repro.NewSystem(repro.SystemOptions{
		TopologySpec: "pack:2 l3:1 core:4 pu:1",
		Seed:         6,
		Trace:        rec.Hook(),
	})
	if err != nil {
		log.Fatal(err)
	}
	g := kernels.NewGrid(64, 64, 12)
	prog, err := kernels.Build(sys.Runtime(), 64, 64, kernels.BuildOptions{
		BX: 2, BY: 2, Iters: 5, Costs: kernels.LK23Costs, Grid: g, Cell: g.Cell,
	})
	if err != nil {
		log.Fatal(err)
	}
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	if err := sys.Run(heavy); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())
	fmt.Printf("recorded %d lock transitions over %d critical sections\n",
		rec.Len(), len(rec.CriticalSections()))
	fmt.Println()
	fmt.Print(trace.FormatSummaries(rec.Summaries()[:8]))
	fmt.Println("  ... (one row per task)")

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rec.WriteChromeTrace(f, sys.Machine().ClockHz()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote trace.json — open it at chrome://tracing or ui.perfetto.dev")
}
