package comm

import "testing"

func TestSubmatrix(t *testing.T) {
	m := New(4)
	m.AddSym(0, 1, 10)
	m.AddSym(1, 2, 20)
	m.AddSym(2, 3, 30)
	m.SetLabel(2, "two")

	s, err := m.Submatrix([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Order() != 3 {
		t.Fatalf("order %d, want 3", s.Order())
	}
	if got := s.At(0, 2); got != 20 { // (2,1) of the original
		t.Errorf("At(0,2) = %v, want 20", got)
	}
	if got := s.At(1, 2); got != 10 { // (0,1) of the original
		t.Errorf("At(1,2) = %v, want 10", got)
	}
	if got := s.At(0, 1); got != 0 { // (2,0) of the original
		t.Errorf("At(0,1) = %v, want 0", got)
	}
	if s.Label(0) != "two" {
		t.Errorf("label = %q, want %q", s.Label(0), "two")
	}
	if !s.IsSymmetric() {
		t.Error("submatrix of a symmetric matrix is not symmetric")
	}
}

func TestSubmatrixErrors(t *testing.T) {
	m := New(3)
	if _, err := m.Submatrix([]int{0, 3}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := m.Submatrix([]int{1, 1}); err == nil {
		t.Error("duplicate index accepted")
	}
	s, err := m.Submatrix(nil)
	if err != nil || s.Order() != 0 {
		t.Errorf("empty selection: order=%d err=%v", s.Order(), err)
	}
}
