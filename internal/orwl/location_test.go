package orwl

import (
	"sync"
	"testing"
	"time"
)

// buildPair returns a runtime (no machine) with one location and n tasks
// that do nothing; handles are created by the caller.
func buildRuntime() *Runtime {
	return NewRuntime(Options{})
}

func TestModeAndStateStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("mode names: %v %v", Read, Write)
	}
	if Mode(9).String() == "" {
		t.Errorf("unknown mode empty")
	}
	if Idle.String() != "idle" || Requested.String() != "requested" || Acquired.String() != "acquired" {
		t.Errorf("state names wrong")
	}
	if HandleState(9).String() == "" {
		t.Errorf("unknown state empty")
	}
}

func TestWriteExclusive(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	t1 := rt.AddTask("t1", nil)
	t2 := rt.AddTask("t2", nil)
	h1 := t1.NewHandle(loc, Write)
	h2 := t2.NewHandle(loc, Write)

	if err := h1.Request(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Request(); err != nil {
		t.Fatal(err)
	}
	if err := h1.Acquire(); err != nil {
		t.Fatal(err)
	}
	// h2 must not be granted while h1 holds the lock.
	select {
	case <-h2.req.ready:
		t.Fatalf("second writer granted while first holds the lock")
	case <-time.After(10 * time.Millisecond):
	}
	if err := h1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Release(); err != nil {
		t.Fatal(err)
	}
	if loc.Grants() != 2 {
		t.Errorf("grants = %d, want 2", loc.Grants())
	}
	if loc.QueueLen() != 0 {
		t.Errorf("queue not empty: %d", loc.QueueLen())
	}
}

func TestReadSharing(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	var readers []*Handle
	for i := 0; i < 4; i++ {
		task := rt.AddTask("r", nil)
		readers = append(readers, task.NewHandle(loc, Read))
	}
	wTask := rt.AddTask("w", nil)
	w := wTask.NewHandle(loc, Write)

	// Queue: R R R R W — all four readers must be granted together.
	for _, r := range readers {
		if err := r.Request(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Request(); err != nil {
		t.Fatal(err)
	}
	for i, r := range readers {
		select {
		case <-r.req.ready:
		default:
			t.Fatalf("reader %d not granted in the shared group", i)
		}
		if err := r.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	// Writer blocked until every reader releases.
	select {
	case <-w.req.ready:
		t.Fatalf("writer granted while readers hold the lock")
	default:
	}
	for i, r := range readers {
		if err := r.Release(); err != nil {
			t.Fatal(err)
		}
		granted := false
		select {
		case <-w.req.ready:
			granted = true
		default:
		}
		if i < len(readers)-1 && granted {
			t.Fatalf("writer granted after only %d releases", i+1)
		}
		if i == len(readers)-1 && !granted {
			t.Fatalf("writer not granted after all readers released")
		}
	}
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBehindWriterWaits(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	wTask := rt.AddTask("w", nil)
	rTask := rt.AddTask("r", nil)
	w := wTask.NewHandle(loc, Write)
	r := rTask.NewHandle(loc, Read)

	// Queue: W R — the reader must wait even though reads could share.
	if err := w.Request(); err != nil {
		t.Fatal(err)
	}
	if err := r.Request(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.req.ready:
		t.Fatalf("reader granted past a queued writer (FIFO violated)")
	default:
	}
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderAmongWriters(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	const n = 5
	var handles []*Handle
	for i := 0; i < n; i++ {
		task := rt.AddTask("w", nil)
		handles = append(handles, task.NewHandle(loc, Write))
	}
	for _, h := range handles {
		if err := h.Request(); err != nil {
			t.Fatal(err)
		}
	}
	// Grant order must equal request order.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- { // start goroutines in reverse to stress ordering
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			if err := h.Acquire(); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(time.Millisecond)
			if err := h.Release(); err != nil {
				t.Error(err)
			}
		}(i, handles[i])
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if order[i] != i {
			t.Fatalf("grant order %v, want FIFO 0..%d", order, n-1)
		}
	}
}

func TestReleaseAndRequestKeepsCycle(t *testing.T) {
	// Two writers alternating on one location via ReleaseAndRequest: each
	// must obtain the lock exactly once per round, in the canonical order.
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	a := rt.AddTask("a", nil).NewHandle(loc, Write)
	b := rt.AddTask("b", nil).NewHandle(loc, Write)
	if err := a.Request(); err != nil {
		t.Fatal(err)
	}
	if err := b.Request(); err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	const rounds = 10
	var wg sync.WaitGroup
	for _, tc := range []struct {
		n string
		h *Handle
	}{{"a", a}, {"b", b}} {
		wg.Add(1)
		go func(n string, h *Handle) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := h.Acquire(); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, n)
				mu.Unlock()
				var err error
				if i == rounds-1 {
					err = h.Release()
				} else {
					err = h.ReleaseAndRequest()
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(tc.n, tc.h)
	}
	wg.Wait()
	if len(order) != 2*rounds {
		t.Fatalf("grants = %d, want %d", len(order), 2*rounds)
	}
	for i, want := range []string{"a", "b"} {
		for r := 0; r < rounds; r++ {
			if order[2*r+i] != want {
				t.Fatalf("round %d: order %v not strictly alternating", r, order)
			}
		}
	}
}

func TestSetDataAndQueueLen(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 64)
	loc.SetData([]float64{1, 2, 3})
	if loc.Size() != 64 || loc.Name() != "x" || loc.ID() != 0 {
		t.Errorf("location metadata wrong")
	}
	h := rt.AddTask("t", nil).NewHandle(loc, Read)
	if err := h.Request(); err != nil {
		t.Fatal(err)
	}
	if loc.QueueLen() != 1 {
		t.Errorf("QueueLen = %d", loc.QueueLen())
	}
	if err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	d, err := h.Float64s()
	if err != nil || len(d) != 3 {
		t.Errorf("Float64s = %v, %v", d, err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}
