package topology

import "fmt"

// HopMatrix returns the matrix of tree hop distances between all pairs of
// PUs: entry (i,j) is HopDistance(PU(i), PU(j)). The matrix is symmetric
// with a zero diagonal and, because it derives from a tree, satisfies the
// ultrametric inequality d(i,k) <= max(d(i,j), d(j,k)).
func (t *Topology) HopMatrix() [][]int {
	n := t.NumPUs()
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			m[i][j] = t.HopDistance(t.pus[i], t.pus[j])
		}
	}
	return m
}

// LatencyCycles returns the load-to-use latency, in cycles, experienced by a
// PU when it reads data that currently resides at the given object level
// relative to it:
//
//   - data in a cache shared with the producer (the innermost shared cache
//     between the two PUs) costs that cache's latency;
//   - data in the local NUMA node costs the node's memory latency;
//   - data in a remote NUMA node costs the local latency plus a per-hop
//     penalty proportional to the tree distance between the two nodes.
//
// The per-hop penalty is one local memory latency per two tree hops, a
// standard first-order model for directory-based ccNUMA interconnects.
func (t *Topology) LatencyCycles(from, to *Object) float64 {
	if from == to {
		l1 := from.Ancestor(L1)
		if l1 != nil {
			return l1.Attr.LatencyCycles
		}
		return 1
	}
	if c := t.SharedCache(from, to); c != nil {
		return c.Attr.LatencyCycles
	}
	nf, nt := t.NUMANodeOf(from), t.NUMANodeOf(to)
	if nf == nil || nt == nil {
		return 0
	}
	base := nf.Attr.LatencyCycles
	if nf == nt {
		return base
	}
	hops := t.HopDistance(nf, nt)
	return base * (1 + float64(hops)/2)
}

// LatencyMatrix returns the PU-to-PU latency matrix in cycles, built with
// LatencyCycles. Entry (i,i) is the L1 latency of PU i.
//
// The matrix is memoized: the topology is immutable, so it is computed on
// first call and every call returns the same backing slices. Callers must
// treat the result as read-only; copy it before modifying.
func (t *Topology) LatencyMatrix() [][]float64 {
	t.latOnce.Do(func() {
		n := t.NumPUs()
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				m[i][j] = t.LatencyCycles(t.pus[i], t.pus[j])
			}
		}
		t.latMatrix = m
	})
	return t.latMatrix
}

// NUMADistanceMatrix returns the node-to-node distance matrix in the style
// of the ACPI SLIT table exposed by hwloc: local distance is normalized to
// 10 and each pair of tree hops adds 10 (so a 2-hop remote node reads 20).
func (t *Topology) NUMADistanceMatrix() [][]int {
	n := len(t.numa)
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = 10
			} else {
				m[i][j] = 10 + 5*t.HopDistance(t.numa[i], t.numa[j])
			}
		}
	}
	return m
}

// BandwidthBytesPerSec returns the sustainable bandwidth, in bytes/second,
// seen by a PU streaming from the given NUMA node, before any contention
// scaling: the node's full bandwidth when local, and the node bandwidth
// degraded by the interconnect (halved per two hops, floored at 1/8) when
// remote. The machine simulator divides this further by the number of
// concurrent accessors.
func (t *Topology) BandwidthBytesPerSec(pu, node *Object) float64 {
	if pu == nil || node == nil {
		return 0
	}
	local := t.NUMANodeOf(pu)
	bw := node.Attr.BandwidthBytesPerSec
	if local == node {
		return bw
	}
	hops := t.HopDistance(local, node)
	scale := 1.0
	for h := 0; h < hops; h += 2 {
		scale /= 2
	}
	if scale < 1.0/8 {
		scale = 1.0 / 8
	}
	return bw * scale
}

// CheckUltrametric verifies that the hop-distance matrix satisfies the
// ultrametric inequality; it returns an error naming the violating triple
// otherwise. Used by tests; any tree metric must pass.
func (t *Topology) CheckUltrametric() error {
	m := t.HopMatrix()
	n := len(m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lim := m[i][j]
				if m[j][k] > lim {
					lim = m[j][k]
				}
				if m[i][k] > lim {
					return fmt.Errorf("topology: ultrametric violated at (%d,%d,%d): d=%d > max(%d,%d)",
						i, j, k, m[i][k], m[i][j], m[j][k])
				}
			}
		}
	}
	return nil
}
