package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
)

// TestHierarchicalPerNodeSMTWays pins that hierarchical placement derives
// hyperthread availability per node: on a platform mixing an SMT member
// with a non-SMT one, the SMT node's control threads still ride the
// co-hyperthreads (the fused machine's global minimum would be 1 and deny
// the pairing everywhere).
func TestHierarchicalPerNodeSMTWays(t *testing.T) {
	p, err := numasim.NewPlatform("node:{pack:1 core:4 pu:2 | pack:1 core:2 pu:1}", numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mach := p.Machine()
	topo := mach.Topology()
	// Six tasks in a light ring: capacities 4/2 put four on the SMT node.
	m := comm.Ring(6, 100)
	a, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	paired := 0
	for task, pu := range a.TaskPU {
		if mach.ClusterNodeOfPU(pu) != 0 {
			continue
		}
		ctl := a.ControlPU[task]
		if ctl < 0 {
			t.Errorf("task %d on the SMT node has no control binding", task)
			continue
		}
		tp, cp := topo.PU(pu), topo.PU(ctl)
		if tp.Parent != cp.Parent {
			t.Errorf("task %d: control PU %d not on the same core as task PU %d", task, ctl, pu)
			continue
		}
		paired++
	}
	if paired != 4 {
		t.Errorf("%d tasks hyperthread-paired on the SMT node, want 4", paired)
	}
}
