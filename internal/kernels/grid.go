// Package kernels implements the computational workloads of the paper's
// evaluation: the Livermore Kernel 23 (a 2-D implicit hydrodynamics
// fragment) with its ORWL block decomposition into one main operation and
// eight frontier operations per block (paper §III), plus a 5-point heat
// stencil used as a second example workload.
package kernels

import (
	"fmt"
	"math"
	"math/rand"
)

// Grid holds the state of the Livermore Kernel 23: the solution array ZA
// and the five coefficient arrays ZR, ZB, ZU, ZV, ZZ, all row-major
// Rows×Cols. Kernel sweeps update only the interior; the boundary rows and
// columns are fixed (Dirichlet conditions).
type Grid struct {
	Rows, Cols int
	ZA         []float64
	ZR, ZB     []float64
	ZU, ZV     []float64
	ZZ         []float64
}

// Streams is the number of arrays a kernel sweep touches per cell: read ZA
// (plus neighbours already in cache), write ZA, and read the five
// coefficient arrays.
const Streams = 7

// NewGrid allocates a grid with deterministic pseudo-random contents: ZA in
// [0,1), damping coefficients summing below 1 so iterations stay bounded.
func NewGrid(rows, cols int, seed int64) *Grid {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("kernels: grid %dx%d too small (needs an interior)", rows, cols))
	}
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	g := &Grid{
		Rows: rows, Cols: cols,
		ZA: make([]float64, n),
		ZR: make([]float64, n), ZB: make([]float64, n),
		ZU: make([]float64, n), ZV: make([]float64, n),
		ZZ: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		g.ZA[i] = rng.Float64()
		// Keep |zr|+|zb|+|zu|+|zv| < 1 so the implicit relaxation is stable.
		g.ZR[i] = 0.20 * rng.Float64()
		g.ZB[i] = 0.20 * rng.Float64()
		g.ZU[i] = 0.20 * rng.Float64()
		g.ZV[i] = 0.20 * rng.Float64()
		g.ZZ[i] = 0.10 * rng.Float64()
	}
	return g
}

// Idx returns the flat index of row k, column j.
func (g *Grid) Idx(k, j int) int { return k*g.Cols + j }

// At returns ZA[k][j].
func (g *Grid) At(k, j int) float64 { return g.ZA[g.Idx(k, j)] }

// Clone returns a deep copy of the solution array; the coefficient arrays
// are shared (they are never written).
func (g *Grid) Clone() *Grid {
	c := *g
	c.ZA = append([]float64(nil), g.ZA...)
	return &c
}

// Equal reports whether two grids have identical shape and ZA contents
// within the given absolute tolerance (0 for bit equality).
func (g *Grid) Equal(o *Grid, tol float64) bool {
	if g.Rows != o.Rows || g.Cols != o.Cols {
		return false
	}
	for i := range g.ZA {
		if d := math.Abs(g.ZA[i] - o.ZA[i]); d > tol || math.IsNaN(d) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute ZA difference between two grids
// of identical shape.
func (g *Grid) MaxAbsDiff(o *Grid) float64 {
	var mx float64
	for i := range g.ZA {
		if d := math.Abs(g.ZA[i] - o.ZA[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// Checksum returns the sum of ZA, a cheap fingerprint for regression tests.
func (g *Grid) Checksum() float64 {
	var s float64
	for _, v := range g.ZA {
		s += v
	}
	return s
}
