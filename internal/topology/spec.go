package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Defaults describes the physical constants used to attribute a synthetic
// topology. The zero value is not useful; start from DefaultAttrs().
type Defaults struct {
	// ClockHz is the core frequency.
	ClockHz float64
	// L1Size, L2Size, L3Size are per-cache capacities in bytes.
	L1Size, L2Size, L3Size int64
	// L1Latency, L2Latency, L3Latency are cache access latencies in cycles.
	L1Latency, L2Latency, L3Latency float64
	// MemLatencyCycles is the local DRAM access latency in cycles.
	MemLatencyCycles float64
	// MemBandwidth is the per-NUMA-node memory bandwidth in bytes/second.
	MemBandwidth float64
	// LinkBandwidth is the per-hop interconnect bandwidth in bytes/second.
	LinkBandwidth float64
	// NetLatencyCycles is the per-link latency of the cluster fabric in
	// cycles; a message between two cluster nodes traverses two links (node
	// to switch, switch to node).
	NetLatencyCycles float64
	// NetBandwidth is the per-link bandwidth of the cluster fabric in
	// bytes/second.
	NetBandwidth float64
	// UplinkLatencyCycles is the per-link latency of one rack uplink (top-of-
	// rack switch to spine) in cycles; a message between nodes in different
	// racks traverses two NIC links plus two uplinks.
	UplinkLatencyCycles float64
	// UplinkBandwidth is the per-uplink bandwidth in bytes/second. The uplink
	// is shared by every stream leaving the rack, so it is the scarce resource
	// of a multi-switch fabric.
	UplinkBandwidth float64
	// PodUplinkLatencyCycles is the per-link latency of one pod uplink (pod
	// switch to core switch) in cycles; a message between nodes in different
	// pods traverses two NIC links, two rack uplinks and two pod uplinks.
	PodUplinkLatencyCycles float64
	// PodUplinkBandwidth is the per-pod-uplink bandwidth in bytes/second,
	// shared by every stream leaving the pod.
	PodUplinkBandwidth float64
}

// DefaultAttrs returns physical constants plausible for the 2016-era large
// SMP used in the paper (e.g. a Bull BCS / SGI UV class machine): 2.27 GHz
// cores, 32 KiB L1, 256 KiB L2, a 24 MiB L3 shared per socket, ~110 ns local
// memory latency and ~7 GB/s of sustainable per-node memory bandwidth.
func DefaultAttrs() Defaults {
	return Defaults{
		ClockHz:          2.27e9,
		L1Size:           32 << 10,
		L2Size:           256 << 10,
		L3Size:           24 << 20,
		L1Latency:        4,
		L2Latency:        12,
		L3Latency:        40,
		MemLatencyCycles: 250,
		MemBandwidth:     7e9,
		LinkBandwidth:    6e9,
		// 2016-era 10-Gigabit-Ethernet-class cluster fabric: ~1.8 µs per
		// link (≈ 4000 cycles at 2.27 GHz) and 1.25 GB/s per link — an
		// order of magnitude above remote-memory latency and below
		// local-memory bandwidth, so crossing a node boundary costs
		// decisively more than any intra-machine path.
		NetLatencyCycles: 4000,
		NetBandwidth:     1.25e9,
		// Rack uplinks (ToR to spine): a trunked 2×10GbE-class link with the
		// extra store-and-forward latency of the spine tier. Twice the NIC
		// bandwidth, but shared by a whole rack's worth of crossing streams —
		// crossing a rack boundary costs decisively more than staying under
		// one switch.
		UplinkLatencyCycles: 8000,
		UplinkBandwidth:     2.5e9,
		// Pod uplinks (pod switch to core switch): another store-and-forward
		// tier, trunked no wider than the rack uplinks but shared by every
		// stream leaving a whole pod — the classic oversubscribed fat-tree
		// top, where crossing a pod boundary is the costliest path of all.
		PodUplinkLatencyCycles: 16000,
		PodUplinkBandwidth:     2.5e9,
	}
}

// specLevel is one parsed "kind:count" (or "kind:c0,c1,...") token. counts
// has one entry per parent object when the level is uneven, or a single
// entry applied to every parent.
type specLevel struct {
	kind   Kind
	counts []int
}

// total returns the number of objects this level creates under nParents
// parents, or an error when an uneven count list does not match.
func (l specLevel) total(nParents int) (int, error) {
	if len(l.counts) == 1 {
		return nParents * l.counts[0], nil
	}
	if len(l.counts) != nParents {
		return 0, fmt.Errorf("topology: level %v lists %d counts for %d parents", l.kind, len(l.counts), nParents)
	}
	n := 0
	for _, c := range l.counts {
		n += c
	}
	return n, nil
}

var kindTokens = map[string]Kind{
	"machine": Machine,
	"pod":     Pod,
	"rack":    Rack,
	"cluster": Cluster,
	"group":   Group,
	"pack":    Package,
	"socket":  Package,
	"numa":    NUMANode,
	"node":    NUMANode,
	"l3":      L3,
	"l2":      L2,
	"l1":      L1,
	"core":    Core,
	"pu":      PU,
}

// FromSpec builds a topology from a synthetic specification string with
// default physical attributes. See FromSpecAttrs for the grammar.
func FromSpec(spec string) (*Topology, error) {
	return FromSpecAttrs(spec, DefaultAttrs())
}

// FromSpecAttrs builds a topology from a synthetic specification string, in
// the style of hwloc's synthetic backend. The spec is a whitespace-separated
// list of "kind:count" tokens ordered from just below the machine root down
// towards the leaves:
//
//	pack:24 core:8 pu:1        the paper's 192-core machine
//	pack:4 numa:2 l3:1 core:6 pu:2   a deeper, hyperthreaded machine
//
// A count may also be a comma-separated list with one entry per object at
// the level above, describing an uneven machine (a partially populated or
// heterogeneous SMP):
//
//	pack:3 core:2,1,1 pu:1     three sockets with 2, 1 and 1 cores
//
// Recognized kinds: group, pack (or socket), numa (or node), l3, l2, l1,
// core, pu. Kinds must appear in root-to-leaf order and at most once. Two
// normalizations are applied so that every topology is well formed:
//
//   - if no "numa" level is given, a NUMANode level with count 1 is inserted
//     below the packages (each socket is its own memory node, which is how
//     the paper's machine is organized), or below the machine when there are
//     no packages either;
//   - if no "pu" level is given, a PU level with count 1 is appended (no
//     hyperthreading).
//
// A "core" level is likewise required and inserted (count 1) above the PUs
// when missing. The machine root itself must not appear in the spec.
//
// A cluster of machines is expressed with a leading cluster level:
//
//	cluster:4 pack:2 core:8    four 16-core machines on a network fabric
//	node:4 pack:2 core:8       the same (leading "node" before a group or
//	                           package level denotes the cluster level)
//
// The spelling "node" normally denotes a NUMA node; it is promoted to the
// cluster level only when it is the first token and a group or package level
// follows (a NUMA level above sockets would be ill-ordered, so the
// reinterpretation is unambiguous and backwards compatible), or when it
// directly follows a rack level (see below).
//
// A multi-switch fabric is expressed with a rack tier above the cluster
// level:
//
//	rack:2 node:4 pack:2 core:8    two racks of four 16-core machines
//	rack:2 cluster:4 core:16       the same node count, flat 16-core nodes
//
// Racks carry the per-uplink (top-of-rack switch to spine) latency and
// bandwidth in their attributes, cluster nodes the per-NIC link attributes;
// messages between nodes of the same rack traverse two NIC links, messages
// between racks two NIC links plus two uplinks. A rack tier requires a
// cluster (node) tier below it — "rack:2 core:8" is rejected, because a rack
// of cores is not a fabric.
//
// A non-tree fabric is expressed with a leading torus or dragonfly tier in
// place of the pod/rack/cluster tiers:
//
//	torus:4x4 pack:1 core:4        a 16-node 2-D torus
//	torus:2x2x4 pack:1 core:4      a 16-node 3-D torus
//	dragonfly:2,4,2 pack:1 core:4  2 groups x 4 routers x 2 nodes
//
// The shape's node count becomes the cluster level; transfers between the
// nodes are priced along routed edge paths of the FabricGraph (see
// fabricgraph.go) instead of the per-level tree walk. The shape token must
// lead the spec and cannot be combined with pod or rack tiers.
func FromSpecAttrs(spec string, def Defaults) (*Topology, error) {
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return nil, fmt.Errorf("topology: empty spec")
	}
	var levels []specLevel
	var names []string
	var shape *FabricShape
	for _, f := range fields {
		parts := strings.SplitN(f, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("topology: token %q is not of the form kind:count", f)
		}
		name := strings.ToLower(parts[0])
		if name == "torus" || name == "dragonfly" {
			// A non-tree fabric shape replaces the pod/rack/cluster tiers:
			// it must lead the spec, and the node count it implies becomes
			// the cluster level.
			if len(levels) > 0 || shape != nil {
				return nil, fmt.Errorf("topology: the %s fabric tier must be the first token of the spec", name)
			}
			s, err := parseFabricShape(name, parts[1])
			if err != nil {
				return nil, err
			}
			shape = s
			levels = append(levels, specLevel{Cluster, []int{s.Nodes()}})
			names = append(names, "cluster")
			continue
		}
		kind, ok := kindTokens[name]
		if !ok {
			return nil, fmt.Errorf("topology: unknown object kind %q", parts[0])
		}
		if kind == Machine {
			return nil, fmt.Errorf("topology: the machine root is implicit and must not appear in the spec")
		}
		var counts []int
		for _, cs := range strings.Split(parts[1], ",") {
			n, err := strconv.Atoi(cs)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("topology: invalid count in token %q", f)
			}
			counts = append(counts, n)
		}
		levels = append(levels, specLevel{kind, counts})
		names = append(names, name)
	}
	// Promote a leading "node" to the cluster level when a group or package
	// token follows ("node:4 pack:2 core:8" describes a 4-machine cluster),
	// and any "node" directly after a rack level (under a rack, the node tier
	// can only mean cluster nodes).
	if names[0] == "node" && len(levels) > 1 && LeadingNodeIsCluster(levels[1].kind) {
		levels[0].kind = Cluster
	}
	for i := 1; i < len(levels); i++ {
		if names[i] == "node" && levels[i-1].kind == Rack {
			levels[i].kind = Cluster
		}
	}
	seen := map[Kind]bool{}
	for _, l := range levels {
		if seen[l.kind] {
			return nil, fmt.Errorf("topology: kind %v appears twice", l.kind)
		}
		seen[l.kind] = true
	}
	if !sort.SliceIsSorted(levels, func(i, j int) bool { return levels[i].kind < levels[j].kind }) {
		return nil, fmt.Errorf("topology: kinds must appear in root-to-leaf order (machine, pod, rack, cluster, group, pack, numa, l3, l2, l1, core, pu)")
	}
	if seen[Rack] && !seen[Cluster] {
		return nil, fmt.Errorf("topology: a rack tier requires a node (cluster) tier below it, as in %q", "rack:2 node:4 pack:2 core:8")
	}
	if seen[Pod] && !seen[Rack] {
		return nil, fmt.Errorf("topology: a pod tier requires a rack tier below it, as in %q", "pod:2 rack:2 node:2 pack:2 core:8")
	}
	levels = normalize(levels)

	root := &Object{Kind: Machine, Attr: Attr{ClockHz: def.ClockHz}}
	if err := grow(root, levels, def); err != nil {
		return nil, err
	}
	t := build(root, canonicalSpecShaped(levels, shape))
	t.fabric = shape
	t.fabricDef = def
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// LeadingNodeIsCluster reports whether a leading "node" token denotes the
// cluster tier rather than a NUMA level: exactly when the level that
// follows sits above the NUMA tier (a NUMA level above groups or packages
// would be ill-ordered, so the reinterpretation is unambiguous). The single
// source of the promotion rule, shared by FromSpecAttrs and the platform
// grammar (ParsePlatform).
func LeadingNodeIsCluster(next Kind) bool { return next >= 0 && next < NUMANode }

// normalize inserts the implicit numa, core and pu levels documented in
// FromSpecAttrs.
func normalize(levels []specLevel) []specLevel {
	has := func(k Kind) bool {
		for _, l := range levels {
			if l.kind == k {
				return true
			}
		}
		return false
	}
	insertAfterKind := func(k Kind, nl specLevel) {
		pos := 0
		for i, l := range levels {
			if l.kind <= k {
				pos = i + 1
			}
		}
		levels = append(levels[:pos], append([]specLevel{nl}, levels[pos:]...)...)
	}
	if !has(NUMANode) {
		if has(Package) {
			insertAfterKind(Package, specLevel{NUMANode, []int{1}})
		} else {
			insertAfterKind(Group, specLevel{NUMANode, []int{1}}) // right below machine/groups
		}
	}
	if !has(Core) {
		insertAfterKind(L1, specLevel{Core, []int{1}})
	}
	if !has(PU) {
		levels = append(levels, specLevel{PU, []int{1}})
	}
	return levels
}

// canonicalSpec renders the normalized levels back into a spec string.
func canonicalSpec(levels []specLevel) string {
	return canonicalSpecShaped(levels, nil)
}

// canonicalSpecShaped is canonicalSpec with the cluster level rendered as
// its fabric-shape token ("torus:4x4") when the fabric is non-tree, so
// shaped specs round-trip through their normalized form.
func canonicalSpecShaped(levels []specLevel, shape *FabricShape) string {
	names := map[Kind]string{
		Pod: "pod", Rack: "rack", Cluster: "cluster", Group: "group", Package: "pack",
		NUMANode: "numa", L3: "l3", L2: "l2", L1: "l1", Core: "core", PU: "pu",
	}
	parts := make([]string, len(levels))
	for i, l := range levels {
		if shape != nil && l.kind == Cluster {
			parts[i] = shape.Token()
			continue
		}
		cs := make([]string, len(l.counts))
		for j, c := range l.counts {
			cs[j] = strconv.Itoa(c)
		}
		parts[i] = fmt.Sprintf("%s:%s", names[l.kind], strings.Join(cs, ","))
	}
	return strings.Join(parts, " ")
}

// grow attaches children level by level. A level with a single count gives
// every parent that many children; an uneven level lists one count per
// parent, in left-to-right order.
func grow(root *Object, levels []specLevel, def Defaults) error {
	parents := []*Object{root}
	for _, l := range levels {
		if _, err := l.total(len(parents)); err != nil {
			return err
		}
		var next []*Object
		for pi, p := range parents {
			n := l.counts[0]
			if len(l.counts) > 1 {
				n = l.counts[pi]
			}
			for i := 0; i < n; i++ {
				c := &Object{Kind: l.kind, Attr: attrFor(l.kind, def)}
				p.Children = append(p.Children, c)
				next = append(next, c)
			}
		}
		parents = next
	}
	return nil
}

// attrFor returns the default physical attributes for an object kind.
func attrFor(k Kind, def Defaults) Attr {
	switch k {
	case L1:
		return Attr{CacheSize: def.L1Size, LatencyCycles: def.L1Latency}
	case L2:
		return Attr{CacheSize: def.L2Size, LatencyCycles: def.L2Latency}
	case L3:
		return Attr{CacheSize: def.L3Size, LatencyCycles: def.L3Latency}
	case NUMANode:
		return Attr{
			LatencyCycles:        def.MemLatencyCycles,
			BandwidthBytesPerSec: def.MemBandwidth,
		}
	case Group:
		return Attr{BandwidthBytesPerSec: def.LinkBandwidth}
	case Cluster:
		return Attr{
			LatencyCycles:        def.NetLatencyCycles,
			BandwidthBytesPerSec: def.NetBandwidth,
		}
	case Rack:
		return Attr{
			LatencyCycles:        def.UplinkLatencyCycles,
			BandwidthBytesPerSec: def.UplinkBandwidth,
		}
	case Pod:
		return Attr{
			LatencyCycles:        def.PodUplinkLatencyCycles,
			BandwidthBytesPerSec: def.PodUplinkBandwidth,
		}
	default:
		return Attr{}
	}
}

// PaperMachine returns the evaluation machine of the paper: an SMP with 24
// sockets of 8 cores (192 cores, no hyperthreading), one NUMA node and one
// shared L3 per socket.
func PaperMachine() *Topology {
	t, err := FromSpec("pack:24 l3:1 core:8 pu:1")
	if err != nil {
		panic("topology: PaperMachine spec failed to parse: " + err.Error())
	}
	return t
}

// PaperMachineSMT returns the paper's machine with 2-way hyperthreading
// enabled, the configuration under which the control threads of the ORWL
// runtime are bound to the co-hyperthread of their computation thread.
func PaperMachineSMT() *Topology {
	t, err := FromSpec("pack:24 l3:1 core:8 pu:2")
	if err != nil {
		panic("topology: PaperMachineSMT spec failed to parse: " + err.Error())
	}
	return t
}
