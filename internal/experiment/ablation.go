package experiment

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
	"repro/internal/omp"
	"repro/internal/orwl"
	"repro/internal/placement"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Name    string
	Seconds float64
	Detail  string
	// WallSeconds is the real (wall-clock) time a row took to compute,
	// used by the benchmark tiers that measure the placement pipeline
	// itself rather than a simulated program. Zero on simulation rows.
	WallSeconds float64
}

// FormatAblation renders ablation rows with speedups relative to the first
// row. Benchmark rows (simulated seconds zero, wall seconds set) render
// their wall time instead of a speedup.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	base := 0.0
	if len(rows) > 0 {
		base = rows[0].Seconds
	}
	for _, r := range rows {
		if r.Seconds == 0 && r.WallSeconds > 0 {
			fmt.Fprintf(&b, "  %-38s %9.3fs wall  %s\n", r.Name, r.WallSeconds, r.Detail)
			continue
		}
		fmt.Fprintf(&b, "  %-22s %9.2fs  x%-5.2f %s\n", r.Name, r.Seconds, safeRatio(r.Seconds, base), r.Detail)
	}
	return b.String()
}

// AblationPolicies (A1) compares the placement policies on the full LK23
// configuration: the paper's TreeMatch against compact, scatter, random and
// the unbound baseline.
func AblationPolicies(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	policies := []placement.Policy{
		placement.TreeMatch{},
		placement.Compact{},
		placement.Scatter{},
		placement.Random{Seed: cfg.Seed + 1},
		placement.NoBind{},
	}
	var rows []AblationRow
	for _, pol := range policies {
		c := cfg
		impl := ORWLBind
		if pol.Name() == "nobind" {
			impl = ORWLNoBind
		} else {
			c.Policy = pol
		}
		res, err := Run(impl, c)
		if err != nil {
			return nil, fmt.Errorf("ablation policies, %s: %w", pol.Name(), err)
		}
		rows = append(rows, AblationRow{Name: pol.Name(), Seconds: res.Seconds})
	}
	return rows, nil
}

// AblationControlThreads (A2) isolates the paper's control-thread
// adaptation: the same LK23 program with TreeMatch binding under the
// strategies of Algorithm 1 — hyperthread pairing (on an SMT machine),
// spare cores (few enough blocks that cores are spare), and unmapped
// control threads. For each scenario the "unmapped" variant rebinds only
// the control threads, so the difference is purely their placement.
//
// Control-thread placement is a per-lock-transition effect, invisible under
// a workload whose iterations stream tens of megabytes per block; the
// ablation therefore shrinks the matrix (by 16× per side, floored at
// 1024²) so synchronization is a meaningful share of each iteration —
// matching the regimes where the paper's adaptation pays.
func AblationControlThreads(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	cfg.Rows = cfg.Rows / 16
	if cfg.Rows < 1024 {
		cfg.Rows = 1024
	}
	cfg.Cols = cfg.Cols / 16
	if cfg.Cols < 1024 {
		cfg.Cols = 1024
	}
	var rows []AblationRow

	// Scenario 1: SMT machine, control threads on co-hyperthreads vs
	// released to the OS.
	for _, unbindCtl := range []bool{false, true} {
		smt := cfg
		smt.SMT = true
		res, err := runORWLControlVariant(smt, unbindCtl)
		if err != nil {
			return nil, err
		}
		name := "smt/hyperthread"
		if unbindCtl {
			name = "smt/unmapped"
		}
		rows = append(rows, AblationRow{Name: name, Seconds: res.Seconds, Detail: res.Strategy})
	}

	// Scenario 2: no SMT and few enough blocks that the 9 operations per
	// block leave cores spare (tasks = 9·blocks < cores): the spare cores
	// take the control threads vs releasing them.
	for _, unbindCtl := range []bool{false, true} {
		spare := cfg
		spare.BlocksOverride = cfg.Cores / 16
		if spare.BlocksOverride == 0 {
			spare.BlocksOverride = 1
		}
		res, err := runORWLControlVariant(spare, unbindCtl)
		if err != nil {
			return nil, err
		}
		name := "spare/mapped"
		if unbindCtl {
			name = "spare/unmapped"
		}
		rows = append(rows, AblationRow{Name: name, Seconds: res.Seconds, Detail: res.Strategy})
	}
	return rows, nil
}

// runORWLControlVariant runs an ORWL-bind LK23 and optionally strips the
// control-thread bindings after placement.
func runORWLControlVariant(cfg Config, unbindCtl bool) (Result, error) {
	mach, err := Machine(cfg)
	if err != nil {
		return Result{}, err
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	blocks := cfg.BlocksOverride
	if blocks == 0 {
		blocks = cfg.Cores
	}
	bx, by := BlockGrid(blocks)
	prog, err := kernels.Build(rt, cfg.Rows, cfg.Cols, kernels.BuildOptions{
		BX: bx, BY: by, Iters: cfg.Iters, Costs: kernels.LK23Costs,
	})
	if err != nil {
		return Result{}, err
	}
	a, err := placement.Place(rt, placement.TreeMatch{})
	if err != nil {
		return Result{}, err
	}
	if unbindCtl {
		for _, t := range rt.Tasks() {
			if err := rt.BindControl(t, -1); err != nil {
				return Result{}, err
			}
		}
	}
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	placement.SetContention(mach, a, heavy)
	if err := rt.Run(); err != nil {
		return Result{}, err
	}
	return Result{
		Impl: ORWLBind, Cores: cfg.Cores, Blocks: blocks,
		Seconds: rt.MakespanSeconds(), Policy: a.Policy, Strategy: a.Strategy.String(),
	}, nil
}

// AblationOversubscription (A3) exercises the paper's oversubscription
// adaptation: the same machine with 1×, 2× and 4× as many blocks as cores.
// TreeMatch adds a virtual tree level and keeps each block's operations
// together; the run must stay correct and the overhead bounded.
func AblationOversubscription(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, factor := range []int{1, 2, 4} {
		c := cfg
		c.BlocksOverride = cfg.Cores * factor
		res, err := Run(ORWLBind, c)
		if err != nil {
			return nil, fmt.Errorf("ablation oversubscription x%d: %w", factor, err)
		}
		rows = append(rows, AblationRow{
			Name:    fmt.Sprintf("blocks=%dx cores", factor),
			Seconds: res.Seconds,
			Detail:  fmt.Sprintf("%d tasks on %d cores", res.Tasks, res.Cores),
		})
	}
	return rows, nil
}

// AblationGranularity (A4) sweeps the block grid at fixed machine size:
// fewer, larger blocks leave cores idle; more, smaller blocks raise the
// protocol and halo overhead.
func AblationGranularity(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, blocks := range []int{cfg.Cores / 4, cfg.Cores / 2, cfg.Cores, cfg.Cores * 2} {
		if blocks < 1 {
			continue
		}
		c := cfg
		c.BlocksOverride = blocks
		res, err := Run(ORWLBind, c)
		if err != nil {
			return nil, fmt.Errorf("ablation granularity %d blocks: %w", blocks, err)
		}
		bx, by := BlockGrid(blocks)
		rows = append(rows, AblationRow{
			Name:    fmt.Sprintf("%d blocks", blocks),
			Seconds: res.Seconds,
			Detail:  fmt.Sprintf("grid %dx%d", bx, by),
		})
	}
	return rows, nil
}

// TopologyCase is one machine shape of the topology ablation.
type TopologyCase struct {
	Name string
	Spec string
}

// DefaultTopologyCases returns three 192-core machines of increasing
// hierarchy depth.
func DefaultTopologyCases() []TopologyCase {
	return []TopologyCase{
		{"flat-24x8", "pack:24 l3:1 core:8 pu:1"},
		{"numa-4x6x8", "pack:4 numa:6 l3:1 core:8 pu:1"},
		{"deep-2x2x3x16", "group:2 pack:2 numa:3 l3:2 core:8 pu:1"},
	}
}

// AblationTopology (A5) runs Bind vs NoBind on machines of different
// hierarchy depth but identical core count, showing that the placement
// module adapts to the tree shape it is given.
func AblationTopology(cfg Config, cases []TopologyCase) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, tc := range cases {
		for _, impl := range []Impl{ORWLBind, ORWLNoBind} {
			res, err := runORWLOnSpec(impl, cfg, tc.Spec)
			if err != nil {
				return nil, fmt.Errorf("ablation topology %s, %s: %w", tc.Name, impl, err)
			}
			rows = append(rows, AblationRow{
				Name:    fmt.Sprintf("%s/%s", tc.Name, impl),
				Seconds: res.Seconds,
				Detail:  res.Strategy,
			})
		}
	}
	return rows, nil
}

// AblationDistribution (A6) isolates the distribution requirement of the
// paper ("we cluster threads that share data, and at the same time,
// distribute threads over NUMA nodes"): TreeMatch with and without the
// tree-restriction step, on an SMT machine (so control threads ride
// hyperthreads and do not consume the spare cores) with few enough blocks
// that there is room to spread. The decisive metric is structural — how
// many NUMA nodes carry work — because the simulator's uniform contention
// model deliberately averages per-node pressure (see DESIGN.md §5.2); the
// Detail field records it alongside the simulated time.
func AblationDistribution(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	cfg.SMT = true
	cfg.BlocksOverride = cfg.Cores / 16
	if cfg.BlocksOverride < 1 {
		cfg.BlocksOverride = 1
	}
	var rows []AblationRow
	for _, noDist := range []bool{false, true} {
		c := cfg
		c.Policy = placement.TreeMatch{NoDistribute: noDist}
		res, a, err := runORWLWithAssignment(ORWLBind, c)
		if err != nil {
			return nil, fmt.Errorf("ablation distribution: %w", err)
		}
		mach, err := Machine(c)
		if err != nil {
			return nil, err
		}
		nodes := map[int]bool{}
		for _, pu := range a.TaskPU {
			if pu >= 0 {
				nodes[mach.NodeOfPU(pu)] = true
			}
		}
		name := "distribute"
		if noDist {
			name = "cluster-only"
		}
		rows = append(rows, AblationRow{
			Name:    name,
			Seconds: res.Seconds,
			Detail:  fmt.Sprintf("%d NUMA nodes carry tasks", len(nodes)),
		})
	}
	return rows, nil
}

// NodesUsed extracts the node-spread metric from an A6 row's detail.
func NodesUsed(r AblationRow) int {
	var n int
	fmt.Sscanf(r.Detail, "%d", &n)
	return n
}

// AblationOMPSchedule (A7) sweeps the loop-scheduling policy of the OpenMP
// baseline. The point the paper makes implicitly — that the baseline's
// problem is affinity, not load balancing — shows here: no schedule
// rescues OpenMP, because the cost is where the pages are, not how the
// rows are dealt out.
func AblationOMPSchedule(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, sched := range []omp.Schedule{omp.Static, omp.Dynamic, omp.Guided} {
		res, err := runOMPSchedule(cfg, sched)
		if err != nil {
			return nil, fmt.Errorf("ablation omp schedule %v: %w", sched, err)
		}
		rows = append(rows, AblationRow{Name: "omp/" + sched.String(), Seconds: res.Seconds})
	}
	bind, err := Run(ORWLBind, cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{Name: "orwl-bind", Seconds: bind.Seconds, Detail: "reference"})
	return rows, nil
}

// runORWLOnSpec is runORWL with an explicit topology spec.
func runORWLOnSpec(impl Impl, cfg Config, spec string) (Result, error) {
	mach, err := machineFromSpec(spec)
	if err != nil {
		return Result{}, err
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	blocks := cfg.BlocksOverride
	if blocks == 0 {
		blocks = mach.Topology().NumCores()
	}
	bx, by := BlockGrid(blocks)
	prog, err := kernels.Build(rt, cfg.Rows, cfg.Cols, kernels.BuildOptions{
		BX: bx, BY: by, Iters: cfg.Iters, Costs: kernels.LK23Costs,
	})
	if err != nil {
		return Result{}, err
	}
	var pol placement.Policy = placement.TreeMatch{}
	if impl == ORWLNoBind {
		pol = placement.NoBind{}
	}
	a, err := placement.Place(rt, pol)
	if err != nil {
		return Result{}, err
	}
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	placement.SetContention(mach, a, heavy)
	if err := rt.Run(); err != nil {
		return Result{}, err
	}
	return Result{
		Impl: impl, Cores: mach.Topology().NumCores(), Blocks: blocks,
		Seconds: rt.MakespanSeconds(), Policy: a.Policy, Strategy: a.Strategy.String(),
	}, nil
}
