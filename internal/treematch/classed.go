package treematch

import (
	"fmt"
	"math"

	"repro/internal/comm"
)

// AssignClassed maps each entity of the matrix (in hierarchical placement:
// each partition group) to a distinct leaf of the tree (a cluster node of
// the fabric tree), minimizing the hop-weighted communication cost (Cost)
// subject to a class constraint: entity g may only occupy leaves with
// leafClass[leaf] == entityClass[g]. This is the capacity-aware group→node
// matching of heterogeneous platforms — a group sized for an 8-core node
// must land on an 8-core node, and within that constraint groups exchanging
// heavy residual volume should share a rack (and a pod). On homogeneous
// platforms every leaf is one class and MapMatrix's unconstrained matching
// applies instead.
//
// The search is exact branch-and-bound over class-preserving assignments
// when the constrained permutation space is small (node counts of practical
// fabrics), and falls back to the deterministic greedy solution beyond
// classedSearchLimit permutations.
func AssignClassed(tree *Tree, m *comm.Matrix, entityClass, leafClass []int) ([]int, error) {
	p := m.Order()
	if p != tree.Leaves() {
		return nil, fmt.Errorf("treematch: AssignClassed maps %d entities onto %d leaves", p, tree.Leaves())
	}
	if len(entityClass) != p || len(leafClass) != p {
		return nil, fmt.Errorf("treematch: AssignClassed got %d entity classes and %d leaf classes for %d entities",
			len(entityClass), len(leafClass), p)
	}
	entityPerClass := map[int]int{}
	leavesPerClass := map[int]int{}
	for i := 0; i < p; i++ {
		entityPerClass[entityClass[i]]++
		leavesPerClass[leafClass[i]]++
	}
	if len(entityPerClass) != len(leavesPerClass) {
		return nil, fmt.Errorf("treematch: AssignClassed classes mismatch: %d entity classes, %d leaf classes",
			len(entityPerClass), len(leavesPerClass))
	}
	for c, n := range entityPerClass {
		if leavesPerClass[c] != n {
			return nil, fmt.Errorf("treematch: AssignClassed class %d has %d entities but %d leaves", c, n, leavesPerClass[c])
		}
	}

	// Pair affinity and per-entity totals, for the assignment order (most
	// constrained — heaviest — first) and the cost increments.
	aff := make([][]float64, p)
	for i := range aff {
		aff[i] = make([]float64, p)
		for j := range aff[i] {
			if i != j {
				aff[i][j] = m.At(i, j) + m.At(j, i)
			}
		}
	}
	vol := make([]float64, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			vol[i] += aff[i][j]
		}
	}
	// Affinity-attachment order: start from the heaviest entity and always
	// continue with the unplaced entity most strongly tied to the placed
	// set (ties towards total volume, then the lower index). Heavy partners
	// are thereby placed back to back, so the incremental cost of the
	// greedy pass — and the early pruning of the branch-and-bound — sees
	// their edge the moment the second endpoint is placed, instead of
	// placing both blindly and hoping refinement reunites them.
	order := make([]int, 0, p)
	placed := make([]bool, p)
	score := make([]float64, p)
	for len(order) < p {
		pick := -1
		for i := 0; i < p; i++ {
			if placed[i] {
				continue
			}
			if pick < 0 || score[i] > score[pick] ||
				(score[i] == score[pick] && vol[i] > vol[pick]) {
				pick = i
			}
		}
		placed[pick] = true
		order = append(order, pick)
		for j := 0; j < p; j++ {
			if !placed[j] {
				score[j] += aff[pick][j]
			}
		}
	}

	// place[i] is the leaf of entity order[i]; incremental cost of placing e
	// on leaf l is Σ over already-placed partners of aff × LeafDistance.
	used := make([]bool, p)
	assignment := make([]int, p)
	increment := func(pos int, e, leaf int) float64 {
		s := 0.0
		for q := 0; q < pos; q++ {
			partner := order[q]
			if a := aff[e][partner]; a != 0 {
				s += a * float64(tree.LeafDistance(leaf, assignment[partner]))
			}
		}
		return s
	}

	// Greedy incumbent: cheapest class-compatible leaf per entity, ties
	// towards the lower leaf index — then class-preserving pairwise-swap
	// refinement. The greedy pass alone can fall into the identity when
	// heavy partners are placed after each other (both unplaced, so their
	// affinity never informs a choice); the swap pass pulls such partners
	// back together.
	for pos, e := range order {
		bestLeaf, bestInc := -1, math.Inf(1)
		for l := 0; l < p; l++ {
			if used[l] || leafClass[l] != entityClass[e] {
				continue
			}
			if inc := increment(pos, e, l); inc < bestInc {
				bestLeaf, bestInc = l, inc
			}
		}
		used[bestLeaf] = true
		assignment[e] = bestLeaf
	}
	refineClassedSwaps(tree, aff, entityClass, assignment)
	best := append([]int(nil), assignment...)
	bestCost := Cost(tree, m, best)

	space := 1.0
	for _, n := range entityPerClass {
		for f := 2; f <= n; f++ {
			space *= float64(f)
		}
	}
	if space > classedSearchLimit {
		return best, nil
	}

	copy(assignment, best)
	for i := range used {
		used[i] = false
	}
	var rec func(pos int, cost float64)
	rec = func(pos int, cost float64) {
		if cost >= bestCost {
			return // the increment is nonnegative, so the partial cost bounds
		}
		if pos == p {
			bestCost = cost
			copy(best, assignment)
			return
		}
		e := order[pos]
		for l := 0; l < p; l++ {
			if used[l] || leafClass[l] != entityClass[e] {
				continue
			}
			used[l] = true
			assignment[e] = l
			rec(pos+1, cost+increment(pos, e, l))
			used[l] = false
		}
	}
	rec(0, 0)
	return best, nil
}

// refineClassedSwaps improves an assignment with pairwise swaps between
// same-class entities (a bounded Kernighan–Lin pass on the leaf
// permutation): swap the leaves of e1 and e2 whenever that strictly lowers
// the hop-weighted cost. Each pass scans all same-class pairs once; the
// distance between e1 and e2 themselves is swap-invariant, so only their
// edges to third parties enter the delta.
func refineClassedSwaps(tree *Tree, aff [][]float64, entityClass, assignment []int) {
	p := len(assignment)
	for pass := 0; pass < classedRefinePasses; pass++ {
		improved := false
		for e1 := 0; e1 < p; e1++ {
			for e2 := e1 + 1; e2 < p; e2++ {
				if entityClass[e1] != entityClass[e2] {
					continue
				}
				l1, l2 := assignment[e1], assignment[e2]
				delta := 0.0
				for j := 0; j < p; j++ {
					if j == e1 || j == e2 {
						continue
					}
					lj := assignment[j]
					if a := aff[e1][j]; a != 0 {
						delta += a * float64(tree.LeafDistance(l2, lj)-tree.LeafDistance(l1, lj))
					}
					if a := aff[e2][j]; a != 0 {
						delta += a * float64(tree.LeafDistance(l1, lj)-tree.LeafDistance(l2, lj))
					}
				}
				if delta < -1e-12 {
					assignment[e1], assignment[e2] = l2, l1
					improved = true
				}
			}
		}
		if !improved {
			return
		}
	}
}

// classedRefinePasses bounds the swap refinement of the greedy incumbent.
const classedRefinePasses = 8

// classedSearchLimit bounds the constrained permutation space — the
// product of the per-class factorials — the exact branch-and-bound of
// AssignClassed walks; beyond it the refined greedy solution stands. Two
// classes of 4 (A11's default shape, 576 permutations) or of 6 (518k) stay
// under it; two classes of 8 (1.6e9) or a single class of 10 (3.6e6) fall
// back.
const classedSearchLimit = 3e6
