package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// Capacity is the scheduler's free-capacity index: which core slots of every
// cluster node are free, with per-domain free counts for each fabric tier
// kept incrementally consistent as jobs bind and release slots. All queries
// are O(1) or O(slots); Bind/Release are O(slots·log cores).
type Capacity struct {
	topo *topology.Topology
	// free[n] lists the free core level-indices of cluster node n,
	// ascending.
	free [][]int
	// nodeOf maps a core level index to its cluster node index.
	nodeOf []int
	// domains caches the domain list per tier; domainOfNode[tier][n] is
	// the index of node n's domain at that tier.
	domains      map[topology.Kind][]topology.FabricDomain
	domainOfNode map[topology.Kind][]int
	// domainFree[tier][d] counts the free slots inside domain d of tier.
	domainFree map[topology.Kind][]int
	total      int
}

// NewCapacity builds the index for an entirely free platform.
func NewCapacity(topo *topology.Topology) (*Capacity, error) {
	if topo == nil {
		return nil, fmt.Errorf("sched: capacity index requires a topology")
	}
	nodes := topo.NumClusterNodes()
	c := &Capacity{
		topo:         topo,
		free:         make([][]int, nodes),
		nodeOf:       make([]int, topo.NumCores()),
		domains:      map[topology.Kind][]topology.FabricDomain{},
		domainOfNode: map[topology.Kind][]int{},
		domainFree:   map[topology.Kind][]int{},
	}
	nodeIdx := map[*topology.Object]int{}
	for i, node := range topo.ClusterNodes() {
		nodeIdx[node] = i
	}
	for ci, core := range topo.Cores() {
		n := 0
		if cn := topo.ClusterNodeOf(core); cn != nil {
			n = nodeIdx[cn]
		}
		c.nodeOf[ci] = n
		c.free[n] = append(c.free[n], ci)
	}
	c.total = topo.NumCores()
	for _, tier := range topo.DomainTiers() {
		doms := topo.FabricDomains(tier)
		c.domains[tier] = doms
		ofNode := make([]int, nodes)
		freeCount := make([]int, len(doms))
		for d, dom := range doms {
			for _, n := range dom.Nodes {
				ofNode[n] = d
				freeCount[d] += len(c.free[n])
			}
		}
		c.domainOfNode[tier] = ofNode
		c.domainFree[tier] = freeCount
	}
	return c, nil
}

// Tiers lists the platform's fabric tiers, narrowest first.
func (c *Capacity) Tiers() []topology.Kind { return c.topo.DomainTiers() }

// Domains returns the domains of one tier (the topology's enumeration).
func (c *Capacity) Domains(tier topology.Kind) []topology.FabricDomain {
	return c.domains[tier]
}

// DomainFree returns the free slot count of domain d at the given tier.
func (c *Capacity) DomainFree(tier topology.Kind, d int) int {
	return c.domainFree[tier][d]
}

// FreeTotal returns the number of free slots on the whole platform.
func (c *Capacity) FreeTotal() int { return c.total }

// NodeFree returns the number of free slots on cluster node n.
func (c *Capacity) NodeFree(n int) int { return len(c.free[n]) }

// MaxNodeFree returns the largest per-node free count, the "how packed are
// we" numerator of the fragmentation metric.
func (c *Capacity) MaxNodeFree() int {
	max := 0
	for _, slots := range c.free {
		if len(slots) > max {
			max = len(slots)
		}
	}
	return max
}

// NodeOf maps a core level index to its cluster node index.
func (c *Capacity) NodeOf(core int) int { return c.nodeOf[core] }

// DomainOfNode returns the index of node n's domain at the given tier.
func (c *Capacity) DomainOfNode(tier topology.Kind, n int) int {
	return c.domainOfNode[tier][n]
}

// nodeFreeCounts snapshots the per-node free-slot counts — the seed of the
// hypothetical capacity walk that computes a blocked head's earliest
// feasible start (phase2.go:earliestStart).
func (c *Capacity) nodeFreeCounts() []int {
	counts := make([]int, len(c.free))
	for n, slots := range c.free {
		counts[n] = len(slots)
	}
	return counts
}

// FreeSlots returns a full-length free-slot view (one entry per cluster
// node) with copies of the free lists of exactly the requested nodes — the
// shape placement.AssignFreeSlots consumes.
func (c *Capacity) FreeSlots(nodes []int) [][]int {
	out := make([][]int, len(c.free))
	for _, n := range nodes {
		out[n] = append([]int(nil), c.free[n]...)
	}
	return out
}

// Bind removes the given core slots from the free index; every slot must
// currently be free. On error the index is unchanged.
func (c *Capacity) Bind(cores []int) error {
	if err := c.checkSlots(cores, true); err != nil {
		return err
	}
	for _, core := range cores {
		n := c.nodeOf[core]
		slots := c.free[n]
		i := sort.SearchInts(slots, core)
		c.free[n] = append(slots[:i], slots[i+1:]...)
		c.adjust(n, -1)
	}
	return nil
}

// Release returns the given core slots to the free index; every slot must
// currently be bound. On error the index is unchanged.
func (c *Capacity) Release(cores []int) error {
	if err := c.checkSlots(cores, false); err != nil {
		return err
	}
	for _, core := range cores {
		n := c.nodeOf[core]
		slots := c.free[n]
		i := sort.SearchInts(slots, core)
		c.free[n] = append(slots[:i], append([]int{core}, slots[i:]...)...)
		c.adjust(n, +1)
	}
	return nil
}

// checkSlots validates a Bind/Release argument before any mutation:
// in-range, duplicate-free, and each slot in the expected state.
func (c *Capacity) checkSlots(cores []int, wantFree bool) error {
	seen := map[int]bool{}
	for _, core := range cores {
		if core < 0 || core >= len(c.nodeOf) {
			return fmt.Errorf("sched: core %d out of range [0,%d)", core, len(c.nodeOf))
		}
		if seen[core] {
			return fmt.Errorf("sched: core %d listed twice", core)
		}
		seen[core] = true
		slots := c.free[c.nodeOf[core]]
		i := sort.SearchInts(slots, core)
		isFree := i < len(slots) && slots[i] == core
		if isFree != wantFree {
			if wantFree {
				return fmt.Errorf("sched: core %d is not free", core)
			}
			return fmt.Errorf("sched: core %d is already free", core)
		}
	}
	return nil
}

// adjust applies a one-slot delta for node n to every aggregate count.
func (c *Capacity) adjust(n, delta int) {
	c.total += delta
	for tier, ofNode := range c.domainOfNode {
		c.domainFree[tier][ofNode[n]] += delta
	}
}

// Fingerprint renders the exact free-slot state canonically; two indexes
// with identical fingerprints hold identical state. The departure-restores-
// capacity invariant test compares fingerprints around a bind/release pair.
func (c *Capacity) Fingerprint() string {
	var b strings.Builder
	for n, slots := range c.free {
		fmt.Fprintf(&b, "n%d:%v;", n, slots)
	}
	return b.String()
}

// Validate recomputes every aggregate from the per-node free lists and
// reports the first inconsistency — the property tests' ground truth that
// incremental maintenance never drifts.
func (c *Capacity) Validate() error {
	total := 0
	for n, slots := range c.free {
		if !sort.IntsAreSorted(slots) {
			return fmt.Errorf("sched: free list of node %d not sorted: %v", n, slots)
		}
		for _, core := range slots {
			if c.nodeOf[core] != n {
				return fmt.Errorf("sched: core %d filed under node %d, belongs to %d", core, n, c.nodeOf[core])
			}
		}
		total += len(slots)
	}
	if total != c.total {
		return fmt.Errorf("sched: total free %d, recount %d", c.total, total)
	}
	for tier, doms := range c.domains {
		for d, dom := range doms {
			want := 0
			for _, n := range dom.Nodes {
				want += len(c.free[n])
			}
			if got := c.domainFree[tier][d]; got != want {
				return fmt.Errorf("sched: %v free count %d, recount %d", dom, got, want)
			}
		}
	}
	return nil
}
