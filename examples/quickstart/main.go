// Quickstart: two ORWL tasks hand a counter back and forth through one
// location on the paper's simulated 192-core machine, with the placement
// module binding both tasks (and their control threads) automatically.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys, err := repro.NewSystem(repro.SystemOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	rt := sys.Runtime()

	// One location protecting a single float64.
	counter := rt.NewLocation("counter", 8)
	counter.SetData([]float64{0})

	const iters = 10
	for _, name := range []string{"ping", "pong"} {
		task := rt.AddTask(name, func(task *repro.Task) error {
			h := task.Handle(0)
			for it := 0; it < iters; it++ {
				// Acquire the write lock; the FIFO alternates the two
				// tasks deterministically.
				if err := h.Acquire(); err != nil {
					return err
				}
				data, err := h.Float64s()
				if err != nil {
					return err
				}
				data[0]++
				task.Proc().ComputeCycles(1000) // pretend to work
				task.EndIteration()
				if it == iters-1 {
					err = h.Release()
				} else {
					// The ORWL iterative primitive: re-queue before
					// releasing, keeping the alternation fair forever.
					err = h.ReleaseAndRequest()
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		task.NewHandle(counter, repro.Write)
	}

	if err := sys.Run(nil); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())
	fmt.Printf("counter: %v (want %d)\n", counter.PeekData().([]float64)[0], 2*iters)
}
