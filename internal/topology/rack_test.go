package topology

import (
	"strings"
	"testing"
)

// TestRackSpec covers the rack tier of the spec grammar: a well-formed rack
// spec builds a three-tier fabric, and every malformed variant returns an
// error (never a panic).
func TestRackSpec(t *testing.T) {
	tests := []struct {
		name    string
		spec    string
		wantErr string // empty means the spec must parse
	}{
		{"rack with node tier", "rack:2 node:4 pack:2 core:8", ""},
		{"rack with cluster tier", "rack:2 cluster:4 core:16", ""},
		{"rack of flat nodes", "rack:3 node:2 core:4", ""},
		{"rack zero", "rack:0 node:4 pack:2 core:8", "invalid count"},
		{"rack negative", "rack:-1 node:2 core:4", "invalid count"},
		{"rack without node tier", "rack:2 core:8", "requires a node (cluster) tier"},
		{"rack without node tier, deep", "rack:2 pack:2 core:8", "requires a node (cluster) tier"},
		{"rack alone", "rack:2", "requires a node (cluster) tier"},
		{"rack below cluster", "cluster:2 rack:2 core:8", "root-to-leaf order"},
		{"rack twice", "rack:2 rack:2 node:2 core:4", "appears twice"},
		{"uneven rack list", "rack:2,3 node:2 core:4", "2 counts for 1 parents"},
		{"trailing arity list on nodes", "rack:2 node:2,2,2 core:4", "3 counts for 2 parents"},
		{"trailing arity list on cores", "node:2 pack:1 core:4,4,4", "3 counts for 2 parents"},
		{"rack zero in list", "rack:1,0 node:2 core:4", "invalid count"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			top, err := FromSpec(tc.spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("FromSpec(%q) failed: %v", tc.spec, err)
				}
				if err := top.Validate(); err != nil {
					t.Fatalf("built topology invalid: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("FromSpec(%q) accepted, want error containing %q", tc.spec, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestRackTopologyStructure checks the shape and indexes of a two-rack
// fabric: rack/cluster counts, membership queries, and the hop metric that
// separates intra-rack from rack-crossing paths.
func TestRackTopologyStructure(t *testing.T) {
	top, err := FromSpec("rack:2 node:2 pack:1 core:2")
	if err != nil {
		t.Fatal(err)
	}
	if got := top.NumRacks(); got != 2 {
		t.Fatalf("NumRacks = %d, want 2", got)
	}
	if got := top.NumClusterNodes(); got != 4 {
		t.Fatalf("NumClusterNodes = %d, want 4", got)
	}
	if got := top.Spec(); !strings.HasPrefix(got, "rack:2 cluster:2 ") {
		t.Errorf("normalized spec = %q, want rack:2 cluster:2 prefix", got)
	}
	nodes := top.ClusterNodes()
	if !top.SameRack(nodes[0], nodes[1]) {
		t.Error("nodes 0 and 1 should share rack 0")
	}
	if top.SameRack(nodes[1], nodes[2]) {
		t.Error("nodes 1 and 2 are in different racks")
	}
	if r := top.RackOf(nodes[3]); r == nil || r.LevelIndex != 1 {
		t.Errorf("RackOf(node 3) = %v, want Rack#1", r)
	}
	// The tree metric sees the extra switch tier: same-rack nodes are 2 hops
	// apart, rack-crossing pairs 4.
	if got := top.HopDistance(nodes[0], nodes[1]); got != 2 {
		t.Errorf("intra-rack hop distance = %d, want 2", got)
	}
	if got := top.HopDistance(nodes[0], nodes[2]); got != 4 {
		t.Errorf("cross-rack hop distance = %d, want 4", got)
	}
	if err := top.CheckUltrametric(); err != nil {
		t.Error(err)
	}
}

// TestRackAttrs checks that racks carry the uplink attributes and cluster
// nodes the NIC attributes, with Defaults overridable.
func TestRackAttrs(t *testing.T) {
	def := DefaultAttrs()
	def.UplinkLatencyCycles = 12345
	def.UplinkBandwidth = 3e9
	top, err := FromSpecAttrs("rack:2 node:2 core:4", def)
	if err != nil {
		t.Fatal(err)
	}
	r := top.Racks()[0]
	if r.Attr.LatencyCycles != 12345 || r.Attr.BandwidthBytesPerSec != 3e9 {
		t.Errorf("rack attrs = %+v, want uplink defaults", r.Attr)
	}
	c := top.ClusterNodes()[0]
	if c.Attr.LatencyCycles != def.NetLatencyCycles || c.Attr.BandwidthBytesPerSec != def.NetBandwidth {
		t.Errorf("cluster attrs = %+v, want NIC defaults", c.Attr)
	}
	// Render names both tiers with their link attributes.
	out := top.Render()
	for _, want := range []string{"Rack#0 (uplink", "Cluster#0 (link"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// TestSingleMachineHasNoRacks pins the degenerate accessors.
func TestSingleMachineHasNoRacks(t *testing.T) {
	top := PaperMachine()
	if top.NumRacks() != 0 || top.Racks() == nil && len(top.Racks()) != 0 {
		t.Errorf("single machine reports %d racks", top.NumRacks())
	}
	if top.RackOf(top.PU(0)) != nil {
		t.Error("RackOf on a single machine should be nil")
	}
	if !top.SameRack(top.PU(0), top.PU(1)) {
		t.Error("SameRack must hold on a rackless topology")
	}
}
