// Command sched replays a multi-tenant job stream through the online
// topology-aware scheduler and reports every job's fate: wait, placement
// domain, service cycles, plus the run's aggregate cycle time, makespan,
// utilization and fragmentation (see docs/SCHEDULER.md).
//
//	sched                                           # seeded stream, defaults
//	sched -platform "pod:2 rack:2 node:2 pack:2 core:4 pu:1"
//	sched -jobs 60 -seed 42 -churn 8                # heavier synthetic load
//	sched -workload jobs.txt                        # replay a workload file
//	sched -policy topo-blind -fit worst -queue reject
//	sched -backfill -preempt -defrag -priorities 3  # the phase-2 policy stack
//
// A workload file holds one job per line in the grammar of
// sched.ParseJobSpec ("#" starts a comment):
//
//	job etl arrive=0 work=2e6 tasks=8 pattern=stencil:4x2 vol=65536 prio=2 required=rack preferred=node
//
// Without -workload, a stream is generated from the seeded workload model
// (-jobs, -seed, -churn, -constraints, -preferred, -required, plus
// -priorities and -long-fraction for the phase-2 mix); the same generator
// drives the A15 and A16 ablations, so a CLI run reproduces any ablation
// cell exactly. The phase-2 policies are opt-in: -backfill enables
// conservative backfill, -preempt priority preemption, and -defrag
// migration-based defragmentation gated at -defrag-threshold.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/numasim"
	"repro/internal/sched"
)

func main() {
	var (
		platform    = flag.String("platform", "rack:2 node:4 pack:2 core:4 pu:1", "platform topology spec")
		workload    = flag.String("workload", "", "workload file to replay (one job per line; empty = generate a seeded stream)")
		jobs        = flag.Int("jobs", 40, "generated stream length (ignored with -workload)")
		seed        = flag.Int64("seed", 7, "generated stream seed (ignored with -workload)")
		churn       = flag.Float64("churn", 4, "generated arrival-rate churn factor (ignored with -workload)")
		constraints = flag.Float64("constraints", 0.3, "fraction of generated jobs carrying topology constraints (ignored with -workload)")
		preferred   = flag.String("preferred", "node", "preferred tier of constrained generated jobs")
		required    = flag.String("required", "rack", "required tier of constrained generated jobs")
		policy      = flag.String("policy", "topo-aware", "scheduler policy: topo-aware, topo-blind, first-fit")
		fit         = flag.String("fit", "best", "domain scoring rule: best or worst")
		queue       = flag.String("queue", "wait", "required-tier-full policy: wait or reject")
		backfill    = flag.Bool("backfill", false, "conservative backfill: dispatch small jobs past a blocked head inside its earliest-start window")
		preempt     = flag.Bool("preempt", false, "priority preemption: checkpoint-and-requeue lower-priority jobs for a blocked required-constrained head")
		defrag      = flag.Bool("defrag", false, "defragmentation: migrate one running job to compact a domain when the priced gain beats the bill")
		defragThr   = flag.Float64("defrag-threshold", 0, "fragmentation weight in [0,1] arming -defrag (0 = always armed)")
		priorities  = flag.Int("priorities", 0, "priority-class count of generated constrained jobs (0 or 1 = all priority 0; ignored with -workload)")
		longFrac    = flag.Float64("long-fraction", 0, "fraction of generated jobs with 8x work (heavy tail; ignored with -workload)")
	)
	flag.Parse()

	opts, err := buildOptions(*policy, *fit, *queue, *backfill, *preempt, *defrag, *defragThr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sched: %v\n", err)
		os.Exit(1)
	}
	stream, err := buildStream(*jobs, *seed, *churn, *constraints, *preferred, *required, *priorities, *longFrac)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sched: %v\n", err)
		os.Exit(1)
	}
	if err := run(os.Stdout, *platform, *workload, stream, opts); err != nil {
		fmt.Fprintf(os.Stderr, "sched: %v\n", err)
		os.Exit(1)
	}
}

// buildOptions validates the policy flags into scheduler options.
func buildOptions(policy, fit, queue string, backfill, preempt, defrag bool, defragThr float64) (sched.Options, error) {
	var opts sched.Options
	var err error
	if opts.Policy, err = sched.ParsePolicy(policy); err != nil {
		return sched.Options{}, fmt.Errorf("-policy: %v", err)
	}
	if opts.Fit, err = sched.ParseFit(fit); err != nil {
		return sched.Options{}, fmt.Errorf("-fit: %v", err)
	}
	if opts.Queue, err = sched.ParseQueuePolicy(queue); err != nil {
		return sched.Options{}, fmt.Errorf("-queue: %v", err)
	}
	if defragThr < 0 || defragThr > 1 {
		return sched.Options{}, fmt.Errorf("-defrag-threshold: weight %v outside [0,1]", defragThr)
	}
	opts.Backfill = backfill
	opts.Preempt = preempt
	opts.Defrag = defrag
	opts.DefragThreshold = defragThr
	return opts, nil
}

// buildStream validates the generator flags into a stream configuration.
// The configuration is only consulted when no -workload file is given.
func buildStream(jobs int, seed int64, churn, constraints float64, preferred, required string, priorities int, longFrac float64) (sched.StreamConfig, error) {
	cfg := sched.StreamConfig{
		Jobs:               jobs,
		Seed:               seed,
		Churn:              churn,
		ConstraintFraction: constraints,
		PreferredTier:      preferred,
		RequiredTier:       required,
		PriorityClasses:    priorities,
		LongFraction:       longFrac,
	}
	if err := cfg.Validate(); err != nil {
		return sched.StreamConfig{}, err
	}
	return cfg, nil
}

// loadJobs reads the workload: the named file when set, else a stream from
// the seeded generator.
func loadJobs(workload string, stream sched.StreamConfig) ([]sched.JobSpec, error) {
	if workload == "" {
		return sched.GenerateStream(stream)
	}
	f, err := os.Open(workload)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	jobs, err := sched.ParseWorkload(f)
	if err != nil {
		return nil, fmt.Errorf("-workload %s: %v", workload, err)
	}
	return jobs, nil
}

// run is the whole command behind the flag parsing, separated so tests can
// drive it: build the platform, obtain the job stream, replay it through
// the scheduler and render the per-job report.
func run(w io.Writer, platform, workload string, stream sched.StreamConfig, opts sched.Options) error {
	jobs, err := loadJobs(workload, stream)
	if err != nil {
		return err
	}
	plat, err := numasim.NewPlatform(platform, numasim.Config{})
	if err != nil {
		return err
	}
	mach := plat.Machine()
	s, err := sched.New(mach, opts)
	if err != nil {
		return err
	}
	rep, err := s.Run(jobs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, sched.FormatReport(rep, mach))
	return nil
}
