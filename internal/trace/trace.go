// Package trace records the lock-transition events of an ORWL run and
// renders them for analysis: per-task summaries, a virtual-time Gantt
// profile, and Chrome trace_event JSON (load chrome://tracing or Perfetto)
// with one row per task and one slice per critical section.
//
// Attach a Recorder to a runtime before Run:
//
//	rec := trace.NewRecorder()
//	rt := orwl.NewRuntime(orwl.Options{Machine: m, Trace: rec.Hook()})
//	...
//	rec.WriteChromeTrace(f, m.ClockHz())
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/orwl"
)

// Event is one recorded lock transition.
type Event struct {
	Task     string
	Location string
	Op       string // "acquire" or "release"
	Clock    float64
	Seq      int // global arrival order
}

// Recorder collects ORWL trace events; safe for concurrent use by all task
// goroutines.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Hook returns the callback to install as orwl.Options.Trace.
func (r *Recorder) Hook() func(orwl.TraceEvent) {
	return func(e orwl.TraceEvent) {
		r.mu.Lock()
		r.events = append(r.events, Event{
			Task:     e.Task.Name(),
			Location: e.Location.Name(),
			Op:       e.Op,
			Clock:    e.Clock,
			Seq:      len(r.events),
		})
		r.mu.Unlock()
	}
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// TaskSummary aggregates the events of one task.
type TaskSummary struct {
	Task       string
	Acquires   int
	Releases   int
	FirstClock float64
	LastClock  float64
}

// Summaries aggregates the recorded events per task, sorted by task name.
func (r *Recorder) Summaries() []TaskSummary {
	byTask := map[string]*TaskSummary{}
	for _, e := range r.Events() {
		s := byTask[e.Task]
		if s == nil {
			s = &TaskSummary{Task: e.Task, FirstClock: e.Clock}
			byTask[e.Task] = s
		}
		switch e.Op {
		case "acquire":
			s.Acquires++
		case "release":
			s.Releases++
		}
		if e.Clock < s.FirstClock {
			s.FirstClock = e.Clock
		}
		if e.Clock > s.LastClock {
			s.LastClock = e.Clock
		}
	}
	out := make([]TaskSummary, 0, len(byTask))
	for _, s := range byTask {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// CriticalSection is a held interval of one location by one task, in
// virtual cycles.
type CriticalSection struct {
	Task     string
	Location string
	Start    float64
	End      float64
}

// CriticalSections pairs acquire/release events per (task, location) into
// held intervals, in start order. Unmatched acquires (a crashed task) yield
// zero-length sections at the acquire clock.
func (r *Recorder) CriticalSections() []CriticalSection {
	type key struct{ task, loc string }
	open := map[key]float64{}
	var out []CriticalSection
	for _, e := range r.Events() {
		k := key{e.Task, e.Location}
		switch e.Op {
		case "acquire":
			open[k] = e.Clock
		case "release":
			if start, ok := open[k]; ok {
				out = append(out, CriticalSection{e.Task, e.Location, start, e.Clock})
				delete(open, k)
			}
		}
	}
	for k, start := range open {
		out = append(out, CriticalSection{k.task, k.loc, start, start})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Task < out[j].Task
	})
	return out
}

// WriteChromeTrace emits the recorded critical sections as Chrome
// trace_event JSON ("X" complete events, microsecond timestamps derived
// from the virtual clock at the given frequency). Each task is one thread
// row.
func (r *Recorder) WriteChromeTrace(w io.Writer, clockHz float64) error {
	if clockHz <= 0 {
		clockHz = 1e6 // raw cycles as microseconds
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	tids := map[string]int{}
	tid := func(task string) int {
		if id, ok := tids[task]; ok {
			return id
		}
		id := len(tids) + 1
		tids[task] = id
		return id
	}
	first := true
	for _, cs := range r.CriticalSections() {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		us := func(cycles float64) float64 { return cycles / clockHz * 1e6 }
		_, err := fmt.Fprintf(bw,
			`  {"name": %q, "cat": "orwl", "ph": "X", "ts": %.3f, "dur": %.3f, "pid": 1, "tid": %d}`,
			cs.Location, us(cs.Start), us(cs.End-cs.Start), tid(cs.Task))
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// FormatSummaries renders the per-task table.
func FormatSummaries(sums []TaskSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %14s\n", "task", "acquires", "releases", "last clock")
	for _, s := range sums {
		fmt.Fprintf(&b, "%-16s %9d %9d %14.0f\n", s.Task, s.Acquires, s.Releases, s.LastClock)
	}
	return b.String()
}
