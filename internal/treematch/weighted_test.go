package treematch

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/topology"
)

// TestPartitionAcrossQuadrants pins the ROADMAP "quadrant partitions on
// lattices" item: on the 8×8 unit stencil the optimal 4-way partition is
// the four 4×4 quadrants, keeping intra volume 192 of 224 (cutting 16
// edges). Greedy seeding snakes into slabs (176), KL cannot cross the
// energy barrier, and coarsening stops at a center-block optimum (180); the
// spectral-bisection candidate must reach the quadrant cut.
func TestPartitionAcrossQuadrants(t *testing.T) {
	m := comm.Stencil2D(8, 8, 1, 0)
	groups, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	intra := intraVolume(m, groups)
	if intra < 192 {
		t.Fatalf("4-way partition of the 8x8 stencil keeps intra volume %.0f, want 192 (the quadrant cut)", intra)
	}
	for gi, g := range groups {
		if len(g) != 16 {
			t.Errorf("group %d has %d members, want 16", gi, len(g))
		}
	}
}

func TestWeightedSizes(t *testing.T) {
	for _, tc := range []struct {
		p    int
		caps []int
		want []int
	}{
		{48, []int{8, 4, 8, 4, 8, 4, 8, 4}, []int{8, 4, 8, 4, 8, 4, 8, 4}},
		{12, []int{8, 4}, []int{8, 4}},
		{10, []int{8, 4}, []int{7, 3}},
		{5, []int{2, 2}, []int{3, 2}}, // remainder to the lower index on ties
		{3, []int{1, 1, 4}, []int{1, 0, 2}},
	} {
		got := weightedSizes(tc.p, tc.caps)
		if len(got) != len(tc.want) {
			t.Fatalf("weightedSizes(%d, %v) = %v", tc.p, tc.caps, got)
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != tc.want[i] {
				t.Errorf("weightedSizes(%d, %v) = %v, want %v", tc.p, tc.caps, got, tc.want)
				break
			}
		}
		if sum != tc.p {
			t.Errorf("weightedSizes(%d, %v) sums to %d", tc.p, tc.caps, sum)
		}
	}
}

func TestPartitionAcrossWeighted(t *testing.T) {
	// 12 tasks in two cliques of 8 and 4 on capacities 8 and 4: the weighted
	// partition must recover the cliques exactly (cut 0).
	m := comm.New(12)
	clique := func(ids []int) {
		for _, i := range ids {
			for _, j := range ids {
				if i != j {
					m.Set(i, j, 10)
				}
			}
		}
	}
	big := []int{0, 1, 2, 3, 4, 5, 6, 7}
	small := []int{8, 9, 10, 11}
	clique(big)
	clique(small)
	m.AddSym(0, 8, 1) // light bridge so the graph is connected

	groups, err := PartitionAcrossWeighted(m, []int{8, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups[0]) != 8 || len(groups[1]) != 4 {
		t.Fatalf("group sizes %d/%d, want 8/4", len(groups[0]), len(groups[1]))
	}
	for _, e := range groups[0] {
		if e >= 8 {
			t.Fatalf("entity %d of the small clique landed in the big group: %v", e, groups)
		}
	}
	// Positional capacities: swapping the capacity order must swap the
	// group contents.
	swapped, err := PartitionAcrossWeighted(m, []int{4, 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(swapped[0]) != 4 || len(swapped[1]) != 8 {
		t.Fatalf("swapped capacities gave sizes %d/%d, want 4/8", len(swapped[0]), len(swapped[1]))
	}
}

func TestPartitionAcrossWeightedEqualMatchesUnweighted(t *testing.T) {
	m := comm.Stencil2D(8, 4, 1000, 0)
	w, err := PartitionAcrossWeighted(m, []int{6, 6, 6, 6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != len(u) {
		t.Fatalf("group counts differ: %d vs %d", len(w), len(u))
	}
	for g := range w {
		if len(w[g]) != len(u[g]) {
			t.Fatalf("equal-capacity weighted partition differs from PartitionAcross: %v vs %v", w, u)
		}
		for i := range w[g] {
			if w[g][i] != u[g][i] {
				t.Fatalf("equal-capacity weighted partition differs from PartitionAcross: %v vs %v", w, u)
			}
		}
	}
}

func TestPartitionAcrossWeightedErrors(t *testing.T) {
	if _, err := PartitionAcrossWeighted(comm.New(4), nil, Options{}); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := PartitionAcrossWeighted(comm.New(4), []int{2, 0}, Options{}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestNodeSubtrees(t *testing.T) {
	// Heterogeneous platform: one 2x8 node and one 1x4 node.
	ps, err := topology.ParsePlatform("node:{pack:2 core:8 | pack:1 core:4}")
	if err != nil {
		t.Fatal(err)
	}
	fused, err := ps.FusedSpec()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.FromSpec(fused)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := NodeSubtrees(topo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("%d node subtrees, want 2", len(trees))
	}
	if trees[0].Leaves() != 16 || trees[1].Leaves() != 4 {
		t.Errorf("subtree leaves %d/%d, want 16/4", trees[0].Leaves(), trees[1].Leaves())
	}
	// Homogeneous clusters still yield identical trees, matching NodeSubtree.
	homTopo, err := topology.FromSpec("node:4 pack:2 core:8")
	if err != nil {
		t.Fatal(err)
	}
	hom, err := NodeSubtrees(homTopo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NodeSubtree(homTopo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if len(hom) != 4 {
		t.Fatalf("%d subtrees, want 4", len(hom))
	}
	for i, tr := range hom {
		if tr.Leaves() != single.Leaves() || tr.Depth() != single.Depth() {
			t.Errorf("subtree %d = %v, want %v", i, tr, single)
		}
	}
	// A single machine is its own single node.
	oneTopo, err := topology.FromSpec("pack:2 core:4")
	if err != nil {
		t.Fatal(err)
	}
	one, err := NodeSubtrees(oneTopo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Leaves() != 8 {
		t.Fatalf("single machine subtrees = %v", one)
	}
	// A node whose own subtree is uneven is still rejected.
	unevenTopo, err := topology.FromSpec("node:2 pack:2 core:4,4,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NodeSubtrees(unevenTopo, topology.Core); err == nil {
		t.Error("uneven per-node subtree accepted")
	}
}

func TestAssignClassed(t *testing.T) {
	// Fabric tree [2 2 2]: 8 leaves (pods of 2 racks of 2 nodes). Leaf
	// classes alternate big/small per rack; entity pairs (0,5), (1,4),
	// (2,7), (3,6) exchange heavy volume and must land rack-adjacent, which
	// the identity assignment does not deliver.
	tree, err := NewTree([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	m := comm.New(8)
	for _, pr := range [][2]int{{0, 5}, {1, 4}, {2, 7}, {3, 6}} {
		m.AddSym(pr[0], pr[1], 100)
	}
	entityClass := []int{0, 1, 0, 1, 0, 1, 0, 1} // group sizes 8,4,8,4,...
	leafClass := []int{0, 1, 0, 1, 0, 1, 0, 1}
	a, err := AssignClassed(tree, m, entityClass, leafClass)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 8)
	for g, leaf := range a {
		if leafClass[leaf] != entityClass[g] {
			t.Errorf("group %d (class %d) on leaf %d (class %d)", g, entityClass[g], leaf, leafClass[leaf])
		}
		if seen[leaf] {
			t.Fatalf("leaf %d assigned twice", leaf)
		}
		seen[leaf] = true
	}
	// Every heavy pair must share a rack: distance 2 on the [2 2 2] tree.
	for _, pr := range [][2]int{{0, 5}, {1, 4}, {2, 7}, {3, 6}} {
		if d := tree.LeafDistance(a[pr[0]], a[pr[1]]); d != 2 {
			t.Errorf("pair %v at distance %d, want 2 (same rack); assignment %v", pr, d, a)
		}
	}
	// Mismatched class multisets are rejected.
	if _, err := AssignClassed(tree, m, []int{0, 0, 0, 0, 0, 0, 0, 0}, leafClass); err == nil {
		t.Error("mismatched class multisets accepted")
	}
}
