package placement

import (
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
)

// Property-based placement invariants for the datacenter-scale path: every
// task is placed exactly once on a real PU of the platform, no node receives
// more than its capacity-proportional share, and neither the storage mode of
// the matrix nor the worker-pool width changes the assignment.

// placementCases pairs platforms with task matrices, spanning flat and
// racked fabrics, homogeneous and heterogeneous nodes, dense and sparse
// inputs, with and without oversubscription.
func placementCases(t *testing.T) []struct {
	name  string
	spec  string
	m     *comm.Matrix
	nodes int
	caps  []int
} {
	t.Helper()
	return []struct {
		name  string
		spec  string
		m     *comm.Matrix
		nodes int
		caps  []int
	}{
		{"flat4-stencil", "cluster:4 pack:1 core:4", comm.Stencil2D(4, 4, 64, 8), 4, []int{4, 4, 4, 4}},
		{"flat4-oversub", "cluster:4 pack:1 core:2", comm.Stencil2D(6, 6, 64, 8), 4, []int{2, 2, 2, 2}},
		{"rack2-stencil", "rack:2 node:2 pack:1 core:4", comm.Stencil2D(4, 4, 64, 8), 4, []int{4, 4, 4, 4}},
		{"hetero-random", "node:{pack:1 core:4 | pack:1 core:2 | pack:1 core:4 | pack:1 core:2}",
			comm.Random(24, 0.2, 100, 5), 4, []int{4, 2, 4, 2}},
		{"flat8-sparse-big", "cluster:8 pack:1 core:4", comm.Stencil2DSparse(16, 16, 64, 8), 8,
			[]int{4, 4, 4, 4, 4, 4, 4, 4}},
	}
}

func TestHierarchicalPlacementInvariants(t *testing.T) {
	for _, tc := range placementCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			plat, err := numasim.NewPlatform(tc.spec, numasim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			mach := plat.Machine()
			topo := mach.Topology()
			a, err := Hierarchical{}.Assign(mach, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			p := tc.m.Order()
			if len(a.TaskPU) != p {
				t.Fatalf("placed %d tasks, want %d", len(a.TaskPU), p)
			}
			// Exactly once on a real PU: TaskPU has one entry per task and
			// every entry names an in-range PU.
			perNode := make([]int, tc.nodes)
			for task, pu := range a.TaskPU {
				if pu < 0 || pu >= topo.NumPUs() {
					t.Fatalf("task %d on PU %d, out of range [0,%d)", task, pu, topo.NumPUs())
				}
				obj := topo.PUs()[pu]
				node := topo.ClusterNodeOf(obj)
				if node == nil {
					t.Fatalf("task %d: PU %d has no cluster node", task, pu)
				}
				perNode[node.LevelIndex]++
			}
			// Capacity: each node's task count stays within its
			// capacity-proportional share (largest-remainder apportionment
			// rounds up by at most one).
			total := 0
			for _, c := range tc.caps {
				total += c
			}
			for n, got := range perNode {
				share := p*tc.caps[n]/total + 1
				if got > share {
					t.Errorf("node %d holds %d tasks, capacity share is %d", n, got, share)
				}
			}
		})
	}
}

func TestHierarchicalSparseDenseAssignmentsEqual(t *testing.T) {
	for _, tc := range placementCases(t) {
		if tc.m.IsSparse() || tc.m.Order() > 256 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			plat, err := numasim.NewPlatform(tc.spec, numasim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			dense, err := Hierarchical{}.Assign(plat.Machine(), tc.m)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := Hierarchical{}.Assign(plat.Machine(), tc.m.ToSparse())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dense, sparse) {
				t.Errorf("sparse-matrix assignment differs from dense")
			}
		})
	}
}

func TestHierarchicalWorkerCountInvariant(t *testing.T) {
	for _, tc := range placementCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			plat, err := numasim.NewPlatform(tc.spec, numasim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Hierarchical{Workers: 1}.Assign(plat.Machine(), tc.m)
			if err != nil {
				t.Fatal(err)
			}
			par, err := Hierarchical{Workers: 8}.Assign(plat.Machine(), tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("assignment depends on worker count")
			}
		})
	}
}
