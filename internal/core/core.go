// Package core ties the pieces of the reproduction together into the
// workflow a user of the paper's system follows: build a (simulated)
// machine, write an ORWL program against it, let the topology-aware
// placement module bind every thread, and run.
//
// It is a thin orchestration layer over internal/topology (the HWLOC role),
// internal/numasim (the machine), internal/orwl (the programming model) and
// internal/placement (the paper's contribution); the examples and the
// public facade build on it.
package core

import (
	"fmt"
	"strings"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
	"repro/internal/topology"
)

// System is one simulated machine with one ORWL program under construction.
type System struct {
	mach *numasim.Machine
	rt   *orwl.Runtime

	policy     placement.Policy
	assignment *placement.Assignment
	ran        bool
}

// Options configures a System.
type Options struct {
	// TopologySpec describes the machine (see internal/topology); default
	// is the paper's 24×8 SMP.
	TopologySpec string
	// Policy is the placement policy applied by Run; default TreeMatch
	// (the paper's module). Use placement.NoBind{} to reproduce the
	// unbound configuration.
	Policy placement.Policy
	// Seed drives the simulated OS scheduler for unbound threads.
	Seed int64
	// Trace receives lock-transition events (see internal/trace).
	Trace func(orwl.TraceEvent)
}

// NewSystem builds a simulated machine and an empty runtime on it.
func NewSystem(opts Options) (*System, error) {
	spec := opts.TopologySpec
	if spec == "" {
		spec = "pack:24 l3:1 core:8 pu:1"
	}
	topo, err := topology.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	mach, err := numasim.New(topo, numasim.Config{})
	if err != nil {
		return nil, err
	}
	pol := opts.Policy
	if pol == nil {
		pol = placement.TreeMatch{}
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: opts.Seed, Trace: opts.Trace})
	return &System{mach: mach, rt: rt, policy: pol}, nil
}

// Machine returns the simulated machine.
func (s *System) Machine() *numasim.Machine { return s.mach }

// Runtime returns the ORWL runtime; build the program (locations, tasks,
// handles) against it before calling Run.
func (s *System) Runtime() *orwl.Runtime { return s.rt }

// Run places the program with the system's policy (extracting the affinity
// matrix from the runtime, exactly the paper's pipeline), derives the
// static contention model, and executes the program. heavy marks the tasks
// with a dominant per-iteration working set (nil: all of them).
func (s *System) Run(heavy []bool) error {
	if s.ran {
		return fmt.Errorf("core: Run called twice")
	}
	s.ran = true
	a, err := placement.Place(s.rt, s.policy)
	if err != nil {
		return err
	}
	s.assignment = a
	placement.SetContention(s.mach, a, heavy)
	return s.rt.Run()
}

// Assignment returns the placement computed by Run (nil before Run).
func (s *System) Assignment() *placement.Assignment { return s.assignment }

// Seconds returns the simulated execution time of the program.
func (s *System) Seconds() float64 { return s.rt.MakespanSeconds() }

// Report renders a human-readable run summary.
func (s *System) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine:  %s\n", s.mach.Topology())
	if s.assignment != nil {
		fmt.Fprintf(&b, "policy:   %s (control threads: %s", s.assignment.Policy, s.assignment.Strategy)
		if s.assignment.VirtualArity > 1 {
			fmt.Fprintf(&b, ", oversubscribed x%d", s.assignment.VirtualArity)
		}
		fmt.Fprintf(&b, ")\n")
	}
	fmt.Fprintf(&b, "tasks:    %d over %d locations\n", len(s.rt.Tasks()), len(s.rt.Locations()))
	fmt.Fprintf(&b, "simulated time: %.4fs (wall %.3fs)\n", s.Seconds(), s.rt.WallTime().Seconds())
	return b.String()
}
