package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/orwl"
)

// miniShift builds a minimal rack-crossing phase shift for engine-level
// tests: 4 blocks of 2 tasks on a 2-rack × 2-node cluster (one block per
// node). Tasks exchange a heavy halo inside their block; slot-0 tasks
// additionally exchange pairBytes with the adjacent block (b^1) before the
// shift and with the diametric block (b+2)%4 after it (the quiet partner's
// volume is 0, so it contributes no stream). The initial fabric matching
// co-racks the adjacent pairs, so the post-shift pairs cross the racks
// until the engine swaps blocks across the uplinks.
func miniShift(rt *orwl.Runtime, iters, shiftAt int, haloBytes, pairBytes float64) {
	const blocks, c = 4, 2
	var locs [blocks * c]*orwl.Location
	for i := range locs {
		locs[i] = rt.NewLocation("blk", 1<<20)
	}
	for b := 0; b < blocks; b++ {
		for s := 0; s < c; s++ {
			i := b*c + s
			task := rt.AddTask("t", nil)
			halo := task.NewHandleVol(locs[b*c+(s+1)%c], orwl.Read, haloBytes, 0)
			var p1, p2 *orwl.Handle
			if s == 0 {
				p1 = task.NewHandleVol(locs[(b^1)*c], orwl.Read, pairBytes, 0)
				p2 = task.NewHandleVol(locs[((b+2)%blocks)*c], orwl.Read, 0, 0)
			}
			w := task.NewHandleVol(locs[i], orwl.Write, haloBytes, 1)
			task.SetFunc(func(tk *orwl.Task) error {
				for it := 0; it < iters; it++ {
					if it == shiftAt && p1 != nil {
						p1.SetVolume(0)
						p2.SetVolume(pairBytes)
					}
					last := it == iters-1
					hs := []*orwl.Handle{halo, w}
					if p1 != nil {
						hs = []*orwl.Handle{halo, p1, p2, w}
					}
					for _, h := range hs {
						if err := h.Acquire(); err != nil {
							return err
						}
						var err error
						if last {
							err = h.Release()
						} else {
							err = h.ReleaseAndRequest()
						}
						if err != nil {
							return err
						}
					}
					tk.EndIteration()
				}
				return nil
			})
		}
	}
}

// TestAdaptiveFabricMoveAccounting pins the engine's platform accounting:
// recovering from a rack-crossing shift commits cross-node moves (a subset
// cross-rack), the intra/cross split is consistent with the total, and the
// modeled migration bill prices more than the bare per-move penalty —
// the working-set pull over the fabric is charged on top, in network
// cycles (see TestMigrationCostNetworkPriced for the per-move pricing).
func TestAdaptiveFabricMoveAccounting(t *testing.T) {
	mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	miniShift(rt, 16, 4, 1<<20, 1<<22)
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{Base: Hierarchical{}, EpochIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Applied < 1 {
		t.Fatalf("engine never applied a re-placement (stats %+v)", st)
	}
	if st.CrossNodeRebinds == 0 || st.CrossRackRebinds == 0 {
		t.Errorf("recovery committed no cross-fabric moves (stats %+v)", st)
	}
	if st.IntraNodeRebinds+st.CrossNodeRebinds != st.Rebinds {
		t.Errorf("intra %d + cross %d != rebinds %d", st.IntraNodeRebinds, st.CrossNodeRebinds, st.Rebinds)
	}
	if st.CrossRackRebinds > st.CrossNodeRebinds {
		t.Errorf("cross-rack %d exceeds cross-node %d", st.CrossRackRebinds, st.CrossNodeRebinds)
	}
	floor := float64(st.Rebinds) * mach.Config().MigrationPenaltyCycles
	if st.MigrationCostCycles <= floor {
		t.Errorf("migration bill %.0f cycles not above the bare penalty floor %.0f; the fabric pull went unpriced",
			st.MigrationCostCycles, floor)
	}
}

// TestAdaptiveRefreshesFabricContention pins that a committed re-placement
// re-derives the per-link fabric contention: the test never declares link
// streams itself, so any per-link count in force after the run was put
// there by the engine's post-apply refresh.
func TestAdaptiveRefreshesFabricContention(t *testing.T) {
	mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	miniShift(rt, 16, 4, 1<<20, 1<<22)
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{Base: Hierarchical{}, EpochIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Applied < 1 {
		t.Fatalf("engine never applied (stats %+v); the refresh path was not exercised", eng.Stats())
	}
	total := 0
	for c := 0; c < 4; c++ {
		total += mach.NICStreams(c)
	}
	if total == 0 {
		t.Errorf("no per-link NIC streams declared after the run; the engine did not refresh the contention model")
	}
}

// TestAdaptiveSingleMachineStatsUnchanged pins that the new move
// classification stays trivial on a single machine: every committed move is
// intra-node, and no cross-fabric counters fire.
func TestAdaptiveSingleMachineStatsUnchanged(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:4 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	adaptiveRing(rt, 8, 12, 1<<20)
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{EpochIters: 3, FreeMigration: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CrossNodeRebinds != 0 || st.CrossRackRebinds != 0 {
		t.Errorf("single-machine run counted cross-fabric moves: %+v", st)
	}
	if st.IntraNodeRebinds != st.Rebinds {
		t.Errorf("intra-node count %d != rebinds %d on a single machine", st.IntraNodeRebinds, st.Rebinds)
	}
}

// unboundFirst wraps a policy and releases task 0 to the OS scheduler: the
// smallest base that hands the adaptive engine a current mapping with an
// unbound slot.
type unboundFirst struct{ Policy }

func (p unboundFirst) Name() string { return "unbound-first(" + p.Policy.Name() + ")" }

func (p unboundFirst) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	a, err := p.Policy.Assign(mach, m)
	if err != nil {
		return nil, err
	}
	if len(a.TaskPU) > 0 {
		a.TaskPU[0] = -1
	}
	return a, nil
}

// TestAdaptiveUnboundBaseOnCluster is the regression test for the move
// classification when a committed move starts from an unbound slot (no
// previous PU): it must classify as leaving cluster node 0 — the same
// convention MigrationCostCycles prices — instead of indexing the PU table
// with -1. The base scatters tasks across the fabric with task 0 unbound,
// so the first hierarchical candidate wins by a wide margin and the apply
// path runs over the from == -1 slot.
func TestAdaptiveUnboundBaseOnCluster(t *testing.T) {
	mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	miniShift(rt, 8, 4, 1<<20, 1<<22)
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{
		Base: unboundFirst{Scatter{}}, Candidate: Hierarchical{}, EpochIters: 2, FreeMigration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Applied == 0 || st.Rebinds == 0 {
		t.Fatalf("engine never re-placed the scattered tasks (stats %+v); the unbound slot went unexercised", st)
	}
	if st.IntraNodeRebinds+st.CrossNodeRebinds != st.Rebinds {
		t.Errorf("intra %d + cross %d != rebinds %d", st.IntraNodeRebinds, st.CrossNodeRebinds, st.Rebinds)
	}
	if pu := rt.Tasks()[0].Proc().PU(); pu < 0 {
		t.Errorf("task 0 still unbound after the applied re-placement")
	}
}

// TestAdaptiveUnbindingCandidateDoesNotPanic pins the hysteresis pricing
// against a candidate policy that leaves tasks unbound: an unbound slot is
// never applied, so it must not be priced either (pricing it would index
// the machine's PU tables with -1). The engine simply commits no moves.
func TestAdaptiveUnbindingCandidateDoesNotPanic(t *testing.T) {
	mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	miniShift(rt, 8, 4, 1<<20, 1<<22)
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{
		Base: Hierarchical{}, Candidate: NoBind{}, EpochIters: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Rebinds != 0 {
		t.Errorf("unbinding candidate committed %d rebinds, want none (stats %+v)", st.Rebinds, st)
	}
}
