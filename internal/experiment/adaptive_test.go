package experiment

import (
	"testing"

	"repro/internal/placement"
)

func phaseCfg() PhaseShiftConfig {
	return PhaseShiftConfig{Cores: 48, Seed: 7}
}

// TestPhaseShiftAdaptiveBeatsStatic is the acceptance criterion of the
// adaptive engine: on a workload whose communication pattern rotates
// mid-run, epoch-based re-placement must beat the one-shot static pipeline,
// and the free-migration oracle bounds it from below.
func TestPhaseShiftAdaptiveBeatsStatic(t *testing.T) {
	static, err := RunPhaseShift("static", phaseCfg())
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunPhaseShift("adaptive", phaseCfg())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := RunPhaseShift("oracle", phaseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Seconds >= static.Seconds {
		t.Errorf("adaptive %.4fs not faster than static %.4fs on the phase shift",
			adaptive.Seconds, static.Seconds)
	}
	if oracle.Seconds > adaptive.Seconds {
		t.Errorf("oracle %.4fs slower than adaptive %.4fs; free migration must bound it",
			oracle.Seconds, adaptive.Seconds)
	}
	if adaptive.Stats.Rebinds == 0 {
		t.Errorf("adaptive run moved no tasks; the phase shift went unnoticed (stats %+v)", adaptive.Stats)
	}
	if adaptive.Stats.Applied < 1 {
		t.Errorf("no epoch applied a re-placement (stats %+v)", adaptive.Stats)
	}
}

func TestPhaseShiftDeterministic(t *testing.T) {
	for _, mode := range []string{"static", "adaptive", "oracle"} {
		a, err := RunPhaseShift(mode, phaseCfg())
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunPhaseShift(mode, phaseCfg())
		if err != nil {
			t.Fatal(err)
		}
		if a.Seconds != b.Seconds {
			t.Errorf("%s not deterministic: %v vs %v", mode, a.Seconds, b.Seconds)
		}
		if a.Seconds <= 0 {
			t.Errorf("%s: non-positive makespan %v", mode, a.Seconds)
		}
	}
}

func TestPhaseShiftValidation(t *testing.T) {
	if _, err := RunPhaseShift("nonsense", phaseCfg()); err == nil {
		t.Errorf("unknown mode accepted")
	}
	cfg := phaseCfg()
	cfg.Cores = 7 // odd task count: the opposite pairing is undefined
	cfg.CoresPerSocket = 7
	if _, err := RunPhaseShift("static", cfg); err == nil {
		t.Errorf("odd task count accepted")
	}
}

// TestAdaptiveStationaryNoRegression is the other half of the acceptance
// criterion: on the stationary LK23 workload the engine must hold still
// (hysteresis rejects permutation-equivalent candidates) and the makespan
// must stay within migration noise of the static placement.
func TestAdaptiveStationaryNoRegression(t *testing.T) {
	cfg := Config{Rows: 2048, Cols: 2048, Iters: 10, Cores: 48, Seed: 7}
	static, err := Run(ORWLBind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, stats, err := RunAdaptive(cfg, placement.AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebinds != 0 {
		t.Errorf("stationary workload caused %d rebinds (stats %+v)", stats.Rebinds, stats)
	}
	if adaptive.Seconds > static.Seconds*1.02 {
		t.Errorf("adaptive %.4fs regresses static %.4fs by more than migration noise",
			adaptive.Seconds, static.Seconds)
	}
	// Determinism of the adaptive run.
	again, _, err := RunAdaptive(cfg, placement.AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Seconds != again.Seconds {
		t.Errorf("adaptive stationary run not deterministic: %v vs %v", adaptive.Seconds, again.Seconds)
	}
}

func TestAblationAdaptive(t *testing.T) {
	cfg := Config{Rows: 2048, Cols: 2048, Iters: 10, Cores: 48, Seed: 7}
	rows, err := AblationAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s: non-positive time %v", r.Name, r.Seconds)
		}
		byName[r.Name] = r.Seconds
	}
	for _, name := range []string{"phase/static", "phase/adaptive", "phase/oracle", "lk23/static", "lk23/adaptive"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("ablation misses row %q (got %v)", name, rows)
		}
	}
	if byName["phase/adaptive"] >= byName["phase/static"] {
		t.Errorf("ablation: adaptive %v not faster than static %v on the phase shift",
			byName["phase/adaptive"], byName["phase/static"])
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config (all defaults) rejected: %v", err)
	}
	bad := []Config{
		{Rows: 2},
		{Cols: -1},
		{Iters: -5},
		{Cores: -1},
		{CoresPerSocket: -1},
		{BlocksOverride: -1},
		{OMPSerialFraction: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}
