// Package omp implements an OpenMP-like fork-join runtime: teams of worker
// threads executing parallel-for loops under static, dynamic or guided
// scheduling. It is the baseline the paper compares ORWL against ("OpenMP
// of equivalent abstraction").
//
// The crucial property of this baseline — and the reason it falls behind on
// large NUMA machines (paper Fig. 1) — is that it is affinity-blind: worker
// threads are unbound, so the simulated OS re-places them at every parallel
// region, while the data stays where it was first touched. The runtime can
// also run with bound threads (NewBoundTeam) for ablation studies.
//
// Execution modes mirror the ORWL runtime: with a numasim.Machine attached,
// loops execute in deterministic virtual time (chunks are dispatched to the
// worker with the earliest clock, exactly what a work-stealing runtime
// converges to); without a machine, loops run on real goroutines.
package omp

import (
	"fmt"
	"sync"

	"repro/internal/numasim"
)

// Schedule selects the loop-scheduling policy of ParallelFor.
type Schedule int

const (
	// Static divides the iteration space into equal contiguous ranges, one
	// per thread (chunk == 0), or round-robins fixed-size chunks.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks on demand.
	Dynamic
	// Guided hands out exponentially shrinking chunks (never smaller than
	// the chunk parameter).
	Guided
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Team is a set of worker threads executing parallel regions.
type Team struct {
	mach  *numasim.Machine
	n     int
	procs []*numasim.Proc
	bound bool
	// MigrationProbability applies at every parallel region for unbound
	// teams (default 0.25, the same OS model as ORWL NoBind).
	MigrationProbability float64
	// BarrierCycles is the per-thread cost of the implicit barrier ending
	// each parallel region (default 2000 cycles, a typical centralized
	// OpenMP barrier on a large SMP).
	BarrierCycles float64
}

// NewTeam creates a team of n unbound threads, the plain OpenMP
// configuration of the paper. mach may be nil for real execution.
func NewTeam(mach *numasim.Machine, n int, seed int64) (*Team, error) {
	if n <= 0 {
		return nil, fmt.Errorf("omp: team size %d must be positive", n)
	}
	t := &Team{mach: mach, n: n, MigrationProbability: 0.25, BarrierCycles: 2000}
	if mach != nil {
		for i := 0; i < n; i++ {
			t.procs = append(t.procs, mach.NewUnboundProc(fmt.Sprintf("omp%d", i), seed+int64(i)*104729))
		}
	}
	return t, nil
}

// NewBoundTeam creates a team whose threads are pinned to the given PUs
// (an affinity-aware OpenMP, used by ablations; not the paper's baseline).
func NewBoundTeam(mach *numasim.Machine, pus []int) (*Team, error) {
	if mach == nil {
		return nil, fmt.Errorf("omp: bound team requires a machine")
	}
	if len(pus) == 0 {
		return nil, fmt.Errorf("omp: bound team needs at least one PU")
	}
	t := &Team{mach: mach, n: len(pus), bound: true, BarrierCycles: 2000}
	for i, pu := range pus {
		p, err := mach.NewProc(fmt.Sprintf("omp%d", i), pu)
		if err != nil {
			return nil, err
		}
		t.procs = append(t.procs, p)
	}
	return t, nil
}

// Size returns the number of threads in the team.
func (t *Team) Size() int { return t.n }

// Proc returns thread tid's simulated execution context (nil without a
// machine). Loop bodies use it to charge compute and memory costs.
func (t *Team) Proc(tid int) *numasim.Proc {
	if t.procs == nil {
		return nil
	}
	return t.procs[tid]
}

// Machine returns the attached machine, or nil.
func (t *Team) Machine() *numasim.Machine { return t.mach }

// MakespanCycles returns the maximum virtual clock over the team.
func (t *Team) MakespanCycles() float64 { return numasim.Makespan(t.procs) }

// MakespanSeconds returns the simulated execution time in seconds.
func (t *Team) MakespanSeconds() float64 {
	if t.mach == nil {
		return 0
	}
	return t.mach.CyclesToSeconds(t.MakespanCycles())
}

// Body is a loop body invoked on half-open index ranges [lo, hi) with the
// executing thread's id.
type Body func(lo, hi, tid int)

// chunkList builds the dispatch order of a loop's chunks.
func chunkList(lo, hi, chunk, n int, sched Schedule) [][2]int {
	var chunks [][2]int
	switch sched {
	case Static:
		if chunk <= 0 {
			// One contiguous range per thread.
			total := hi - lo
			for i := 0; i < n; i++ {
				a := lo + i*total/n
				b := lo + (i+1)*total/n
				if a < b {
					chunks = append(chunks, [2]int{a, b})
				}
			}
			return chunks
		}
		fallthrough
	case Dynamic:
		if chunk <= 0 {
			chunk = 1
		}
		for a := lo; a < hi; a += chunk {
			b := a + chunk
			if b > hi {
				b = hi
			}
			chunks = append(chunks, [2]int{a, b})
		}
	case Guided:
		if chunk <= 0 {
			chunk = 1
		}
		remaining := hi - lo
		a := lo
		for remaining > 0 {
			c := remaining / (2 * n)
			if c < chunk {
				c = chunk
			}
			if c > remaining {
				c = remaining
			}
			chunks = append(chunks, [2]int{a, a + c})
			a += c
			remaining -= c
		}
	}
	return chunks
}

// ParallelFor executes body over [lo, hi) with the given schedule, then
// joins at an implicit barrier. With a machine attached the execution is
// virtual-time deterministic: each chunk goes to the thread with the
// earliest clock (ties to the lowest tid), and the barrier advances every
// thread to the region's completion time. Unbound teams hit a scheduling
// point at every region, where the simulated OS may migrate them.
func (t *Team) ParallelFor(lo, hi, chunk int, sched Schedule, body Body) {
	if hi <= lo {
		return
	}
	if t.mach != nil {
		t.virtualFor(lo, hi, chunk, sched, body)
		return
	}
	t.realFor(lo, hi, chunk, sched, body)
}

// virtualFor runs the loop in deterministic virtual time on the caller's
// goroutine.
func (t *Team) virtualFor(lo, hi, chunk int, sched Schedule, body Body) {
	// Region entry is a scheduling point for unbound threads.
	if !t.bound {
		for _, p := range t.procs {
			p.Reschedule(t.MigrationProbability)
		}
	}
	chunks := chunkList(lo, hi, chunk, t.n, sched)
	if sched == Static && chunk <= 0 {
		// chunkList produced exactly one range per thread, in tid order.
		for tid, c := range chunks {
			body(c[0], c[1], tid)
		}
	} else {
		for _, c := range chunks {
			// Earliest-clock dispatch: what dynamic scheduling converges to.
			tid := 0
			best := t.procs[0].Clock()
			for i := 1; i < t.n; i++ {
				if c := t.procs[i].Clock(); c < best {
					best, tid = c, i
				}
			}
			body(c[0], c[1], tid)
		}
	}
	// Implicit barrier: everyone waits for the slowest, then pays the
	// barrier cost.
	join := numasim.Makespan(t.procs)
	for _, p := range t.procs {
		p.AdvanceTo(join)
		p.ComputeCycles(t.BarrierCycles)
	}
}

// realFor runs the loop on real goroutines (no virtual time).
func (t *Team) realFor(lo, hi, chunk int, sched Schedule, body Body) {
	chunks := chunkList(lo, hi, chunk, t.n, sched)
	if sched == Static && chunk <= 0 {
		var wg sync.WaitGroup
		for tid, c := range chunks {
			wg.Add(1)
			go func(tid int, c [2]int) {
				defer wg.Done()
				body(c[0], c[1], tid)
			}(tid, c)
		}
		wg.Wait()
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tid := 0; tid < t.n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(chunks) {
					mu.Unlock()
					return
				}
				c := chunks[next]
				next++
				mu.Unlock()
				body(c[0], c[1], tid)
			}
		}(tid)
	}
	wg.Wait()
}
