package topology

import (
	"strings"
	"testing"
)

func mustSpec(t *testing.T, spec string) *Topology {
	t.Helper()
	top, err := FromSpec(spec)
	if err != nil {
		t.Fatalf("FromSpec(%q): %v", spec, err)
	}
	return top
}

func TestPaperMachineShape(t *testing.T) {
	top := PaperMachine()
	if got := top.NumPUs(); got != 192 {
		t.Errorf("NumPUs = %d, want 192", got)
	}
	if got := top.NumCores(); got != 192 {
		t.Errorf("NumCores = %d, want 192", got)
	}
	if got := top.NumNUMANodes(); got != 24 {
		t.Errorf("NumNUMANodes = %d, want 24", got)
	}
	if got := len(top.Level(top.DepthOf(Package))); got != 24 {
		t.Errorf("packages = %d, want 24", got)
	}
	if top.SMT() {
		t.Errorf("PaperMachine should not have SMT")
	}
	if !PaperMachineSMT().SMT() {
		t.Errorf("PaperMachineSMT should have SMT")
	}
	if got := PaperMachineSMT().NumPUs(); got != 384 {
		t.Errorf("SMT NumPUs = %d, want 384", got)
	}
}

func TestFromSpecNormalization(t *testing.T) {
	tests := []struct {
		spec     string
		wantSpec string
		pus      int
		numa     int
		cores    int
	}{
		{"pack:24 core:8 pu:1", "pack:24 numa:1 core:8 pu:1", 192, 24, 192},
		{"core:4", "numa:1 core:4 pu:1", 4, 1, 4},
		{"pack:2 numa:2 core:4 pu:2", "pack:2 numa:2 core:4 pu:2", 32, 4, 16},
		{"group:2 pack:3 l3:1 core:2", "group:2 pack:3 numa:1 l3:1 core:2 pu:1", 12, 6, 12},
		{"numa:4 l3:2 l2:2 l1:1 core:1 pu:2", "numa:4 l3:2 l2:2 l1:1 core:1 pu:2", 32, 4, 16},
	}
	for _, tc := range tests {
		top := mustSpec(t, tc.spec)
		if top.Spec() != tc.wantSpec {
			t.Errorf("spec %q normalized to %q, want %q", tc.spec, top.Spec(), tc.wantSpec)
		}
		if top.NumPUs() != tc.pus {
			t.Errorf("spec %q: NumPUs = %d, want %d", tc.spec, top.NumPUs(), tc.pus)
		}
		if top.NumNUMANodes() != tc.numa {
			t.Errorf("spec %q: NumNUMANodes = %d, want %d", tc.spec, top.NumNUMANodes(), tc.numa)
		}
		if top.NumCores() != tc.cores {
			t.Errorf("spec %q: NumCores = %d, want %d", tc.spec, top.NumCores(), tc.cores)
		}
		if err := top.Validate(); err != nil {
			t.Errorf("spec %q: Validate: %v", tc.spec, err)
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"pack",
		"pack:0",
		"pack:-3",
		"pack:x",
		"bogus:4",
		"machine:1 pack:2",
		"core:2 pack:2", // wrong order
		"pack:2 pack:3", // duplicate
		"pu:2 core:2",   // wrong order
		"l1:2 l3:2",     // wrong order
	}
	for _, spec := range bad {
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("FromSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestDepthAndArities(t *testing.T) {
	top := mustSpec(t, "pack:2 numa:2 core:4 pu:2")
	// machine, pack, numa, core, pu
	if got := top.Depth(); got != 5 {
		t.Fatalf("Depth = %d, want 5", got)
	}
	want := []int{2, 2, 4, 2, 0}
	got := top.Arities()
	if len(got) != len(want) {
		t.Fatalf("Arities = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Arities[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	kinds := []Kind{Machine, Package, NUMANode, Core, PU}
	for d, k := range kinds {
		if top.LevelKind(d) != k {
			t.Errorf("LevelKind(%d) = %v, want %v", d, top.LevelKind(d), k)
		}
		if top.DepthOf(k) != d {
			t.Errorf("DepthOf(%v) = %d, want %d", k, top.DepthOf(k), d)
		}
	}
	if top.DepthOf(L3) != -1 {
		t.Errorf("DepthOf(L3) = %d, want -1", top.DepthOf(L3))
	}
}

func TestAncestorAndLCA(t *testing.T) {
	top := mustSpec(t, "pack:2 core:2 pu:2")
	pus := top.PUs()
	if len(pus) != 8 {
		t.Fatalf("NumPUs = %d, want 8", len(pus))
	}
	// PUs 0,1 share a core; 0..3 share a package; 0..7 share only the machine.
	if lca := top.LCA(pus[0], pus[1]); lca.Kind != Core {
		t.Errorf("LCA(pu0,pu1) = %v, want a Core", lca)
	}
	// An implicit numa:1 level sits below each package, so the LCA of two
	// PUs of the same socket is that socket's NUMA node.
	if lca := top.LCA(pus[0], pus[3]); lca.Kind != NUMANode {
		t.Errorf("LCA(pu0,pu3) = %v, want a NUMANode", lca)
	}
	if a := top.LCA(pus[0], pus[3]).Ancestor(Package); a == nil || a.LevelIndex != 0 {
		t.Errorf("LCA(pu0,pu3) not under Package#0: %v", a)
	}
	if lca := top.LCA(pus[0], pus[7]); lca.Kind != Machine {
		t.Errorf("LCA(pu0,pu7) = %v, want the Machine", lca)
	}
	if lca := top.LCA(pus[5], pus[5]); lca != pus[5] {
		t.Errorf("LCA(x,x) = %v, want x", lca)
	}
	if a := pus[6].Ancestor(Package); a == nil || a.LevelIndex != 1 {
		t.Errorf("Ancestor(Package) of pu6 = %v, want Package#1", a)
	}
	if a := pus[0].Ancestor(L3); a != nil {
		t.Errorf("Ancestor(L3) = %v, want nil", a)
	}
	// LCA of objects at different depths.
	core := pus[2].Parent
	if lca := top.LCA(core, pus[3]); lca != core {
		t.Errorf("LCA(core, its pu) = %v, want the core itself", lca)
	}
}

func TestHopDistance(t *testing.T) {
	top := mustSpec(t, "pack:2 core:2 pu:2")
	pus := top.PUs()
	tests := []struct {
		a, b int
		want int
	}{
		{0, 0, 0},
		{0, 1, 2}, // same core: up to core, down
		{0, 2, 4}, // same package: via numa? pack:2 numa:1 core:2 pu:2 -> up pu,core,numa? depth chain machine-pack-numa-core-pu
		{0, 7, 8},
	}
	for _, tc := range tests {
		if got := top.HopDistance(pus[tc.a], pus[tc.b]); got != tc.want {
			t.Errorf("HopDistance(pu%d,pu%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSharedCacheAndNUMA(t *testing.T) {
	top := mustSpec(t, "pack:2 l3:1 l2:2 core:2 pu:1")
	pus := top.PUs()
	// Layout per package: l3 -> 2×l2 -> 2×core -> pu. 4 PUs per package.
	if c := top.SharedCache(pus[0], pus[1]); c == nil || c.Kind != L2 {
		t.Errorf("SharedCache(pu0,pu1) = %v, want an L2", c)
	}
	if c := top.SharedCache(pus[0], pus[2]); c == nil || c.Kind != L3 {
		t.Errorf("SharedCache(pu0,pu2) = %v, want an L3", c)
	}
	if c := top.SharedCache(pus[0], pus[4]); c != nil {
		t.Errorf("SharedCache(pu0,pu4) = %v, want nil (different packages)", c)
	}
	if !top.SameNUMANode(pus[0], pus[3]) {
		t.Errorf("pu0 and pu3 should share a NUMA node")
	}
	if top.SameNUMANode(pus[0], pus[4]) {
		t.Errorf("pu0 and pu4 should not share a NUMA node")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	top := mustSpec(t, "pack:2 core:2 pu:1")
	if err := top.Validate(); err != nil {
		t.Fatalf("fresh topology invalid: %v", err)
	}
	// Corrupt a parent pointer.
	orig := top.PUs()[0].Parent
	top.PUs()[0].Parent = top.PUs()[3].Parent
	if err := top.Validate(); err == nil {
		t.Errorf("Validate accepted corrupted parent pointer")
	}
	top.PUs()[0].Parent = orig
	// Corrupt a depth.
	top.PUs()[1].Depth = 0
	if err := top.Validate(); err == nil {
		t.Errorf("Validate accepted corrupted depth")
	}
}

func TestRenderAndString(t *testing.T) {
	top := PaperMachine()
	s := top.String()
	for _, want := range []string{"24 Package", "192 PU", "24 NUMANode"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	r := top.Render()
	for _, want := range []string{"Machine", "x24 identical", "L3#0", "PU#0"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render() missing %q in:\n%s", want, r)
		}
	}
}

func TestKindString(t *testing.T) {
	if Machine.String() != "Machine" || PU.String() != "PU" || L3.String() != "L3" {
		t.Errorf("Kind.String misbehaves: %v %v %v", Machine, PU, L3)
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range Kind.String = %q", got)
	}
	if !L1.IsCache() || !L2.IsCache() || !L3.IsCache() || Core.IsCache() {
		t.Errorf("IsCache misclassifies")
	}
}

func TestOSIndexAssignment(t *testing.T) {
	top := mustSpec(t, "pack:2 core:2 pu:2")
	for i, pu := range top.PUs() {
		if pu.OSIndex != i {
			t.Errorf("PU %d has OSIndex %d", i, pu.OSIndex)
		}
	}
	if top.Root().OSIndex != -1 {
		t.Errorf("root OSIndex = %d, want -1", top.Root().OSIndex)
	}
}
