package topology

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFabricShapeErrors(t *testing.T) {
	bad := []string{
		"torus:1x4 pack:1 core:2",       // dimension < 2
		"torus:4xq pack:1 core:2",       // non-integer dimension
		"torus: pack:1 core:2",          // empty dims
		"torus:300x300 pack:1 core:2",   // node cap
		"dragonfly:2,4 pack:1 core:2",   // two counts
		"dragonfly:1,4,2 pack:1 core:2", // one group
		"dragonfly:2,0,2 pack:1 core:2", // zero routers
		"pack:1 torus:2x2 core:2",       // shape not leading
	}
	for _, spec := range bad {
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("FromSpec(%q) = nil error, want error", spec)
		}
	}
}

func TestTorusSpecParses(t *testing.T) {
	to, err := FromSpec("torus:4x4 pack:1 core:4")
	if err != nil {
		t.Fatal(err)
	}
	if got := to.NumClusterNodes(); got != 16 {
		t.Fatalf("NumClusterNodes() = %d, want 16", got)
	}
	if to.FabricShape() == nil || to.FabricShape().Kind != "torus" {
		t.Fatalf("FabricShape() = %v, want torus", to.FabricShape())
	}
	if lv := to.FabricLevels(); lv != nil {
		t.Errorf("FabricLevels() = %d levels on a torus, want nil (per-edge model)", len(lv))
	}
	if !strings.HasPrefix(to.Spec(), "torus:4x4 ") {
		t.Errorf("Spec() = %q, want torus:4x4 prefix", to.Spec())
	}
	// The canonical spec round-trips through the ordinary parser.
	rt, err := FromSpec(to.Spec())
	if err != nil {
		t.Fatalf("round-trip FromSpec(%q): %v", to.Spec(), err)
	}
	if rt.Spec() != to.Spec() {
		t.Errorf("round-trip spec %q != %q", rt.Spec(), to.Spec())
	}
}

func TestTorusCoords(t *testing.T) {
	dims := []int{2, 3, 4}
	for id := 0; id < 24; id++ {
		c := torusCoords(id, dims)
		if got := torusIndex(c, dims); got != id {
			t.Fatalf("torusIndex(torusCoords(%d)) = %d", id, got)
		}
	}
	// Row-major, last dimension fastest.
	if c := torusCoords(5, dims); !reflect.DeepEqual(c, []int{0, 1, 1}) {
		t.Errorf("torusCoords(5, 2x3x4) = %v, want [0 1 1]", c)
	}
}

// torusHops walks a route and returns the visited vertex sequence.
func routeVertices(g *FabricGraph, from int, path []int) []int {
	vs := []int{from}
	cur := from
	for _, e := range path {
		ed := g.edges[e]
		next := ed.A
		if next == cur {
			next = ed.B
		}
		vs = append(vs, next)
		cur = next
	}
	return vs
}

func TestTorusRouting(t *testing.T) {
	to, err := FromSpec("torus:4x4 pack:1 core:1")
	if err != nil {
		t.Fatal(err)
	}
	g := to.FabricGraph()
	if g.NumEdges() != 32 { // 2 links per node on a 2-D torus
		t.Fatalf("NumEdges() = %d, want 32", g.NumEdges())
	}
	// Nearest neighbour: one hop.
	if p := g.Route(0, 1); len(p) != 1 {
		t.Errorf("route 0->1: %d hops, want 1", len(p))
	}
	// Wrap-around is shorter: 0 -> 3 goes backward in one hop.
	if vs := routeVertices(g, 0, g.Route(0, 3)); !reflect.DeepEqual(vs, []int{0, 3}) {
		t.Errorf("route 0->3 visits %v, want [0 3] (wrap)", vs)
	}
	// Tie (distance 2 on a ring of 4) resolves to the positive direction.
	if vs := routeVertices(g, 0, g.Route(0, 2)); !reflect.DeepEqual(vs, []int{0, 1, 2}) {
		t.Errorf("route 0->2 visits %v, want [0 1 2] (positive tie)", vs)
	}
	// Dimension order: first dimension is corrected first. Node 5 is (1,1).
	if vs := routeVertices(g, 0, g.Route(0, 5)); !reflect.DeepEqual(vs, []int{0, 4, 5}) {
		t.Errorf("route 0->5 visits %v, want [0 4 5]", vs)
	}
	// Routes are symmetric in length.
	for f := 0; f < 16; f++ {
		for to := 0; to < 16; to++ {
			if lf, lt := len(g.Route(f, to)), len(g.Route(to, f)); lf != lt {
				t.Fatalf("asymmetric route length %d->%d: %d vs %d", f, to, lf, lt)
			}
		}
	}
}

func TestDragonflyRouting(t *testing.T) {
	to, err := FromSpec("dragonfly:2,4,2 pack:1 core:1")
	if err != nil {
		t.Fatal(err)
	}
	g := to.FabricGraph()
	if g.NumNodes() != 16 || g.NumVertices() != 24 {
		t.Fatalf("nodes=%d vertices=%d, want 16/24", g.NumNodes(), g.NumVertices())
	}
	// 16 node links + 2 groups x C(4,2) router links + 1 global link.
	if want := 16 + 2*6 + 1; g.NumEdges() != want {
		t.Fatalf("NumEdges() = %d, want %d", g.NumEdges(), want)
	}
	// Same router: node, router, node.
	if vs := routeVertices(g, 0, g.Route(0, 1)); !reflect.DeepEqual(vs, []int{0, 16, 1}) {
		t.Errorf("route 0->1 visits %v, want [0 16 1]", vs)
	}
	// Same group, different router: node, router, router, node.
	if p := g.Route(0, 2); len(p) != 3 {
		t.Errorf("route 0->2: %d hops, want 3", len(p))
	}
	// Cross-group minimal route is at most 5 hops (node, router, gateway,
	// global, router, node) and at least 3.
	for f := 0; f < 8; f++ {
		for to := 8; to < 16; to++ {
			if l := len(g.Route(f, to)); l < 3 || l > 5 {
				t.Fatalf("cross-group route %d->%d: %d hops, want 3..5", f, to, l)
			}
		}
	}
	// Valiant routing through an intermediate node concatenates two minimal
	// routes; a degenerate via falls back to the minimal route.
	min, val := g.Route(0, 9), g.ValiantRoute(0, 9, 4)
	if len(val) < len(min) {
		t.Errorf("valiant route shorter than minimal: %d < %d", len(val), len(min))
	}
	if !reflect.DeepEqual(g.ValiantRoute(0, 9, 0), min) {
		t.Errorf("degenerate valiant route differs from minimal")
	}
}

func TestTreeGraphCompilation(t *testing.T) {
	cases := []struct {
		spec string
		// hops[d] = expected edge-path length between node pairs whose
		// lowest common fabric level is d levels up (1 = same parent).
		samePair  [2]int
		sameHops  int
		crossPair [2]int
		crossHops int
	}{
		{"cluster:4 pack:1 core:2", [2]int{0, 1}, 2, [2]int{0, 3}, 2},
		{"rack:2 node:2 pack:1 core:2", [2]int{0, 1}, 2, [2]int{0, 2}, 4},
		{"pod:2 rack:2 node:2 pack:1 core:2", [2]int{0, 1}, 2, [2]int{0, 4}, 6},
		{"rack:2 node:2,3 pack:1 core:2", [2]int{0, 1}, 2, [2]int{0, 4}, 4},
	}
	for _, c := range cases {
		to, err := FromSpec(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		g := to.FabricGraph()
		if g == nil {
			t.Fatalf("%s: FabricGraph() = nil", c.spec)
		}
		if got := len(g.Route(c.samePair[0], c.samePair[1])); got != c.sameHops {
			t.Errorf("%s: route %v = %d hops, want %d", c.spec, c.samePair, got, c.sameHops)
		}
		if got := len(g.Route(c.crossPair[0], c.crossPair[1])); got != c.crossHops {
			t.Errorf("%s: route %v = %d hops, want %d", c.spec, c.crossPair, got, c.crossHops)
		}
		// The levelEdge bridge covers every fabric level with the same group
		// counts as the per-level model.
		levels := to.FabricLevels()
		if g.NumLevels() != len(levels) {
			t.Fatalf("%s: NumLevels() = %d, want %d", c.spec, g.NumLevels(), len(levels))
		}
		for li, lv := range levels {
			if got := len(g.LevelEdges(li)); got != len(lv) {
				t.Errorf("%s: LevelEdges(%d) has %d edges, want %d", c.spec, li, got, len(lv))
			}
			for gi, o := range lv {
				e := g.edges[g.LevelEdges(li)[gi]]
				if e.LatencyCycles != o.Attr.LatencyCycles || e.BandwidthBytesPerSec != o.Attr.BandwidthBytesPerSec {
					t.Errorf("%s: level %d group %d edge attrs %v != link attrs (%v, %v)",
						c.spec, li, gi, e, o.Attr.LatencyCycles, o.Attr.BandwidthBytesPerSec)
				}
			}
		}
	}
}

func TestPathCacheMatchesRoute(t *testing.T) {
	for _, spec := range []string{
		"torus:3x3 pack:1 core:1",
		"torus:2x2x4 pack:1 core:1",
		"dragonfly:2,4,2 pack:1 core:1",
		"pod:2 rack:2 node:2 pack:1 core:2",
		"rack:2 node:2,3 pack:1 core:2",
	} {
		to, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		g := to.FabricGraph()
		n := g.NumNodes()
		for f := 0; f < n; f++ {
			for to := 0; to < n; to++ {
				if !reflect.DeepEqual(g.PathEdges(f, to), g.Route(f, to)) {
					t.Fatalf("%s: PathEdges(%d,%d) != Route", spec, f, to)
				}
				if g.PathLatency(f, to) != g.pathLatencyWalk(f, to) {
					t.Fatalf("%s: PathLatency(%d,%d) != walk", spec, f, to)
				}
			}
		}
		lm := g.LatencyMatrix()
		for f := 0; f < n; f++ {
			for to := 0; to < n; to++ {
				if lm[f][to] != g.PathLatency(f, to) {
					t.Fatalf("%s: LatencyMatrix[%d][%d] mismatch", spec, f, to)
				}
				if lm[f][to] != lm[to][f] {
					t.Fatalf("%s: latency not symmetric at (%d,%d)", spec, f, to)
				}
			}
		}
	}
}

func TestPlatformShapeRoundTrip(t *testing.T) {
	p, err := ParsePlatform("torus:2x3 pack:1 core:2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Fabric == nil || p.Nodes() != 6 {
		t.Fatalf("Fabric=%v Nodes=%d, want torus/6", p.Fabric, p.Nodes())
	}
	fused, err := p.FusedSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fused, "torus:2x3 ") {
		t.Fatalf("FusedSpec() = %q, want torus:2x3 prefix", fused)
	}
	p2, err := ParsePlatform(fused)
	if err != nil {
		t.Fatalf("re-parse %q: %v", fused, err)
	}
	fused2, err := p2.FusedSpec()
	if err != nil {
		t.Fatal(err)
	}
	if fused2 != fused {
		t.Errorf("FusedSpec not stable: %q then %q", fused, fused2)
	}

	// Braced heterogeneous members cycle over the shape's nodes.
	p, err = ParsePlatform("dragonfly:2,2,1{pack:1 core:4 | pack:1 core:2}")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 4 || p.Homogeneous() {
		t.Fatalf("Nodes=%d Homogeneous=%v, want 4 heterogeneous", p.Nodes(), p.Homogeneous())
	}
	fused, err = p.FusedSpec()
	if err != nil {
		t.Fatal(err)
	}
	p2, err = ParsePlatform(fused)
	if err != nil {
		t.Fatalf("re-parse %q: %v", fused, err)
	}
	if !reflect.DeepEqual(p2.Members, p.Members) {
		t.Errorf("members did not round-trip: %v vs %v", p2.Members, p.Members)
	}
	// A shape tier cannot follow or carry tree tiers.
	for _, bad := range []string{
		"rack:2 torus:2x2 pack:1 core:2",
		"torus:2x2",
		"torus:2x2{pack:1 core:2} core:4",
	} {
		if _, err := ParsePlatform(bad); err == nil {
			t.Errorf("ParsePlatform(%q) = nil error, want error", bad)
		}
	}
}

func TestRenderFabric(t *testing.T) {
	to, err := FromSpec("torus:4x4 pack:1 core:1")
	if err != nil {
		t.Fatal(err)
	}
	out := to.RenderFabric()
	for _, want := range []string{"torus 4x4", "16 nodes", "dimension-order", "route 0 -> 15"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderFabric() missing %q:\n%s", want, out)
		}
	}
	flat, err := FromSpec("cluster:4 pack:1 core:2")
	if err != nil {
		t.Fatal(err)
	}
	if out := flat.RenderFabric(); out != "" {
		t.Errorf("RenderFabric() on a tree fabric = %q, want empty", out)
	}
}
