package experiment

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func testFaultCfg() FaultConfig {
	return FaultConfig{Seed: 42}
}

// TestAblationFault is the A14 acceptance property: on the rack-skewed
// stencil with a mid-run correlated failure (a node kill plus its rack
// uplink degrading), the fault-aware adaptive engine strictly beats the
// fault-blind one, which strictly beats static-with-respawn, and the
// spread-hardened initial placement also strictly beats static-with-respawn.
// Asserted on the default 2×4×8 shape, on 2 racks of 6 nodes, and on
// narrower 4-core nodes, each under two scheduler seeds (every task is
// bound, so the seconds must not depend on the seed at all).
func TestAblationFault(t *testing.T) {
	shapes := map[string]FaultConfig{
		"2x4x8": testFaultCfg(),
		"2x6x8": {NodesPerRack: 6, Seed: 42},
		"2x4x4": {CoresPerNode: 4, CoresPerSocket: 2, Seed: 42},
	}
	for name, cfg := range shapes {
		var prev map[string]float64
		for _, seed := range []int64{42, 7} {
			cfg.Seed = seed
			rows, err := AblationFault(cfg)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if len(rows) != len(FaultModes()) {
				t.Fatalf("%s seed=%d: %d rows, want %d", name, seed, len(rows), len(FaultModes()))
			}
			byName := map[string]float64{}
			for _, r := range rows {
				if r.Seconds <= 0 {
					t.Fatalf("%s seed=%d: %s has non-positive time %v", name, seed, r.Name, r.Seconds)
				}
				byName[r.Name] = r.Seconds
			}
			aware := byName["fault/fault-aware"]
			blind := byName["fault/fault-blind"]
			spread := byName["fault/spread"]
			respawn := byName["fault/static-respawn"]
			if !(aware < blind) {
				t.Errorf("%s seed=%d: fault-aware %.6fs not strictly below fault-blind %.6fs", name, seed, aware, blind)
			}
			if !(blind < respawn) {
				t.Errorf("%s seed=%d: fault-blind %.6fs not strictly below static-respawn %.6fs", name, seed, blind, respawn)
			}
			if !(spread < respawn) {
				t.Errorf("%s seed=%d: spread %.6fs not strictly below static-respawn %.6fs", name, seed, spread, respawn)
			}
			if err := CheckOrderings(rows, AblationOrderings("fault")); err != nil {
				t.Errorf("%s seed=%d: CheckOrderings disagrees with the inline assertions: %v", name, seed, err)
			}
			if prev != nil {
				for arm, sec := range byName {
					if prev[arm] != sec {
						t.Errorf("%s: %s depends on the seed (%v vs %v) although every task is bound", name, arm, prev[arm], sec)
					}
				}
			}
			prev = byName
		}
	}
}

// TestRunFaultEvacuates pins that the failure really forces the runtime's
// hand in every arm: the fault epoch fires once, a whole node-block of tasks
// is evacuated (one per core of the dead node), the moves are priced, and
// the respawn arm never adapts beyond them.
func TestRunFaultEvacuates(t *testing.T) {
	cfg := testFaultCfg()
	for _, mode := range FaultModes() {
		res, err := RunFault(mode, cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		st := res.Stats
		if st.FaultEpochs != 1 {
			t.Errorf("%s: FaultEpochs = %d, want 1", mode, st.FaultEpochs)
		}
		if st.Evacuations != cfg.withDefaults().CoresPerNode {
			t.Errorf("%s: %d evacuations, want the dead node's %d tasks",
				mode, st.Evacuations, cfg.withDefaults().CoresPerNode)
		}
		if st.EvacuationCostCycles <= 0 {
			t.Errorf("%s: evacuations committed unpriced (stats %+v)", mode, st)
		}
		if mode == "static-respawn" && st.Applied != 0 {
			t.Errorf("static-respawn applied %d candidate mappings, want none", st.Applied)
		}
	}
}

// TestRunFaultDeterministic pins bit-reproducibility of every arm.
func TestRunFaultDeterministic(t *testing.T) {
	for _, mode := range FaultModes() {
		a, err := RunFault(mode, testFaultCfg())
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFault(mode, testFaultCfg())
		if err != nil {
			t.Fatal(err)
		}
		if a.Seconds != b.Seconds || a.Stats != b.Stats {
			t.Errorf("%s not deterministic: %v/%+v vs %v/%+v", mode, a.Seconds, a.Stats, b.Seconds, b.Stats)
		}
	}
}

// TestFaultNoScheduleMatchesRack pins the no-fault bit-stability criterion
// end to end: the fault pipeline with the failure disabled (KillNode -1, no
// events) runs the plain A10 stencil under an adaptive engine whose schedule
// is nil, and commits no evacuations and no fault epochs.
func TestFaultNoScheduleMatchesRack(t *testing.T) {
	cfg := testFaultCfg()
	cfg.KillNode = -1
	res, err := RunFault("fault-aware", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FaultEpochs != 0 || res.Stats.Evacuations != 0 {
		t.Errorf("disabled schedule still faulted: %+v", res.Stats)
	}
	if res.Seconds <= 0 {
		t.Errorf("non-positive makespan %v", res.Seconds)
	}
}

// TestFaultValidation exercises the config error paths.
func TestFaultValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  FaultConfig
		ok   bool
	}{
		{"defaults", FaultConfig{}, true},
		{"one rack", FaultConfig{Racks: 1}, false},
		{"bad node shape", FaultConfig{CoresPerNode: 10, CoresPerSocket: 4}, false},
		{"epoch zero", FaultConfig{Events: []FaultEventSpec{{Epoch: 0, Kind: topology.FaultKillNode, Node: 1}}}, false},
		{"epoch beyond run", FaultConfig{KillEpoch: 99}, false},
		{"unknown node", FaultConfig{KillNode: 99}, false},
		{"bad degrade factor", FaultConfig{DegradeFactor: 2}, false},
		{"unknown kind", FaultConfig{Events: []FaultEventSpec{{Epoch: 1, Kind: topology.FaultKind(9)}}}, false},
		{"events override", FaultConfig{Events: []FaultEventSpec{{Epoch: 1, Kind: topology.FaultKillNode, Node: 1}}}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := RunFault("nonsense", testFaultCfg()); err == nil ||
		!strings.Contains(err.Error(), "unknown fault mode") {
		t.Errorf("unknown mode accepted (err %v)", err)
	}
}

// TestBuildFaultSchedule pins the experiment-coordinate resolution: level 1
// link r is rack r's uplink, out-of-range coordinates fail, and the resolved
// schedule passes topology validation.
func TestBuildFaultSchedule(t *testing.T) {
	cluster, err := RackCluster(RackConfig{Racks: 2, NodesPerRack: 2})
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.Machine().Topology()
	s, err := BuildFaultSchedule(topo, []FaultEventSpec{
		{Epoch: 1, Kind: topology.FaultKillNode, Node: 2},
		{Epoch: 2, Kind: topology.FaultDegradeEdge, Level: 1, Link: 1, Factor: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2 {
		t.Fatalf("%d events, want 2", len(s.Events))
	}
	if want := topo.FabricGraph().LevelEdges(1)[1]; s.Events[1].Edge != want {
		t.Errorf("uplink resolved to edge %d, want %d", s.Events[1].Edge, want)
	}
	if _, err := BuildFaultSchedule(topo, []FaultEventSpec{
		{Epoch: 1, Kind: topology.FaultSeverEdge, Level: 9, Link: 0},
	}); err == nil || !strings.Contains(err.Error(), "fabric level") {
		t.Errorf("bad level accepted (err %v)", err)
	}
	if _, err := BuildFaultSchedule(topo, []FaultEventSpec{
		{Epoch: 1, Kind: topology.FaultSeverEdge, Level: 0, Link: 99},
	}); err == nil || !strings.Contains(err.Error(), "link") {
		t.Errorf("bad link accepted (err %v)", err)
	}
	if s, err := BuildFaultSchedule(topo, nil); s != nil || err != nil {
		t.Errorf("empty specs: got %v, %v; want nil, nil", s, err)
	}
}

// TestFaultConfigFrom pins the shape derivation from the common ablation
// config: 2 racks of 8-core nodes, scaled by the core budget, never below
// the 4-node floor per rack.
func TestFaultConfigFrom(t *testing.T) {
	cfg := FaultConfigFrom(Config{Cores: 96})
	if cfg.Racks != 2 || cfg.NodesPerRack != 6 || cfg.CoresPerNode != 8 {
		t.Errorf("96 cores derived %+v, want 2 racks x 6 nodes x 8 cores", cfg)
	}
	small := FaultConfigFrom(Config{Cores: 8})
	if small.NodesPerRack != 4 {
		t.Errorf("8 cores derived %+v, want the 4-node floor per rack", small)
	}
	if err := small.Validate(); err != nil {
		t.Errorf("derived config invalid: %v", err)
	}
}
