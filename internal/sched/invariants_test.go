package sched

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/topology"
)

// Property-based scheduler invariants over seeded random streams, the
// online-scheduling extension of the placement property suite: admitted jobs
// stay inside their required domain, no core slot is double-booked across
// concurrently resident jobs, a departure returns the free-capacity index
// exactly to its prior state, and identical seeds give bit-identical
// schedules.

// invariantCases spans the policies and both fit rules over two fabric
// shapes and several stream seeds.
func invariantCases() []struct {
	name string
	spec string
	opts Options
	seed int64
} {
	var out []struct {
		name string
		spec string
		opts Options
		seed int64
	}
	shapes := []struct{ name, spec string }{
		{"rack2x4", "rack:2 node:4 pack:2 core:4 pu:1"},
		{"pod2", "pod:2 rack:2 node:2 pack:2 core:4 pu:1"},
	}
	opts := []struct {
		name string
		o    Options
	}{
		{"aware-best", Options{Policy: TopoAware, Fit: BestFit}},
		{"aware-worst", Options{Policy: TopoAware, Fit: WorstFit}},
		{"aware-reject", Options{Policy: TopoAware, Queue: QueueReject}},
		{"blind", Options{Policy: TopoBlind}},
		{"first-fit", Options{Policy: FirstFit}},
	}
	for _, sh := range shapes {
		for _, op := range opts {
			for _, seed := range []int64{1, 7, 42} {
				out = append(out, struct {
					name string
					spec string
					opts Options
					seed int64
				}{sh.name + "/" + op.name, sh.spec, op.o, seed})
			}
		}
	}
	return out
}

func invariantStream(t *testing.T, seed int64) []JobSpec {
	t.Helper()
	jobs, err := GenerateStream(StreamConfig{Jobs: 30, Seed: seed, Churn: 5,
		ConstraintFraction: 0.4, PreferredTier: "node", RequiredTier: "rack"})
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	return jobs
}

// TestSchedulerInvariants replays every case and checks containment,
// exclusivity and end-state restoration on the same run.
func TestSchedulerInvariants(t *testing.T) {
	for _, tc := range invariantCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mach := schedMachine(t, tc.spec)
			topo := mach.Topology()
			s, err := New(mach, tc.opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			before := s.Capacity().Fingerprint()
			rep, err := s.Run(invariantStream(t, tc.seed))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}

			// Departures restored the index exactly: after the full run every
			// job has released its slots, and the incremental aggregates agree
			// with a from-scratch recount.
			if after := s.Capacity().Fingerprint(); after != before {
				t.Fatalf("capacity index not restored:\n before %s\n after  %s", before, after)
			}
			if err := s.Capacity().Validate(); err != nil {
				t.Fatalf("capacity index inconsistent: %v", err)
			}

			rackOfNode := nodeTierIndex(topo, topology.Rack)
			type interval struct {
				start, finish float64
				cores         []int
			}
			var placed []interval
			for _, j := range rep.Jobs {
				if j.Rejected {
					continue
				}
				if len(j.Cores) != j.Tasks {
					t.Fatalf("job %s: %d cores for %d tasks", j.Name, len(j.Cores), j.Tasks)
				}
				// Containment: every core inside the job's reported domain;
				// for required-constrained jobs under the constraint-honoring
				// policies that domain is itself inside the required tier.
				if tc.opts.Policy != FirstFit {
					checkContainment(t, s, topo, rackOfNode, j)
				}
				placed = append(placed, interval{j.StartCycles, j.FinishCycles, j.Cores})
			}

			// Exclusivity: no core serves two jobs whose residency overlaps.
			for i := 0; i < len(placed); i++ {
				for k := i + 1; k < len(placed); k++ {
					a, b := placed[i], placed[k]
					if a.start >= b.finish || b.start >= a.finish {
						continue
					}
					if c := sharedCore(a.cores, b.cores); c >= 0 {
						t.Fatalf("core %d double-booked by overlapping jobs [%v,%v) and [%v,%v)",
							c, a.start, a.finish, b.start, b.finish)
					}
				}
			}
		})
	}
}

// nodeTierIndex maps every cluster node to its domain index at the tier (-1
// without that tier).
func nodeTierIndex(topo *topology.Topology, tier topology.Kind) []int {
	out := make([]int, topo.NumClusterNodes())
	for i := range out {
		out[i] = -1
	}
	for d, dom := range topo.FabricDomains(tier) {
		for _, n := range dom.Nodes {
			out[n] = d
		}
	}
	return out
}

// checkContainment verifies the job's cores all sit inside the domain it
// reports, and that a required=rack job never leaves one rack.
func checkContainment(t *testing.T, s *Scheduler, topo *topology.Topology, rackOfNode []int, j JobStat) {
	t.Helper()
	racks := map[int]bool{}
	for _, core := range j.Cores {
		racks[rackOfNode[s.cap.nodeOf[core]]] = true
	}
	switch j.Tier {
	case "node":
		if j.NodesSpanned != 1 {
			t.Fatalf("job %s: tier node but spans %d nodes", j.Name, j.NodesSpanned)
		}
	case "rack":
		if len(racks) != 1 {
			t.Fatalf("job %s: tier rack but touches racks %v", j.Name, racks)
		}
		if !racks[j.Domain] {
			t.Fatalf("job %s: reported rack %d but sits in %v", j.Name, j.Domain, racks)
		}
	}
}

func sharedCore(a, b []int) int {
	set := map[int]bool{}
	for _, c := range a {
		set[c] = true
	}
	for _, c := range b {
		if set[c] {
			return c
		}
	}
	return -1
}

// TestSchedulerDeterminism: identical seeds give bit-identical schedules,
// including all float aggregates.
func TestSchedulerDeterminism(t *testing.T) {
	for _, tc := range invariantCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			jobs := invariantStream(t, tc.seed)
			run := func() *Report {
				rep := mustRun(t, schedMachine(t, tc.spec), tc.opts, jobs)
				return rep
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestCapacityBindReleaseRestores drives the index directly with random
// bind/release pairs: each release returns the fingerprint to the exact
// pre-bind state, and the incremental aggregates never drift from a full
// recount.
func TestCapacityBindReleaseRestores(t *testing.T) {
	topo, err := topology.FromSpec("pod:2 rack:2 node:2 pack:2 core:4 pu:1")
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	c, err := NewCapacity(topo)
	if err != nil {
		t.Fatalf("NewCapacity: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	type bound struct {
		cores []int
		prior string
	}
	var resident []bound
	for step := 0; step < 400; step++ {
		if rng.Intn(2) == 0 && c.FreeTotal() > 0 {
			// Bind a random subset of the free slots.
			var free []int
			for n := range c.free {
				free = append(free, c.free[n]...)
			}
			sort.Ints(free)
			rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
			k := 1 + rng.Intn(len(free))
			cores := append([]int(nil), free[:k]...)
			prior := c.Fingerprint()
			if err := c.Bind(cores); err != nil {
				t.Fatalf("step %d: bind %v: %v", step, cores, err)
			}
			resident = append(resident, bound{cores, prior})
		} else if len(resident) > 0 {
			// Release the most recent binding: state must return exactly.
			last := resident[len(resident)-1]
			resident = resident[:len(resident)-1]
			if err := c.Release(last.cores); err != nil {
				t.Fatalf("step %d: release %v: %v", step, last.cores, err)
			}
			if got := c.Fingerprint(); got != last.prior {
				t.Fatalf("step %d: release did not restore state:\n want %s\n got  %s", step, last.prior, got)
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestCapacityRejectsBadSlots: double bind, foreign release, out-of-range.
func TestCapacityRejectsBadSlots(t *testing.T) {
	topo, err := topology.FromSpec("cluster:2 pack:1 core:4 pu:1")
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	c, err := NewCapacity(topo)
	if err != nil {
		t.Fatalf("NewCapacity: %v", err)
	}
	if err := c.Bind([]int{0, 1}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := c.Bind([]int{1}); err == nil {
		t.Fatal("double bind accepted")
	}
	if err := c.Release([]int{2}); err == nil {
		t.Fatal("release of free slot accepted")
	}
	if err := c.Bind([]int{99}); err == nil {
		t.Fatal("out-of-range bind accepted")
	}
	if err := c.Bind([]int{2, 2}); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("index left inconsistent: %v", err)
	}
}
