package topology

import (
	"fmt"
	"strings"
)

// String returns a one-line summary of the topology, e.g.
// "Machine (24 Package, 24 NUMANode, 192 Core, 192 PU)".
func (t *Topology) String() string {
	var parts []string
	for d := 1; d < t.Depth(); d++ {
		lv := t.levels[d]
		parts = append(parts, fmt.Sprintf("%d %v", len(lv), lv[0].Kind))
	}
	return "Machine (" + strings.Join(parts, ", ") + ")"
}

// Render returns a multi-line ASCII rendering of the topology tree in the
// style of hwloc's lstopo tool. Sibling subtrees that are structurally
// identical are collapsed ("x24") to keep large machines readable.
func (t *Topology) Render() string {
	var b strings.Builder
	renderObj(&b, t.root, 0)
	return b.String()
}

func renderObj(b *strings.Builder, o *Object, indent int) {
	b.WriteString(strings.Repeat("  ", indent))
	b.WriteString(describe(o))
	b.WriteByte('\n')
	// Collapse each run of structurally identical sibling subtrees; on an
	// uneven machine the differing siblings render separately.
	for i := 0; i < len(o.Children); {
		j := i + 1
		for j < len(o.Children) && shape(o.Children[j]) == shape(o.Children[i]) {
			j++
		}
		if j-i > 1 {
			b.WriteString(strings.Repeat("  ", indent+1))
			fmt.Fprintf(b, "(x%d identical subtrees, first shown)\n", j-i)
		}
		renderObj(b, o.Children[i], indent+1)
		i = j
	}
}

// RenderFabric returns a multi-line description of the routed fabric graph
// of a shaped (torus/dragonfly) topology: dimensions, routing discipline,
// per-edge attribute classes, and a worked example route. Empty on tree
// fabrics and single machines, whose structure Render already shows.
func (t *Topology) RenderFabric() string {
	s := t.fabric
	if s == nil {
		return ""
	}
	g := t.FabricGraph()
	var b strings.Builder
	fmt.Fprintf(&b, "Fabric: %s (%d nodes, %d vertices, %d edges)\n",
		s, g.NumNodes(), g.NumVertices(), g.NumEdges())
	if s.Kind == "torus" {
		b.WriteString("  routing: dimension-order (shorter wrap direction, positive on ties)\n")
	} else {
		b.WriteString("  routing: minimal (node, router, gateway, global link, router, node)\n")
	}
	// Group the edges into attribute classes, first-seen order (node links
	// first by construction, then router and global links).
	type edgeClass struct {
		lat, bw float64
		count   int
	}
	var classes []edgeClass
	for _, e := range g.Edges() {
		found := false
		for i := range classes {
			if classes[i].lat == e.LatencyCycles && classes[i].bw == e.BandwidthBytesPerSec {
				classes[i].count++
				found = true
				break
			}
		}
		if !found {
			classes = append(classes, edgeClass{lat: e.LatencyCycles, bw: e.BandwidthBytesPerSec, count: 1})
		}
	}
	for _, c := range classes {
		fmt.Fprintf(&b, "  links x%d: %.1f GB/s, %.0f cycles\n", c.count, c.bw/1e9, c.lat)
	}
	from, to := 0, g.NumNodes()-1
	path := g.PathEdges(from, to)
	fmt.Fprintf(&b, "  route %d -> %d:", from, to)
	for _, e := range path {
		ed := g.Edges()[e]
		fmt.Fprintf(&b, " [%d-%d]", ed.A, ed.B)
	}
	fmt.Fprintf(&b, " (%d hops, %.0f cycles)\n", len(path), g.PathLatency(from, to))
	return b.String()
}

// shape returns a structural signature of a subtree: kinds and arities,
// ignoring indices (attributes are uniform per kind by construction).
func shape(o *Object) string {
	if len(o.Children) == 0 {
		return o.Kind.String()
	}
	parts := make([]string, len(o.Children))
	for i, c := range o.Children {
		parts[i] = shape(c)
	}
	return o.Kind.String() + "[" + strings.Join(parts, ",") + "]"
}

// describe renders one object with its salient attributes.
func describe(o *Object) string {
	switch {
	case o.Kind == Machine:
		if o.Attr.ClockHz > 0 {
			return fmt.Sprintf("Machine (%.2f GHz)", o.Attr.ClockHz/1e9)
		}
		return "Machine"
	case o.Kind.IsCache():
		return fmt.Sprintf("%s#%d (%s, %.0f cycles)", o.Kind, o.LevelIndex,
			formatSize(o.Attr.CacheSize), o.Attr.LatencyCycles)
	case o.Kind == Pod:
		return fmt.Sprintf("Pod#%d (uplink %.1f GB/s, %.0f cycles)", o.LevelIndex,
			o.Attr.BandwidthBytesPerSec/1e9, o.Attr.LatencyCycles)
	case o.Kind == Rack:
		return fmt.Sprintf("Rack#%d (uplink %.1f GB/s, %.0f cycles)", o.LevelIndex,
			o.Attr.BandwidthBytesPerSec/1e9, o.Attr.LatencyCycles)
	case o.Kind == Cluster:
		return fmt.Sprintf("Cluster#%d (link %.1f GB/s, %.0f cycles)", o.LevelIndex,
			o.Attr.BandwidthBytesPerSec/1e9, o.Attr.LatencyCycles)
	case o.Kind == NUMANode:
		return fmt.Sprintf("NUMANode#%d (%.1f GB/s, %.0f cycles)", o.LevelIndex,
			o.Attr.BandwidthBytesPerSec/1e9, o.Attr.LatencyCycles)
	case o.Kind == PU:
		return fmt.Sprintf("PU#%d (os=%d)", o.LevelIndex, o.OSIndex)
	default:
		return fmt.Sprintf("%s#%d", o.Kind, o.LevelIndex)
	}
}

// formatSize renders a byte count with binary units.
func formatSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
