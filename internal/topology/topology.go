// Package topology models the hardware topology of a shared-memory machine
// as a tree of objects, in the spirit of the HWLOC library that the paper
// uses for portable topology discovery.
//
// A topology is a rooted tree whose levels are kind-homogeneous: every
// object at a given depth has the same Kind. Arities usually match too, but
// uneven machines (partially populated sockets) are representable. The leaves
// are processing units (PUs, i.e. hardware threads); above them sit cores,
// caches, NUMA nodes, packages (sockets) and optional groups. Each object may
// carry physical attributes (cache size, latency, memory bandwidth) used by
// the machine simulator to derive access costs.
//
// Because this reproduction cannot discover a real 192-core machine, the
// package builds topologies from synthetic specification strings such as
//
//	pack:24 core:8 pu:1
//
// which describes the paper's evaluation machine: 24 sockets of 8 cores
// without hyperthreading (one NUMA node per socket is inserted implicitly;
// see FromSpec). See spec.go for the grammar.
package topology

import (
	"fmt"
	"sync"
)

// Kind identifies the hardware class of an object in the topology tree.
type Kind int

// The object kinds, ordered from the root of the tree towards the leaves.
// Not every topology contains every kind, but the relative order of the kinds
// that do appear is always the one below.
const (
	// Machine is the root of every topology.
	Machine Kind = iota
	// Pod is one pod (core-switch group) of a three-tier fabric: the racks
	// below a Pod share a pod switch, and traffic between different Pods
	// additionally traverses the pod uplinks (pod switch to core switch).
	// Each Pod object carries the per-pod-uplink latency and bandwidth in its
	// Attr; the root of a topology with Pods stands for the core switch.
	Pod
	// Rack is one rack (switch group) of a multi-switch cluster fabric: the
	// cluster nodes below a Rack share a top-of-rack switch, and traffic
	// between different Racks additionally traverses the rack uplinks to the
	// spine. Each Rack object carries the per-uplink latency and bandwidth in
	// its Attr; the root of a topology with Racks stands for the spine
	// switch (or, with a pod tier above, for the core switch).
	Rack
	// Cluster is a cluster node: one shared-memory machine of a simulated
	// multi-machine cluster. PUs under different Cluster objects do not share
	// memory; data crossing the boundary travels over the interconnect
	// fabric, whose per-link (NIC) latency and bandwidth the Cluster objects
	// carry in their Attr.
	Cluster
	// Group is an intermediate structural level (e.g. a board or blade in a
	// large SMP such as the 24-socket machine of the paper).
	Group
	// Package is a processor socket.
	Package
	// NUMANode is a memory node: every PU below the same NUMANode has uniform
	// (local) access cost to that node's memory.
	NUMANode
	// L3, L2 and L1 are data caches shared by the PUs below them.
	L3
	L2
	L1
	// Core is a physical core; its children are hardware threads.
	Core
	// PU is a processing unit (hardware thread), always a leaf.
	PU
	numKinds
)

var kindNames = [numKinds]string{
	Machine:  "Machine",
	Pod:      "Pod",
	Rack:     "Rack",
	Cluster:  "Cluster",
	Group:    "Group",
	Package:  "Package",
	NUMANode: "NUMANode",
	L3:       "L3",
	L2:       "L2",
	L1:       "L1",
	Core:     "Core",
	PU:       "PU",
}

// String returns the canonical name of the kind ("Package", "PU", ...).
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// IsCache reports whether the kind is one of the cache levels L1, L2, L3.
func (k Kind) IsCache() bool { return k == L1 || k == L2 || k == L3 }

// Attr carries the physical attributes of an object. Zero values mean
// "unspecified"; FromSpec fills in sensible defaults for a 2016-era machine.
type Attr struct {
	// CacheSize is the capacity in bytes of a cache object.
	CacheSize int64
	// LatencyCycles is the access latency of a cache or memory node in CPU
	// cycles.
	LatencyCycles float64
	// BandwidthBytesPerSec is the sustainable bandwidth of a memory node or
	// of the interconnect link represented by this object, in bytes/second.
	BandwidthBytesPerSec float64
	// ClockHz is the core clock frequency; meaningful on the Machine object.
	ClockHz float64
}

// Object is a node of the topology tree.
type Object struct {
	// Kind is the hardware class of the object.
	Kind Kind
	// Depth is the distance from the root (the Machine has depth 0).
	Depth int
	// SiblingIndex is the index of this object among its parent's children.
	SiblingIndex int
	// LevelIndex is the index of this object among all objects of the same
	// depth, in left-to-right order.
	LevelIndex int
	// OSIndex is the operating-system index of a PU (the "cpu number"); -1
	// for non-PU objects.
	OSIndex int
	// Parent is nil for the root.
	Parent *Object
	// Children are ordered left to right.
	Children []*Object
	// Attr holds the physical attributes of the object.
	Attr Attr
}

// IsLeaf reports whether the object has no children.
func (o *Object) IsLeaf() bool { return len(o.Children) == 0 }

// String returns a short identifier such as "Package#3".
func (o *Object) String() string {
	return fmt.Sprintf("%s#%d", o.Kind, o.LevelIndex)
}

// Ancestor returns the nearest ancestor of o (possibly o itself) with the
// given kind, or nil if there is none.
func (o *Object) Ancestor(k Kind) *Object {
	for cur := o; cur != nil; cur = cur.Parent {
		if cur.Kind == k {
			return cur
		}
	}
	return nil
}

// Topology is an immutable hardware topology tree.
//
// All exported query methods are safe for concurrent use once the topology
// has been built.
type Topology struct {
	root     *Object
	levels   [][]*Object // levels[d] lists the objects at depth d
	pus      []*Object
	cores    []*Object
	numa     []*Object
	clusters []*Object
	racks    []*Object
	pods     []*Object
	spec     string // the normalized spec the topology was built from

	// fabric is the non-tree fabric shape (torus/dragonfly) the cluster
	// tier was declared with, nil for tree fabrics; fabricDef keeps the
	// attribute defaults the fabric graph's edges are priced with.
	fabric    *FabricShape
	fabricDef Defaults

	// fabricOnce/fabricGraph memoize FabricGraph: the routed-edge view of
	// the fabric, built on first use and shared between callers.
	fabricOnce  sync.Once
	fabricGraph *FabricGraph

	// latOnce/latMatrix memoize LatencyMatrix: the topology tree is
	// immutable after construction, so the O(PUs²) matrix is built at most
	// once and shared between callers.
	latOnce   sync.Once
	latMatrix [][]float64
}

// Root returns the Machine object at the root of the tree.
func (t *Topology) Root() *Object { return t.root }

// Spec returns the normalized specification string describing the topology.
func (t *Topology) Spec() string { return t.spec }

// Depth returns the number of levels in the tree. The root is level 0 and
// the PUs are level Depth()-1.
func (t *Topology) Depth() int { return len(t.levels) }

// Level returns the objects at the given depth, left to right. The returned
// slice must not be modified.
func (t *Topology) Level(depth int) []*Object {
	if depth < 0 || depth >= len(t.levels) {
		return nil
	}
	return t.levels[depth]
}

// LevelKind returns the kind of the objects at the given depth.
func (t *Topology) LevelKind(depth int) Kind { return t.levels[depth][0].Kind }

// DepthOf returns the depth at which objects of kind k live, or -1 if the
// topology has no such level.
func (t *Topology) DepthOf(k Kind) int {
	for d, lv := range t.levels {
		if lv[0].Kind == k {
			return d
		}
	}
	return -1
}

// Arity returns the number of children of the first object at the given
// depth. On uneven topologies siblings at a level may differ; callers that
// need a balanced tree (TreeMatch) verify that separately. The PU level has
// arity 0.
func (t *Topology) Arity(depth int) int {
	if depth < 0 || depth >= len(t.levels) {
		return 0
	}
	return len(t.levels[depth][0].Children)
}

// Arities returns the arity of every level from the root down to (and
// including) the PU level, whose arity is 0. The slice has length Depth().
func (t *Topology) Arities() []int {
	a := make([]int, len(t.levels))
	for d := range t.levels {
		a[d] = t.Arity(d)
	}
	return a
}

// PUs returns the processing units in left-to-right order. The returned
// slice must not be modified.
func (t *Topology) PUs() []*Object { return t.pus }

// NumPUs returns the number of processing units.
func (t *Topology) NumPUs() int { return len(t.pus) }

// PU returns the i-th processing unit in left-to-right (logical) order.
func (t *Topology) PU(i int) *Object { return t.pus[i] }

// Cores returns the physical cores in left-to-right order.
func (t *Topology) Cores() []*Object { return t.cores }

// NumCores returns the number of physical cores.
func (t *Topology) NumCores() int { return len(t.cores) }

// NUMANodes returns the memory nodes in left-to-right order.
func (t *Topology) NUMANodes() []*Object { return t.numa }

// NumNUMANodes returns the number of memory nodes.
func (t *Topology) NumNUMANodes() int { return len(t.numa) }

// NUMANodeOf returns the memory node that is local to the given object, i.e.
// its nearest NUMANode ancestor. Every PU of a well-formed topology has one.
func (t *Topology) NUMANodeOf(o *Object) *Object { return o.Ancestor(NUMANode) }

// ClusterNodes returns the cluster nodes in left-to-right order, or an empty
// slice on a single-machine topology.
func (t *Topology) ClusterNodes() []*Object { return t.clusters }

// NumClusterNodes returns the number of cluster nodes; a topology without a
// cluster level is one machine and reports 1.
func (t *Topology) NumClusterNodes() int {
	if len(t.clusters) == 0 {
		return 1
	}
	return len(t.clusters)
}

// ClusterNodeOf returns the cluster node the object belongs to, or nil on a
// single-machine topology.
func (t *Topology) ClusterNodeOf(o *Object) *Object { return o.Ancestor(Cluster) }

// SameClusterNode reports whether both objects sit in the same shared-memory
// machine: always true on a single-machine topology, and true on a clustered
// one exactly when the objects share a Cluster ancestor.
func (t *Topology) SameClusterNode(a, b *Object) bool {
	if len(t.clusters) == 0 {
		return true
	}
	ca, cb := t.ClusterNodeOf(a), t.ClusterNodeOf(b)
	return ca != nil && ca == cb
}

// Racks returns the rack (switch-group) objects in left-to-right order, or
// an empty slice when the cluster fabric is flat (single switch) or the
// topology is one machine.
func (t *Topology) Racks() []*Object { return t.racks }

// NumRacks returns the number of racks; a topology without a rack level is a
// single-switch fabric and reports 0.
func (t *Topology) NumRacks() int { return len(t.racks) }

// RackOf returns the rack the object belongs to, or nil on a single-switch
// fabric.
func (t *Topology) RackOf(o *Object) *Object { return o.Ancestor(Rack) }

// SameRack reports whether two objects hang under the same top-of-rack
// switch: always true on a topology without a rack level (a flat fabric is
// one big rack), and true otherwise exactly when they share a Rack ancestor.
func (t *Topology) SameRack(a, b *Object) bool {
	if len(t.racks) == 0 {
		return true
	}
	ra, rb := t.RackOf(a), t.RackOf(b)
	return ra != nil && ra == rb
}

// Pods returns the pod (core-switch-group) objects in left-to-right order,
// or an empty slice when the fabric has at most two switch tiers.
func (t *Topology) Pods() []*Object { return t.pods }

// NumPods returns the number of pods; a topology without a pod level reports
// 0 (a two-tier or flatter fabric).
func (t *Topology) NumPods() int { return len(t.pods) }

// PodOf returns the pod the object belongs to, or nil on a fabric without a
// pod tier.
func (t *Topology) PodOf(o *Object) *Object { return o.Ancestor(Pod) }

// SamePod reports whether two objects hang under the same pod switch: always
// true on a topology without a pod level, and true otherwise exactly when
// they share a Pod ancestor.
func (t *Topology) SamePod(a, b *Object) bool {
	if len(t.pods) == 0 {
		return true
	}
	pa, pb := t.PodOf(a), t.PodOf(b)
	return pa != nil && pa == pb
}

// FabricLevels returns the per-level link objects of the cluster fabric,
// innermost tier first: the cluster nodes (whose Attr carries the NIC link),
// then the racks (ToR uplinks), then the pods (pod uplinks) — generically,
// every topology level from the cluster tier up to just below the machine
// root. A message between two cluster nodes traverses, at each level where
// their ancestors differ, both endpoint links of that level. Nil on a
// single-machine topology, and nil on a non-tree fabric (torus/dragonfly),
// whose links are per-edge rather than per-level — use FabricGraph there.
func (t *Topology) FabricLevels() [][]*Object {
	if t.fabric != nil {
		return nil
	}
	d := t.DepthOf(Cluster)
	if d < 0 {
		return nil
	}
	var out [][]*Object
	for ; d >= 1; d-- {
		out = append(out, t.levels[d])
	}
	return out
}

// SMT reports whether the topology has hyperthreading, i.e. cores with more
// than one PU.
func (t *Topology) SMT() bool {
	return len(t.cores) > 0 && len(t.cores[0].Children) > 1
}

// SMTWays returns the number of hyperthreads per core a consumer may rely
// on: the minimum fan-out over all cores (1 on a machine without
// hyperthreading). On uneven-SMT topologies (expressible via specs like
// "core:2 pu:2,1") reading only the first core would misreport capacity and
// let placement pair control threads onto hyperthreads that do not exist;
// the minimum guarantees every core really has that many threads.
func (t *Topology) SMTWays() int {
	ways := 0
	for _, c := range t.cores {
		if ways == 0 || len(c.Children) < ways {
			ways = len(c.Children)
		}
	}
	if ways < 1 {
		ways = 1
	}
	return ways
}

// LCA returns the lowest common ancestor of a and b. Both objects must
// belong to this topology.
func (t *Topology) LCA(a, b *Object) *Object {
	for a.Depth > b.Depth {
		a = a.Parent
	}
	for b.Depth > a.Depth {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// HopDistance returns the number of tree edges on the path between a and b:
// zero when a == b, and otherwise the sum of both objects' distances to
// their lowest common ancestor. This is the abstract distance TreeMatch
// minimizes.
func (t *Topology) HopDistance(a, b *Object) int {
	lca := t.LCA(a, b)
	return (a.Depth - lca.Depth) + (b.Depth - lca.Depth)
}

// SharedCache returns the innermost (largest-depth) cache object shared by
// both PUs, or nil when they share no cache (e.g. different packages).
func (t *Topology) SharedCache(a, b *Object) *Object {
	for cur := t.LCA(a, b); cur != nil; cur = cur.Parent {
		if cur.Kind.IsCache() {
			return cur
		}
	}
	return nil
}

// SameNUMANode reports whether both objects sit under the same memory node.
func (t *Topology) SameNUMANode(a, b *Object) bool {
	na, nb := t.NUMANodeOf(a), t.NUMANodeOf(b)
	return na != nil && na == nb
}

// Validate checks the structural invariants of the topology: kind-
// homogeneous levels, consistent parent/child links, correct depth and
// index numbering, a single Machine root, PU leaves, and at least one NUMA
// node. Arities may differ within a level (an uneven machine); consumers
// that require a balanced tree — TreeMatch — detect and reject that
// themselves. It returns nil when the topology is well formed. Topologies
// built by FromSpec always validate; the method exists so that hand-built
// or mutated trees can be checked in tests.
func (t *Topology) Validate() error {
	if t.root == nil {
		return fmt.Errorf("topology: nil root")
	}
	if t.root.Kind != Machine {
		return fmt.Errorf("topology: root kind is %v, want Machine", t.root.Kind)
	}
	if len(t.levels) == 0 || len(t.levels[0]) != 1 || t.levels[0][0] != t.root {
		return fmt.Errorf("topology: level 0 must contain exactly the root")
	}
	for d, lv := range t.levels {
		if len(lv) == 0 {
			return fmt.Errorf("topology: empty level %d", d)
		}
		kind := lv[0].Kind
		for i, o := range lv {
			if o.Kind != kind {
				return fmt.Errorf("topology: level %d is not homogeneous: %v vs %v", d, o.Kind, kind)
			}
			if o.Kind != PU && len(o.Children) == 0 {
				return fmt.Errorf("topology: %v at level %d has no children", o, d)
			}
			if o.Depth != d {
				return fmt.Errorf("topology: %v stored at level %d has depth %d", o, d, o.Depth)
			}
			if o.LevelIndex != i {
				return fmt.Errorf("topology: %v has level index %d, want %d", o, o.LevelIndex, i)
			}
			for j, c := range o.Children {
				if c.Parent != o {
					return fmt.Errorf("topology: child %v of %v has wrong parent", c, o)
				}
				if c.SiblingIndex != j {
					return fmt.Errorf("topology: child %v of %v has sibling index %d, want %d", c, o, c.SiblingIndex, j)
				}
			}
		}
	}
	last := t.levels[len(t.levels)-1]
	for _, o := range last {
		if o.Kind != PU {
			return fmt.Errorf("topology: leaf level contains %v, want PU", o.Kind)
		}
	}
	if len(t.numa) == 0 {
		return fmt.Errorf("topology: no NUMA node level")
	}
	if len(t.racks) > 0 && len(t.clusters) == 0 {
		return fmt.Errorf("topology: rack level without a cluster-node level below it")
	}
	if len(t.pods) > 0 && len(t.racks) == 0 {
		return fmt.Errorf("topology: pod level without a rack level below it")
	}
	if len(t.pus) != len(last) {
		return fmt.Errorf("topology: PU index lists %d PUs, leaf level has %d", len(t.pus), len(last))
	}
	return nil
}

// build assembles the Topology index structures from a fully linked root.
// The root must already have correct Kind/Children links; build fills in
// Depth, SiblingIndex, LevelIndex, OSIndex and the level tables.
func build(root *Object, spec string) *Topology {
	t := &Topology{root: root, spec: spec}
	level := []*Object{root}
	depth := 0
	for len(level) > 0 {
		var next []*Object
		for i, o := range level {
			o.Depth = depth
			o.LevelIndex = i
			if o.Kind != PU {
				o.OSIndex = -1
			}
			for j, c := range o.Children {
				c.Parent = o
				c.SiblingIndex = j
				next = append(next, c)
			}
		}
		t.levels = append(t.levels, level)
		level = next
		depth++
	}
	leaves := t.levels[len(t.levels)-1]
	t.pus = leaves
	for i, pu := range t.pus {
		pu.OSIndex = i
	}
	for _, lv := range t.levels {
		switch lv[0].Kind {
		case Core:
			t.cores = lv
		case NUMANode:
			t.numa = lv
		case Cluster:
			t.clusters = lv
		case Rack:
			t.racks = lv
		case Pod:
			t.pods = lv
		}
	}
	return t
}
