package placement

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/topology"
)

// FaultMode selects how the adaptive engine reacts to scheduled faults
// (AdaptiveOptions.Faults). All modes evacuate a dead node's tasks — there
// is no choice about that — but they differ in where the evacuees land and
// whether the engine keeps adapting afterwards.
type FaultMode int

const (
	// FaultAware (the zero value) places evacuees on the surviving node with
	// the cheapest modeled traffic to their live partners under the degraded
	// fabric, and keeps running the candidate loop, which now prices the
	// degraded fabric too.
	FaultAware FaultMode = iota
	// FaultBlind evacuates onto surviving capacity in node-index order —
	// first fit, no affinity — and keeps adapting, but its candidates price
	// with the same blind evacuation matcher.
	FaultBlind
	// FaultRespawn is the static-with-respawn baseline: evacuees are dealt
	// round-robin across the surviving nodes and the engine never runs the
	// candidate loop at all — forced evacuations are its only intervention.
	FaultRespawn
)

// AdaptiveOptions configures the epoch-based adaptive re-placement engine.
type AdaptiveOptions struct {
	// Base computes the initial mapping from the statically extracted
	// affinity matrix, exactly like Place. Defaults to TreeMatch{}.
	Base Policy
	// Candidate computes the per-epoch candidate mapping from the windowed
	// measured matrix. Defaults to Base, but the two may differ: on a
	// clustered platform, Hierarchical candidates re-run the full fabric
	// path (node partition, fabric-tree matching) on the observed window,
	// where flat TreeMatch candidates only re-group bottom-up — the A12
	// ablation isolates exactly that difference.
	Candidate Policy
	// EpochIters is the number of iterations between re-placement
	// decisions. Required (>= 1).
	EpochIters int
	// Hysteresis scales the modeled migration cost a candidate mapping must
	// beat before it is applied: the predicted per-epoch gain must exceed
	// Hysteresis × (migration penalty + region re-homing pulls). Higher
	// values mean calmer placement; 0 defaults to 1 (the candidate must
	// recoup the migration bill within one epoch).
	Hysteresis float64
	// WindowDecay is the comm.Window decay factor: 0 resets the observation
	// window every epoch, a factor in (0,1) keeps an exponentially decayed
	// memory of earlier epochs. Values outside [0,1) are rejected by
	// PlaceAdaptive.
	WindowDecay float64
	// FreeMigration applies every strictly improving candidate without
	// charging migration: the oracle configuration, an upper bound on what
	// adaptivity could gain. Never use it to report real results.
	FreeMigration bool
	// Faults schedules platform failures by 1-based epoch index: at each
	// matching epoch boundary the engine installs the events into the
	// machine's pricing (numasim.Machine.ApplyFaultEvents) and forcibly
	// evacuates every live task parked on a dead node before the ordinary
	// candidate flow runs. Nil — the default — changes nothing: no schedule
	// is installed and every existing path prices and decides bit-identically.
	Faults *topology.FaultSchedule
	// FaultMode selects the evacuation strategy and whether the engine keeps
	// adapting after a fault; the zero value is FaultAware.
	FaultMode FaultMode
}

// AdaptiveStats summarizes what the engine did over a run.
type AdaptiveStats struct {
	// Epochs is the number of re-placement decisions taken.
	Epochs int
	// Applied counts epochs whose candidate mapping was committed; Skipped
	// counts epochs where hysteresis (or a non-improving candidate) kept
	// the current mapping.
	Applied, Skipped int
	// Rebinds is the total number of task migrations committed.
	Rebinds int
	// IntraNodeRebinds counts the committed moves that stayed inside one
	// cluster node (every move, on a single machine); CrossNodeRebinds the
	// moves that crossed a cluster-node boundary and therefore dragged the
	// task's working set over the fabric; CrossRackRebinds the subset of
	// those that additionally crossed a rack (or pod) boundary and paid the
	// uplink path. Rebinds = IntraNodeRebinds + CrossNodeRebinds.
	IntraNodeRebinds, CrossNodeRebinds, CrossRackRebinds int
	// PredictedGainCycles and MigrationCostCycles accumulate the model's
	// side of every applied decision, for reporting.
	PredictedGainCycles float64
	// MigrationCostCycles is the total modeled price of the applied moves.
	MigrationCostCycles float64
	// FaultEpochs counts the epochs at which scheduled faults struck.
	FaultEpochs int
	// Evacuations counts the forced moves off dead nodes. They are included
	// in Rebinds and the move-class split, and they bypass hysteresis — a
	// dead node leaves no choice — so they are charged even in oracle
	// (FreeMigration) runs.
	Evacuations int
	// EvacuationCostCycles is the total modeled price of the evacuations.
	EvacuationCostCycles float64
}

// AdaptiveEngine is the feedback loop around a base placement policy: at
// every epoch boundary it recomputes a candidate mapping from the observed
// communication window and commits it only when the predicted gain clears
// the modeled migration cost. Create it with PlaceAdaptive.
type AdaptiveEngine struct {
	opts AdaptiveOptions
	rt   *orwl.Runtime
	mach *numasim.Machine

	// current mirrors the mapping actually in force, task ID → PU.
	current    []int
	currentCtl []int
	// migrateBytes[id] is the working set a task drags along when it moves:
	// the locations it writes (its data is homed next to it).
	migrateBytes []float64

	mu    sync.Mutex
	stats AdaptiveStats
	errs  []error
}

// PlaceAdaptive runs the full adaptive pipeline on an ORWL program: the
// base policy places the tasks from the statically extracted affinity
// matrix exactly like Place, and the runtime is configured so that every
// opts.EpochIters iterations the engine re-decides the placement from the
// measured communication window. Call before rt.Run; inspect the engine
// (Stats, Err, Assignment) after the run returns.
func PlaceAdaptive(rt *orwl.Runtime, opts AdaptiveOptions) (*AdaptiveEngine, error) {
	if rt.Machine() == nil {
		return nil, fmt.Errorf("placement: adaptive placement requires a machine")
	}
	if opts.EpochIters < 1 {
		return nil, fmt.Errorf("placement: adaptive EpochIters %d must be at least 1", opts.EpochIters)
	}
	if !(opts.WindowDecay >= 0 && opts.WindowDecay < 1) { // rejects NaN too
		return nil, fmt.Errorf("placement: adaptive WindowDecay %v outside [0,1)", opts.WindowDecay)
	}
	if opts.FaultMode < FaultAware || opts.FaultMode > FaultRespawn {
		return nil, fmt.Errorf("placement: unknown FaultMode %d", opts.FaultMode)
	}
	if opts.Faults != nil {
		if err := opts.Faults.Validate(rt.Machine().Topology()); err != nil {
			return nil, fmt.Errorf("placement: adaptive fault schedule: %w", err)
		}
	}
	if opts.Base == nil {
		opts.Base = TreeMatch{}
	}
	if opts.Candidate == nil {
		opts.Candidate = opts.Base
	}
	if opts.Hysteresis == 0 {
		opts.Hysteresis = 1
	}
	a, err := Place(rt, opts.Base)
	if err != nil {
		return nil, err
	}
	e := &AdaptiveEngine{
		opts:       opts,
		rt:         rt,
		mach:       rt.Machine(),
		current:    append([]int(nil), a.TaskPU...),
		currentCtl: append([]int(nil), a.ControlPU...),
	}
	e.migrateBytes = make([]float64, len(e.current))
	for _, t := range rt.Tasks() {
		for _, h := range t.Handles() {
			if h.Mode() == orwl.Write {
				e.migrateBytes[t.ID()] += float64(h.Location().Size())
			}
		}
	}
	if err := rt.ConfigureEpochs(opts.EpochIters, opts.WindowDecay, e.onEpoch); err != nil {
		return nil, err
	}
	return e, nil
}

// onEpoch is the re-placement decision, run while the runtime is quiesced.
func (e *AdaptiveEngine) onEpoch(ep *orwl.Epoch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Epochs++
	if e.opts.Faults != nil {
		if events := e.opts.Faults.EventsAt(ep.Index()); len(events) > 0 {
			e.onFault(ep, events)
		}
	}
	if e.opts.FaultMode == FaultRespawn {
		// Static-with-respawn never adapts: the forced evacuations in
		// onFault are its only interventions.
		e.stats.Skipped++
		return
	}
	w := ep.Window()
	if w == nil || w.TotalVolume() == 0 {
		e.stats.Skipped++
		return
	}
	cand, err := e.opts.Candidate.Assign(e.mach, w)
	if err != nil {
		e.errs = append(e.errs, fmt.Errorf("epoch %d: %w", ep.Index(), err))
		e.stats.Skipped++
		return
	}
	// Only the tasks parked at the barrier can move; a finished task's slot
	// neither costs a migration nor changes, so the candidate keeps its
	// current PU there (otherwise phantom moves of dead tasks would inflate
	// the hysteresis threshold and block profitable live moves).
	live := ep.Tasks()
	isLive := make([]bool, len(cand.TaskPU))
	for _, t := range live {
		isLive[t.ID()] = true
	}
	for id := range cand.TaskPU {
		if !isLive[id] {
			cand.TaskPU[id] = e.current[id]
		}
	}
	// Candidate policies place onto the full platform — they know nothing
	// about failures — so rewrite any slot landing on a dead node onto
	// surviving capacity before the candidate is anchored or priced: an
	// unreachable endpoint prices to +Inf and would wedge the gain
	// comparison. A no-op until a kill event has struck.
	e.patchDeadSlots(cand, live, w)
	e.anchorCandidate(cand, w, isLive)
	gain := MappingCost(e.mach, w, e.current) - MappingCost(e.mach, w, cand.TaskPU)
	var migCost float64
	for id, pu := range cand.TaskPU {
		// An unbound candidate slot (pu < 0) is never applied — the apply
		// loop below skips it with the same guard — so it costs nothing
		// here either; pricing it would index the PU tables with -1.
		if pu >= 0 && pu != e.current[id] {
			migCost += e.mach.MigrationCostCycles(e.current[id], pu, e.migrateBytes[id])
		}
		// Control-thread rebinds are applied below, so they must be priced
		// here too: a control thread carries no working set, but the OS
		// still pays the migration penalty to move it. Summing only the
		// computation-thread moves underpriced candidates that shuffle many
		// control threads.
		if isLive[id] && cand.ControlPU[id] != e.currentCtl[id] {
			migCost += e.mach.Config().MigrationPenaltyCycles
		}
	}
	threshold := e.opts.Hysteresis * migCost
	if e.opts.FreeMigration {
		threshold = 0
	}
	if gain <= threshold {
		e.stats.Skipped++
		return
	}
	// Delta-apply: only the tasks whose slot changed move; everyone else
	// keeps its warm caches and local data.
	for _, t := range live {
		id := t.ID()
		if pu := cand.TaskPU[id]; pu >= 0 && pu != e.current[id] {
			from := e.current[id]
			var err error
			if e.opts.FreeMigration {
				err = ep.RebindFree(t, pu)
			} else {
				err = ep.Rebind(t, pu)
			}
			if err != nil {
				e.errs = append(e.errs, fmt.Errorf("epoch %d: rebind %s: %w", ep.Index(), t, err))
				continue
			}
			e.current[id] = pu
			e.stats.Rebinds++
			// Classify the move by the fabric levels it crossed: an
			// intra-node move re-homes through shared memory, a cross-node
			// move drags the working set over the NIC links, and a
			// cross-rack (or cross-pod) move additionally pays the uplink
			// path — the distinction the fabric-priced hysteresis weighed.
			e.classifyMove(from, pu)
		}
		if ctl := cand.ControlPU[id]; ctl != e.currentCtl[id] {
			if err := ep.RebindControl(t, ctl); err != nil {
				e.errs = append(e.errs, fmt.Errorf("epoch %d: rebind control %s: %w", ep.Index(), t, err))
				continue
			}
			e.currentCtl[id] = ctl
		}
	}
	e.stats.Applied++
	e.stats.PredictedGainCycles += gain
	e.stats.MigrationCostCycles += migCost
	// The committed mapping changed where the crossing streams run, so the
	// per-link fabric contention declared before the run is stale: re-derive
	// it from the new layout and the traffic the engine just acted on. The
	// per-NUMA-node accessor side (SetContention) needs no refresh — it
	// charges the machine-wide average pressure, which depends only on the
	// heavy-task and unbound counts, both unchanged by re-binding bound
	// tasks. A no-op on single-machine topologies (NumFabricLevels is 0
	// there), which keeps the A8 results bit-stable.
	if e.mach.NumFabricLevels() > 0 || e.mach.FabricGraph() != nil {
		SetFabricContention(e.mach, e.assignmentLocked(), w)
	}
}

// classifyMove counts one committed move in the fabric-level split. A
// previously unbound task (from < 0, e.g. a NoBind base) counts as leaving
// cluster node 0, matching how MigrationCostCycles prices that move (a
// node-0 pull).
func (e *AdaptiveEngine) classifyMove(from, to int) {
	fromC := 0
	if from >= 0 {
		fromC = e.mach.ClusterNodeOfPU(from)
	}
	switch toC := e.mach.ClusterNodeOfPU(to); {
	case fromC == toC:
		e.stats.IntraNodeRebinds++
	case e.mach.SameRack(fromC, toC):
		e.stats.CrossNodeRebinds++
	default:
		e.stats.CrossNodeRebinds++
		e.stats.CrossRackRebinds++
	}
}

// windowOrMatrix returns the epoch's observed window, falling back to the
// statically extracted matrix when nothing has been observed yet — a fault
// at the very first epoch still needs affinities to steer the evacuation.
func (e *AdaptiveEngine) windowOrMatrix(ep *orwl.Epoch) *comm.Matrix {
	if w := ep.Window(); w != nil && w.TotalVolume() > 0 {
		return w
	}
	return e.rt.CommMatrix()
}

// onFault installs one epoch's fault events into the machine's pricing and
// forcibly evacuates every live task parked on a node that just died. The
// evacuation bypasses hysteresis — a dead node leaves no choice — and is
// charged even under FreeMigration. Runs while the runtime is quiesced (the
// epoch barrier), which is what licenses writing the machine's fault state.
func (e *AdaptiveEngine) onFault(ep *orwl.Epoch, events []topology.FaultEvent) {
	e.stats.FaultEpochs++
	if err := e.mach.ApplyFaultEvents(events); err != nil {
		e.errs = append(e.errs, fmt.Errorf("epoch %d: fault: %w", ep.Index(), err))
		return
	}
	live := ep.Tasks()
	var evac []*orwl.Task
	for _, t := range live {
		if pu := e.current[t.ID()]; pu >= 0 && e.mach.ClusterNodeDead(e.mach.ClusterNodeOfPU(pu)) {
			evac = append(evac, t)
		}
	}
	if len(evac) > 0 {
		w := e.windowOrMatrix(ep)
		ids := make([]int, len(evac))
		for i, t := range evac {
			ids[i] = t.ID()
		}
		targets, err := e.survivorSlots(ids, e.current, live, w)
		if err != nil {
			e.errs = append(e.errs, fmt.Errorf("epoch %d: evacuate: %w", ep.Index(), err))
			return
		}
		for i, t := range evac {
			id, pu := ids[i], targets[i]
			from := e.current[id]
			cost := e.mach.MigrationCostCycles(from, pu, e.migrateBytes[id])
			if err := ep.Rebind(t, pu); err != nil {
				e.errs = append(e.errs, fmt.Errorf("epoch %d: evacuate %s: %w", ep.Index(), t, err))
				continue
			}
			e.current[id] = pu
			e.stats.Rebinds++
			e.stats.Evacuations++
			e.stats.EvacuationCostCycles += cost
			e.stats.MigrationCostCycles += cost
			e.classifyMove(from, pu)
			// The control thread follows its task off the dead node: onto the
			// new core's second hyperthread when it has one, else the task's
			// own PU.
			if ctl := e.currentCtl[id]; ctl >= 0 && e.mach.ClusterNodeDead(e.mach.ClusterNodeOfPU(ctl)) {
				nctl := siblingPU(e.mach.Topology(), pu)
				if err := ep.RebindControl(t, nctl); err != nil {
					e.errs = append(e.errs, fmt.Errorf("epoch %d: rebind control %s: %w", ep.Index(), t, err))
				} else {
					e.currentCtl[id] = nctl
				}
			}
		}
	}
	// The failure changed both the path prices (degraded edges) and where
	// the crossing streams run (evacuees), so the declared fabric contention
	// is stale for every mode — the arms differ in placement decisions, not
	// in pricing honesty.
	if e.mach.NumFabricLevels() > 0 || e.mach.FabricGraph() != nil {
		SetFabricContention(e.mach, e.assignmentLocked(), e.windowOrMatrix(ep))
	}
}

// patchDeadSlots rewrites candidate slots that landed on dead cluster nodes
// onto surviving capacity, via the same matcher the forced evacuation uses.
// Control slots parked on dead nodes follow their task. A no-op before any
// kill event.
func (e *AdaptiveEngine) patchDeadSlots(cand *Assignment, live []*orwl.Task, w *comm.Matrix) {
	if !e.mach.AnyDeadClusterNode() {
		return
	}
	var ids []int
	for _, t := range live {
		id := t.ID()
		if pu := cand.TaskPU[id]; pu >= 0 && e.mach.ClusterNodeDead(e.mach.ClusterNodeOfPU(pu)) {
			ids = append(ids, id)
		}
	}
	if len(ids) > 0 {
		slots, err := e.survivorSlots(ids, cand.TaskPU, live, w)
		if err != nil {
			// Fall back to the mapping in force, which is alive post-evacuation.
			for _, id := range ids {
				cand.TaskPU[id] = e.current[id]
			}
		} else {
			for i, id := range ids {
				cand.TaskPU[id] = slots[i]
			}
		}
	}
	for _, t := range live {
		id := t.ID()
		if ctl := cand.ControlPU[id]; ctl >= 0 && e.mach.ClusterNodeDead(e.mach.ClusterNodeOfPU(ctl)) {
			if pu := cand.TaskPU[id]; pu >= 0 {
				cand.ControlPU[id] = siblingPU(e.mach.Topology(), pu)
			} else {
				cand.ControlPU[id] = -1
			}
		}
	}
}

// survivorSlots picks a surviving PU for each of the given task ids,
// deterministically and invariant-preserving by construction: no slot on a
// dead node, and no PU loaded past ceil(live tasks / surviving PUs),
// counting the other live tasks' slots in taskPU. The node preference order
// is the FaultMode's:
//
//   - FaultAware keeps the group together on the surviving node with the
//     cheapest modeled traffic to the group's live outside partners under
//     the degraded fabric (ties: more free capacity, then lower index),
//     filling it up to the balance bound and spilling to the next;
//   - FaultBlind fills surviving nodes in index order;
//   - FaultRespawn deals the tasks round-robin across the surviving nodes.
func (e *AdaptiveEngine) survivorSlots(ids []int, taskPU []int, live []*orwl.Task, w *comm.Matrix) ([]int, error) {
	topo := e.mach.Topology()
	numC := topo.NumClusterNodes()
	if numC == 0 {
		numC = 1
	}
	// Candidate PUs per surviving node: every core's first hyperthread
	// first, so evacuees take whole cores before doubling up on siblings.
	puOrder := make([][]int, numC)
	for pass := 0; pass < 2; pass++ {
		for core := 0; core < topo.NumCores(); core++ {
			var pu int
			if pass == 0 {
				pu = firstPU(topo, core)
			} else if pu = secondPU(topo, core); pu < 0 {
				continue
			}
			if c := e.mach.ClusterNodeOfPU(pu); !e.mach.ClusterNodeDead(c) {
				puOrder[c] = append(puOrder[c], pu)
			}
		}
	}
	var aliveNodes []int
	alivePUs := 0
	for c := 0; c < numC; c++ {
		if len(puOrder[c]) > 0 {
			aliveNodes = append(aliveNodes, c)
			alivePUs += len(puOrder[c])
		}
	}
	if alivePUs == 0 {
		return nil, fmt.Errorf("placement: no surviving capacity to evacuate %d tasks into", len(ids))
	}
	inSet := make(map[int]bool, len(ids))
	for _, id := range ids {
		inSet[id] = true
	}
	load := make(map[int]int)
	liveCount := 0
	for _, t := range live {
		liveCount++
		if id := t.ID(); !inSet[id] && taskPU[id] >= 0 {
			load[taskPU[id]]++
		}
	}
	capPerPU := (liveCount + alivePUs - 1) / alivePUs
	if capPerPU < 1 {
		capPerPU = 1
	}
	// pick takes the first under-bound PU in the node preference order,
	// escalating the bound only when every candidate is full (possible only
	// when the platform was already oversubscribed past the balance bound).
	pick := func(order []int) int {
		for bound := capPerPU; ; bound++ {
			for _, c := range order {
				for _, pu := range puOrder[c] {
					if load[pu] < bound {
						load[pu]++
						return pu
					}
				}
			}
		}
	}
	out := make([]int, len(ids))
	if e.opts.FaultMode == FaultRespawn {
		for i := range ids {
			k := i % len(aliveNodes)
			rot := append(append([]int(nil), aliveNodes[k:]...), aliveNodes[:k]...)
			out[i] = pick(rot)
		}
		return out, nil
	}
	order := aliveNodes
	if e.opts.FaultMode == FaultAware {
		// Score each surviving node by the modeled cost of the evacuated
		// group's traffic to its live outside partners, as seen from that
		// node — the degraded fabric prices included.
		type scored struct {
			c    int
			cost float64
			free int
		}
		sc := make([]scored, len(aliveNodes))
		for i, c := range aliveNodes {
			rep := puOrder[c][0]
			var cost float64
			for _, id := range ids {
				for _, t := range live {
					j := t.ID()
					if inSet[j] {
						continue
					}
					if vol := w.At(id, j) + w.At(j, id); vol != 0 && taskPU[j] != rep {
						cost += e.mach.TransferCost(rep, taskPU[j], vol)
					}
				}
			}
			free := 0
			for _, pu := range puOrder[c] {
				if load[pu] < capPerPU {
					free += capPerPU - load[pu]
				}
			}
			sc[i] = scored{c, cost, free}
		}
		sort.Slice(sc, func(a, b int) bool {
			if sc[a].cost != sc[b].cost {
				return sc[a].cost < sc[b].cost
			}
			if sc[a].free != sc[b].free {
				return sc[a].free > sc[b].free
			}
			return sc[a].c < sc[b].c
		})
		order = make([]int, len(sc))
		for i, s := range sc {
			order[i] = s.c
		}
	}
	for i := range ids {
		out[i] = pick(order)
	}
	return out, nil
}

// siblingPU returns the second hyperthread of pu's core when the core has
// one, else pu itself — where an evacuated task's control thread lands.
func siblingPU(topo *topology.Topology, pu int) int {
	core := topo.PU(pu).Ancestor(topology.Core).LevelIndex
	if s := secondPU(topo, core); s >= 0 && s != pu {
		return s
	}
	return pu
}

// anchorCandidate canonicalizes a candidate mapping against the mapping in
// force. A candidate is computed from scratch each epoch, so it freely
// relabels cost-symmetric slots — swapping two tasks inside one cluster
// node, or parking a task on an equivalent sibling core — and each such
// relabeling would otherwise be committed as a real migration (inflating
// IntraNodeRebinds and the hysteresis bill) while buying nothing. Two
// exact-zero rewrites run to a fixpoint in deterministic task order: a pair
// of live tasks whose candidate slots are each other's current slots on one
// node is swapped back, and a task moved within its node whose current slot
// is unoccupied in the candidate is parked back — in both cases only when
// the modeled communication cost of the rewrite is exactly zero. Control
// PUs follow their slots, so an anchored slot triggers no control rebind
// either.
func (e *AdaptiveEngine) anchorCandidate(cand *Assignment, w *comm.Matrix, isLive []bool) {
	n := len(cand.TaskPU)
	if len(e.current) < n {
		n = len(e.current)
	}
	if len(cand.ControlPU) < n || len(e.currentCtl) < n {
		return
	}
	// taskCost prices task i at pu against every partner's candidate slot.
	taskCost := func(i, pu int) float64 {
		var s float64
		for j := 0; j < w.Order() && j < n; j++ {
			if j == i {
				continue
			}
			if vol := w.At(i, j) + w.At(j, i); vol != 0 {
				s += e.mach.TransferCost(pu, cand.TaskPU[j], vol)
			}
		}
		return s
	}
	// Wholesale rule first: the per-node Algorithm 1 stage recomputes each
	// node's internal arrangement from scratch, so a node's candidate slots
	// are often a many-task permutation of its current ones (not just a
	// transposition). Revert each node's within-node moves as one block when
	// the full mapping cost is bit-identical either way and no task from
	// another node claimed one of the freed slots.
	byNode := map[int][]int{}
	maxNode := -1
	for i := 0; i < n; i++ {
		pi := cand.TaskPU[i]
		if !isLive[i] || pi < 0 || e.current[i] < 0 || pi == e.current[i] {
			continue
		}
		node := e.mach.ClusterNodeOfPU(pi)
		if node != e.mach.ClusterNodeOfPU(e.current[i]) {
			continue
		}
		byNode[node] = append(byNode[node], i)
		if node > maxNode {
			maxNode = node
		}
	}
	for node := 0; node <= maxNode; node++ {
		s := byNode[node]
		if len(s) == 0 {
			continue
		}
		inS := make(map[int]bool, len(s))
		for _, i := range s {
			inS[i] = true
		}
		blocked := false
		for k := 0; k < n && !blocked; k++ {
			if inS[k] {
				continue
			}
			for _, i := range s {
				if cand.TaskPU[k] == e.current[i] {
					blocked = true
					break
				}
			}
		}
		if blocked {
			continue
		}
		before := MappingCost(e.mach, w, cand.TaskPU)
		saved := make([]int, len(s))
		for si, i := range s {
			saved[si] = cand.TaskPU[i]
			cand.TaskPU[i] = e.current[i]
		}
		if MappingCost(e.mach, w, cand.TaskPU) != before {
			for si, i := range s {
				cand.TaskPU[i] = saved[si]
			}
			continue
		}
		for _, i := range s {
			cand.ControlPU[i] = e.currentCtl[i]
		}
	}
	// Every committed rewrite locks the anchored task, so the pass loop
	// strictly shrinks the mover set and terminates even on oversubscribed
	// machines, where tasks share PUs and an unbounded fixpoint could swap
	// the same shared slot back and forth forever.
	locked := make([]bool, n)
	for changed, pass := true, 0; changed && pass < n; pass++ {
		changed = false
		for i := 0; i < n; i++ {
			pi := cand.TaskPU[i]
			if locked[i] || !isLive[i] || pi < 0 || e.current[i] < 0 || pi == e.current[i] {
				continue
			}
			if e.mach.ClusterNodeOfPU(pi) != e.mach.ClusterNodeOfPU(e.current[i]) {
				continue
			}
			// Swap rule: whichever live task the candidate put on i's
			// current slot — a same-node sibling, or a task migrating in
			// from another node — takes i's candidate slot instead, so i
			// stays put. The incoming task pays its cross-node move either
			// way; only the spurious intra-node relabeling disappears.
			swapped := false
			for j := 0; j < n; j++ {
				if j == i || locked[j] || !isLive[j] || cand.TaskPU[j] != e.current[i] {
					continue
				}
				before := taskCost(i, pi) + taskCost(j, cand.TaskPU[j])
				cand.TaskPU[i], cand.TaskPU[j] = e.current[i], pi
				after := taskCost(i, cand.TaskPU[i]) + taskCost(j, cand.TaskPU[j])
				if after != before {
					cand.TaskPU[i], cand.TaskPU[j] = pi, e.current[i]
					continue
				}
				cand.ControlPU[i], cand.ControlPU[j] = cand.ControlPU[j], cand.ControlPU[i]
				locked[i] = true
				changed, swapped = true, true
				break
			}
			if swapped {
				continue
			}
			occupied := false
			for k := 0; k < n; k++ {
				if k != i && cand.TaskPU[k] == e.current[i] {
					occupied = true
					break
				}
			}
			if occupied || taskCost(i, e.current[i]) != taskCost(i, pi) {
				continue
			}
			cand.TaskPU[i] = e.current[i]
			cand.ControlPU[i] = e.currentCtl[i]
			locked[i] = true
			changed = true
		}
	}
}

// Stats returns a snapshot of the engine's decision counters.
func (e *AdaptiveEngine) Stats() AdaptiveStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Err joins every error the engine swallowed during epochs (a failing
// candidate computation skips the epoch rather than crashing the run).
func (e *AdaptiveEngine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return errors.Join(e.errs...)
}

// Assignment returns the mapping currently in force.
func (e *AdaptiveEngine) Assignment() *Assignment {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.assignmentLocked()
}

// assignmentLocked is Assignment without taking the engine lock, for use
// from inside the epoch hook (which already holds it).
func (e *AdaptiveEngine) assignmentLocked() *Assignment {
	name := "adaptive(" + e.opts.Candidate.Name() + ")"
	if e.opts.FreeMigration {
		name = "oracle(" + e.opts.Candidate.Name() + ")"
	}
	return &Assignment{
		Policy:       name,
		TaskPU:       append([]int(nil), e.current...),
		ControlPU:    append([]int(nil), e.currentCtl...),
		VirtualArity: 1,
	}
}

// MappingCost prices a task→PU mapping against a communication matrix: the
// sum, over every communicating pair, of the cost of moving their exchanged
// volume between their PUs. It is the objective the adaptive engine
// minimizes when comparing the current mapping with a candidate; only
// differences matter, so the omitted per-node contention effects cancel.
func MappingCost(mach *numasim.Machine, m *comm.Matrix, taskPU []int) float64 {
	var s float64
	for i := 0; i < m.Order(); i++ {
		for j := i + 1; j < m.Order(); j++ {
			vol := m.At(i, j) + m.At(j, i)
			if vol == 0 {
				continue
			}
			s += mach.TransferCost(taskPU[i], taskPU[j], vol)
		}
	}
	return s
}
