package main

import (
	"strings"
	"testing"
)

func TestRunSpecValidation(t *testing.T) {
	tests := []struct {
		name    string
		spec    string
		wantErr string
	}{
		{"paper machine", "pack:24 l3:1 core:8 pu:1", ""},
		{"cluster spec", "node:4 pack:2 core:8", ""},
		{"empty spec", "", "empty spec"},
		{"bad token", "pack=24", "not of the form"},
		{"unknown kind", "bogus:2", "unknown object kind"},
		{"bad count", "pack:zero", "invalid count"},
		{"out of order", "core:8 pack:24", "root-to-leaf order"},
		{"duplicate kind", "pack:2 pack:2", "appears twice"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.spec, false, &b)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid spec, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunGoldenOutput(t *testing.T) {
	var b strings.Builder
	if err := run("pack:2 l3:1 core:2 pu:1", true, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Machine (2 Package, 2 NUMANode, 2 L3, 4 Core, 4 PU)",
		"normalized spec: pack:2 numa:1 l3:1 core:2 pu:1",
		"NUMA distances (SLIT style, local = 10):",
		"  10  30",
		"  30  10",
		"PU-to-PU latency (cycles):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunClusterOutput(t *testing.T) {
	var b strings.Builder
	if err := run("node:2 pack:1 core:2", false, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 Cluster",
		"normalized spec: cluster:2 pack:1 numa:1 core:2 pu:1",
		"Cluster#0 (link",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTorusOutput is the golden render of a shaped fabric: the
// normalized spec keeps its shape token, and the routed fabric graph
// section reports the routing discipline, the edge classes and a worked
// route.
func TestRunTorusOutput(t *testing.T) {
	var b strings.Builder
	if err := run("torus:4x4 pack:1 core:2", false, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"normalized spec: torus:4x4 pack:1 numa:1 core:2 pu:1",
		"Fabric: torus 4x4 (16 nodes, 16 vertices, 32 edges)",
		"routing: dimension-order (shorter wrap direction, positive on ties)",
		"links x32:",
		"route 0 -> 15:",
		"(2 hops,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDragonflyOutput is the dragonfly counterpart: three edge classes
// (node links, router mesh, global links) and minimal routing.
func TestRunDragonflyOutput(t *testing.T) {
	var b strings.Builder
	if err := run("dragonfly:2,4,2 pack:1 core:2", false, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"normalized spec: dragonfly:2,4,2 pack:1 numa:1 core:2 pu:1",
		"Fabric: dragonfly groups=2 routers=4 nodes=2 (16 nodes, 24 vertices, 29 edges)",
		"routing: minimal (node, router, gateway, global link, router, node)",
		"links x16:",
		"links x12:",
		"links x1:",
		"route 0 -> 15:",
		"(4 hops,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTreeFabricHasNoFabricSection pins that tree fabrics do not grow
// the routed-graph section: their structure is already the rendered tree.
func TestRunTreeFabricHasNoFabricSection(t *testing.T) {
	var b strings.Builder
	if err := run("rack:2 node:2 pack:1 core:2", false, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "Fabric:") {
		t.Errorf("tree fabric rendered a Fabric section:\n%s", b.String())
	}
}

func TestRunLatencySuppressedOnLargeMachines(t *testing.T) {
	var b strings.Builder
	if err := run("pack:24 l3:1 core:8 pu:1", true, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "latency matrix suppressed") {
		t.Error("large machine should suppress the latency matrix")
	}
}
