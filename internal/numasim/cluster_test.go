package numasim

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func newTestCluster(t *testing.T, n int, nodeSpec string) *Cluster {
	t.Helper()
	c, err := NewCluster(n, nodeSpec, Fabric{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterShape(t *testing.T) {
	c := newTestCluster(t, 4, "pack:2 core:8")
	if c.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", c.Nodes())
	}
	fused := c.Machine()
	if got := fused.Topology().NumCores(); got != 64 {
		t.Fatalf("fused cores = %d, want 64", got)
	}
	for i := 0; i < c.Nodes(); i++ {
		if got := c.Node(i).Topology().NumCores(); got != 16 {
			t.Fatalf("member %d cores = %d, want 16", i, got)
		}
	}
	// PU ownership is contiguous per node, left to right.
	perNode := fused.Topology().NumPUs() / c.Nodes()
	for pu := 0; pu < fused.Topology().NumPUs(); pu++ {
		if got, want := c.NodeOfPU(pu), pu/perNode; got != want {
			t.Fatalf("NodeOfPU(%d) = %d, want %d", pu, got, want)
		}
	}
}

func TestClusterRejectsNestedClusterSpec(t *testing.T) {
	_, err := NewCluster(2, "cluster:2 core:4", Fabric{}, Config{})
	if err == nil || !strings.Contains(err.Error(), "cluster level") {
		t.Fatalf("nested cluster spec accepted: %v", err)
	}
}

func TestClusterFromSpec(t *testing.T) {
	c, err := ClusterFromSpec("node:2 pack:2 core:4", Fabric{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 2 || c.Machine().Topology().NumCores() != 16 {
		t.Fatalf("ClusterFromSpec shape: nodes=%d cores=%d", c.Nodes(), c.Machine().Topology().NumCores())
	}
	// A plain machine spec yields a single-node cluster.
	c, err = ClusterFromSpec("pack:2 core:4", Fabric{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 1 {
		t.Fatalf("single-machine spec: %d nodes, want 1", c.Nodes())
	}
}

// TestTransferCostCrossesFabric is the pricing contract of the tentpole: a
// handoff crossing a cluster-node boundary charges network cycles — at least
// the fabric's per-link latency on both links — and costs strictly more than
// the same handoff inside one node.
func TestTransferCostCrossesFabric(t *testing.T) {
	c := newTestCluster(t, 2, "pack:2 l3:1 core:4")
	m := c.Machine()
	perNode := m.Topology().NumPUs() / 2
	const bytes = 1 << 20

	sameNode := m.TransferCost(0, perNode-1, bytes) // cross-socket, same machine
	cross := m.TransferCost(0, perNode, bytes)      // across the fabric
	if cross <= sameNode {
		t.Fatalf("cross-node transfer (%.0f cycles) not more expensive than intra-node (%.0f)", cross, sameNode)
	}
	fabric := c.Fabric()
	if cross < 2*fabric.LinkLatencyCycles {
		t.Fatalf("cross-node transfer %.0f cycles cheaper than two link latencies (%.0f)", cross, 2*fabric.LinkLatencyCycles)
	}
	// Streaming time is bounded below by the link bandwidth.
	clock := m.ClockHz()
	if minStream := bytes / (fabric.LinkBandwidthBytesPerSec / clock); cross < minStream {
		t.Fatalf("cross-node transfer %.0f cycles faster than the link allows (%.0f)", cross, minStream)
	}
}

// TestMemAccessCrossesFabric: a region homed on another cluster node is
// streamed over the network, not the SMP interconnect.
func TestMemAccessCrossesFabric(t *testing.T) {
	c := newTestCluster(t, 2, "pack:1 l3:1 core:4")
	m := c.Machine()
	remoteNUMA := m.Topology().NumNUMANodes() - 1
	if m.ClusterNodeOfNode(0) == m.ClusterNodeOfNode(remoteNUMA) {
		t.Fatal("test setup: NUMA nodes 0 and last should be on different cluster nodes")
	}
	local, err := m.AllocOn("local", 1<<22, 0)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := m.AllocOn("remote", 1<<22, remoteNUMA)
	if err != nil {
		t.Fatal(err)
	}
	pLocal, err := m.NewProc("l", 0)
	if err != nil {
		t.Fatal(err)
	}
	pRemote, err := m.NewProc("r", 1)
	if err != nil {
		t.Fatal(err)
	}
	pLocal.MemRead(local, 1<<20)
	pRemote.MemRead(remote, 1<<20)
	if pRemote.Clock() <= pLocal.Clock() {
		t.Fatalf("cross-fabric read (%.0f cycles) not slower than local (%.0f)", pRemote.Clock(), pLocal.Clock())
	}
}

// TestMigrationCostCrossesFabric: the adaptive engine's hysteresis input
// must price an inter-node migration (working-set transfer over the fabric)
// above an equivalent intra-node migration.
func TestMigrationCostCrossesFabric(t *testing.T) {
	c := newTestCluster(t, 2, "pack:2 l3:1 core:4")
	m := c.Machine()
	perNode := m.Topology().NumPUs() / 2
	const ws = 8 << 20
	intra := m.MigrationCostCycles(0, perNode-1, ws) // cross-socket, same machine
	inter := m.MigrationCostCycles(0, perNode, ws)   // across the fabric
	if inter <= intra {
		t.Fatalf("inter-node migration (%.0f cycles) not more expensive than intra-node (%.0f)", inter, intra)
	}
}

// TestFabricParametersBite: halving the link bandwidth raises the cross-node
// transfer cost; the intra-node cost is untouched.
func TestFabricParametersBite(t *testing.T) {
	fast, err := NewCluster(2, "pack:1 core:4", Fabric{LinkBandwidthBytesPerSec: 8e9}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewCluster(2, "pack:1 core:4", Fabric{LinkBandwidthBytesPerSec: 1e9}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	perNode := fast.Machine().Topology().NumPUs() / 2
	const bytes = 16 << 20
	if f, s := fast.Machine().TransferCost(0, perNode, bytes), slow.Machine().TransferCost(0, perNode, bytes); s <= f {
		t.Fatalf("slower link not more expensive: fast=%.0f slow=%.0f", f, s)
	}
	if f, s := fast.Machine().TransferCost(0, 1, bytes), slow.Machine().TransferCost(0, 1, bytes); s != f {
		t.Fatalf("intra-node transfer affected by fabric bandwidth: fast=%.0f slow=%.0f", f, s)
	}
}

// TestSingleMachineUnaffected: a machine without a cluster level prices
// exactly as before (cluster-node index 0 everywhere, no fabric terms).
func TestSingleMachineUnaffected(t *testing.T) {
	topo, err := topology.FromSpec("pack:2 l3:1 core:4")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for pu := 0; pu < topo.NumPUs(); pu++ {
		if m.ClusterNodeOfPU(pu) != 0 {
			t.Fatalf("PU %d on cluster node %d, want 0", pu, m.ClusterNodeOfPU(pu))
		}
	}
}
