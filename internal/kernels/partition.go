package kernels

import "fmt"

// Partition describes the decomposition of a Rows×Cols grid into a BX×BY
// grid of rectangular blocks, the unit of work of the paper's ORWL
// implementation (one main operation plus eight frontier operations per
// block). Rows are divided as evenly as possible among the BY block rows,
// columns among the BX block columns; earlier blocks absorb the remainder.
type Partition struct {
	Rows, Cols int
	BX, BY     int
}

// NewPartition validates and builds a partition. Every block must contain
// at least one cell.
func NewPartition(rows, cols, bx, by int) (Partition, error) {
	p := Partition{Rows: rows, Cols: cols, BX: bx, BY: by}
	if rows <= 0 || cols <= 0 {
		return p, fmt.Errorf("kernels: grid %dx%d must be positive", rows, cols)
	}
	if bx <= 0 || by <= 0 {
		return p, fmt.Errorf("kernels: block grid %dx%d must be positive", bx, by)
	}
	if bx > cols || by > rows {
		return p, fmt.Errorf("kernels: block grid %dx%d exceeds cells %dx%d", bx, by, cols, rows)
	}
	return p, nil
}

// Blocks returns the number of blocks, BX·BY.
func (p Partition) Blocks() int { return p.BX * p.BY }

// Block is one rectangle of a partition: H rows starting at R0, W columns
// starting at C0 (all in global grid coordinates).
type Block struct {
	R0, C0 int
	H, W   int
}

// Cells returns the number of cells in the block.
func (b Block) Cells() int { return b.H * b.W }

// Block returns the rectangle of block column x, block row y.
func (p Partition) Block(x, y int) Block {
	return Block{
		R0: spanStart(p.Rows, p.BY, y),
		C0: spanStart(p.Cols, p.BX, x),
		H:  spanLen(p.Rows, p.BY, y),
		W:  spanLen(p.Cols, p.BX, x),
	}
}

// spanStart returns the first index of the i-th of n near-equal spans of
// total elements; spanLen the span's length. The first total%n spans are
// one element longer.
func spanStart(total, n, i int) int {
	base, rem := total/n, total%n
	if i < rem {
		return i * (base + 1)
	}
	return rem*(base+1) + (i-rem)*base
}

func spanLen(total, n, i int) int {
	if i < total%n {
		return total/n + 1
	}
	return total / n
}
