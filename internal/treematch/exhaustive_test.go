package treematch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
)

func TestGroupProcessesOptFindsPlantedPairs(t *testing.T) {
	// Planted optimum: heavy pairs (0,3), (1,4), (2,5) under light noise.
	m := comm.New(6)
	m.AddSym(0, 3, 100)
	m.AddSym(1, 4, 100)
	m.AddSym(2, 5, 100)
	m.AddSym(0, 1, 1)
	m.AddSym(3, 5, 2)
	groups := GroupProcessesOpt(m, 2)
	want := map[[2]int]bool{{0, 3}: true, {1, 4}: true, {2, 5}: true}
	for _, g := range groups {
		if len(g) != 2 || !want[[2]int{g[0], g[1]}] {
			t.Fatalf("optimal groups = %v, want the planted pairs", groups)
		}
	}
	if q := GroupQuality(m, groups); q < 0.98 {
		t.Errorf("quality = %v, want ~1 (noise only)", q)
	}
}

// TestGreedyNearOptimal measures the heuristic against the exhaustive
// optimum on random instances: the greedy+refine partition must retain at
// least 85% of the optimal intra-group volume (it usually retains ~100%).
func TestGreedyNearOptimal(t *testing.T) {
	f := func(seed int64, aSel uint8) bool {
		a := []int{2, 3, 4}[int(aSel)%3]
		p := a * (ExhaustiveLimit / a) // <= ExhaustiveLimit
		m := comm.Random(p, 0.7, 100, seed)
		opt := intraVolume(m, GroupProcessesOpt(m, a))
		heu := intraVolume(m, GroupProcesses(m, a, 2))
		if opt == 0 {
			return heu == 0
		}
		if heu > opt+1e-9 {
			return false // "optimal" beaten: the search is broken
		}
		return heu >= 0.85*opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

func TestGroupProcessesOptDegenerateShapes(t *testing.T) {
	m := comm.Random(6, 0.5, 10, 1)
	// a == 1: singletons.
	groups := GroupProcessesOpt(m, 1)
	if len(groups) != 6 {
		t.Errorf("a=1 groups = %v", groups)
	}
	// a == p: one group.
	groups = GroupProcessesOpt(m, 6)
	if len(groups) != 1 || len(groups[0]) != 6 {
		t.Errorf("a=p groups = %v", groups)
	}
}

func TestGroupProcessesOptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for non-dividing arity")
		}
	}()
	GroupProcessesOpt(comm.New(5), 2)
}

func TestGroupQualityBounds(t *testing.T) {
	m := comm.AllToAll(4, 10)
	all := [][]int{{0, 1, 2, 3}}
	if q := GroupQuality(m, all); q != 1 {
		t.Errorf("single-group quality = %v, want 1", q)
	}
	singletons := [][]int{{0}, {1}, {2}, {3}}
	if q := GroupQuality(m, singletons); q != 0 {
		t.Errorf("singleton quality = %v, want 0", q)
	}
	if q := GroupQuality(comm.New(3), [][]int{{0, 1, 2}}); q != 1 {
		t.Errorf("zero-volume quality = %v, want 1", q)
	}
}

func BenchmarkGroupProcessesGreedy(b *testing.B) {
	m := comm.Random(ExhaustiveLimit, 0.7, 100, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupProcesses(m, 3, 2)
	}
}

func BenchmarkGroupProcessesOpt(b *testing.B) {
	m := comm.Random(ExhaustiveLimit, 0.7, 100, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupProcessesOpt(m, 3)
	}
}
