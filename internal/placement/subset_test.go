package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/treematch"
)

// nodeCoreLists returns the core level indices of every cluster node, the
// free-slot view of an entirely empty machine.
func nodeCoreLists(mach *numasim.Machine) [][]int {
	topo := mach.Topology()
	out := make([][]int, topo.NumClusterNodes())
	for c, core := range topo.Cores() {
		cn := topo.ClusterNodeOf(core)
		for n, node := range topo.ClusterNodes() {
			if cn == node {
				out[n] = append(out[n], c)
				break
			}
		}
	}
	return out
}

func subsetMachine(t *testing.T, spec string) *numasim.Machine {
	t.Helper()
	plat, err := numasim.NewPlatform(spec, numasim.Config{})
	if err != nil {
		t.Fatalf("platform %q: %v", spec, err)
	}
	return plat.Machine()
}

// TestAssignFreeSlotsRespectsSubset: tasks land only on the offered slots,
// each slot at most once.
func TestAssignFreeSlotsRespectsSubset(t *testing.T) {
	mach := subsetMachine(t, "rack:2 node:2 pack:1 core:4 pu:1")
	topo := mach.Topology()
	all := nodeCoreLists(mach)

	// Only nodes 2 and 3 (rack 1) offer slots, and node 2 only half its cores.
	free := make([][]int, len(all))
	free[2] = all[2][:2]
	free[3] = all[3]

	m := comm.Stencil2D(3, 2, 64, 8)
	a, err := AssignFreeSlots(mach, m, free, treematch.Options{})
	if err != nil {
		t.Fatalf("AssignFreeSlots: %v", err)
	}
	allowed := map[int]bool{}
	for _, c := range append(append([]int{}, free[2]...), free[3]...) {
		allowed[topo.Cores()[c].Children[0].OSIndex] = true
	}
	used := map[int]bool{}
	for task, pu := range a.TaskPU {
		if !allowed[pu] {
			t.Fatalf("task %d placed on PU %d outside the free slots", task, pu)
		}
		if used[pu] {
			t.Fatalf("PU %d used twice", pu)
		}
		used[pu] = true
	}
}

// TestAssignFreeSlotsAffinity: with exactly two free cores on each of two
// nodes and two heavy pairs, each pair shares a node — the cross-node cut
// carries only the light coupling.
func TestAssignFreeSlotsAffinity(t *testing.T) {
	mach := subsetMachine(t, "cluster:4 pack:1 core:4 pu:1")
	all := nodeCoreLists(mach)

	free := make([][]int, len(all))
	free[1] = all[1][1:3]
	free[3] = all[3][2:]

	// Tasks 0-1 and 2-3 are the heavy pairs; pairs couple lightly.
	m := comm.New(4)
	m.AddSym(0, 1, 1000)
	m.AddSym(2, 3, 1000)
	m.AddSym(1, 2, 1)

	a, err := AssignFreeSlots(mach, m, free, treematch.Options{})
	if err != nil {
		t.Fatalf("AssignFreeSlots: %v", err)
	}
	node := func(task int) int {
		return mach.ClusterNodeOfPU(a.TaskPU[task])
	}
	if node(0) != node(1) || node(2) != node(3) {
		t.Fatalf("heavy pairs split across nodes: %v -> nodes %d %d %d %d",
			a.TaskPU, node(0), node(1), node(2), node(3))
	}
	if node(0) == node(2) {
		t.Fatalf("both pairs on node %d despite 2-core capacity", node(0))
	}
}

// TestAssignFreeSlotsSingleNodeFragmented: a job mapped inside one node onto
// a non-contiguous slot set stays on exactly those cores.
func TestAssignFreeSlotsSingleNodeFragmented(t *testing.T) {
	mach := subsetMachine(t, "cluster:2 pack:2 core:4 pu:1")
	topo := mach.Topology()
	all := nodeCoreLists(mach)

	free := make([][]int, len(all))
	free[0] = []int{all[0][0], all[0][2], all[0][5], all[0][7]}

	m := comm.Ring(3, 100)
	a, err := AssignFreeSlots(mach, m, free, treematch.Options{})
	if err != nil {
		t.Fatalf("AssignFreeSlots: %v", err)
	}
	allowed := map[int]bool{}
	for _, c := range free[0] {
		allowed[topo.Cores()[c].Children[0].OSIndex] = true
	}
	for task, pu := range a.TaskPU {
		if !allowed[pu] {
			t.Fatalf("task %d on PU %d, outside fragment", task, pu)
		}
	}
}

func TestAssignFreeSlotsErrors(t *testing.T) {
	mach := subsetMachine(t, "cluster:2 pack:1 core:2 pu:1")
	all := nodeCoreLists(mach)

	cases := []struct {
		name string
		m    *comm.Matrix
		free [][]int
	}{
		{"too-many-tasks", comm.Ring(5, 1), [][]int{all[0], all[1]}},
		{"wrong-node", comm.Ring(2, 1), [][]int{all[1], nil}},
		{"duplicate-slot", comm.Ring(2, 1), [][]int{{all[0][0], all[0][0]}, nil}},
		{"short-view", comm.Ring(2, 1), [][]int{all[0]}},
		{"out-of-range", comm.Ring(2, 1), [][]int{{99}, nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AssignFreeSlots(mach, tc.m, tc.free, treematch.Options{}); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}
