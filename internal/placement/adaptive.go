package placement

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/orwl"
)

// AdaptiveOptions configures the epoch-based adaptive re-placement engine.
type AdaptiveOptions struct {
	// Base computes every candidate mapping: the initial one from the
	// statically extracted affinity matrix, and one per epoch from the
	// windowed measured matrix. Defaults to TreeMatch{}.
	Base Policy
	// EpochIters is the number of iterations between re-placement
	// decisions. Required (>= 1).
	EpochIters int
	// Hysteresis scales the modeled migration cost a candidate mapping must
	// beat before it is applied: the predicted per-epoch gain must exceed
	// Hysteresis × (migration penalty + region re-homing pulls). Higher
	// values mean calmer placement; 0 defaults to 1 (the candidate must
	// recoup the migration bill within one epoch).
	Hysteresis float64
	// WindowDecay is the comm.Window decay factor: 0 resets the observation
	// window every epoch, a factor in (0,1) keeps an exponentially decayed
	// memory of earlier epochs. Values outside [0,1) are rejected by
	// PlaceAdaptive.
	WindowDecay float64
	// FreeMigration applies every strictly improving candidate without
	// charging migration: the oracle configuration, an upper bound on what
	// adaptivity could gain. Never use it to report real results.
	FreeMigration bool
}

// AdaptiveStats summarizes what the engine did over a run.
type AdaptiveStats struct {
	// Epochs is the number of re-placement decisions taken.
	Epochs int
	// Applied counts epochs whose candidate mapping was committed; Skipped
	// counts epochs where hysteresis (or a non-improving candidate) kept
	// the current mapping.
	Applied, Skipped int
	// Rebinds is the total number of task migrations committed.
	Rebinds int
	// PredictedGainCycles and MigrationCostCycles accumulate the model's
	// side of every applied decision, for reporting.
	PredictedGainCycles float64
	// MigrationCostCycles is the total modeled price of the applied moves.
	MigrationCostCycles float64
}

// AdaptiveEngine is the feedback loop around a base placement policy: at
// every epoch boundary it recomputes a candidate mapping from the observed
// communication window and commits it only when the predicted gain clears
// the modeled migration cost. Create it with PlaceAdaptive.
type AdaptiveEngine struct {
	opts AdaptiveOptions
	rt   *orwl.Runtime
	mach *numasim.Machine

	// current mirrors the mapping actually in force, task ID → PU.
	current    []int
	currentCtl []int
	// migrateBytes[id] is the working set a task drags along when it moves:
	// the locations it writes (its data is homed next to it).
	migrateBytes []float64

	mu    sync.Mutex
	stats AdaptiveStats
	errs  []error
}

// PlaceAdaptive runs the full adaptive pipeline on an ORWL program: the
// base policy places the tasks from the statically extracted affinity
// matrix exactly like Place, and the runtime is configured so that every
// opts.EpochIters iterations the engine re-decides the placement from the
// measured communication window. Call before rt.Run; inspect the engine
// (Stats, Err, Assignment) after the run returns.
func PlaceAdaptive(rt *orwl.Runtime, opts AdaptiveOptions) (*AdaptiveEngine, error) {
	if rt.Machine() == nil {
		return nil, fmt.Errorf("placement: adaptive placement requires a machine")
	}
	if opts.EpochIters < 1 {
		return nil, fmt.Errorf("placement: adaptive EpochIters %d must be at least 1", opts.EpochIters)
	}
	if !(opts.WindowDecay >= 0 && opts.WindowDecay < 1) { // rejects NaN too
		return nil, fmt.Errorf("placement: adaptive WindowDecay %v outside [0,1)", opts.WindowDecay)
	}
	if opts.Base == nil {
		opts.Base = TreeMatch{}
	}
	if opts.Hysteresis == 0 {
		opts.Hysteresis = 1
	}
	a, err := Place(rt, opts.Base)
	if err != nil {
		return nil, err
	}
	e := &AdaptiveEngine{
		opts:       opts,
		rt:         rt,
		mach:       rt.Machine(),
		current:    append([]int(nil), a.TaskPU...),
		currentCtl: append([]int(nil), a.ControlPU...),
	}
	e.migrateBytes = make([]float64, len(e.current))
	for _, t := range rt.Tasks() {
		for _, h := range t.Handles() {
			if h.Mode() == orwl.Write {
				e.migrateBytes[t.ID()] += float64(h.Location().Size())
			}
		}
	}
	if err := rt.ConfigureEpochs(opts.EpochIters, opts.WindowDecay, e.onEpoch); err != nil {
		return nil, err
	}
	return e, nil
}

// onEpoch is the re-placement decision, run while the runtime is quiesced.
func (e *AdaptiveEngine) onEpoch(ep *orwl.Epoch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Epochs++
	w := ep.Window()
	if w == nil || w.TotalVolume() == 0 {
		e.stats.Skipped++
		return
	}
	cand, err := e.opts.Base.Assign(e.mach, w)
	if err != nil {
		e.errs = append(e.errs, fmt.Errorf("epoch %d: %w", ep.Index(), err))
		e.stats.Skipped++
		return
	}
	// Only the tasks parked at the barrier can move; a finished task's slot
	// neither costs a migration nor changes, so the candidate keeps its
	// current PU there (otherwise phantom moves of dead tasks would inflate
	// the hysteresis threshold and block profitable live moves).
	live := ep.Tasks()
	isLive := make([]bool, len(cand.TaskPU))
	for _, t := range live {
		isLive[t.ID()] = true
	}
	for id := range cand.TaskPU {
		if !isLive[id] {
			cand.TaskPU[id] = e.current[id]
		}
	}
	gain := MappingCost(e.mach, w, e.current) - MappingCost(e.mach, w, cand.TaskPU)
	var migCost float64
	for id, pu := range cand.TaskPU {
		if pu != e.current[id] {
			migCost += e.mach.MigrationCostCycles(e.current[id], pu, e.migrateBytes[id])
		}
		// Control-thread rebinds are applied below, so they must be priced
		// here too: a control thread carries no working set, but the OS
		// still pays the migration penalty to move it. Summing only the
		// computation-thread moves underpriced candidates that shuffle many
		// control threads.
		if isLive[id] && cand.ControlPU[id] != e.currentCtl[id] {
			migCost += e.mach.Config().MigrationPenaltyCycles
		}
	}
	threshold := e.opts.Hysteresis * migCost
	if e.opts.FreeMigration {
		threshold = 0
	}
	if gain <= threshold {
		e.stats.Skipped++
		return
	}
	// Delta-apply: only the tasks whose slot changed move; everyone else
	// keeps its warm caches and local data.
	for _, t := range live {
		id := t.ID()
		if pu := cand.TaskPU[id]; pu >= 0 && pu != e.current[id] {
			var err error
			if e.opts.FreeMigration {
				err = ep.RebindFree(t, pu)
			} else {
				err = ep.Rebind(t, pu)
			}
			if err != nil {
				e.errs = append(e.errs, fmt.Errorf("epoch %d: rebind %s: %w", ep.Index(), t, err))
				continue
			}
			e.current[id] = pu
			e.stats.Rebinds++
		}
		if ctl := cand.ControlPU[id]; ctl != e.currentCtl[id] {
			if err := ep.RebindControl(t, ctl); err != nil {
				e.errs = append(e.errs, fmt.Errorf("epoch %d: rebind control %s: %w", ep.Index(), t, err))
				continue
			}
			e.currentCtl[id] = ctl
		}
	}
	e.stats.Applied++
	e.stats.PredictedGainCycles += gain
	e.stats.MigrationCostCycles += migCost
}

// Stats returns a snapshot of the engine's decision counters.
func (e *AdaptiveEngine) Stats() AdaptiveStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Err joins every error the engine swallowed during epochs (a failing
// candidate computation skips the epoch rather than crashing the run).
func (e *AdaptiveEngine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return errors.Join(e.errs...)
}

// Assignment returns the mapping currently in force.
func (e *AdaptiveEngine) Assignment() *Assignment {
	e.mu.Lock()
	defer e.mu.Unlock()
	name := "adaptive(" + e.opts.Base.Name() + ")"
	if e.opts.FreeMigration {
		name = "oracle(" + e.opts.Base.Name() + ")"
	}
	return &Assignment{
		Policy:       name,
		TaskPU:       append([]int(nil), e.current...),
		ControlPU:    append([]int(nil), e.currentCtl...),
		VirtualArity: 1,
	}
}

// MappingCost prices a task→PU mapping against a communication matrix: the
// sum, over every communicating pair, of the cost of moving their exchanged
// volume between their PUs. It is the objective the adaptive engine
// minimizes when comparing the current mapping with a candidate; only
// differences matter, so the omitted per-node contention effects cancel.
func MappingCost(mach *numasim.Machine, m *comm.Matrix, taskPU []int) float64 {
	var s float64
	for i := 0; i < m.Order(); i++ {
		for j := i + 1; j < m.Order(); j++ {
			vol := m.At(i, j) + m.At(j, i)
			if vol == 0 {
				continue
			}
			s += mach.TransferCost(taskPU[i], taskPU[j], vol)
		}
	}
	return s
}
