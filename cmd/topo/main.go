// Command topo inspects a synthetic hardware topology: the tree, the
// NUMA distance table (SLIT style) and the PU-to-PU latency model.
//
//	topo -spec "pack:24 l3:1 core:8 pu:1"
//	topo -spec "pack:2 numa:2 core:4 pu:2" -latency
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	var (
		spec    = flag.String("spec", "pack:24 l3:1 core:8 pu:1", "topology spec")
		latency = flag.Bool("latency", false, "print the PU-to-PU latency matrix (small machines only)")
	)
	flag.Parse()

	topo, err := topology.FromSpec(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topo: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(topo)
	fmt.Printf("normalized spec: %s\n\n", topo.Spec())
	fmt.Print(topo.Render())

	fmt.Println("\nNUMA distances (SLIT style, local = 10):")
	for _, row := range topo.NUMADistanceMatrix() {
		for _, d := range row {
			fmt.Printf(" %3d", d)
		}
		fmt.Println()
	}

	if *latency {
		if topo.NumPUs() > 32 {
			fmt.Println("\n(latency matrix suppressed: more than 32 PUs)")
			return
		}
		fmt.Println("\nPU-to-PU latency (cycles):")
		for _, row := range topo.LatencyMatrix() {
			for _, l := range row {
				fmt.Printf(" %6.0f", l)
			}
			fmt.Println()
		}
	}
}
