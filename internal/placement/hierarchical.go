package placement

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/topology"
	"repro/internal/treematch"
)

// Hierarchical is the multi-level placement policy for clustered platforms:
// the task graph is first partitioned across the cluster nodes with a cut-
// minimizing, capacity-weighted grouping (treematch.PartitionAcrossWeighted:
// group sizes proportional to node core counts, so a heterogeneous
// platform's small nodes are not oversubscribed) — every cut byte crosses
// the interconnect fabric, so the node-level cut dominates the cost — and
// the ordinary Algorithm 1 then maps each node's task group onto that
// node's own intra-machine tree from the group's sub-matrix. On a machine
// without a cluster level it degrades to the plain TreeMatch policy.
//
// On a multi-switch fabric (a topology with a rack tier, and optionally a
// pod tier above) placement is three-level: the aggregated group-to-group
// matrix is itself matched onto the fabric tree, so groups that exchange
// heavy residual volume land in the same rack (and pod) and only light
// traffic crosses the uplinks. On homogeneous platforms the matching is the
// unconstrained treematch mapping (treematch.MapMatrix); on heterogeneous
// ones it is the capacity-class-constrained matching
// (treematch.AssignClassed), because a group sized for an 8-core node can
// only run on an 8-core node. On a flat single-switch fabric every
// group-to-node assignment prices identically, so the matching is skipped
// and group g runs on node g, which keeps the result deterministic.
//
// Compared with running flat TreeMatch on the whole cluster tree, the
// explicit top split optimizes the fabric cut directly instead of letting it
// emerge from bottom-up core-level grouping, and keeps the per-node
// instances small.
type Hierarchical struct {
	// Options tunes the underlying grouping heuristic at all levels.
	Options treematch.Options
	// NoDistribute disables the per-node NUMA distribution step, mirroring
	// TreeMatch.NoDistribute.
	NoDistribute bool
	// NoFabricMatch disables the group→node matching on multi-switch
	// fabrics, pinning partition group g to cluster node g as on a flat
	// fabric. This is the fabric-blind (depth-blind) arm of ablations A10
	// and A11: the node-level cut is still minimized, but where each group
	// lands relative to the rack and pod boundaries is left to chance.
	NoFabricMatch bool
	// CapacityBlind disables the capacity weighting of the node-level
	// partition, giving every node the equal share ceil(p/k) regardless of
	// its core count. This is the capacity-blind arm of ablation A11: on a
	// heterogeneous platform the small nodes oversubscribe and the large
	// ones idle.
	CapacityBlind bool
	// SpreadDomains is the fault-aware initial-placement arm: after the
	// group→node matching, the two most heavily coupled partition groups —
	// the critical pair whose joint loss would stall the computation — are
	// forced onto different racks when the matching co-located them, via the
	// cheapest capacity-class-preserving swap under the fabric's routed
	// latency model. The clustering objective co-locates exactly such pairs,
	// so this deliberately trades some locality for blast-radius isolation:
	// a rack-level failure (a ToR sever, a correlated node kill) can then
	// take out at most one member of the pair.
	SpreadDomains bool
	// TreeFabric restricts the group→node matching to the balanced-tree
	// model of earlier revisions: shaped (torus/dragonfly) fabrics and
	// uneven trees — which the balanced FabricTree cannot express — skip
	// the matching and keep the positional group→node order. This is the
	// "tree-matched" arm of ablation A13; the default routes such fabrics
	// through the routed distance model (treematch.AssignByDistance over
	// the fabric graph's latency matrix, with a space-filling-curve seed on
	// tori) instead.
	TreeFabric bool
	// Workers bounds the worker pool that runs the per-node Algorithm 1
	// stage: the per-node mappings are independent (each works on its own
	// sub-matrix against the shared read-only task matrix), so on a
	// 1000-node placement they shard across CPUs. 0 means GOMAXPROCS;
	// 1 forces the historical sequential order. Results are merged in
	// group order regardless, so the assignment is identical at any
	// worker count.
	Workers int
}

// Name implements Policy.
func (Hierarchical) Name() string { return "hierarchical" }

// Assign implements Policy.
func (p Hierarchical) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: hierarchical requires a machine")
	}
	topo := mach.Topology()
	nodes := len(topo.ClusterNodes())
	if nodes <= 1 {
		a, err := TreeMatch{Options: p.Options, NoDistribute: p.NoDistribute}.Assign(mach, m)
		if err != nil {
			return nil, err
		}
		a.Policy = p.Name()
		return a, nil
	}

	nodeTrees, err := treematch.NodeSubtrees(topo, topology.Core)
	if err != nil {
		return nil, err
	}
	// Per-node core capacities and each node's first core index in the fused
	// machine's left-to-right core order.
	caps := make([]int, nodes)
	coreBase := make([]int, nodes)
	hetero := false
	for i, tree := range nodeTrees {
		caps[i] = tree.Leaves()
		if i > 0 {
			coreBase[i] = coreBase[i-1] + caps[i-1]
			if caps[i] != caps[0] {
				hetero = true
			}
		}
	}

	// Level 1: split the task graph across the cluster nodes, minimizing
	// the volume that must cross the fabric; group g is sized for node g's
	// capacity (or for the equal share when capacity-blind).
	partCaps := caps
	if p.CapacityBlind {
		partCaps = make([]int, nodes)
		for i := range partCaps {
			partCaps[i] = 1
		}
	}
	// On a torus headed for distance matching, declare the grid to the
	// partitioner: the space-filling-curve chain candidate joins the
	// portfolio. The tree-matched arm keeps the unmodified options so its
	// partition — and everything downstream — reproduces the balanced-tree
	// revisions exactly.
	shape := topo.FabricShape()
	partOpts := p.Options
	if shape != nil && shape.Kind == "torus" && !p.TreeFabric && !p.NoFabricMatch {
		partOpts.SFCDims = shape.Dims
	}
	groups, groupMatrix, err := treematch.PartitionAcrossWeightedMatrix(m, partCaps, partOpts)
	if err != nil {
		return nil, err
	}

	// Level 2 (multi-switch and shaped fabrics): match the aggregated group
	// matrix onto the fabric, so groups with heavy residual traffic land
	// close in the fabric's distance model. Balanced trees keep the
	// established FabricTree matching, bit-stable with earlier revisions
	// (groups with heavy residual traffic share a rack, and a pod). Shaped
	// (torus/dragonfly) fabrics and uneven trees — which admit no balanced
	// abstract tree and were previously skipped — now match through the
	// routed distance model, with a space-filling-curve seed on tori;
	// TreeFabric restores the old skip. On a flat single-switch fabric
	// every group→node assignment prices identically, so the matching is
	// skipped and the identity keeps A9 and older results bit-stable.
	nodeOf := make([]int, len(groups))
	for g := range nodeOf {
		nodeOf[g] = g
	}
	if !p.NoFabricMatch && (topo.NumRacks() > 1 || topo.NumPods() > 1 || shape != nil) {
		classed := hetero && !p.CapacityBlind
		distanceMatch := false
		if shape != nil {
			distanceMatch = !p.TreeFabric
		} else {
			fabricTree, ferr := treematch.FabricTree(topo)
			if ferr != nil && !errors.Is(ferr, treematch.ErrUneven) {
				return nil, fmt.Errorf("placement: hierarchical fabric tree: %w", ferr)
			}
			if ferr == nil {
				assignment, err := matchGroupsToNodes(fabricTree, groupMatrix, partCaps, caps, classed, p.Options)
				if err != nil {
					return nil, fmt.Errorf("placement: hierarchical fabric matching: %w", err)
				}
				copy(nodeOf, assignment)
			} else {
				distanceMatch = !p.TreeFabric
			}
		}
		if distanceMatch {
			assignment, err := matchGroupsByDistance(topo, groupMatrix, partCaps, caps, classed)
			if err != nil {
				return nil, fmt.Errorf("placement: hierarchical distance matching: %w", err)
			}
			copy(nodeOf, assignment)
		}
	}
	if p.SpreadDomains && topo.NumRacks() > 1 && topo.FabricGraph() != nil {
		spreadCriticalPair(mach, topo, groupMatrix, partCaps, nodeOf)
	}

	a := &Assignment{
		Policy:       p.Name(),
		TaskPU:       make([]int, m.Order()),
		ControlPU:    make([]int, m.Order()),
		Strategy:     treematch.ControlHyperthread,
		VirtualArity: 1,
	}
	opts := p.Options
	opts.Distribute = !p.NoDistribute
	// Per-node SMT ways: the fused machine's global minimum would deny
	// hyperthread control pairing on a node all of whose cores are
	// 2-threaded just because some *other* member is not — each node's
	// bindings should reflect its own hardware.
	ways := make([]int, nodes)
	for _, c := range topo.Cores() {
		n := topo.ClusterNodeOf(c).LevelIndex
		if w := len(c.Children); ways[n] == 0 || w < ways[n] {
			ways[n] = w
		}
	}
	for i := range ways {
		if ways[i] < 1 {
			ways[i] = 1
		}
	}
	// Bottom level: the ordinary Algorithm 1 on each node's sub-matrix and
	// intra-machine tree, including the control-thread adaptation. The
	// per-node instances are independent, so they run across a bounded
	// worker pool; results land in a per-group slot and are merged in group
	// order below, which keeps the assignment bit-identical to a sequential
	// run at any worker count.
	type nodeMapResult struct {
		res *treematch.Result
		err error
	}
	results := make([]nodeMapResult, len(groups))
	jobs := make([]int, 0, len(groups))
	for g, group := range groups {
		if len(group) > 0 {
			jobs = append(jobs, g)
		}
	}
	runNode := func(g int) nodeMapResult {
		node := nodeOf[g]
		sub, err := m.Submatrix(groups[g])
		if err != nil {
			return nodeMapResult{err: err}
		}
		res, err := treematch.Map(treematch.Target{Tree: nodeTrees[node], SMTWays: ways[node]}, sub, opts)
		if err != nil {
			return nodeMapResult{err: fmt.Errorf("placement: hierarchical node %d: %w", node, err)}
		}
		return nodeMapResult{res: res}
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, g := range jobs {
			results[g] = runNode(g)
		}
	} else {
		feed := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for g := range feed {
					results[g] = runNode(g)
				}
			}()
		}
		for _, g := range jobs {
			feed <- g
		}
		close(feed)
		wg.Wait()
	}

	nonEmpty := 0
	for g, group := range groups {
		if len(group) == 0 {
			continue
		}
		node := nodeOf[g]
		if results[g].err != nil {
			return nil, results[g].err
		}
		res := results[g].res
		for local, task := range group {
			core := coreBase[node] + res.Assignment[local]
			a.TaskPU[task] = firstPU(topo, core)
			switch {
			case res.Control[local] < 0:
				a.ControlPU[task] = -1
			case res.Strategy == treematch.ControlHyperthread:
				a.ControlPU[task] = secondPU(topo, coreBase[node]+res.Control[local])
			default:
				a.ControlPU[task] = firstPU(topo, coreBase[node]+res.Control[local])
			}
		}
		// Nodes of different sizes may resolve the control threads
		// differently; report the most conservative strategy in force on
		// any node (hyperthread < spare-cores < unmapped), so the summary
		// never overstates what the bindings deliver.
		nonEmpty++
		if res.Strategy > a.Strategy {
			a.Strategy = res.Strategy
		}
		if res.VirtualArity > a.VirtualArity {
			a.VirtualArity = res.VirtualArity
		}
	}
	if nonEmpty == 0 {
		a.Strategy = treematch.ControlUnmapped
	}
	return a, nil
}

// matchGroupsToNodes decides which cluster node each partition group runs
// on, given the fabric tree and the aggregated group-to-group matrix. On
// homogeneous platforms (classed == false) this is the unconstrained
// treematch mapping; on heterogeneous ones the capacity-class-constrained
// matching, where group g (sized for capacity groupCaps[g]) may only land
// on a node of the same capacity.
func matchGroupsToNodes(fabricTree *treematch.Tree, groupMatrix *comm.Matrix, groupCaps, nodeCaps []int, classed bool, opts treematch.Options) ([]int, error) {
	if classed {
		classOf := map[int]int{}
		class := func(capacity int) int {
			c, ok := classOf[capacity]
			if !ok {
				c = len(classOf)
				classOf[capacity] = c
			}
			return c
		}
		entityClass := make([]int, len(groupCaps))
		for g, c := range groupCaps {
			entityClass[g] = class(c)
		}
		leafClass := make([]int, len(nodeCaps))
		for n, c := range nodeCaps {
			leafClass[n] = class(c)
		}
		return treematch.AssignClassed(fabricTree, groupMatrix, entityClass, leafClass)
	}
	// Clustering, not distribution: spreading groups across racks is exactly
	// what the matching must avoid, so the tree is not restricted.
	fabricOpts := opts
	fabricOpts.Distribute = false
	mp, err := treematch.MapMatrix(fabricTree, groupMatrix, fabricOpts)
	if err != nil {
		return nil, err
	}
	return mp.Assignment, nil
}

// matchGroupsByDistance decides which cluster node each partition group runs
// on through the routed distance model: the fabric graph's all-pairs latency
// matrix prices every candidate, so shaped (torus/dragonfly) fabrics and
// uneven trees — which the balanced FabricTree cannot express — get the same
// traffic-aware group→node matching as balanced fabrics. On a homogeneous
// torus the space-filling-curve embedding joins as a seed candidate; it wins
// only when strictly cheaper. Heterogeneous platforms constrain the matching
// by capacity class, exactly as matchGroupsToNodes does.
func matchGroupsByDistance(topo *topology.Topology, groupMatrix *comm.Matrix, groupCaps, nodeCaps []int, classed bool) ([]int, error) {
	dist := topo.FabricGraph().LatencyMatrix()
	var entityClass, leafClass []int
	if classed {
		classOf := map[int]int{}
		class := func(capacity int) int {
			c, ok := classOf[capacity]
			if !ok {
				c = len(classOf)
				classOf[capacity] = c
			}
			return c
		}
		entityClass = make([]int, len(groupCaps))
		for g, c := range groupCaps {
			entityClass[g] = class(c)
		}
		leafClass = make([]int, len(nodeCaps))
		for n, c := range nodeCaps {
			leafClass[n] = class(c)
		}
	}
	var seeds [][]int
	if shape := topo.FabricShape(); shape != nil && shape.Kind == "torus" && !classed {
		if seed, err := treematch.SFCSeed(shape.Dims, groupMatrix); err == nil {
			seeds = append(seeds, seed)
		}
	}
	return treematch.AssignByDistance(dist, groupMatrix, entityClass, leafClass, seeds...)
}

// spreadCriticalPair implements Hierarchical.SpreadDomains: if the two most
// heavily coupled partition groups landed in the same rack, swap one of them
// with a group on a different rack so a single rack failure cannot take both.
// Only swaps between groups of the same partition capacity are considered
// (the same capacity-class constraint the matching itself honors), and among
// the valid spreading swaps the one with the lowest total mapped cost under
// the fabric's routed latency model wins, first-wins on ties. A no-op when
// the pair is already rack-separated, when no valid swap exists, or when the
// group matrix carries no traffic at all.
func spreadCriticalPair(mach *numasim.Machine, topo *topology.Topology, groupMatrix *comm.Matrix, partCaps, nodeOf []int) {
	n := groupMatrix.Order()
	if n < 3 {
		return
	}
	g1, g2 := -1, -1
	heaviest := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v := groupMatrix.At(i, j) + groupMatrix.At(j, i); v > heaviest {
				g1, g2, heaviest = i, j, v
			}
		}
	}
	if g1 < 0 || mach.RackOfClusterNode(nodeOf[g1]) != mach.RackOfClusterNode(nodeOf[g2]) {
		return
	}
	dist := topo.FabricGraph().LatencyMatrix()
	mappedCost := func(assign []int) float64 {
		var c float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if v := groupMatrix.At(i, j) + groupMatrix.At(j, i); v > 0 {
					c += v * dist[assign[i]][assign[j]]
				}
			}
		}
		return c
	}
	bestCost := math.Inf(1)
	bestMoved, bestPartner := -1, -1
	trial := make([]int, n)
	for _, moved := range []int{g1, g2} {
		anchor := g1 + g2 - moved
		for h := 0; h < n; h++ {
			if h == g1 || h == g2 || partCaps[h] != partCaps[moved] {
				continue
			}
			if mach.RackOfClusterNode(nodeOf[h]) == mach.RackOfClusterNode(nodeOf[anchor]) {
				continue
			}
			copy(trial, nodeOf)
			trial[moved], trial[h] = nodeOf[h], nodeOf[moved]
			if c := mappedCost(trial); c < bestCost {
				bestCost, bestMoved, bestPartner = c, moved, h
			}
		}
	}
	if bestMoved >= 0 {
		nodeOf[bestMoved], nodeOf[bestPartner] = nodeOf[bestPartner], nodeOf[bestMoved]
	}
}

// RoundRobinNodes deals tasks across the cluster nodes round-robin:
// consecutive tasks land on different nodes, the affinity-blind cluster
// baseline (the multi-node analogue of Scatter). Within a node, cores fill
// sequentially. Control threads are left to the OS.
type RoundRobinNodes struct{}

// Name implements Policy.
func (RoundRobinNodes) Name() string { return "rr-nodes" }

// Assign implements Policy.
func (RoundRobinNodes) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: rr-nodes requires a machine")
	}
	topo := mach.Topology()
	nodes := topo.NumClusterNodes()
	cores := topo.NumCores()
	coresPerNode := cores / nodes
	a := unboundControls(m.Order(), "rr-nodes")
	for i := range a.TaskPU {
		node := i % nodes
		slot := i / nodes
		core := node*coresPerNode + slot%coresPerNode
		a.TaskPU[i] = firstPU(topo, core)
	}
	a.VirtualArity = (m.Order() + cores - 1) / cores
	return a, nil
}
