package placement

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/orwl"
	"repro/internal/topology"
)

// killAt is the canonical A14-style schedule: one node dies at the given
// 1-based epoch.
func killAt(epoch, node int) *topology.FaultSchedule {
	return &topology.FaultSchedule{Events: []topology.FaultEvent{
		{Epoch: epoch, Kind: topology.FaultKillNode, Node: node},
	}}
}

// checkSurvivorInvariants asserts the placement invariants that must hold
// after any evacuation, whatever the FaultMode: every task holds exactly one
// slot, every slot names a real PU on a surviving cluster node, and control
// slots are either unbound or alive too.
func checkSurvivorInvariants(t *testing.T, eng *AdaptiveEngine, tasks int) {
	t.Helper()
	a := eng.Assignment()
	if len(a.TaskPU) != tasks {
		t.Fatalf("assignment holds %d slots, want %d", len(a.TaskPU), tasks)
	}
	mach := eng.mach
	numPUs := mach.Topology().NumPUs()
	for id, pu := range a.TaskPU {
		if pu < 0 || pu >= numPUs {
			t.Fatalf("task %d on PU %d, out of range [0,%d)", id, pu, numPUs)
		}
		if mach.ClusterNodeDead(mach.ClusterNodeOfPU(pu)) {
			t.Errorf("task %d still on dead cluster node %d (PU %d)", id, mach.ClusterNodeOfPU(pu), pu)
		}
		if ctl := a.ControlPU[id]; ctl >= 0 && mach.ClusterNodeDead(mach.ClusterNodeOfPU(ctl)) {
			t.Errorf("task %d control thread still on dead cluster node (PU %d)", id, ctl)
		}
	}
}

// runFaultShift builds the miniShift workload on a fresh machine of the given
// spec and runs it under the given fault options, returning the engine.
func runFaultShift(t *testing.T, spec string, opts AdaptiveOptions) *AdaptiveEngine {
	t.Helper()
	mach := machine(t, spec)
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	miniShift(rt, 16, 100, 1<<20, 1<<22) // shiftAt past iters: steady traffic
	eng, err := PlaceAdaptive(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestAdaptiveFaultEvacuation pins the tentpole path: a node killed mid-run
// forces an evacuation that bypasses hysteresis, is charged into the stats,
// and leaves no task — computation or control — on the dead node.
func TestAdaptiveFaultEvacuation(t *testing.T) {
	for _, tc := range []struct {
		name, spec string
	}{
		{"rack2x2", "rack:2 node:2 pack:1 l3:1 core:2 pu:1"},
		{"rack2x2wide", "rack:2 node:2 pack:1 l3:1 core:4 pu:1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := runFaultShift(t, tc.spec, AdaptiveOptions{
				Base: Hierarchical{}, EpochIters: 4, Faults: killAt(2, 1),
			})
			st := eng.Stats()
			if st.FaultEpochs != 1 {
				t.Errorf("FaultEpochs = %d, want 1", st.FaultEpochs)
			}
			if st.Evacuations < 1 {
				t.Fatalf("kill committed no evacuations (stats %+v)", st)
			}
			if st.EvacuationCostCycles <= 0 || math.IsInf(st.EvacuationCostCycles, 1) {
				t.Errorf("evacuation bill %v, want finite positive", st.EvacuationCostCycles)
			}
			if st.Rebinds < st.Evacuations {
				t.Errorf("rebinds %d below evacuations %d", st.Rebinds, st.Evacuations)
			}
			if st.MigrationCostCycles < st.EvacuationCostCycles {
				t.Errorf("total migration bill %v below the evacuation share %v",
					st.MigrationCostCycles, st.EvacuationCostCycles)
			}
			if st.IntraNodeRebinds+st.CrossNodeRebinds != st.Rebinds {
				t.Errorf("intra %d + cross %d != rebinds %d",
					st.IntraNodeRebinds, st.CrossNodeRebinds, st.Rebinds)
			}
			checkSurvivorInvariants(t, eng, 8)
		})
	}
}

// TestAdaptiveFaultModesInvariants runs every FaultMode over two platform
// shapes and asserts the mode-independent placement invariants plus each
// mode's contract: respawn never adapts, the others keep the candidate loop
// alive after the failure.
func TestAdaptiveFaultModesInvariants(t *testing.T) {
	specs := []string{
		"rack:2 node:2 pack:1 l3:1 core:2 pu:1",
		"rack:2 node:2 pack:1 l3:1 core:4 pu:1",
	}
	modes := []struct {
		name string
		mode FaultMode
	}{{"aware", FaultAware}, {"blind", FaultBlind}, {"respawn", FaultRespawn}}
	for _, spec := range specs {
		for _, m := range modes {
			t.Run(m.name+"/"+spec, func(t *testing.T) {
				opts := AdaptiveOptions{
					Base: Hierarchical{}, EpochIters: 4, Faults: killAt(2, 1), FaultMode: m.mode,
				}
				eng := runFaultShift(t, spec, opts)
				st := eng.Stats()
				if st.Evacuations < 1 {
					t.Fatalf("mode %s committed no evacuations (stats %+v)", m.name, st)
				}
				checkSurvivorInvariants(t, eng, 8)
				if m.mode == FaultRespawn && st.Applied != 0 {
					t.Errorf("respawn applied %d candidate mappings, want none", st.Applied)
				}
				if m.mode == FaultRespawn && st.Skipped != st.Epochs {
					t.Errorf("respawn skipped %d of %d epochs, want all", st.Skipped, st.Epochs)
				}
				// Determinism: the identical run commits the identical mapping
				// and the identical decision counters.
				again := runFaultShift(t, spec, opts)
				if !reflect.DeepEqual(eng.Assignment().TaskPU, again.Assignment().TaskPU) {
					t.Errorf("mode %s is not deterministic: assignments differ between identical runs", m.name)
				}
				if eng.Stats() != again.Stats() {
					t.Errorf("mode %s stats differ between identical runs:\n%+v\n%+v", m.name, eng.Stats(), again.Stats())
				}
			})
		}
	}
}

// TestAdaptiveDegradeKeepsRunning pins the non-fatal half of the fault model:
// a degraded fabric edge re-prices the run but evacuates nobody, and the
// engine keeps adapting on the degraded prices without error.
func TestAdaptiveDegradeKeepsRunning(t *testing.T) {
	mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
	nic := mach.FabricGraph().LevelEdges(0)[0]
	rt := orwl.NewRuntime(orwl.Options{Machine: mach})
	miniShift(rt, 16, 100, 1<<20, 1<<22)
	eng, err := PlaceAdaptive(rt, AdaptiveOptions{
		Base: Hierarchical{}, EpochIters: 4,
		Faults: &topology.FaultSchedule{Events: []topology.FaultEvent{
			{Epoch: 2, Kind: topology.FaultDegradeEdge, Edge: nic, Factor: 0.25},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.FaultEpochs != 1 {
		t.Errorf("FaultEpochs = %d, want 1", st.FaultEpochs)
	}
	if st.Evacuations != 0 {
		t.Errorf("degrade-only schedule evacuated %d tasks, want none", st.Evacuations)
	}
	if f := mach.EdgeFaultFactor(nic); f != 0.25 {
		t.Errorf("edge factor %v after the run, want 0.25", f)
	}
}

// TestAdaptiveFaultFreeMigrationStillCharged pins that evacuations are
// charged even in oracle (FreeMigration) runs: a dead node leaves no choice,
// so the forced move is not part of the "what if migration were free" bound.
func TestAdaptiveFaultFreeMigrationStillCharged(t *testing.T) {
	eng := runFaultShift(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1", AdaptiveOptions{
		Base: Hierarchical{}, EpochIters: 4, Faults: killAt(2, 1), FreeMigration: true,
	})
	st := eng.Stats()
	if st.Evacuations < 1 {
		t.Fatalf("no evacuations in the oracle run (stats %+v)", st)
	}
	if st.EvacuationCostCycles <= 0 {
		t.Errorf("oracle run left the evacuation unpriced (stats %+v)", st)
	}
}

// TestPlaceAdaptiveRejectsBadFaultConfig pins the upfront validation: a
// schedule that cannot apply to the machine, and an out-of-range FaultMode,
// are rejected before the run starts.
func TestPlaceAdaptiveRejectsBadFaultConfig(t *testing.T) {
	cases := []struct {
		name    string
		opts    AdaptiveOptions
		wantErr string
	}{
		{"epoch zero", AdaptiveOptions{EpochIters: 4, Faults: killAt(0, 1)}, "1-based"},
		{"unknown node", AdaptiveOptions{EpochIters: 4, Faults: killAt(2, 99)}, "unknown cluster node"},
		{"bad mode", AdaptiveOptions{EpochIters: 4, FaultMode: FaultMode(7)}, "unknown FaultMode"},
		{"conflicting events", AdaptiveOptions{EpochIters: 4, Faults: &topology.FaultSchedule{
			Events: []topology.FaultEvent{
				{Epoch: 2, Kind: topology.FaultDegradeEdge, Edge: 0, Factor: 0.5},
				{Epoch: 2, Kind: topology.FaultSeverEdge, Edge: 0},
			},
		}}, "conflicting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mach := machine(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1")
			rt := orwl.NewRuntime(orwl.Options{Machine: mach})
			miniShift(rt, 8, 100, 1<<20, 1<<22)
			_, err := PlaceAdaptive(rt, tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("PlaceAdaptive: got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestAdaptiveEmptyScheduleIsNoop pins the bit-stability acceptance
// criterion at the engine level: an empty (but non-nil) fault schedule leaves
// every decision and the final mapping identical to a nil one.
func TestAdaptiveEmptyScheduleIsNoop(t *testing.T) {
	base := runFaultShift(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1", AdaptiveOptions{
		Base: Hierarchical{}, EpochIters: 4,
	})
	empty := runFaultShift(t, "rack:2 node:2 pack:1 l3:1 core:2 pu:1", AdaptiveOptions{
		Base: Hierarchical{}, EpochIters: 4, Faults: &topology.FaultSchedule{},
	})
	if !reflect.DeepEqual(base.Assignment(), empty.Assignment()) {
		t.Error("empty fault schedule changed the final assignment")
	}
	if base.Stats() != empty.Stats() {
		t.Errorf("empty fault schedule changed the stats:\n%+v\n%+v", base.Stats(), empty.Stats())
	}
}
