package treematch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
)

func TestGroupProcessesPairs(t *testing.T) {
	// Two obvious pairs: 0-1 heavy, 2-3 heavy, light cross traffic.
	m := comm.New(4)
	m.AddSym(0, 1, 100)
	m.AddSym(2, 3, 100)
	m.AddSym(1, 2, 1)
	groups := GroupProcesses(m, 2, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	found01, found23 := false, false
	for _, g := range groups {
		if len(g) != 2 {
			t.Fatalf("group size = %d", len(g))
		}
		if g[0] == 0 && g[1] == 1 {
			found01 = true
		}
		if g[0] == 2 && g[1] == 3 {
			found23 = true
		}
	}
	if !found01 || !found23 {
		t.Errorf("expected pairs {0,1},{2,3}, got %v", groups)
	}
}

func TestGroupProcessesRefinementHelps(t *testing.T) {
	// A matrix engineered so pure greedy can go wrong: ring with one strong
	// chord. Whatever greedy does, refinement must not make it worse.
	m := comm.Ring(8, 10)
	m.AddSym(0, 4, 50)
	g0 := GroupProcesses(m, 4, 0)
	g2 := GroupProcesses(m, 4, 3)
	if intraVolume(m, g2) < intraVolume(m, g0) {
		t.Errorf("refinement decreased intra volume: %v -> %v",
			intraVolume(m, g0), intraVolume(m, g2))
	}
}

func TestGroupProcessesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for non-dividing arity")
		}
	}()
	GroupProcesses(comm.New(5), 2, 0)
}

// TestGroupProcessesPartition checks, property-style, that the output is
// always an exact partition with groups of the requested size.
func TestGroupProcessesPartition(t *testing.T) {
	f := func(seed int64, aSel uint8) bool {
		a := []int{2, 3, 4}[int(aSel)%3]
		p := a * 6
		m := comm.Random(p, 0.4, 100, seed)
		groups := GroupProcesses(m, a, 1)
		if len(groups) != 6 {
			return false
		}
		seen := make([]bool, p)
		for _, g := range groups {
			if len(g) != a {
				return false
			}
			for _, e := range g {
				if e < 0 || e >= p || seen[e] {
					return false
				}
				seen[e] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestMapMatrixExactFit(t *testing.T) {
	tree := mustTree(t, 2, 2) // 4 leaves
	m := comm.New(4)
	m.AddSym(0, 2, 100) // 0-2 and 1-3 want to be close
	m.AddSym(1, 3, 100)
	m.AddSym(0, 1, 1)
	mp, err := MapMatrix(tree, m, Options{})
	if err != nil {
		t.Fatalf("MapMatrix: %v", err)
	}
	if mp.VirtualArity != 1 {
		t.Errorf("VirtualArity = %d, want 1", mp.VirtualArity)
	}
	// Assignment must be a bijection onto the 4 leaves.
	seen := make([]bool, 4)
	for i, leaf := range mp.Assignment {
		if leaf < 0 || leaf >= 4 || seen[leaf] {
			t.Fatalf("assignment %v not a bijection", mp.Assignment)
		}
		seen[leaf] = true
		if mp.Slot[i] != 0 {
			t.Errorf("slot[%d] = %d, want 0", i, mp.Slot[i])
		}
	}
	// The heavy pairs must share a subtree (distance 2, not 4).
	if d := tree.LeafDistance(mp.Assignment[0], mp.Assignment[2]); d != 2 {
		t.Errorf("heavy pair 0-2 at distance %d, want 2 (assignment %v)", d, mp.Assignment)
	}
	if d := tree.LeafDistance(mp.Assignment[1], mp.Assignment[3]); d != 2 {
		t.Errorf("heavy pair 1-3 at distance %d, want 2 (assignment %v)", d, mp.Assignment)
	}
}

func TestMapMatrixPadding(t *testing.T) {
	tree := mustTree(t, 2, 2) // 4 leaves, only 3 tasks
	m := comm.Ring(3, 10)
	mp, err := MapMatrix(tree, m, Options{})
	if err != nil {
		t.Fatalf("MapMatrix: %v", err)
	}
	if len(mp.Assignment) != 3 {
		t.Fatalf("assignment length = %d, want 3 (padding leaked)", len(mp.Assignment))
	}
	seen := map[int]bool{}
	for _, leaf := range mp.Assignment {
		if leaf < 0 || leaf >= 4 || seen[leaf] {
			t.Fatalf("assignment %v reuses or overflows leaves", mp.Assignment)
		}
		seen[leaf] = true
	}
}

func TestMapMatrixOversubscription(t *testing.T) {
	tree := mustTree(t, 2, 2) // 4 leaves, 9 tasks -> virtual arity 3
	m := comm.Ring(9, 10)
	mp, err := MapMatrix(tree, m, Options{})
	if err != nil {
		t.Fatalf("MapMatrix: %v", err)
	}
	if mp.VirtualArity != 3 {
		t.Errorf("VirtualArity = %d, want 3", mp.VirtualArity)
	}
	counts := map[int]int{}
	for i, leaf := range mp.Assignment {
		if leaf < 0 || leaf >= 4 {
			t.Fatalf("leaf %d out of range", leaf)
		}
		if s := mp.Slot[i]; s < 0 || s >= 3 {
			t.Fatalf("slot %d out of range", s)
		}
		counts[leaf]++
	}
	for leaf, c := range counts {
		if c > 3 {
			t.Errorf("leaf %d hosts %d tasks, max 3", leaf, c)
		}
	}
}

func TestMapMatrixEmptyAndSingle(t *testing.T) {
	tree := mustTree(t, 2, 2)
	mp, err := MapMatrix(tree, comm.New(0), Options{})
	if err != nil || len(mp.Assignment) != 0 {
		t.Errorf("empty matrix: %v %v", mp, err)
	}
	mp, err = MapMatrix(tree, comm.New(1), Options{})
	if err != nil || len(mp.Assignment) != 1 {
		t.Fatalf("single matrix: %v %v", mp, err)
	}
	if mp.Assignment[0] < 0 || mp.Assignment[0] >= 4 {
		t.Errorf("single task leaf = %d", mp.Assignment[0])
	}
}

// TestMapMatrixInjectiveWhenFits is the central safety property: when tasks
// fit the resources, no two tasks share a leaf.
func TestMapMatrixInjectiveWhenFits(t *testing.T) {
	tree := mustTree(t, 3, 2, 2) // 12 leaves
	f := func(seed int64, nSel uint8) bool {
		n := int(nSel%12) + 1
		m := comm.Random(n, 0.5, 50, seed)
		mp, err := MapMatrix(tree, m, Options{})
		if err != nil || mp.VirtualArity != 1 {
			return false
		}
		seen := map[int]bool{}
		for _, leaf := range mp.Assignment {
			if leaf < 0 || leaf >= 12 || seen[leaf] {
				return false
			}
			seen[leaf] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestTreeMatchBeatsRoundRobinOnStencil(t *testing.T) {
	// The paper's claim in miniature: for a stencil matrix on a NUMA-ish
	// tree, TreeMatch must cut the hop-weighted cost well below round-robin.
	tree := mustTree(t, 4, 4) // 4 sockets × 4 cores
	m := comm.Stencil2D(4, 4, 1000, 10)
	mp, err := MapMatrix(tree, m, Options{})
	if err != nil {
		t.Fatalf("MapMatrix: %v", err)
	}
	tmCost := Cost(tree, m, mp.Assignment)
	rrCost := Cost(tree, m, RoundRobin(tree, m.Order()))
	if tmCost >= rrCost {
		t.Errorf("TreeMatch cost %v not below round-robin %v", tmCost, rrCost)
	}
	// The decisive locality metric is the volume that crosses sockets
	// (tree distance 4). Round-robin stripes row-major blocks across
	// sockets, cutting nearly every stencil edge; TreeMatch should tile the
	// grid and cut less than half as much.
	cut := func(assign []int) float64 {
		var s float64
		for i := 0; i < m.Order(); i++ {
			for j := 0; j < m.Order(); j++ {
				if i != j && tree.LeafDistance(assign[i], assign[j]) > 2 {
					s += m.At(i, j)
				}
			}
		}
		return s
	}
	// With tasks == leaves, round-robin degenerates to the identity (a
	// row-striped mapping) which keeps horizontal edges local, so the gap
	// is bounded: the optimal 2×2 tiling cuts 16200 vs 24360 for stripes.
	tmCut, rrCut := cut(mp.Assignment), cut(RoundRobin(tree, m.Order()))
	if tmCut > 0.7*rrCut {
		t.Errorf("TreeMatch inter-socket cut %v not well below round-robin %v", tmCut, rrCut)
	}
	// For this instance the optimal tiling (2×2 tiles per socket) cuts
	// exactly 8 edges and 10 corners both ways; TreeMatch should find it.
	if want := 2 * (8*1000.0 + 10*10.0); tmCut > want+1e-9 {
		t.Errorf("TreeMatch cut %v, optimal tiling cuts %v", tmCut, want)
	}
}

func TestCostZeroWhenColocated(t *testing.T) {
	tree := mustTree(t, 2)
	m := comm.AllToAll(3, 5)
	all0 := []int{0, 0, 0}
	if got := Cost(tree, m, all0); got != 0 {
		t.Errorf("co-located cost = %v, want 0", got)
	}
	spread := []int{0, 1, 0}
	if got := Cost(tree, m, spread); got <= 0 {
		t.Errorf("spread cost = %v, want > 0", got)
	}
}

func TestRoundRobinShape(t *testing.T) {
	tree := mustTree(t, 2, 2)
	rr := RoundRobin(tree, 10)
	for i, leaf := range rr {
		if leaf != i%4 {
			t.Errorf("rr[%d] = %d", i, leaf)
		}
	}
}
