package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	tests := []struct {
		name    string
		opts    options
		wantErr string
	}{
		{"stencil ok", options{topoSpec: "pack:4 core:4 pu:1", stencil: "4x4", dist: true}, ""},
		{"ring ok", options{topoSpec: "pack:2 core:4 pu:2", ring: 8, controls: true, dist: true}, ""},
		{"no source", options{topoSpec: "pack:4 core:4 pu:1"}, "one of -matrix, -stencil, -ring is required"},
		{"bad topo", options{topoSpec: "wat:3", ring: 4}, "unknown object kind"},
		{"bad stencil shape", options{topoSpec: "pack:4 core:4 pu:1", stencil: "16"}, "bad -stencil"},
		{"bad stencil numbers", options{topoSpec: "pack:4 core:4 pu:1", stencil: "0x4"}, "bad -stencil"},
		{"missing matrix file", options{topoSpec: "pack:4 core:4 pu:1", matrixF: "/does/not/exist"}, "no such file"},
		{"uneven topo rejected", options{topoSpec: "pack:3 core:2,1,1 pu:1", ring: 4}, "uneven topology"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.opts, &b)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid options, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunGoldenStencil(t *testing.T) {
	var b strings.Builder
	if err := run(options{topoSpec: "pack:4 core:4 pu:1", stencil: "4x4", dist: true}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"topology: Machine (4 Package, 4 NUMANode, 16 Core, 16 PU) -> abstract tree[4 4] (16 cores)",
		"matrix: order 16, total volume 48360",
		"virtual arity: 1",
		"b(0,0)       -> core",
		"hop-weighted cost: treematch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// TreeMatch must beat round-robin on this stencil: the report ends with
	// the ratio, which has to stay below 100%.
	if !strings.Contains(out, "% of baseline)") {
		t.Fatalf("missing cost report:\n%s", out)
	}
}

func TestRunGoldenControls(t *testing.T) {
	var b strings.Builder
	if err := run(options{topoSpec: "pack:2 core:4 pu:2", ring: 8, controls: true, dist: true}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"control strategy: hyperthread, virtual arity: 1",
		"control -> core",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMatrixFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.txt")
	content := "# tiny ring\n3\n0 5 0\n5 0 5\n0 5 0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(options{topoSpec: "pack:1 core:4 pu:1", matrixF: path, dist: true}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "matrix: order 3, total volume 20") {
		t.Errorf("unexpected matrix report:\n%s", b.String())
	}
}
