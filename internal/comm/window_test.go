package comm

import (
	"sync"
	"testing"
)

func TestWindowRollResets(t *testing.T) {
	w := NewWindow(3)
	w.AddSym(0, 1, 10)
	w.AddSym(1, 2, 4)

	snap := w.Roll(0)
	if got := snap.At(0, 1); got != 10 {
		t.Errorf("snapshot (0,1) = %v, want 10", got)
	}
	if got := snap.At(2, 1); got != 4 {
		t.Errorf("snapshot (2,1) = %v, want 4 (symmetric)", got)
	}
	if got := w.Snapshot().TotalVolume(); got != 0 {
		t.Errorf("window not empty after Roll(0): total %v", got)
	}

	// The next epoch sees only its own traffic.
	w.AddSym(0, 2, 7)
	next := w.Roll(0)
	if got := next.At(0, 1); got != 0 {
		t.Errorf("second epoch still sees first-epoch volume: %v", got)
	}
	if got := next.At(0, 2); got != 7 {
		t.Errorf("second epoch (0,2) = %v, want 7", got)
	}
}

func TestWindowRollDecay(t *testing.T) {
	w := NewWindow(2)
	w.AddSym(0, 1, 8)
	w.Roll(0.5)
	if got := w.Snapshot().At(0, 1); got != 4 {
		t.Errorf("decayed window (0,1) = %v, want 4", got)
	}
	w.AddSym(0, 1, 2)
	snap := w.Roll(0.5)
	if got := snap.At(0, 1); got != 6 {
		t.Errorf("decayed accumulation = %v, want 6", got)
	}
}

func TestWindowRollBadDecayResets(t *testing.T) {
	for _, decay := range []float64{-1, 1, 2} {
		w := NewWindow(2)
		w.AddSym(0, 1, 5)
		w.Roll(decay)
		if got := w.Snapshot().TotalVolume(); got != 0 {
			t.Errorf("Roll(%v) kept volume %v, want reset", decay, got)
		}
	}
}

func TestWindowRollInPlace(t *testing.T) {
	w := NewWindow(3)
	before := &w.cur.v[0]
	w.AddSym(0, 1, 10)
	snap := w.Roll(0)
	if &w.cur.v[0] != before {
		t.Error("Roll(0) reallocated the window's backing storage")
	}
	w.AddSym(0, 2, 3)
	w.Roll(0.5)
	if &w.cur.v[0] != before {
		t.Error("Roll(decay) reallocated the window's backing storage")
	}
	// Recycled snapshots are reused for the next snapshot.
	spineBefore := &snap.v[0]
	w.Recycle(snap)
	w.AddSym(1, 2, 9)
	snap2 := w.Roll(0)
	if &snap2.v[0] != spineBefore {
		t.Error("Roll did not reuse the recycled snapshot's storage")
	}
	if got := snap2.At(1, 2); got != 9 {
		t.Errorf("recycled snapshot (1,2) = %v, want 9", got)
	}
	if got := snap2.At(0, 1); got != 0 {
		t.Errorf("recycled snapshot kept stale volume (0,1) = %v", got)
	}
}

func TestWindowRecycleWrongShapeIgnored(t *testing.T) {
	w := NewWindow(3)
	w.Recycle(New(5)) // wrong order: must not be used
	w.AddSym(0, 1, 2)
	snap := w.Roll(0)
	if snap.Order() != 3 || snap.At(0, 1) != 2 {
		t.Errorf("snapshot corrupted by mismatched recycle: order %d", snap.Order())
	}
}

func TestWindowConcurrentAdd(t *testing.T) {
	w := NewWindow(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.AddSym(0, 1, 1)
			}
		}()
	}
	wg.Wait()
	if got := w.Snapshot().At(0, 1); got != 800 {
		t.Errorf("concurrent accumulation = %v, want 800", got)
	}
}
