// Command treemap computes a TreeMatch mapping (the paper's Algorithm 1)
// for a communication matrix on a topology, and reports the placement and
// its hop-weighted cost against the round-robin baseline.
//
// The matrix comes from a file in the format of internal/comm (first line:
// order; then rows; '#' comments allowed), or from a built-in generator:
//
//	treemap -topo "pack:4 core:4 pu:1" -matrix comm.txt
//	treemap -topo "pack:24 l3:1 core:8 pu:1" -stencil 16x12
//	treemap -topo "pack:2 core:4 pu:2" -ring 8 -controls
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/topology"
	"repro/internal/treematch"
)

// options collects the command's flag values, separated from flag parsing so
// tests can drive run directly.
type options struct {
	topoSpec string
	matrixF  string
	stencil  string
	ring     int
	controls bool
	dist     bool
}

func main() {
	var opts options
	flag.StringVar(&opts.topoSpec, "topo", "pack:4 core:4 pu:1", "topology spec (see internal/topology)")
	flag.StringVar(&opts.matrixF, "matrix", "", "communication matrix file")
	flag.StringVar(&opts.stencil, "stencil", "", "generate a BXxBY 8-neighbour stencil matrix, e.g. 16x12")
	flag.IntVar(&opts.ring, "ring", 0, "generate an n-task ring matrix")
	flag.BoolVar(&opts.controls, "controls", false, "run the full Algorithm 1 with ORWL control threads")
	flag.BoolVar(&opts.dist, "distribute", true, "spread tasks over NUMA nodes when resources are spare")
	flag.Parse()

	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "treemap: %v\n", err)
		os.Exit(1)
	}
}

// run computes and reports the mapping for the given options onto w.
func run(opts options, w io.Writer) error {
	topo, err := topology.FromSpec(opts.topoSpec)
	if err != nil {
		return err
	}
	m, err := loadMatrix(opts.matrixF, opts.stencil, opts.ring)
	if err != nil {
		return err
	}

	tree, err := treematch.FromTopology(topo, topology.Core)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology: %s -> abstract %s (%d cores)\n", topo, tree, tree.Leaves())
	fmt.Fprintf(w, "matrix: order %d, total volume %.0f\n", m.Order(), m.TotalVolume())

	opt := treematch.Options{Distribute: opts.dist}
	if opts.controls {
		res, err := treematch.Map(treematch.Target{Tree: tree, SMTWays: topo.SMTWays()}, m, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "control strategy: %s, virtual arity: %d\n", res.Strategy, res.VirtualArity)
		for i, core := range res.Assignment {
			fmt.Fprintf(w, "  %-12s -> core %-3d control -> %s\n", m.Label(i), core, coreName(res.Control[i]))
		}
		reportCost(w, tree, m, res.Assignment)
		return nil
	}

	mp, err := treematch.MapMatrix(tree, m, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "virtual arity: %d\n", mp.VirtualArity)
	for i, core := range mp.Assignment {
		fmt.Fprintf(w, "  %-12s -> core %d (slot %d)\n", m.Label(i), core, mp.Slot[i])
	}
	reportCost(w, tree, m, mp.Assignment)
	return nil
}

func loadMatrix(file, stencil string, ring int) (*comm.Matrix, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return comm.Read(f)
	case stencil != "":
		parts := strings.SplitN(stencil, "x", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -stencil %q, want BXxBY", stencil)
		}
		bx, err1 := strconv.Atoi(parts[0])
		by, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || bx < 1 || by < 1 {
			return nil, fmt.Errorf("bad -stencil %q", stencil)
		}
		return comm.Stencil2D(bx, by, 1000, 10), nil
	case ring > 0:
		return comm.Ring(ring, 1000), nil
	default:
		return nil, fmt.Errorf("one of -matrix, -stencil, -ring is required")
	}
}

func reportCost(w io.Writer, tree *treematch.Tree, m *comm.Matrix, assignment []int) {
	tm := treematch.Cost(tree, m, assignment)
	rr := treematch.Cost(tree, m, treematch.RoundRobin(tree, m.Order()))
	fmt.Fprintf(w, "hop-weighted cost: treematch %.0f, round-robin %.0f (%.1f%% of baseline)\n",
		tm, rr, 100*tm/rr)
}

func coreName(c int) string {
	if c < 0 {
		return "OS"
	}
	return fmt.Sprintf("core %d", c)
}
