package treematch

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/comm"
)

// partitionShapes are the ≤256-entity inputs the sparse/dense bit-equality
// guarantee is pinned on: every existing generator family, odd and even k,
// padded and unpadded orders.
func partitionShapes() []struct {
	name string
	m    *comm.Matrix
	k    int
} {
	return []struct {
		name string
		m    *comm.Matrix
		k    int
	}{
		{"stencil16x16-k4", comm.Stencil2D(16, 16, 64, 8), 4},
		{"stencil8x8-k2", comm.Stencil2D(8, 8, 64, 8), 2},
		{"stencil5x7-k3-padded", comm.Stencil2D(5, 7, 100, 10), 3},
		{"ring64-k8", comm.Ring(64, 3), 8},
		{"alltoall32-k4", comm.AllToAll(32, 2), 4},
		{"random100-k5", comm.Random(100, 0.15, 1000, 42), 5},
		{"random256-k8", comm.Random(256, 0.05, 500, 7), 8},
		{"lk23-2x2-k4", comm.LK23OpLevel(2, 2, 16, 16, 8), 4},
		{"empty48-k6", comm.New(48), 6},
	}
}

// TestPartitionAcrossSparseDenseBitEqual pins the acceptance criterion:
// the sparse path produces bit-identical partitions to the dense path on
// every existing test shape.
func TestPartitionAcrossSparseDenseBitEqual(t *testing.T) {
	for _, sh := range partitionShapes() {
		dg, err := PartitionAcross(sh.m, sh.k, Options{})
		if err != nil {
			t.Fatalf("%s dense: %v", sh.name, err)
		}
		sg, err := PartitionAcross(sh.m.ToSparse(), sh.k, Options{})
		if err != nil {
			t.Fatalf("%s sparse: %v", sh.name, err)
		}
		if !reflect.DeepEqual(dg, sg) {
			t.Errorf("%s: sparse partition differs from dense\ndense:  %v\nsparse: %v", sh.name, dg, sg)
		}
	}
}

func TestPartitionAcrossWeightedSparseDenseBitEqual(t *testing.T) {
	caps := [][]int{
		{8, 4, 4, 2},
		{16, 8},
		{3, 3, 3}, // equal: PartitionAcross path
		{5, 7, 11},
	}
	for _, sh := range partitionShapes() {
		if sh.m.Order() > 101 {
			continue // the weighted portfolio re-runs full KL per cap set; keep CI fast
		}
		for ci, cap := range caps {
			dg, err := PartitionAcrossWeighted(sh.m, cap, Options{})
			if err != nil {
				t.Fatalf("%s caps%d dense: %v", sh.name, ci, err)
			}
			sg, err := PartitionAcrossWeighted(sh.m.ToSparse(), cap, Options{})
			if err != nil {
				t.Fatalf("%s caps%d sparse: %v", sh.name, ci, err)
			}
			if !reflect.DeepEqual(dg, sg) {
				t.Errorf("%s caps %v: sparse weighted partition differs from dense", sh.name, cap)
			}
		}
	}
}

func TestGroupProcessesSparseDenseBitEqual(t *testing.T) {
	for _, sh := range partitionShapes() {
		p := sh.m.Order()
		for _, a := range []int{2, 4} {
			if p%a != 0 {
				continue
			}
			dg := GroupProcesses(sh.m, a, 2)
			sg := GroupProcesses(sh.m.ToSparse(), a, 2)
			if !reflect.DeepEqual(dg, sg) {
				t.Errorf("%s a=%d: sparse GroupProcesses differs from dense", sh.name, a)
			}
		}
	}
}

// checkPartitionInvariants verifies that groups cover 0..p-1 exactly once
// with the expected sizes.
func checkPartitionInvariants(t *testing.T, groups [][]int, p int, sizes []int) {
	t.Helper()
	if len(groups) != len(sizes) {
		t.Fatalf("got %d groups, want %d", len(groups), len(sizes))
	}
	seen := make([]bool, p)
	for gi, g := range groups {
		if len(g) != sizes[gi] {
			t.Errorf("group %d has %d members, want %d", gi, len(g), sizes[gi])
		}
		for _, e := range g {
			if e < 0 || e >= p {
				t.Fatalf("group %d: entity %d out of range", gi, e)
			}
			if seen[e] {
				t.Fatalf("entity %d placed twice", e)
			}
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			t.Fatalf("entity %d not placed", e)
		}
	}
}

// TestMultilevelPartitionInvariants drives PartitionAcross above the
// multilevel threshold and checks exact cover, equal sizes, determinism,
// and that the cut beats a strided baseline on a lattice.
func TestMultilevelPartitionInvariants(t *testing.T) {
	m := comm.Stencil2DSparse(80, 80, 64, 8) // 6400 > multilevelMinOrder
	const k = 8
	groups, err := PartitionAcross(m, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = 6400 / k
	}
	checkPartitionInvariants(t, groups, 6400, sizes)

	again, err := PartitionAcross(m, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(groups, again) {
		t.Error("multilevel partition is not deterministic")
	}

	// A strided partition cuts almost every lattice edge; multilevel must
	// keep far more volume internal.
	strided := make([][]int, k)
	for e := 0; e < 6400; e++ {
		strided[e%k] = append(strided[e%k], e)
	}
	if got, base := intraVolume(m, groups), intraVolume(m, strided); got <= base {
		t.Errorf("multilevel intra volume %v not better than strided baseline %v", got, base)
	}
}

func TestMultilevelPartitionOddPerStopsCoarsening(t *testing.T) {
	// per = 5000/8 = 625 is odd: no coarsening level is available, so the
	// driver must go straight to greedy seeding + boundary refinement.
	m := comm.RandomSparse(5000, 4, 100, 3)
	const k = 8
	groups, err := PartitionAcross(m, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = 625
	}
	checkPartitionInvariants(t, groups, 5000, sizes)
}

func TestPartitionAcrossWeightedLargeSparse(t *testing.T) {
	m := comm.RandomSparse(5000, 3, 100, 9)
	caps := []int{16, 8, 8, 4, 12, 2, 6, 9}
	groups, err := PartitionAcrossWeighted(m, caps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionInvariants(t, groups, 5000, weightedSizes(5000, caps))
	again, err := PartitionAcrossWeighted(m, caps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(groups, again) {
		t.Error("weighted large-sparse partition is not deterministic")
	}
}

func TestHeavyEdgeMatchingIsPerfect(t *testing.T) {
	for _, m := range []*comm.Matrix{
		comm.Stencil2DSparse(8, 8, 64, 8),
		comm.RandomSparse(100, 2, 10, 1),
		comm.NewSparse(10), // all isolated: leftover pairing only
	} {
		pairs := heavyEdgeMatching(m)
		n := m.Order()
		if len(pairs) != n/2 {
			t.Fatalf("order %d: %d pairs, want %d", n, len(pairs), n/2)
		}
		seen := make([]bool, n)
		for _, pr := range pairs {
			if len(pr) != 2 || pr[0] >= pr[1] {
				t.Fatalf("malformed pair %v", pr)
			}
			for _, e := range pr {
				if seen[e] {
					t.Fatalf("entity %d matched twice", e)
				}
				seen[e] = true
			}
		}
		for e, ok := range seen {
			if !ok {
				t.Fatalf("entity %d unmatched", e)
			}
		}
	}
}

func TestRefineGroupsBoundaryPreservesSizesAndImproves(t *testing.T) {
	m := comm.Stencil2DSparse(40, 40, 64, 8)
	const k = 4
	// Deliberately bad start: strided groups.
	groups := make([][]int, k)
	for e := 0; e < 1600; e++ {
		groups[e%k] = append(groups[e%k], e)
	}
	before := intraVolume(m, groups)
	refineGroupsBoundary(m, groups, 4)
	checkPartitionInvariants(t, groups, 1600, []int{400, 400, 400, 400})
	if after := intraVolume(m, groups); after < before {
		t.Errorf("boundary refinement worsened the cut: %v -> %v", before, after)
	}
}

func BenchmarkPartitionAcrossSparse(b *testing.B) {
	for _, side := range []int{72, 104} {
		m := comm.Stencil2DSparse(side, side, 64, 8)
		b.Run(fmt.Sprintf("order%d", side*side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := PartitionAcross(m, 8, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartitionAcrossDense(b *testing.B) {
	// Same workload in dense storage: quantifies what the sparse
	// representation saves at identical partition quality (the two paths
	// are bit-identical).
	m := comm.Stencil2D(72, 72, 64, 8)
	b.Run("order5184", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PartitionAcross(m, 8, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
