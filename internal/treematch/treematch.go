package treematch

import (
	"fmt"

	"repro/internal/comm"
)

// Options tunes the mapping algorithm. The zero value requests the defaults.
type Options struct {
	// RefinePasses bounds the pairwise-swap refinement inside
	// GroupProcesses. 0 means the default (2); negative disables refinement.
	RefinePasses int
	// MaxRefineOrder disables refinement for matrices larger than this
	// order, keeping the mapping of very large instances fast. 0 means the
	// default (1024).
	MaxRefineOrder int
	// Distribute enables the paper's load-distribution requirement: when
	// there are fewer computing entities than leaves, the tree is first
	// restricted (Tree.Restrict) so that affine groups spread across the
	// NUMA nodes instead of piling onto one socket.
	Distribute bool
	// SFCDims, when non-nil, declares that the groups will be embedded onto
	// a grid fabric with these dimensions (a torus). It gates the
	// space-filling-curve machinery: PartitionAcross adds a chain-partition
	// candidate (consecutive runs of the affinity chain, the curve-friendly
	// shape) when the group count equals the cell count, and callers build
	// the Hilbert/snake SFCSeed for the group→cell matching. Nil leaves
	// every existing portfolio — and its winner — unchanged.
	SFCDims []int
}

func (o Options) refinePasses(order int) int {
	p := o.RefinePasses
	if p == 0 {
		p = 2
	}
	if p < 0 {
		return 0
	}
	limit := o.MaxRefineOrder
	if limit == 0 {
		limit = 1024
	}
	if order > limit {
		return 1
	}
	return p
}

// Mapping is the result of mapping a communication matrix onto a tree.
type Mapping struct {
	// Assignment maps each entity of the input matrix to a physical leaf
	// index of the tree (0..Leaves()-1). With oversubscription several
	// entities may share a leaf.
	Assignment []int
	// Slot maps each entity to its virtual slot on the assigned leaf
	// (always 0 without oversubscription).
	Slot []int
	// VirtualArity is 1 when the resources sufficed, and otherwise the
	// number of virtual slots added per leaf by manage_oversubscription.
	VirtualArity int
	// Levels records the group structure built at each tree level, from the
	// leaves upward: Levels[0] is the grouping of the original (padded)
	// entities, Levels[1] the grouping of those groups, and so on. Exposed
	// for inspection, rendering and tests.
	Levels [][][]int
}

// MapMatrix runs the core of Algorithm 1 (lines 2–8): oversubscription
// management, bottom-up affinity grouping with matrix aggregation, and the
// final matching of the group hierarchy to the tree. It maps every entity of
// m to a leaf of the tree. Control-thread extension (line 1) is layered on
// top by Map, which knows about the ORWL runtime.
//
// The matrix may have any order: it is padded internally with zero-volume
// virtual entities up to the number of (virtual) leaves, and the padding is
// stripped from the result.
func MapMatrix(tree *Tree, m *comm.Matrix, opt Options) (*Mapping, error) {
	p := m.Order()
	if p == 0 {
		return &Mapping{VirtualArity: 1}, nil
	}

	// manage_oversubscription (line 2): if there are more processes than
	// leaves, add a virtual level so that every process obtains a slot.
	work := tree
	virtual := 1
	if p > tree.Leaves() {
		virtual = (p + tree.Leaves() - 1) / tree.Leaves()
		var err error
		work, err = tree.Extend(virtual)
		if err != nil {
			return nil, err
		}
	}

	// Pad the matrix with zero-communication entities so that its order
	// equals the number of leaves; this keeps every level's group size
	// exact, as the algorithm assumes.
	padded := m
	if p < work.Leaves() {
		var err error
		padded, err = m.ExtendZero(work.Leaves())
		if err != nil {
			return nil, err
		}
	}

	// Lines 3–7: group from the leaves up, aggregating after each level.
	// current[i] holds the ordered list of original entities covered by
	// entity i of the working matrix.
	cur := make([][]int, padded.Order())
	for i := range cur {
		cur[i] = []int{i}
	}
	mat := padded
	var levels [][][]int
	for depth := work.Depth() - 1; depth >= 1; depth-- {
		arity := work.Arity(depth - 1)
		groups := GroupProcesses(mat, arity, opt.refinePasses(mat.Order()))
		levels = append(levels, groups)
		next := make([][]int, len(groups))
		for gi, g := range groups {
			for _, e := range g {
				next[gi] = append(next[gi], cur[e]...)
			}
		}
		cur = next
		var err error
		mat, err = mat.Aggregate(groups)
		if err != nil {
			return nil, err
		}
	}

	// MapGroups (line 8): after the loop a single group remains; its
	// flattened left-to-right order is exactly the leaf order of the tree,
	// because each group of size `arity` fills one subtree.
	if len(cur) != 1 {
		return nil, fmt.Errorf("treematch: internal error: %d root groups", len(cur))
	}
	flat := cur[0]
	res := &Mapping{
		Assignment:   make([]int, p),
		Slot:         make([]int, p),
		VirtualArity: virtual,
		Levels:       levels,
	}
	for pos, entity := range flat {
		if entity < p { // discard padding
			res.Assignment[entity] = pos / virtual
			res.Slot[entity] = pos % virtual
		}
	}
	return res, nil
}

// Cost returns the hop-weighted communication cost of an assignment: the sum
// over all entity pairs of their communication volume multiplied by the tree
// distance between their leaves. Lower is better; zero means all
// communication stays on single leaves.
func Cost(tree *Tree, m *comm.Matrix, assignment []int) float64 {
	var s float64
	for i := 0; i < m.Order(); i++ {
		m.ForEachNeighbor(i, func(j int, v float64) {
			if j != i {
				s += v * float64(tree.LeafDistance(assignment[i], assignment[j]))
			}
		})
	}
	return s
}

// RoundRobin returns the trivial assignment entity i → leaf i mod Leaves(),
// the baseline TreeMatch is compared against.
func RoundRobin(tree *Tree, order int) []int {
	a := make([]int, order)
	for i := range a {
		a[i] = i % tree.Leaves()
	}
	return a
}
