package topology

import (
	"strings"
	"testing"
)

func TestClusterSpecGrammar(t *testing.T) {
	tests := []struct {
		spec     string
		clusters int // NumClusterNodes
		cores    int
		wantErr  string
	}{
		{"cluster:4 pack:2 core:8", 4, 64, ""},
		// A leading "node" before a package level is promoted to the
		// cluster level (the ISSUE-2 grammar extension).
		{"node:4 pack:2 core:8", 4, 64, ""},
		{"node:2 group:2 pack:2 core:4", 2, 32, ""},
		// A leading "node" NOT followed by a group/pack level keeps its
		// NUMANode meaning (backwards compatibility).
		{"node:4 core:8", 1, 32, ""},
		{"node:2 l3:1 core:4", 1, 8, ""},
		// The promotion lets "node" and "numa" coexist.
		{"node:2 pack:2 numa:2 core:4", 2, 32, ""},
		// Out-of-order and duplicate levels still fail.
		{"numa:4 pack:2 core:8", 0, 0, "root-to-leaf order"},
		{"cluster:2 cluster:2 core:4", 0, 0, "appears twice"},
		{"pack:2 cluster:2 core:4", 0, 0, "root-to-leaf order"},
	}
	for _, tc := range tests {
		topo, err := FromSpec(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("FromSpec(%q) error = %v, want substring %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("FromSpec(%q): %v", tc.spec, err)
			continue
		}
		if got := topo.NumClusterNodes(); got != tc.clusters {
			t.Errorf("FromSpec(%q): %d cluster nodes, want %d", tc.spec, got, tc.clusters)
		}
		if got := topo.NumCores(); got != tc.cores {
			t.Errorf("FromSpec(%q): %d cores, want %d", tc.spec, got, tc.cores)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("FromSpec(%q): invalid topology: %v", tc.spec, err)
		}
	}
}

func TestClusterSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"node:4 pack:2 core:8",
		"cluster:2 core:16",
		"cluster:3 pack:2 numa:2 l3:1 core:4 pu:2",
	} {
		topo, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
		again, err := FromSpec(topo.Spec())
		if err != nil {
			t.Fatalf("canonical spec %q of %q does not reparse: %v", topo.Spec(), spec, err)
		}
		if again.Spec() != topo.Spec() {
			t.Errorf("spec %q not stable: %q -> %q", spec, topo.Spec(), again.Spec())
		}
		if again.NumClusterNodes() != topo.NumClusterNodes() {
			t.Errorf("spec %q round trip changed cluster count", spec)
		}
	}
}

func TestClusterStructure(t *testing.T) {
	topo, err := FromSpec("node:2 pack:2 core:4")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.ClusterNodes()); got != 2 {
		t.Fatalf("ClusterNodes: %d, want 2", got)
	}
	// Every cluster node carries the fabric attributes.
	for _, cn := range topo.ClusterNodes() {
		if cn.Attr.LatencyCycles <= 0 || cn.Attr.BandwidthBytesPerSec <= 0 {
			t.Errorf("%v missing fabric attributes: %+v", cn, cn.Attr)
		}
	}
	// PUs of different cluster nodes never share one; PUs of the same do.
	pus := topo.PUs()
	half := len(pus) / 2
	if !topo.SameClusterNode(pus[0], pus[half-1]) {
		t.Error("PUs of node 0 should share a cluster node")
	}
	if topo.SameClusterNode(pus[0], pus[half]) {
		t.Error("PUs of different cluster nodes reported as sharing one")
	}
	// A single-machine topology reports everything on one node.
	single, err := FromSpec("pack:2 core:4")
	if err != nil {
		t.Fatal(err)
	}
	if !single.SameClusterNode(single.PU(0), single.PU(single.NumPUs()-1)) {
		t.Error("single machine should be one cluster node")
	}
	if single.NumClusterNodes() != 1 {
		t.Error("single machine should report 1 cluster node")
	}
}
