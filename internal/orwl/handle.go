package orwl

import (
	"fmt"
	"sync"
)

// HandleState is the lifecycle state of a handle.
type HandleState int

const (
	// Idle: no request queued.
	Idle HandleState = iota
	// Requested: a request is queued but not yet acquired by the task.
	Requested
	// Acquired: the task holds the lock and may access the data.
	Acquired
)

// String names the state.
func (s HandleState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Requested:
		return "requested"
	case Acquired:
		return "acquired"
	default:
		return fmt.Sprintf("HandleState(%d)", int(s))
	}
}

// Handle binds a task to a location with an access mode. All methods must
// be called from the task's goroutine (handles are not shared between
// tasks); the state field is nevertheless mutex-protected so that
// diagnostics can inspect handles concurrently.
type Handle struct {
	task *Task
	loc  *Location
	mode Mode
	// vol is the data volume, in bytes, that one iteration of the task
	// moves through this handle; it feeds both the affinity matrix and the
	// virtual-time transfer costs. Defaults to the location size.
	vol float64
	// rank orders the initial canonical request insertion: lower ranks are
	// inserted first on each location. It lets iterative applications pick
	// which side of a producer/consumer pair starts the cycle.
	rank int
	// idx is the creation index within the task, the canonical tiebreaker.
	idx int

	mu    sync.Mutex
	state HandleState
	req   *request
}

// Location returns the location the handle is bound to.
func (h *Handle) Location() *Location { return h.loc }

// Mode returns the handle's access mode.
func (h *Handle) Mode() Mode { return h.mode }

// State returns the handle's lifecycle state.
func (h *Handle) State() HandleState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Volume returns the per-iteration data volume attributed to the handle.
func (h *Handle) Volume() float64 { return h.vol }

// SetVolume changes the volume attributed to the handle's subsequent
// acquires. It is meant to be called from the owning task's goroutine
// (handles are never shared between tasks) when the application's
// communication pattern shifts mid-run: both the transfer costs and the
// measured communication window follow the new volume, which is how a
// phase change becomes visible to epoch-based re-placement. The statically
// extracted CommMatrix, in contrast, only ever sees the volumes declared at
// build time.
func (h *Handle) SetVolume(vol float64) {
	h.mu.Lock()
	h.vol = vol
	h.mu.Unlock()
}

// Request enqueues a lock request. The runtime performs the initial
// canonical insertion itself during Run; tasks call Request directly only
// for ad-hoc (non-iterative) protocols.
func (h *Handle) Request() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Idle {
		return fmt.Errorf("orwl: Request on %s handle for %q in state %v", h.mode, h.loc.name, h.state)
	}
	h.req = newRequest(h)
	h.state = Requested
	h.loc.enqueue(h.req)
	return nil
}

// Acquire blocks until the queued request is granted. On a runtime with an
// attached machine it also advances the task's virtual clock to the grant
// time and charges the cost of moving the handle's data volume from
// wherever the previous holder released it.
func (h *Handle) Acquire() error {
	h.mu.Lock()
	if h.state == Acquired {
		h.mu.Unlock()
		return fmt.Errorf("orwl: Acquire on already-acquired handle for %q", h.loc.name)
	}
	if h.state != Requested {
		h.mu.Unlock()
		return fmt.Errorf("orwl: Acquire without Request on %q", h.loc.name)
	}
	req := h.req
	h.mu.Unlock()

	<-req.ready

	h.mu.Lock()
	h.state = Acquired
	h.mu.Unlock()

	if req.grantTask >= 0 && req.grantTask != h.task.id {
		h.task.rt.recordComm(req.grantTask, h.task.id, h.vol)
	}
	if p := h.task.proc; p != nil {
		p.AdvanceTo(req.grantClock)
		if req.fromMemory {
			if h.loc.region != nil {
				p.MemRead(h.loc.region, h.vol)
			}
		} else {
			cost := h.task.rt.mach.TransferCost(req.grantPU, p.PU(), h.vol)
			p.ChargeTransfer(cost)
		}
		h.task.chargeControlEvent()
	}
	h.task.rt.trace(h.task, "acquire", h.loc)
	return nil
}

// TryAcquire is the non-blocking variant of Acquire (orwl_test in the C
// library): it reports whether the queued request has been granted, and
// completes the acquisition exactly like Acquire when it has. A handle in
// any state other than Requested returns an error.
func (h *Handle) TryAcquire() (bool, error) {
	h.mu.Lock()
	if h.state == Acquired {
		h.mu.Unlock()
		return false, fmt.Errorf("orwl: TryAcquire on already-acquired handle for %q", h.loc.name)
	}
	if h.state != Requested {
		h.mu.Unlock()
		return false, fmt.Errorf("orwl: TryAcquire without Request on %q", h.loc.name)
	}
	req := h.req
	h.mu.Unlock()

	select {
	case <-req.ready:
	default:
		return false, nil
	}
	return true, h.Acquire()
}

// AcquireRequest is the convenience composition Request-then-Acquire.
func (h *Handle) AcquireRequest() error {
	if err := h.Request(); err != nil {
		return err
	}
	return h.Acquire()
}

// Release gives the lock up and leaves the queue. The data becomes
// available to the next request(s) in FIFO order.
func (h *Handle) Release() error {
	return h.release(nil)
}

// ReleaseAndRequest atomically enqueues a fresh request and then releases
// the held lock: the ORWL iterative primitive (orwl_next). Because the new
// request is inserted while the old one is still held, every conflicting
// task that participates in the steady-state cycle is already queued, so
// the task keeps its position in the periodic schedule.
func (h *Handle) ReleaseAndRequest() error {
	return h.release(newRequest(h))
}

func (h *Handle) release(reinsert *request) error {
	h.mu.Lock()
	if h.state != Acquired {
		h.mu.Unlock()
		return fmt.Errorf("orwl: Release on non-acquired handle for %q (state %v)", h.loc.name, h.state)
	}
	old := h.req
	h.mu.Unlock()

	clock, pu := 0.0, -2
	if p := h.task.proc; p != nil {
		clock, pu = p.Clock(), p.PU()
	}
	if err := h.loc.remove(old, reinsert, clock, pu, h.task.id); err != nil {
		return err
	}

	h.mu.Lock()
	if reinsert != nil {
		h.req = reinsert
		h.state = Requested
	} else {
		h.req = nil
		h.state = Idle
	}
	h.mu.Unlock()
	h.task.rt.trace(h.task, "release", h.loc)
	return nil
}

// Data returns the payload of the location. It fails unless the handle is
// currently acquired: accessing a location outside the critical section is
// a programming error that the C ORWL library turns into undefined
// behaviour and that we surface as an error instead.
func (h *Handle) Data() (interface{}, error) {
	h.mu.Lock()
	st := h.state
	h.mu.Unlock()
	if st != Acquired {
		return nil, fmt.Errorf("orwl: Data access on %q outside the critical section (state %v)", h.loc.name, st)
	}
	h.loc.mu.Lock()
	defer h.loc.mu.Unlock()
	return h.loc.data, nil
}

// Float64s returns the payload as a []float64, the common case for the
// numeric kernels in this repository.
func (h *Handle) Float64s() ([]float64, error) {
	v, err := h.Data()
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	f, ok := v.([]float64)
	if !ok {
		return nil, fmt.Errorf("orwl: payload of %q is %T, not []float64", h.loc.name, v)
	}
	return f, nil
}
