package sched

import (
	"fmt"
	"math"
	"math/rand"
)

// StreamConfig parameterizes the seeded workload generator. The generator is
// platform-agnostic: it emits JobSpecs whose constraint tiers are chosen
// from the configured names, and the scheduler validates them against the
// actual platform at admission time.
type StreamConfig struct {
	// Jobs is the stream length.
	Jobs int
	// Seed drives every random draw; identical configs give identical
	// streams.
	Seed int64
	// Sizes is the task-count mix jobs draw from uniformly. Every size
	// must have a stencil factorization (the generator picks the most
	// square one).
	Sizes []int
	// WorkCycles is the mean compute demand; each job draws uniformly in
	// [0.5, 1.5) of it.
	WorkCycles float64
	// VolumeBytes is the per-edge communication volume.
	VolumeBytes float64
	// Churn scales the arrival rate: mean interarrival = WorkCycles/Churn,
	// so higher churn overlaps more jobs and fragments the machine harder.
	Churn float64
	// ConstraintFraction of jobs carry topology constraints
	// (preferred=PreferredTier, required=RequiredTier).
	ConstraintFraction float64
	// PreferredTier and RequiredTier are the constraint tiers of the
	// constrained fraction ("" disables that side).
	PreferredTier, RequiredTier string
}

func (cfg StreamConfig) withDefaults() StreamConfig {
	if cfg.Jobs == 0 {
		cfg.Jobs = 40
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{4, 6, 8, 12, 16}
	}
	if cfg.WorkCycles == 0 {
		cfg.WorkCycles = 2e6
	}
	if cfg.VolumeBytes == 0 {
		cfg.VolumeBytes = 64 << 10
	}
	if cfg.Churn == 0 {
		cfg.Churn = 4
	}
	return cfg
}

// Validate rejects unusable stream parameters.
func (cfg StreamConfig) Validate() error {
	cfg = cfg.withDefaults()
	if cfg.Jobs < 1 || cfg.Jobs > 1<<20 {
		return fmt.Errorf("sched: stream jobs %d out of range", cfg.Jobs)
	}
	if cfg.Churn <= 0 || math.IsNaN(cfg.Churn) || math.IsInf(cfg.Churn, 0) {
		return fmt.Errorf("sched: stream churn %v out of range", cfg.Churn)
	}
	if cfg.ConstraintFraction < 0 || cfg.ConstraintFraction > 1 || math.IsNaN(cfg.ConstraintFraction) {
		return fmt.Errorf("sched: constraint fraction %v out of range [0,1]", cfg.ConstraintFraction)
	}
	for _, n := range cfg.Sizes {
		if n < 1 {
			return fmt.Errorf("sched: stream size %d out of range", n)
		}
	}
	return nil
}

// squarestDims returns the most square WxH factorization of n (W >= H).
func squarestDims(n int) (int, int) {
	for h := int(math.Sqrt(float64(n))); h >= 1; h-- {
		if n%h == 0 {
			return n / h, h
		}
	}
	return n, 1
}

// GenerateStream emits a deterministic job stream: arrivals are a Poisson
// process at rate Churn/WorkCycles, task graphs are seed-scrambled stencils
// (so slot-order placement scatters the heavy edges), and a configured
// fraction of jobs carries required/preferred topology constraints.
func GenerateStream(cfg StreamConfig) ([]JobSpec, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrive := 0.0
	mean := cfg.WorkCycles / cfg.Churn
	jobs := make([]JobSpec, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		arrive += rng.ExpFloat64() * mean
		tasks := cfg.Sizes[rng.Intn(len(cfg.Sizes))]
		w, h := squarestDims(tasks)
		spec := JobSpec{
			Name:         fmt.Sprintf("j%03d", i),
			ArriveCycles: math.Floor(arrive),
			WorkCycles:   math.Floor(cfg.WorkCycles * (0.5 + rng.Float64())),
			Tasks:        tasks,
			Pattern:      fmt.Sprintf("stencil:%dx%d@%d", w, h, rng.Int63n(1<<31)),
			VolumeBytes:  cfg.VolumeBytes,
		}
		if rng.Float64() < cfg.ConstraintFraction {
			spec.Preferred = cfg.PreferredTier
			spec.Required = cfg.RequiredTier
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		jobs = append(jobs, spec)
	}
	return jobs, nil
}
