package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/sched"
	"repro/internal/topology"
)

func TestBuildConfigValidation(t *testing.T) {
	tests := []struct {
		name                     string
		rows, cols, iters, cores int
		full                     bool
		wantErr                  string
	}{
		{"reduced scale", 4096, 4096, 10, 48, false, ""},
		{"full overrides bad scale flags", -1, -1, -1, -1, true, ""},
		{"negative cores", 4096, 4096, 10, -48, false, "core count"},
		{"tiny grid", 2, 4096, 10, 48, false, "too small"},
		{"negative iters", 4096, 4096, -10, 48, false, "iteration count"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildConfig(tc.rows, tc.cols, tc.iters, tc.cores, 7, tc.full)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid config, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSelectAblations(t *testing.T) {
	all, err := selectAblations("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 16 || all[0].id != "A1" || all[15].id != "A16" {
		t.Fatalf("all selects %d ablations (%+v), want A1..A16", len(all), all)
	}
	list, err := selectAblations("shift,adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].name != "adaptive" || list[1].name != "shift" {
		t.Fatalf("list selection %+v, want adaptive then shift in report order", list)
	}
	for _, bad := range []string{"nonsense", "shift,nonsense", ",", ""} {
		if _, err := selectAblations(bad); err == nil {
			t.Errorf("selector %q accepted", bad)
		}
	}
}

// TestRunJSONReport drives the machine-readable mode end to end on the A12
// ablation: the report must carry the schema marker, per-row seconds and
// cycle counts (consistent with each other), and the asserted orderings
// with passing verdicts.
func TestRunJSONReport(t *testing.T) {
	cfg := experiment.Config{Rows: 1024, Cols: 1024, Iters: 4, Cores: 16, Seed: 42}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, cfg, "shift", true); err != nil {
		t.Fatalf("run -json: %v\n%s", err, buf.String())
	}
	var report benchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Schema != benchSchema {
		t.Errorf("schema %q, want %q", report.Schema, benchSchema)
	}
	if report.Seed != 42 {
		t.Errorf("seed %d, want 42", report.Seed)
	}
	if len(report.Ablations) != 1 {
		t.Fatalf("%d ablations, want 1: %+v", len(report.Ablations), report)
	}
	a := report.Ablations[0]
	if a.ID != "A12" || a.Exp != "shift" {
		t.Errorf("ablation identity %s/%s, want A12/shift", a.ID, a.Exp)
	}
	if len(a.Rows) != len(experiment.ShiftModes()) {
		t.Errorf("%d rows, want %d", len(a.Rows), len(experiment.ShiftModes()))
	}
	for _, r := range a.Rows {
		if r.Seconds <= 0 || r.Cycles <= 0 {
			t.Errorf("row %s has non-positive cost: %+v", r.Name, r)
		}
		if want := experiment.SimCycles(r.Seconds); r.Cycles != want {
			t.Errorf("row %s cycles %v inconsistent with seconds (want %v)", r.Name, r.Cycles, want)
		}
	}
	if len(a.Orderings) != len(experiment.AblationOrderings("shift")) {
		t.Fatalf("%d ordering verdicts, want %d", len(a.Orderings), len(experiment.AblationOrderings("shift")))
	}
	for _, o := range a.Orderings {
		if !o.OK {
			t.Errorf("asserted ordering %q violated in the reduced-shape run", o.Relation)
		}
	}
}

// TestParseFaultEvents drives the fault-schedule flag syntax through its
// edge cases: every malformed entry must produce a clean flag-layer error
// (never a panic or a silently dropped entry), and well-formed entries must
// land in experiment coordinates exactly.
func TestParseFaultEvents(t *testing.T) {
	cases := []struct {
		name                 string
		kill, degrade, sever string
		want                 []experiment.FaultEventSpec
		wantErr              string
	}{
		{name: "all empty", want: nil},
		{name: "one kill", kill: "4@2", want: []experiment.FaultEventSpec{
			{Epoch: 2, Kind: topology.FaultKillNode, Node: 4},
		}},
		{name: "kill list with spaces", kill: " 4@2 , 5@3 ", want: []experiment.FaultEventSpec{
			{Epoch: 2, Kind: topology.FaultKillNode, Node: 4},
			{Epoch: 3, Kind: topology.FaultKillNode, Node: 5},
		}},
		{name: "degrade", degrade: "1:0:0.5@2", want: []experiment.FaultEventSpec{
			{Epoch: 2, Kind: topology.FaultDegradeEdge, Level: 1, Link: 0, Factor: 0.5},
		}},
		{name: "sever", sever: "0:3@4", want: []experiment.FaultEventSpec{
			{Epoch: 4, Kind: topology.FaultSeverEdge, Level: 0, Link: 3},
		}},
		{name: "kill and degrade combine", kill: "4@2", degrade: "1:1:0.25@2", want: []experiment.FaultEventSpec{
			{Epoch: 2, Kind: topology.FaultKillNode, Node: 4},
			{Epoch: 2, Kind: topology.FaultDegradeEdge, Level: 1, Link: 1, Factor: 0.25},
		}},
		{name: "kill without epoch", kill: "4", wantErr: "no @epoch"},
		{name: "kill bad node", kill: "x@2", wantErr: "bad node"},
		{name: "kill bad epoch", kill: "4@x", wantErr: "bad epoch"},
		{name: "kill epoch zero", kill: "4@0", wantErr: "not 1-based"},
		{name: "kill negative epoch", kill: "4@-1", wantErr: "not 1-based"},
		{name: "kill too many fields", kill: "4:1@2", wantErr: "want 1"},
		{name: "degrade missing factor", degrade: "1:0@2", wantErr: "want 3"},
		{name: "degrade bad factor", degrade: "1:0:x@2", wantErr: "bad level:link:factor"},
		{name: "sever missing link", sever: "0@1", wantErr: "want 2"},
		{name: "sever bad link", sever: "0:x@1", wantErr: "bad level:link"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseFaultEvents(tc.kill, tc.degrade, tc.sever)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("got %v / err %v, want error containing %q", got, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %+v, want %+v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("event %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestRunFaultSemanticErrors pins that syntactically valid fault flags whose
// entries cannot apply to the built platform fail with a clean error from
// the experiment layer — an unknown node id, an epoch beyond the run, and
// two conflicting events on one link at one epoch.
func TestRunFaultSemanticErrors(t *testing.T) {
	cfg := experiment.Config{Rows: 1024, Cols: 1024, Iters: 4, Cores: 16, Seed: 42}
	cases := []struct {
		name                 string
		kill, degrade, sever string
		wantErr              string
	}{
		{name: "unknown node", kill: "99@1", wantErr: "unknown cluster node"},
		{name: "epoch beyond run", kill: "4@50", wantErr: "beyond the run"},
		{name: "degrade factor out of range", degrade: "1:0:1.5@1", wantErr: "outside (0,1)"},
		{name: "unknown fabric level", sever: "9:0@1", wantErr: "fabric level"},
		{name: "conflicting events", degrade: "1:0:0.5@1", sever: "1:0@1", wantErr: "conflicting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, err := parseFaultEvents(tc.kill, tc.degrade, tc.sever)
			if err != nil {
				t.Fatalf("flag layer rejected %q/%q/%q: %v", tc.kill, tc.degrade, tc.sever, err)
			}
			faultOverrides.events = events
			defer func() { faultOverrides.events = nil }()
			var buf bytes.Buffer
			err = run(&buf, cfg, "fault", false)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run: got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunHumanReport pins the default rendering path.
func TestRunHumanReport(t *testing.T) {
	cfg := experiment.Config{Rows: 1024, Cols: 1024, Iters: 4, Cores: 16, Seed: 42}
	var buf bytes.Buffer
	if err := run(&buf, cfg, "shift", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "A12") || !strings.Contains(out, "shift/adaptive-fabric") {
		t.Errorf("human report misses the A12 rows:\n%s", out)
	}
}

// TestBuildSchedOverrides drives the -sched-* flag validation: malformed
// values must fail at the flag layer with a message naming the flag, and
// well-formed values must land in the override set exactly.
func TestBuildSchedOverrides(t *testing.T) {
	cases := []struct {
		name        string
		jobs        int
		churn       float64
		constraints float64
		fit, queue  string
		wantFit     sched.Fit
		wantQueue   sched.QueuePolicy
		wantErr     string
	}{
		{name: "all defaults", wantFit: sched.BestFit, wantQueue: sched.QueueWait},
		{name: "explicit knobs", jobs: 20, churn: 8, constraints: 0.5,
			fit: "worst", queue: "reject", wantFit: sched.WorstFit, wantQueue: sched.QueueReject},
		{name: "best fit by name", fit: "best", wantFit: sched.BestFit, wantQueue: sched.QueueWait},
		{name: "negative jobs", jobs: -1, wantErr: "-sched-jobs"},
		{name: "negative churn", churn: -0.5, wantErr: "-sched-churn"},
		{name: "constraints above one", constraints: 1.5, wantErr: "-sched-constraints"},
		{name: "unknown fit", fit: "snuggest", wantErr: "-sched-fit"},
		{name: "unknown queue", queue: "drop", wantErr: "-sched-queue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				schedOverrides.jobs, schedOverrides.churn, schedOverrides.constraints = 0, 0, 0
				schedOverrides.fit, schedOverrides.queue = sched.BestFit, sched.QueueWait
			}()
			err := buildSchedOverrides(tc.jobs, tc.churn, tc.constraints, tc.fit, tc.queue)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if schedOverrides.jobs != tc.jobs || schedOverrides.churn != tc.churn ||
				schedOverrides.constraints != tc.constraints {
				t.Errorf("overrides %+v, want jobs=%d churn=%v constraints=%v",
					schedOverrides, tc.jobs, tc.churn, tc.constraints)
			}
			if schedOverrides.fit != tc.wantFit || schedOverrides.queue != tc.wantQueue {
				t.Errorf("fit/queue = %v/%v, want %v/%v",
					schedOverrides.fit, schedOverrides.queue, tc.wantFit, tc.wantQueue)
			}
		})
	}
}

// TestBuildSched2Overrides drives the -sched2-* flag validation the same
// way: out-of-range values name the flag, valid values land verbatim.
func TestBuildSched2Overrides(t *testing.T) {
	cases := []struct {
		name       string
		priorities int
		threshold  float64
		wantErr    string
	}{
		{name: "all defaults"},
		{name: "explicit knobs", priorities: 5, threshold: 0.4},
		{name: "negative priorities", priorities: -1, wantErr: "-sched2-priorities"},
		{name: "priorities above hundred", priorities: 101, wantErr: "-sched2-priorities"},
		{name: "threshold above one", threshold: 1.5, wantErr: "-sched2-defrag-threshold"},
		{name: "negative threshold", threshold: -0.1, wantErr: "-sched2-defrag-threshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				sched2Overrides.priorities, sched2Overrides.defragThreshold = 0, 0
			}()
			err := buildSched2Overrides(tc.priorities, tc.threshold)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if sched2Overrides.priorities != tc.priorities || sched2Overrides.defragThreshold != tc.threshold {
				t.Errorf("overrides %+v, want priorities=%d threshold=%v",
					sched2Overrides, tc.priorities, tc.threshold)
			}
		})
	}
}
