package numasim

import (
	"testing"

	"repro/internal/topology"
)

// The cached fabric distance table must price every cluster-node pair
// exactly like the reference tree walk, on every fabric depth the spec
// language can express.

// fabricCacheSpecs spans flat, racked, and pod-depth tree fabrics (even and
// uneven node counts) plus shaped torus/dragonfly fabrics, which price along
// routed edge paths instead of the per-level tables.
var fabricCacheSpecs = []string{
	"cluster:6 pack:1 core:2",
	"rack:2 node:3 pack:1 core:2",
	"rack:3 node:2,3,1 pack:1 core:2",
	"pod:2 rack:2 node:2 pack:1 core:2",
	"pod:2 rack:2,1 node:2 pack:1 core:4",
	"torus:2x3 pack:1 core:2",
	"torus:2x2x2 pack:1 core:1",
	"dragonfly:2,2,2 pack:1 core:2",
}

func TestFabricLatencyCacheMatchesWalk(t *testing.T) {
	for _, spec := range fabricCacheSpecs {
		plat, err := NewPlatform(spec, Config{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		m := plat.Machine()
		n := len(m.Topology().ClusterNodes())
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				cached := m.fabricLatencyCycles(from, to)
				walked := m.fabricLatencyCyclesWalk(from, to)
				if cached != walked {
					t.Errorf("%s: latency(%d,%d) cached %v != walked %v",
						spec, from, to, cached, walked)
				}
			}
		}
	}
}

// TestFabricLatencyCacheCustomAttrs pins the cache against a spec whose link
// latencies differ per level, so a wrong level/group indexing cannot cancel
// out.
func TestFabricLatencyCacheCustomAttrs(t *testing.T) {
	def := topology.DefaultAttrs()
	def.NetLatencyCycles = 101
	def.UplinkLatencyCycles = 1009
	def.PodUplinkLatencyCycles = 10007
	plat, err := NewPlatformAttrs("pod:2 rack:2 node:2 pack:1 core:2", def, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := plat.Machine()
	n := len(m.Topology().ClusterNodes())
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			if cached, walked := m.fabricLatencyCycles(from, to), m.fabricLatencyCyclesWalk(from, to); cached != walked {
				t.Errorf("latency(%d,%d) cached %v != walked %v", from, to, cached, walked)
			}
		}
	}
	// Spot-check the absolute prices: same rack = 2 NICs; across racks adds
	// 2 uplinks; across pods adds 2 pod uplinks on top.
	if got := m.fabricLatencyCycles(0, 1); got != 2*101 {
		t.Errorf("same-rack latency %v, want %v", got, 2*101)
	}
	if got := m.fabricLatencyCycles(0, 2); got != 2*101+2*1009 {
		t.Errorf("cross-rack latency %v, want %v", got, 2*101+2*1009)
	}
	if got := m.fabricLatencyCycles(0, 4); got != 2*101+2*1009+2*10007 {
		t.Errorf("cross-pod latency %v, want %v", got, 2*101+2*1009+2*10007)
	}
}

func TestFabricBandwidthCacheMatchesWalk(t *testing.T) {
	for _, spec := range fabricCacheSpecs {
		plat, err := NewPlatform(spec, Config{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		m := plat.Machine()
		n := len(m.Topology().ClusterNodes())
		// Exercise the global fallback, full per-edge counts, and a mix of
		// set and unset (-1, global-fallback) edges.
		ne := m.NumFabricEdges()
		full := make([]int, ne)
		mixed := make([]int, ne)
		for e := range full {
			full[e] = 1 + e%3
			mixed[e] = full[e]
			if e%2 == 1 {
				mixed[e] = -1
			}
		}
		streamStates := []struct {
			streams []int
			global  int
		}{
			{nil, 1},
			{nil, 7},
			{full, 2},
			{mixed, 5},
		}
		for _, st := range streamStates {
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					if from == to {
						continue
					}
					cached := m.fabricBandwidth(from, to, st.streams, st.global)
					walked := m.fabricBandwidthWalk(from, to, st.streams, st.global)
					if cached != walked {
						t.Errorf("%s global=%d: bandwidth(%d,%d) cached %v != walked %v",
							spec, st.global, from, to, cached, walked)
					}
				}
			}
		}
	}
}

// TestLinkStreamsPriceIdenticallyPerEdge pins the satellite guarantee of
// the per-edge refactor: declaring contention through the per-level
// SetLinkStreams wrapper produces the same per-edge stream state — and so
// the same transfer prices — as declaring the equivalent counts directly
// with SetEdgeStreams.
func TestLinkStreamsPriceIdenticallyPerEdge(t *testing.T) {
	for _, spec := range fabricCacheSpecs {
		platA, err := NewPlatform(spec, Config{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		platB, err := NewPlatform(spec, Config{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		a, b := platA.Machine(), platB.Machine()
		g := a.FabricGraph()
		perEdge := make([]int, g.NumEdges())
		for e := range perEdge {
			perEdge[e] = -1
		}
		if a.NumFabricLevels() == 0 {
			// Shaped fabric: no per-level form exists; only the direct
			// per-edge declaration applies.
			for e := range perEdge {
				perEdge[e] = 1 + e%4
			}
			a.SetEdgeStreams(perEdge)
			b.SetEdgeStreams(perEdge)
		} else {
			for l := 0; l < a.NumFabricLevels(); l++ {
				counts := make([]int, a.FabricLevelSize(l))
				for i := range counts {
					counts[i] = 1 + (l+i)%4
				}
				a.SetLinkStreams(l, counts)
				for i, e := range g.LevelEdges(l) {
					perEdge[e] = counts[i]
				}
			}
			b.SetEdgeStreams(perEdge)
		}
		n := len(a.Topology().ClusterNodes())
		for e := 0; e < a.NumFabricEdges(); e++ {
			if a.EdgeStreams(e) != b.EdgeStreams(e) {
				t.Fatalf("%s: EdgeStreams(%d): wrapper %d != per-edge %d", spec, e, a.EdgeStreams(e), b.EdgeStreams(e))
			}
		}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				pa := a.fabricBandwidth(from, to, a.edgeStreams, a.fabricStreams)
				pb := b.fabricBandwidth(from, to, b.edgeStreams, b.fabricStreams)
				if pa != pb {
					t.Errorf("%s: bandwidth(%d,%d) via wrapper %v != per-edge %v", spec, from, to, pa, pb)
				}
			}
		}
	}
}

// The benchmark pair quantifies what the distance table saves per transfer
// priced: run with `go test -bench FabricLatency ./internal/numasim`.
func benchmarkFabricLatency(b *testing.B, f func(m *Machine, from, to int) float64) {
	plat, err := NewPlatform("pod:2 rack:4 node:8 pack:1 core:2", Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := plat.Machine()
	n := len(m.Topology().ClusterNodes())
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := i % n
		to := (i*7 + 1) % n
		if from == to {
			to = (to + 1) % n
		}
		sink += f(m, from, to)
	}
	_ = sink
}

func BenchmarkFabricLatencyCached(b *testing.B) {
	benchmarkFabricLatency(b, func(m *Machine, from, to int) float64 {
		return m.fabricLatencyCycles(from, to)
	})
}

func BenchmarkFabricLatencyWalk(b *testing.B) {
	benchmarkFabricLatency(b, func(m *Machine, from, to int) float64 {
		return m.fabricLatencyCyclesWalk(from, to)
	})
}
