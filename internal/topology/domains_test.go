package topology

import (
	"reflect"
	"testing"
)

func domainTopo(t *testing.T, spec string) *Topology {
	t.Helper()
	topo, err := FromSpec(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	return topo
}

func TestFabricDomainsTiers(t *testing.T) {
	topo := domainTopo(t, "pod:2 rack:2 node:2 pack:1 core:4 pu:1")

	cluster := topo.FabricDomains(Cluster)
	if len(cluster) != 8 {
		t.Fatalf("cluster domains = %d, want 8", len(cluster))
	}
	for i, d := range cluster {
		if d.Index != i || !reflect.DeepEqual(d.Nodes, []int{i}) {
			t.Fatalf("cluster domain %d = %v", i, d)
		}
	}

	racks := topo.FabricDomains(Rack)
	if len(racks) != 4 {
		t.Fatalf("rack domains = %d, want 4", len(racks))
	}
	for i, d := range racks {
		want := []int{2 * i, 2*i + 1}
		if !reflect.DeepEqual(d.Nodes, want) {
			t.Fatalf("rack domain %d nodes = %v, want %v", i, d.Nodes, want)
		}
	}

	pods := topo.FabricDomains(Pod)
	if len(pods) != 2 {
		t.Fatalf("pod domains = %d, want 2", len(pods))
	}
	if !reflect.DeepEqual(pods[1].Nodes, []int{4, 5, 6, 7}) {
		t.Fatalf("pod domain 1 nodes = %v", pods[1].Nodes)
	}

	machine := topo.FabricDomains(Machine)
	if len(machine) != 1 || len(machine[0].Nodes) != 8 {
		t.Fatalf("machine domains = %v", machine)
	}

	wantTiers := []Kind{Cluster, Rack, Pod, Machine}
	if got := topo.DomainTiers(); !reflect.DeepEqual(got, wantTiers) {
		t.Fatalf("DomainTiers = %v, want %v", got, wantTiers)
	}
}

func TestFabricDomainsFlatPlatform(t *testing.T) {
	topo := domainTopo(t, "cluster:4 pack:1 core:4 pu:1")
	if d := topo.FabricDomains(Rack); d != nil {
		t.Fatalf("rack domains on rackless platform = %v, want nil", d)
	}
	if d := topo.FabricDomains(Pod); d != nil {
		t.Fatalf("pod domains on podless platform = %v, want nil", d)
	}
	if got := topo.DomainTiers(); !reflect.DeepEqual(got, []Kind{Cluster, Machine}) {
		t.Fatalf("DomainTiers = %v", got)
	}
	if d := topo.FabricDomains(Cluster); len(d) != 4 {
		t.Fatalf("cluster domains = %v", d)
	}
}
