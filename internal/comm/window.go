package comm

import "sync"

// Window accumulates communication volumes over a bounded horizon: the
// runtime feeds it every observed handoff, and at each epoch boundary the
// placement engine takes a snapshot and rolls the window forward. Rolling
// either clears the accumulation (decay 0, a hard per-epoch window) or
// scales it by a decay factor in (0,1), an exponentially weighted moving
// sum that favours recent traffic without forgetting the past outright.
//
// Where Runtime.MeasuredCommMatrix grows without bound over a run — and
// therefore converges to the time-averaged pattern, hiding phase changes —
// a Window sees mostly the traffic since the previous epoch, which is what
// an adaptive re-placement decision must react to.
//
// A Window is safe for concurrent use.
type Window struct {
	mu  sync.Mutex
	cur *Matrix
}

// NewWindow returns an empty window over n entities.
func NewWindow(n int) *Window {
	return &Window{cur: New(n)}
}

// Order returns the number of entities the window tracks.
func (w *Window) Order() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur.Order()
}

// AddSym accumulates one observed exchange of vol bytes between entities i
// and j onto both (i,j) and (j,i).
func (w *Window) AddSym(i, j int, vol float64) {
	w.mu.Lock()
	w.cur.AddSym(i, j, vol)
	w.mu.Unlock()
}

// Snapshot returns a copy of the current accumulation without rolling the
// window.
func (w *Window) Snapshot() *Matrix {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur.Clone()
}

// Roll returns a snapshot of the accumulation and rolls the window forward:
// every entry is scaled by decay, so 0 resets the window entirely and a
// factor in (0,1) keeps a decayed memory of earlier epochs. Decay values
// outside [0,1) are treated as 0.
func (w *Window) Roll(decay float64) *Matrix {
	if !(decay >= 0 && decay < 1) { // coerces NaN too, not only out-of-range
		decay = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := w.cur.Clone()
	if decay == 0 {
		w.cur = New(snap.Order())
	} else {
		w.cur.Scale(decay)
	}
	return snap
}
