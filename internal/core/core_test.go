package core

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/orwl"
	"repro/internal/placement"
)

func TestSystemEndToEnd(t *testing.T) {
	sys, err := NewSystem(Options{TopologySpec: "pack:2 l3:1 core:4 pu:1", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := kernels.NewGrid(16, 16, 5)
	prog, err := kernels.Build(sys.Runtime(), 16, 16, kernels.BuildOptions{
		BX: 2, BY: 2, Iters: 3, Costs: kernels.LK23Costs, Grid: g, Cell: g.Cell,
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	if err := sys.Run(heavy); err != nil {
		t.Fatal(err)
	}
	if sys.Seconds() <= 0 {
		t.Errorf("no simulated time")
	}
	if sys.Assignment() == nil || sys.Assignment().Policy != "treematch" {
		t.Errorf("assignment = %+v", sys.Assignment())
	}
	res, err := prog.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := kernels.RunJacobiLK23(g, 3); !res.Equal(want, 0) {
		t.Errorf("numerics changed by the core pipeline")
	}
	rep := sys.Report()
	for _, want := range []string{"machine:", "treematch", "simulated time"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q:\n%s", want, rep)
		}
	}
	if err := sys.Run(nil); err == nil {
		t.Errorf("second Run accepted")
	}
}

func TestSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Machine().Topology().NumCores(); got != 192 {
		t.Errorf("default machine cores = %d, want 192 (the paper's SMP)", got)
	}
}

func TestSystemBadSpec(t *testing.T) {
	if _, err := NewSystem(Options{TopologySpec: "bogus:1"}); err == nil {
		t.Errorf("bad spec accepted")
	}
}

func TestSystemNoBindPolicy(t *testing.T) {
	sys, err := NewSystem(Options{TopologySpec: "pack:2 core:2 pu:1", Policy: placement.NoBind{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	loc := sys.Runtime().NewLocation("x", 8)
	task := sys.Runtime().AddTask("t", func(task *orwl.Task) error {
		h := task.Handle(0)
		if err := h.Acquire(); err != nil {
			return err
		}
		return h.Release()
	})
	task.NewHandle(loc, orwl.Write)
	if err := sys.Run(nil); err != nil {
		t.Fatal(err)
	}
	if sys.Assignment().Policy != "nobind" {
		t.Errorf("policy = %s", sys.Assignment().Policy)
	}
	if task.PU() != -1 {
		t.Errorf("nobind bound the task to %d", task.PU())
	}
}
