package orwl

import (
	"fmt"

	"repro/internal/numasim"
	"repro/internal/topology"
)

// TaskFunc is the body of a task. It runs in its own goroutine once the
// runtime has inserted all initial lock requests. A non-nil error aborts
// the whole run.
type TaskFunc func(t *Task) error

// Task is an ORWL unit of execution: a named function owning an ordered set
// of handles. In the paper's vocabulary every task is executed by one
// computation thread, assisted by a control thread belonging to the runtime
// (handling lock transitions and data movement); the placement module binds
// both kinds of threads.
type Task struct {
	rt      *Runtime
	id      int
	name    string
	fn      TaskFunc
	handles []*Handle

	// pu is the PU the computation thread is bound to; -1 = unbound (the
	// simulated OS places and migrates it).
	pu int
	// ctlPU is the PU the control thread is bound to; -1 = unmapped.
	ctlPU int

	proc *numasim.Proc

	// iterations completed, maintained by EndIteration (diagnostics only).
	iterations int
}

// ID returns the task's index within its runtime; the canonical
// initialization order follows it.
func (t *Task) ID() int { return t.id }

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// Handles returns the task's handles in creation order.
func (t *Task) Handles() []*Handle { return t.handles }

// Handle returns the i-th handle created by the task.
func (t *Task) Handle(i int) *Handle { return t.handles[i] }

// Proc returns the simulated execution context, or nil when the runtime has
// no machine attached. Kernels use it to charge compute and memory costs.
func (t *Task) Proc() *numasim.Proc { return t.proc }

// PU returns the PU the task is bound to, or -1 when unbound.
func (t *Task) PU() int { return t.pu }

// ControlPU returns the PU the task's control thread is bound to, or -1.
func (t *Task) ControlPU() int { return t.ctlPU }

// SetFunc installs the task body. Builders that need the task's handles
// inside the closure create the task first, create the handles, then call
// SetFunc; it must happen before the runtime starts.
func (t *Task) SetFunc(fn TaskFunc) {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.rt.state != stateBuilding {
		panic("orwl: SetFunc after the runtime started")
	}
	t.fn = fn
}

// NewHandle binds the task to a location. The per-iteration volume defaults
// to the location's size and the canonical rank to 0; use NewHandleVol for
// explicit values. Handles must be created before the runtime starts.
func (t *Task) NewHandle(loc *Location, mode Mode) *Handle {
	return t.NewHandleVol(loc, mode, float64(loc.Size()), 0)
}

// NewHandleVol binds the task to a location declaring the volume (bytes
// moved through the handle per iteration, used for affinity extraction and
// transfer costs) and the canonical rank (lower ranks insert their initial
// request earlier on the location's FIFO; ties break by task ID, then by
// handle creation order).
func (t *Task) NewHandleVol(loc *Location, mode Mode, vol float64, rank int) *Handle {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.rt.state != stateBuilding {
		panic("orwl: NewHandle after the runtime started")
	}
	h := &Handle{task: t, loc: loc, mode: mode, vol: vol, rank: rank, idx: len(t.handles)}
	t.handles = append(t.handles, h)
	return h
}

// EndIteration marks an iteration boundary: a scheduling point at which the
// simulated OS may migrate an unbound task (bound tasks never move), and —
// when epochs are enabled (ConfigureEpochs) — the point where the task
// parks at the epoch barrier every epoch-interval iterations. Iterative
// kernels call it once per outer iteration, after releasing every handle of
// the iteration, so that a parked task never starves another task's
// progress toward the same barrier.
func (t *Task) EndIteration() {
	t.iterations++
	if t.proc != nil {
		t.proc.Reschedule(t.rt.opts.MigrationProbability)
	}
	if es := t.rt.epochs; es != nil && t.iterations%es.interval == 0 {
		t.rt.epochArrive(t)
	}
}

// Iterations returns the number of EndIteration calls so far.
func (t *Task) Iterations() int { return t.iterations }

// chargeControlEvent prices one lock transition handled by the task's
// control thread. The cost grows with the distance between the computation
// thread and its control thread, which is exactly the effect the paper's
// control-thread placement adaptation targets:
//
//	same core (co-hyperthread)  1×
//	same NUMA node              2×
//	remote node                 4×
//	unmapped (OS-scheduled)     6×
func (t *Task) chargeControlEvent() {
	p := t.proc
	if p == nil {
		return
	}
	base := t.rt.opts.ControlEventCycles
	mult := 6.0
	if t.ctlPU >= 0 {
		topo := t.rt.mach.Topology()
		taskPU, ctlPU := topo.PU(p.PU()), topo.PU(t.ctlPU)
		switch {
		case taskPU.Ancestor(topology.Core) == ctlPU.Ancestor(topology.Core):
			mult = 1
		case topo.SameNUMANode(taskPU, ctlPU):
			mult = 2
		default:
			mult = 4
		}
	}
	p.ComputeCycles(base * mult)
}

// String renders the task for diagnostics.
func (t *Task) String() string {
	return fmt.Sprintf("task#%d(%s)", t.id, t.name)
}
