package experiment

import (
	"strings"
	"testing"
)

func TestStencilDims(t *testing.T) {
	cases := []struct{ tasks, bx, by int }{
		{10_000, 100, 100},
		{100_000, 250, 400},
		{200, 10, 20},
		{7, 1, 7},
		{1, 1, 1},
	}
	for _, c := range cases {
		bx, by := stencilDims(c.tasks)
		if bx != c.bx || by != c.by {
			t.Errorf("stencilDims(%d) = (%d,%d), want (%d,%d)", c.tasks, bx, by, c.bx, c.by)
		}
		if bx*by != c.tasks || bx > by {
			t.Errorf("stencilDims(%d) = (%d,%d) is not a square-ish factorization", c.tasks, bx, by)
		}
	}
}

// TestAblationScaleSmallGrid drives the benchmark tier end to end on a tiny
// grid: one row per (pattern, tasks, nodes) point with tasks ≥ nodes, wall
// time measured, nothing simulated.
func TestAblationScaleSmallGrid(t *testing.T) {
	rows, err := AblationScale(ScaleConfig{
		Tasks:        []int{200},
		Nodes:        []int{4, 10, 400}, // 400 > 200 tasks: skipped
		CoresPerNode: 2,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 patterns × 2 admissible node counts): %+v", len(rows), rows)
	}
	wantNames := []string{
		"scale/stencil/200-tasks/4-nodes",
		"scale/random/200-tasks/4-nodes",
		"scale/stencil/200-tasks/10-nodes",
		"scale/random/200-tasks/10-nodes",
	}
	for i, r := range rows {
		if r.Name != wantNames[i] {
			t.Errorf("row %d named %q, want %q", i, r.Name, wantNames[i])
		}
		if r.WallSeconds <= 0 {
			t.Errorf("row %s has no wall time: %+v", r.Name, r)
		}
		if r.Seconds != 0 {
			t.Errorf("row %s claims simulated seconds %v; benchmark rows must not", r.Name, r.Seconds)
		}
		if !strings.Contains(r.Detail, "nnz") {
			t.Errorf("row %s detail %q misses the nnz count", r.Name, r.Detail)
		}
	}
	// Benchmark rows render with their wall time, not a speedup column.
	out := FormatAblation("S1", rows)
	if !strings.Contains(out, "s wall") {
		t.Errorf("FormatAblation does not render wall rows:\n%s", out)
	}
}

func TestScaleConfigFromCarriesSeed(t *testing.T) {
	sc := ScaleConfigFrom(Config{Rows: 1024, Cols: 1024, Iters: 1, Cores: 16, Seed: 99})
	if sc.Seed != 99 {
		t.Errorf("seed %d, want 99", sc.Seed)
	}
	sc = sc.withDefaults()
	if len(sc.Tasks) != 2 || len(sc.Nodes) != 3 || sc.CoresPerNode != 8 {
		t.Errorf("defaults not applied: %+v", sc)
	}
}
