package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// This file holds the phase-2 scheduler policies — conservative backfill,
// priority preemption, and hysteresis-gated defragmentation. All three hang
// off the same primitive: tryPlace is side-effect-free, so the policies can
// probe hypothetical placements against temporarily mutated capacity, price
// the outcome on the machine model (numasim.MigrationCostCycles /
// CheckpointCostCycles plus the comm delta of a re-layout), and only commit
// when the priced gain beats the bill.

// resumeState is the checkpoint of a preempted job awaiting restart.
type resumeState struct {
	// remaining is the service still owed, including the checkpoint write
	// that was charged at eviction.
	remaining float64
	// remFrac is the fraction of the evicted dispatch's service that was
	// outstanding — it scales the comm re-pricing of the new layout.
	remFrac float64
	// comm is the full-matrix comm cost of the evicted layout; oldPUs the
	// task→PU binding the respawn pulls its images from.
	comm   float64
	oldPUs []int
}

// workingSetBytes models the per-task checkpoint image: the task's block
// plus its halo buffers — four stencil edges of the job's per-edge volume.
func workingSetBytes(spec JobSpec) float64 { return 4 * spec.VolumeBytes }

// earliestStart computes when the blocked job j could start at the latest —
// assuming nothing new arrives — by walking the departure horizon: replay
// the running set's departures in (finish, seq) order against a snapshot of
// the per-node free counts and return the first finish time at which some
// allowed domain has enough free slots. For every policy a domain-count fit
// implies tryPlace succeeds, so this bound is exact, and it is the anchor of
// both the backfill window and the preemption/defrag gain.
func (r *runLoop) earliestStart(j *jobState) float64 {
	s := r.s
	freeN := s.cap.nodeFreeCounts()
	total := 0
	for _, f := range freeN {
		total += f
	}
	var (
		domFree []int
		domOf   func(n int) int
	)
	fits := func() bool { return total >= j.spec.Tasks }
	if s.opts.Policy != FirstFit {
		tiers, err := s.tierLadder(j.spec)
		if err != nil {
			return math.Inf(1)
		}
		// The ladder's tiers nest, so fitting any allowed tier is
		// equivalent to fitting the widest one.
		tier := tiers[len(tiers)-1]
		domFree = make([]int, len(s.cap.Domains(tier)))
		for n, f := range freeN {
			domFree[s.cap.DomainOfNode(tier, n)] += f
		}
		domOf = func(n int) int { return s.cap.DomainOfNode(tier, n) }
		fits = func() bool {
			for _, f := range domFree {
				if f >= j.spec.Tasks {
					return true
				}
			}
			return false
		}
	}
	if fits() {
		return r.clock
	}
	horizon := append(departureHeap(nil), r.running...)
	sort.Sort(horizon)
	for _, d := range horizon {
		for _, core := range d.cores {
			n := s.cap.NodeOf(core)
			freeN[n]++
			total++
			if domFree != nil {
				domFree[domOf(n)]++
			}
		}
		if fits() {
			return d.finish
		}
	}
	return math.Inf(1)
}

// backfill dispatches queued jobs past the blocked head when their whole
// modeled service fits inside the head's earliest-feasible-start window:
// every backfilled job returns its slots before the head could possibly
// start, so the head is never delayed (conservative backfill). The window
// is computed once against the pre-backfill running set; backfilled jobs
// only ever return capacity earlier, so it stays a valid lower bound.
func (r *runLoop) backfill(head *jobState) error {
	window := r.earliestStart(head) - r.clock
	if window <= 0 {
		return nil
	}
	for i := 1; i < len(r.queue); {
		k := r.queue[i]
		placed, _, err := r.s.tryPlace(k)
		if err != nil {
			return err
		}
		if placed == nil {
			i++
			continue
		}
		if svc, _ := r.s.serviceOf(k, placed); svc > window {
			i++
			continue
		}
		if err := r.dispatch(k, placed, true); err != nil {
			return err
		}
		r.queue = append(r.queue[:i], r.queue[i+1:]...)
	}
	return nil
}

// preemptAttempt opens the blocked head's required domain by checkpointing
// and requeueing strictly-lower-priority unconstrained jobs, when:
//
//   - the head is required-constrained, has priority > 0, and no allowed
//     domain fits it (tryPlace already failed);
//   - the machine holds enough total free slots for the head, so every
//     victim can re-place immediately after the head binds — eviction
//     trades the head's long wait for the victims' migration bills, never
//     for a second queue stall;
//   - the head's modeled wait saving (its earliest feasible start without
//     intervention) exceeds the victims' estimated checkpoint/respawn bill.
//
// Victims are chosen deterministically (priority ascending, then bill per
// freed core, then sequence) per domain, and the cheapest-bill domain wins.
func (r *runLoop) preemptAttempt(head *jobState) (bool, error) {
	s := r.s
	if !s.opts.Preempt || s.opts.Policy == FirstFit {
		return false, nil
	}
	if head.spec.Required == "" || head.spec.Priority <= 0 {
		return false, nil
	}
	if s.cap.FreeTotal() < head.spec.Tasks {
		return false, nil // victims could not all restart right away
	}
	tiers, err := s.tierLadder(head.spec)
	if err != nil {
		return false, nil
	}
	tier := tiers[len(tiers)-1] // the required boundary

	// Candidate victims in deterministic eviction order.
	var eligible []*departure
	for i := range r.running {
		d := &r.running[i]
		if d.job.spec.Required == "" && d.job.spec.Priority < head.spec.Priority {
			eligible = append(eligible, d)
		}
	}
	if len(eligible) == 0 {
		return false, nil
	}
	// Estimate each candidate's eviction bill up front: its checkpoint
	// write plus the respawn pull onto a reference free slot (the exact
	// destination is chosen at restart; any free slot prices the same
	// order of magnitude). Victims are then taken cheapest-per-freed-core
	// first within the lowest priority class, so a small low-priority job
	// is evicted before a wide one.
	refPU := -1
	for n, count := range s.cap.nodeFreeCounts() {
		if count > 0 {
			slots := s.cap.FreeSlots([]int{n})
			refPU = s.topo.Cores()[slots[n][0]].Children[0].OSIndex
			break
		}
	}
	billOf := make(map[int]float64, len(eligible))
	for _, v := range eligible {
		ws := workingSetBytes(v.job.spec)
		bill := 0.0
		for _, pu := range v.taskPU {
			bill += s.mach.CheckpointCostCycles(pu, ws)
			if refPU >= 0 {
				bill += s.mach.MigrationCostCycles(pu, refPU, ws)
			}
		}
		billOf[v.seq] = bill
	}
	sort.Slice(eligible, func(i, j int) bool {
		vi, vj := eligible[i], eligible[j]
		if vi.job.spec.Priority != vj.job.spec.Priority {
			return vi.job.spec.Priority < vj.job.spec.Priority
		}
		ci := billOf[vi.seq] / float64(len(vi.cores))
		cj := billOf[vj.seq] / float64(len(vj.cores))
		if ci != cj {
			return ci < cj
		}
		return vi.seq < vj.seq
	})

	coresIn := func(d *departure, dom int) int {
		n := 0
		for _, core := range d.cores {
			if s.cap.DomainOfNode(tier, s.cap.NodeOf(core)) == dom {
				n++
			}
		}
		return n
	}
	var chosen []*departure
	bestDom := -1
	bestBill := math.Inf(1)
	for dom := range s.cap.Domains(tier) {
		need := head.spec.Tasks - s.cap.DomainFree(tier, dom)
		if need <= 0 {
			continue // tryPlace would have taken it; stale head, bail
		}
		var take []*departure
		bill := 0.0
		for _, v := range eligible {
			if need <= 0 {
				break
			}
			if in := coresIn(v, dom); in > 0 {
				take = append(take, v)
				need -= in
				bill += billOf[v.seq]
			}
		}
		if need > 0 {
			continue
		}
		if bestDom < 0 || bill < bestBill {
			bestDom, chosen, bestBill = dom, take, bill
		}
	}
	if bestDom < 0 {
		return false, nil
	}

	// Price the intervention: gain is the wait the head would otherwise
	// serve; the bill is the chosen victims' checkpoint/respawn estimate.
	gain := r.earliestStart(head) - r.clock
	if gain <= 0 {
		return false, nil
	}
	bill := bestBill
	if gain <= bill {
		return false, nil
	}

	// Commit: evict every chosen victim — close its segment, charge the
	// checkpoint write into its outstanding remainder, and requeue it
	// right behind the head so it restarts as soon as the head binds.
	evicted := map[int]bool{}
	requeue := make([]*jobState, 0, len(chosen))
	for _, v := range chosen {
		evicted[v.seq] = true
		if err := s.cap.Release(v.cores); err != nil {
			return false, fmt.Errorf("sched: preempt release %s: %w", v.stat.Name, err)
		}
		r.closeSegment(v, r.clock)
		v.stat.Segments[len(v.stat.Segments)-1].FinishCycles = r.clock
		ckpt := 0.0
		ws := workingSetBytes(v.job.spec)
		for _, pu := range v.taskPU {
			ckpt += s.mach.CheckpointCostCycles(pu, ws)
		}
		remFrac := 0.0
		if v.service > 0 {
			remFrac = (v.finish - r.clock) / v.service
		}
		v.job.resume = &resumeState{
			remaining: v.finish - r.clock + ckpt,
			remFrac:   remFrac,
			comm:      v.comm,
			oldPUs:    append([]int(nil), v.taskPU...),
		}
		v.job.waitSince = r.clock
		v.stat.Preemptions++
		r.rep.Preemptions++
		requeue = append(requeue, v.job)
	}
	kept := r.running[:0]
	for _, d := range r.running {
		if !evicted[d.seq] {
			kept = append(kept, d)
		}
	}
	r.running = kept
	heap.Init(&r.running)
	rest := append([]*jobState(nil), r.queue[1:]...)
	r.queue = append(append([]*jobState{head}, requeue...), rest...)
	return true, nil
}

// defragAttempt compacts capacity for a blocked head by migrating one
// running job: hypothetically release a candidate, check the head then fits,
// re-place the candidate on what remains (honoring its own constraints), and
// commit the cheapest such move — charged at the migration bill (per-task
// MigrationCostCycles plus the comm delta of the new layout on the
// outstanding fraction) — only when the head's wait saving exceeds it. This
// is the adaptive engine's hysteresis pattern applied across jobs; at most
// one migration per drain attempt keeps the churn bounded.
func (r *runLoop) defragAttempt(head *jobState) (bool, error) {
	s := r.s
	if !s.opts.Defrag || s.opts.Policy == FirstFit {
		return false, nil
	}
	if r.weight() < s.opts.DefragThreshold {
		return false, nil
	}
	gain := r.earliestStart(head) - r.clock
	if gain <= 0 || math.IsInf(gain, 1) {
		return false, nil
	}
	type plan struct {
		idx    int
		placed *placementResult
		bill   float64
	}
	var best *plan
	for i := range r.running {
		v := &r.running[i]
		if err := s.cap.Release(v.cores); err != nil {
			return false, fmt.Errorf("sched: defrag probe release %s: %w", v.stat.Name, err)
		}
		headPlaced, _, errHead := s.tryPlace(head)
		var vPlaced *placementResult
		var errV error
		if errHead == nil && headPlaced != nil {
			if errV = s.cap.Bind(headPlaced.cores); errV == nil {
				vPlaced, _, errV = s.tryPlace(v.job)
				if err := s.cap.Release(headPlaced.cores); err != nil {
					return false, fmt.Errorf("sched: defrag probe unbind head: %w", err)
				}
			}
		}
		if err := s.cap.Bind(v.cores); err != nil {
			return false, fmt.Errorf("sched: defrag probe rebind %s: %w", v.stat.Name, err)
		}
		if errHead != nil {
			return false, errHead
		}
		if errV != nil {
			return false, errV
		}
		if headPlaced == nil || vPlaced == nil {
			continue
		}
		remFrac := 0.0
		if v.service > 0 {
			remFrac = (v.finish - r.clock) / v.service
		}
		bill := (vPlaced.comm - v.comm) * remFrac
		ws := workingSetBytes(v.job.spec)
		for t, old := range v.taskPU {
			bill += s.mach.MigrationCostCycles(old, vPlaced.taskPU[t], ws)
		}
		if bill >= gain {
			continue
		}
		if best == nil || bill < best.bill || (bill == best.bill && v.seq < r.running[best.idx].seq) {
			best = &plan{idx: i, placed: vPlaced, bill: bill}
		}
	}
	if best == nil {
		return false, nil
	}

	// Commit the move: the migrated job keeps running on its new cores
	// with its finish pushed by the bill; the head's slots are now free
	// and the caller's retry will bind them.
	v := &r.running[best.idx]
	if err := s.cap.Release(v.cores); err != nil {
		return false, fmt.Errorf("sched: defrag release %s: %w", v.stat.Name, err)
	}
	if err := s.cap.Bind(best.placed.cores); err != nil {
		return false, fmt.Errorf("sched: defrag bind %s: %w", v.stat.Name, err)
	}
	r.closeSegment(v, r.clock)
	st := v.stat
	st.Segments[len(st.Segments)-1].FinishCycles = r.clock
	newFinish := v.finish + best.bill
	st.Segments = append(st.Segments, Segment{StartCycles: r.clock, FinishCycles: newFinish, Cores: best.placed.cores})
	st.CommCycles = best.placed.comm
	st.FinishCycles = newFinish
	st.Tier = best.placed.tier
	st.Domain = best.placed.domain
	st.Cores = best.placed.cores
	st.NodesSpanned = best.placed.nodes
	st.DefragMigrations++
	st.DefragCostCycles += best.bill
	r.rep.DefragMigrations++
	r.rep.DefragCostCycles += best.bill
	v.cores = best.placed.cores
	v.taskPU = best.placed.taskPU
	v.comm = best.placed.comm
	v.service += best.bill
	v.lastStart = r.clock
	v.finish = newFinish
	heap.Fix(&r.running, best.idx)
	return true, nil
}
