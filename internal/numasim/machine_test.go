package numasim

import (
	"testing"

	"repro/internal/topology"
)

func paperMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(topology.PaperMachine(), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func smallMachine(t *testing.T, spec string) *Machine {
	t.Helper()
	top, err := topology.FromSpec(spec)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	m, err := New(top, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewMachine(t *testing.T) {
	m := paperMachine(t)
	if m.ClockHz() != 2.27e9 {
		t.Errorf("ClockHz = %v", m.ClockHz())
	}
	if got := m.NodeOfPU(0); got != 0 {
		t.Errorf("NodeOfPU(0) = %d", got)
	}
	if got := m.NodeOfPU(191); got != 23 {
		t.Errorf("NodeOfPU(191) = %d, want 23", got)
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Errorf("nil topology accepted")
	}
	cfg := m.Config()
	def := DefaultConfig()
	if cfg.FlopsPerCycle != def.FlopsPerCycle || cfg.SMTComputeInflation != def.SMTComputeInflation {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestAccessors(t *testing.T) {
	m := paperMachine(t)
	if m.Accessors(0) != 1 {
		t.Errorf("default accessors = %d", m.Accessors(0))
	}
	m.SetAccessors(0, 8)
	if m.Accessors(0) != 8 {
		t.Errorf("accessors = %d", m.Accessors(0))
	}
	m.SetAccessors(1, -2) // clamps to 1
	if m.Accessors(1) != 1 {
		t.Errorf("negative accessors = %d, want 1", m.Accessors(1))
	}
	m.ResetAccessors()
	if m.Accessors(0) != 1 {
		t.Errorf("ResetAccessors left %d", m.Accessors(0))
	}
}

func TestContentionScalesBandwidth(t *testing.T) {
	m := paperMachine(t)
	bw1 := m.effectiveBandwidth(0, 0)
	m.SetAccessors(0, 10)
	bw10 := m.effectiveBandwidth(0, 0)
	if bw10 >= bw1 {
		t.Fatalf("contention did not reduce bandwidth: %v -> %v", bw1, bw10)
	}
	if got, want := bw1/bw10, 10.0; got < want*0.99 || got > want*1.01 {
		t.Errorf("contention ratio = %v, want ~10", got)
	}
}

func TestRemoteCostsMoreThanLocal(t *testing.T) {
	m := paperMachine(t)
	local := m.memCostCycles(0, 0, 1<<20)
	remote := m.memCostCycles(0, 12, 1<<20)
	if remote <= local {
		t.Errorf("remote cost %v not above local %v", remote, local)
	}
	// Latency-only part also ordered.
	if m.memLatencyCycles(0, 12) <= m.memLatencyCycles(0, 0) {
		t.Errorf("remote latency not above local")
	}
	if m.memCostCycles(0, 0, 0) != 0 {
		t.Errorf("zero bytes should be free")
	}
}

func TestTransferCost(t *testing.T) {
	// pack:2 l3:1 core:4 -> 4 cores per socket share an L3.
	m := smallMachine(t, "pack:2 l3:1 core:4 pu:1")
	samePU := m.TransferCost(0, 0, 4096)
	sameL3 := m.TransferCost(0, 1, 4096)
	sameNode := sameL3 // all of socket 0 shares the L3 here
	cross := m.TransferCost(0, 4, 4096)
	if samePU != 0 {
		t.Errorf("same-PU transfer = %v, want 0", samePU)
	}
	if !(sameL3 > 0 && cross > sameNode) {
		t.Errorf("transfer ordering violated: l3=%v cross=%v", sameL3, cross)
	}
	// On-chip transfers must be far cheaper than cross-socket ones.
	if cross < 5*sameL3 {
		t.Errorf("cross-socket %v not ≫ shared-cache %v", cross, sameL3)
	}
	// Unbound endpoints still produce a finite positive cost.
	if c := m.TransferCost(-1, 3, 4096); c <= 0 {
		t.Errorf("unbound-from transfer = %v", c)
	}
	if c := m.TransferCost(3, -1, 4096); c <= 0 {
		t.Errorf("unbound-to transfer = %v", c)
	}
}

func TestMissFactor(t *testing.T) {
	m := paperMachine(t) // 24 MiB L3 shared by 8 cores -> 3 MiB/PU share
	tiny := m.MissFactor(0, 1<<10)
	huge := m.MissFactor(0, 1<<30)
	if huge != 1 {
		t.Errorf("huge working set factor = %v, want 1", huge)
	}
	if tiny >= huge {
		t.Errorf("tiny factor %v not below huge %v", tiny, huge)
	}
	if tiny < DefaultConfig().MinCacheMissFactor {
		t.Errorf("tiny factor %v below floor", tiny)
	}
	if m.MissFactor(0, 0) != 1 {
		t.Errorf("zero working set factor != 1")
	}
	// Monotone in the working-set size.
	prev := 0.0
	for ws := int64(1 << 16); ws <= 1<<26; ws <<= 2 {
		f := m.MissFactor(0, ws)
		if f < prev {
			t.Errorf("MissFactor not monotone at %d: %v < %v", ws, f, prev)
		}
		prev = f
	}
}

func TestCyclesToSeconds(t *testing.T) {
	m := paperMachine(t)
	if got := m.CyclesToSeconds(2.27e9); got < 0.999 || got > 1.001 {
		t.Errorf("1s of cycles = %v s", got)
	}
}

func TestRegionAllocation(t *testing.T) {
	m := paperMachine(t)
	r, err := m.AllocOn("a", 1024, 3)
	if err != nil {
		t.Fatalf("AllocOn: %v", err)
	}
	if r.Home() != 3 || r.Policy() != Explicit || r.Bytes() != 1024 || r.Name() != "a" {
		t.Errorf("region = %v %v %d %q", r.Home(), r.Policy(), r.Bytes(), r.Name())
	}
	if _, err := m.AllocOn("bad", 1, 99); err == nil {
		t.Errorf("out-of-range node accepted")
	}
	if _, err := m.AllocOn("bad", -1, 0); err == nil {
		t.Errorf("negative size accepted")
	}
	ft := m.AllocFirstTouch("ft", 10)
	if ft.Home() != -1 {
		t.Errorf("untouched first-touch home = %d", ft.Home())
	}
	il := m.AllocInterleaved("il", 10)
	if il.Home() != -1 || il.Policy() != Interleaved {
		t.Errorf("interleaved region: %d %v", il.Home(), il.Policy())
	}
	if err := r.MoveTo(5); err != nil || r.Home() != 5 {
		t.Errorf("MoveTo: %v, home %d", err, r.Home())
	}
	if err := r.MoveTo(-1); err == nil {
		t.Errorf("MoveTo(-1) accepted")
	}
}

func TestPlacementString(t *testing.T) {
	if FirstTouch.String() != "first-touch" || Explicit.String() != "explicit" ||
		Interleaved.String() != "interleaved" {
		t.Errorf("placement names wrong")
	}
	if Placement(7).String() == "" {
		t.Errorf("unknown placement empty")
	}
}
