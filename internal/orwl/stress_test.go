package orwl

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestManyTasksManyLocations is a stress test: a 2-D torus of tasks, each
// reading two neighbour locations and writing its own, over many
// iterations. It exercises canonical init, read-sharing, re-request cycling
// and the leak checker at a scale closer to the paper's 1728-task runs.
// Run with -race in CI to validate the locking protocol.
func TestManyTasksManyLocations(t *testing.T) {
	const (
		side  = 12 // 144 tasks, 144 locations
		iters = 25
	)
	rt := buildRuntime()
	locs := make([]*Location, side*side)
	for i := range locs {
		locs[i] = rt.NewLocation(fmt.Sprintf("l%d", i), 8)
		locs[i].SetData([]float64{1})
	}
	id := func(x, y int) int { return ((y+side)%side)*side + (x+side)%side }
	var grants int64
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			task := rt.AddTask(fmt.Sprintf("t(%d,%d)", x, y), func(task *Task) error {
				// Creation order below: east read, south read, own write.
				re, rs, rw := task.Handle(0), task.Handle(1), task.Handle(2)
				for it := 0; it < iters; it++ {
					last := it == iters-1
					var east, south float64
					for _, r := range []*Handle{re, rs} {
						if err := r.Acquire(); err != nil {
							return err
						}
						v, err := r.Float64s()
						if err != nil {
							return err
						}
						if r == re {
							east = v[0]
						} else {
							south = v[0]
						}
						atomic.AddInt64(&grants, 1)
						if err := releaseOrNext(r, last); err != nil {
							return err
						}
					}
					if err := rw.Acquire(); err != nil {
						return err
					}
					v, err := rw.Float64s()
					if err != nil {
						return err
					}
					v[0] = (east + south) / 2
					atomic.AddInt64(&grants, 1)
					if err := releaseOrNext(rw, last); err != nil {
						return err
					}
				}
				return nil
			})
			// Readers rank 0, writer rank 1 (the canonical stencil cycle).
			task.NewHandleVol(locs[id(x+1, y)], Read, 8, 0)
			task.NewHandleVol(locs[id(x, y+1)], Read, 8, 0)
			task.NewHandleVol(locs[id(x, y)], Write, 8, 1)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := int64(side * side * iters * 3); grants != want {
		t.Errorf("grants = %d, want %d", grants, want)
	}
	// All-ones torus averaging stays all ones: a cheap global invariant.
	for i, l := range locs {
		if v := l.PeekData().([]float64)[0]; v != 1 {
			t.Fatalf("location %d = %v, want 1", i, v)
		}
	}
	// Every queue fully drained.
	for _, l := range locs {
		if l.QueueLen() != 0 {
			t.Errorf("location %s queue = %d", l.Name(), l.QueueLen())
		}
	}
}

// TestReadSharingGrantsCountedOnce verifies that a group grant of k readers
// counts k grants and that interleaving writers break the groups at the
// right positions.
func TestReadSharingGrantsCountedOnce(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	// Queue: R R W R R -> groups {r1,r2}, {w}, {r3,r4}.
	mk := func(mode Mode) *Handle {
		return rt.AddTask("t", nil).NewHandle(loc, mode)
	}
	r1, r2, w, r3, r4 := mk(Read), mk(Read), mk(Write), mk(Read), mk(Read)
	for _, h := range []*Handle{r1, r2, w, r3, r4} {
		if err := h.Request(); err != nil {
			t.Fatal(err)
		}
	}
	if loc.Grants() != 2 {
		t.Fatalf("initial grants = %d, want the leading read pair", loc.Grants())
	}
	for _, h := range []*Handle{r1, r2} {
		if err := h.Acquire(); err != nil {
			t.Fatal(err)
		}
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if loc.Grants() != 3 {
		t.Fatalf("grants after readers = %d, want writer granted", loc.Grants())
	}
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	if loc.Grants() != 5 {
		t.Fatalf("grants after writer = %d, want trailing read pair", loc.Grants())
	}
	for _, h := range []*Handle{r3, r4} {
		if err := h.Acquire(); err != nil {
			t.Fatal(err)
		}
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVirtualClockMonotonePerTask checks a core engine invariant: a task's
// virtual clock never decreases through any sequence of operations.
func TestVirtualClockMonotonePerTask(t *testing.T) {
	rt := simRuntime(t, "pack:2 l3:1 core:4 pu:1", 13)
	locs := ringProgram(rt, 8, 15, 4096)
	_ = locs
	type sample struct {
		task  string
		clock float64
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-task clocks from stats: wait + compute + memory +
	// transfer should not exceed the final clock (equality holds since all
	// charges go through those four buckets).
	for _, task := range rt.Tasks() {
		st := task.Proc().Stats()
		sum := st.ComputeCycles + st.MemoryCycles + st.TransferCycles + st.WaitCycles
		clock := task.Proc().Clock()
		diff := clock - sum
		if diff < -1e-6 || diff > 1e-6+float64(st.Migrations)*rt.Machine().Config().MigrationPenaltyCycles {
			t.Errorf("%s: clock %v != bucket sum %v (+migrations)", task.Name(), clock, sum)
		}
	}
}
