package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/treematch"
)

func clusterMachine(t *testing.T, nodes int, nodeSpec string) *numasim.Machine {
	t.Helper()
	c, err := numasim.NewCluster(nodes, nodeSpec, numasim.Fabric{}, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c.Machine()
}

// interNodeCut sums the volume between tasks placed on different cluster
// nodes: the traffic an assignment sends over the fabric.
func interNodeCut(mach *numasim.Machine, m *comm.Matrix, taskPU []int) float64 {
	var s float64
	for i := 0; i < m.Order(); i++ {
		for j := i + 1; j < m.Order(); j++ {
			if mach.ClusterNodeOfPU(taskPU[i]) != mach.ClusterNodeOfPU(taskPU[j]) {
				s += m.At(i, j) + m.At(j, i)
			}
		}
	}
	return s
}

func TestHierarchicalValidAssignment(t *testing.T) {
	mach := clusterMachine(t, 4, "pack:2 l3:1 core:6")
	m := comm.Stencil2D(8, 6, 1000, 10) // 48 tasks on 48 cores
	a, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy != "hierarchical" {
		t.Errorf("policy = %q", a.Policy)
	}
	topo := mach.Topology()
	used := map[int]int{}
	for i, pu := range a.TaskPU {
		if pu < 0 || pu >= topo.NumPUs() {
			t.Fatalf("task %d on PU %d out of range", i, pu)
		}
		used[pu]++
	}
	// One task per core: no PU may be oversubscribed.
	for pu, n := range used {
		if n > 1 {
			t.Errorf("PU %d carries %d tasks, want 1", pu, n)
		}
	}
	// All four nodes carry work.
	nodes := map[int]bool{}
	for _, pu := range a.TaskPU {
		nodes[mach.ClusterNodeOfPU(pu)] = true
	}
	if len(nodes) != 4 {
		t.Errorf("%d cluster nodes carry tasks, want 4", len(nodes))
	}
}

// TestHierarchicalBeatsFlatAndRR is the structural heart of the tentpole:
// on a multi-node stencil, explicit node-level cut minimization must move
// less volume over the fabric — and cost less under the machine's transfer
// model — than flat TreeMatch on the whole cluster tree and than round-robin
// across nodes.
func TestHierarchicalBeatsFlatAndRR(t *testing.T) {
	mach := clusterMachine(t, 4, "pack:2 l3:1 core:6")
	m := comm.Stencil2D(8, 6, 1000, 10)

	hier, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobinNodes{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}

	hCut := interNodeCut(mach, m, hier.TaskPU)
	fCut := interNodeCut(mach, m, flat.TaskPU)
	rCut := interNodeCut(mach, m, rr.TaskPU)
	if hCut > fCut {
		t.Errorf("hierarchical cuts %.0f bytes across the fabric, flat treematch %.0f", hCut, fCut)
	}
	if hCut >= rCut {
		t.Errorf("hierarchical cut %.0f not below round-robin cut %.0f", hCut, rCut)
	}

	hCost := MappingCost(mach, m, hier.TaskPU)
	fCost := MappingCost(mach, m, flat.TaskPU)
	rCost := MappingCost(mach, m, rr.TaskPU)
	if hCost > fCost {
		t.Errorf("hierarchical mapping cost %.0f above flat %.0f", hCost, fCost)
	}
	if hCost >= rCost {
		t.Errorf("hierarchical mapping cost %.0f not below round-robin %.0f", hCost, rCost)
	}
}

func TestHierarchicalSingleMachineFallsBack(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:4")
	m := comm.Stencil2D(4, 2, 1000, 10)
	a, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy != "hierarchical" {
		t.Errorf("policy = %q", a.Policy)
	}
	for i := range a.TaskPU {
		if a.TaskPU[i] != tm.TaskPU[i] {
			t.Fatalf("single-machine hierarchical diverges from treematch at task %d: %d vs %d",
				i, a.TaskPU[i], tm.TaskPU[i])
		}
	}
}

func TestHierarchicalOversubscription(t *testing.T) {
	mach := clusterMachine(t, 2, "pack:1 l3:1 core:4")
	m := comm.Stencil2D(4, 4, 1000, 10) // 16 tasks on 8 cores
	a, err := Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualArity < 2 {
		t.Errorf("virtual arity %d, want >= 2", a.VirtualArity)
	}
	for i, pu := range a.TaskPU {
		if pu < 0 || pu >= mach.Topology().NumPUs() {
			t.Fatalf("task %d on PU %d out of range", i, pu)
		}
	}
}

func TestRoundRobinNodesSpreads(t *testing.T) {
	mach := clusterMachine(t, 3, "pack:1 core:4")
	m := comm.Ring(6, 1000)
	a, err := RoundRobinNodes{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got, want := mach.ClusterNodeOfPU(a.TaskPU[i]), i%3; got != want {
			t.Errorf("task %d on node %d, want %d", i, got, want)
		}
	}
}

func TestPartitionAcross(t *testing.T) {
	// Two 4-cliques with heavy internal volume and one thin link between
	// them: the 2-way partition must recover the cliques.
	m := comm.New(8)
	for _, g := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for _, i := range g {
			for _, j := range g {
				if i < j {
					m.AddSym(i, j, 1000)
				}
			}
		}
	}
	m.AddSym(3, 4, 1)
	groups, err := treematch.PartitionAcross(m, 2, treematch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	node := make([]int, 8)
	for g, members := range groups {
		if len(members) != 4 {
			t.Fatalf("group %d has %d members, want 4", g, len(members))
		}
		for _, e := range members {
			node[e] = g
		}
	}
	for _, pair := range [][2]int{{0, 3}, {4, 7}} {
		if node[pair[0]] != node[pair[1]] {
			t.Errorf("clique members %d and %d split across groups", pair[0], pair[1])
		}
	}
	if node[0] == node[4] {
		t.Error("both cliques on one group")
	}
}
