package comm

import (
	"testing"
)

func TestStencil2DStructure(t *testing.T) {
	m := Stencil2D(3, 3, 100, 1)
	if m.Order() != 9 {
		t.Fatalf("order = %d", m.Order())
	}
	if !m.IsSymmetric() {
		t.Fatalf("stencil matrix not symmetric")
	}
	id := func(x, y int) int { return y*3 + x }
	// Horizontal/vertical neighbours get the edge volume.
	if got := m.At(id(0, 0), id(1, 0)); got != 100 {
		t.Errorf("east edge = %v, want 100", got)
	}
	if got := m.At(id(1, 1), id(1, 2)); got != 100 {
		t.Errorf("south edge = %v, want 100", got)
	}
	// Diagonal neighbours get the corner volume.
	if got := m.At(id(0, 0), id(1, 1)); got != 1 {
		t.Errorf("corner = %v, want 1", got)
	}
	// Non-neighbours communicate nothing.
	if got := m.At(id(0, 0), id(2, 2)); got != 0 {
		t.Errorf("non-neighbour = %v, want 0", got)
	}
	// No wrap-around.
	if got := m.At(id(0, 0), id(2, 0)); got != 0 {
		t.Errorf("wrap edge = %v, want 0", got)
	}
	// Centre block has 4 edge + 4 corner neighbours.
	if got := m.RowVolume(id(1, 1)); got != 4*100+4*1 {
		t.Errorf("centre row volume = %v, want 404", got)
	}
	if m.Label(id(2, 1)) != "b(2,1)" {
		t.Errorf("label = %q", m.Label(id(2, 1)))
	}
}

func TestStencil2DDegrees(t *testing.T) {
	m := Stencil2D(4, 4, 1, 1)
	deg := func(i int) int {
		d := 0
		for j := 0; j < m.Order(); j++ {
			if j != i && m.At(i, j) > 0 {
				d++
			}
		}
		return d
	}
	// Corners have 3 neighbours, edges 5, interior 8.
	if got := deg(0); got != 3 {
		t.Errorf("corner degree = %d, want 3", got)
	}
	if got := deg(1); got != 5 {
		t.Errorf("edge degree = %d, want 5", got)
	}
	if got := deg(5); got != 8 {
		t.Errorf("interior degree = %d, want 8", got)
	}
}

func TestLK23OpLevel(t *testing.T) {
	bx, by, bw, bh := 2, 2, 64, 32
	m := LK23OpLevel(bx, by, bw, bh, 8)
	if m.Order() != bx*by*OpsPerBlock {
		t.Fatalf("order = %d, want %d", m.Order(), bx*by*OpsPerBlock)
	}
	if !m.IsSymmetric() {
		t.Fatalf("op matrix not symmetric")
	}
	main00 := LK23OpIndex(bx, 0, 0, OpMain)
	e00 := LK23OpIndex(bx, 0, 0, OpE)
	s00 := LK23OpIndex(bx, 0, 0, OpS)
	n00 := LK23OpIndex(bx, 0, 0, OpN)
	se00 := LK23OpIndex(bx, 0, 0, OpSE)
	main10 := LK23OpIndex(bx, 1, 0, OpMain)
	main01 := LK23OpIndex(bx, 0, 1, OpMain)
	main11 := LK23OpIndex(bx, 1, 1, OpMain)

	// Main writes its east strip (blockH elements × 8 bytes).
	if got := m.At(main00, e00); got != float64(bh*8) {
		t.Errorf("main↔E = %v, want %v", got, bh*8)
	}
	// The east frontier feeds the east neighbour's main.
	if got := m.At(e00, main10); got != float64(bh*8) {
		t.Errorf("E↔neighbour main = %v, want %v", got, bh*8)
	}
	// South strip is blockW elements.
	if got := m.At(s00, main01); got != float64(bw*8) {
		t.Errorf("S↔south main = %v, want %v", got, bw*8)
	}
	// Corner export is a single element.
	if got := m.At(se00, main11); got != 8 {
		t.Errorf("SE↔diag main = %v, want 8", got)
	}
	// North frontier of a top-row block has no external reader...
	if got := m.RowVolume(n00); got != float64(bw*8) {
		t.Errorf("boundary frontier row volume = %v, want only main link %v", got, bw*8)
	}
	// ...but still talks to its own main.
	if got := m.At(n00, main00); got != float64(bw*8) {
		t.Errorf("boundary frontier↔main = %v, want %v", got, bw*8)
	}
	// Two mains never talk directly: halo always flows through frontier ops.
	if got := m.At(main00, main10); got != 0 {
		t.Errorf("main↔main = %v, want 0", got)
	}
	if got := m.Label(LK23OpIndex(bx, 1, 0, OpSW)); got != "b(1,0).SW" {
		t.Errorf("label = %q", got)
	}
}

func TestLK23MainDominatesOwnFrontiers(t *testing.T) {
	// The affinity between a main op and its own frontier ops must dominate
	// the affinity between ops of different blocks; this is what makes
	// TreeMatch co-locate each block's 9 threads (the paper's grouping).
	m := LK23OpLevel(3, 3, 128, 128, 8)
	main := LK23OpIndex(3, 1, 1, OpMain)
	ownTotal := 0.0
	for f := OpN; f <= OpSW; f++ {
		ownTotal += m.At(main, LK23OpIndex(3, 1, 1, f))
	}
	crossTotal := m.RowVolume(main) - ownTotal
	if !(ownTotal > 0 && crossTotal >= 0) {
		t.Fatalf("bad volumes: own=%v cross=%v", ownTotal, crossTotal)
	}
	if ownTotal < crossTotal {
		t.Errorf("own-block affinity %v < cross-block %v; grouping signal lost", ownTotal, crossTotal)
	}
}

func TestRingAllToAllRandom(t *testing.T) {
	r := Ring(5, 2)
	for i := 0; i < 5; i++ {
		// Each ring node has two neighbours at volume 2 each.
		if got := r.RowVolume(i); got != 4 {
			t.Errorf("ring row %d volume = %v, want 4", i, got)
		}
	}
	if Ring(1, 3).TotalVolume() != 0 {
		t.Errorf("degenerate ring has volume")
	}
	a := AllToAll(4, 1)
	if got := a.TotalVolume(); got != 4*3*1 {
		t.Errorf("all-to-all volume = %v, want 12", got)
	}
	m1 := Random(10, 0.5, 100, 9)
	m2 := Random(10, 0.5, 100, 9)
	if !m1.Equal(m2, 0) {
		t.Errorf("Random not deterministic for equal seeds")
	}
	if !m1.IsSymmetric() {
		t.Errorf("Random matrix not symmetric")
	}
	m3 := Random(10, 0.5, 100, 10)
	if m1.Equal(m3, 0) {
		t.Errorf("different seeds produced identical matrices")
	}
}

func TestFrontierString(t *testing.T) {
	if OpMain.String() != "main" || OpNE.String() != "NE" {
		t.Errorf("Frontier names wrong: %v %v", OpMain, OpNE)
	}
	if Frontier(42).String() == "" {
		t.Errorf("out-of-range Frontier empty")
	}
}
