// Package comm represents the communication (affinity) matrices that drive
// topology-aware placement.
//
// Entry (i,j) of a matrix is the data volume, in bytes, exchanged between
// computing entities i and j over the lifetime of the application (or of one
// steady-state iteration; TreeMatch only cares about relative weights). The
// ORWL runtime extracts such a matrix automatically from the way tasks,
// handles and locations are composed (see internal/placement); this package
// also provides synthetic generators for the workloads used in the paper's
// evaluation and in tests.
//
// # The structural matrix is not the runtime's bill
//
// The extracted matrix is structural: it attributes a pairwise volume
// (essentially min of the handle volumes involved) to every pair of tasks
// that share a location. The simulator prices something subtly different:
// the B-location FIFO charges the full write-handle volume against the PU
// acquiring from the previous holder, and a location whose readers span
// several cluster nodes bounces the lock — and the data — across the fabric
// once per foreign node per iteration, a cost the pairwise matrix cannot
// express. Partitions therefore optimize a slightly different objective
// than the simulator prices: two placements with identical byte×hop cost
// can differ in makespan when one spreads a location's readers over more
// nodes (observed concretely on 8×8 stencils split four ways, where an
// equal-cut slab layout beats a lower-cut center-block layout). The
// measured epoch window (Window) narrows the gap — it records granted
// handoffs, not declarations — but per-pair attribution remains pairwise.
// Reconciling the two models is an open ROADMAP item ("Structural matrix vs
// runtime charges").
package comm

import (
	"fmt"
	"math"
)

// Matrix is a square communication matrix. The zero value is unusable; use
// New. Methods panic on out-of-range indices, mirroring slice semantics.
type Matrix struct {
	n      int
	v      []float64 // row-major, length n*n
	labels []string  // optional entity names, length n when present
}

// New returns an order-n zero matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic("comm: negative matrix order")
	}
	return &Matrix{n: n, v: make([]float64, n*n)}
}

// Order returns the number of computing entities (the matrix dimension).
func (m *Matrix) Order() int { return m.n }

// At returns the volume exchanged between entities i and j.
func (m *Matrix) At(i, j int) float64 { return m.v[i*m.n+j] }

// Set assigns the volume exchanged between entities i and j.
func (m *Matrix) Set(i, j int, vol float64) { m.v[i*m.n+j] = vol }

// Add accumulates volume onto entry (i,j).
func (m *Matrix) Add(i, j int, vol float64) { m.v[i*m.n+j] += vol }

// AddSym accumulates volume onto both (i,j) and (j,i), the natural operation
// when recording one message of the given size between two entities.
func (m *Matrix) AddSym(i, j int, vol float64) {
	m.v[i*m.n+j] += vol
	if i != j {
		m.v[j*m.n+i] += vol
	}
}

// Label returns the name of entity i, or "t<i>" when no labels were set.
func (m *Matrix) Label(i int) string {
	if m.labels == nil {
		return fmt.Sprintf("t%d", i)
	}
	return m.labels[i]
}

// SetLabel names entity i.
func (m *Matrix) SetLabel(i int, s string) {
	if m.labels == nil {
		m.labels = make([]string, m.n)
		for k := range m.labels {
			m.labels[k] = fmt.Sprintf("t%d", k)
		}
	}
	m.labels[i] = s
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.n)
	copy(c.v, m.v)
	if m.labels != nil {
		c.labels = append([]string(nil), m.labels...)
	}
	return c
}

// IsSymmetric reports whether the matrix equals its transpose exactly.
func (m *Matrix) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.At(i, j) != m.At(j, i) {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces the matrix with (M + Mᵀ)/2 in place and returns it.
// TreeMatch assumes affinity is symmetric.
func (m *Matrix) Symmetrize() *Matrix {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
	return m
}

// TotalVolume returns the sum of all off-diagonal entries, i.e. twice the
// total pairwise communication volume of a symmetric matrix.
func (m *Matrix) TotalVolume() float64 {
	var s float64
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j {
				s += m.At(i, j)
			}
		}
	}
	return s
}

// RowVolume returns the total off-diagonal volume of row i: how much entity
// i exchanges with everyone else (in its outgoing direction).
func (m *Matrix) RowVolume(i int) float64 {
	var s float64
	for j := 0; j < m.n; j++ {
		if j != i {
			s += m.At(i, j)
		}
	}
	return s
}

// Aggregate builds the quotient matrix over a partition of the entities:
// entry (a,b) of the result is the total volume between the entities of
// groups[a] and those of groups[b]; diagonal entries accumulate the volume
// internal to each group. Every entity index must appear in exactly one
// group. This is the AggregateComMatrix step of the paper's Algorithm 1.
func (m *Matrix) Aggregate(groups [][]int) (*Matrix, error) {
	seen := make([]bool, m.n)
	for _, g := range groups {
		for _, e := range g {
			if e < 0 || e >= m.n {
				return nil, fmt.Errorf("comm: aggregate: entity %d out of range [0,%d)", e, m.n)
			}
			if seen[e] {
				return nil, fmt.Errorf("comm: aggregate: entity %d appears in two groups", e)
			}
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("comm: aggregate: entity %d not covered by any group", e)
		}
	}
	agg := New(len(groups))
	for a, ga := range groups {
		for b, gb := range groups {
			var s float64
			for _, i := range ga {
				for _, j := range gb {
					s += m.At(i, j)
				}
			}
			agg.Set(a, b, s)
		}
	}
	return agg, nil
}

// ExtendZero returns a copy of the matrix grown to the given larger order;
// the new rows and columns are zero. Used when virtual entities (spare
// slots, unmapped control threads) must be represented. Labels of the new
// entities default to "v<i>".
func (m *Matrix) ExtendZero(order int) (*Matrix, error) {
	if order < m.n {
		return nil, fmt.Errorf("comm: cannot extend order %d down to %d", m.n, order)
	}
	e := New(order)
	for i := 0; i < m.n; i++ {
		copy(e.v[i*order:i*order+m.n], m.v[i*m.n:(i+1)*m.n])
	}
	if m.labels != nil || order > m.n {
		e.labels = make([]string, order)
		for i := range e.labels {
			switch {
			case i < m.n:
				e.labels[i] = m.Label(i)
			default:
				e.labels[i] = fmt.Sprintf("v%d", i)
			}
		}
	}
	return e, nil
}

// Submatrix returns the restriction of the matrix to the given entities, in
// the given order: entry (a,b) of the result is the volume between
// entities ids[a] and ids[b]. Labels follow. Indices must be in range and
// distinct. Hierarchical placement uses this to carve one cluster node's
// task set out of the global affinity matrix.
func (m *Matrix) Submatrix(ids []int) (*Matrix, error) {
	seen := make([]bool, m.n)
	for _, e := range ids {
		if e < 0 || e >= m.n {
			return nil, fmt.Errorf("comm: submatrix: entity %d out of range [0,%d)", e, m.n)
		}
		if seen[e] {
			return nil, fmt.Errorf("comm: submatrix: entity %d appears twice", e)
		}
		seen[e] = true
	}
	s := New(len(ids))
	for a, i := range ids {
		for b, j := range ids {
			s.Set(a, b, m.At(i, j))
		}
	}
	if m.labels != nil {
		for a, i := range ids {
			s.SetLabel(a, m.Label(i))
		}
	}
	return s, nil
}

// MaxEntry returns the largest entry of the matrix (0 for an empty matrix).
func (m *Matrix) MaxEntry() float64 {
	var mx float64
	for _, x := range m.v {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Scale multiplies every entry by f in place and returns the matrix.
func (m *Matrix) Scale(f float64) *Matrix {
	for i := range m.v {
		m.v[i] *= f
	}
	return m
}

// Equal reports whether two matrices have the same order and entries within
// the given absolute tolerance.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.v {
		if math.Abs(m.v[i]-o.v[i]) > tol {
			return false
		}
	}
	return true
}
