package experiment

import (
	"fmt"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
	"repro/internal/topology"
)

// The heterogeneous-platform experiment (A11) exercises the spec-driven
// Platform API end to end: a three-switch-level fabric (NICs under
// top-of-rack switches under pod switches under the core switch) whose racks
// each hold one big and one small node — mixed node generations, the shape
// real clusters grow into. The workload is a pod-skewed stencil: heavy
// traffic inside node-capacity-sized blocks plus a medium pair exchange
// between one big and one small block, paired so that the positional
// (identity) group→node assignment sends every pair across the pod
// boundary, while a capacity-class-constrained fabric matching can co-locate
// each pair under one top-of-rack switch.
//
// Three placement arms isolate the two new mechanisms:
//
//   - aware: capacity-weighted partition (an 8-core node receives an 8-task
//     block, a 4-core node a 4-task block) plus the class-constrained
//     fabric matching — pairs share racks, nobody is oversubscribed;
//   - capacity-blind: equal shares ceil(p/k) regardless of node size — the
//     partition must cut the heavy blocks and the small nodes oversubscribe;
//   - depth-blind: capacity-weighted but no fabric matching — every pair
//     exchange climbs to the pod uplinks, the scarcest links of the fabric.
//
// The acceptance property, asserted in tests and at bench time, is
// aware < capacity-blind < depth-blind.

// HeteroConfig parameterizes one heterogeneous pod-tier stencil run.
type HeteroConfig struct {
	// Pods is the number of pod switches (default 2, minimum 2 so the pod
	// uplinks exist).
	Pods int
	// RacksPerPod is the number of top-of-rack switches per pod (default 2).
	RacksPerPod int
	// BigCores and SmallCores shape the two node generations of each rack
	// (defaults 8 and 4); each rack holds one node of either kind.
	BigCores, SmallCores int
	// CoresPerSocket shapes the sockets of both node kinds (default 4).
	CoresPerSocket int
	// Iters is the number of stencil iterations (default 20).
	Iters int
	// BlockBytes is each task's working set (default 2 MiB).
	BlockBytes int64
	// HaloBytes is the per-iteration volume exchanged between grid
	// neighbours inside a node-sized block (default 512 KiB — heavy enough
	// that a capacity-blind equal split, which must cut the big blocks,
	// pays visibly for every severed grid edge).
	HaloBytes float64
	// PairBytes is the per-iteration volume between slot-aligned tasks of
	// partnered big/small blocks (default 96 KiB): the traffic whose rack-
	// vs-pod placement the ablation isolates. Unlike the rack scenario's
	// one-edge-per-task pairing, a small task here carries two pair edges
	// (both aligned big slots read it), so the per-edge volume must stay
	// below half a halo edge or the min-cut partition would trade grid
	// edges inside a big block for pair edges and split the blocks.
	PairBytes float64
	// LinkBytes is the light connectivity volume between consecutive blocks
	// (default 32 KiB).
	LinkBytes float64
	// Seed drives the simulated OS scheduler.
	Seed int64
}

func (c HeteroConfig) withDefaults() HeteroConfig {
	if c.Pods == 0 {
		c.Pods = 2
	}
	if c.RacksPerPod == 0 {
		c.RacksPerPod = 2
	}
	if c.BigCores == 0 {
		c.BigCores = 8
	}
	if c.SmallCores == 0 {
		c.SmallCores = 4
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 4
	}
	if c.Iters == 0 {
		c.Iters = 20
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 2 << 20
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 512 << 10
	}
	if c.PairBytes == 0 {
		c.PairBytes = 96 << 10
	}
	if c.LinkBytes == 0 {
		c.LinkBytes = 32 << 10
	}
	return c
}

// Validate rejects configurations the hetero pipeline cannot run.
func (c HeteroConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case d.Pods < 2:
		return fmt.Errorf("experiment: hetero scenario needs at least 2 pods, got %d", d.Pods)
	case d.Pods%2 != 0:
		return fmt.Errorf("experiment: hetero scenario needs an even pod count so every pair can cross pods, got %d", d.Pods)
	case d.RacksPerPod < 1:
		return fmt.Errorf("experiment: invalid racks per pod %d", d.RacksPerPod)
	case d.BigCores <= d.SmallCores:
		return fmt.Errorf("experiment: big nodes (%d cores) must exceed small nodes (%d cores)", d.BigCores, d.SmallCores)
	case d.SmallCores < 1:
		return fmt.Errorf("experiment: invalid small node size %d", d.SmallCores)
	case d.BigCores%d.CoresPerSocket != 0 || d.SmallCores%d.CoresPerSocket != 0:
		return fmt.Errorf("experiment: node sizes %d/%d not divisible into sockets of %d", d.BigCores, d.SmallCores, d.CoresPerSocket)
	case d.Iters < 1:
		return fmt.Errorf("experiment: iteration count %d must be positive", d.Iters)
	case d.BlockBytes < 0 || d.HaloBytes < 0 || d.PairBytes < 0 || d.LinkBytes < 0:
		return fmt.Errorf("experiment: negative volume in hetero config")
	}
	return nil
}

// HeteroPlatformSpec renders the platform spec of the configuration: a pod
// tier, a rack tier, and two nodes per rack cycling through the big and
// small member machines.
func HeteroPlatformSpec(cfg HeteroConfig) string {
	cfg = cfg.withDefaults()
	big := fmt.Sprintf("pack:%d l3:1 core:%d pu:1", cfg.BigCores/cfg.CoresPerSocket, cfg.CoresPerSocket)
	small := fmt.Sprintf("pack:%d l3:1 core:%d pu:1", cfg.SmallCores/cfg.CoresPerSocket, cfg.CoresPerSocket)
	return fmt.Sprintf("pod:%d rack:%d node:2{%s | %s}", cfg.Pods, cfg.RacksPerPod, big, small)
}

// HeteroPlatform builds the simulated heterogeneous pod-tier platform. Like
// the rack scenario, the uplinks default to oversubscribed single trunks of
// NIC-class bandwidth — every stream leaving a rack (or a pod) funnels
// through one 10GbE-class link — so climbing the fabric pays in bandwidth
// as well as latency.
func HeteroPlatform(cfg HeteroConfig) (*numasim.Platform, error) {
	cfg = cfg.withDefaults()
	def := topology.DefaultAttrs()
	def.UplinkBandwidth = def.NetBandwidth
	def.PodUplinkBandwidth = def.NetBandwidth
	return numasim.NewPlatformAttrs(HeteroPlatformSpec(cfg), def, numasim.Config{})
}

// HeteroModes lists the placement arms of the hetero ablation in report
// order: the fully aware policy first (the speedup base), then the
// capacity-blind and depth-blind variants.
func HeteroModes() []string {
	return []string{"aware", "capacity-blind", "depth-blind"}
}

// heteroPolicy returns the placement policy of one ablation arm.
func heteroPolicy(mode string) (placement.Policy, error) {
	switch mode {
	case "aware":
		return placement.Hierarchical{}, nil
	case "capacity-blind":
		return placement.Hierarchical{CapacityBlind: true}, nil
	case "depth-blind":
		return placement.Hierarchical{NoFabricMatch: true}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown hetero mode %q", mode)
	}
}

// heteroBlockSizes returns the per-node block sizes of the scenario, in
// fused node order (big, small, big, small, ...).
func heteroBlockSizes(cfg HeteroConfig) []int {
	cfg = cfg.withDefaults()
	nodes := cfg.Pods * cfg.RacksPerPod * 2
	sizes := make([]int, nodes)
	for i := range sizes {
		if i%2 == 0 {
			sizes[i] = cfg.BigCores
		} else {
			sizes[i] = cfg.SmallCores
		}
	}
	return sizes
}

// heteroPairOf returns the partner block of each block: big block of rank i
// pairs with the small block of rank i + nbig/2 (mod nbig), so that under
// the positional identity assignment every pair straddles the pod boundary,
// while each rack's big+small capacity profile admits a rack-local matching.
func heteroPairOf(sizes []int) []int {
	nbig := len(sizes) / 2
	pair := make([]int, len(sizes))
	for i := 0; i < nbig; i++ {
		big := 2 * i
		small := 2*((i+nbig/2)%nbig) + 1
		pair[big] = small
		pair[small] = big
	}
	return pair
}

// buildHeteroStencil constructs the pod-skewed heterogeneous stencil: one
// task per core, grouped into node-capacity-sized blocks. Task s of block b
//
//   - reads HaloBytes from its grid neighbours inside the block (a 2-row
//     stencil grid, the heavy coupling that makes the blocks the min-cut
//     partition groups),
//   - exchanges PairBytes with the slot-aligned task of the partner block
//     (big slot s reads small slot s mod |small|; the pod-decisive medium
//     traffic),
//   - and, for slot 0 only, exchanges LinkBytes with the neighbouring
//     blocks (light connectivity so the affinity graph is one component).
//
// All volumes are whole bytes; the run is bit-deterministic.
func buildHeteroStencil(rt *orwl.Runtime, cfg HeteroConfig) error {
	cfg = cfg.withDefaults()
	sizes := heteroBlockSizes(cfg)
	pair := heteroPairOf(sizes)
	blocks := len(sizes)
	base := make([]int, blocks) // first task index of each block
	n := 0
	for b, sz := range sizes {
		base[b] = n
		n += sz
	}
	locs := make([]*orwl.Location, n)
	for b, sz := range sizes {
		for s := 0; s < sz; s++ {
			locs[base[b]+s] = rt.NewLocation(fmt.Sprintf("blk%d.%d", b, s), cfg.BlockBytes)
		}
	}
	cells := float64(cfg.BlockBytes / 8)
	for b, sz := range sizes {
		for s := 0; s < sz; s++ {
			i := base[b] + s
			task := rt.AddTask(fmt.Sprintf("t%d.%d", b, s), nil)
			var reads []*orwl.Handle
			addRead := func(peer int, vol float64) {
				reads = append(reads, task.NewHandleVol(locs[peer], orwl.Read, vol, 0))
			}
			// Heavy stencil grid inside the block: 2 rows of sz/2 columns
			// (one row when the block is too narrow).
			gw := sz / 2
			if gw < 1 {
				gw = 1
			}
			sx, sy := s%gw, s/gw
			for _, d := range [][2]int{{0, -1}, {0, 1}, {1, 0}, {-1, 0}} {
				nx, ny := sx+d[0], sy+d[1]
				if nx < 0 || nx >= gw || ny < 0 || ny*gw+nx >= sz {
					continue
				}
				addRead(base[b]+ny*gw+nx, cfg.HaloBytes)
			}
			// Medium pair exchange with the slot-aligned partner task.
			addRead(base[pair[b]]+s%sizes[pair[b]], cfg.PairBytes)
			// Light connectivity ring over the blocks.
			if s == 0 && blocks > 2 {
				addRead(base[(b+1)%blocks], cfg.LinkBytes)
				addRead(base[(b+blocks-1)%blocks], cfg.LinkBytes)
			}
			w := task.NewHandleVol(locs[i], orwl.Write, cfg.HaloBytes, 1)
			region := locs[i].Region()
			block := cfg.BlockBytes
			task.SetFunc(func(t *orwl.Task) error {
				for it := 0; it < cfg.Iters; it++ {
					last := it == cfg.Iters-1
					for _, h := range reads {
						if err := h.Acquire(); err != nil {
							return err
						}
						if err := releaseOrNext(h, last); err != nil {
							return err
						}
					}
					if err := w.Acquire(); err != nil {
						return err
					}
					if p := t.Proc(); p != nil {
						p.Compute(11 * cells)
						p.SweepWorkingSet(region, block)
					}
					if err := releaseOrNext(w, last); err != nil {
						return err
					}
					t.EndIteration()
				}
				return nil
			})
		}
	}
	return nil
}

// RunHetero executes the heterogeneous pod-tier stencil under one placement
// mode and returns its simulated processing time.
func RunHetero(mode string, cfg HeteroConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	pol, err := heteroPolicy(mode)
	if err != nil {
		return Result{}, err
	}
	platform, err := HeteroPlatform(cfg)
	if err != nil {
		return Result{}, err
	}
	mach := platform.Machine()
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildHeteroStencil(rt, cfg); err != nil {
		return Result{}, err
	}
	a, err := placement.Place(rt, pol)
	if err != nil {
		return Result{}, err
	}
	placement.SetContention(mach, a, nil)
	placement.SetFabricContention(mach, a, rt.CommMatrix())
	if err := rt.Run(); err != nil {
		return Result{}, err
	}
	tasks := mach.Topology().NumCores()
	return Result{
		Impl:     ORWLBind,
		Cores:    tasks,
		Blocks:   platform.Nodes(),
		Tasks:    tasks,
		Seconds:  rt.MakespanSeconds(),
		Policy:   a.Policy,
		Strategy: a.Strategy.String(),
	}, nil
}

// AblationHetero (A11) compares the placement arms on the heterogeneous
// pod-tier stencil.
func AblationHetero(cfg HeteroConfig) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, mode := range HeteroModes() {
		res, err := RunHetero(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation hetero, %s: %w", mode, err)
		}
		rows = append(rows, AblationRow{
			Name:    "hetero/" + mode,
			Seconds: res.Seconds,
			Detail: fmt.Sprintf("%d pods x %d racks x (%d+%d) cores",
				cfg.Pods, cfg.RacksPerPod, cfg.BigCores, cfg.SmallCores),
		})
	}
	return rows, nil
}

// HeteroConfigFrom derives the hetero configuration from the common ablation
// Config: 2 pods of fixed big+small racks, the rack count scaled so the
// total core count comes close to cfg.Cores (each rack carries
// BigCores+SmallCores = 12 cores; the Detail column of every A11 row prints
// the effective shape). The node shapes stay fixed because the scenario's
// volume ratios are calibrated per node; scale comes from more racks per
// pod, which is also how real pods grow.
func HeteroConfigFrom(cfg Config) HeteroConfig {
	cfg = cfg.withDefaults()
	perPod := cfg.Cores / 24
	if perPod < 1 {
		perPod = 1
	}
	return HeteroConfig{
		Pods:        2,
		RacksPerPod: perPod,
		Seed:        cfg.Seed,
	}
}
