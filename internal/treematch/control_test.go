package treematch

import (
	"testing"

	"repro/internal/comm"
)

func TestMapHyperthreadStrategy(t *testing.T) {
	tree := mustTree(t, 2, 4) // 8 cores
	m := comm.Ring(8, 10)
	res, err := Map(Target{Tree: tree, SMTWays: 2}, m, Options{})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Strategy != ControlHyperthread {
		t.Fatalf("strategy = %v, want hyperthread", res.Strategy)
	}
	for i := range res.Control {
		if res.Control[i] != res.Assignment[i] {
			t.Errorf("control[%d] = %d, want same core as task (%d)", i, res.Control[i], res.Assignment[i])
		}
	}
}

func TestMapSpareCoresStrategy(t *testing.T) {
	tree := mustTree(t, 2, 4) // 8 cores, 4 tasks -> 4 spare cores
	m := comm.Ring(4, 10)
	res, err := Map(Target{Tree: tree, SMTWays: 1}, m, Options{})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Strategy != ControlSpareCores {
		t.Fatalf("strategy = %v, want spare-cores", res.Strategy)
	}
	if len(res.Assignment) != 4 || len(res.Control) != 4 {
		t.Fatalf("lengths: %d tasks, %d controls", len(res.Assignment), len(res.Control))
	}
	// All four control threads fit (4 spare cores); no core is used twice.
	used := map[int]bool{}
	for i := 0; i < 4; i++ {
		if res.Control[i] < 0 {
			t.Errorf("control %d unmapped despite spare cores", i)
			continue
		}
		for _, leaf := range []int{res.Assignment[i], res.Control[i]} {
			if used[leaf] {
				t.Errorf("core %d assigned twice", leaf)
			}
			used[leaf] = true
		}
	}
	// Each control thread should sit in the same half of the tree (same
	// socket) as its task: affinity task↔control dominates.
	for i := 0; i < 4; i++ {
		if res.Control[i] < 0 {
			continue
		}
		if tree.LeafDistance(res.Assignment[i], res.Control[i]) > 2 {
			t.Errorf("control %d at distance %d from its task", i,
				tree.LeafDistance(res.Assignment[i], res.Control[i]))
		}
	}
}

func TestMapSpareCoresPartial(t *testing.T) {
	tree := mustTree(t, 6) // 6 cores, 4 tasks -> only 2 spare cores
	m := comm.New(4)
	m.AddSym(0, 1, 100) // tasks 0 and 1 are the heavy communicators
	m.AddSym(2, 3, 1)
	res, err := Map(Target{Tree: tree, SMTWays: 1}, m, Options{})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Strategy != ControlSpareCores {
		t.Fatalf("strategy = %v", res.Strategy)
	}
	mapped := 0
	for _, c := range res.Control {
		if c >= 0 {
			mapped++
		}
	}
	if mapped != 2 {
		t.Errorf("mapped %d control threads, want 2 (one per spare core)", mapped)
	}
	// The heavy tasks 0 and 1 get the spare slots.
	if res.Control[0] < 0 || res.Control[1] < 0 {
		t.Errorf("heavy tasks lost their control slots: %v", res.Control)
	}
	if res.Control[2] >= 0 || res.Control[3] >= 0 {
		t.Errorf("light tasks got control slots: %v", res.Control)
	}
}

func TestMapUnmappedStrategy(t *testing.T) {
	tree := mustTree(t, 2, 2) // 4 cores, 4 tasks, no SMT -> nothing spare
	m := comm.Ring(4, 10)
	res, err := Map(Target{Tree: tree, SMTWays: 1}, m, Options{})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Strategy != ControlUnmapped {
		t.Fatalf("strategy = %v, want unmapped", res.Strategy)
	}
	for i, c := range res.Control {
		if c != -1 {
			t.Errorf("control[%d] = %d, want -1", i, c)
		}
	}
}

func TestMapOversubscribedKeepsControlUnmapped(t *testing.T) {
	tree := mustTree(t, 2, 2) // 4 cores, 9 tasks
	m := comm.Ring(9, 10)
	res, err := Map(Target{Tree: tree, SMTWays: 1}, m, Options{})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.Strategy != ControlUnmapped {
		t.Errorf("strategy = %v, want unmapped under oversubscription", res.Strategy)
	}
	if res.VirtualArity != 3 {
		t.Errorf("VirtualArity = %d, want 3", res.VirtualArity)
	}
}

func TestMapArgumentErrors(t *testing.T) {
	tree := mustTree(t, 2)
	if _, err := Map(Target{Tree: nil, SMTWays: 1}, comm.New(2), Options{}); err == nil {
		t.Errorf("nil tree accepted")
	}
	if _, err := Map(Target{Tree: tree, SMTWays: 0}, comm.New(2), Options{}); err == nil {
		t.Errorf("zero SMTWays accepted")
	}
}

func TestControlStrategyString(t *testing.T) {
	if ControlHyperthread.String() != "hyperthread" ||
		ControlSpareCores.String() != "spare-cores" ||
		ControlUnmapped.String() != "unmapped" {
		t.Errorf("strategy names wrong")
	}
	if ControlStrategy(9).String() == "" {
		t.Errorf("out-of-range strategy empty")
	}
}
